#include "common/log.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ifot {
namespace {

/// Captures log lines and restores global config afterwards.
class LogCapture {
 public:
  LogCapture() {
    log_config::set_sink([this](LogLevel level, const std::string& line) {
      entries.emplace_back(level, line);
    });
  }
  ~LogCapture() {
    log_config::set_sink(nullptr);
    log_config::set_clock(nullptr);
    log_config::set_level(LogLevel::kWarn);
  }
  std::vector<std::pair<LogLevel, std::string>> entries;
};

TEST(Log, LevelFiltering) {
  LogCapture cap;
  log_config::set_level(LogLevel::kWarn);
  IFOT_LOG(kInfo, "test") << "hidden";
  IFOT_LOG(kWarn, "test") << "shown";
  IFOT_LOG(kError, "test") << "also shown";
  ASSERT_EQ(cap.entries.size(), 2u);
  EXPECT_NE(cap.entries[0].second.find("shown"), std::string::npos);
}

TEST(Log, OffSuppressesEverything) {
  LogCapture cap;
  log_config::set_level(LogLevel::kOff);
  IFOT_LOG(kError, "test") << "nope";
  EXPECT_TRUE(cap.entries.empty());
}

TEST(Log, LineCarriesComponentAndLevel) {
  LogCapture cap;
  log_config::set_level(LogLevel::kDebug);
  IFOT_LOG(kDebug, "mqtt.broker") << "routing " << 42 << " messages";
  ASSERT_EQ(cap.entries.size(), 1u);
  const std::string& line = cap.entries[0].second;
  EXPECT_NE(line.find("[DEBUG]"), std::string::npos);
  EXPECT_NE(line.find("[mqtt.broker]"), std::string::npos);
  EXPECT_NE(line.find("routing 42 messages"), std::string::npos);
}

TEST(Log, ClockHookPrefixesVirtualTime) {
  LogCapture cap;
  log_config::set_level(LogLevel::kInfo);
  log_config::set_clock([] { return SimTime{1500 * kMillisecond}; });
  IFOT_LOG(kInfo, "test") << "stamped";
  ASSERT_EQ(cap.entries.size(), 1u);
  EXPECT_NE(cap.entries[0].second.find("1500.000ms"), std::string::npos);
}

TEST(Log, EnabledMatchesLevel) {
  log_config::set_level(LogLevel::kError);
  EXPECT_FALSE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  log_config::set_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace ifot
