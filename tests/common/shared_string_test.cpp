// SharedString: the immutable refcounted string behind Publish::topic.
// Copying must share one buffer (that is the whole point -- fan-out
// allocates the topic once), equality must compare contents, and the
// audit ledger must balance when buffers die.
#include "common/shared_string.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

#include "common/audit.hpp"

namespace ifot {
namespace {

TEST(SharedString, CopiesShareOneBuffer) {
  SharedString a(std::string("flow/building/floor3/temp"));
  SharedString b = a;
  SharedString c = b;
  EXPECT_EQ(b.share().get(), a.share().get());
  EXPECT_EQ(c.share().get(), a.share().get());
  EXPECT_EQ(a.use_count(), 3);
}

TEST(SharedString, EmptyIsNullAndAllocationFree) {
  SharedString e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.share(), nullptr);
  EXPECT_EQ(e.use_count(), 0);
  EXPECT_EQ(e.str(), "");
  SharedString from_empty((std::string()));
  EXPECT_EQ(from_empty.share(), nullptr);  // empty stays null, no alloc
}

TEST(SharedString, EqualityComparesContentsAcrossBuffers) {
  SharedString a(std::string("a/b"));
  SharedString b(std::string("a/b"));
  EXPECT_NE(a.share().get(), b.share().get());
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(a == "a/b");
  EXPECT_TRUE(a == std::string("a/b"));
  EXPECT_FALSE(a == SharedString("a/c"));
}

TEST(SharedString, ReadSurfaceMatchesStdString) {
  SharedString s("abc/def");
  EXPECT_EQ(s.size(), 7u);
  EXPECT_EQ(s.view(), std::string_view("abc/def"));
  const std::string& ref = s;  // implicit conversion, no copy
  EXPECT_EQ(&ref, &s.str());
}

TEST(SharedString, AuditLedgerBalancesWhenBuffersDie) {
  const std::int64_t before_bufs = audit::live("shared_string.buffers");
  const std::int64_t before_bytes = audit::live("shared_string.bytes");
  {
    SharedString a(std::string("0123456789"));
    SharedString b = a;  // sharing must not double-count
    (void)b;
    if (audit::kEnabled) {
      EXPECT_EQ(audit::live("shared_string.buffers"), before_bufs + 1);
      EXPECT_EQ(audit::live("shared_string.bytes"), before_bytes + 10);
    }
  }
  EXPECT_EQ(audit::live("shared_string.buffers"), before_bufs);
  EXPECT_EQ(audit::live("shared_string.bytes"), before_bytes);
}

}  // namespace
}  // namespace ifot
