#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace ifot {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(10.0, 20.0);
    EXPECT_GE(u, 10.0);
    EXPECT_LT(u, 20.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(7), 7u);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ForkIsIndependentButDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(fa.next(), fb.next());
  }
  // Fork stream differs from parent stream.
  Rng parent(42);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace ifot
