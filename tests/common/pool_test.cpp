// Unit tests for the zero-allocation pools: NodePool bucket recycling,
// NodeAllocator plugged into node-based containers, and ObjectPool/Ref
// intrusive refcount recycling (objects are parked, not destroyed, so
// their buffers keep capacity across acquire cycles).
#include "common/pool.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace ifot::pool {
namespace {

TEST(NodePool, RecyclesSameSizeBlocks) {
  NodePool pool;
  void* a = pool.allocate(40);
  EXPECT_EQ(pool.outstanding(), 1u);
  EXPECT_EQ(pool.fresh_allocations(), 1u);
  pool.deallocate(a, 40);
  EXPECT_EQ(pool.outstanding(), 0u);
  EXPECT_EQ(pool.free_blocks(), 1u);
  // Same bucket (sizes round up to 16): the freed block comes back.
  void* b = pool.allocate(33);
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.fresh_allocations(), 1u);
  pool.deallocate(b, 33);
}

TEST(NodePool, DistinctBucketsDoNotMix) {
  NodePool pool;
  void* small = pool.allocate(16);
  pool.deallocate(small, 16);
  // 17 rounds to 32 — must not reuse the 16-byte block.
  void* big = pool.allocate(17);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.fresh_allocations(), 2u);
  pool.deallocate(big, 17);
  pool.audit_invariants();
}

TEST(NodePool, ReusesBlocksAcrossDifferentNodeTypes) {
  // The pool buckets by rounded byte size, not by type: a node freed by
  // one container feeds another container's differently-typed node as
  // long as both round to the same 16-byte bucket.
  struct SmallNode {
    char bytes[33];
  };
  struct BigNode {
    char bytes[48];
  };
  static_assert(sizeof(SmallNode) != sizeof(BigNode));
  NodePool pool;
  NodeAllocator<SmallNode> small(&pool);
  NodeAllocator<BigNode> big(&pool);
  SmallNode* s = small.allocate(1);  // 33 rounds up to 48
  small.deallocate(s, 1);
  BigNode* b = big.allocate(1);
  EXPECT_EQ(static_cast<void*>(b), static_cast<void*>(s));
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.fresh_allocations(), 1u);
  big.deallocate(b, 1);
  pool.audit_invariants();
}

TEST(NodePool, RetainedBytesTracksHighWaterNotChurn) {
  NodePool pool;
  EXPECT_EQ(pool.retained_bytes(), 0u);
  void* a = pool.allocate(40);  // one fresh 48-byte bucket
  EXPECT_EQ(pool.retained_bytes(), 48u);
  pool.deallocate(a, 40);
  // Recycling the same block moves nothing: the footprint is high-water.
  for (int i = 0; i < 10; ++i) {
    void* p = pool.allocate(40);
    pool.deallocate(p, 40);
  }
  EXPECT_EQ(pool.retained_bytes(), 48u);
  void* c = pool.allocate(100);  // new 112-byte bucket adds on top
  EXPECT_EQ(pool.retained_bytes(), 48u + 112u);
  pool.deallocate(c, 100);
}

TEST(NodeAllocator, MapEraseInsertReusesNodes) {
  NodePool pool;
  using Alloc = NodeAllocator<std::pair<const int, int>>;
  std::map<int, int, std::less<>, Alloc> m{Alloc(&pool)};
  for (int i = 0; i < 8; ++i) m.emplace(i, i);
  const std::uint64_t fresh = pool.fresh_allocations();
  // Steady-state churn: every erase parks a node the next emplace takes.
  for (int round = 0; round < 100; ++round) {
    m.erase(round % 8);
    m.emplace(round % 8, round);
  }
  EXPECT_EQ(pool.fresh_allocations(), fresh);
  EXPECT_GE(pool.reuses(), 100u);
}

TEST(NodeAllocator, DequePushPopRecyclesThroughPool) {
  NodePool pool;
  using Alloc = NodeAllocator<int>;
  {
    std::deque<int, Alloc> q{Alloc(&pool)};
    for (int i = 0; i < 64; ++i) q.push_back(i);
    while (!q.empty()) q.pop_front();
    for (int i = 0; i < 64; ++i) q.push_back(i);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
  pool.audit_invariants();
}

TEST(NodeAllocator, EqualityTracksThePool) {
  NodePool a;
  NodePool b;
  EXPECT_TRUE(NodeAllocator<int>(&a) == NodeAllocator<int>(&a));
  EXPECT_FALSE(NodeAllocator<int>(&a) == NodeAllocator<int>(&b));
  // Rebound copies stay on the same pool.
  NodeAllocator<long> rebound{NodeAllocator<int>(&a)};
  EXPECT_EQ(rebound.pool(), &a);
}

struct Buffer : RefCounted<Buffer> {
  std::vector<int> data;
};

TEST(ObjectPool, AcquireReleaseRecyclesWithoutDestroying) {
  ObjectPool<Buffer> pool;
  Buffer* raw = nullptr;
  {
    Ref<Buffer> ref = pool.acquire();
    raw = ref.get();
    ref->data.assign(100, 7);
    EXPECT_EQ(ref.use_count(), 1u);
    EXPECT_EQ(pool.live(), 1u);
  }
  // Released, parked — not destroyed: capacity survives.
  EXPECT_EQ(pool.live(), 0u);
  EXPECT_EQ(pool.free_count(), 1u);
  Ref<Buffer> again = pool.acquire();
  EXPECT_EQ(again.get(), raw);
  EXPECT_GE(again->data.capacity(), 100u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.created(), 1u);
}

TEST(ObjectPool, CopyAndMoveSemanticsTrackTheCount) {
  ObjectPool<Buffer> pool;
  Ref<Buffer> a = pool.acquire();
  Ref<Buffer> b = a;  // copy bumps
  EXPECT_EQ(a.use_count(), 2u);
  Ref<Buffer> c = std::move(b);  // move transfers
  EXPECT_EQ(c.use_count(), 2u);
  EXPECT_FALSE(b);  // NOLINT(bugprone-use-after-move): asserting the move
  c.reset();
  EXPECT_EQ(a.use_count(), 1u);
  a.reset();
  EXPECT_EQ(pool.free_count(), 1u);
  pool.audit_invariants();
}

TEST(ObjectPool, DistinctLiveObjectsDoNotAlias) {
  ObjectPool<Buffer> pool;
  Ref<Buffer> a = pool.acquire();
  Ref<Buffer> b = pool.acquire();
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.created(), 2u);
  EXPECT_EQ(pool.live(), 2u);
  a.reset();
  // The parked object is handed back before any new one is created.
  Ref<Buffer> c = pool.acquire();
  EXPECT_EQ(pool.created(), 2u);
}

TEST(ObjectPool, SelfAssignmentIsSafe) {
  ObjectPool<Buffer> pool;
  Ref<Buffer> a = pool.acquire();
  Ref<Buffer>& alias = a;
  a = alias;
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.live(), 1u);
}

TEST(ObjectPool, MoveSelfAssignmentIsSafe) {
  ObjectPool<Buffer> pool;
  Ref<Buffer> a = pool.acquire();
  Buffer* raw = a.get();
  Ref<Buffer>& alias = a;
  a = std::move(alias);  // must not release the only reference
  EXPECT_EQ(a.get(), raw);
  EXPECT_EQ(a.use_count(), 1u);
  EXPECT_EQ(pool.live(), 1u);
  pool.audit_invariants();
}

TEST(ObjectPool, MoveIntoEngagedRefReleasesTheOldObject) {
  ObjectPool<Buffer> pool;
  Ref<Buffer> a = pool.acquire();
  Ref<Buffer> b = pool.acquire();
  Buffer* kept = b.get();
  a = std::move(b);  // a's original object parks, b's transfers
  EXPECT_EQ(a.get(), kept);
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.free_count(), 1u);
  pool.audit_invariants();
}

}  // namespace
}  // namespace ifot::pool
