// The audit framework itself: the assert macro, the live-object ledger,
// and the compiled-out no-op behavior. Runs in both normal and
// -DIFOT_AUDIT=ON builds; expectations branch on audit::kEnabled so the
// same suite validates both configurations.
#include "common/audit.hpp"

#include <gtest/gtest.h>

#include "common/shared_payload.hpp"

namespace ifot {
namespace {

TEST(Audit, PassingAssertIsAlwaysSilent) {
  IFOT_AUDIT_ASSERT(1 + 1 == 2, "arithmetic still works");
}

TEST(Audit, DisabledAssertNeverEvaluatesItsCondition) {
  if (audit::kEnabled) GTEST_SKIP() << "audit build evaluates conditions";
  bool touched = false;
  IFOT_AUDIT_ASSERT(((touched = true)), "side effect must not run");
  EXPECT_FALSE(touched);
}

TEST(AuditDeathTest, FailingAssertAbortsWithLocationWhenEnabled) {
  if (!audit::kEnabled) GTEST_SKIP() << "asserts compile out of this build";
  EXPECT_DEATH(IFOT_AUDIT_ASSERT(false, "forced failure"),
               "IFOT_AUDIT failure");
}

TEST(Audit, LiveLedgerTracksDeltasOnlyWhenEnabled) {
  const char* key = "audit_test.widgets";
  EXPECT_EQ(audit::live(key), 0);
  audit::live_add(key, 3);
  audit::live_add(key, -1);
  EXPECT_EQ(audit::live(key), audit::kEnabled ? 2 : 0);
  audit::live_add(key, audit::kEnabled ? -2 : 0);  // restore balance
  EXPECT_EQ(audit::live(key), 0);
}

TEST(AuditDeathTest, LedgerRejectsNegativeBalances) {
  if (!audit::kEnabled) GTEST_SKIP() << "ledger is a no-op in this build";
  EXPECT_DEATH(audit::live_add("audit_test.negative", -1),
               "went negative");
}

TEST(Audit, SharedPayloadBuffersAreBalancedOnRelease) {
  if (!audit::kEnabled) GTEST_SKIP() << "ledger is a no-op in this build";
  const std::int64_t buffers_before = audit::live("shared_payload.buffers");
  const std::int64_t bytes_before = audit::live("shared_payload.bytes");
  {
    SharedPayload p(Bytes{1, 2, 3, 4});
    SharedPayload copy = p;  // shares the buffer: no second acquisition
    EXPECT_EQ(audit::live("shared_payload.buffers"), buffers_before + 1);
    EXPECT_EQ(audit::live("shared_payload.bytes"), bytes_before + 4);
  }
  EXPECT_EQ(audit::live("shared_payload.buffers"), buffers_before);
  EXPECT_EQ(audit::live("shared_payload.bytes"), bytes_before);
}

}  // namespace
}  // namespace ifot
