#include "common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace ifot {
namespace {

TEST(BinaryWriter, FixedWidthBigEndian) {
  Bytes out;
  BinaryWriter w(out);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  ASSERT_EQ(out.size(), 7u);
  EXPECT_EQ(out[0], 0xAB);
  EXPECT_EQ(out[1], 0x12);
  EXPECT_EQ(out[2], 0x34);
  EXPECT_EQ(out[3], 0xDE);
  EXPECT_EQ(out[4], 0xAD);
  EXPECT_EQ(out[5], 0xBE);
  EXPECT_EQ(out[6], 0xEF);
}

TEST(BinaryRoundTrip, AllPrimitives) {
  Bytes out;
  BinaryWriter w(out);
  w.u8(7);
  w.u16(65535);
  w.u32(0);
  w.u64(0xFFFFFFFFFFFFFFFFull);
  w.i64(-42);
  w.f64(3.14159);
  w.varint(0);
  w.varint(127);
  w.varint(128);
  w.varint(300);
  w.varint(1ull << 60);
  w.str16("hello");
  w.str("world with a longer payload");

  BinaryReader r{BytesView(out)};
  EXPECT_EQ(r.u8().value(), 7);
  EXPECT_EQ(r.u16().value(), 65535);
  EXPECT_EQ(r.u32().value(), 0u);
  EXPECT_EQ(r.u64().value(), 0xFFFFFFFFFFFFFFFFull);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.14159);
  EXPECT_EQ(r.varint().value(), 0u);
  EXPECT_EQ(r.varint().value(), 127u);
  EXPECT_EQ(r.varint().value(), 128u);
  EXPECT_EQ(r.varint().value(), 300u);
  EXPECT_EQ(r.varint().value(), 1ull << 60);
  EXPECT_EQ(r.str16().value(), "hello");
  EXPECT_EQ(r.str().value(), "world with a longer payload");
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, FloatSpecials) {
  Bytes out;
  BinaryWriter w(out);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::denorm_min());
  BinaryReader r{BytesView(out)};
  EXPECT_EQ(r.f64().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64().value(), -0.0);
  EXPECT_EQ(r.f64().value(), std::numeric_limits<double>::denorm_min());
}

TEST(BinaryReader, TruncatedReadsFail) {
  Bytes out;
  BinaryWriter w(out);
  w.u16(0x1234);
  BinaryReader r{BytesView(out)};
  EXPECT_TRUE(r.u8().ok());
  EXPECT_TRUE(r.u8().ok());
  auto next = r.u8();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, Errc::kParse);
}

TEST(BinaryReader, TruncatedStringFails) {
  Bytes out;
  BinaryWriter w(out);
  w.u16(100);  // claims 100 bytes follow
  out.push_back('x');
  BinaryReader r{BytesView(out)};
  EXPECT_FALSE(r.str16().ok());
}

TEST(BinaryReader, VarintTooLongFails) {
  Bytes out(11, 0xFF);  // continuation bit forever
  BinaryReader r{BytesView(out)};
  EXPECT_FALSE(r.varint().ok());
}

TEST(BinaryReader, RawTracksPosition) {
  Bytes data = to_bytes("abcdef");
  BinaryReader r{BytesView(data)};
  auto head = r.raw(2);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(to_string(BytesView(head.value())), "ab");
  EXPECT_EQ(r.position(), 2u);
  EXPECT_EQ(r.remaining(), 4u);
  auto rest = r.raw(4);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(to_string(BytesView(rest.value())), "cdef");
  EXPECT_TRUE(r.at_end());
}

TEST(BinaryRoundTrip, EmptyStrings) {
  Bytes out;
  BinaryWriter w(out);
  w.str16("");
  w.str("");
  BinaryReader r{BytesView(out)};
  EXPECT_EQ(r.str16().value(), "");
  EXPECT_EQ(r.str().value(), "");
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace ifot
