#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace ifot {
namespace {

TEST(LatencyRecorder, EmptyIsZero) {
  LatencyRecorder r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.count(), 0u);
  EXPECT_DOUBLE_EQ(r.avg_ms(), 0);
  EXPECT_DOUBLE_EQ(r.max_ms(), 0);
  EXPECT_DOUBLE_EQ(r.min_ms(), 0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(50), 0);
}

TEST(LatencyRecorder, BasicStatistics) {
  LatencyRecorder r;
  for (int i = 1; i <= 10; ++i) r.record(i * kMillisecond);
  EXPECT_EQ(r.count(), 10u);
  EXPECT_DOUBLE_EQ(r.avg_ms(), 5.5);
  EXPECT_DOUBLE_EQ(r.max_ms(), 10.0);
  EXPECT_DOUBLE_EQ(r.min_ms(), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(100), 10.0);
  EXPECT_NEAR(r.percentile_ms(50), 6.0, 1.0);
}

TEST(LatencyRecorder, PercentileAfterInterleavedRecords) {
  LatencyRecorder r;
  r.record(5 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.percentile_ms(100), 5.0);
  r.record(1 * kMillisecond);  // invalidates sort cache
  EXPECT_DOUBLE_EQ(r.percentile_ms(0), 1.0);
  EXPECT_DOUBLE_EQ(r.percentile_ms(100), 5.0);
}

TEST(LatencyRecorder, StddevOfConstantIsZero) {
  LatencyRecorder r;
  r.record(3 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.stddev_ms(), 0);  // < 2 samples
  r.record(3 * kMillisecond);
  r.record(3 * kMillisecond);
  EXPECT_DOUBLE_EQ(r.stddev_ms(), 0);
}

TEST(LatencyRecorder, ClearResets) {
  LatencyRecorder r;
  r.record(kMillisecond);
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_DOUBLE_EQ(r.avg_ms(), 0);
}

TEST(Counters, AddAndGet) {
  Counters c;
  c.add("x");
  c.add("x", 4);
  c.add("y", 2);
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 2u);
  EXPECT_EQ(c.get("missing"), 0u);
}

TEST(Counters, SortedIsStableByName) {
  Counters c;
  c.add("zeta");
  c.add("alpha", 3);
  auto sorted = c.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "alpha");
  EXPECT_EQ(sorted[1].first, "zeta");
}

}  // namespace
}  // namespace ifot
