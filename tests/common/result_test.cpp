#include "common/result.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ifot {
namespace {

Result<int> half(int v) {
  if (v % 2 != 0) return Err(Errc::kInvalidArgument, "odd");
  return v / 2;
}

TEST(Result, ValueAccess) {
  auto r = half(10);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 5);
}

TEST(Result, ErrorAccess) {
  auto r = half(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kInvalidArgument);
  EXPECT_EQ(r.error().message, "odd");
  EXPECT_EQ(r.error().to_string(), "invalid_argument: odd");
}

TEST(Result, ValueOr) {
  EXPECT_EQ(half(4).value_or(-1), 2);
  EXPECT_EQ(half(5).value_or(-1), -1);
}

TEST(Result, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r{std::make_unique<int>(9)};
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 9);
}

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
}

TEST(StatusTest, ErrorPropagates) {
  Status s = Err(Errc::kState, "not started");
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::kState);
}

TEST(ErrcNames, AllDistinct) {
  const Errc all[] = {Errc::kInvalidArgument, Errc::kParse, Errc::kNotFound,
                      Errc::kAlreadyExists,   Errc::kCapacity,
                      Errc::kProtocol,        Errc::kUnsupported,
                      Errc::kState,           Errc::kIo};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_STRNE(errc_name(all[i]), errc_name(all[j]));
    }
  }
}

}  // namespace
}  // namespace ifot
