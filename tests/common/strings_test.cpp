#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ifot {
namespace {

TEST(Split, KeepsEmptySegments) {
  EXPECT_EQ(split("a/b/c", '/'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a//c", '/'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("/a", '/'), (std::vector<std::string>{"", "a"}));
  EXPECT_EQ(split("a/", '/'), (std::vector<std::string>{"a", ""}));
  EXPECT_EQ(split("", '/'), (std::vector<std::string>{""}));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("none"), "none");
}

TEST(Join, RoundTripsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, "/"), "x/y/z");
  EXPECT_EQ(split(join(parts, "/"), '/'), parts);
  EXPECT_EQ(join({}, "/"), "");
  EXPECT_EQ(join({"solo"}, "/"), "solo");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("ifot/a/b", "ifot/"));
  EXPECT_FALSE(starts_with("ifot", "ifot/"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(ParseDouble, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_double("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(parse_double("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(parse_double("42").value(), 42.0);
  EXPECT_FALSE(parse_double("").ok());
  EXPECT_FALSE(parse_double("1.5x").ok());
  EXPECT_FALSE(parse_double("abc").ok());
}

TEST(ParseUint, ValidAndInvalid) {
  EXPECT_EQ(parse_uint("0").value(), 0u);
  EXPECT_EQ(parse_uint("18446744073709551615").value(),
            18446744073709551615ull);
  EXPECT_FALSE(parse_uint("-1").ok());
  EXPECT_FALSE(parse_uint("1.5").ok());
  EXPECT_FALSE(parse_uint("").ok());
}

}  // namespace
}  // namespace ifot
