#include "common/shared_payload.hpp"

#include <gtest/gtest.h>

namespace ifot {
namespace {

TEST(SharedPayload, DefaultIsEmptyAndNull) {
  SharedPayload p;
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.size(), 0u);
  EXPECT_EQ(p.share(), nullptr);
  EXPECT_EQ(p.use_count(), 0);
  EXPECT_TRUE(p.bytes().empty());
}

TEST(SharedPayload, AdoptsBytesWithoutCopyOnShare) {
  SharedPayload p(Bytes{1, 2, 3});
  EXPECT_EQ(p.size(), 3u);
  SharedPayload q = p;  // O(1): shares the buffer
  EXPECT_EQ(q.share().get(), p.share().get());
  EXPECT_EQ(p.use_count(), 2);
  EXPECT_EQ(q.bytes(), (Bytes{1, 2, 3}));
}

TEST(SharedPayload, EmptyBytesCollapseToNull) {
  SharedPayload p{Bytes{}};
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.share(), nullptr);
  SharedPayload q(std::make_shared<const Bytes>());
  EXPECT_EQ(q.share(), nullptr);
}

TEST(SharedPayload, EqualityComparesContentsAcrossBuffers) {
  SharedPayload a(Bytes{9, 9});
  SharedPayload b(Bytes{9, 9});   // distinct buffer, same contents
  SharedPayload c(Bytes{9, 8});
  EXPECT_NE(a.share().get(), b.share().get());
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(SharedPayload{}, SharedPayload{Bytes{}});
}

TEST(SharedPayload, ViewAndConversionSeeTheSameBytes) {
  SharedPayload p(Bytes{4, 5, 6});
  BytesView v = p;  // implicit, mirrors Bytes -> BytesView
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.data(), p.data());
  EXPECT_EQ(v[1], 5);
  EXPECT_EQ(p.view().size(), 3u);
}

TEST(SharedPayload, AssignAndClearReplaceTheBuffer) {
  SharedPayload p(Bytes{1});
  const auto* before = p.share().get();
  p.assign(4, 7);
  EXPECT_NE(p.share().get(), before);
  EXPECT_EQ(p.bytes(), Bytes(4, 7));
  p.clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.share(), nullptr);
}

}  // namespace
}  // namespace ifot
