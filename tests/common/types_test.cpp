#include "common/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ifot {
namespace {

TEST(Id, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), NodeId::kInvalid);
}

TEST(Id, ExplicitConstructionIsValid) {
  NodeId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Id, ComparisonAndOrdering) {
  EXPECT_EQ(TaskId{3}, TaskId{3});
  EXPECT_NE(TaskId{3}, TaskId{4});
  EXPECT_LT(TaskId{3}, TaskId{4});
}

TEST(Id, DistinctTagTypesDoNotMix) {
  // Compile-time property: NodeId and TaskId are distinct types.
  static_assert(!std::is_same_v<NodeId, TaskId>);
  static_assert(!std::is_convertible_v<NodeId, TaskId>);
}

TEST(Id, Hashable) {
  std::unordered_set<NodeId> set;
  set.insert(NodeId{1});
  set.insert(NodeId{2});
  set.insert(NodeId{1});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Time, UnitRelations) {
  EXPECT_EQ(kMicrosecond, 1000 * kNanosecond);
  EXPECT_EQ(kMillisecond, 1000 * kMicrosecond);
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
}

TEST(Time, ConversionRoundTrips) {
  EXPECT_EQ(from_millis(2.5), 2 * kMillisecond + 500 * kMicrosecond);
  EXPECT_DOUBLE_EQ(to_millis(from_millis(123.456)), 123.456);
  EXPECT_DOUBLE_EQ(to_seconds(from_seconds(0.75)), 0.75);
  EXPECT_EQ(from_seconds(1.0), kSecond);
}

TEST(Time, ZeroAndNegativeDurations) {
  EXPECT_EQ(from_millis(0), 0);
  EXPECT_DOUBLE_EQ(to_millis(-kMillisecond), -1.0);
}

}  // namespace
}  // namespace ifot
