#include "alloc/allocator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "recipe/parser.hpp"

namespace ifot::alloc {
namespace {

recipe::TaskGraph graph_of(const char* text) {
  auto parsed = recipe::parse(text);
  EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().to_string());
  auto g = recipe::split_recipe(parsed.value());
  EXPECT_TRUE(g.ok()) << (g.ok() ? "" : g.error().to_string());
  return g.value();
}

std::vector<ModuleInfo> six_pis() {
  std::vector<ModuleInfo> mods;
  for (int i = 0; i < 6; ++i) {
    ModuleInfo m;
    m.id = NodeId{static_cast<NodeId::value_type>(i)};
    m.name = "module_" + std::string(1, static_cast<char>('a' + i));
    m.cpu_factor = 1.0;
    mods.push_back(std::move(m));
  }
  mods[0].sensors = {"sensor_a"};
  mods[1].sensors = {"sensor_b"};
  mods[2].sensors = {"sensor_c"};
  mods[5].actuators = {"display"};
  return mods;
}

constexpr const char* kPaperish = R"(
recipe eval
node sa : sensor { sensor = "sensor_a", rate_hz = 10 }
node sb : sensor { sensor = "sensor_b", rate_hz = 10 }
node sc : sensor { sensor = "sensor_c", rate_hz = 10 }
node tr : train { algorithm = "arow" }
node pr : predict { }
node disp : actuator { actuator = "display" }
edge sa -> tr
edge sb -> tr
edge sc -> tr
edge sa -> pr
edge sb -> pr
edge sc -> pr
edge tr -> pr
edge pr -> disp
)";

class AllocatorStrategyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllocatorStrategyTest, FactoryWorks) {
  auto a = make_allocator(GetParam());
  ASSERT_NE(a, nullptr);
  EXPECT_STREQ(a->name(), GetParam());
}

TEST_P(AllocatorStrategyTest, RespectsDeviceConstraints) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(kPaperish);
  const auto mods = six_pis();
  auto p = a->allocate(g, mods);
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    const auto& node = g.recipe.nodes[g.tasks[ti].recipe_node];
    if (node.type == "sensor") {
      const std::string dev = node.str("sensor", "");
      // Placed module must host that device.
      for (const auto& m : mods) {
        if (m.id == p.value().task_module[ti]) {
          EXPECT_TRUE(m.sensors.count(dev)) << node.name;
        }
      }
    }
    if (node.type == "actuator") {
      for (const auto& m : mods) {
        if (m.id == p.value().task_module[ti]) {
          EXPECT_TRUE(m.actuators.count("display"));
        }
      }
    }
  }
}

TEST_P(AllocatorStrategyTest, EveryTaskPlaced) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(kPaperish);
  auto p = a->allocate(g, six_pis());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().task_module.size(), g.tasks.size());
  for (NodeId id : p.value().task_module) EXPECT_TRUE(id.valid());
}

TEST_P(AllocatorStrategyTest, FailsWhenDeviceMissing) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(kPaperish);
  auto mods = six_pis();
  mods[5].actuators.clear();  // no display anywhere
  auto p = a->allocate(g, mods);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.error().code, Errc::kNotFound);
}

TEST_P(AllocatorStrategyTest, FailsWithNoModules) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(kPaperish);
  EXPECT_FALSE(a->allocate(g, {}).ok());
}

TEST_P(AllocatorStrategyTest, HonoursPinParameter) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(R"(
recipe pinned
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node t : train { algorithm = "arow", pin = "module_e" }
edge s -> t
)");
  const auto mods = six_pis();
  auto p = a->allocate(g, mods);
  ASSERT_TRUE(p.ok()) << p.error().to_string();
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    if (g.tasks[ti].name == "t") {
      EXPECT_EQ(p.value().task_module[ti], mods[4].id);
    }
  }
}

TEST_P(AllocatorStrategyTest, PinToUnknownModuleFails) {
  auto a = make_allocator(GetParam());
  const auto g = graph_of(R"(
recipe pinned
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node t : train { algorithm = "arow", pin = "module_zz" }
edge s -> t
)");
  auto p = a->allocate(g, six_pis());
  ASSERT_FALSE(p.ok());
  EXPECT_NE(p.error().message.find("module_zz"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Strategies, AllocatorStrategyTest,
                         ::testing::Values("round_robin", "load_aware",
                                           "heft"));

TEST(Allocator, FactoryRejectsUnknown) {
  EXPECT_EQ(make_allocator("simulated_annealing"), nullptr);
}

TEST(LoadAware, SpreadsShardsAcrossModules) {
  const auto g = graph_of(R"(
recipe shards
node s : sensor { sensor = "sensor_a", rate_hz = 100 }
node heavy : train { algorithm = "arow", parallelism = 5 }
edge s -> heavy
)");
  LoadAwareAllocator a;
  auto p = a.allocate(g, six_pis());
  ASSERT_TRUE(p.ok());
  std::set<NodeId> used;
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    if (g.tasks[ti].name.find("heavy") == 0) {
      used.insert(p.value().task_module[ti]);
    }
  }
  EXPECT_GE(used.size(), 5u);  // shards land on distinct modules
}

TEST(LoadAware, PrefersFasterModules) {
  const auto g = graph_of(R"(
recipe fast
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node t : train { algorithm = "arow" }
edge s -> t
)");
  auto mods = six_pis();
  mods[4].cpu_factor = 8.0;  // module_e is much faster
  LoadAwareAllocator a;
  auto p = a.allocate(g, mods);
  ASSERT_TRUE(p.ok());
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    if (g.tasks[ti].name == "t") {
      EXPECT_EQ(p.value().task_module[ti], mods[4].id);
    }
  }
}

TEST(LoadAware, AccountsExistingLoad) {
  const auto g = graph_of(R"(
recipe second
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node t : train { algorithm = "arow" }
edge s -> t
)");
  auto mods = six_pis();
  // All modules but module_f are pre-loaded.
  for (std::size_t i = 0; i + 1 < mods.size(); ++i) {
    mods[i].existing_load = 100;
  }
  LoadAwareAllocator a;
  auto p = a.allocate(g, mods);
  ASSERT_TRUE(p.ok());
  for (std::size_t ti = 0; ti < g.tasks.size(); ++ti) {
    if (g.tasks[ti].name == "t") {
      EXPECT_EQ(p.value().task_module[ti], mods[5].id);
    }
  }
}

TEST(Heft, BeatsOrMatchesRoundRobinMakespan) {
  const auto g = graph_of(R"(
recipe wide
node s : sensor { sensor = "sensor_a", rate_hz = 10 }
node t1 : train { algorithm = "arow", parallelism = 4 }
node an : anomaly { algorithm = "zscore", threshold = 3 }
node cl : cluster { k = 4 }
node m : merge
edge s -> t1
edge s -> an -> m
edge s -> cl -> m
)");
  auto mods = six_pis();
  mods[1].cpu_factor = 0.5;  // heterogeneous fabric
  mods[3].cpu_factor = 2.0;
  RoundRobinAllocator rr;
  HeftAllocator heft;
  auto p_rr = rr.allocate(g, mods);
  auto p_heft = heft.allocate(g, mods);
  ASSERT_TRUE(p_rr.ok());
  ASSERT_TRUE(p_heft.ok());
  const auto m_rr = evaluate_placement(g, mods, p_rr.value());
  const auto m_heft = evaluate_placement(g, mods, p_heft.value());
  EXPECT_LE(m_heft.est_makespan, m_rr.est_makespan * 1.001);
}

TEST(EvaluatePlacement, ComputesCrossEdgesAndImbalance) {
  const auto g = graph_of(R"(
recipe tiny
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node f : filter { field = "v", op = "gt", value = 0 }
edge s -> f
)");
  auto mods = six_pis();
  // Both tasks on module_a: zero cross edges.
  Placement same;
  same.task_module = {mods[0].id, mods[0].id};
  const auto m_same = evaluate_placement(g, mods, same);
  EXPECT_EQ(m_same.cross_edges, 0u);
  // Split across modules: one cross edge.
  Placement split;
  split.task_module = {mods[0].id, mods[1].id};
  const auto m_split = evaluate_placement(g, mods, split);
  EXPECT_EQ(m_split.cross_edges, 1u);
  EXPECT_GE(m_same.imbalance, m_split.imbalance);
  EXPECT_GT(m_split.est_makespan, 0.0);
}

TEST(RoundRobin, CyclesThroughModules) {
  const auto g = graph_of(R"(
recipe cycle
node s : sensor { sensor = "sensor_a", rate_hz = 1 }
node f1 : filter { field = "v", op = "gt", value = 0 }
node f2 : filter { field = "v", op = "gt", value = 0 }
node f3 : filter { field = "v", op = "gt", value = 0 }
edge s -> f1
edge s -> f2
edge s -> f3
)");
  RoundRobinAllocator a;
  auto p = a.allocate(g, six_pis());
  ASSERT_TRUE(p.ok());
  std::set<NodeId> used(p.value().task_module.begin(),
                        p.value().task_module.end());
  EXPECT_GE(used.size(), 3u);
}

}  // namespace
}  // namespace ifot::alloc
