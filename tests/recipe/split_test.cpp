#include "recipe/split.hpp"

#include <gtest/gtest.h>

#include <set>

#include "recipe/parser.hpp"

namespace ifot::recipe {
namespace {

Recipe parse_ok(const char* text) {
  auto r = parse(text);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
  return r.value();
}

constexpr const char* kLinear = R"(
recipe linear
node s : sensor { sensor = "dev", rate_hz = 10 }
node f : filter { field = "v", op = "gt", value = 0 }
node a : actuator { actuator = "out" }
edge s -> f -> a
)";

TEST(Split, OneTaskPerUnshardedNode) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok()) << g.error().to_string();
  EXPECT_EQ(g.value().tasks.size(), 3u);
  EXPECT_EQ(g.value().recipe_name, "linear");
}

TEST(Split, TopicSchemeFollowsRecipeAndNode) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok());
  const auto& tasks = g.value().tasks;
  // Task order is topological, so s, f, a.
  EXPECT_EQ(tasks[0].output_topic, "ifot/linear/s");
  EXPECT_EQ(tasks[1].output_topic, "ifot/linear/f");
  ASSERT_EQ(tasks[1].input_topics.size(), 1u);
  EXPECT_EQ(tasks[1].input_topics[0], "ifot/linear/s");
  ASSERT_EQ(tasks[2].input_topics.size(), 1u);
  EXPECT_EQ(tasks[2].input_topics[0], "ifot/linear/f");
}

TEST(Split, UpstreamIdsWired) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok());
  const auto& tasks = g.value().tasks;
  EXPECT_TRUE(tasks[0].upstream.empty());
  ASSERT_EQ(tasks[1].upstream.size(), 1u);
  EXPECT_EQ(tasks[1].upstream[0], tasks[0].id);
  ASSERT_EQ(tasks[2].upstream.size(), 1u);
  EXPECT_EQ(tasks[2].upstream[0], tasks[1].id);
}

TEST(Split, StagesAreTopologicalLevels) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok());
  const auto& stages = g.value().stages;
  ASSERT_EQ(stages.size(), 3u);
  EXPECT_EQ(stages[0].size(), 1u);
  EXPECT_EQ(stages[1].size(), 1u);
  EXPECT_EQ(stages[2].size(), 1u);
}

constexpr const char* kParallel = R"(
recipe par
node s : sensor { sensor = "dev", rate_hz = 50 }
node heavy : train { algorithm = "arow", parallelism = 4 }
node p : predict { }
node a : actuator { actuator = "out" }
edge s -> heavy
edge s -> p
edge heavy -> p
edge p -> a
)";

TEST(Split, ParallelismCreatesShards) {
  auto g = split_recipe(parse_ok(kParallel));
  ASSERT_TRUE(g.ok()) << g.error().to_string();
  // 1 sensor + 4 train shards + 1 predict + 1 actuator.
  EXPECT_EQ(g.value().tasks.size(), 7u);
  std::set<std::string> names;
  for (const auto& t : g.value().tasks) names.insert(t.name);
  EXPECT_TRUE(names.count("heavy#0"));
  EXPECT_TRUE(names.count("heavy#3"));
  EXPECT_FALSE(names.count("heavy"));
}

TEST(Split, ShardTopicsAndWildcardDownstream) {
  auto g = split_recipe(parse_ok(kParallel));
  ASSERT_TRUE(g.ok());
  const recipe::Task* sensor = nullptr;
  const recipe::Task* shard0 = nullptr;
  const recipe::Task* predict = nullptr;
  for (const auto& t : g.value().tasks) {
    if (t.name == "s") sensor = &t;
    if (t.name == "heavy#0") shard0 = &t;
    if (t.name == "p") predict = &t;
  }
  ASSERT_NE(sensor, nullptr);
  ASSERT_NE(shard0, nullptr);
  ASSERT_NE(predict, nullptr);
  EXPECT_EQ(shard0->output_topic, "ifot/par/heavy/0");
  EXPECT_EQ(shard0->shard_count, 4u);
  // The sensor's only sharded consumer uses K=4, so its sample output is
  // partitioned; each train shard subscribes to its own partition (plus
  // the model side-channel).
  EXPECT_EQ(sensor->partition_count, 4u);
  std::set<std::string> shard_filters(shard0->input_topics.begin(),
                                      shard0->input_topics.end());
  EXPECT_TRUE(shard_filters.count("ifot/par/s/p0"));
  EXPECT_TRUE(shard_filters.count("ifot/par/s/model"));
  // Predict (unsharded) covers all partitions of the sensor with '+' and
  // the sharded train node with the shard wildcard.
  std::set<std::string> filters(predict->input_topics.begin(),
                                predict->input_topics.end());
  EXPECT_TRUE(filters.count("ifot/par/s/+"));
  EXPECT_TRUE(filters.count("ifot/par/heavy/+"));
  EXPECT_EQ(predict->upstream.size(), 5u);  // sensor + 4 shards
}

TEST(Split, PartitionedOptOutKeepsPlainTopics) {
  auto g = split_recipe(parse_ok(R"(
recipe nopart
node s : sensor { sensor = "dev", rate_hz = 50 }
node heavy : train { algorithm = "arow", parallelism = 4, partitioned = false }
edge s -> heavy
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    if (t.name == "s") {
      EXPECT_EQ(t.partition_count, 1u);
    }
    if (t.name == "heavy#2") {
      ASSERT_EQ(t.input_topics.size(), 1u);
      EXPECT_EQ(t.input_topics[0], "ifot/nopart/s");
    }
  }
}

TEST(Split, DisagreeingShardCountsDisablePartitioning) {
  auto g = split_recipe(parse_ok(R"(
recipe mixed
node s : sensor { sensor = "dev", rate_hz = 50 }
node a : train { algorithm = "arow", parallelism = 2 }
node b : anomaly { algorithm = "zscore", threshold = 3, parallelism = 3 }
edge s -> a
edge s -> b
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    if (t.name == "s") {
      EXPECT_EQ(t.partition_count, 1u);
    }
  }
}

TEST(Split, UnshardedConsumersDoNotTriggerPartitioning) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    EXPECT_EQ(t.partition_count, 1u) << t.name;
  }
}

TEST(Split, ShardCostDividesNodeCost) {
  auto g = split_recipe(parse_ok(kParallel));
  ASSERT_TRUE(g.ok());
  double shard_cost = 0;
  for (const auto& t : g.value().tasks) {
    if (t.name == "heavy#0") shard_cost = t.cost_weight;
  }
  EXPECT_DOUBLE_EQ(shard_cost, default_cost_weight("train") / 4.0);
}

TEST(Split, TaskIndicesAreTopologicallySorted) {
  // Declare nodes in anti-topological order; split must still produce
  // tasks whose upstream ids are smaller than their own.
  auto g = split_recipe(parse_ok(R"(
recipe reversed
node a : actuator { actuator = "out" }
node f : filter { field = "v", op = "gt", value = 0 }
node s : sensor { sensor = "dev", rate_hz = 1 }
edge s -> f
edge f -> a
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    for (TaskId up : t.upstream) {
      EXPECT_LT(up.value(), t.id.value());
    }
  }
}

TEST(Split, FanInMergesInputFilters) {
  auto g = split_recipe(parse_ok(R"(
recipe fanin
node s1 : sensor { sensor = "d1", rate_hz = 1 }
node s2 : sensor { sensor = "d2", rate_hz = 1 }
node m : merge
node a : actuator { actuator = "out" }
edge s1 -> m
edge s2 -> m
edge m -> a
)"));
  ASSERT_TRUE(g.ok());
  const recipe::Task* merge = nullptr;
  for (const auto& t : g.value().tasks) {
    if (t.name == "m") merge = &t;
  }
  ASSERT_NE(merge, nullptr);
  EXPECT_EQ(merge->input_topics.size(), 2u);
  EXPECT_EQ(merge->upstream.size(), 2u);
}

TEST(Split, RejectsInvalidRecipe) {
  Recipe r;
  r.name = "broken";
  EXPECT_FALSE(split_recipe(r).ok());
}

TEST(Split, DefaultCostWeightsOrdering) {
  // Training must dominate lightweight stream ops in the cost model.
  EXPECT_GT(default_cost_weight("train"), default_cost_weight("predict"));
  EXPECT_GT(default_cost_weight("predict"), default_cost_weight("filter"));
  EXPECT_GT(default_cost_weight("anomaly"), default_cost_weight("map"));
  EXPECT_DOUBLE_EQ(default_cost_weight("unknown_type"), 1.0);
}

TEST(Split, TaskGraphLookupById) {
  auto g = split_recipe(parse_ok(kLinear));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    EXPECT_EQ(g.value().task(t.id).name, t.name);
  }
}

}  // namespace
}  // namespace ifot::recipe
