// Unit tests for the recipe-level features added beyond the paper's
// prototype: the `tap` source type, event-time window params, learner
// MIX wiring, and broker-assignment params.
#include <gtest/gtest.h>

#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace ifot::recipe {
namespace {

Recipe parse_ok(const std::string& text) {
  auto r = parse(text);
  EXPECT_TRUE(r.ok()) << (r.ok() ? "" : r.error().to_string());
  return r.value();
}

TEST(Tap, IsASourceType) {
  EXPECT_TRUE(is_source_type("tap"));
  EXPECT_TRUE(is_source_type("sensor"));
  EXPECT_FALSE(is_source_type("merge"));
}

TEST(Tap, RequiresTopicParam) {
  auto r = parse(R"(
recipe t
node feed : tap { }
node a : actuator { actuator = "out" }
edge feed -> a
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("topic"), std::string::npos);
}

TEST(Tap, RejectsInboundEdges) {
  auto r = parse(R"(
recipe t
node s : sensor { sensor = "d", rate_hz = 1 }
node feed : tap { topic = "ifot/other/flow" }
node a : actuator { actuator = "out" }
edge s -> feed
edge feed -> a
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("source"), std::string::npos);
}

TEST(Tap, SplitSubscribesExternalTopic) {
  auto g = split_recipe(parse_ok(R"(
recipe t
node feed : tap { topic = "ifot/producer/trend" }
node a : actuator { actuator = "out" }
edge feed -> a
)"));
  ASSERT_TRUE(g.ok());
  const auto& feed = g.value().tasks[0];
  EXPECT_EQ(feed.name, "feed");
  ASSERT_EQ(feed.input_topics.size(), 1u);
  EXPECT_EQ(feed.input_topics[0], "ifot/producer/trend");
  EXPECT_TRUE(feed.upstream.empty());  // external flows are not edges
  // The tap's own output is re-published under this recipe's namespace.
  EXPECT_EQ(feed.output_topic, "ifot/t/feed");
}

TEST(Window, SpanParamValidated) {
  EXPECT_FALSE(parse(R"(
recipe w
node s : sensor { sensor = "d", rate_hz = 1 }
node w : window { span_ms = -5 }
node a : actuator { actuator = "out" }
edge s -> w -> a
)").ok());
  EXPECT_TRUE(parse(R"(
recipe w
node s : sensor { sensor = "d", rate_hz = 1 }
node w : window { span_ms = 250 }
node a : actuator { actuator = "out" }
edge s -> w -> a
)").ok());
}

TEST(Mix, ShardedTrainWithMixSubscribesSiblingModels) {
  auto g = split_recipe(parse_ok(R"(
recipe m
node s : sensor { sensor = "d", rate_hz = 10 }
node tr : train { algorithm = "arow", parallelism = 3, mix = true }
edge s -> tr
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    if (t.name.rfind("tr#", 0) != 0) continue;
    bool has_sibling_filter = false;
    for (const auto& f : t.input_topics) {
      if (f == "ifot/m/tr/+") has_sibling_filter = true;
    }
    EXPECT_TRUE(has_sibling_filter) << t.name;
  }
}

TEST(Mix, UnshardedTrainDoesNotSelfSubscribe) {
  auto g = split_recipe(parse_ok(R"(
recipe m
node s : sensor { sensor = "d", rate_hz = 10 }
node tr : train { algorithm = "arow", mix = true }
edge s -> tr
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    if (t.name != "tr") continue;
    for (const auto& f : t.input_topics) {
      EXPECT_EQ(f.find("ifot/m/tr"), std::string::npos) << f;
    }
  }
}

TEST(BrokerAssignment, ParamsFlowToTasks) {
  auto g = split_recipe(parse_ok(R"(
recipe b
node s1 : sensor { sensor = "d1", rate_hz = 10, broker = 0 }
node s2 : sensor { sensor = "d2", rate_hz = 10, broker = 1 }
node m : merge
node a : actuator { actuator = "out" }
edge s1 -> m
edge s2 -> m
edge m -> a
)"));
  ASSERT_TRUE(g.ok());
  for (const auto& t : g.value().tasks) {
    if (t.name == "s1") {
      EXPECT_EQ(t.output_broker, 0);
    }
    if (t.name == "s2") {
      EXPECT_EQ(t.output_broker, 1);
    }
    if (t.name == "m") {
      EXPECT_EQ(t.output_broker, -1);  // hash-assigned
      ASSERT_EQ(t.input_brokers.size(), t.input_topics.size());
      // Consumer filters carry the producers' assignments.
      for (std::size_t i = 0; i < t.input_topics.size(); ++i) {
        if (t.input_topics[i] == "ifot/b/s1") {
          EXPECT_EQ(t.input_brokers[i], 0);
        }
        if (t.input_topics[i] == "ifot/b/s2") {
          EXPECT_EQ(t.input_brokers[i], 1);
        }
      }
    }
  }
}

TEST(CostWeights, SensorWeightScalesWithRate) {
  auto g = split_recipe(parse_ok(R"(
recipe cw
node slow : sensor { sensor = "d1", rate_hz = 10 }
node fast : sensor { sensor = "d2", rate_hz = 80 }
node m : merge
edge slow -> m
edge fast -> m
)"));
  ASSERT_TRUE(g.ok());
  double slow_w = 0;
  double fast_w = 0;
  for (const auto& t : g.value().tasks) {
    if (t.name == "slow") slow_w = t.cost_weight;
    if (t.name == "fast") fast_w = t.cost_weight;
  }
  EXPECT_DOUBLE_EQ(fast_w, 8 * slow_w);
}

}  // namespace
}  // namespace ifot::recipe
