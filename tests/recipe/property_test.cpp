// Property tests for recipes: randomly generated pipelines round-trip
// through the text format, and splitting preserves the graph structure.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace ifot::recipe {
namespace {

/// Builds a random valid recipe: layered DAG of sensors -> operators ->
/// actuator, with random parallelism on some operators.
Recipe random_recipe(Rng& rng) {
  Recipe r;
  r.name = "rand";
  const auto n_sensors = 1 + rng.below(4);
  const auto n_ops = 1 + rng.below(6);
  static const char* kOps[] = {"window", "filter", "map",
                               "anomaly", "cluster", "merge"};
  for (std::uint64_t i = 0; i < n_sensors; ++i) {
    RecipeNode n;
    n.name = "s" + std::to_string(i);
    n.type = "sensor";
    n.params["sensor"] = std::string("dev") + std::to_string(i);
    n.params["rate_hz"] = 1.0 + static_cast<double>(rng.below(50));
    r.nodes.push_back(std::move(n));
  }
  for (std::uint64_t i = 0; i < n_ops; ++i) {
    RecipeNode n;
    n.name = "op" + std::to_string(i);
    n.type = kOps[rng.below(std::size(kOps))];
    if (n.type == "window") n.params["size"] = 2.0 + static_cast<double>(rng.below(8));
    if (n.type == "cluster") n.params["k"] = 2.0 + static_cast<double>(rng.below(4));
    if (n.type != "merge" && rng.chance(0.3)) {
      n.params["parallelism"] = 1.0 + static_cast<double>(rng.below(4));
    }
    r.nodes.push_back(std::move(n));
    // Wire from a random earlier node (sensor or earlier op).
    const std::size_t me = r.nodes.size() - 1;
    const std::size_t from = rng.below(me);
    r.edges.emplace_back(from, me);
    // Occasionally add a second input (fan-in).
    if (rng.chance(0.3)) {
      const std::size_t from2 = rng.below(me);
      if (from2 != from) r.edges.emplace_back(from2, me);
    }
  }
  {
    RecipeNode n;
    n.name = "sink";
    n.type = "actuator";
    n.params["actuator"] = std::string("out");
    r.nodes.push_back(std::move(n));
  }
  // Terminal nodes (no outputs, not the sink) feed the sink.
  const std::size_t sink = r.nodes.size() - 1;
  for (std::size_t i = 0; i < sink; ++i) {
    if (r.outputs_of(i).empty()) r.edges.emplace_back(i, sink);
  }
  return r;
}

class RecipeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecipeProperty, GeneratedRecipesValidate) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 1);
  for (int i = 0; i < 20; ++i) {
    const Recipe r = random_recipe(rng);
    auto s = validate(r);
    EXPECT_TRUE(s.ok()) << s.error().to_string() << "\n" << to_text(r);
  }
}

TEST_P(RecipeProperty, TextRoundTripPreservesStructure) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 211 + 3);
  for (int i = 0; i < 20; ++i) {
    const Recipe original = random_recipe(rng);
    auto reparsed = parse(to_text(original));
    ASSERT_TRUE(reparsed.ok())
        << reparsed.error().to_string() << "\n" << to_text(original);
    const Recipe& r = reparsed.value();
    ASSERT_EQ(r.nodes.size(), original.nodes.size());
    for (std::size_t ni = 0; ni < r.nodes.size(); ++ni) {
      EXPECT_EQ(r.nodes[ni].name, original.nodes[ni].name);
      EXPECT_EQ(r.nodes[ni].type, original.nodes[ni].type);
      EXPECT_EQ(r.nodes[ni].params, original.nodes[ni].params);
    }
    EXPECT_EQ(r.edges, original.edges);
  }
}

TEST_P(RecipeProperty, SplitCoversEveryNodeWithItsShards) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 307 + 5);
  for (int i = 0; i < 20; ++i) {
    const Recipe r = random_recipe(rng);
    auto g = split_recipe(r);
    ASSERT_TRUE(g.ok()) << g.error().to_string();
    // Expected task count = sum of parallelism.
    std::size_t expected = 0;
    for (const auto& n : r.nodes) {
      expected += static_cast<std::size_t>(n.num("parallelism", 1));
    }
    EXPECT_EQ(g.value().tasks.size(), expected);
    // Every non-source task has inputs; sources have none.
    for (const auto& t : g.value().tasks) {
      const auto& node = r.nodes[t.recipe_node];
      if (is_source_type(node.type)) {
        EXPECT_TRUE(t.input_topics.empty());
        EXPECT_TRUE(t.upstream.empty());
      } else {
        EXPECT_FALSE(t.input_topics.empty()) << t.name;
        EXPECT_FALSE(t.upstream.empty()) << t.name;
      }
    }
  }
}

TEST_P(RecipeProperty, SplitUpstreamIdsAreTopological) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 401 + 7);
  for (int i = 0; i < 20; ++i) {
    auto g = split_recipe(random_recipe(rng));
    ASSERT_TRUE(g.ok());
    for (const auto& t : g.value().tasks) {
      for (TaskId up : t.upstream) {
        EXPECT_LT(up.value(), t.id.value());
      }
    }
  }
}

TEST_P(RecipeProperty, StagesPartitionTasksRespectingDependencies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 503 + 9);
  for (int i = 0; i < 20; ++i) {
    auto g = split_recipe(random_recipe(rng));
    ASSERT_TRUE(g.ok());
    // Stage index of every task.
    std::vector<std::size_t> stage_of(g.value().tasks.size(), SIZE_MAX);
    std::size_t covered = 0;
    for (std::size_t s = 0; s < g.value().stages.size(); ++s) {
      for (std::size_t ti : g.value().stages[s]) {
        EXPECT_EQ(stage_of[ti], SIZE_MAX);  // appears exactly once
        stage_of[ti] = s;
        ++covered;
      }
    }
    EXPECT_EQ(covered, g.value().tasks.size());
    for (const auto& t : g.value().tasks) {
      for (TaskId up : t.upstream) {
        EXPECT_LT(stage_of[up.value()], stage_of[t.id.value()]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecipeProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace ifot::recipe
