#include "recipe/parser.hpp"

#include <gtest/gtest.h>

namespace ifot::recipe {
namespace {

constexpr const char* kElderly = R"(
# Elderly monitoring (paper section III-A.1)
recipe elderly_monitoring
node accel  : sensor  { sensor = "accelerometer", rate_hz = 20, model = "activity" }
node detect : anomaly { algorithm = "zscore", threshold = 3.0 }
node alarm  : actuator { actuator = "bedside_alarm" }
edge accel -> detect -> alarm
)";

TEST(Parser, ParsesFullRecipe) {
  auto r = parse(kElderly);
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const Recipe& recipe = r.value();
  EXPECT_EQ(recipe.name, "elderly_monitoring");
  ASSERT_EQ(recipe.nodes.size(), 3u);
  EXPECT_EQ(recipe.nodes[0].name, "accel");
  EXPECT_EQ(recipe.nodes[0].type, "sensor");
  EXPECT_EQ(recipe.nodes[0].str("sensor", ""), "accelerometer");
  EXPECT_DOUBLE_EQ(recipe.nodes[0].num("rate_hz", 0), 20.0);
  ASSERT_EQ(recipe.edges.size(), 2u);
  EXPECT_EQ(recipe.edges[0], (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(recipe.edges[1], (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(Parser, ChainedEdgesExpand) {
  auto r = parse(R"(
recipe chain
node s : sensor { rate_hz = 1 }
node f : filter { }
node m : map { }
node a : actuator
edge s -> f -> m -> a
)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().edges.size(), 3u);
}

TEST(Parser, BooleanAndNumericParams) {
  auto r = parse(R"(
recipe types
node s : sensor { rate_hz = 2.5, fast = true, slow = false }
node w : window { size = 4 }
edge s -> w
)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  const auto& s = r.value().nodes[0];
  EXPECT_TRUE(s.flag("fast", false));
  EXPECT_FALSE(s.flag("slow", true));
  EXPECT_DOUBLE_EQ(s.num("rate_hz", 0), 2.5);
}

TEST(Parser, StringWithCommaInsideQuotes) {
  auto r = parse(R"(
recipe q
node s : sensor { rate_hz = 1, note = "a,b,c" }
node w : window { size = 2 }
edge s -> w
)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().nodes[0].str("note", ""), "a,b,c");
}

TEST(Parser, CommentsAndBlankLinesIgnored) {
  auto r = parse(
      "# header\n\nrecipe c  # trailing comment\n"
      "node s : sensor { rate_hz = 1 }  # node comment\n"
      "node w : window { size = 2 }\n"
      "edge s -> w\n\n");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().name, "c");
}

TEST(Parser, ErrorsCarryLineNumbers) {
  auto r = parse("recipe x\nnode broken\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("line 2"), std::string::npos);
}

TEST(Parser, RejectsUnknownDirective) {
  EXPECT_FALSE(parse("recipe x\nfrobnicate y\n").ok());
}

TEST(Parser, RejectsDuplicateRecipeDirective) {
  EXPECT_FALSE(parse("recipe a\nrecipe b\n").ok());
}

TEST(Parser, RejectsEdgeToUnknownNode) {
  auto r = parse(R"(
recipe x
node s : sensor { rate_hz = 1 }
edge s -> ghost
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("ghost"), std::string::npos);
}

TEST(Parser, RejectsUnterminatedString) {
  EXPECT_FALSE(parse(R"(
recipe x
node s : sensor { sensor = "oops }
node w : window { size = 2 }
edge s -> w
)").ok());
}

TEST(Parser, RejectsMissingBrace) {
  EXPECT_FALSE(parse(R"(
recipe x
node s : sensor { rate_hz = 1
edge s -> s
)").ok());
}

TEST(Parser, RejectsDuplicateParamKey) {
  EXPECT_FALSE(parse(R"(
recipe x
node s : sensor { rate_hz = 1, rate_hz = 2 }
)").ok());
}

TEST(Parser, RejectsSingleNodeEdge) {
  EXPECT_FALSE(parse(R"(
recipe x
node s : sensor { rate_hz = 1 }
edge s
)").ok());
}

TEST(Parser, ToTextRoundTrips) {
  auto r = parse(kElderly);
  ASSERT_TRUE(r.ok());
  const std::string text = to_text(r.value());
  auto r2 = parse(text);
  ASSERT_TRUE(r2.ok()) << r2.error().to_string() << "\n" << text;
  EXPECT_EQ(r2.value().name, r.value().name);
  ASSERT_EQ(r2.value().nodes.size(), r.value().nodes.size());
  for (std::size_t i = 0; i < r.value().nodes.size(); ++i) {
    EXPECT_EQ(r2.value().nodes[i].name, r.value().nodes[i].name);
    EXPECT_EQ(r2.value().nodes[i].type, r.value().nodes[i].type);
    EXPECT_EQ(r2.value().nodes[i].params, r.value().nodes[i].params);
  }
  EXPECT_EQ(r2.value().edges, r.value().edges);
}

TEST(Parser, ParsesAllKnownNodeTypes) {
  auto r = parse(R"(
recipe everything
node s1 : sensor { sensor = "s", rate_hz = 10, model = "activity" }
node w : window { size = 8, aggregate = "mean" }
node f : filter { field = "v", op = "gt", value = 0.5 }
node m : map { field = "v", scale = 2, offset = 1 }
node an : anomaly { algorithm = "lof", threshold = 2.0 }
node tr : train { algorithm = "pa1" }
node pr : predict { algorithm = "pa1" }
node es : estimate { target = "t" }
node cl : cluster { k = 3 }
node mg : merge
node ac : actuator { actuator = "relay" }
edge s1 -> w -> f -> m -> an -> mg
edge s1 -> tr
edge s1 -> pr
edge tr -> pr
edge s1 -> es -> mg
edge s1 -> cl -> mg
edge mg -> ac
edge pr -> ac
)");
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  EXPECT_EQ(r.value().nodes.size(), 11u);
}

}  // namespace
}  // namespace ifot::recipe
