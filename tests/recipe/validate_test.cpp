#include <gtest/gtest.h>

#include "recipe/recipe.hpp"

namespace ifot::recipe {
namespace {

RecipeNode sensor_node(const std::string& name, double rate = 10) {
  RecipeNode n;
  n.name = name;
  n.type = "sensor";
  n.params["rate_hz"] = rate;
  return n;
}

RecipeNode typed_node(const std::string& name, const std::string& type) {
  RecipeNode n;
  n.name = name;
  n.type = type;
  return n;
}

Recipe minimal_valid() {
  Recipe r;
  r.name = "ok";
  r.nodes = {sensor_node("s"), typed_node("w", "window"),
             typed_node("a", "actuator")};
  r.nodes[1].params["size"] = 4.0;
  r.edges = {{0, 1}, {1, 2}};
  return r;
}

TEST(Validate, AcceptsMinimalPipeline) {
  EXPECT_TRUE(validate(minimal_valid()).ok());
}

TEST(Validate, RejectsEmptyRecipe) {
  Recipe r;
  r.name = "empty";
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsMissingName) {
  Recipe r = minimal_valid();
  r.name.clear();
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsDuplicateNodeNames) {
  Recipe r = minimal_valid();
  r.nodes[1].name = "s";
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsUnknownType) {
  Recipe r = minimal_valid();
  r.nodes[1].type = "teleport";
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsEdgeOutOfRange) {
  Recipe r = minimal_valid();
  r.edges.push_back({0, 99});
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsSelfLoop) {
  Recipe r = minimal_valid();
  r.edges.push_back({1, 1});
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsDuplicateEdge) {
  Recipe r = minimal_valid();
  r.edges.push_back({0, 1});
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsCycle) {
  Recipe r;
  r.name = "cyclic";
  r.nodes = {sensor_node("s"), typed_node("f", "filter"),
             typed_node("m", "map"), typed_node("a", "actuator")};
  r.edges = {{0, 1}, {1, 2}, {2, 1}, {2, 3}};
  auto status = validate(r);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("cycle"), std::string::npos);
}

TEST(Validate, RejectsSensorWithInputs) {
  Recipe r = minimal_valid();
  r.edges.push_back({1, 0});
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsActuatorWithOutputs) {
  Recipe r = minimal_valid();
  r.nodes.push_back(typed_node("f", "filter"));
  r.edges.push_back({2, 3});
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsOrphanOperator) {
  Recipe r = minimal_valid();
  r.nodes.push_back(typed_node("orphan", "filter"));
  auto status = validate(r);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message.find("orphan"), std::string::npos);
}

TEST(Validate, RejectsNonPositiveSensorRate) {
  Recipe r = minimal_valid();
  r.nodes[0].params["rate_hz"] = 0.0;
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsBadWindowAggregate) {
  Recipe r = minimal_valid();
  r.nodes[1].params["aggregate"] = std::string("median");
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsBadFilterOp) {
  Recipe r = minimal_valid();
  r.nodes[1] = typed_node("f", "filter");
  r.nodes[1].params["op"] = std::string("between");
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsBadAnomalyAlgorithm) {
  Recipe r = minimal_valid();
  r.nodes[1] = typed_node("an", "anomaly");
  r.nodes[1].params["algorithm"] = std::string("isolation_forest");
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsBadTrainAlgorithm) {
  Recipe r = minimal_valid();
  r.nodes[1] = typed_node("t", "train");
  r.nodes[1].params["algorithm"] = std::string("transformer");
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsZeroClusterK) {
  Recipe r = minimal_valid();
  r.nodes[1] = typed_node("c", "cluster");
  r.nodes[1].params["k"] = 0.0;
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsFractionalParallelism) {
  Recipe r = minimal_valid();
  r.nodes[1].params["parallelism"] = 2.5;
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, RejectsParallelSensor) {
  Recipe r = minimal_valid();
  r.nodes[0].params["parallelism"] = 2.0;
  EXPECT_FALSE(validate(r).ok());
}

TEST(Validate, AcceptsParallelOperator) {
  Recipe r = minimal_valid();
  r.nodes[1].params["parallelism"] = 4.0;
  EXPECT_TRUE(validate(r).ok());
}

TEST(TopologicalOrder, RespectsEdges) {
  Recipe r = minimal_valid();
  auto order = topological_order(r);
  ASSERT_TRUE(order.ok());
  const auto& o = order.value();
  ASSERT_EQ(o.size(), 3u);
  auto pos = [&](std::size_t node) {
    for (std::size_t i = 0; i < o.size(); ++i) {
      if (o[i] == node) return i;
    }
    return SIZE_MAX;
  };
  EXPECT_LT(pos(0), pos(1));
  EXPECT_LT(pos(1), pos(2));
}

TEST(TopologicalOrder, DetectsCycle) {
  Recipe r = minimal_valid();
  r.edges.push_back({2, 0});  // actuator -> sensor back edge
  EXPECT_FALSE(topological_order(r).ok());
}

TEST(RecipeNode, TypedParamAccessors) {
  RecipeNode n;
  n.params["d"] = 1.5;
  n.params["s"] = std::string("str");
  n.params["b"] = true;
  EXPECT_DOUBLE_EQ(n.num("d", 0), 1.5);
  EXPECT_DOUBLE_EQ(n.num("missing", 9), 9);
  EXPECT_DOUBLE_EQ(n.num("s", 7), 7);  // wrong type -> fallback
  EXPECT_EQ(n.str("s", ""), "str");
  EXPECT_EQ(n.str("d", "fb"), "fb");
  EXPECT_TRUE(n.flag("b", false));
  EXPECT_FALSE(n.flag("d", false));
  EXPECT_TRUE(n.has("d"));
  EXPECT_FALSE(n.has("zzz"));
}

TEST(Recipe, IndexAndNeighbours) {
  Recipe r = minimal_valid();
  EXPECT_EQ(r.index_of("w"), 1u);
  EXPECT_EQ(r.index_of("nope"), SIZE_MAX);
  EXPECT_EQ(r.inputs_of(1), (std::vector<std::size_t>{0}));
  EXPECT_EQ(r.outputs_of(1), (std::vector<std::size_t>{2}));
  EXPECT_TRUE(r.inputs_of(0).empty());
  EXPECT_TRUE(r.outputs_of(2).empty());
}

}  // namespace
}  // namespace ifot::recipe
