#!/usr/bin/env python3
"""Unit tests for the scripts/ifot_layout.py layout parsers, driven by
the hand-written dumps checked in under tests/lint/fixtures/layout/.
Covers:

  * DWARF (readelf --debug-dump=info text): qualified names through
    namespace scopes, member sizes through typedef chains, padding-hole
    computation at bit granularity, bitfields via DW_AT_data_bit_offset,
    artificial vptr members, base subobjects via DW_TAG_inheritance, and
    declaration-only DIEs staying out of the database;
  * Clang (-fdump-record-layouts-complete text): the same four records
    from the text dump -- build-log noise around the blocks ignored,
    nested subobject re-dump lines skipped, byte:bit bitfield offsets,
    `(T vtable pointer)` and `(base)` rows classified as overhead;
  * both sources agree on size, padding, and overhead for every record;
  * merge_record flags ODR-style size conflicts and audit() surfaces
    them as [layout-coverage];
  * find_annotation: a reasoned `// layout: pad(N, reason)` parses into
    an allowance, reason-less and unknown annotations come back as
    problems;
  * audit(): budget overruns and padding over the threshold produce the
    [layout-budget] / [layout-padding] diagnostics.

Usage: layout_parser_test.py <repo-root>
"""
import importlib.util
import os
import sys
import unittest

REPO = os.path.abspath(sys.argv.pop(1)) if len(sys.argv) > 1 else \
    os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

spec = importlib.util.spec_from_file_location(
    "ifot_layout", os.path.join(REPO, "scripts", "ifot_layout.py"))
lay = importlib.util.module_from_spec(spec)
spec.loader.exec_module(lay)

FIXDIR = os.path.join(REPO, "tests", "lint", "fixtures", "layout")
FIXSRC = "tests/lint/fixtures/layout/layout_types.cpp"


def read_fixture(name):
    with open(os.path.join(FIXDIR, name), encoding="utf-8") as f:
        return f.read()


def dwarf_db():
    db, conflicts = {}, []
    lay.records_from_dwarf(read_fixture("dwarf_dump.txt"), "fixture.o",
                           db, conflicts)
    return db, conflicts


def clang_db():
    db, conflicts = {}, []
    lay.records_from_clang(read_fixture("clang_dump.txt"), "fixture.cpp",
                           db, conflicts)
    return db, conflicts


class DwarfParserTest(unittest.TestCase):
    def setUp(self):
        self.db, self.conflicts = dwarf_db()

    def test_records_and_qualified_names(self):
        self.assertEqual(
            set(self.db),
            {"fix::Inner", "fix::Holey", "fix::Packed", "fix::Derived"})
        self.assertEqual(self.conflicts, [])

    def test_declaration_only_die_is_skipped(self):
        self.assertNotIn("fix::Fwd", self.db)

    def test_member_size_through_typedef(self):
        inner = self.db["fix::Inner"]
        self.assertEqual(inner.size, 16)
        x = next(m for m in inner.members if m.name == "x")
        self.assertEqual((x.bit_offset, x.bit_size), (0, 64))
        self.assertEqual(inner.padding_bytes(), 0)

    def test_holes_at_bit_granularity(self):
        holey = self.db["fix::Holey"]
        self.assertEqual(holey.size, 32)
        self.assertEqual(holey.padding_bytes(), 14)
        self.assertEqual(holey.describe_holes(), "7B@1, 7B@25")

    def test_bitfields_and_vptr(self):
        packed = self.db["fix::Packed"]
        vptrs = [m for m in packed.members if m.kind == "vptr"]
        self.assertEqual(len(vptrs), 1)
        self.assertEqual((vptrs[0].bit_offset, vptrs[0].bit_size), (0, 64))
        a = next(m for m in packed.members if m.name == "a")
        b = next(m for m in packed.members if m.name == "b")
        self.assertEqual((a.bit_offset, a.bit_size), (64, 3))
        self.assertEqual((b.bit_offset, b.bit_size), (67, 5))
        self.assertEqual(packed.overhead_bytes(), 8)
        # bits 72..128 are free: 56 bits = 7 bytes of padding.
        self.assertEqual(packed.padding_bytes(), 7)

    def test_base_subobject(self):
        derived = self.db["fix::Derived"]
        bases = [m for m in derived.members if m.kind == "base"]
        self.assertEqual(len(bases), 1)
        self.assertEqual((bases[0].bit_offset, bases[0].bit_size), (0, 128))
        self.assertEqual(derived.overhead_bytes(), 16)
        self.assertEqual(derived.padding_bytes(), 0)


class ClangParserTest(unittest.TestCase):
    def setUp(self):
        self.db, self.conflicts = clang_db()

    def test_records_survive_build_log_noise(self):
        self.assertEqual(
            set(self.db),
            {"fix::Inner", "fix::Holey", "fix::Packed", "fix::Derived"})
        self.assertEqual(self.conflicts, [])

    def test_nested_redump_lines_are_skipped(self):
        holey = self.db["fix::Holey"]
        self.assertEqual(sorted(m.name for m in holey.members),
                         ["tag", "tail", "value"])
        value = next(m for m in holey.members if m.name == "value")
        self.assertEqual((value.bit_offset, value.bit_size), (64, 128))
        self.assertEqual(holey.padding_bytes(), 14)

    def test_byte_colon_bit_offsets(self):
        packed = self.db["fix::Packed"]
        a = next(m for m in packed.members if m.name == "a")
        b = next(m for m in packed.members if m.name == "b")
        self.assertEqual((a.bit_offset, a.bit_size), (64, 3))
        self.assertEqual((b.bit_offset, b.bit_size), (67, 5))
        self.assertEqual(packed.overhead_bytes(), 8)
        self.assertEqual(packed.padding_bytes(), 7)

    def test_base_row(self):
        derived = self.db["fix::Derived"]
        bases = [m for m in derived.members if m.kind == "base"]
        self.assertEqual(len(bases), 1)
        self.assertEqual((bases[0].bit_offset, bases[0].bit_size), (0, 128))
        self.assertEqual(derived.overhead_bytes(), 16)

    def test_sources_agree(self):
        dwarf, _ = dwarf_db()
        for name, rec in self.db.items():
            self.assertEqual(rec.size, dwarf[name].size, name)
            self.assertEqual(rec.padding_bytes(),
                             dwarf[name].padding_bytes(), name)
            self.assertEqual(rec.overhead_bytes(),
                             dwarf[name].overhead_bytes(), name)


class MergeTest(unittest.TestCase):
    def test_size_conflict_is_reported(self):
        db, conflicts = {}, []
        lay.merge_record(db, lay.Record("fix::T", 16, "a.o"), conflicts)
        lay.merge_record(db, lay.Record("fix::T", 24, "b.o"), conflicts)
        self.assertEqual(len(conflicts), 1)
        budget = {"__path__": "b.json", "types": {}}
        violations, _ = lay.audit(db, budget, REPO, conflicts)
        self.assertTrue(any("[layout-coverage]" in v for v in violations))


class AnnotationTest(unittest.TestCase):
    def test_reasoned_pad_is_an_allowance(self):
        line, pad, problem = lay.find_annotation(REPO, FIXSRC,
                                                 "LayoutAnnotated")
        self.assertIsNotNone(line)
        self.assertEqual(pad, 14)
        self.assertIsNone(problem)

    def test_reasonless_pad_is_a_problem(self):
        _, pad, problem = lay.find_annotation(REPO, FIXSRC, "LayoutBadNote")
        self.assertIsNone(pad)
        self.assertIn("without a reason", problem)

    def test_unknown_annotation_is_a_problem(self):
        _, pad, problem = lay.find_annotation(REPO, FIXSRC,
                                              "LayoutUnknownNote")
        self.assertIsNone(pad)
        self.assertIn("unknown layout annotation", problem)

    def test_unannotated_type_has_no_allowance(self):
        line, pad, problem = lay.find_annotation(REPO, FIXSRC, "LayoutHole")
        self.assertIsNotNone(line)
        self.assertIsNone(pad)
        self.assertIsNone(problem)

    def test_missing_type_is_not_found(self):
        self.assertEqual(lay.find_annotation(REPO, FIXSRC, "LayoutGhost"),
                         (None, None, None))


def _record(name, size, fill_bytes):
    rec = lay.Record(name, size, "t.o")
    rec.members.append(lay.Member("blob", 0, fill_bytes * 8))
    return rec


class AuditTest(unittest.TestCase):
    def budget(self, key, **spec):
        spec.setdefault("file", FIXSRC)
        return {"__path__": "b.json", "pad_default": 7,
                "types": {key: spec}}

    def test_budget_overrun(self):
        db = {"layoutfix::LayoutOverrun": _record(
            "layoutfix::LayoutOverrun", 24, 24)}
        violations, _ = lay.audit(
            db, self.budget("LayoutOverrun", budget=16), REPO, [])
        self.assertEqual(len(violations), 1)
        self.assertIn("[layout-budget]", violations[0])

    def test_padding_over_threshold(self):
        db = {"layoutfix::LayoutHole": _record(
            "layoutfix::LayoutHole", 24, 10)}
        violations, _ = lay.audit(
            db, self.budget("LayoutHole", budget=24), REPO, [])
        self.assertEqual(len(violations), 1)
        self.assertIn("[layout-padding]", violations[0])

    def test_within_budget_is_silent(self):
        db = {"layoutfix::LayoutOverrun": _record(
            "layoutfix::LayoutOverrun", 24, 24)}
        violations, rows = lay.audit(
            db, self.budget("LayoutOverrun", budget=24), REPO, [])
        self.assertEqual(violations, [])
        self.assertEqual(len(rows), 1)

    def test_missing_coverage(self):
        violations, _ = lay.audit(
            {}, self.budget("LayoutGhost", budget=8), REPO, [])
        self.assertEqual(len(violations), 1)
        self.assertIn("[layout-coverage]", violations[0])

    def test_suffix_and_regex_matching(self):
        rec = _record("ifot::mqtt::TopicTree<int>::Node", 112, 112)
        db = {rec.qualified: rec}
        self.assertEqual(
            lay.find_budget_type(db, "TopicTree::Node",
                                 {"match": r"TopicTree<.*>::Node$"}), [rec])
        self.assertEqual(lay.find_budget_type(db, "Node", {}), [rec])
        self.assertEqual(lay.find_budget_type(db, "Leaf", {}), [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
