#!/usr/bin/env bash
# Negative test of scripts/ifot_layout.py: compile the seeded fixture TU
# under tests/lint/fixtures/layout/ with full debug types, audit it
# against the deliberately wrong committed budget.json and require
#
#   (a) a non-zero exit,
#   (b) each rule to fire on its struct:
#         [layout-budget]    LayoutOverrun     (24 bytes vs 16 budget)
#         [layout-padding]   LayoutHole        (14 unannotated hole bytes)
#         [layout-coverage]  LayoutGhost       (budgeted, never defined)
#   (c) the reason-less `// layout: pad(14)` on LayoutBadNote and the
#       unknown `// layout: shrink(...)` on LayoutUnknownNote to be
#       rejected,
#   (d) LayoutAnnotated (same holes, reasoned pad note) to stay silent.
#
# SKIPs (exit 0) without python3, a C++ compiler, or readelf.
#
# Usage: run_layout_fixture_test.sh <repo-root>
set -u

root="${1:?usage: run_layout_fixture_test.sh <repo-root>}"
cd "$root" || exit 2

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found"
  exit 0
fi
CXX_BIN="${CXX:-}"
if [ -z "$CXX_BIN" ]; then
  for candidate in g++ clang++ c++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX_BIN="$candidate"
      break
    fi
  done
fi
if [ -z "$CXX_BIN" ]; then
  echo "SKIP: no C++ compiler found"
  exit 0
fi
if ! command -v readelf >/dev/null 2>&1; then
  echo "SKIP: readelf not found; the DWARF layout path needs binutils"
  exit 0
fi

fixdir="tests/lint/fixtures/layout"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

if ! "$CXX_BIN" -std=c++20 -g -fno-eliminate-unused-debug-types \
     -c "$fixdir/layout_types.cpp" -o "$tmp/layout_types.o" \
     2>"$tmp/compile.err"; then
  echo "FAIL: could not compile fixture layout_types.cpp:"
  sed 's/^/    /' "$tmp/compile.err"
  exit 1
fi

out=$(python3 scripts/ifot_layout.py --dwarf-dir "$tmp" --root . \
        --budget "$fixdir/budget.json" 2>&1)
status=$?
echo "$out"

fail=0
if [ "$status" -eq 0 ]; then
  echo "FAIL: analyzer exited 0 on seeded violations"
  fail=1
fi
for rule in layout-budget layout-padding layout-coverage; do
  case "$out" in
    *"[$rule]"*) ;;
    *) echo "FAIL: rule $rule did not fire on its fixture"; fail=1 ;;
  esac
done
case "$out" in
  *"LayoutOverrun is 24 bytes, budget 16"*) ;;
  *) echo "FAIL: budget overrun was not attributed to LayoutOverrun"; fail=1 ;;
esac
case "$out" in
  *"LayoutHole wastes 14 bytes"*) ;;
  *) echo "FAIL: unannotated padding was not measured on LayoutHole"; fail=1 ;;
esac
case "$out" in
  *"LayoutGhost"*) ;;
  *) echo "FAIL: missing coverage of LayoutGhost was not flagged"; fail=1 ;;
esac
case "$out" in
  *"without a reason"*) ;;
  *) echo "FAIL: reason-less pad() suppression was not rejected"; fail=1 ;;
esac
case "$out" in
  *"unknown layout annotation 'shrink'"*) ;;
  *) echo "FAIL: unknown annotation kind was not rejected"; fail=1 ;;
esac
# The reasoned pad(14, ...) on LayoutAnnotated must suppress its holes
# while every rule above fired -- the escape hatch works, unexplained
# or misspelled suppressions do not.
case "$out" in
  *"LayoutAnnotated"*) echo "FAIL: reasoned pad() did not suppress"; fail=1 ;;
esac

[ "$fail" -eq 0 ] && echo "OK: every layout rule fired on its seeded fixture"
exit "$fail"
