// Source-side fixture for tests/lint/callgraph_parser_test.py: the
// hand-written VCG dumps under ../ci reference these exact file:line
// locations, so keep line numbers stable when editing.
#pragma once

namespace cgci {

// static: recurse(8, fixture cycle bounded by the harness, which
// never nests past eight levels; the annotation spans three comment
// lines to exercise multi-line gathering)
int bounded_rec(int n);

int bounded_peer(int n);

// static: calls(fixture_target)
int dispatch(int x);

int fixture_target(int x);

int unexplained(int x);

}  // namespace cgci
