// Seeded [indirect-call] violation for run_callgraph_fixture_test.sh:
// a call through a function pointer with no static calls annotation
// naming the possible targets and no leaf cut.
namespace cgfix {

using Fn = int (*)(int);

int indirect_root(Fn fn, int x) { return fn(x) + 1; }

}  // namespace cgfix
