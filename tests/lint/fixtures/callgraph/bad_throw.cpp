// Seeded [no-throw] violation for run_callgraph_fixture_test.sh:
// vector::at's range check reaches std::__throw_out_of_range_fmt, an
// exception-origination point, with no alloc/leaf cut on the chain.
#include <vector>

namespace cgfix {

int throw_root(const std::vector<int>& v) { return v.at(3); }

}  // namespace cgfix
