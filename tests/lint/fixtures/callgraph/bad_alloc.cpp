// Seeded [no-alloc] violation for run_callgraph_fixture_test.sh: the
// root reaches operator new (vector growth) and no line on the chain
// carries a sanctioning static alloc annotation.
#include <vector>

namespace cgfix {

int* grow(std::vector<int>& v) {
  v.push_back(1);
  return v.data();
}

int alloc_root(std::vector<int>& v) { return *grow(v); }

}  // namespace cgfix
