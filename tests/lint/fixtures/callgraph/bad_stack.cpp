// Seeded [bounded-stack] budget violation for
// run_callgraph_fixture_test.sh: the root's worst-case stack (a 4 KiB
// scratch frame) exceeds the 128-byte budget committed for it in
// budget.json next to this file.
namespace cgfix {

int burn_stack(int x) {
  volatile char scratch[4096];
  scratch[0] = static_cast<char>(x);
  for (int i = 1; i < 4096; ++i) scratch[i] = scratch[i - 1];
  return scratch[4095] + x;
}

int stack_root(int x) { return burn_stack(x + 1); }

}  // namespace cgfix
