// Seeded [bounded-stack] recursion violation for
// run_callgraph_fixture_test.sh: a hot-path recursion cycle with no
// static recurse depth bound on its definition.
// (Compiled at -O1 so GCC does not collapse the recursion into a loop.)
namespace cgfix {

int recurse_helper(int n);

int recurse_root(int n) {
  if (n <= 0) return 0;
  return n + recurse_helper(n - 1);
}

int recurse_helper(int n) { return recurse_root(n) + 1; }

}  // namespace cgfix
