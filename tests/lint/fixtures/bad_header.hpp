// Lint negative fixture: deliberately missing #pragma once and with
// misordered includes. Never compiled into any target; the
// lint_fixture_negative test asserts ifot_lint flags every seeded
// violation here.
#include "zeta/some_project_header.hpp"
#include <vector>
#include <algorithm>
