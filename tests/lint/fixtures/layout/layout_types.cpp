// Seeded layout violations for run_layout_fixture_test.sh. Each struct
// trips exactly one rule of scripts/ifot_layout.py (see budget.json in
// this directory); LayoutAnnotated is the positive control that must
// stay silent. Globals keep every record alive in the DWARF output.
#include <cstdint>

namespace layoutfix {

// Over the committed 16-byte budget (24 bytes) -> [layout-budget].
struct LayoutOverrun {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};

// char/uint64/char leaves 7 + 7 bytes of holes with no annotation
// -> [layout-padding].
struct LayoutHole {
  char head = 0;
  std::uint64_t body = 0;
  char tail = 0;
};

// Same shape, but the padding is declared and justified -> silent.
// layout: pad(14, mirrors the wire order; rewriting would break decode)
struct LayoutAnnotated {
  char head = 0;
  std::uint64_t body = 0;
  char tail = 0;
};

// Reason-less suppression -> [layout-padding] "without a reason".
// layout: pad(14)
struct LayoutBadNote {
  char head = 0;
  std::uint64_t body = 0;
  char tail = 0;
};

// Misspelled/unknown annotation kind -> [layout-padding] "unknown".
// layout: shrink(14, not a recognised knob)
struct LayoutUnknownNote {
  char head = 0;
  std::uint64_t body = 0;
  char tail = 0;
};

// LayoutGhost appears only in budget.json -> [layout-coverage].

LayoutOverrun g_overrun;
LayoutHole g_hole;
LayoutAnnotated g_annotated;
LayoutBadNote g_bad_note;
LayoutUnknownNote g_unknown_note;

}  // namespace layoutfix
