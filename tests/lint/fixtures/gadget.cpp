// Lint negative fixture (see gadget.hpp). Never compiled.
#include "gadget.hpp"

void Gadget::mutate_state(int v) { state_ = v; }
