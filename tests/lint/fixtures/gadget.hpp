// Lint negative fixture for the audit-coverage rule: a class with a
// public mutating API that neither audits nor carries an exempt pragma.
// Never compiled into any target.
#pragma once

class Gadget {
 public:
  void mutate_state(int v);
  [[nodiscard]] int state() const { return state_; }

 private:
  int state_ = 0;
};
