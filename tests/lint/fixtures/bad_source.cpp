// Lint negative fixture: deliberately violates the nondeterminism, raw
// I/O, unchecked-result and suppression-reason contracts. Never compiled
// into any target.
#include <iostream>
#include <random>

struct Status {};
Status do_thing();

void misbehave() {
  std::mt19937 gen(std::random_device{}());
  std::cout << gen() << "\n";
  std::srand(42);
  do_thing();
  do_thing();  // lint: allow(unchecked-result)
}

// layout: pad(14)
struct ReasonlessPad {};

// layout: shrink(2, not a recognised layout annotation kind)
struct UnknownLayoutNote {};
