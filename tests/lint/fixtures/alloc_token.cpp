// Seeded no-alloc-token / unknown-suppression violations; the fixture
// test passes this file with --no-alloc-file so the rule treats it as a
// data-plane file.
#include <functional>
#include <string>

namespace fixture {

// Violation: std::to_string allocates a fresh string per call.
std::string format_id(int id) { return std::to_string(id); }

// Violation: operator+ with a string literal builds a heap temporary.
std::string label(const std::string& name) { return "node-" + name; }

// Violation: by-value std::function is heap-backed type erasure.
void apply(std::function<void(int)> fn) { fn(1); }

// NOT a violation: reference declarators bind without constructing.
void apply_ref(const std::function<void(int)>& fn) { fn(2); }

// NOT a violation: a type alias names the type, constructs nothing.
using Callback = std::function<void()>;

// NOT a violation: suppressed with a reason.
std::string suffix(int n) {
  return std::to_string(n);  // lint: allow(no-alloc-token): cold config path, runs once at startup
}

// Violation: the suppression names a rule that does not exist, so it
// suppresses nothing and hides the typo forever.
std::string prefix(int n) {
  return std::to_string(n);  // lint: allow(no-alloc-tokens): typo in the rule name
}

}  // namespace fixture
