#!/usr/bin/env bash
# Negative test of scripts/ifot_callgraph.py: compile the seeded fixture
# TUs under tests/lint/fixtures/callgraph/ with -fcallgraph-info=su,da,
# run the analyzer over the resulting .ci dumps and require
#
#   (a) a non-zero exit,
#   (b) each contract to fire on its fixture:
#         [no-alloc]       bad_alloc.cpp    (unsanctioned operator new)
#         [no-throw]       bad_throw.cpp    (std::__throw_* reachable)
#         [indirect-call]  bad_indirect.cpp (unexplained fn-pointer call)
#         [bounded-stack]  bad_recurse.cpp  (recursion without recurse())
#   (c) checking bad_stack.cpp against the deliberately tiny committed
#       budget.json to fail with a budget-exceeded diagnostic.
#
# Fixtures compile at -O1: enough inlining to be realistic, but no
# sibling-call optimization, so the seeded recursion survives into the
# dump. SKIPs (exit 0) without python3 or GCC >= 10.
#
# Usage: run_callgraph_fixture_test.sh <repo-root>
set -u

root="${1:?usage: run_callgraph_fixture_test.sh <repo-root>}"
cd "$root" || exit 2

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found"
  exit 0
fi
GCC="${CXX:-g++}"
if ! command -v "$GCC" >/dev/null 2>&1 ||
   ! "$GCC" --version 2>/dev/null | head -1 | grep -qiE 'g\+\+|gcc'; then
  echo "SKIP: no GCC found (-fcallgraph-info needs GCC >= 10)"
  exit 0
fi
major="$("$GCC" -dumpversion 2>/dev/null | cut -d. -f1)"
case "$major" in ''|*[!0-9]*) major=0 ;; esac
if [ "$major" -lt 10 ]; then
  echo "SKIP: $GCC is GCC $major (-fcallgraph-info=su,da needs GCC >= 10)"
  exit 0
fi

fixdir="tests/lint/fixtures/callgraph"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

for tu in bad_alloc bad_throw bad_indirect bad_recurse bad_stack; do
  if ! "$GCC" -std=c++20 -O1 -fcallgraph-info=su,da \
       -c "$fixdir/$tu.cpp" -o "$tmp/$tu.o" 2>"$tmp/compile.err"; then
    echo "FAIL: could not compile fixture $tu.cpp:"
    sed 's/^/    /' "$tmp/compile.err"
    exit 1
  fi
  # GCC drops the dump next to the object as <object>.ci.
  [ -f "$tmp/$tu.o.ci" ] || mv "$tmp/$tu.ci" "$tmp/$tu.o.ci" 2>/dev/null
done

fail=0

echo "== reachability contracts (alloc / throw / indirect / recursion) =="
out=$(python3 scripts/ifot_callgraph.py --ci-dir "$tmp" --root . \
        --src "$fixdir" --no-budget \
        --root-spec 'alloc_root=cgfix::alloc_root' \
        --root-spec 'throw_root=cgfix::throw_root' \
        --root-spec 'indirect_root=cgfix::indirect_root' \
        --root-spec 'recurse_root=cgfix::recurse_root' 2>&1)
status=$?
echo "$out"
if [ "$status" -eq 0 ]; then
  echo "FAIL: analyzer exited 0 on seeded violations"
  fail=1
fi
for rule in no-alloc no-throw indirect-call; do
  case "$out" in
    *"[$rule]"*) ;;
    *) echo "FAIL: rule $rule did not fire on its fixture"; fail=1 ;;
  esac
done
case "$out" in
  *"recursion cycle on the hot path"*) ;;
  *) echo "FAIL: unannotated recursion was not flagged"; fail=1 ;;
esac

echo "== bounded-stack budget contract =="
out=$(python3 scripts/ifot_callgraph.py --ci-dir "$tmp" --root . \
        --src "$fixdir" --budget "$fixdir/budget.json" \
        --root-spec 'stack_root=cgfix::stack_root' 2>&1)
status=$?
echo "$out"
if [ "$status" -eq 0 ]; then
  echo "FAIL: analyzer exited 0 with the stack budget exceeded"
  fail=1
fi
case "$out" in
  *"worst-case stack grew to"*) ;;
  *) echo "FAIL: budget overrun was not flagged"; fail=1 ;;
esac

[ "$fail" -eq 0 ] && echo "OK: every contract fired on its seeded fixture"
exit "$fail"
