#!/usr/bin/env python3
"""Unit tests for the scripts/ifot_callgraph.py .ci parser and linker,
driven by the hand-written VCG dumps checked in under
tests/lint/fixtures/callgraph/ci/ (paired with the annotated source
fixture under .../ci_src/). Covers:

  * multi-TU linking: a symbol defined in one TU (stack-usage record,
    definition location) and declared in another (ellipse record) merges
    into one defined node carrying both locations;
  * edge dedup across records and adjacency construction;
  * indirect-edge detection: an unannotated __indirect_call edge is a
    violation, a calls()-annotated one resolves to its named target;
  * recursion cycles are unbounded-stack violations unless a recurse()
    annotation bounds them (here: annotated -> no violation, and the
    bound multiplies the cycle frame);
  * multi-line annotation parsing: a recurse() spanning three comment
    lines parses once and registers under every spanned line.

Usage: callgraph_parser_test.py <repo-root>
"""
import importlib.util
import os
import sys
import unittest

REPO = os.path.abspath(sys.argv.pop(1)) if len(sys.argv) > 1 else \
    os.path.abspath(os.path.join(os.path.dirname(__file__), "..", ".."))

spec = importlib.util.spec_from_file_location(
    "ifot_callgraph", os.path.join(REPO, "scripts", "ifot_callgraph.py"))
cg = importlib.util.module_from_spec(spec)
spec.loader.exec_module(cg)

CI_DIR = os.path.join(REPO, "tests", "lint", "fixtures", "callgraph", "ci")
SRC_DIR = os.path.join(REPO, "tests", "lint", "fixtures", "callgraph",
                       "ci_src")
WIDGET = "tests/lint/fixtures/callgraph/ci_src/widget.hpp"

REC = "_ZN4cgci11bounded_recEi"
PEER = "_ZN4cgci12bounded_peerEi"
DISPATCH = "_ZN4cgci8dispatchEi"
TARGET = "_ZN4cgci14fixture_targetEi"
UNEXPLAINED = "_ZN4cgci11unexplainedEi"


def load_graph():
    g = cg.Graph()
    for name in sorted(os.listdir(CI_DIR)):
        if name.endswith(".ci"):
            g.load_ci_file(os.path.join(CI_DIR, name))
    g.finish()
    return g


def make_analyzer(root_table, diags):
    g = load_graph()
    by_site, _ = cg.scan_annotations([SRC_DIR], REPO, diags)
    return cg.Analyzer(g, by_site, root_table, REPO,
                       cg.DEFAULT_EXTERNAL_FRAME_BYTES, diags,
                       [os.path.relpath(SRC_DIR, REPO).replace(os.sep, "/")])


class MultiTuLinking(unittest.TestCase):
    def test_declaration_merges_into_definition(self):
        g = load_graph()
        peer = g.nodes[PEER]
        # tu_a declares bounded_peer (ellipse), tu_b defines it with a
        # stack-usage record; the linked node must be the definition.
        self.assertTrue(peer.defined)
        self.assertEqual(peer.su_bytes, 40)
        self.assertEqual(peer.sig, "int cgci::bounded_peer(int)")
        self.assertIn((WIDGET, 13), peer.locs)

    def test_cross_tu_cycle_edges_link(self):
        g = load_graph()
        # bounded_rec -> bounded_peer came from tu_a, the back edge from
        # tu_b; the linked adjacency holds both halves of the cycle.
        self.assertEqual([e.dst for e in g.adj[REC]], [PEER])
        self.assertEqual([e.dst for e in g.adj[PEER]], [REC])

    def test_duplicate_edges_dedup(self):
        g = load_graph()
        # tu_a records the dispatch -> __indirect_call edge twice at the
        # same call site (real dumps do this); finish() keeps one.
        self.assertEqual(len(g.adj[DISPATCH]), 1)
        self.assertEqual(g.adj[DISPATCH][0].dst, cg.INDIRECT_NODE)

    def test_locations_parse(self):
        g = load_graph()
        self.assertEqual((g.nodes[REC].file, g.nodes[REC].line),
                         (WIDGET, 11))
        self.assertEqual(g.nodes[TARGET].su_bytes, 16)


class IndirectEdges(unittest.TestCase):
    def test_unannotated_indirect_call_is_violation(self):
        diags = cg.Diagnostics()
        a = make_analyzer([("unexplained", r"cgci::unexplained")], diags)
        a.run_reach()
        rules = [item[2] for item in diags.items]
        self.assertIn("indirect-call", rules)

    def test_calls_annotation_resolves_target(self):
        diags = cg.Diagnostics()
        a = make_analyzer([("dispatch", r"cgci::dispatch")], diags)
        a.run_reach()
        self.assertEqual(diags.items, [])
        # The calls(fixture_target) annotation substitutes the named
        # definition for the placeholder, so it becomes reachable.
        self.assertIn(TARGET, a.reachable)


class RecursionBounds(unittest.TestCase):
    def test_annotated_cycle_is_bounded(self):
        diags = cg.Diagnostics()
        a = make_analyzer([("bounded_rec", r"cgci::bounded_rec")], diags)
        a.run_reach()
        depths = a.run_stack()
        self.assertEqual(diags.items, [])
        # Cycle frame (48 + 40) multiplied by the recurse(8) bound; the
        # cycle calls nothing else, so no external frame is charged.
        measured, _ = depths["bounded_rec"]
        self.assertEqual(measured, (48 + 40) * 8)

    def test_unannotated_cycle_is_violation(self):
        # Same graph, but scanning no annotation sources: the cycle has
        # no recurse() bound, so run_stack must flag it.
        diags = cg.Diagnostics()
        g = load_graph()
        a = cg.Analyzer(g, {}, [("bounded_rec", r"cgci::bounded_rec")],
                        REPO, cg.DEFAULT_EXTERNAL_FRAME_BYTES, diags, [])
        a.run_reach()
        a.run_stack()
        msgs = [item[3] for item in diags.items
                if item[2] == "bounded-stack"]
        self.assertTrue(any("recursion cycle" in m for m in msgs), msgs)


class MultiLineAnnotations(unittest.TestCase):
    def test_wrapped_recurse_parses_and_spans(self):
        diags = cg.Diagnostics()
        by_site, ordered = cg.scan_annotations([SRC_DIR], REPO, diags)
        self.assertEqual(diags.items, [])
        recs = [a for a in ordered if a.kind == "recurse"]
        self.assertEqual(len(recs), 1)
        ann = recs[0]
        self.assertEqual(ann.bound, 8)
        self.assertIn("multi-line gathering", ann.reason)
        # The annotation opens on line 8 and closes on line 10; every
        # spanned line must map back to the same object so both the
        # call-site window and the definition window can see it.
        for line in (8, 9, 10):
            self.assertIn(ann, by_site.get((WIDGET, line), []))
        self.assertNotIn((WIDGET, 11), by_site)


if __name__ == "__main__":
    unittest.main(verbosity=2)
