#!/usr/bin/env bash
# Negative test of scripts/ifot_lint.py: run the linter over the seeded
# fixtures and require (a) a non-zero exit, (b) every rule to fire, and
# (c) the reason-less suppression to be rejected.
#
# Usage: run_lint_fixture_test.sh <repo-root>
set -u

root="${1:?usage: run_lint_fixture_test.sh <repo-root>}"
cd "$root" || exit 2

if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: python3 not found"
  exit 0
fi

out=$(python3 scripts/ifot_lint.py \
        --audited-class \
        Gadget:tests/lint/fixtures/gadget.hpp:tests/lint/fixtures/gadget.cpp \
        --no-alloc-file tests/lint/fixtures/alloc_token.cpp \
        tests/lint/fixtures/bad_header.hpp \
        tests/lint/fixtures/bad_source.cpp \
        tests/lint/fixtures/alloc_token.cpp \
        tests/lint/fixtures/gadget.hpp \
        tests/lint/fixtures/gadget.cpp 2>&1)
status=$?
echo "$out"

if [ "$status" -eq 0 ]; then
  echo "FAIL: linter exited 0 on seeded violations"
  exit 1
fi

fail=0
for rule in unchecked-result no-nondeterminism no-raw-io no-alloc-token \
            pragma-once include-order audit-coverage unknown-suppression; do
  case "$out" in
    *"[$rule]"*) ;;
    *) echo "FAIL: rule $rule did not fire on its fixture"; fail=1 ;;
  esac
done
case "$out" in
  *"suppression without a reason"*) ;;
  *) echo "FAIL: reason-less suppression was not rejected"; fail=1 ;;
esac
case "$out" in
  *"layout: pad() suppression without a byte count and a reason"*) ;;
  *) echo "FAIL: reason-less layout pad() was not rejected"; fail=1 ;;
esac
case "$out" in
  *"unknown layout annotation 'shrink'"*) ;;
  *) echo "FAIL: unknown layout annotation kind was not rejected"; fail=1 ;;
esac
# The reasoned allow() in alloc_token.cpp must stay silent (line 26),
# while every rule above fired -- the escape hatch works, unexplained
# or misspelled suppressions do not.
case "$out" in
  *"alloc_token.cpp:26"*) echo "FAIL: reasoned allow() did not suppress"; fail=1 ;;
esac

[ "$fail" -eq 0 ] && echo "OK: all rules fired and the bad suppression was rejected"
exit "$fail"
