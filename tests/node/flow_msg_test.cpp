#include "node/flow_msg.hpp"

#include <gtest/gtest.h>

namespace ifot::node {
namespace {

device::Sample make_sample() {
  device::Sample s;
  s.source = "sense_a";
  s.seq = 99;
  s.sensed_at = 123456789;
  s.fields = {{"ax", 1.5}, {"ay", -2.5}};
  s.label = "walking";
  return s;
}

TEST(FlowMsg, SampleRoundTrip) {
  const device::Sample s = make_sample();
  auto decoded = decode_flow(BytesView(encode_flow(s)));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const auto* out = std::get_if<device::Sample>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, s);
}

TEST(FlowMsg, ModelRoundTrip) {
  const ModelMsg m{"train#2", Bytes{1, 2, 3, 4, 5}};
  auto decoded = decode_flow(BytesView(encode_flow(m)));
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<ModelMsg>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, m);
}

TEST(FlowMsg, EmptyModelRoundTrip) {
  const ModelMsg m{"t", {}};
  auto decoded = decode_flow(BytesView(encode_flow(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<ModelMsg>(decoded.value()), m);
}

TEST(FlowMsg, RejectsEmptyBuffer) {
  EXPECT_FALSE(decode_flow(BytesView(Bytes{})).ok());
}

TEST(FlowMsg, RejectsUnknownTag) {
  const Bytes bad = {0x7F, 0x00};
  auto decoded = decode_flow(BytesView(bad));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kParse);
}

TEST(FlowMsg, RejectsTruncatedSample) {
  Bytes wire = encode_flow(make_sample());
  wire.resize(wire.size() / 2);
  EXPECT_FALSE(decode_flow(BytesView(wire)).ok());
}

TEST(FlowMsg, RejectsModelWithTrailingBytes) {
  Bytes wire = encode_flow(ModelMsg{"t", Bytes{1}});
  wire.push_back(0xAA);
  EXPECT_FALSE(decode_flow(BytesView(wire)).ok());
}

TEST(FlowMsg, TagsDistinguishKinds) {
  const Bytes sample_wire = encode_flow(make_sample());
  const Bytes model_wire = encode_flow(ModelMsg{"t", Bytes{1}});
  EXPECT_NE(sample_wire[0], model_wire[0]);
}

}  // namespace
}  // namespace ifot::node
