// The CPU stall model: rare time-based freezes that reproduce the
// paper's low-rate max-latency outliers without changing capacity.
#include <gtest/gtest.h>

#include "node/cpu_model.hpp"

namespace ifot::node {
namespace {

TEST(CpuStall, DisabledByDefault) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{});
  SimTime done = -1;
  cpu.execute(from_millis(5), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, from_millis(5));
  EXPECT_EQ(cpu.total_stalled(), 0);
  EXPECT_EQ(sim.pending(), 0u);  // no stall timer armed
}

TEST(CpuStall, InjectsFreezesOverTime) {
  sim::Simulator sim;
  CpuProfile profile;
  profile.stall_mean_interval = kSecond;
  profile.stall_min = from_millis(100);
  profile.stall_max = from_millis(200);
  CpuQueue cpu(sim, profile, Rng(42));
  sim.run_until(30 * kSecond);
  // ~30 stalls expected; allow wide slack.
  EXPECT_GT(cpu.total_stalled(), 10 * from_millis(100));
  EXPECT_LT(cpu.total_stalled(), 90 * from_millis(200));
}

TEST(CpuStall, QueuedWorkWaitsOutTheFreeze) {
  sim::Simulator sim;
  CpuProfile profile;
  profile.stall_mean_interval = 10 * kSecond;  // rare
  profile.stall_min = from_millis(300);
  profile.stall_max = from_millis(300);
  CpuQueue cpu(sim, profile, Rng(7));
  // Find when the first stall fires by sampling total_stalled.
  SimTime stall_at = -1;
  for (SimTime t = 0; t < 120 * kSecond && stall_at < 0; t += kMillisecond) {
    sim.run_until(t);
    if (cpu.total_stalled() > 0) stall_at = t;
  }
  ASSERT_GT(stall_at, 0);
  // Work submitted right after the freeze begins completes only after
  // the freeze plus its own service time.
  SimTime done = -1;
  cpu.execute(from_millis(5), [&] { done = sim.now(); });
  sim.run_until(stall_at + kSecond);
  ASSERT_GT(done, 0);
  EXPECT_GE(done - stall_at, from_millis(5));
  EXPECT_LE(done - stall_at, from_millis(306));
}

TEST(CpuStall, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    CpuProfile profile;
    profile.stall_mean_interval = kSecond;
    profile.stall_min = from_millis(50);
    profile.stall_max = from_millis(150);
    CpuQueue cpu(sim, profile, Rng(seed));
    sim.run_until(20 * kSecond);
    return cpu.total_stalled();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace ifot::node
