#include "node/cpu_model.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ifot::node {
namespace {

TEST(CpuQueue, SingleJobCompletesAfterServiceTime) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  SimTime done = -1;
  cpu.execute(from_millis(10), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, from_millis(10));
}

TEST(CpuQueue, JobsQueueFifo) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  std::vector<SimTime> done;
  for (int i = 0; i < 3; ++i) {
    cpu.execute(from_millis(5), [&] { done.push_back(sim.now()); });
  }
  sim.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], from_millis(5));
  EXPECT_EQ(done[1], from_millis(10));
  EXPECT_EQ(done[2], from_millis(15));
}

TEST(CpuQueue, FasterProfileShortensService) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{4.0});  // 4x Raspberry Pi
  SimTime done = -1;
  cpu.execute(from_millis(20), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, from_millis(5));
}

TEST(CpuQueue, SlowerProfileStretchesService) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{0.5});
  SimTime done = -1;
  cpu.execute(from_millis(10), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, from_millis(20));
}

TEST(CpuQueue, IdleGapsDoNotAccumulate) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  SimTime first = -1;
  cpu.execute(from_millis(1), [&] { first = sim.now(); });
  sim.run();
  // Schedule the next job well after the first completed.
  sim.schedule_at(from_millis(100), [&] {
    cpu.execute(from_millis(1), [&] {
      EXPECT_EQ(sim.now(), from_millis(101));
    });
  });
  sim.run();
  EXPECT_EQ(first, from_millis(1));
}

TEST(CpuQueue, BacklogReflectsQueuedWork) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  EXPECT_EQ(cpu.backlog(), 0);
  cpu.execute(from_millis(10), [] {});
  cpu.execute(from_millis(10), [] {});
  EXPECT_EQ(cpu.backlog(), from_millis(20));
  sim.run();
  EXPECT_EQ(cpu.backlog(), 0);
}

TEST(CpuQueue, TotalBusyAccumulates) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{2.0});
  cpu.execute(from_millis(10), [] {});
  cpu.execute(from_millis(10), [] {});
  sim.run();
  EXPECT_EQ(cpu.total_busy(), from_millis(10));  // scaled by factor 2
}

TEST(CpuQueue, ZeroCostRunsInOrder) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  std::vector<int> order;
  cpu.execute(0, [&] { order.push_back(1); });
  cpu.execute(0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(CpuQueue, WorkSubmittedFromCompletionChains) {
  sim::Simulator sim;
  CpuQueue cpu(sim, CpuProfile{1.0});
  SimTime done = -1;
  cpu.execute(from_millis(5), [&] {
    cpu.execute(from_millis(5), [&] { done = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(done, from_millis(10));
}

TEST(CostModel, DefaultsSatisfyCalibrationInvariants) {
  const CostModel costs;
  // Training must dominate predicting (paper: training path saturates
  // first), and stream ops must be far cheaper than analysis ops.
  EXPECT_GT(costs.train, costs.predict);
  EXPECT_GT(costs.predict, costs.stream_op);
  EXPECT_GT(costs.anomaly, costs.stream_op);
  // Train-module capacity (deliver + train per message) must sit between
  // 30 and 60 msg/s so the knee falls between 20 Hz and 40 Hz x 3 sensors.
  const double per_msg_s = to_seconds(costs.deliver + costs.train);
  const double capacity = 1.0 / per_msg_s;
  EXPECT_GT(capacity, 30.0);
  EXPECT_LT(capacity, 90.0);
  // Predict-module capacity must exceed 60 msg/s (20 Hz x 3 fine) and be
  // below 240 msg/s (80 Hz x 3 saturates).
  const double predict_capacity = 1.0 / to_seconds(costs.deliver + costs.predict);
  EXPECT_GT(predict_capacity, 60.0);
  EXPECT_LT(predict_capacity, 240.0);
}

}  // namespace
}  // namespace ifot::node
