// Audit-build invariants of NeuronModule (ISSUE PR3: extend IFOT_AUDIT
// into node/): deployment-ledger balance, sensor-timer legality, the
// failed-modules-are-silent rule, and the deploy-on-failed guard. Death
// expectations branch on audit::kEnabled so the same suite runs in both
// configurations; under -DIFOT_AUDIT=ON every mutating call here also
// re-runs NeuronModule::audit_invariants().
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/audit.hpp"
#include "node/module.hpp"
#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace ifot::node {
namespace {

constexpr const char* kRecipe = R"(
recipe audit_node
node src : sensor { sensor = "temp", rate_hz = 10 }
node hot : filter { field = "value", op = "gt", value = 1.0 }
edge src -> hot
)";

class AuditNodeFabric : public ::testing::Test {
 protected:
  AuditNodeFabric() {
    net::LanConfig lan;
    lan.loss_prob = 0;
    net_ = std::make_unique<net::Network>(sim_, lan, 41);
    auto make = [&](const std::string& name, bool sensor) {
      const NodeId id = net_->add_host(name);
      NeuronModule::Config cfg;
      cfg.name = name;
      cfg.seed = 41;
      modules_.push_back(std::make_unique<NeuronModule>(sim_, *net_, id, cfg));
      if (sensor) modules_.back()->attach_sensor("temp");
      return modules_.back().get();
    };
    sensor_mod_ = make("sensor_mod", true);
    broker_mod_ = make("broker_mod", false);
    broker_mod_->start_broker();
    sensor_mod_->connect(broker_mod_->id());
    sim_.run_until(sim_.now() + from_millis(200));
  }

  recipe::TaskGraph split() {
    auto parsed = recipe::parse(kRecipe);
    EXPECT_TRUE(parsed.ok());
    auto g = recipe::split_recipe(parsed.value());
    EXPECT_TRUE(g.ok());
    return g.value();
  }

  Status deploy(NeuronModule& m, const recipe::TaskGraph& g,
                const std::string& task_name) {
    for (const auto& t : g.tasks) {
      if (t.name == task_name) {
        return m.deploy_task(t, g.recipe.nodes[t.recipe_node]);
      }
    }
    return Err(Errc::kNotFound, "no task " + task_name);
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<NeuronModule>> modules_;
  NeuronModule* sensor_mod_ = nullptr;
  NeuronModule* broker_mod_ = nullptr;
};

TEST_F(AuditNodeFabric, DeployRemoveKeepsLedgerBalanced) {
  const auto g = split();
  ASSERT_TRUE(deploy(*sensor_mod_, g, "src").ok());
  ASSERT_TRUE(deploy(*sensor_mod_, g, "hot").ok());
  EXPECT_EQ(sensor_mod_->counters().get("tasks_deployed"), 2u);
  EXPECT_EQ(sensor_mod_->tasks().size(), 2u);

  // remove_task re-checks the ledger mid-flight (stop/start_sensors both
  // call audit_invariants); this passing under -DIFOT_AUDIT=ON is the
  // regression test for the counter-before-rearm ordering.
  const std::string out = g.tasks[0].output_topic;
  ASSERT_TRUE(sensor_mod_->remove_task(out).ok());
  EXPECT_EQ(sensor_mod_->counters().get("tasks_removed"), 1u);
  EXPECT_EQ(sensor_mod_->tasks().size(), 1u);
  sensor_mod_->audit_invariants();  // explicit final re-check
}

TEST_F(AuditNodeFabric, SensorTimersNeverExceedSensorTasks) {
  const auto g = split();
  ASSERT_TRUE(deploy(*sensor_mod_, g, "src").ok());
  sensor_mod_->start_sensors();
  sensor_mod_->start_sensors();  // idempotent re-arm must not stack timers
  sim_.run_until(sim_.now() + from_millis(500));
  sensor_mod_->stop_sensors();
  sensor_mod_->audit_invariants();
}

TEST_F(AuditNodeFabric, FailedModuleIsSilent) {
  const auto g = split();
  ASSERT_TRUE(deploy(*sensor_mod_, g, "src").ok());
  sensor_mod_->start_sensors();
  sensor_mod_->fail();  // must cancel sampling (silent-crash model)
  sensor_mod_->audit_invariants();
  sim_.run_until(sim_.now() + from_millis(500));
  EXPECT_EQ(sensor_mod_->counters().get("samples_emitted"), 0u);
}

TEST_F(AuditNodeFabric, DeployOnFailedModuleTripsAudit) {
  if (!audit::kEnabled) {
    GTEST_SKIP() << "asserts compile out of this build";
  }
  const auto g = split();
  sensor_mod_->fail();
  EXPECT_DEATH((void)deploy(*sensor_mod_, g, "src"), "IFOT_AUDIT failure");
}

}  // namespace
}  // namespace ifot::node
