#include "node/tasks.hpp"

#include <gtest/gtest.h>

#include "ml/model_io.hpp"
#include "recipe/parser.hpp"

namespace ifot::node {
namespace {

/// TaskContext capturing emissions for assertions.
class FakeContext final : public TaskContext {
 public:
  [[nodiscard]] SimTime now() const override { return now_; }
  void emit_sample(const recipe::Task&, device::Sample s) override {
    samples.push_back(std::move(s));
  }
  void emit_model(const recipe::Task&, Bytes model) override {
    models.push_back(std::move(model));
  }
  void report_completion(const recipe::Task&,
                         const device::Sample& s) override {
    completions.push_back(s);
  }
  void set_now(SimTime t) { now_ = t; }

  std::vector<device::Sample> samples;
  std::vector<Bytes> models;
  std::vector<device::Sample> completions;

 private:
  SimTime now_ = 0;
};

recipe::RecipeNode node_of(const std::string& name, const std::string& type,
                           recipe::ParamMap params = {}) {
  recipe::RecipeNode n;
  n.name = name;
  n.type = type;
  n.params = std::move(params);
  return n;
}

recipe::Task spec_of(const std::string& name, std::size_t shard = 0,
                     std::size_t shard_count = 1) {
  recipe::Task t;
  t.id = TaskId{0};
  t.name = name;
  t.shard = shard;
  t.shard_count = shard_count;
  t.output_topic = "ifot/test/" + name;
  return t;
}

device::Sample sample_with(const std::string& source, std::uint64_t seq,
                           std::vector<std::pair<std::string, double>> fields,
                           const std::string& label = "") {
  device::Sample s;
  s.source = source;
  s.seq = seq;
  s.sensed_at = 42;
  s.fields = std::move(fields);
  s.label = label;
  return s;
}

// ---- sensor ----------------------------------------------------------------

TEST(SensorTask, TickEmitsStampedSamples) {
  auto model = device::make_sensor_model("constant", Rng(1));
  ASSERT_TRUE(model.ok());
  SensorTask task(spec_of("s"),
                  node_of("s", "sensor", {{"rate_hz", 10.0}}),
                  std::move(model).value());
  FakeContext ctx;
  task.tick(ctx, 100);
  task.tick(ctx, 200);
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_EQ(ctx.samples[0].source, "s");
  EXPECT_EQ(ctx.samples[0].seq, 0u);
  EXPECT_EQ(ctx.samples[0].sensed_at, 100);
  EXPECT_EQ(ctx.samples[1].seq, 1u);
  EXPECT_EQ(ctx.samples[1].sensed_at, 200);
}

TEST(SensorTask, RatePeriodFromParam) {
  auto model = device::make_sensor_model("constant", Rng(1));
  SensorTask task(spec_of("s"),
                  node_of("s", "sensor", {{"rate_hz", 20.0}}),
                  std::move(model).value());
  EXPECT_EQ(task.rate_period(), kSecond / 20);
}

// ---- shard partitioning ----------------------------------------------------

TEST(FlowTask, ShardAcceptancePartitionsBySeq) {
  MergeTask shard0(spec_of("m#0", 0, 3), node_of("m", "merge"));
  MergeTask shard1(spec_of("m#1", 1, 3), node_of("m", "merge"));
  MergeTask shard2(spec_of("m#2", 2, 3), node_of("m", "merge"));
  int accepted = 0;
  for (std::uint64_t seq = 0; seq < 30; ++seq) {
    const auto s = sample_with("src", seq, {{"v", 1.0}});
    const int hits = (shard0.accepts(s) ? 1 : 0) + (shard1.accepts(s) ? 1 : 0) +
                     (shard2.accepts(s) ? 1 : 0);
    EXPECT_EQ(hits, 1) << "seq " << seq;  // exactly one shard owns it
    accepted += hits;
  }
  EXPECT_EQ(accepted, 30);
}

// ---- window ----------------------------------------------------------------

TEST(WindowTask, TumblingMeanAggregation) {
  WindowTask task(spec_of("w"),
                  node_of("w", "window",
                          {{"size", 4.0}, {"aggregate", std::string("mean")}}));
  FakeContext ctx;
  for (int i = 1; i <= 8; ++i) {
    task.process(ctx, FlowPayload{sample_with(
                          "s", static_cast<std::uint64_t>(i),
                          {{"v", static_cast<double>(i)}})});
  }
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), 2.5);   // mean(1..4)
  EXPECT_DOUBLE_EQ(ctx.samples[1].field("v", 0), 6.5);   // mean(5..8)
  EXPECT_EQ(ctx.samples[0].source, "w");
}

TEST(WindowTask, MaxAndMinAggregation) {
  for (const auto& [agg, expected] :
       std::vector<std::pair<std::string, double>>{{"max", 4.0},
                                                   {"min", 1.0},
                                                   {"sum", 10.0},
                                                   {"last", 4.0}}) {
    WindowTask task(
        spec_of("w"),
        node_of("w", "window", {{"size", 4.0}, {"aggregate", agg}}));
    FakeContext ctx;
    for (int i = 1; i <= 4; ++i) {
      task.process(ctx, FlowPayload{sample_with(
                            "s", static_cast<std::uint64_t>(i),
                            {{"v", static_cast<double>(i)}})});
    }
    ASSERT_EQ(ctx.samples.size(), 1u) << agg;
    EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), expected) << agg;
  }
}

TEST(WindowTask, SlidingWindowOverlaps) {
  WindowTask task(spec_of("w"),
                  node_of("w", "window", {{"size", 4.0}, {"slide", 2.0}}));
  FakeContext ctx;
  for (int i = 1; i <= 8; ++i) {
    task.process(ctx, FlowPayload{sample_with(
                          "s", static_cast<std::uint64_t>(i),
                          {{"v", static_cast<double>(i)}})});
  }
  // Windows: [1..4], [3..6], [5..8].
  ASSERT_EQ(ctx.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), 2.5);
  EXPECT_DOUBLE_EQ(ctx.samples[1].field("v", 0), 4.5);
  EXPECT_DOUBLE_EQ(ctx.samples[2].field("v", 0), 6.5);
}

TEST(WindowTask, LatencyStampsFromOldestContribution) {
  WindowTask task(spec_of("w"), node_of("w", "window", {{"size", 2.0}}));
  FakeContext ctx;
  auto s1 = sample_with("s", 0, {{"v", 1.0}});
  s1.sensed_at = 100;
  auto s2 = sample_with("s", 1, {{"v", 2.0}});
  s2.sensed_at = 900;
  task.process(ctx, FlowPayload{s1});
  task.process(ctx, FlowPayload{s2});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_EQ(ctx.samples[0].sensed_at, 100);
}

TEST(WindowTask, EventTimeTumblingFlushesOnBucketBoundary) {
  WindowTask task(spec_of("w"),
                  node_of("w", "window", {{"span_ms", 100.0}}));
  FakeContext ctx;
  // Three samples in bucket 0 (0-100 ms), then one in bucket 1.
  for (int i = 0; i < 3; ++i) {
    auto s = sample_with("s", static_cast<std::uint64_t>(i),
                         {{"v", static_cast<double>(i + 1)}});
    s.sensed_at = from_millis(10.0 * (i + 1));
    task.process(ctx, FlowPayload{s});
  }
  EXPECT_TRUE(ctx.samples.empty());  // bucket still open
  auto s = sample_with("s", 3, {{"v", 10.0}});
  s.sensed_at = from_millis(150);
  task.process(ctx, FlowPayload{s});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), 2.0);  // mean(1,2,3)
  EXPECT_EQ(ctx.samples[0].sensed_at, from_millis(10));
}

TEST(WindowTask, EventTimeBucketsOfVaryingSize) {
  WindowTask task(spec_of("w"),
                  node_of("w", "window",
                          {{"span_ms", 100.0}, {"aggregate", std::string("sum")}}));
  FakeContext ctx;
  const double times_ms[] = {5, 50, 120, 250, 260, 270, 350};
  for (std::size_t i = 0; i < std::size(times_ms); ++i) {
    auto s = sample_with("s", i, {{"v", 1.0}});
    s.sensed_at = from_millis(times_ms[i]);
    task.process(ctx, FlowPayload{s});
  }
  // Buckets closed: [0,100) -> 2 samples, [100,200) -> 1, [200,300) -> 3.
  ASSERT_EQ(ctx.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), 2.0);
  EXPECT_DOUBLE_EQ(ctx.samples[1].field("v", 0), 1.0);
  EXPECT_DOUBLE_EQ(ctx.samples[2].field("v", 0), 3.0);
}

TEST(WindowTask, IgnoresModelPayloads) {
  WindowTask task(spec_of("w"), node_of("w", "window", {{"size", 1.0}}));
  FakeContext ctx;
  task.process(ctx, FlowPayload{ModelMsg{"t", Bytes{1, 2, 3}}});
  EXPECT_TRUE(ctx.samples.empty());
}

// ---- filter ----------------------------------------------------------------

TEST(FilterTask, PassesAndDropsByPredicate) {
  FilterTask task(spec_of("f"),
                  node_of("f", "filter",
                          {{"field", std::string("v")},
                           {"op", std::string("gt")},
                           {"value", 5.0}}));
  FakeContext ctx;
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"v", 7.0}})});
  task.process(ctx, FlowPayload{sample_with("s", 1, {{"v", 3.0}})});
  task.process(ctx, FlowPayload{sample_with("s", 2, {{"v", 5.0}})});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("v", 0), 7.0);
}

TEST(FilterTask, AllOperators) {
  const struct {
    const char* op;
    double value;
    bool pass;  // for input v = 5
  } cases[] = {
      {"lt", 6, true}, {"lt", 5, false}, {"le", 5, true},
      {"gt", 4, true}, {"ge", 5, true},  {"eq", 5, true},
      {"eq", 4, false}, {"ne", 4, true}, {"ne", 5, false},
  };
  for (const auto& c : cases) {
    FilterTask task(spec_of("f"),
                    node_of("f", "filter",
                            {{"field", std::string("v")},
                             {"op", std::string(c.op)},
                             {"value", c.value}}));
    FakeContext ctx;
    task.process(ctx, FlowPayload{sample_with("s", 0, {{"v", 5.0}})});
    EXPECT_EQ(ctx.samples.size(), c.pass ? 1u : 0u)
        << c.op << " " << c.value;
  }
}

// ---- map -------------------------------------------------------------------

TEST(MapTask, AffineTransformWithRename) {
  MapTask task(spec_of("m"),
               node_of("m", "map",
                       {{"field", std::string("c")},
                        {"out_field", std::string("f")},
                        {"scale", 1.8},
                        {"offset", 32.0}}));
  FakeContext ctx;
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"c", 100.0}})});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("f", 0), 212.0);
  EXPECT_DOUBLE_EQ(ctx.samples[0].field("c", 0), 100.0);  // original kept
}

// ---- anomaly ---------------------------------------------------------------

TEST(AnomalyTask, TagsOutliersAndReportsCompletions) {
  AnomalyTask task(spec_of("a"),
                   node_of("a", "anomaly",
                           {{"algorithm", std::string("zscore")},
                            {"threshold", 4.0},
                            {"min_samples", 10.0}}));
  FakeContext ctx;
  Rng rng(3);
  for (std::uint64_t i = 0; i < 200; ++i) {
    task.process(ctx, FlowPayload{sample_with("s", i,
                                              {{"v", rng.normal(0, 1)}})});
  }
  task.process(ctx, FlowPayload{sample_with("s", 200, {{"v", 100.0}})});
  ASSERT_EQ(ctx.samples.size(), 201u);
  EXPECT_EQ(ctx.samples.back().label, "anomaly");
  EXPECT_GT(ctx.samples.back().field("score", 0), 4.0);
  EXPECT_EQ(ctx.completions.size(), 201u);
  int anomalies = 0;
  for (const auto& s : ctx.samples) {
    if (s.label == "anomaly") ++anomalies;
  }
  EXPECT_LT(anomalies, 5);  // normal data rarely flagged at threshold 4
}

TEST(AnomalyTask, EmitAnomaliesOnlyDropsNormals) {
  AnomalyTask task(spec_of("a"),
                   node_of("a", "anomaly",
                           {{"algorithm", std::string("zscore")},
                            {"threshold", 4.0},
                            {"min_samples", 10.0},
                            {"emit", std::string("anomalies")}}));
  FakeContext ctx;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 100; ++i) {
    task.process(ctx, FlowPayload{sample_with("s", i,
                                              {{"v", rng.normal(0, 1)}})});
  }
  const std::size_t before = ctx.samples.size();
  task.process(ctx, FlowPayload{sample_with("s", 100, {{"v", 80.0}})});
  EXPECT_EQ(ctx.samples.size(), before + 1);
  EXPECT_LT(before, 5u);
  EXPECT_EQ(ctx.completions.size(), 101u);  // completions for every sample
}

TEST(AnomalyTask, LofVariantRuns) {
  AnomalyTask task(spec_of("a"),
                   node_of("a", "anomaly",
                           {{"algorithm", std::string("lof")},
                            {"threshold", 3.0},
                            {"k", 5.0}}));
  FakeContext ctx;
  Rng rng(6);
  for (std::uint64_t i = 0; i < 50; ++i) {
    task.process(ctx, FlowPayload{sample_with(
                          "s", i, {{"x", rng.normal(0, 0.3)},
                                   {"y", rng.normal(0, 0.3)}})});
  }
  task.process(ctx,
               FlowPayload{sample_with("s", 50, {{"x", 50.0}, {"y", 50.0}})});
  EXPECT_EQ(ctx.samples.back().label, "anomaly");
}

// ---- train -----------------------------------------------------------------

TEST(TrainTask, TrainsOnLabelledSamplesOnly) {
  TrainTask task(spec_of("t"),
                 node_of("t", "train",
                         {{"algorithm", std::string("arow")},
                          {"publish_every", 4.0}}));
  FakeContext ctx;
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"v", 1.0}})});  // no label
  EXPECT_EQ(ctx.completions.size(), 0u);
  task.process(ctx, FlowPayload{sample_with("s", 1, {{"v", 1.0}}, "a")});
  EXPECT_EQ(ctx.completions.size(), 1u);
  EXPECT_EQ(task.classifier().model().update_count(), 1u);
}

TEST(TrainTask, PublishesModelEveryN) {
  TrainTask task(spec_of("t"),
                 node_of("t", "train",
                         {{"algorithm", std::string("pa1")},
                          {"publish_every", 3.0}}));
  FakeContext ctx;
  for (std::uint64_t i = 0; i < 9; ++i) {
    task.process(ctx, FlowPayload{sample_with(
                          "s", i, {{"v", i % 2 ? 1.0 : -1.0}},
                          i % 2 ? "pos" : "neg")});
  }
  EXPECT_EQ(ctx.models.size(), 3u);
  // Published models decode into the live model.
  auto decoded = ml::ModelCodec::decode_linear(BytesView(ctx.models.back()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().label_count(), 2u);
}

TEST(TrainTask, IgnoresInboundModelsWithoutMix) {
  TrainTask task(spec_of("t"),
                 node_of("t", "train", {{"algorithm", std::string("pa")}}));
  FakeContext ctx;
  task.process(ctx, FlowPayload{ModelMsg{"other", Bytes{9, 9}}});
  EXPECT_TRUE(ctx.completions.empty());
  EXPECT_EQ(task.classifier().model().update_count(), 0u);
  EXPECT_EQ(task.mixes_applied(), 0u);
}

TEST(TrainTask, LearnerSideMixAdoptsPeerKnowledge) {
  // Shard 0 never sees label "up"; after mixing in a peer model that
  // knows it, shard 0 can classify both labels.
  TrainTask peer(spec_of("t#1", 1, 2),
                 node_of("t", "train", {{"algorithm", std::string("arow")},
                                        {"mix", true},
                                        {"publish_every", 1000.0}}));
  FakeContext pctx;
  Rng rng(17);
  for (std::uint64_t i = 0; i < 600; ++i) {
    const double y = rng.uniform(-1, 1);
    peer.process(pctx, FlowPayload{sample_with("s", i * 2 + 1, {{"y", y}},
                                               y > 0 ? "up" : "down")});
  }
  const Bytes peer_model = ml::ModelCodec::encode(peer.classifier().model());

  TrainTask shard(spec_of("t#0", 0, 2),
                  node_of("t", "train", {{"algorithm", std::string("arow")},
                                         {"mix", true},
                                         {"publish_every", 1000.0}}));
  FakeContext ctx;
  EXPECT_EQ(shard.classifier().model().label_count(), 0u);
  shard.process(ctx, FlowPayload{ModelMsg{"t#1", peer_model}});
  EXPECT_EQ(shard.mixes_applied(), 1u);
  EXPECT_EQ(shard.classifier().model().label_count(), 2u);
  ml::FeatureVector up;
  up.set(hashed_feature_id("y"), 0.9);
  EXPECT_EQ(shard.classifier().classify(up).label, "up");
}

TEST(TrainTask, MixIgnoresOwnModelEcho) {
  TrainTask shard(spec_of("t#0", 0, 2),
                  node_of("t", "train", {{"algorithm", std::string("arow")},
                                         {"mix", true}}));
  FakeContext ctx;
  shard.process(ctx, FlowPayload{ModelMsg{"t#0", Bytes{1, 2, 3}}});
  EXPECT_EQ(shard.mixes_applied(), 0u);
}

TEST(TrainTask, MixRejectsCorruptPeerModel) {
  TrainTask shard(spec_of("t#0", 0, 2),
                  node_of("t", "train", {{"algorithm", std::string("arow")},
                                         {"mix", true}}));
  FakeContext ctx;
  shard.process(ctx, FlowPayload{ModelMsg{"t#1", Bytes{0xFF, 0x00}}});
  EXPECT_EQ(shard.mixes_applied(), 0u);
}

TEST(TrainTask, CostDependsOnPayloadKind) {
  TrainTask task(spec_of("t"),
                 node_of("t", "train", {{"algorithm", std::string("arow")}}));
  const CostModel costs;
  EXPECT_EQ(task.cost(costs, FlowPayload{device::Sample{}}), costs.train);
  // A model payload costs decode + MIX over own model and peers.
  EXPECT_GE(task.cost(costs, FlowPayload{ModelMsg{}}), costs.model_io);
  EXPECT_LT(task.cost(costs, FlowPayload{ModelMsg{}}), costs.model_io * 4);
}

// ---- predict ---------------------------------------------------------------

TEST(PredictTask, NoModelYieldsEmptyLabel) {
  PredictTask task(spec_of("p"), node_of("p", "predict"));
  FakeContext ctx;
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"v", 1.0}})});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_EQ(ctx.samples[0].label, "");
  EXPECT_EQ(ctx.completions.size(), 1u);
}

TEST(PredictTask, UsesShippedModel) {
  // Train a model elsewhere, ship it, expect correct predictions.
  TrainTask trainer(spec_of("t"),
                    node_of("t", "train",
                            {{"algorithm", std::string("arow")},
                             {"publish_every", 100.0}}));
  FakeContext tctx;
  Rng rng(7);
  for (std::uint64_t i = 0; i < 400; ++i) {
    const double x = rng.uniform(-1, 1);
    trainer.process(
        tctx, FlowPayload{sample_with("s", i, {{"x", x}},
                                      x > 0 ? "pos" : "neg")});
  }
  const Bytes model = ml::ModelCodec::encode(trainer.classifier().model());

  PredictTask task(spec_of("p"), node_of("p", "predict"));
  FakeContext ctx;
  task.process(ctx, FlowPayload{ModelMsg{"t", model}});
  EXPECT_EQ(task.model_updates(), 1u);
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"x", 0.9}})});
  task.process(ctx, FlowPayload{sample_with("s", 1, {{"x", -0.9}})});
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_EQ(ctx.samples[0].label, "pos");
  EXPECT_EQ(ctx.samples[1].label, "neg");
  EXPECT_NE(ctx.samples[0].field("confidence", -1), -1);
}

TEST(PredictTask, MixesModelsFromSeveralProducers) {
  // Label by sign(y). Each shard sees only one half of the x axis but
  // both labels, so each learns the boundary from partial data; the
  // consumer-side MIX must classify in both halves.
  auto train_half = [](bool positive_x) {
    TrainTask t(spec_of("t"),
                node_of("t", "train", {{"algorithm", std::string("arow")},
                                       {"publish_every", 1000.0}}));
    FakeContext ctx;
    Rng rng(positive_x ? 8u : 9u);
    for (std::uint64_t i = 0; i < 800; ++i) {
      double x = rng.uniform(0.05, 1);
      if (!positive_x) x = -x;
      const double y = rng.uniform(-1, 1);
      t.process(ctx, FlowPayload{sample_with("s", i, {{"x", x}, {"y", y}},
                                             y > 0 ? "up" : "down")});
    }
    return ml::ModelCodec::encode(t.classifier().model());
  };
  PredictTask task(spec_of("p"), node_of("p", "predict"));
  FakeContext ctx;
  task.process(ctx, FlowPayload{ModelMsg{"shard0", train_half(true)}});
  task.process(ctx, FlowPayload{ModelMsg{"shard1", train_half(false)}});
  EXPECT_EQ(task.model_sources(), 2u);
  task.process(ctx, FlowPayload{sample_with("s", 0, {{"x", 0.8}, {"y", 0.9}})});
  task.process(ctx,
               FlowPayload{sample_with("s", 1, {{"x", -0.8}, {"y", -0.9}})});
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_EQ(ctx.samples[0].label, "up");
  EXPECT_EQ(ctx.samples[1].label, "down");
}

TEST(PredictTask, BadModelPayloadIgnored) {
  PredictTask task(spec_of("p"), node_of("p", "predict"));
  FakeContext ctx;
  task.process(ctx, FlowPayload{ModelMsg{"evil", Bytes{0xFF, 0x00}}});
  EXPECT_EQ(task.model_updates(), 0u);
}

// ---- estimate --------------------------------------------------------------

TEST(EstimateTask, LearnsTargetOnline) {
  EstimateTask task(spec_of("e"),
                    node_of("e", "estimate",
                            {{"target", std::string("t")},
                             {"epsilon", 0.01}}));
  FakeContext ctx;
  Rng rng(10);
  for (std::uint64_t i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-1, 1);
    task.process(ctx, FlowPayload{sample_with(
                          "s", i, {{"x", x}, {"t", 3 * x}})});
  }
  // Estimate for a fresh sample without the target field.
  ctx.samples.clear();
  task.process(ctx, FlowPayload{sample_with("s", 9999, {{"x", 0.5}})});
  ASSERT_EQ(ctx.samples.size(), 1u);
  EXPECT_NEAR(ctx.samples[0].field("estimate", 0), 1.5, 0.3);
}

// ---- cluster ---------------------------------------------------------------

TEST(ClusterTask, AssignsStableClusters) {
  ClusterTask task(spec_of("c"), node_of("c", "cluster", {{"k", 2.0}}));
  FakeContext ctx;
  Rng rng(11);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const bool left = i % 2 == 0;
    const double v = left ? rng.normal(0, 0.2) : rng.normal(10, 0.2);
    task.process(ctx, FlowPayload{sample_with("s", i, {{"v", v}})});
  }
  // Samples near 0 and near 10 must land in different clusters.
  ctx.samples.clear();
  task.process(ctx, FlowPayload{sample_with("s", 1000, {{"v", 0.0}})});
  task.process(ctx, FlowPayload{sample_with("s", 1001, {{"v", 10.0}})});
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_NE(ctx.samples[0].field("cluster", -1),
            ctx.samples[1].field("cluster", -1));
}

// ---- merge / actuator --------------------------------------------------------

TEST(MergeTask, ReemitsUnderOwnName) {
  MergeTask task(spec_of("m"), node_of("m", "merge"));
  FakeContext ctx;
  task.process(ctx, FlowPayload{sample_with("a", 7, {{"v", 1.0}})});
  task.process(ctx, FlowPayload{sample_with("b", 3, {{"v", 2.0}})});
  ASSERT_EQ(ctx.samples.size(), 2u);
  EXPECT_EQ(ctx.samples[0].source, "m");
  EXPECT_EQ(ctx.samples[0].seq, 0u);
  EXPECT_EQ(ctx.samples[1].seq, 1u);
  EXPECT_DOUBLE_EQ(ctx.samples[1].field("v", 0), 2.0);
}

TEST(ActuatorTask, AppliesToSink) {
  device::ActuatorSink sink("relay", from_millis(1));
  ActuatorTask task(spec_of("act"), node_of("act", "actuator"), &sink);
  FakeContext ctx;
  ctx.set_now(500);
  auto s = sample_with("p", 0, {{"v", 1.0}}, "on");
  task.process(ctx, FlowPayload{s});
  ASSERT_EQ(sink.count(), 1u);
  EXPECT_EQ(sink.records()[0].label, "on");
  EXPECT_EQ(ctx.completions.size(), 1u);
  EXPECT_TRUE(ctx.samples.empty());  // sinks do not re-emit
}

// ---- feature hashing ---------------------------------------------------------

TEST(FeatureHashing, StableAndDistinct) {
  EXPECT_EQ(hashed_feature_id("ax"), hashed_feature_id("ax"));
  EXPECT_NE(hashed_feature_id("ax"), hashed_feature_id("ay"));
  EXPECT_NE(hashed_feature_id("ax"), hashed_feature_id("az"));
}

TEST(FeaturesOf, OrderIndependent) {
  auto a = sample_with("s", 0, {{"x", 1.0}, {"y", 2.0}});
  auto b = sample_with("s", 0, {{"y", 2.0}, {"x", 1.0}});
  EXPECT_EQ(features_of(a), features_of(b));
}

}  // namespace
}  // namespace ifot::node
