#include "node/module.hpp"

#include <gtest/gtest.h>

#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace ifot::node {
namespace {

/// Minimal three-module fabric: sensor module, broker module, worker
/// module, wired by hand (the core::Middleware facade is tested
/// separately).
class ModuleFabric : public ::testing::Test {
 protected:
  ModuleFabric() {
    net::LanConfig lan;
    lan.loss_prob = 0;
    net_ = std::make_unique<net::Network>(sim_, lan, 17);

    auto make = [&](const std::string& name) {
      const NodeId id = net_->add_host(name);
      NeuronModule::Config cfg;
      cfg.name = name;
      cfg.seed = 17;
      modules_.push_back(
          std::make_unique<NeuronModule>(sim_, *net_, id, cfg));
      return modules_.back().get();
    };
    sensor_mod_ = make("sensor_mod");
    broker_mod_ = make("broker_mod");
    worker_mod_ = make("worker_mod");
    broker_mod_->start_broker();
    sensor_mod_->connect(broker_mod_->id());
    worker_mod_->connect(broker_mod_->id());
    sim_.run_until(sim_.now() + from_millis(200));  // settle CONNECT
  }

  recipe::TaskGraph split(const char* text) {
    auto parsed = recipe::parse(text);
    EXPECT_TRUE(parsed.ok()) << (parsed.ok() ? "" : parsed.error().to_string());
    auto g = recipe::split_recipe(parsed.value());
    EXPECT_TRUE(g.ok());
    return g.value();
  }

  const recipe::Task* task_named(const recipe::TaskGraph& g,
                                 const std::string& name) {
    for (const auto& t : g.tasks) {
      if (t.name == name) return &t;
    }
    return nullptr;
  }

  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<std::unique_ptr<NeuronModule>> modules_;
  NeuronModule* sensor_mod_ = nullptr;
  NeuronModule* broker_mod_ = nullptr;
  NeuronModule* worker_mod_ = nullptr;
};

constexpr const char* kPipeline = R"(
recipe pipe
node src : sensor { sensor = "dev", rate_hz = 20, model = "constant" }
node flt : filter { field = "value", op = "ge", value = -1000 }
node act : actuator { actuator = "out" }
edge src -> flt -> act
)";

TEST_F(ModuleFabric, ClientsConnectThroughSimulatedTransport) {
  EXPECT_TRUE(sensor_mod_->client()->connected());
  EXPECT_TRUE(worker_mod_->client()->connected());
  EXPECT_EQ(broker_mod_->broker()->connected_count(), 2u);
}

TEST_F(ModuleFabric, DeployRequiresAttachedSensor) {
  const auto g = split(kPipeline);
  const auto* src = task_named(g, "src");
  ASSERT_NE(src, nullptr);
  auto status =
      sensor_mod_->deploy_task(*src, g.recipe.nodes[src->recipe_node]);
  ASSERT_FALSE(status.ok());  // device not attached yet
  sensor_mod_->attach_sensor("dev");
  EXPECT_TRUE(
      sensor_mod_->deploy_task(*src, g.recipe.nodes[src->recipe_node]).ok());
}

TEST_F(ModuleFabric, DeployRequiresAttachedActuator) {
  const auto g = split(kPipeline);
  const auto* act = task_named(g, "act");
  ASSERT_NE(act, nullptr);
  EXPECT_FALSE(
      worker_mod_->deploy_task(*act, g.recipe.nodes[act->recipe_node]).ok());
  worker_mod_->attach_actuator("out");
  EXPECT_TRUE(
      worker_mod_->deploy_task(*act, g.recipe.nodes[act->recipe_node]).ok());
}

TEST_F(ModuleFabric, EndToEndSampleFlowAcrossModules) {
  sensor_mod_->attach_sensor("dev");
  auto& sink = worker_mod_->attach_actuator("out");
  const auto g = split(kPipeline);
  for (const auto& t : g.tasks) {
    NeuronModule* target =
        t.name == "src" ? sensor_mod_ : worker_mod_;
    ASSERT_TRUE(
        target->deploy_task(t, g.recipe.nodes[t.recipe_node]).ok())
        << t.name;
  }
  sim_.run_until(sim_.now() + from_millis(200));  // settle SUBSCRIBE
  sensor_mod_->start_sensors();
  sim_.run_until(sim_.now() + 2 * kSecond);
  // 20 Hz for ~2 s -> tens of actuations through sensor->filter->actuator.
  EXPECT_GT(sink.count(), 20u);
  // End-to-end latency is positive and sane (< 200 ms at this idle rate).
  for (const auto& rec : sink.records()) {
    const SimDuration delay = rec.at - rec.sensed_at;
    EXPECT_GT(delay, 0);
    EXPECT_LT(delay, from_millis(200));
  }
}

TEST_F(ModuleFabric, CompletionHookFires) {
  sensor_mod_->attach_sensor("dev");
  worker_mod_->attach_actuator("out");
  const auto g = split(kPipeline);
  for (const auto& t : g.tasks) {
    NeuronModule* target = t.name == "src" ? sensor_mod_ : worker_mod_;
    ASSERT_TRUE(target->deploy_task(t, g.recipe.nodes[t.recipe_node]).ok());
  }
  int completions = 0;
  worker_mod_->set_completion_hook(
      [&](const recipe::Task& t, const device::Sample&, SimTime) {
        if (t.name == "act") ++completions;
      });
  sim_.run_until(sim_.now() + from_millis(200));
  sensor_mod_->start_sensors();
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_GT(completions, 10);
}

TEST_F(ModuleFabric, StopSensorsHaltsFlow) {
  sensor_mod_->attach_sensor("dev");
  auto& sink = worker_mod_->attach_actuator("out");
  const auto g = split(kPipeline);
  for (const auto& t : g.tasks) {
    NeuronModule* target = t.name == "src" ? sensor_mod_ : worker_mod_;
    ASSERT_TRUE(target->deploy_task(t, g.recipe.nodes[t.recipe_node]).ok());
  }
  sim_.run_until(sim_.now() + from_millis(200));
  sensor_mod_->start_sensors();
  sim_.run_until(sim_.now() + kSecond);
  sensor_mod_->stop_sensors();
  const auto count = sink.count();
  sim_.run_until(sim_.now() + kSecond);
  // At most a couple of in-flight samples drain after the stop.
  EXPECT_LE(sink.count(), count + 3);
}

TEST_F(ModuleFabric, UtilizationGrowsWithRate) {
  sensor_mod_->attach_sensor("dev");
  worker_mod_->attach_actuator("out");
  const auto g = split(kPipeline);
  for (const auto& t : g.tasks) {
    NeuronModule* target = t.name == "src" ? sensor_mod_ : worker_mod_;
    ASSERT_TRUE(target->deploy_task(t, g.recipe.nodes[t.recipe_node]).ok());
  }
  sim_.run_until(sim_.now() + from_millis(200));
  sensor_mod_->start_sensors();
  sim_.run_until(sim_.now() + 2 * kSecond);
  EXPECT_GT(sensor_mod_->utilization(), 0.05);
  EXPECT_GT(worker_mod_->utilization(), 0.0);
  EXPECT_LT(sensor_mod_->utilization(), 1.0);
}

TEST_F(ModuleFabric, ActuatorLookup) {
  auto& sink = worker_mod_->attach_actuator("lamp");
  EXPECT_EQ(worker_mod_->actuator("lamp"), &sink);
  EXPECT_EQ(worker_mod_->actuator("ghost"), nullptr);
  EXPECT_EQ(worker_mod_->actuators(),
            (std::vector<std::string>{"lamp"}));
}

TEST_F(ModuleFabric, TaskWithInputsRequiresClient) {
  // broker module has no client; deploying a consumer task there fails.
  const auto g = split(kPipeline);
  const auto* flt = task_named(g, "flt");
  ASSERT_NE(flt, nullptr);
  auto status =
      broker_mod_->deploy_task(*flt, g.recipe.nodes[flt->recipe_node]);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kState);
}

}  // namespace
}  // namespace ifot::node
