// Steady-state allocation gate for the ingress hot path (own test
// binary: it replaces the global allocator to count heap traffic).
//
// TopicTree::match and the broker's cached route resolution promise
// zero heap allocations once their scratch buffers have reached working
// capacity. This test arms a counting operator new/delete around the
// steady-state calls and fails on any allocation — a regression here
// silently reintroduces per-publish malloc traffic on every routed
// message.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include "mqtt/route_cache.hpp"
#include "mqtt/topic.hpp"

// Sanitizers interpose on the allocator themselves; counting under them
// is both unreliable and redundant (they have their own checks).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IFOT_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define IFOT_ALLOC_TEST_DISABLED 1
#endif
#endif
#ifndef IFOT_ALLOC_TEST_DISABLED
#define IFOT_ALLOC_TEST_DISABLED 0
#endif

// The compiler cannot see that this TU replaces the global allocator
// pair, so it flags free() inside the replacement as a mismatch.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

#if !IFOT_ALLOC_TEST_DISABLED
void* operator new(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace ifot::mqtt {
namespace {

class AllocGuard {
 public:
  AllocGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { g_armed.store(false, std::memory_order_relaxed); }
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(MatchAllocation, SteadyStateMatchIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  TopicTree<std::string, int> tree;
  tree.insert("ifot/app/+/sensor", "c1", 0);
  tree.insert("ifot/#", "c2", 1);
  tree.insert("ifot/app/3/sensor", "c3", 2);
  tree.insert("other/deep/topic/level", "c4", 0);

  const std::string topic = "ifot/app/3/sensor";
  TopicTree<std::string, int>::MatchList out;
  // Warm-up: grows the level scratch and the caller's match buffer to
  // working capacity.
  tree.match(topic, out);
  ASSERT_EQ(out.size(), 3u);

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    out.clear();
    tree.match(topic, out);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "TopicTree::match allocated on the steady state";
  EXPECT_EQ(out.size(), 3u);
}

TEST(MatchAllocation, SteadyStateContainsIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  TopicTree<std::string, int> tree;
  tree.insert("a/+/c/d", "c1", 0);
  ASSERT_TRUE(tree.contains("a/+/c/d", "c1"));  // warm the level scratch

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.contains("a/+/c/d", "c1"));
    ASSERT_FALSE(tree.contains("a/x/c/d", "c1"));
  }
  EXPECT_EQ(guard.count(), 0u)
      << "TopicTree::contains allocated on the steady state";
}

TEST(MatchAllocation, RouteCacheHitIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  RouteCache cache(8, nullptr);
  RouteCache::Plan plan;
  plan.by_qos[0] = {"s1", "s2"};
  plan.by_qos[1] = {"s3"};
  cache.insert("hot/topic", 7, std::move(plan));

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    const RouteCache::Plan* hit = cache.lookup("hot/topic", 7);
    ASSERT_NE(hit, nullptr);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "RouteCache::lookup allocated on a steady-state hit";
}

}  // namespace
}  // namespace ifot::mqtt
