// Steady-state allocation gate for the ingress hot path (own test
// binary: it replaces the global allocator to count heap traffic).
//
// TopicTree::match and the broker's cached route resolution promise
// zero heap allocations once their scratch buffers have reached working
// capacity. This test arms a counting operator new/delete around the
// steady-state calls and fails on any allocation — a regression here
// silently reintroduces per-publish malloc traffic on every routed
// message.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "common/audit.hpp"
#include "common/shared_payload.hpp"
#include "common/shared_string.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/route_cache.hpp"
#include "mqtt/scheduler.hpp"
#include "mqtt/topic.hpp"

// Sanitizers interpose on the allocator themselves; counting under them
// is both unreliable and redundant (they have their own checks).
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define IFOT_ALLOC_TEST_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define IFOT_ALLOC_TEST_DISABLED 1
#endif
#endif
#ifndef IFOT_ALLOC_TEST_DISABLED
#define IFOT_ALLOC_TEST_DISABLED 0
#endif

// The compiler cannot see that this TU replaces the global allocator
// pair, so it flags free() inside the replacement as a mismatch.
#if defined(__GNUC__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<bool> g_armed{false};
std::atomic<std::size_t> g_allocations{0};
}  // namespace

#if !IFOT_ALLOC_TEST_DISABLED
void* operator new(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocations.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace ifot::mqtt {
namespace {

class AllocGuard {
 public:
  AllocGuard() {
    g_allocations.store(0, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_relaxed);
  }
  ~AllocGuard() { g_armed.store(false, std::memory_order_relaxed); }
  AllocGuard(const AllocGuard&) = delete;
  AllocGuard& operator=(const AllocGuard&) = delete;

  [[nodiscard]] std::size_t count() const {
    return g_allocations.load(std::memory_order_relaxed);
  }
};

TEST(MatchAllocation, SteadyStateMatchIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  TopicTree<std::string, int> tree;
  tree.insert("ifot/app/+/sensor", "c1", 0);
  tree.insert("ifot/#", "c2", 1);
  tree.insert("ifot/app/3/sensor", "c3", 2);
  tree.insert("other/deep/topic/level", "c4", 0);

  const std::string topic = "ifot/app/3/sensor";
  TopicTree<std::string, int>::MatchList out;
  // Warm-up: grows the level scratch and the caller's match buffer to
  // working capacity.
  tree.match(topic, out);
  ASSERT_EQ(out.size(), 3u);

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    out.clear();
    tree.match(topic, out);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "TopicTree::match allocated on the steady state";
  EXPECT_EQ(out.size(), 3u);
}

TEST(MatchAllocation, SteadyStateContainsIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  TopicTree<std::string, int> tree;
  tree.insert("a/+/c/d", "c1", 0);
  ASSERT_TRUE(tree.contains("a/+/c/d", "c1"));  // warm the level scratch

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tree.contains("a/+/c/d", "c1"));
    ASSERT_FALSE(tree.contains("a/x/c/d", "c1"));
  }
  EXPECT_EQ(guard.count(), 0u)
      << "TopicTree::contains allocated on the steady state";
}

TEST(MatchAllocation, RouteCacheHitIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  RouteCache cache(8, nullptr);
  RouteCache::Plan plan;
  plan.by_qos[0] = {"s1", "s2"};
  plan.by_qos[1] = {"s3"};
  cache.insert("hot/topic", 7, std::move(plan));

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) {
    const RouteCache::Plan* hit = cache.lookup("hot/topic", 7);
    ASSERT_NE(hit, nullptr);
  }
  EXPECT_EQ(guard.count(), 0u)
      << "RouteCache::lookup allocated on a steady-state hit";
}

/// Timers parked forever: now() never advances, so the broker's single
/// per-session retry timer stays armed at its first deadline and every
/// subsequent arm_retry is a no-op (no per-publish closure allocation).
class NullSched : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration /*delay*/,
                           std::function<void()> /*fn*/) override {
    return ++next_;
  }
  void cancel(std::uint64_t /*handle*/) override {}

 private:
  std::uint64_t next_ = 0;
};

// End-to-end gate across publish -> route -> egress: a broker with a
// QoS 1 and a QoS 0 subscriber must not touch the heap per message once
// warm. Covers the route-cache hit, fan-out template pooling, the
// outbox frame/batch-buffer recycling, the session inflight map's
// NodePool nodes (ack churn), the retry wheel's deadline stamping, and
// retained-store overwrite of an existing topic.
TEST(MatchAllocation, BrokerPublishRouteEgressIsAllocationFree) {
  if (IFOT_ALLOC_TEST_DISABLED) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  if (audit::kEnabled) {
    GTEST_SKIP() << "audit builds trade hot-path allocations for deep "
                    "invariant checks (route-cache plan re-derivation)";
  }

  NullSched sched;
  Broker broker(sched, BrokerConfig{});

  std::size_t sink_bytes = 0;
  const auto open = [&](LinkId id) {
    broker.on_link_open(
        id, [&sink_bytes](const Bytes& wire) { sink_bytes += wire.size(); },
        [] {});
  };
  const auto feed = [&](LinkId id, const Packet& p) {
    const Bytes wire = encode(p);
    broker.on_link_data(id, wire);
  };

  open(1);
  open(2);
  Connect c1;
  c1.client_id = "sub-q1";
  c1.keep_alive_s = 0;
  feed(1, c1);
  Connect c2;
  c2.client_id = "sub-q0";
  c2.keep_alive_s = 0;
  feed(2, c2);

  Subscribe s1;
  s1.packet_id = 1;
  s1.topics = {{"alloc/gate/hot", QoS::kAtLeastOnce}};
  feed(1, s1);
  Subscribe s2;
  s2.packet_id = 1;
  s2.topics = {{"alloc/gate/#", QoS::kAtMostOnce}};
  feed(2, s2);

  // Pre-shared topic/payload: per-publish copies are refcount bumps.
  const SharedString topic{std::string("alloc/gate/hot")};
  const SharedPayload payload{Bytes{'s', 'a', 'm', 'p', 'l', 'e'}};

  // PUBACK frames are patched in place and fed through the normal
  // ingress path (fixed 4-byte wire format: type, len, id hi, id lo).
  std::array<std::uint8_t, 4> puback{0x40, 0x02, 0x00, 0x00};
  std::uint16_t next_pid = 1;
  const auto publish_round = [&] {
    broker.publish_local(topic, payload, QoS::kAtLeastOnce);
    puback[2] = static_cast<std::uint8_t>(next_pid >> 8);
    puback[3] = static_cast<std::uint8_t>(next_pid & 0xff);
    broker.on_link_data(1, BytesView(puback));
    next_pid = static_cast<std::uint16_t>(next_pid == 0xffff ? 1
                                                             : next_pid + 1);
    // Retained overwrite of an existing topic reuses the trie node.
    broker.publish_local(topic, payload, QoS::kAtMostOnce, /*retain=*/true);
  };

  // Warm-up: route-cache fill, template/outbox/decoder buffer capacity,
  // inflight map nodes, counter-name materialization, retained node.
  for (int i = 0; i < 8; ++i) publish_round();
  ASSERT_EQ(broker.retained_count(), 1u);
  ASSERT_GT(broker.counters().get("route_cache_hits"), 0u);
  const std::size_t warm_bytes = sink_bytes;

  AllocGuard guard;
  for (int i = 0; i < 64; ++i) publish_round();
  EXPECT_EQ(guard.count(), 0u)
      << "broker publish->route->egress allocated on the steady state";
  EXPECT_GT(sink_bytes, warm_bytes);
  EXPECT_EQ(broker.counters().get("route_cache_invalidations"), 0u);
}

}  // namespace
}  // namespace ifot::mqtt
