// RetainedStore coverage: trie structure (set/clear/prune), §4.7
// matching semantics differentially checked against topic_matches
// (including §4.7.2 $-topic exclusion), and the broker-level retained
// behaviours the store underpins — single replay per topic across
// overlapping filters in one SUBSCRIBE at the max granted QoS, QoS clamp
// on replay, empty-payload clears, and replay across session takeover.
#include "mqtt/retained_store.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mqtt/topic.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

Publish make_retained(const std::string& topic, const std::string& payload,
                      QoS qos = QoS::kAtMostOnce) {
  Publish p;
  p.topic = topic;
  p.payload = SharedPayload(to_bytes(payload));
  p.qos = qos;
  p.retain = true;
  return p;
}

std::vector<std::string> collect_topics(const RetainedStore& store,
                                        const std::string& filter) {
  std::vector<const Publish*> out;
  store.collect(filter, out);
  std::vector<std::string> topics;
  topics.reserve(out.size());
  for (const Publish* p : out) topics.push_back(p->topic.str());
  return topics;
}

// ---- trie structure ------------------------------------------------------

TEST(RetainedStore, SetFindOverwriteClear) {
  RetainedStore store;
  store.set(make_retained("a/b", "one"));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.find("a/b"), nullptr);
  EXPECT_EQ(store.find("a/b")->payload.view()[0], 'o');

  store.set(make_retained("a/b", "two", QoS::kAtLeastOnce));
  EXPECT_EQ(store.size(), 1u);  // overwrite, not a second entry
  EXPECT_EQ(store.find("a/b")->qos, QoS::kAtLeastOnce);

  EXPECT_TRUE(store.clear("a/b"));
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find("a/b"), nullptr);
  EXPECT_FALSE(store.clear("a/b"));  // already gone
}

TEST(RetainedStore, ClearPrunesEmptiedBranches) {
  RetainedStore store;
  store.set(make_retained("a/b/c/d", "deep"));
  store.set(make_retained("a/b", "mid"));
  const std::size_t with_both = store.node_count();
  EXPECT_TRUE(store.clear("a/b/c/d"));
  // The c/d tail is pruned; a/b survives because it holds a message.
  EXPECT_LT(store.node_count(), with_both);
  store.set(make_retained("a/b/c/d", "again"));
  EXPECT_EQ(store.node_count(), with_both);  // structure is reproducible
  EXPECT_TRUE(store.clear("a/b"));
  EXPECT_TRUE(store.clear("a/b/c/d"));
  EXPECT_EQ(store.node_count(), 0u);  // fully pruned back to the root
}

TEST(RetainedStore, ClearOfMissingSiblingLeavesStoreIntact) {
  RetainedStore store;
  store.set(make_retained("a/b", "kept"));
  EXPECT_FALSE(store.clear("a/c"));
  EXPECT_FALSE(store.clear("a"));
  EXPECT_FALSE(store.clear("a/b/c"));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.find("a/b"), nullptr);
}

TEST(RetainedStore, DupFlagIsStrippedOnStore) {
  RetainedStore store;
  Publish p = make_retained("a", "x", QoS::kAtLeastOnce);
  p.dup = true;  // per-delivery state must not be retained (§3.3.1-3)
  store.set(p);
  ASSERT_NE(store.find("a"), nullptr);
  EXPECT_FALSE(store.find("a")->dup);
}

TEST(RetainedStore, CollectIsDeterministicTopicOrder) {
  RetainedStore store;
  // Inserted out of order; collect returns level-wise lexicographic.
  store.set(make_retained("s/c", "3"));
  store.set(make_retained("s/a", "1"));
  store.set(make_retained("s/b/x", "2"));
  EXPECT_EQ(collect_topics(store, "s/#"),
            (std::vector<std::string>{"s/a", "s/b/x", "s/c"}));
}

TEST(RetainedStore, HashMatchesParentLevel) {
  RetainedStore store;
  store.set(make_retained("a", "parent"));
  store.set(make_retained("a/b", "child"));
  // '#' matches its parent level ("a/#" matches "a", §4.7.1.2).
  EXPECT_EQ(collect_topics(store, "a/#"),
            (std::vector<std::string>{"a", "a/b"}));
}

TEST(RetainedStore, WildcardsExcludeDollarTopics) {
  RetainedStore store;
  store.set(make_retained("$SYS/broker/load", "9"));
  store.set(make_retained("normal/topic", "n"));
  // §4.7.2: wildcard-leading filters never match $-topics...
  EXPECT_EQ(collect_topics(store, "#"),
            (std::vector<std::string>{"normal/topic"}));
  EXPECT_TRUE(collect_topics(store, "+/broker/load").empty());
  // ... but an explicit $-leading filter does.
  EXPECT_EQ(collect_topics(store, "$SYS/#"),
            (std::vector<std::string>{"$SYS/broker/load"}));
  EXPECT_EQ(collect_topics(store, "$SYS/broker/load"),
            (std::vector<std::string>{"$SYS/broker/load"}));
}

// ---- differential gate vs topic_matches ----------------------------------

// The trie walk must agree with the reference matcher on every
// (filter, topic) pair, including $-topics, empty levels, and '#'
// parent-level matches. topic_matches is the §4.7 source of truth
// (exhaustively tested in topic_test.cpp).
TEST(RetainedStoreDifferential, AgreesWithTopicMatchesEverywhere) {
  const std::vector<std::string> topics = {
      "a",         "a/b",          "a/b/c",    "a/b/c/d", "a/c",
      "b",         "b/b",          "x/y/z",    "a//b",    "/",
      "/a",        "a/",           "sport",    "sport/tennis",
      "sport/tennis/player1",      "sport/tennis/player1/ranking",
      "$SYS/broker/load",          "$SYS/broker/clients/total",
      "$internal", "$internal/x",  "finance",  "finance/stock/ibm",
  };
  const std::vector<std::string> filters = {
      "#",       "+",         "+/+",       "+/+/+",   "a/#",     "a/+",
      "a/b",     "a/b/#",     "a/+/c",     "+/b",     "+/b/#",   "/#",
      "/+",      "+/",        "a//+",      "a//#",    "sport/#", "sport/+",
      "sport/tennis/player1/#",  "+/tennis/#",         "$SYS/#",
      "$SYS/+/load",  "$SYS/broker/load",  "$internal/#",  "+/stock/+",
      "finance/#",    "b/+",   "x/y/z",
  };
  RetainedStore store;
  for (const std::string& t : topics) store.set(make_retained(t, "v"));
  ASSERT_EQ(store.size(), topics.size());

  for (const std::string& f : filters) {
    std::vector<std::string> via_trie = collect_topics(store, f);
    std::sort(via_trie.begin(), via_trie.end());
    std::vector<std::string> via_reference;
    for (const std::string& t : topics) {
      if (topic_matches(f, t)) via_reference.push_back(t);
    }
    std::sort(via_reference.begin(), via_reference.end());
    EXPECT_EQ(via_trie, via_reference) << "filter: " << f;
  }
}

// Same differential after heavy set/clear churn: pruning must never
// change what remains matchable.
TEST(RetainedStoreDifferential, SurvivesSetClearChurn) {
  const std::vector<std::string> topics = {
      "a", "a/b", "a/b/c", "a/c", "b/b", "$SYS/x", "x/y/z", "a//b",
  };
  RetainedStore store;
  for (const std::string& t : topics) store.set(make_retained(t, "v"));
  // Clear every other topic, re-set a few, overwrite one.
  for (std::size_t i = 0; i < topics.size(); i += 2) {
    ASSERT_TRUE(store.clear(topics[i]));
  }
  store.set(make_retained("a/b/c", "back"));
  store.set(make_retained("a/b", "over"));
  store.audit_invariants();

  std::vector<std::string> live;
  store.for_each([&](const Publish& p) { live.push_back(p.topic.str()); });
  for (const char* f : {"#", "a/#", "+/b", "a/+/c", "+", "$SYS/#"}) {
    std::vector<std::string> via_trie = collect_topics(store, f);
    std::sort(via_trie.begin(), via_trie.end());
    std::vector<std::string> via_reference;
    for (const std::string& t : live) {
      if (topic_matches(f, t)) via_reference.push_back(t);
    }
    std::sort(via_reference.begin(), via_reference.end());
    EXPECT_EQ(via_trie, via_reference) << "filter: " << f;
  }
}

// ---- broker-level retained behaviour -------------------------------------

using testing::Harness;
using testing::Peer;

// Regression for the duplicate-retained-delivery bug: two overlapping
// filters in ONE SUBSCRIBE both match the same retained topic; the
// broker must replay it exactly once, at the highest granted QoS among
// the matching filters (§3.3.5).
TEST(RetainedBroker, OverlappingFiltersInOneSubscribeReplayOnce) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("sensors/room1/temp", to_bytes("21.5"),
                           QoS::kExactlyOnce, /*retain=*/true)
                  .ok());
  h.settle();
  ASSERT_EQ(h.broker().retained_count(), 1u);

  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client()
                  .subscribe({{"sensors/#", QoS::kAtMostOnce},
                              {"sensors/+/temp", QoS::kAtLeastOnce}})
                  .ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  const Publish& m = sub.messages()[0];
  EXPECT_EQ(m.topic.view(), "sensors/room1/temp");
  EXPECT_TRUE(m.retain);
  // Max granted among the matching filters: QoS 1, not the QoS 0 grant.
  EXPECT_EQ(m.qos, QoS::kAtLeastOnce);
}

// Replay QoS is the min of the retained message's QoS and the granted
// QoS (§3.3.1-6 + §3.8.4).
TEST(RetainedBroker, ReplayQosClampsToGrant) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("t/q2", to_bytes("x"), QoS::kExactlyOnce,
                           /*retain=*/true)
                  .ok());
  ASSERT_TRUE(pub.client()
                  .publish("t/q0", to_bytes("y"), QoS::kAtMostOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();

  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"t/#", QoS::kAtLeastOnce}}).ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 2u);
  for (const Publish& m : sub.messages()) {
    if (m.topic.view() == "t/q2") {
      EXPECT_EQ(m.qos, QoS::kAtLeastOnce);  // clamped down to the grant
    } else {
      EXPECT_EQ(m.qos, QoS::kAtMostOnce);  // message QoS below the grant
    }
  }
}

// §3.3.1-10: a retained PUBLISH with an empty payload clears the slot;
// later subscribers see nothing.
TEST(RetainedBroker, EmptyPayloadClearsRetainedState) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("t/a", to_bytes("v"), QoS::kAtLeastOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();
  EXPECT_EQ(h.broker().retained_count(), 1u);
  ASSERT_TRUE(pub.client()
                  .publish("t/a", Bytes{}, QoS::kAtMostOnce, /*retain=*/true)
                  .ok());
  h.settle();
  EXPECT_EQ(h.broker().retained_count(), 0u);

  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"t/#", QoS::kAtLeastOnce}}).ok());
  h.settle();
  EXPECT_TRUE(sub.messages().empty());
}

// A persistent session's takeover (same client id reconnecting on a new
// link) replays retained state for its *new* subscriptions only, and the
// replay still works after the broker rewired the session to the new
// link.
TEST(RetainedBroker, ReplayAfterSessionTakeover) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("t/a", to_bytes("v1"), QoS::kAtLeastOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();

  Peer& first = h.add_client("dev", /*clean=*/false);
  h.connect(first);
  ASSERT_TRUE(first.client().subscribe({{"t/#", QoS::kAtLeastOnce}}).ok());
  h.settle();
  ASSERT_EQ(first.messages().size(), 1u);

  // Same client id, new link: the broker must take the session over and
  // serve the fresh SUBSCRIBE's replay on the new link.
  Peer& second = h.add_client("dev", /*clean=*/false);
  h.connect(second);
  ASSERT_TRUE(second.client().subscribe({{"t/+", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_EQ(second.messages().size(), 1u);
  EXPECT_EQ(second.messages()[0].topic.view(), "t/a");
  EXPECT_EQ(second.messages()[0].qos, QoS::kAtMostOnce);
  EXPECT_TRUE(second.messages()[0].retain);
}

// Distinct SUBSCRIBE packets are independent replay triggers: the dedup
// applies within one packet (one grant evaluation), not across packets.
TEST(RetainedBroker, SeparateSubscribesEachReplay) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("t/a", to_bytes("v"), QoS::kAtMostOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();

  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"t/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_TRUE(sub.client().subscribe({{"t/+", QoS::kAtMostOnce}}).ok());
  h.settle();
  EXPECT_EQ(sub.messages().size(), 2u);
}

}  // namespace
}  // namespace ifot::mqtt
