// Property tests for the MQTT substrate: random packets round-trip
// through the codec under arbitrary stream chunking, and the broker's
// TopicTree agrees with the reference matcher on random topic universes.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {

// ---- random generators -------------------------------------------------

std::string random_topic_segment(Rng& rng) {
  static const char* kSegments[] = {"ifot", "app", "sensor", "a", "b",
                                    "x9",   "",    "flow",   "m"};
  return kSegments[rng.below(std::size(kSegments))];
}

std::string random_topic(Rng& rng) {
  const auto levels = 1 + rng.below(4);
  std::string out;
  for (std::uint64_t i = 0; i < levels; ++i) {
    if (i > 0) out += "/";
    out += random_topic_segment(rng);
  }
  if (!valid_topic_name(out)) out = "fallback/topic";
  return out;
}

std::string random_filter(Rng& rng) {
  const auto levels = 1 + rng.below(4);
  std::string out;
  for (std::uint64_t i = 0; i < levels; ++i) {
    if (i > 0) out += "/";
    const auto pick = rng.below(10);
    if (pick == 0) {
      out += "+";
    } else if (pick == 1 && i + 1 == levels) {
      out += "#";
    } else {
      out += random_topic_segment(rng);
    }
  }
  if (!valid_topic_filter(out)) out = "#";
  return out;
}

Bytes random_payload(Rng& rng, std::size_t max_len) {
  Bytes out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return out;
}

std::string random_string(Rng& rng, std::size_t max_len) {
  std::string out(rng.below(max_len + 1), 'x');
  for (auto& c : out) {
    c = static_cast<char>('a' + rng.below(26));
  }
  return out;
}

Packet random_packet(Rng& rng) {
  const auto pick = rng.below(14);
  auto pid = [&rng] {
    return static_cast<std::uint16_t>(1 + rng.below(65535));
  };
  switch (pick) {
    case 0: {
      Connect c;
      c.client_id = random_string(rng, 12);
      c.clean_session = rng.chance(0.5);
      c.keep_alive_s = static_cast<std::uint16_t>(rng.below(600));
      if (rng.chance(0.4)) {
        c.will = Will{random_topic(rng), random_payload(rng, 32),
                      static_cast<QoS>(rng.below(3)), rng.chance(0.5)};
      }
      if (rng.chance(0.3)) {
        c.username = random_string(rng, 8);
        if (rng.chance(0.5)) c.password = random_string(rng, 8);
      }
      return Packet{c};
    }
    case 1:
      return Packet{Connack{rng.chance(0.5),
                            static_cast<ConnectCode>(rng.below(6))}};
    case 2: {
      Publish p;
      p.topic = random_topic(rng);
      p.payload = random_payload(rng, 300);
      p.qos = static_cast<QoS>(rng.below(3));
      if (p.qos != QoS::kAtMostOnce) {
        p.packet_id = pid();
        p.dup = rng.chance(0.3);
      }
      p.retain = rng.chance(0.2);
      return Packet{p};
    }
    case 3: return Packet{Puback{pid()}};
    case 4: return Packet{Pubrec{pid()}};
    case 5: return Packet{Pubrel{pid()}};
    case 6: return Packet{Pubcomp{pid()}};
    case 7: {
      Subscribe s;
      s.packet_id = pid();
      const auto n = 1 + rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        s.topics.push_back(
            {random_filter(rng), static_cast<QoS>(rng.below(3))});
      }
      return Packet{s};
    }
    case 8: {
      Suback s;
      s.packet_id = pid();
      const auto n = 1 + rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        s.return_codes.push_back(rng.chance(0.1) ? kSubackFailure
                                                 : static_cast<std::uint8_t>(
                                                       rng.below(3)));
      }
      return Packet{s};
    }
    case 9: {
      Unsubscribe u;
      u.packet_id = pid();
      const auto n = 1 + rng.below(5);
      for (std::uint64_t i = 0; i < n; ++i) {
        u.topics.push_back(random_filter(rng));
      }
      return Packet{u};
    }
    case 10: return Packet{Unsuback{pid()}};
    case 11: return Packet{Pingreq{}};
    case 12: return Packet{Pingresp{}};
    default: return Packet{Disconnect{}};
  }
}

// ---- properties ----------------------------------------------------------

class PacketRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(PacketRoundTripProperty, EncodeDecodeIsIdentity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  for (int i = 0; i < 200; ++i) {
    const Packet original = random_packet(rng);
    const Bytes wire = encode(original);
    auto decoded = decode(BytesView(wire));
    ASSERT_TRUE(decoded.ok())
        << packet_type_name(packet_type(original)) << ": "
        << decoded.error().to_string();
    EXPECT_TRUE(decoded.value() == original)
        << packet_type_name(packet_type(original));
  }
}

TEST_P(PacketRoundTripProperty, StreamDecoderHandlesArbitraryChunking) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * std::uint64_t{104729} + 3);
  // Concatenate a burst of packets, feed in random chunks, expect the
  // exact sequence back.
  std::vector<Packet> originals;
  Bytes stream;
  for (int i = 0; i < 50; ++i) {
    originals.push_back(random_packet(rng));
    const Bytes wire = encode(originals.back());
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  StreamDecoder dec;
  std::vector<Packet> decoded;
  std::size_t pos = 0;
  while (pos < stream.size()) {
    const std::size_t chunk =
        std::min<std::size_t>(1 + rng.below(17), stream.size() - pos);
    dec.feed(BytesView(stream).subspan(pos, chunk));
    pos += chunk;
    while (true) {
      auto next = dec.next();
      ASSERT_TRUE(next.ok()) << next.error().to_string();
      if (!next.value()) break;
      decoded.push_back(std::move(*next.value()));
    }
  }
  ASSERT_EQ(decoded.size(), originals.size());
  for (std::size_t i = 0; i < originals.size(); ++i) {
    EXPECT_TRUE(decoded[i] == originals[i]) << "packet " << i;
  }
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST_P(PacketRoundTripProperty, TruncatedPacketsNeverDecode) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
  for (int i = 0; i < 100; ++i) {
    const Bytes wire = encode(random_packet(rng));
    if (wire.size() < 3) continue;
    const std::size_t cut = 1 + rng.below(wire.size() - 2);
    auto decoded = decode(BytesView(wire).subspan(0, wire.size() - cut));
    EXPECT_FALSE(decoded.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketRoundTripProperty,
                         ::testing::Range(0, 8));

class TopicTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(TopicTreeProperty, TreeAgreesWithReferenceMatcher) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * std::uint64_t{2654435761} + 11);
  TopicTree<int, int> tree;
  std::vector<std::string> filters;
  for (int i = 0; i < 40; ++i) {
    std::string f = random_filter(rng);
    // Keep filters unique per key so erase semantics stay simple.
    filters.push_back(f);
    tree.insert(f, i, 0);
  }
  for (int t = 0; t < 200; ++t) {
    const std::string topic = random_topic(rng);
    TopicTree<int, int>::MatchList got;
    tree.match(topic, got);
    std::set<int> got_keys;
    for (const auto& [k, _] : got) got_keys.insert(*k);
    std::set<int> expected;
    for (int i = 0; i < static_cast<int>(filters.size()); ++i) {
      if (topic_matches(filters[static_cast<std::size_t>(i)], topic)) {
        expected.insert(i);
      }
    }
    EXPECT_EQ(got_keys, expected) << "topic " << topic;
  }
}

TEST_P(TopicTreeProperty, EraseRestoresNonMatching) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  TopicTree<int, int> tree;
  std::vector<std::string> filters;
  for (int i = 0; i < 20; ++i) {
    filters.push_back(random_filter(rng));
    tree.insert(filters.back(), i, 0);
  }
  // Remove half the subscribers entirely.
  for (int i = 0; i < 20; i += 2) tree.erase_key(i);
  for (int t = 0; t < 100; ++t) {
    const std::string topic = random_topic(rng);
    TopicTree<int, int>::MatchList got;
    tree.match(topic, got);
    for (const auto& [k, _] : got) {
      EXPECT_EQ(*k % 2, 1) << "erased key " << *k << " still matches";
      EXPECT_TRUE(topic_matches(filters[static_cast<std::size_t>(*k)], topic));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopicTreeProperty, ::testing::Range(0, 8));

TEST(TopicProperty, MatchImpliesValidInputs) {
  // topic_matches is total: never true for invalid names/filters.
  EXPECT_FALSE(topic_matches("", "a"));
  EXPECT_FALSE(topic_matches("a", ""));
  EXPECT_FALSE(topic_matches("a/#/b", "a/x/b"));
  EXPECT_FALSE(topic_matches("a", "a/+"));
}

}  // namespace
}  // namespace ifot::mqtt
