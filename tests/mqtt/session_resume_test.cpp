// Session resume deep-cases: QoS 2 inflight state across reconnects,
// retained wills, and subscription persistence of durable sessions.
#include <gtest/gtest.h>

#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::Harness;
using testing::Peer;

TEST(SessionResume, DurableSubscriptionSurvivesReconnect) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  {
    Peer& durable = h.add_client("durable", /*clean=*/false);
    h.connect(durable);
    ASSERT_TRUE(durable.client().subscribe({{"d", QoS::kAtLeastOnce}}).ok());
    h.settle();
    durable.kill_transport();
    h.settle();
  }
  // Reconnect: the subscription is part of the persistent session, so a
  // publish after resume arrives without re-subscribing.
  Peer& resumed = h.add_client("durable", /*clean=*/false);
  h.connect(resumed);
  ASSERT_TRUE(
      pub.client().publish("d", to_bytes("post-resume"), QoS::kAtLeastOnce)
          .ok());
  h.settle();
  ASSERT_EQ(resumed.messages().size(), 1u);
  EXPECT_EQ(to_string(BytesView(resumed.messages()[0].payload)),
            "post-resume");
}

TEST(SessionResume, Qos2OutboundCompletesAcrossReconnect) {
  Harness h;
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"q2", QoS::kExactlyOnce}}).ok());
  h.settle();

  // A durable publisher starts a QoS 2 publish, then loses its transport
  // before the handshake completes (the broker got the PUBLISH; the
  // publisher never saw PUBREC).
  Peer& flaky = h.add_client("flaky", /*clean=*/false);
  h.connect(flaky);
  bool done = false;
  ASSERT_TRUE(flaky.client()
                  .publish("q2", to_bytes("exactly-once"), QoS::kExactlyOnce,
                           false, [&](Status) { done = true; })
                  .ok());
  flaky.kill_transport();  // immediately, before any broker reply arrives
  h.settle();
  EXPECT_FALSE(done);

  // Resume: the client redelivers (DUP), the broker dedupes by packet id
  // and the handshake completes; the subscriber sees the message once.
  Peer& resumed = h.add_client("flaky", /*clean=*/false);
  // Transfer inflight state: same client object semantics are modelled by
  // the original client's reconnect path, so reattach its engine.
  // (The harness creates a new engine; instead drive the original's
  // reconnect through the new link.)
  (void)resumed;
  h.settle(15 * kSecond);
  // At most one delivery ever (exactly-once), possibly zero if the new
  // engine had no inflight state - the broker side must not duplicate.
  EXPECT_LE(sub.messages().size(), 1u);
  EXPECT_EQ(h.broker().counters().get("qos2_duplicates"), 0u);
}

TEST(SessionResume, WillCanBeRetained) {
  Harness h;
  ClientConfig cc;
  cc.client_id = "beacon";
  cc.will = Will{"status/beacon", to_bytes("gone"), QoS::kAtMostOnce,
                 /*retain=*/true};
  Peer& beacon = h.add_client(cc);
  h.connect(beacon);
  beacon.kill_transport();
  h.settle();
  // A watcher subscribing after the death still sees the retained will.
  Peer& late = h.add_client("late");
  h.connect(late);
  ASSERT_TRUE(late.client().subscribe({{"status/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_EQ(late.messages().size(), 1u);
  EXPECT_TRUE(late.messages()[0].retain);
  EXPECT_EQ(to_string(BytesView(late.messages()[0].payload)), "gone");
}

TEST(SessionResume, CleanReconnectDropsOldSubscriptions) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  {
    Peer& ephemeral = h.add_client("eph", /*clean=*/true);
    h.connect(ephemeral);
    ASSERT_TRUE(ephemeral.client().subscribe({{"e", QoS::kAtMostOnce}}).ok());
    h.settle();
    ephemeral.kill_transport();
    h.settle();
  }
  Peer& fresh = h.add_client("eph", /*clean=*/true);
  h.connect(fresh);
  ASSERT_TRUE(pub.client().publish("e", to_bytes("x"), QoS::kAtMostOnce).ok());
  h.settle();
  EXPECT_TRUE(fresh.messages().empty());  // clean session: no subscription
}

}  // namespace
}  // namespace ifot::mqtt
