// Test harness wiring mqtt::Client instances to a mqtt::Broker through
// the discrete-event simulator with a fixed symmetric link delay (no
// ifot_net dependency: bytes are shuttled directly).
#pragma once

#include <memory>
#include <vector>

#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "sim/simulator.hpp"

namespace ifot::mqtt::testing {

class SimSched final : public Scheduler {
 public:
  explicit SimSched(sim::Simulator& sim) : sim_(sim) {}
  SimTime now() override { return sim_.now(); }
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override {
    return sim_.schedule_after(delay, std::move(fn)).handle;
  }
  void cancel(std::uint64_t handle) override {
    sim_.cancel(sim::EventId{handle});
  }
  std::uint64_t rearm(std::uint64_t handle, SimDuration delay) override {
    return sim_.rearm_after(sim::EventId{handle}, delay).handle;
  }

 private:
  sim::Simulator& sim_;
};

/// One client connected to the harness broker over a delayed pipe.
class Peer {
 public:
  Peer(sim::Simulator& sim, Scheduler& sched, Broker& broker, LinkId link,
       ClientConfig cfg, SimDuration delay)
      : sim_(sim), broker_(broker), link_(link), delay_(delay) {
    // In-flight bytes still arrive after a close (TCP-like: the kernel
    // delivers what was already sent); only *new* sends are suppressed.
    // A stale delivery into the broker after on_link_closed is ignored by
    // the broker's link table, matching real socket teardown races.
    client_ = std::make_unique<Client>(
        sched, std::move(cfg), [this](const Bytes& bytes) {
          if (!up_) return;
          sim_.schedule_after(delay_, [this, bytes] {
            broker_.on_link_data(link_, BytesView(bytes));
          });
        });
    messages_.reserve(64);
    client_->set_on_message(
        [this](const Publish& p) { messages_.push_back(p); });
  }

  /// Opens the transport and sends CONNECT.
  void open() {
    up_ = true;
    broker_.on_link_open(
        link_,
        [this](const Bytes& bytes) {
          sim_.schedule_after(delay_, [this, bytes] {
            client_->on_data(BytesView(bytes));
          });
        },
        [this] {
          up_ = false;
          client_->on_transport_closed();
        });
    client_->on_transport_open();
  }

  /// Simulates an abrupt transport loss (no DISCONNECT).
  void kill_transport() {
    if (!up_) return;
    up_ = false;
    client_->on_transport_closed();
    broker_.on_link_closed(link_);
  }

  [[nodiscard]] Client& client() { return *client_; }
  [[nodiscard]] const std::vector<Publish>& messages() const {
    return messages_;
  }
  void clear_messages() { messages_.clear(); }
  [[nodiscard]] bool transport_up() const { return up_; }
  [[nodiscard]] LinkId link() const { return link_; }

 private:
  sim::Simulator& sim_;
  Broker& broker_;
  LinkId link_;
  SimDuration delay_;
  bool up_ = false;
  std::unique_ptr<Client> client_;
  std::vector<Publish> messages_;
};

/// Simulator + broker + any number of peers.
class Harness {
 public:
  explicit Harness(BrokerConfig cfg = {}, SimDuration link_delay = kMillisecond)
      : sched_(sim_), broker_(sched_, cfg), delay_(link_delay) {}

  Peer& add_client(const std::string& client_id, bool clean = true,
                   std::uint16_t keep_alive_s = 60) {
    ClientConfig cc;
    cc.client_id = client_id;
    cc.clean_session = clean;
    cc.keep_alive_s = keep_alive_s;
    return add_client(cc);
  }

  Peer& add_client(ClientConfig cc) {
    peers_.push_back(std::make_unique<Peer>(sim_, sched_, broker_,
                                            next_link_++, std::move(cc),
                                            delay_));
    return *peers_.back();
  }

  /// Opens a peer and settles the CONNECT handshake.
  void connect(Peer& peer) {
    peer.open();
    settle();
  }

  /// Runs the simulator until idle (bounded to avoid timer loops).
  void settle(SimDuration window = 10 * kSecond) {
    sim_.run_until(sim_.now() + window);
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] Broker& broker() { return broker_; }

 private:
  sim::Simulator sim_;
  SimSched sched_;
  Broker broker_;
  SimDuration delay_;
  LinkId next_link_ = 1;
  std::vector<std::unique_ptr<Peer>> peers_;
};

}  // namespace ifot::mqtt::testing
