#include "mqtt/topic.hpp"

#include <gtest/gtest.h>

namespace ifot::mqtt {
namespace {

TEST(TopicName, Validity) {
  EXPECT_TRUE(valid_topic_name("a"));
  EXPECT_TRUE(valid_topic_name("a/b/c"));
  EXPECT_TRUE(valid_topic_name("/leading"));
  EXPECT_TRUE(valid_topic_name("trailing/"));
  EXPECT_TRUE(valid_topic_name("$SYS/broker"));
  EXPECT_FALSE(valid_topic_name(""));
  EXPECT_FALSE(valid_topic_name("a/+/b"));
  EXPECT_FALSE(valid_topic_name("a/#"));
  EXPECT_FALSE(valid_topic_name(std::string("a\0b", 3)));
}

TEST(TopicFilter, Validity) {
  EXPECT_TRUE(valid_topic_filter("a/b"));
  EXPECT_TRUE(valid_topic_filter("+"));
  EXPECT_TRUE(valid_topic_filter("#"));
  EXPECT_TRUE(valid_topic_filter("a/+/c"));
  EXPECT_TRUE(valid_topic_filter("a/#"));
  EXPECT_TRUE(valid_topic_filter("+/+/+"));
  EXPECT_FALSE(valid_topic_filter(""));
  EXPECT_FALSE(valid_topic_filter("a+"));     // wildcard not alone in level
  EXPECT_FALSE(valid_topic_filter("a/b#"));
  EXPECT_FALSE(valid_topic_filter("#/a"));    // '#' not last
  EXPECT_FALSE(valid_topic_filter("a/#/b"));
}

// The trie recursion depth is bounded by the level count, so validation
// caps topics and filters at kMaxTopicLevels (the static bounded-stack
// proof in scripts/stack_budget.json depends on this bound).
TEST(TopicLevels, DepthCapEnforced) {
  std::string deep = "x";
  for (std::size_t i = 1; i < kMaxTopicLevels; ++i) deep += "/x";
  EXPECT_TRUE(valid_topic_name(deep));
  EXPECT_TRUE(valid_topic_filter(deep));
  deep += "/x";  // one level past the cap
  EXPECT_FALSE(valid_topic_name(deep));
  EXPECT_FALSE(valid_topic_filter(deep));
  // Empty levels count toward the cap too.
  EXPECT_FALSE(valid_topic_name(std::string(kMaxTopicLevels, '/')));
}

struct MatchCase {
  const char* filter;
  const char* topic;
  bool expect;
};

class TopicMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatchTest, MatchesPerSpec) {
  const auto& c = GetParam();
  EXPECT_EQ(topic_matches(c.filter, c.topic), c.expect)
      << c.filter << " vs " << c.topic;
}

INSTANTIATE_TEST_SUITE_P(
    Spec47, TopicMatchTest,
    ::testing::Values(
        // Exact matches.
        MatchCase{"a/b/c", "a/b/c", true},
        MatchCase{"a/b/c", "a/b/d", false},
        MatchCase{"a/b/c", "a/b", false},
        MatchCase{"a/b", "a/b/c", false},
        // '+' single level.
        MatchCase{"a/+/c", "a/b/c", true},
        MatchCase{"a/+/c", "a/x/c", true},
        MatchCase{"a/+/c", "a/b/d", false},
        MatchCase{"a/+/c", "a/b/c/d", false},
        MatchCase{"+", "a", true},
        MatchCase{"+", "a/b", false},
        MatchCase{"+/+", "/finance", true},   // spec example
        MatchCase{"/+", "/finance", true},    // spec example
        MatchCase{"+", "/finance", false},    // spec example
        // '#' multi level (including parent).
        MatchCase{"#", "a", true},
        MatchCase{"#", "a/b/c", true},
        MatchCase{"sport/#", "sport", true},  // spec: matches parent
        MatchCase{"sport/#", "sport/tennis/player1", true},
        MatchCase{"sport/tennis/#", "sport", false},
        // '$' topics are hidden from wildcard-leading filters.
        MatchCase{"#", "$SYS/broker", false},
        MatchCase{"+/broker", "$SYS/broker", false},
        MatchCase{"$SYS/#", "$SYS/broker", true},
        MatchCase{"$SYS/broker", "$SYS/broker", true},
        // Empty levels are real levels.
        MatchCase{"a//c", "a//c", true},
        MatchCase{"a/+/c", "a//c", true}));

TEST(TopicTree, ExactAndWildcardLookup) {
  TopicTree<std::string, int> tree;
  tree.insert("ifot/app/a", "c1", 1);
  tree.insert("ifot/app/+", "c2", 2);
  tree.insert("ifot/#", "c3", 3);
  tree.insert("other/x", "c4", 4);

  TopicTree<std::string, int>::MatchList out;
  tree.match("ifot/app/a", out);
  ASSERT_EQ(out.size(), 3u);
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  EXPECT_EQ(*out[0].first, "c1");
  EXPECT_EQ(*out[1].first, "c2");
  EXPECT_EQ(*out[2].first, "c3");
}

TEST(TopicTree, HashParentMatch) {
  TopicTree<std::string, int> tree;
  tree.insert("sport/#", "c", 1);
  TopicTree<std::string, int>::MatchList out;
  tree.match("sport", out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(TopicTree, DollarTopicsHiddenFromRootWildcards) {
  TopicTree<std::string, int> tree;
  tree.insert("#", "all", 1);
  tree.insert("+/x", "plus", 2);
  tree.insert("$SYS/#", "sys", 3);
  TopicTree<std::string, int>::MatchList out;
  tree.match("$SYS/x", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0].first, "sys");
}

TEST(TopicTree, EraseRemovesOnlyThatKey) {
  TopicTree<std::string, int> tree;
  tree.insert("a/b", "c1", 1);
  tree.insert("a/b", "c2", 2);
  EXPECT_TRUE(tree.erase("a/b", "c1"));
  EXPECT_FALSE(tree.erase("a/b", "c1"));  // already gone
  TopicTree<std::string, int>::MatchList out;
  tree.match("a/b", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0].first, "c2");
}

TEST(TopicTree, EraseKeyRemovesAllFilters) {
  TopicTree<std::string, int> tree;
  tree.insert("a/+", "c1", 1);
  tree.insert("b/#", "c1", 2);
  tree.insert("a/x", "c2", 3);
  tree.erase_key("c1");
  TopicTree<std::string, int>::MatchList out;
  tree.match("a/x", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(*out[0].first, "c2");
  out.clear();
  tree.match("b/anything", out);
  EXPECT_TRUE(out.empty());
}

TEST(TopicTree, InsertReplacesValue) {
  TopicTree<std::string, int> tree;
  tree.insert("t", "c", 1);
  tree.insert("t", "c", 9);
  TopicTree<std::string, int>::MatchList out;
  tree.match("t", out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 9);
}

// ---- hostile-pattern matcher edge cases ---------------------------------

INSTANTIATE_TEST_SUITE_P(
    HostilePatterns, TopicMatchTest,
    ::testing::Values(
        // '#' at each level depth, including as the entire filter.
        MatchCase{"#", "", false},            // empty topic is invalid
        MatchCase{"a/#", "a/b/c/d/e", true},
        MatchCase{"a/b/#", "a/b", true},
        MatchCase{"a/b/#", "a", false},
        MatchCase{"a/b/c/#", "a/b/c/d", true},
        // '+' at each level depth.
        MatchCase{"+/b/c", "a/b/c", true},
        MatchCase{"a/b/+", "a/b/c", true},
        MatchCase{"+/+/+", "a/b/c", true},
        MatchCase{"+/+/+", "a/b", false},
        MatchCase{"+/+", "a/b/c", false},
        // '+' matches an empty level but not a missing one.
        MatchCase{"+/b", "/b", true},
        MatchCase{"a/+", "a/", true},
        MatchCase{"a/+", "a", false},
        // Consecutive empty levels are all real.
        MatchCase{"a//", "a//", true},
        MatchCase{"a//", "a/", false},
        MatchCase{"//", "//", true},
        MatchCase{"+/+/+", "//", true},
        MatchCase{"#", "//", true},
        // Wildcards embedded mid-level never validate, so never match.
        MatchCase{"a/b+/c", "a/bx/c", false},
        MatchCase{"a/+b/c", "a/xb/c", false},
        MatchCase{"a/b#", "a/b", false},
        // '#' not at the final level never validates.
        MatchCase{"#/tail", "x/tail", false},
        // Any leading-'$' level is shielded only at the root.
        MatchCase{"+/$x", "a/$x", true},
        MatchCase{"a/#", "a/$weird", true},
        MatchCase{"#", "$anything", false},
        MatchCase{"+", "$", false},
        // $SYS subtree requires a literal first level.
        MatchCase{"$SYS/#", "$SYS", true},
        MatchCase{"$SYS/+/x", "$SYS/broker/x", true},
        MatchCase{"$sys/#", "$SYS/broker", false}));  // case-sensitive

TEST(TopicTree, WildcardEntriesNeverMatchDollarTopicsAtRoot) {
  // The broker publishes $SYS stats through the same tree as user
  // topics; a '#'-subscriber must not receive them (§4.7.2).
  TopicTree<std::string, int> tree;
  tree.insert("#", "snoop", 1);
  tree.insert("+/broker/uptime", "snoop2", 2);
  TopicTree<std::string, int>::MatchList out;
  tree.match("$SYS/broker/uptime", out);
  EXPECT_TRUE(out.empty());
}

TEST(TopicTree, ContainsIsExactFilterLookup) {
  TopicTree<std::string, int> tree;
  tree.insert("a/+/c", "c1", 1);
  EXPECT_TRUE(tree.contains("a/+/c", "c1"));
  EXPECT_FALSE(tree.contains("a/b/c", "c1"));  // no wildcard expansion
  EXPECT_FALSE(tree.contains("a/+/c", "c2"));
  EXPECT_FALSE(tree.contains("a/+", "c1"));
}

TEST(TopicTree, EntryCountTracksInsertEraseAndEraseKey) {
  TopicTree<std::string, int> tree;
  EXPECT_EQ(tree.entry_count(), 0u);
  tree.insert("a/b", "c1", 1);
  tree.insert("a/+", "c1", 2);
  tree.insert("a/b", "c2", 3);
  EXPECT_EQ(tree.entry_count(), 3u);
  tree.insert("a/b", "c1", 9);  // replace, not add
  EXPECT_EQ(tree.entry_count(), 3u);
  EXPECT_TRUE(tree.erase("a/b", "c2"));
  EXPECT_EQ(tree.entry_count(), 2u);
  tree.erase_key("c1");
  EXPECT_EQ(tree.entry_count(), 0u);
}

TEST(TopicTree, OverlappingFiltersReportedPerFilter) {
  TopicTree<std::string, int> tree;
  tree.insert("a/#", "c", 0);
  tree.insert("a/+", "c", 1);
  tree.insert("a/b", "c", 2);
  TopicTree<std::string, int>::MatchList out;
  tree.match("a/b", out);
  EXPECT_EQ(out.size(), 3u);  // broker dedups by key, tree reports all
}

TEST(TopicTree, VersionBumpsOnlyWhenEntrySetChanges) {
  TopicTree<std::string, int> tree;
  const std::uint64_t v0 = tree.version();
  tree.insert("a/b", "c1", 1);
  EXPECT_GT(tree.version(), v0);

  // Failed erases must not invalidate cached routes.
  std::uint64_t v = tree.version();
  EXPECT_FALSE(tree.erase("a/b", "nobody"));
  EXPECT_FALSE(tree.erase("no/such/filter", "c1"));
  EXPECT_FALSE(tree.erase_key("nobody"));
  EXPECT_EQ(tree.version(), v);

  // Successful mutations each bump exactly once.
  EXPECT_TRUE(tree.erase("a/b", "c1"));
  EXPECT_EQ(tree.version(), v + 1);
  tree.insert("x/+", "c2", 2);
  EXPECT_EQ(tree.version(), v + 2);
  EXPECT_TRUE(tree.erase_key("c2"));
  EXPECT_EQ(tree.version(), v + 3);
}

TEST(TopicTree, ChurnPrunesEmptyNodes) {
  TopicTree<std::string, int> tree;
  tree.insert("stable/topic", "keep", 1);
  const std::size_t baseline = tree.node_count();
  EXPECT_EQ(baseline, 2u);

  // Deep churn through erase(): every node added for the filter must be
  // pruned once its last entry goes away.
  for (int i = 0; i < 16; ++i) {
    const std::string filter = "churn/" + std::to_string(i) + "/deep/leaf";
    tree.insert(filter, "c", i);
    EXPECT_GT(tree.node_count(), baseline);
    EXPECT_TRUE(tree.erase(filter, "c"));
    EXPECT_EQ(tree.node_count(), baseline);
  }

  // Shared prefixes survive while any entry below them lives.
  tree.insert("churn/a/b", "c1", 1);
  tree.insert("churn/a/c", "c2", 2);
  EXPECT_TRUE(tree.erase("churn/a/b", "c1"));
  EXPECT_TRUE(tree.contains("churn/a/c", "c2"));
  EXPECT_TRUE(tree.erase("churn/a/c", "c2"));
  EXPECT_EQ(tree.node_count(), baseline);

  // Session-teardown churn through erase_key() prunes too.
  for (int i = 0; i < 8; ++i) {
    tree.insert("session/" + std::to_string(i) + "/+", "gone", i);
  }
  EXPECT_TRUE(tree.erase_key("gone"));
  EXPECT_EQ(tree.node_count(), baseline);

  // Interior entries keep their ancestors when a descendant is pruned.
  tree.insert("p", "mid", 1);
  tree.insert("p/q/r", "leaf", 2);
  EXPECT_TRUE(tree.erase("p/q/r", "leaf"));
  EXPECT_TRUE(tree.contains("p", "mid"));
  EXPECT_EQ(tree.node_count(), baseline + 1);
}

}  // namespace
}  // namespace ifot::mqtt
