// The fan-out and QoS 2 dedup counters must be observable over the wire
// on $SYS/broker/... topics (ROADMAP: surface the fan-out counters), not
// just via the in-process Counters accessor.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>

#include "mqtt/broker.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using ifot::mqtt::testing::Harness;
using ifot::mqtt::testing::Peer;

// Collects the latest payload per $SYS topic seen by a peer.
std::map<std::string, std::string> sys_snapshot(const Peer& peer) {
  std::map<std::string, std::string> latest;
  for (const auto& m : peer.messages()) {
    latest[m.topic] = to_string(BytesView(m.payload));
  }
  return latest;
}

TEST(SysCounters, FanoutAndDedupCountersArePublished) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  Harness h(cfg);
  Peer& watcher = h.add_client("watcher");
  Peer& sub = h.add_client("sub");
  Peer& pub = h.add_client("pub");
  h.connect(watcher);
  h.connect(sub);
  h.connect(pub);
  ASSERT_TRUE(watcher.client().subscribe({{"$SYS/#", QoS::kAtMostOnce}}).ok());
  ASSERT_TRUE(sub.client().subscribe({{"flow/#", QoS::kAtMostOnce}}).ok());
  h.settle();

  // Drive one QoS 0 fan-out so fanout_encodes and the shared-bytes
  // counter move off zero.
  const Bytes payload = to_bytes("0123456789");
  ASSERT_TRUE(pub.client().publish("flow/a", payload, QoS::kAtMostOnce).ok());
  h.settle(2 * kSecond);  // at least one stats tick after the publish

  const auto stats = sys_snapshot(watcher);
  for (const char* topic : {
           "$SYS/broker/publish/fanout/encodes",
           "$SYS/broker/publish/fanout/bytes/shared",
           "$SYS/broker/publish/fanout/bytes/copied",
           "$SYS/broker/publish/fanout/topic_bytes/shared",
           "$SYS/broker/publish/fanout/topic_bytes/copied",
           "$SYS/broker/store/qos2/dedup/evictions",
           "$SYS/broker/store/qos2/dedup/backlog",
           "$SYS/broker/egress/wire_templates",
           "$SYS/broker/egress/template_bytes_shared",
           "$SYS/broker/egress/batched_writes",
           "$SYS/broker/egress/frames_per_write",
       }) {
    ASSERT_TRUE(stats.count(topic)) << "missing " << topic;
  }
  // The egress path encoded shared wire templates, and the watcher's own
  // $SYS burst (29 topics per tick towards one link) coalesced into
  // batched transport writes.
  EXPECT_GE(std::stoull(stats.at("$SYS/broker/egress/wire_templates")), 1u);
  EXPECT_GT(std::stoull(stats.at("$SYS/broker/egress/batched_writes")), 0u);
  EXPECT_GE(std::stoull(stats.at("$SYS/broker/egress/frames_per_write")), 1u);
  EXPECT_GT(
      std::stoull(stats.at("$SYS/broker/egress/template_bytes_shared")), 0u);
  // The flow/a fan-out encoded once and shared its 10 payload bytes.
  EXPECT_GE(std::stoull(stats.at("$SYS/broker/publish/fanout/encodes")), 1u);
  EXPECT_GE(std::stoull(stats.at("$SYS/broker/publish/fanout/bytes/shared")),
            payload.size());
  // The 6-byte "flow/a" topic was shared once per subscriber delivery.
  EXPECT_GE(
      std::stoull(stats.at("$SYS/broker/publish/fanout/topic_bytes/shared")),
      6u);
  // Nothing forced a copy or touched QoS 2 dedup state in this scenario.
  EXPECT_EQ(stats.at("$SYS/broker/store/qos2/dedup/backlog"), "0");
}

TEST(SysCounters, MemoryFootprintCountersArePublished) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  Harness h(cfg);
  Peer& watcher = h.add_client("watcher");
  Peer& sub = h.add_client("sub", /*clean=*/false);
  Peer& pub = h.add_client("pub");
  h.connect(watcher);
  h.connect(sub);
  h.connect(pub);
  ASSERT_TRUE(watcher.client().subscribe({{"$SYS/#", QoS::kAtMostOnce}}).ok());
  ASSERT_TRUE(sub.client().subscribe({{"flow/#", QoS::kAtLeastOnce}}).ok());
  h.settle();

  // Drop the persistent subscriber and publish into its filter: the
  // message parks on the offline session's queue, so queued_nodes must
  // move off zero while the session itself stays counted.
  sub.kill_transport();
  h.settle();
  ASSERT_TRUE(pub.client()
                  .publish("flow/a", to_bytes("x"), QoS::kAtLeastOnce)
                  .ok());
  h.settle(2 * kSecond);  // at least one stats tick after the publish

  const auto stats = sys_snapshot(watcher);
  for (const char* topic : {
           "$SYS/broker/memory/sessions_bytes_est",
           "$SYS/broker/memory/inflight_nodes",
           "$SYS/broker/memory/queued_nodes",
           "$SYS/broker/memory/pool_buckets_bytes",
       }) {
    ASSERT_TRUE(stats.count(topic)) << "missing " << topic;
  }
  // watcher + pub + the persistent "sub" session: the estimate is
  // sizeof(Session) per live session, so it divides evenly by three.
  const auto est =
      std::stoull(stats.at("$SYS/broker/memory/sessions_bytes_est"));
  EXPECT_EQ(h.broker().session_count(), 3u);
  EXPECT_GT(est, 0u);
  EXPECT_EQ(est % 3, 0u);
  EXPECT_GE(std::stoull(stats.at("$SYS/broker/memory/queued_nodes")), 1u);
  // Subscriptions and the parked message both draw from the node pool.
  EXPECT_GT(std::stoull(stats.at("$SYS/broker/memory/pool_buckets_bytes")),
            0u);
}

TEST(SysCounters, CounterTopicsAreRetainedForLateSubscribers) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  Harness h(cfg);
  Peer& early = h.add_client("early");
  h.connect(early);
  h.settle(2 * kSecond);  // a stats tick happens with no watcher attached
  Peer& late = h.add_client("late");
  h.connect(late);
  ASSERT_TRUE(late.client()
                  .subscribe({{"$SYS/broker/publish/fanout/encodes",
                               QoS::kAtMostOnce}})
                  .ok());
  h.settle(100 * kMillisecond);
  ASSERT_GE(late.messages().size(), 1u);
  EXPECT_TRUE(late.messages()[0].retain);
  EXPECT_EQ(late.messages()[0].topic, "$SYS/broker/publish/fanout/encodes");
}

}  // namespace
}  // namespace ifot::mqtt
