#include "mqtt/client.hpp"

#include <gtest/gtest.h>

#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::Harness;
using testing::Peer;

TEST(Client, RejectsInvalidTopicOnPublish) {
  Harness h;
  Peer& p = h.add_client("c");
  h.connect(p);
  EXPECT_FALSE(p.client().publish("bad/+/topic", {}, QoS::kAtMostOnce).ok());
  EXPECT_FALSE(p.client().publish("", {}, QoS::kAtMostOnce).ok());
}

TEST(Client, RejectsSubscribeWhenDisconnected) {
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "lonely";
  Client client(sched, cc, [](const Bytes&) {});
  auto status = client.subscribe({{"t", QoS::kAtMostOnce}});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kState);
}

TEST(Client, RejectsEmptySubscriptionList) {
  Harness h;
  Peer& p = h.add_client("c");
  h.connect(p);
  EXPECT_FALSE(p.client().subscribe({}).ok());
  EXPECT_FALSE(p.client().unsubscribe({}).ok());
}

TEST(Client, Qos0PublishWhileOfflineIsBufferedUntilConnect) {
  Harness h;
  Peer& p = h.add_client("buffered");
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"b", QoS::kAtMostOnce}}).ok());
  h.settle();
  // Not yet connected: publish buffers.
  ASSERT_TRUE(p.client().publish("b", to_bytes("early"), QoS::kAtMostOnce).ok());
  EXPECT_TRUE(sub.messages().empty());
  h.connect(p);
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(to_string(BytesView(sub.messages()[0].payload)), "early");
}

TEST(Client, InflightWindowCapacity) {
  Harness h;
  ClientConfig cc;
  cc.client_id = "windowed";
  cc.max_inflight = 2;
  Peer& p = h.add_client(cc);
  // While offline, QoS1 publishes occupy the window without being sent.
  ASSERT_TRUE(p.client().publish("t", {}, QoS::kAtLeastOnce).ok());
  ASSERT_TRUE(p.client().publish("t", {}, QoS::kAtLeastOnce).ok());
  auto third = p.client().publish("t", {}, QoS::kAtLeastOnce);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.error().code, Errc::kCapacity);
  EXPECT_EQ(p.client().inflight_count(), 2u);
}

TEST(Client, InflightQos1SentOnConnectWithDupAfterResume) {
  Harness h;
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"t", QoS::kAtLeastOnce}}).ok());
  h.settle();

  ClientConfig cc;
  cc.client_id = "resumer";
  Peer& p = h.add_client(cc);
  bool done = false;
  ASSERT_TRUE(p.client()
                  .publish("t", to_bytes("x"), QoS::kAtLeastOnce, false,
                           [&](Status) { done = true; })
                  .ok());
  EXPECT_FALSE(done);
  h.connect(p);  // publish goes out after CONNACK
  h.settle();
  EXPECT_TRUE(done);
  ASSERT_EQ(sub.messages().size(), 1u);
}

TEST(Client, RetriesUnackedQos1WithDup) {
  // A broker harness that swallows the first PUBACK so the client retries.
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "retry";
  cc.retry_interval = from_millis(100);
  std::vector<Packet> sent;
  Client client(sched, cc, [&](const Bytes& bytes) {
    auto p = decode(BytesView(bytes));
    ASSERT_TRUE(p.ok());
    sent.push_back(std::move(p).value());
  });
  client.on_transport_open();
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.publish("t", to_bytes("v"), QoS::kAtLeastOnce).ok());
  sim.run_until(sim.now() + from_millis(350));  // 3 retry intervals
  // CONNECT + original PUBLISH + >= 2 retries.
  int publishes = 0;
  int dups = 0;
  std::uint16_t pid = 0;
  for (const auto& pkt : sent) {
    if (const auto* pub = std::get_if<Publish>(&pkt)) {
      ++publishes;
      if (pub->dup) ++dups;
      if (pid == 0) pid = pub->packet_id;
      EXPECT_EQ(pub->packet_id, pid);  // same id on every retry
    }
  }
  EXPECT_GE(publishes, 3);
  EXPECT_EQ(dups, publishes - 1);
  // Late PUBACK completes it; no further retries.
  client.on_data(BytesView(encode(Packet{Puback{pid}})));
  const auto count_before = sent.size();
  sim.run_until(sim.now() + from_millis(500));
  std::size_t later_publishes = 0;
  for (std::size_t i = count_before; i < sent.size(); ++i) {
    if (std::holds_alternative<Publish>(sent[i])) ++later_publishes;
  }
  EXPECT_EQ(later_publishes, 0u);
  EXPECT_EQ(client.inflight_count(), 0u);
}

TEST(Client, Qos2InboundDeduplicatesOnDupPublish) {
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "dedup";
  std::vector<Packet> sent;
  Client client(sched, cc, [&](const Bytes& bytes) {
    auto p = decode(BytesView(bytes));
    ASSERT_TRUE(p.ok());
    sent.push_back(std::move(p).value());
  });
  int deliveries = 0;
  client.set_on_message([&](const Publish&) { ++deliveries; });
  client.on_transport_open();
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));

  Publish p;
  p.topic = "t";
  p.qos = QoS::kExactlyOnce;
  p.packet_id = 11;
  client.on_data(BytesView(encode(Packet{p})));
  p.dup = true;
  client.on_data(BytesView(encode(Packet{p})));  // retransmission
  EXPECT_EQ(deliveries, 1);
  // PUBREL releases the id; a new PUBLISH with the same id delivers again.
  client.on_data(BytesView(encode(Packet{Pubrel{11}})));
  p.dup = false;
  client.on_data(BytesView(encode(Packet{p})));
  EXPECT_EQ(deliveries, 2);
}

TEST(Client, PingSentAtKeepAliveInterval) {
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "pinger";
  cc.keep_alive_s = 5;
  int pings = 0;
  Client client(sched, cc, [&](const Bytes& bytes) {
    auto p = decode(BytesView(bytes));
    if (p.ok() && std::holds_alternative<Pingreq>(p.value())) ++pings;
  });
  client.on_transport_open();
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  sim.run_until(sim.now() + 16 * kSecond);
  EXPECT_EQ(pings, 3);  // t=5,10,15
}

TEST(Client, DisconnectSendsPacketAndStopsPing) {
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "bye";
  cc.keep_alive_s = 1;
  std::vector<PacketType> types;
  Client client(sched, cc, [&](const Bytes& bytes) {
    auto p = decode(BytesView(bytes));
    ASSERT_TRUE(p.ok());
    types.push_back(packet_type(p.value()));
  });
  client.on_transport_open();
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  client.disconnect();
  EXPECT_FALSE(client.connected());
  sim.run_until(sim.now() + 10 * kSecond);
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], PacketType::kConnect);
  EXPECT_EQ(types[1], PacketType::kDisconnect);
}

TEST(Client, ProtocolErrorSurfacesToOwner) {
  sim::Simulator sim;
  testing::SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "victim";
  Client client(sched, cc, [](const Bytes&) {});
  bool reported = false;
  client.set_on_protocol_error([&](const Error&) { reported = true; });
  client.on_transport_open();
  const Bytes garbage = {0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  client.on_data(BytesView(garbage));
  EXPECT_TRUE(reported);
  EXPECT_FALSE(client.connected());
}

TEST(Client, SubackCallbackReceivesGrants) {
  Harness h;
  Peer& p = h.add_client("granted");
  h.connect(p);
  std::vector<std::uint8_t> rc;
  ASSERT_TRUE(p.client()
                  .subscribe({{"a", QoS::kAtLeastOnce},
                              {"b/#", QoS::kExactlyOnce}},
                             [&](const Suback& ack) {
                               rc = ack.return_codes;
                             })
                  .ok());
  h.settle();
  ASSERT_EQ(rc.size(), 2u);
  EXPECT_EQ(rc[0], 1);
  EXPECT_EQ(rc[1], 2);
}

}  // namespace
}  // namespace ifot::mqtt
