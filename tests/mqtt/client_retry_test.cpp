// Control-plane robustness of the client: CONNECT and SUBSCRIBE retries
// when a lossy transport swallows packets (IoT-grade links drop control
// traffic as readily as data).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "mqtt/client.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::SimSched;

/// Client wired to a byte sink that drops the first N sends.
struct DropFirstN {
  explicit DropFirstN(int n) : remaining(n) {}
  int remaining;
  std::vector<Packet> delivered;
  void operator()(const Bytes& bytes) {
    if (remaining > 0) {
      --remaining;
      return;  // swallowed by the network
    }
    auto p = decode(BytesView(bytes));
    ASSERT_TRUE(p.ok());
    delivered.push_back(std::move(p).value());
  }
};

TEST(ClientRetry, ConnectRetriedUntilConnack) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "stubborn";
  cc.control_retry_interval = from_millis(100);
  auto sink = std::make_shared<DropFirstN>(2);  // first two CONNECTs lost
  Client client(sched, cc, [sink](const Bytes& b) { (*sink)(b); });
  client.on_transport_open();
  sim.run_until(sim.now() + from_millis(350));
  // Third CONNECT got through.
  ASSERT_GE(sink->delivered.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<Connect>(sink->delivered[0]));
  EXPECT_GE(client.counters().get("connect_retries"), 2u);
  // CONNACK stops the retrying.
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  const auto count = sink->delivered.size();
  sim.run_until(sim.now() + from_millis(500));
  std::size_t extra_connects = 0;
  for (std::size_t i = count; i < sink->delivered.size(); ++i) {
    if (std::holds_alternative<Connect>(sink->delivered[i])) ++extra_connects;
  }
  EXPECT_EQ(extra_connects, 0u);
  EXPECT_TRUE(client.connected());
}

TEST(ClientRetry, SubscribeRetriedUntilSuback) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "sub-retry";
  cc.control_retry_interval = from_millis(100);
  std::vector<Packet> sent;
  Client client(sched, cc, [&](const Bytes& b) {
    auto p = decode(BytesView(b));
    ASSERT_TRUE(p.ok());
    sent.push_back(std::move(p).value());
  });
  client.on_transport_open();
  client.on_data(BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  bool acked = false;
  ASSERT_TRUE(client.subscribe({{"t/#", QoS::kAtMostOnce}},
                               [&](const Suback&) { acked = true; })
                  .ok());
  sim.run_until(sim.now() + from_millis(350));
  // Original + >= 2 retries, all with the same packet id.
  std::uint16_t pid = 0;
  int subscribes = 0;
  for (const auto& p : sent) {
    if (const auto* s = std::get_if<Subscribe>(&p)) {
      ++subscribes;
      if (pid == 0) pid = s->packet_id;
      EXPECT_EQ(s->packet_id, pid);
    }
  }
  EXPECT_GE(subscribes, 3);
  // SUBACK stops it and fires the handler once.
  client.on_data(BytesView(encode(Packet{Suback{pid, {0}}})));
  EXPECT_TRUE(acked);
  const auto before = sent.size();
  sim.run_until(sim.now() + from_millis(500));
  for (std::size_t i = before; i < sent.size(); ++i) {
    EXPECT_FALSE(std::holds_alternative<Subscribe>(sent[i]));
  }
}

TEST(ClientRetry, EndToEndOverLossyHarness) {
  // 8 independent seeds: with per-send 30% loss on both directions, every
  // client still ends connected + subscribed thanks to control retries.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Simulator sim;
    SimSched sched(sim);
    Broker broker(sched);
    Rng rng(seed);
    ClientConfig cc;
    cc.client_id = "lossy";
    cc.control_retry_interval = from_millis(200);
    Client* client_ptr = nullptr;
    Client client(sched, cc, [&](const Bytes& bytes) {
      if (rng.chance(0.3)) return;  // dropped toward broker
      sim.schedule_after(kMillisecond, [&broker, bytes] {
        broker.on_link_data(1, BytesView(bytes));
      });
    });
    client_ptr = &client;
    broker.on_link_open(
        1,
        [&](const Bytes& bytes) {
          if (rng.chance(0.3)) return;  // dropped toward client
          sim.schedule_after(kMillisecond, [client_ptr, bytes] {
            client_ptr->on_data(BytesView(bytes));
          });
        },
        [] {});
    client.on_transport_open();
    bool subscribed = false;
    // Subscribe as soon as connected.
    client.set_on_connack([&](const Connack& ack) {
      if (ack.code == ConnectCode::kAccepted && !subscribed) {
        (void)client.subscribe({{"x", QoS::kAtMostOnce}},
                               [&](const Suback&) { subscribed = true; });
      }
    });
    sim.run_until(sim.now() + 10 * kSecond);
    EXPECT_TRUE(client.connected()) << "seed " << seed;
    EXPECT_TRUE(subscribed) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ifot::mqtt
