// Unit tests for the per-link egress Outbox: same-turn frames coalesce
// into one transport write, bounds force early flushes (never drops),
// templates are patched at flush time, and a write callback that re-enters
// the outbox cannot lose or duplicate frames.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "mqtt/outbox.hpp"
#include "mqtt/packet.hpp"

namespace ifot::mqtt {
namespace {

Bytes frame_of(std::uint8_t fill, std::size_t len) {
  return Bytes(len, fill);
}

Bytes concat(const std::vector<Bytes>& frames) {
  Bytes out;
  for (const Bytes& f : frames) out.insert(out.end(), f.begin(), f.end());
  return out;
}

WireTemplateRef make_template(WireTemplatePool& pool, QoS qos,
                              std::uint16_t id) {
  Publish p;
  p.topic = "t/x";
  p.payload = SharedPayload(Bytes(10, 0x77));
  p.qos = qos;
  p.packet_id = id;
  WireTemplateRef tpl = pool.acquire();
  tpl->assign(p);
  return tpl;
}

TEST(Outbox, CoalescesSameTurnFramesIntoOneWrite) {
  Counters counters;
  std::vector<Bytes> writes;
  Outbox box({}, [&](const Bytes& b) { writes.push_back(b); }, &counters);
  box.enqueue(frame_of(0x01, 4));
  box.enqueue(frame_of(0x02, 8));
  box.enqueue(frame_of(0x03, 2));
  EXPECT_EQ(box.pending_frames(), 3u);
  EXPECT_EQ(box.pending_bytes(), 14u);
  box.flush();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0],
            concat({frame_of(0x01, 4), frame_of(0x02, 8), frame_of(0x03, 2)}));
  EXPECT_EQ(counters.get("egress_writes"), 1u);
  EXPECT_EQ(counters.get("egress_frames"), 3u);
  EXPECT_EQ(counters.get("egress_batched_writes"), 1u);
  EXPECT_EQ(box.pending_frames(), 0u);
  EXPECT_EQ(box.pending_bytes(), 0u);
}

TEST(Outbox, SingleFrameGoesOutUnconcatenated) {
  Counters counters;
  std::vector<Bytes> writes;
  Outbox box({}, [&](const Bytes& b) { writes.push_back(b); }, &counters);
  box.enqueue(frame_of(0x55, 6));
  box.flush();
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0], frame_of(0x55, 6));
  EXPECT_EQ(counters.get("egress_batched_writes"), 0u);
  box.flush();  // idle flush is a no-op
  EXPECT_EQ(writes.size(), 1u);
  EXPECT_EQ(counters.get("egress_writes"), 1u);
}

TEST(Outbox, FrameBoundForcesEarlyFlush) {
  Outbox::Config cfg;
  cfg.max_queued_frames = 2;
  std::vector<Bytes> writes;
  Outbox box(cfg, [&](const Bytes& b) { writes.push_back(b); }, nullptr);
  box.enqueue(frame_of(0x01, 1));
  box.enqueue(frame_of(0x02, 1));
  // The third frame bursts the bound: the first two go out, nothing drops.
  box.enqueue(frame_of(0x03, 1));
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0], concat({frame_of(0x01, 1), frame_of(0x02, 1)}));
  EXPECT_EQ(box.pending_frames(), 1u);
  box.flush();
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[1], frame_of(0x03, 1));
}

TEST(Outbox, ByteBoundForcesEarlyFlushAndOversizedFrameGoesWhole) {
  Outbox::Config cfg;
  cfg.max_batch_bytes = 16;
  std::vector<Bytes> writes;
  Outbox box(cfg, [&](const Bytes& b) { writes.push_back(b); }, nullptr);
  box.enqueue(frame_of(0x01, 10));
  // 10 + 12 > 16: the queued frame flushes first.
  box.enqueue(frame_of(0x02, 12));
  ASSERT_EQ(writes.size(), 1u);
  EXPECT_EQ(writes[0], frame_of(0x01, 10));
  // A frame larger than the whole byte budget still goes out, alone.
  box.enqueue(frame_of(0x03, 100));
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[1], frame_of(0x02, 12));
  box.flush();
  ASSERT_EQ(writes.size(), 3u);
  EXPECT_EQ(writes[2], frame_of(0x03, 100));
}

TEST(Outbox, ClearDropsQueuedFrames) {
  std::vector<Bytes> writes;
  Outbox box({}, [&](const Bytes& b) { writes.push_back(b); }, nullptr);
  box.enqueue(frame_of(0x01, 4));
  box.clear();
  box.flush();
  EXPECT_TRUE(writes.empty());
  EXPECT_EQ(box.pending_frames(), 0u);
  EXPECT_EQ(box.pending_bytes(), 0u);
}

TEST(Outbox, TemplatePatchHappensAtFlushTime) {
  Counters counters;
  std::vector<Bytes> writes;
  WireTemplatePool pool;
  Outbox box({}, [&](const Bytes& b) { writes.push_back(b); }, &counters);
  auto tpl = make_template(pool, QoS::kAtLeastOnce, 1);
  box.enqueue(tpl, 5, false);
  // Another link's flush patches the shared template in between; the
  // queued entry must not be affected -- its patch happens at flush time.
  (void)tpl->patched(9, true);
  box.flush();
  ASSERT_EQ(writes.size(), 1u);
  auto decoded = decode(BytesView(writes[0]));
  ASSERT_TRUE(decoded.ok());
  const auto* p = std::get_if<Publish>(&decoded.value());
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->packet_id, 5u);
  EXPECT_FALSE(p->dup);
  EXPECT_EQ(counters.get("egress_template_bytes_shared"), tpl->size());
}

TEST(Outbox, MixedTemplatesAndOwnedFramesKeepQueueOrder) {
  std::vector<Bytes> writes;
  WireTemplatePool pool;
  Outbox box({}, [&](const Bytes& b) { writes.push_back(b); }, nullptr);
  auto tpl = make_template(pool, QoS::kAtLeastOnce, 1);
  box.enqueue(frame_of(0xAA, 3));
  box.enqueue(tpl, 42, false);
  box.enqueue(frame_of(0xBB, 2));
  box.flush();
  ASSERT_EQ(writes.size(), 1u);
  const Bytes expected =
      concat({frame_of(0xAA, 3), tpl->patched(42, false), frame_of(0xBB, 2)});
  EXPECT_EQ(writes[0], expected);
}

TEST(Outbox, ReentrantWriteCallbackDrainsWithoutLoss) {
  std::vector<Bytes> writes;
  Outbox* self = nullptr;
  bool reentered = false;
  Outbox box({},
             [&](const Bytes& b) {
               writes.push_back(b);
               if (!reentered) {
                 // A synchronous peer response queues one more frame while
                 // the first flush is still on the stack.
                 reentered = true;
                 self->enqueue(frame_of(0xEE, 5));
               }
             },
             nullptr);
  self = &box;
  box.enqueue(frame_of(0x01, 4));
  box.flush();
  ASSERT_EQ(writes.size(), 2u);
  EXPECT_EQ(writes[0], frame_of(0x01, 4));
  EXPECT_EQ(writes[1], frame_of(0xEE, 5));
  EXPECT_EQ(box.pending_frames(), 0u);
}

}  // namespace
}  // namespace ifot::mqtt
