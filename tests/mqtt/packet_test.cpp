#include "mqtt/packet.hpp"

#include <gtest/gtest.h>

namespace ifot::mqtt {
namespace {

/// Encodes then decodes a packet and requires equality.
template <typename T>
void expect_round_trip(const T& pkt) {
  const Bytes wire = encode(Packet{pkt});
  auto decoded = decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  const auto* out = std::get_if<T>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, pkt);
}

TEST(PacketCodec, ConnectMinimal) {
  Connect c;
  c.client_id = "node1";
  c.clean_session = true;
  c.keep_alive_s = 30;
  expect_round_trip(c);
}

TEST(PacketCodec, ConnectWithWillAndCredentials) {
  Connect c;
  c.client_id = "sensor-7";
  c.clean_session = false;
  c.keep_alive_s = 120;
  c.will = Will{"ifot/status/sensor-7", to_bytes("offline"),
                QoS::kAtLeastOnce, true};
  c.username = "user";
  c.password = "secret";
  expect_round_trip(c);
}

TEST(PacketCodec, ConnectEmptyClientId) {
  Connect c;
  c.client_id = "";
  expect_round_trip(c);
}

TEST(PacketCodec, Connack) {
  expect_round_trip(Connack{true, ConnectCode::kAccepted});
  expect_round_trip(Connack{false, ConnectCode::kIdentifierRejected});
}

TEST(PacketCodec, PublishQos0) {
  Publish p;
  p.topic = "ifot/app/sensor_a";
  p.payload = to_bytes("32-byte sample payload .......!");
  expect_round_trip(p);
}

TEST(PacketCodec, PublishQos1WithFlags) {
  Publish p;
  p.topic = "a/b";
  p.payload = to_bytes("x");
  p.qos = QoS::kAtLeastOnce;
  p.packet_id = 777;
  p.retain = true;
  p.dup = true;
  expect_round_trip(p);
}

TEST(PacketCodec, PublishQos2) {
  Publish p;
  p.topic = "a";
  p.qos = QoS::kExactlyOnce;
  p.packet_id = 1;
  expect_round_trip(p);
}

TEST(PacketCodec, PublishEmptyPayload) {
  Publish p;
  p.topic = "t";
  expect_round_trip(p);
}

TEST(PacketCodec, LargePayloadUsesMultiByteRemainingLength) {
  Publish p;
  p.topic = "big";
  p.payload.assign(100000, 0x5A);
  const Bytes wire = encode(Packet{p});
  EXPECT_GT(wire.size(), 100000u);
  auto decoded = decode(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<Publish>(decoded.value()).payload.size(), 100000u);
}

TEST(PacketCodec, AckPackets) {
  expect_round_trip(Puback{42});
  expect_round_trip(Pubrec{43});
  expect_round_trip(Pubrel{44});
  expect_round_trip(Pubcomp{45});
  expect_round_trip(Unsuback{46});
}

TEST(PacketCodec, Subscribe) {
  Subscribe s;
  s.packet_id = 9;
  s.topics = {{"ifot/+/train", QoS::kAtLeastOnce}, {"#", QoS::kAtMostOnce}};
  expect_round_trip(s);
}

TEST(PacketCodec, Suback) {
  Suback s;
  s.packet_id = 9;
  s.return_codes = {0, 1, 2, kSubackFailure};
  expect_round_trip(s);
}

TEST(PacketCodec, Unsubscribe) {
  Unsubscribe u;
  u.packet_id = 3;
  u.topics = {"a/b", "c/#"};
  expect_round_trip(u);
}

TEST(PacketCodec, EmptyBodyPackets) {
  expect_round_trip(Pingreq{});
  expect_round_trip(Pingresp{});
  expect_round_trip(Disconnect{});
}

TEST(PacketCodec, PacketTypeMapping) {
  EXPECT_EQ(packet_type(Packet{Connect{}}), PacketType::kConnect);
  EXPECT_EQ(packet_type(Packet{Publish{}}), PacketType::kPublish);
  EXPECT_EQ(packet_type(Packet{Disconnect{}}), PacketType::kDisconnect);
  EXPECT_STREQ(packet_type_name(PacketType::kPubrel), "PUBREL");
}

TEST(PacketCodec, RejectsTrailingGarbage) {
  Bytes wire = encode(Packet{Pingreq{}});
  wire.push_back(0x00);
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(PacketCodec, RejectsBadFixedHeaderFlags) {
  Bytes wire = encode(Packet{Pingreq{}});
  wire[0] |= 0x01;  // PINGREQ flags must be 0
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(PacketCodec, RejectsQos3Publish) {
  Publish p;
  p.topic = "t";
  p.qos = QoS::kAtLeastOnce;
  p.packet_id = 1;
  Bytes wire = encode(Packet{p});
  wire[0] |= 0x06;  // qos bits = 3
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(PacketCodec, RejectsZeroPacketIdOnQos1Publish) {
  Publish p;
  p.topic = "t";
  p.qos = QoS::kAtLeastOnce;
  p.packet_id = 0;
  const Bytes wire = encode(Packet{p});
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(PacketCodec, RejectsEmptySubscribe) {
  // Hand-build a SUBSCRIBE with a packet id but no topics.
  Bytes wire = {0x82, 0x02, 0x00, 0x01};
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(PacketCodec, RejectsUnknownProtocolName) {
  Connect c;
  c.client_id = "x";
  Bytes wire = encode(Packet{c});
  wire[4] = 'X';  // corrupt protocol name ("MQTT" -> "XQTT")
  EXPECT_FALSE(decode(BytesView(wire)).ok());
}

TEST(StreamDecoder, ReassemblesSplitPackets) {
  Publish p;
  p.topic = "topic/with/levels";
  p.payload = to_bytes("payload data here");
  const Bytes wire = encode(Packet{p});

  StreamDecoder dec;
  // Feed one byte at a time; the packet must appear exactly once.
  int seen = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    dec.feed(BytesView(&wire[i], 1));
    auto next = dec.next();
    ASSERT_TRUE(next.ok());
    if (next.value()) {
      ++seen;
      EXPECT_EQ(std::get<Publish>(*next.value()), p);
    }
  }
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(StreamDecoder, HandlesCoalescedPackets) {
  Bytes wire = encode(Packet{Pingreq{}});
  const Bytes second = encode(Packet{Puback{5}});
  wire.insert(wire.end(), second.begin(), second.end());

  StreamDecoder dec;
  dec.feed(BytesView(wire));
  auto first = dec.next();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first.value());
  EXPECT_TRUE(std::holds_alternative<Pingreq>(*first.value()));
  auto next = dec.next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value());
  EXPECT_EQ(std::get<Puback>(*next.value()).packet_id, 5);
  auto none = dec.next();
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value());
}

TEST(StreamDecoder, ReportsCorruptStream) {
  StreamDecoder dec;
  // 5-byte remaining length => protocol error.
  const Bytes bad = {0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  dec.feed(BytesView(bad));
  EXPECT_FALSE(dec.next().ok());
}

TEST(StreamDecoder, EmptyNeedsMoreBytes) {
  StreamDecoder dec;
  auto r = dec.next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
  dec.feed(BytesView(Bytes{0xC0}));  // half a PINGREQ header
  r = dec.next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value());
}

}  // namespace
}  // namespace ifot::mqtt
