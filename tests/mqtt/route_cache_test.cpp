// RouteCache unit tests plus the differential gate for the broker's
// cached ingress path: a scripted scenario is replayed against two
// brokers — route cache enabled and disabled — and every subscriber
// link's raw egress byte stream must be identical. The cache is an
// optimization; any observable divergence is a bug.
#include "mqtt/route_cache.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "sim/simulator.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

// ---- RouteCache unit tests ----------------------------------------------

RouteCache::Plan make_plan(std::initializer_list<const char*> qos0) {
  RouteCache::Plan plan;
  for (const char* id : qos0) plan.by_qos[0].emplace_back(id);
  return plan;
}

TEST(RouteCache, MissThenHit) {
  Counters counters;
  RouteCache cache(4, &counters);
  EXPECT_EQ(cache.lookup("t/a", 1), nullptr);
  EXPECT_EQ(counters.get("route_cache_misses"), 1u);

  const RouteCache::Plan* stored = cache.insert("t/a", 1, make_plan({"s1"}));
  ASSERT_NE(stored, nullptr);
  const RouteCache::Plan* hit = cache.lookup("t/a", 1);
  ASSERT_EQ(hit, stored);
  EXPECT_EQ(hit->subscriber_count(), 1u);
  EXPECT_EQ(counters.get("route_cache_hits"), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RouteCache, VersionMismatchInvalidates) {
  Counters counters;
  RouteCache cache(4, &counters);
  cache.insert("t/a", 1, make_plan({"s1"}));
  // Tree moved on: the stale plan must be dropped, counted, and missed.
  EXPECT_EQ(cache.lookup("t/a", 2), nullptr);
  EXPECT_EQ(counters.get("route_cache_invalidations"), 1u);
  EXPECT_EQ(counters.get("route_cache_misses"), 1u);
  EXPECT_EQ(cache.size(), 0u);
  // Re-resolved at the new version, it serves hits again.
  cache.insert("t/a", 2, make_plan({"s1", "s2"}));
  const RouteCache::Plan* hit = cache.lookup("t/a", 2);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->subscriber_count(), 2u);
}

TEST(RouteCache, LruEvictsColdestEntry) {
  Counters counters;
  RouteCache cache(2, &counters);
  cache.insert("a", 1, make_plan({"s"}));
  cache.insert("b", 1, make_plan({"s"}));
  ASSERT_NE(cache.lookup("a", 1), nullptr);  // refresh 'a'; 'b' is coldest
  cache.insert("c", 1, make_plan({"s"}));
  EXPECT_EQ(counters.get("route_cache_evictions"), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.lookup("a", 1), nullptr);
  EXPECT_NE(cache.lookup("c", 1), nullptr);
  EXPECT_EQ(cache.lookup("b", 1), nullptr);
}

TEST(RouteCache, ReinsertRefreshesInPlace) {
  Counters counters;
  RouteCache cache(2, &counters);
  cache.insert("a", 1, make_plan({"s1"}));
  const RouteCache::Plan* updated = cache.insert("a", 2, make_plan({"s2"}));
  ASSERT_NE(updated, nullptr);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup("a", 1), nullptr);  // old version gone
  cache.insert("a", 1, make_plan({"s1"}));   // re-resolve after miss
  const RouteCache::Plan* hit = cache.lookup("a", 1);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->by_qos[0].size(), 1u);
  EXPECT_EQ(hit->by_qos[0][0], "s1");
}

TEST(RouteCache, CapacityZeroDisablesWithoutCounting) {
  Counters counters;
  RouteCache cache(0, &counters);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.lookup("a", 1), nullptr);
  EXPECT_EQ(cache.insert("a", 1, make_plan({"s"})), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // A disabled cache is invisible: no hit/miss accounting.
  EXPECT_EQ(counters.get("route_cache_misses"), 0u);
  EXPECT_EQ(counters.get("route_cache_hits"), 0u);
}

TEST(RouteCache, ClearDropsEverything) {
  Counters counters;
  RouteCache cache(4, &counters);
  cache.insert("a", 1, make_plan({"s"}));
  cache.insert("b", 1, make_plan({"s"}));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup("a", 1), nullptr);
}

TEST(RouteCache, PlanEqualityIsPerQosGroup) {
  RouteCache::Plan a = make_plan({"s1"});
  RouteCache::Plan b = make_plan({"s1"});
  EXPECT_EQ(a, b);
  b.by_qos[1].emplace_back("s1");  // same id, different granted QoS
  EXPECT_NE(a, b);
}

TEST(RouteCache, PlanEqualityCoversTheFingerprint) {
  RouteCache::Plan a = make_plan({"s1"});
  RouteCache::Plan b = make_plan({"s1"});
  b.fingerprint = 0xdeadbeef;
  // The deep audit re-derives plans through derive_plan (fingerprint
  // included); a collision that revalidated a divergent plan must trip it.
  EXPECT_NE(a, b);
}

TEST(RouteCache, UnchangedFingerprintRevalidatesInPlace) {
  Counters counters;
  RouteCache cache(4, &counters);
  RouteCache::Plan plan = make_plan({"s1"});
  plan.fingerprint = 42;
  const RouteCache::Plan* stored = cache.insert("t/a", 1, plan);
  ASSERT_NE(stored, nullptr);

  // Tree moved on, but this topic's match set is unchanged: the entry is
  // restamped to the new version instead of being dropped.
  const RouteCache::Plan* hit =
      cache.lookup("t/a", 2, [](std::string_view) { return std::uint64_t{42}; });
  ASSERT_EQ(hit, stored);
  EXPECT_EQ(counters.get("route_cache_revalidations"), 1u);
  EXPECT_EQ(counters.get("route_cache_hits"), 1u);
  EXPECT_EQ(counters.get("route_cache_invalidations"), 0u);
  // Restamped: a same-version lookup is now a plain hit, no re-check.
  ASSERT_NE(cache.lookup("t/a", 2), nullptr);
  EXPECT_EQ(counters.get("route_cache_revalidations"), 1u);
  EXPECT_EQ(counters.get("route_cache_hits"), 2u);
}

TEST(RouteCache, ChangedFingerprintStillInvalidates) {
  Counters counters;
  RouteCache cache(4, &counters);
  RouteCache::Plan plan = make_plan({"s1"});
  plan.fingerprint = 42;
  cache.insert("t/a", 1, plan);

  EXPECT_EQ(cache.lookup("t/a", 2,
                         [](std::string_view) { return std::uint64_t{43}; }),
            nullptr);
  EXPECT_EQ(counters.get("route_cache_invalidations"), 1u);
  EXPECT_EQ(counters.get("route_cache_revalidations"), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(RouteCache, NoRefingerprintFnFallsBackToVersionInvalidation) {
  Counters counters;
  RouteCache cache(4, &counters);
  RouteCache::Plan plan = make_plan({"s1"});
  plan.fingerprint = 42;
  cache.insert("t/a", 1, plan);
  // Without a refingerprint callback any version bump invalidates, as
  // before the surgical-invalidation upgrade.
  EXPECT_EQ(cache.lookup("t/a", 2), nullptr);
  EXPECT_EQ(counters.get("route_cache_invalidations"), 1u);
}

// ---- differential gate: cached vs uncached broker -----------------------

/// A client whose broker->client byte stream is captured verbatim (in
/// addition to normal decoding), so two brokers can be compared at the
/// wire level.
class BytePeer {
 public:
  BytePeer(sim::Simulator& sim, Scheduler& sched, Broker& broker, LinkId link,
           ClientConfig cfg, SimDuration delay)
      : sim_(sim), broker_(broker), link_(link), delay_(delay) {
    client_ = std::make_unique<Client>(
        sched, std::move(cfg), [this](const Bytes& bytes) {
          if (!up_) return;
          sim_.schedule_after(delay_, [this, bytes] {
            broker_.on_link_data(link_, BytesView(bytes));
          });
        });
    client_->set_on_message(
        [this](const Publish& p) { messages_.push_back(p); });
  }

  void open() {
    up_ = true;
    broker_.on_link_open(
        link_,
        [this](const Bytes& bytes) {
          rx_bytes_.insert(rx_bytes_.end(), bytes.begin(), bytes.end());
          sim_.schedule_after(delay_, [this, bytes] {
            client_->on_data(BytesView(bytes));
          });
        },
        [this] {
          up_ = false;
          client_->on_transport_closed();
        });
    client_->on_transport_open();
  }

  /// Abrupt transport loss (no DISCONNECT).
  void kill_transport() {
    if (!up_) return;
    up_ = false;
    client_->on_transport_closed();
    broker_.on_link_closed(link_);
  }

  [[nodiscard]] Client& client() { return *client_; }
  [[nodiscard]] const Bytes& rx_bytes() const { return rx_bytes_; }
  [[nodiscard]] const std::vector<Publish>& messages() const {
    return messages_;
  }

 private:
  sim::Simulator& sim_;
  Broker& broker_;
  LinkId link_;
  SimDuration delay_;
  bool up_ = false;
  std::unique_ptr<Client> client_;
  std::vector<Publish> messages_;
  Bytes rx_bytes_;  // every byte the broker wrote to this link, in order
};

/// Simulator + broker + byte-capturing peers, mirroring testing::Harness.
class DiffHarness {
 public:
  explicit DiffHarness(BrokerConfig cfg)
      : sched_(sim_), broker_(sched_, cfg) {}

  BytePeer& add_client(const std::string& client_id, bool clean = true) {
    ClientConfig cc;
    cc.client_id = client_id;
    cc.clean_session = clean;
    cc.keep_alive_s = 60;
    peers_.push_back(std::make_unique<BytePeer>(
        sim_, sched_, broker_, next_link_++, std::move(cc), kMillisecond));
    return *peers_.back();
  }

  void connect(BytePeer& peer) {
    peer.open();
    settle();
  }

  void settle() { sim_.run_until(sim_.now() + 10 * kSecond); }

  [[nodiscard]] Broker& broker() { return broker_; }
  [[nodiscard]] std::size_t peer_count() const { return peers_.size(); }
  [[nodiscard]] const BytePeer& peer(std::size_t i) const {
    return *peers_[i];
  }

 private:
  sim::Simulator sim_;
  testing::SimSched sched_;
  Broker broker_;
  LinkId next_link_ = 1;
  std::vector<std::unique_ptr<BytePeer>> peers_;
};

using Script = std::function<void(DiffHarness&)>;

/// Runs `script` against a cache-enabled and a cache-disabled broker and
/// asserts every peer saw a byte-identical stream from both. Returns the
/// cached broker's counters for per-test cache-behaviour assertions.
Counters run_differential(const Script& script,
                          std::size_t cache_entries = 1024) {
  BrokerConfig with_cache;
  with_cache.route_cache_entries = cache_entries;
  BrokerConfig without_cache;
  without_cache.route_cache_entries = 0;

  DiffHarness cached(with_cache);
  DiffHarness uncached(without_cache);
  script(cached);
  script(uncached);

  EXPECT_EQ(cached.peer_count(), uncached.peer_count());
  for (std::size_t i = 0; i < cached.peer_count(); ++i) {
    EXPECT_EQ(cached.peer(i).rx_bytes(), uncached.peer(i).rx_bytes())
        << "egress byte stream diverged on peer " << i;
    EXPECT_EQ(cached.peer(i).messages().size(),
              uncached.peer(i).messages().size())
        << "delivery count diverged on peer " << i;
  }
  // The disabled cache must stay invisible.
  EXPECT_EQ(uncached.broker().counters().get("route_cache_hits"), 0u);
  EXPECT_EQ(uncached.broker().counters().get("route_cache_misses"), 0u);
  Counters out;
  for (const auto& [name, value] : cached.broker().counters().sorted()) {
    out.add(name, value);
  }
  return out;
}

TEST(RouteCacheDifferential, HotTopicWithOverlappingWildcards) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& s1 = h.add_client("s1");
    BytePeer& s2 = h.add_client("s2");
    for (BytePeer* p : {&pub, &s1, &s2}) h.connect(*p);
    // s1 overlaps itself ('#' and '+' filters both match the hot topic);
    // the plan must dedup it at the max granted QoS.
    ASSERT_TRUE(s1.client()
                    .subscribe({{"sport/#", QoS::kAtMostOnce},
                                {"sport/+/score", QoS::kAtLeastOnce}})
                    .ok());
    ASSERT_TRUE(
        s2.client().subscribe({{"sport/tennis/score", QoS::kExactlyOnce}}).ok());
    h.settle();
    for (int i = 0; i < 8; ++i) {
      const QoS qos = static_cast<QoS>(i % 3);
      ASSERT_TRUE(pub.client()
                      .publish("sport/tennis/score",
                               to_bytes("v" + std::to_string(i)), qos)
                      .ok());
      h.settle();
    }
  });
  // The hot topic resolves once and then hits for the remaining publishes.
  EXPECT_EQ(c.get("route_cache_misses"), 1u);
  EXPECT_EQ(c.get("route_cache_hits"), 7u);
}

TEST(RouteCacheDifferential, SubscribeChurnInvalidatesPrecisely) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& s1 = h.add_client("s1");
    BytePeer& s2 = h.add_client("s2");
    for (BytePeer* p : {&pub, &s1, &s2}) h.connect(*p);
    ASSERT_TRUE(s1.client().subscribe({{"f/+", QoS::kAtLeastOnce}}).ok());
    h.settle();
    auto publish = [&](const char* payload) {
      ASSERT_TRUE(
          pub.client().publish("f/x", to_bytes(payload), QoS::kAtLeastOnce).ok());
      h.settle();
    };
    publish("a");  // miss: first sight
    publish("b");  // hit
    ASSERT_TRUE(s2.client().subscribe({{"f/#", QoS::kAtMostOnce}}).ok());
    h.settle();
    publish("c");  // invalidated by s2's subscribe -> re-resolve
    publish("d");  // hit with both subscribers
    ASSERT_TRUE(s2.client().unsubscribe({"f/#"}).ok());
    h.settle();
    publish("e");  // invalidated by the unsubscribe
    publish("f");  // hit, back to s1 only
  });
  EXPECT_EQ(c.get("route_cache_invalidations"), 2u);
  EXPECT_EQ(c.get("route_cache_hits"), 3u);
}

TEST(RouteCacheDifferential, UnrelatedChurnRevalidatesHotTopicInPlace) {
  // The bug this upgrade closes: subscription churn on an unrelated
  // subtree used to cold-start every cached topic (whole-cache version
  // invalidation). With per-entry fingerprints the hot topic's plan is
  // revalidated in place — zero invalidations, zero extra misses.
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& sub = h.add_client("sub");
    BytePeer& churner = h.add_client("churner");
    for (BytePeer* p : {&pub, &sub, &churner}) h.connect(*p);
    ASSERT_TRUE(sub.client().subscribe({{"hot/+", QoS::kAtLeastOnce}}).ok());
    h.settle();
    auto publish = [&](const char* payload) {
      ASSERT_TRUE(pub.client()
                      .publish("hot/topic", to_bytes(payload),
                               QoS::kAtLeastOnce)
                      .ok());
      h.settle();
    };
    publish("a");  // miss: first sight
    for (int i = 0; i < 4; ++i) {
      // Churn a disjoint subtree: the hot topic's match set is untouched.
      ASSERT_TRUE(
          churner.client().subscribe({{"cold/stuff", QoS::kAtMostOnce}}).ok());
      h.settle();
      publish("x");  // tree version moved -> revalidate, not invalidate
      ASSERT_TRUE(churner.client().unsubscribe({"cold/stuff"}).ok());
      h.settle();
      publish("y");
    }
  });
  EXPECT_EQ(c.get("route_cache_misses"), 1u);
  EXPECT_EQ(c.get("route_cache_invalidations"), 0u);
  EXPECT_EQ(c.get("route_cache_revalidations"), 8u);
  EXPECT_EQ(c.get("route_cache_hits"), 8u);
}

TEST(RouteCacheDifferential, SessionTeardownInvalidates) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& gone = h.add_client("gone", /*clean=*/true);
    BytePeer& stays = h.add_client("stays");
    for (BytePeer* p : {&pub, &gone, &stays}) h.connect(*p);
    ASSERT_TRUE(gone.client().subscribe({{"t/#", QoS::kAtMostOnce}}).ok());
    ASSERT_TRUE(stays.client().subscribe({{"t/a", QoS::kAtMostOnce}}).ok());
    h.settle();
    auto publish = [&](const char* payload) {
      ASSERT_TRUE(
          pub.client().publish("t/a", to_bytes(payload), QoS::kAtMostOnce).ok());
      h.settle();
    };
    publish("a");
    publish("b");
    // Clean-session transport loss tears the session down, erasing its
    // tree entries: the cached plan must stop naming it immediately.
    gone.kill_transport();
    h.settle();
    publish("c");
    publish("d");
  });
  EXPECT_EQ(c.get("route_cache_invalidations"), 1u);
  EXPECT_GE(c.get("route_cache_hits"), 2u);
}

TEST(RouteCacheDifferential, NonSubscriberTeardownDoesNotInvalidate) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& sub = h.add_client("sub");
    BytePeer& bystander = h.add_client("bystander", /*clean=*/true);
    for (BytePeer* p : {&pub, &sub, &bystander}) h.connect(*p);
    ASSERT_TRUE(sub.client().subscribe({{"t/a", QoS::kAtMostOnce}}).ok());
    h.settle();
    auto publish = [&](const char* payload) {
      ASSERT_TRUE(
          pub.client().publish("t/a", to_bytes(payload), QoS::kAtMostOnce).ok());
      h.settle();
    };
    publish("a");
    // Tearing down a session with no subscriptions must not bump the
    // tree version, so the cached plan keeps serving hits.
    bystander.kill_transport();
    h.settle();
    publish("b");
    publish("c");
  });
  EXPECT_EQ(c.get("route_cache_invalidations"), 0u);
  EXPECT_EQ(c.get("route_cache_hits"), 2u);
}

TEST(RouteCacheDifferential, DollarTopicsBypassTheCache) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& watcher = h.add_client("watcher");
    BytePeer& snoop = h.add_client("snoop");
    h.connect(watcher);
    h.connect(snoop);
    ASSERT_TRUE(watcher.client().subscribe({{"$SYS/#", QoS::kAtMostOnce}}).ok());
    ASSERT_TRUE(snoop.client().subscribe({{"#", QoS::kAtMostOnce}}).ok());
    h.settle();
    for (int i = 0; i < 4; ++i) {
      h.broker().publish_local("$SYS/broker/test/" + std::to_string(i),
                               SharedPayload(to_bytes("v")),
                               QoS::kAtMostOnce);
      h.settle();
    }
    // $-topics reach the $SYS watcher, never the root wildcard, and
    // never touch the cache.
    EXPECT_EQ(watcher.messages().size(), 4u);
    EXPECT_TRUE(snoop.messages().empty());
  });
  EXPECT_EQ(c.get("route_cache_hits"), 0u);
  EXPECT_EQ(c.get("route_cache_misses"), 0u);
}

TEST(RouteCacheDifferential, LruEvictionUnderTopicChurn) {
  // Capacity 2 with a 4-topic round-robin: constant evictions, yet the
  // byte streams must stay identical to the uncached broker.
  const Counters c = run_differential(
      [](DiffHarness& h) {
        BytePeer& pub = h.add_client("pub");
        BytePeer& sub = h.add_client("sub");
        h.connect(pub);
        h.connect(sub);
        ASSERT_TRUE(sub.client().subscribe({{"t/+", QoS::kAtLeastOnce}}).ok());
        h.settle();
        for (int round = 0; round < 3; ++round) {
          for (int t = 0; t < 4; ++t) {
            ASSERT_TRUE(pub.client()
                            .publish("t/" + std::to_string(t),
                                     to_bytes("p"), QoS::kAtLeastOnce)
                            .ok());
            h.settle();
          }
        }
      },
      /*cache_entries=*/2);
  EXPECT_GT(c.get("route_cache_evictions"), 0u);
  EXPECT_EQ(c.get("route_cache_hits") + c.get("route_cache_misses"), 12u);
}

TEST(RouteCacheDifferential, RetainedDeliveryAndQos2EndToEnd) {
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& early = h.add_client("early");
    BytePeer& late = h.add_client("late");
    for (BytePeer* p : {&pub, &early, &late}) h.connect(*p);
    ASSERT_TRUE(early.client().subscribe({{"r/#", QoS::kExactlyOnce}}).ok());
    h.settle();
    ASSERT_TRUE(pub.client()
                    .publish("r/state", to_bytes("retained"),
                             QoS::kExactlyOnce, /*retain=*/true)
                    .ok());
    h.settle();
    // Retained replay on a fresh subscribe goes through deliver(), not
    // route(): the cache must not be consulted or polluted by it.
    ASSERT_TRUE(late.client().subscribe({{"r/state", QoS::kAtLeastOnce}}).ok());
    h.settle();
    ASSERT_TRUE(pub.client()
                    .publish("r/state", to_bytes("live"), QoS::kExactlyOnce)
                    .ok());
    h.settle();
    EXPECT_EQ(early.messages().size(), 2u);
    EXPECT_EQ(late.messages().size(), 2u);
  });
  // Exactly the two live publishes consult the cache; the retained
  // replay to 'late' must not (it bypasses route()).
  EXPECT_EQ(c.get("route_cache_hits") + c.get("route_cache_misses"), 2u);
}

TEST(RouteCacheDifferential, BridgeAndShareChurnStayByteIdentical) {
  // Federation extends route() past the subscription tree: bridge links
  // (out-of-tree filter lists) and share groups (one member per message)
  // both feed the egress plan. Cached and uncached brokers must stay
  // byte-identical while both populations churn mid-stream.
  const Counters c = run_differential([](DiffHarness& h) {
    BytePeer& pub = h.add_client("pub");
    BytePeer& plain = h.add_client("plain");
    BytePeer& w0 = h.add_client("w0");
    BytePeer& w1 = h.add_client("w1");
    BytePeer& bridge = h.add_client("$bridge/diff");
    for (BytePeer* p : {&pub, &plain, &w0, &w1, &bridge}) h.connect(*p);
    ASSERT_TRUE(plain.client().subscribe({{"flow/t", QoS::kAtLeastOnce}}).ok());
    ASSERT_TRUE(
        bridge.client().subscribe({{"flow/#", QoS::kExactlyOnce}}).ok());
    for (BytePeer* w : {&w0, &w1}) {
      ASSERT_TRUE(
          w->client().subscribe({{"$share/g/flow/t", QoS::kAtLeastOnce}}).ok());
    }
    h.settle();
    auto publish = [&](const char* payload) {
      ASSERT_TRUE(pub.client()
                      .publish("flow/t", to_bytes(payload), QoS::kAtLeastOnce)
                      .ok());
      h.settle();
    };
    publish("a");  // tree + bridge + one share member
    publish("b");  // the share deals a *different* member: same plan, both
    publish("c");  // brokers must rotate identically
    // Wrapped ingress from the bridge session: unwrap, route locally,
    // and never echo back over the ingress bridge.
    ASSERT_TRUE(bridge.client()
                    .publish("$fed/1/flow/t", to_bytes("x"), QoS::kAtLeastOnce)
                    .ok());
    h.settle();
    // Bridge filter churn mid-stream.
    ASSERT_TRUE(bridge.client().unsubscribe({"flow/#"}).ok());
    h.settle();
    publish("d");
    // Share membership churn mid-stream.
    ASSERT_TRUE(w1.client().unsubscribe({"$share/g/flow/t"}).ok());
    h.settle();
    publish("e");
    publish("f");
    // 6 client publishes + the unwrapped bridge ingress = 7 each.
    EXPECT_EQ(plain.messages().size(), 7u);
    EXPECT_EQ(w0.messages().size() + w1.messages().size(), 7u);
  });
  // Every live publish resolved a plan (hit or miss) on the cached side.
  EXPECT_GE(c.get("route_cache_hits"), 1u);
  EXPECT_GE(c.get("bridge_out"), 3u);
  EXPECT_GE(c.get("bridge_in"), 1u);
}

}  // namespace
}  // namespace ifot::mqtt
