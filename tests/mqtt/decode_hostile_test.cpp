// Hostile-input tests for the MQTT wire decoder.
//
// Replays the malformed-packet classes the fuzz harness
// (fuzz/fuzz_packet_decode.cpp) explores, as deterministic fixtures, so
// tier-1 ctest covers the same surface without a fuzzing toolchain.
// Every class must be rejected with a *typed* error (never silently
// truncated, zero-filled, or partially decoded):
//   kParse     - the buffer ends before the declared packet does;
//   kProtocol  - complete bytes that violate MQTT 3.1.1;
//   kCapacity  - declared size exceeds the stream decoder's cap.
#include "mqtt/packet.hpp"

#include <gtest/gtest.h>

#include <string>

#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {

Bytes bytes(std::initializer_list<int> raw) {
  Bytes out;
  for (int b : raw) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

Error decode_error(const Bytes& wire) {
  auto r = decode(BytesView(wire));
  EXPECT_FALSE(r.ok()) << "hostile input decoded successfully";
  return r.ok() ? Error{} : r.error();
}

// ---- class 1: truncated fixed header / remaining length -----------------

TEST(DecodeHostile, EmptyAndOneByteBuffersAreIncomplete) {
  EXPECT_EQ(decode_error(Bytes{}).code, Errc::kParse);
  EXPECT_EQ(decode_error(bytes({0xC0})).code, Errc::kParse);  // bare PINGREQ byte
}

TEST(DecodeHostile, RemainingLengthContinuationPastEndOfBuffer) {
  // Every length byte has the continuation bit set, and the buffer ends
  // mid-field: incomplete, not decodable.
  EXPECT_EQ(decode_error(bytes({0x30, 0x80})).code, Errc::kParse);
  EXPECT_EQ(decode_error(bytes({0x30, 0xFF, 0xFF})).code, Errc::kParse);
}

// ---- class 2: remaining-length field overflow ---------------------------

TEST(DecodeHostile, RemainingLengthLongerThanFourBytesIsRejected) {
  // Five continuation bytes exceed the §2.2.3 limit regardless of what
  // would follow.
  const Error e =
      decode_error(bytes({0x30, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F, 0x00}));
  EXPECT_EQ(e.code, Errc::kProtocol);
}

// ---- class 3: declared length exceeds the supplied buffer ---------------

TEST(DecodeHostile, OversizedDeclaredLengthIsTypedParseError) {
  // PUBLISH declaring a 100-byte body with 4 bytes supplied. A lenient
  // decoder would truncate; ours must name the shortfall.
  Bytes wire = bytes({0x30, 100, 0x00, 0x02, 't', 't'});
  const Error e = decode_error(wire);
  EXPECT_EQ(e.code, Errc::kParse);
  EXPECT_NE(e.message.find("truncated"), std::string::npos) << e.message;
}

TEST(DecodeHostile, StringLengthPrefixBeyondBodyIsRejected) {
  // PUBLISH whose topic length prefix (0x7FFF) runs past the body.
  Bytes wire = bytes({0x30, 4, 0x7F, 0xFF, 't', 't'});
  EXPECT_EQ(decode_error(wire).code, Errc::kParse);
}

// ---- class 4: trailing bytes --------------------------------------------

TEST(DecodeHostile, TrailingBytesAfterCompletePacketAreRejected) {
  Bytes wire = encode(Packet{Pingreq{}});
  wire.push_back(0x00);
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

TEST(DecodeHostile, TrailingBytesInsideDeclaredBodyAreRejected) {
  // PUBACK with a correctly-declared 3-byte body: 2 packet-id bytes plus
  // one byte the grammar has no use for.
  Bytes wire = bytes({0x40, 3, 0x00, 0x01, 0xAA});
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

// ---- class 5: reserved packet types -------------------------------------

TEST(DecodeHostile, ReservedPacketTypesAreRejected) {
  EXPECT_EQ(decode_error(bytes({0x00, 0x00})).code, Errc::kProtocol);  // type 0
  EXPECT_EQ(decode_error(bytes({0xF0, 0x00})).code, Errc::kProtocol);  // type 15
}

// ---- class 6: nonzero reserved fixed-header flags -----------------------

TEST(DecodeHostile, ReservedHeaderFlagsMustBeZero) {
  // PINGREQ, CONNECT and PUBACK carry no flags (§2.2.2).
  EXPECT_EQ(decode_error(bytes({0xC1, 0x00})).code, Errc::kProtocol);
  EXPECT_EQ(decode_error(bytes({0x41, 2, 0x00, 0x01})).code, Errc::kProtocol);
  // PUBREL/SUBSCRIBE/UNSUBSCRIBE require exactly 0b0010.
  EXPECT_EQ(decode_error(bytes({0x60, 2, 0x00, 0x01})).code, Errc::kProtocol);
  EXPECT_EQ(decode_error(bytes({0x6F, 2, 0x00, 0x01})).code, Errc::kProtocol);
}

// ---- class 7: invalid PUBLISH flag combinations -------------------------

TEST(DecodeHostile, PublishQos3IsRejected) {
  // Flags 0b0110: both QoS bits set.
  Bytes wire = bytes({0x36, 4, 0x00, 0x02, 't', 't'});
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

TEST(DecodeHostile, PublishDupOnQos0IsRejected) {
  // Flags 0b1000: DUP without QoS ([MQTT-3.3.1-2]).
  Bytes wire = bytes({0x38, 4, 0x00, 0x02, 't', 't'});
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

// ---- class 8: packet id 0 -----------------------------------------------

TEST(DecodeHostile, PacketIdZeroIsRejectedEverywhere) {
  // QoS 1 PUBLISH, PUBACK, SUBSCRIBE, UNSUBSCRIBE.
  EXPECT_EQ(decode_error(bytes({0x32, 6, 0x00, 0x02, 't', 't', 0x00, 0x00}))
                .code,
            Errc::kProtocol);
  EXPECT_EQ(decode_error(bytes({0x40, 2, 0x00, 0x00})).code, Errc::kProtocol);
  EXPECT_EQ(
      decode_error(bytes({0x82, 6, 0x00, 0x00, 0x00, 0x01, 't', 0x00})).code,
      Errc::kProtocol);
  EXPECT_EQ(decode_error(bytes({0xA2, 5, 0x00, 0x00, 0x00, 0x01, 't'})).code,
            Errc::kProtocol);
}

// ---- class 9: malformed CONNECT -----------------------------------------

TEST(DecodeHostile, ConnectReservedFlagIsRejected) {
  Bytes body;
  BinaryWriter w(body);
  w.str16("MQTT");
  w.u8(4);
  w.u8(0x03);  // clean session + reserved bit 0
  w.u16(60);
  w.str16("c");
  Bytes wire = bytes({0x10, static_cast<int>(body.size())});
  wire.insert(wire.end(), body.begin(), body.end());
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

TEST(DecodeHostile, ConnectUnsupportedProtocolLevelIsRejected) {
  Bytes body;
  BinaryWriter w(body);
  w.str16("MQTT");
  w.u8(5);  // MQTT 5.0 is not spoken here
  w.u8(0x02);
  w.u16(60);
  w.str16("c");
  Bytes wire = bytes({0x10, static_cast<int>(body.size())});
  wire.insert(wire.end(), body.begin(), body.end());
  const Error e = decode_error(wire);
  EXPECT_EQ(e.code, Errc::kProtocol);
  EXPECT_NE(e.message.find("protocol level"), std::string::npos) << e.message;
}

TEST(DecodeHostile, ConnectWillQosWithoutWillFlagIsRejected) {
  Bytes body;
  BinaryWriter w(body);
  w.str16("MQTT");
  w.u8(4);
  w.u8(0x0A);  // will QoS 1 set, will flag clear
  w.u16(60);
  w.str16("c");
  Bytes wire = bytes({0x10, static_cast<int>(body.size())});
  wire.insert(wire.end(), body.begin(), body.end());
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

TEST(DecodeHostile, ConnectPasswordWithoutUsernameIsRejected) {
  Bytes body;
  BinaryWriter w(body);
  w.str16("MQTT");
  w.u8(4);
  w.u8(0x42);  // password flag without username flag
  w.u16(60);
  w.str16("c");
  w.str16("secret");
  Bytes wire = bytes({0x10, static_cast<int>(body.size())});
  wire.insert(wire.end(), body.begin(), body.end());
  EXPECT_EQ(decode_error(wire).code, Errc::kProtocol);
}

// ---- class 10: empty SUBSCRIBE / UNSUBSCRIBE ----------------------------

TEST(DecodeHostile, SubscribeWithNoTopicsIsRejected) {
  EXPECT_EQ(decode_error(bytes({0x82, 2, 0x00, 0x01})).code, Errc::kProtocol);
  EXPECT_EQ(decode_error(bytes({0xA2, 2, 0x00, 0x01})).code, Errc::kProtocol);
}

// ---- class 11: bad CONNACK code -----------------------------------------

TEST(DecodeHostile, ConnackCodeAboveFiveIsRejected) {
  EXPECT_EQ(decode_error(bytes({0x20, 2, 0x00, 0x06})).code, Errc::kProtocol);
}

// ---- stream decoder: split-across-chunks headers ------------------------

TEST(DecodeHostile, StreamDecoderSurvivesByteAtATimeHostileInput) {
  // A hostile packet split one byte per feed() must produce the same
  // typed error as the whole buffer at once - never a packet, never a
  // hang once the bytes are all in.
  const Bytes wire = bytes({0x36, 4, 0x00, 0x02, 't', 't'});  // QoS 3
  StreamDecoder dec;
  bool errored = false;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    dec.feed(BytesView(wire).subspan(i, 1));
    auto next = dec.next();
    if (!next) {
      EXPECT_EQ(next.error().code, Errc::kProtocol);
      errored = true;
      break;
    }
    EXPECT_FALSE(next.value().has_value());
  }
  EXPECT_TRUE(errored);
}

TEST(DecodeHostile, StreamDecoderSplitHeaderThenValidPacketDecodes) {
  // Control: a valid packet split mid-remaining-length still decodes,
  // so the hostile rejections above are not over-eager.
  Publish p;
  p.topic = "a/b";
  p.payload = Bytes(200, 0x42);  // needs a 2-byte remaining length
  const Bytes wire = encode(Packet{p});
  ASSERT_GT(wire.size(), 3u);
  StreamDecoder dec;
  dec.feed(BytesView(wire).subspan(0, 2));  // type byte + half the length
  auto first = dec.next();
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().has_value());
  dec.feed(BytesView(wire).subspan(2));
  auto second = dec.next();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second.value().has_value());
  EXPECT_TRUE(*second.value() == Packet{p});
}

TEST(DecodeHostile, StreamDecoderCapsDeclaredPacketSize) {
  StreamDecoder dec;
  dec.set_max_packet_size(1024);
  // PUBLISH declaring a 1 MiB body: rejected from the header alone,
  // before any body byte arrives.
  dec.feed(bytes({0x30, 0x80, 0x80, 0x40}));
  auto next = dec.next();
  ASSERT_FALSE(next.ok());
  EXPECT_EQ(next.error().code, Errc::kCapacity);
}

TEST(DecodeHostile, StreamDecoderAcceptsPacketsUnderTheCap) {
  StreamDecoder dec;
  dec.set_max_packet_size(1024);
  const Bytes wire = encode(Packet{Pingreq{}});
  dec.feed(BytesView(wire));
  auto next = dec.next();
  ASSERT_TRUE(next.ok());
  ASSERT_TRUE(next.value().has_value());
  EXPECT_TRUE(*next.value() == Packet{Pingreq{}});
}

// ---- class 12: hostile "$share/<group>/<filter>" grammar ----------------
// A malformed share must parse to a typed error, never fall through to a
// plain (silently never-matching) subscription.

TEST(DecodeHostile, ShareFilterMissingGroupIsRejected) {
  for (const char* bad : {"$share", "$share/"}) {
    EXPECT_TRUE(is_share_filter(bad)) << bad;
    auto r = parse_share_filter(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error().code, Errc::kProtocol) << bad;
  }
}

TEST(DecodeHostile, ShareFilterEmptyGroupIsRejected) {
  auto r = parse_share_filter("$share//flow/t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kProtocol);
}

TEST(DecodeHostile, ShareFilterWildcardOrNulInGroupIsRejected) {
  for (const char* bad :
       {"$share/+/f", "$share/#/f", "$share/g+/f", "$share/g#x/f"}) {
    auto r = parse_share_filter(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error().code, Errc::kProtocol) << bad;
  }
  const std::string nul_group =
      std::string("$share/g") + '\0' + "roup/f";
  auto r = parse_share_filter(nul_group);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kProtocol);
}

TEST(DecodeHostile, ShareFilterMissingOrInvalidInnerIsRejected) {
  // No inner filter at all, and inners that break the §4.7 rules ('#'
  // not last, '+' sharing a level).
  for (const char* bad :
       {"$share/g", "$share/g/", "$share/g/a/#/b", "$share/g/a+b"}) {
    auto r = parse_share_filter(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error().code, Errc::kProtocol) << bad;
  }
}

TEST(DecodeHostile, ShareFilterValidFormsParse) {
  auto r = parse_share_filter("$share/analytics/city/north/#");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().group, "analytics");
  EXPECT_EQ(r.value().filter, "city/north/#");
  // The inner filter may itself be a $-topic filter (bridge health
  // watchers) and may use wildcards freely.
  EXPECT_TRUE(parse_share_filter("$share/g/$SYS/#").ok());
  EXPECT_TRUE(parse_share_filter("$share/g/+/t").ok());
  // Share of a share is just an inner filter starting with "$share":
  // level-matching keeps it inert, but the grammar does not recurse.
  EXPECT_TRUE(parse_share_filter("$share/g/$share/h/f").ok());
}

// ---- class 13: hostile "$fed/<hops>/<topic>" wraps ----------------------
// The hop level is the loop-prevention state; a wrap that cannot state
// its hop count honestly must die at the parser.

TEST(DecodeHostile, FedTopicBadHopLevelIsRejected) {
  for (const char* bad :
       {"$fed", "$fed/", "$fed//x", "$fed/0/x", "$fed/abc/x", "$fed/1a/x",
        "$fed/-1/x", "$fed/1000/x", "$fed/0001/x", "$fed/99999999999/x"}) {
    EXPECT_TRUE(is_fed_topic(bad) || std::string_view(bad) == "$fed")
        << bad;
    auto r = parse_fed_topic(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error().code, Errc::kProtocol) << bad;
  }
}

TEST(DecodeHostile, FedTopicMissingOrInvalidInnerIsRejected) {
  // Absent inner, and inners illegal as topic *names* (wildcards are
  // filter syntax; a wrapped publish carries a concrete name).
  for (const char* bad : {"$fed/1", "$fed/1/", "$fed/1/a/+/b", "$fed/2/#"}) {
    auto r = parse_fed_topic(bad);
    ASSERT_FALSE(r.ok()) << bad;
    EXPECT_EQ(r.error().code, Errc::kProtocol) << bad;
  }
}

TEST(DecodeHostile, FedTopicRoundTripsThroughItsWriter) {
  std::string out;
  write_fed_topic(out, 42, "city/north/cam");
  EXPECT_EQ(out, "$fed/42/city/north/cam");
  auto r = parse_fed_topic(out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().hops, 42u);
  EXPECT_EQ(r.value().inner, "city/north/cam");
  // Max in-grammar hop count (3 digits) parses; the broker's budget
  // check, not the parser, is what rejects it.
  write_fed_topic(out, 999, "t");
  r = parse_fed_topic(out);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().hops, 999u);
}

}  // namespace
}  // namespace ifot::mqtt
