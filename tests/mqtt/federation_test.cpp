// Federation: bridge forwarding between two brokers ("$fed/<hops>/..."
// wraps, loop prevention, retained/QoS semantics across hops), the
// FederationMap shard function, and "$share/<group>/<filter>"
// shared-subscription load groups.
#include <gtest/gtest.h>

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "mqtt/bridge.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/federation_map.hpp"
#include "mqtt/packet.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using ifot::mqtt::testing::Peer;
using ifot::mqtt::testing::SimSched;

constexpr LinkId kBridgeLinkA = 900;
constexpr LinkId kBridgeLinkB = 901;

/// Two brokers joined by one Bridge over delayed pipes, sharing a
/// simulator; peers attach to either side.
class FedHarness {
 public:
  explicit FedHarness(BrokerConfig cfg = {})
      : sched_(sim_), a_(sched_, cfg), b_(sched_, cfg) {}

  /// Wires the bridge and settles its CONNECT/SUBSCRIBE handshakes.
  void mesh(BridgeConfig bc) {
    bridge_ = std::make_unique<Bridge>(
        sched_, std::move(bc),
        [this](const Bytes& bytes) {
          sim_.schedule_after(delay_, [this, bytes] {
            a_.on_link_data(kBridgeLinkA, BytesView(bytes));
          });
        },
        [this](const Bytes& bytes) {
          sim_.schedule_after(delay_, [this, bytes] {
            b_.on_link_data(kBridgeLinkB, BytesView(bytes));
          });
        });
    a_.on_link_open(
        kBridgeLinkA,
        [this](const Bytes& bytes) {
          sim_.schedule_after(delay_, [this, bytes] {
            bridge_->local_data(BytesView(bytes));
          });
        },
        [] {});
    b_.on_link_open(
        kBridgeLinkB,
        [this](const Bytes& bytes) {
          sim_.schedule_after(delay_, [this, bytes] {
            bridge_->remote_data(BytesView(bytes));
          });
        },
        [] {});
    bridge_->local_transport_open();
    bridge_->remote_transport_open();
    settle();
  }

  Peer& on_a(const std::string& id) { return add(a_, id); }
  Peer& on_b(const std::string& id) { return add(b_, id); }
  Peer& on_a(ClientConfig cc) { return add(a_, std::move(cc)); }

  void settle(SimDuration window = 10 * kSecond) {
    sim_.run_until(sim_.now() + window);
  }

  [[nodiscard]] Broker& a() { return a_; }
  [[nodiscard]] Broker& b() { return b_; }
  [[nodiscard]] Bridge& bridge() { return *bridge_; }

 private:
  Peer& add(Broker& broker, const std::string& id) {
    ClientConfig cc;
    cc.client_id = id;
    cc.clean_session = true;
    return add(broker, std::move(cc));
  }

  Peer& add(Broker& broker, ClientConfig cc) {
    peers_.push_back(std::make_unique<Peer>(sim_, sched_, broker,
                                            next_link_++, std::move(cc),
                                            delay_));
    Peer& p = *peers_.back();
    p.open();
    settle();
    return p;
  }

  sim::Simulator sim_;
  SimSched sched_;
  Broker a_;
  Broker b_;
  std::unique_ptr<Bridge> bridge_;
  SimDuration delay_ = kMillisecond;
  LinkId next_link_ = 1;
  std::vector<std::unique_ptr<Peer>> peers_;
};

BridgeConfig east_west_bridge() {
  BridgeConfig bc;
  bc.name = "t";
  bc.local_label = "a";
  bc.remote_label = "b";
  // b owns city/east, a owns city/west; both sides forwarded.
  bc.out_filters = {{"city/east/#", QoS::kExactlyOnce}};
  bc.in_filters = {{"city/west/#", QoS::kExactlyOnce}};
  return bc;
}

// ---- bridge forwarding -----------------------------------------------------

TEST(Federation, BridgeForwardsMatchedPublishesBothWays) {
  FedHarness h;
  Peer& sub_b = h.on_b("sub_b");
  Peer& sub_a = h.on_a("sub_a");
  ASSERT_TRUE(
      sub_b.client().subscribe({{"city/east/#", QoS::kAtMostOnce}}).ok());
  ASSERT_TRUE(
      sub_a.client().subscribe({{"city/west/#", QoS::kAtMostOnce}}).ok());
  h.mesh(east_west_bridge());

  Peer& pub_a = h.on_a("pub_a");
  Peer& pub_b = h.on_b("pub_b");
  ASSERT_TRUE(pub_a.client()
                  .publish("city/east/cam", to_bytes("hi"), QoS::kAtMostOnce)
                  .ok());
  ASSERT_TRUE(pub_b.client()
                  .publish("city/west/cam", to_bytes("yo"), QoS::kAtMostOnce)
                  .ok());
  h.settle();

  // The subscriber at the owner broker sees the *inner* topic, payload
  // intact, exactly once.
  ASSERT_EQ(sub_b.messages().size(), 1u);
  EXPECT_EQ(sub_b.messages()[0].topic.view(), "city/east/cam");
  EXPECT_EQ(to_string(BytesView(sub_b.messages()[0].payload)), "hi");
  ASSERT_EQ(sub_a.messages().size(), 1u);
  EXPECT_EQ(sub_a.messages()[0].topic.view(), "city/west/cam");
  EXPECT_GE(h.a().counters().get("bridge_out"), 1u);
  EXPECT_GE(h.b().counters().get("bridge_in"), 1u);
}

TEST(Federation, UnmatchedTopicsStayLocal) {
  FedHarness h;
  Peer& sub_b = h.on_b("sub_b");
  ASSERT_TRUE(sub_b.client().subscribe({{"#", QoS::kAtMostOnce}}).ok());
  h.mesh(east_west_bridge());
  Peer& pub_a = h.on_a("pub_a");
  ASSERT_TRUE(pub_a.client()
                  .publish("city/north/cam", to_bytes("x"), QoS::kAtMostOnce)
                  .ok());
  h.settle();
  EXPECT_TRUE(sub_b.messages().empty());
  EXPECT_EQ(h.b().counters().get("bridge_in"), 0u);
}

TEST(Federation, NoEchoOverTheIngressBridge) {
  // Both directions carry the same prefix: without the no-echo rule a
  // forwarded publish would ping-pong between the brokers forever.
  FedHarness h;
  BridgeConfig bc;
  bc.name = "echo";
  bc.local_label = "a";
  bc.remote_label = "b";
  bc.out_filters = {{"x/#", QoS::kExactlyOnce}};
  bc.in_filters = {{"x/#", QoS::kExactlyOnce}};
  Peer& sub_a = h.on_a("sub_a");
  Peer& sub_b = h.on_b("sub_b");
  ASSERT_TRUE(sub_a.client().subscribe({{"x/#", QoS::kAtMostOnce}}).ok());
  ASSERT_TRUE(sub_b.client().subscribe({{"x/#", QoS::kAtMostOnce}}).ok());
  h.mesh(std::move(bc));

  Peer& pub_a = h.on_a("pub_a");
  ASSERT_TRUE(
      pub_a.client().publish("x/t", to_bytes("once"), QoS::kAtMostOnce).ok());
  h.settle();

  ASSERT_EQ(sub_a.messages().size(), 1u);
  ASSERT_EQ(sub_b.messages().size(), 1u);
  EXPECT_GE(h.b().counters().get("bridge_echo_suppressed"), 1u);
}

TEST(Federation, HopBudgetDropsOverTraveledWraps) {
  BrokerConfig cfg;
  cfg.bridge_hop_budget = 2;
  FedHarness h(cfg);
  Peer& sub_a = h.on_a("sub_a");
  ASSERT_TRUE(sub_a.client().subscribe({{"x/#", QoS::kAtMostOnce}}).ok());
  h.mesh(east_west_bridge());

  // A (simulated) far-away bridge delivers pre-wrapped publishes: within
  // budget they unwrap and route; past it they are dropped.
  ClientConfig cc;
  cc.client_id = "$bridge/far";
  Peer& far = h.on_a(std::move(cc));
  ASSERT_TRUE(far.client()
                  .publish("$fed/2/x/t", to_bytes("ok"), QoS::kAtMostOnce)
                  .ok());
  ASSERT_TRUE(far.client()
                  .publish("$fed/3/x/t", to_bytes("late"), QoS::kAtMostOnce)
                  .ok());
  h.settle();

  ASSERT_EQ(sub_a.messages().size(), 1u);
  EXPECT_EQ(to_string(BytesView(sub_a.messages()[0].payload)), "ok");
  EXPECT_EQ(h.a().counters().get("bridge_loops_dropped"), 1u);
}

TEST(Federation, SpoofedWrapFromOrdinaryClientIsDropped) {
  FedHarness h;
  Peer& sub_a = h.on_a("sub_a");
  ASSERT_TRUE(sub_a.client().subscribe({{"x/#", QoS::kAtMostOnce}}).ok());
  Peer& evil = h.on_a("evil");
  // QoS 1 so the ack flow must still answer even though routing is
  // suppressed.
  ASSERT_TRUE(evil.client()
                  .publish("$fed/1/x/t", to_bytes("fake"), QoS::kAtLeastOnce)
                  .ok());
  h.settle();
  EXPECT_TRUE(sub_a.messages().empty());
  // Exactly one drop: the Puback flowed, so the client never retransmits.
  EXPECT_EQ(h.a().counters().get("fed_spoofs_dropped"), 1u);
}

TEST(Federation, RetainedCrossesTheBridge) {
  FedHarness h;
  Peer& pub_a = h.on_a("pub_a");
  // Retained *before* the mesh exists: the bridge's SUBSCRIBE replays it.
  ASSERT_TRUE(pub_a.client()
                  .publish("city/east/old", to_bytes("pre"), QoS::kAtMostOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();
  h.mesh(east_west_bridge());
  // ... and retained *after* the mesh rides the ordinary forward, retain
  // bit intact (unlike local fan-out, which clears it per MQTT-3.3.1-9).
  ASSERT_TRUE(pub_a.client()
                  .publish("city/east/new", to_bytes("post"),
                           QoS::kAtMostOnce, /*retain=*/true)
                  .ok());
  h.settle();

  // A *late* subscriber at the peer broker finds both in b's retained
  // store — proof the retain bit survived the hop.
  Peer& late_b = h.on_b("late_b");
  ASSERT_TRUE(
      late_b.client().subscribe({{"city/east/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_EQ(late_b.messages().size(), 2u);
  EXPECT_TRUE(late_b.messages()[0].retain);
  EXPECT_TRUE(late_b.messages()[1].retain);
}

TEST(Federation, ForwardedQosIsCappedByTheBridgeGrant) {
  FedHarness h;
  BridgeConfig bc = east_west_bridge();
  bc.out_filters = {{"city/east/#", QoS::kAtMostOnce}};  // QoS 0 grant
  Peer& sub_b = h.on_b("sub_b");
  ASSERT_TRUE(
      sub_b.client().subscribe({{"city/east/#", QoS::kExactlyOnce}}).ok());
  h.mesh(std::move(bc));
  Peer& pub_a = h.on_a("pub_a");
  ASSERT_TRUE(pub_a.client()
                  .publish("city/east/cam", to_bytes("q"), QoS::kExactlyOnce)
                  .ok());
  h.settle();
  ASSERT_EQ(sub_b.messages().size(), 1u);
  EXPECT_EQ(sub_b.messages()[0].qos, QoS::kAtMostOnce);
}

// ---- $-topic asymmetry -----------------------------------------------------

TEST(Federation, BridgeSeesSysButRootWildcardsNeverDo) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  FedHarness h(cfg);
  // Plain subscribers with root wildcards on both brokers: the MQTT
  // $-rule shields them from every $-topic — broker stats, "$fed/..."
  // wraps and the remapped peer subtree alike.
  Peer& root_a = h.on_a("root_a");
  Peer& root_b = h.on_b("root_b");
  ASSERT_TRUE(root_a.client().subscribe({{"#", QoS::kAtMostOnce}}).ok());
  ASSERT_TRUE(root_b.client().subscribe({{"+/+", QoS::kAtMostOnce}}).ok());
  // The mesh bridge *does* subscribe $SYS/# (mesh health)...
  BridgeConfig bc = east_west_bridge();
  bc.out_filters.push_back({"$SYS/#", QoS::kAtMostOnce});
  h.mesh(std::move(bc));
  // ... so a's stats surface at b under the peer subtree.
  Peer& watcher_b = h.on_b("watcher_b");
  ASSERT_TRUE(watcher_b.client()
                  .subscribe({{"$SYS/federation/peer/#", QoS::kAtMostOnce}})
                  .ok());
  Peer& pub_a = h.on_a("pub_a");
  ASSERT_TRUE(
      pub_a.client().publish("x/t", to_bytes("p"), QoS::kAtMostOnce).ok());
  h.settle(5 * kSecond);

  EXPECT_FALSE(watcher_b.messages().empty());
  for (const auto& m : watcher_b.messages()) {
    EXPECT_EQ(m.topic.view().substr(0, 21), "$SYS/federation/peer/");
  }
  ASSERT_EQ(root_a.messages().size(), 1u);  // only the plain publish
  EXPECT_EQ(root_a.messages()[0].topic.view(), "x/t");
  for (const auto& m : root_b.messages()) {
    EXPECT_NE(m.topic.view().substr(0, 1), "$");
  }
}

// ---- shared subscriptions --------------------------------------------------

TEST(Federation, ShareGroupDealsRoundRobinWithoutDuplicates) {
  testing::Harness h;
  Peer& w0 = h.add_client("w0");
  Peer& w1 = h.add_client("w1");
  Peer& w2 = h.add_client("w2");
  Peer& plain = h.add_client("plain");
  Peer& pub = h.add_client("pub");
  for (Peer* p : {&w0, &w1, &w2, &plain, &pub}) h.connect(*p);
  for (Peer* p : {&w0, &w1, &w2}) {
    ASSERT_TRUE(
        p->client().subscribe({{"$share/g/flow/t", QoS::kAtMostOnce}}).ok());
  }
  ASSERT_TRUE(plain.client().subscribe({{"flow/t", QoS::kAtMostOnce}}).ok());
  h.settle();
  EXPECT_EQ(h.broker().share_count(), 1u);

  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(pub.client()
                    .publish("flow/t", to_bytes(std::to_string(i)),
                             QoS::kAtMostOnce)
                    .ok());
    h.settle();
  }
  // Deterministic deal: one member per publish, 3 each in join order;
  // the plain subscriber independently sees every message.
  EXPECT_EQ(w0.messages().size(), 3u);
  EXPECT_EQ(w1.messages().size(), 3u);
  EXPECT_EQ(w2.messages().size(), 3u);
  EXPECT_EQ(plain.messages().size(), 9u);
  EXPECT_EQ(to_string(BytesView(w0.messages()[0].payload)), "0");
  EXPECT_EQ(to_string(BytesView(w1.messages()[0].payload)), "1");
  EXPECT_EQ(to_string(BytesView(w2.messages()[0].payload)), "2");
}

TEST(Federation, ShareSkipsDisconnectedMembers) {
  testing::Harness h;
  Peer& w0 = h.add_client("w0");
  Peer& w1 = h.add_client("w1");
  Peer& pub = h.add_client("pub");
  for (Peer* p : {&w0, &w1, &pub}) h.connect(*p);
  for (Peer* p : {&w0, &w1}) {
    ASSERT_TRUE(
        p->client().subscribe({{"$share/g/flow/t", QoS::kAtMostOnce}}).ok());
  }
  h.settle();
  w1.kill_transport();
  h.settle();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pub.client()
                    .publish("flow/t", to_bytes("m"), QoS::kAtMostOnce)
                    .ok());
    h.settle();
  }
  // Clean-session w1 was purged on disconnect; all traffic lands on w0.
  EXPECT_EQ(w0.messages().size(), 4u);
  EXPECT_TRUE(w1.messages().empty());
}

TEST(Federation, ShareGroupTearsDownWithItsLastMember) {
  testing::Harness h;
  Peer& w0 = h.add_client("w0");
  Peer& w1 = h.add_client("w1");
  h.connect(w0);
  h.connect(w1);
  for (Peer* p : {&w0, &w1}) {
    ASSERT_TRUE(
        p->client().subscribe({{"$share/g/flow/t", QoS::kAtMostOnce}}).ok());
  }
  h.settle();
  EXPECT_EQ(h.broker().share_count(), 1u);
  ASSERT_TRUE(w0.client().unsubscribe({"$share/g/flow/t"}).ok());
  h.settle();
  EXPECT_EQ(h.broker().share_count(), 1u);  // w1 still holds it
  ASSERT_TRUE(w1.client().unsubscribe({"$share/g/flow/t"}).ok());
  h.settle();
  EXPECT_EQ(h.broker().share_count(), 0u);
}

TEST(Federation, MalformedShareFiltersAreRejectedNotInstalled) {
  testing::Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  // Raw wire bytes: the Client validates filters before sending, so the
  // wildcard-in-group shapes have to be injected below it to prove the
  // *broker* rejects them.
  constexpr LinkId kRawLink = 77;
  std::vector<Bytes> replies;
  h.broker().on_link_open(
      kRawLink, [&replies](const Bytes& b) { replies.push_back(b); }, [] {});
  Connect c;
  c.client_id = "raw";
  h.broker().on_link_data(kRawLink, BytesView(encode(Packet{c})));
  const auto entries_before = h.broker().counters().get("subscriptions");
  const char* bad[] = {"$share",      "$share/",      "$share/g",
                       "$share//f",   "$share/g+x/f", "$share/#/f",
                       "$share/g#/f", "$share/+/f"};
  std::uint16_t pid = 1;
  for (const char* filter : bad) {
    Subscribe s;
    s.packet_id = pid++;
    s.topics = {{filter, QoS::kAtMostOnce}};
    h.broker().on_link_data(kRawLink, BytesView(encode(Packet{s})));
  }
  h.settle();
  EXPECT_EQ(h.broker().share_count(), 0u);
  EXPECT_GE(h.broker().counters().get("share_rejected"), std::size(bad));
  EXPECT_EQ(h.broker().counters().get("subscriptions"), entries_before);
  // And none of them installed a plain subscription by accident: a
  // publish produces no delivery on the raw link (CONNACK + the SUBACKs
  // are all it ever receives).
  const std::size_t replies_before = replies.size();
  ASSERT_TRUE(
      pub.client().publish("f", to_bytes("x"), QoS::kAtMostOnce).ok());
  h.settle();
  EXPECT_EQ(replies.size(), replies_before);
}

TEST(Federation, ShareRetainedReplayIsSuppressed) {
  testing::Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("flow/t", to_bytes("r"), QoS::kAtMostOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();
  Peer& w0 = h.add_client("w0");
  h.connect(w0);
  ASSERT_TRUE(
      w0.client().subscribe({{"$share/g/flow/t", QoS::kAtMostOnce}}).ok());
  h.settle();
  // MQTT 5 semantics (the sane choice): joining a share group does not
  // replay retained state into one arbitrary member.
  EXPECT_TRUE(w0.messages().empty());
}

// ---- FederationMap ---------------------------------------------------------

TEST(FederationMap, LongestPrefixWinsAndHashIsTheFallback) {
  FederationMap map(4);
  ASSERT_TRUE(map.assign("city", 0).ok());
  ASSERT_TRUE(map.assign("city/east", 2).ok());
  EXPECT_EQ(map.shard_of("city/west/cam"), 0u);
  EXPECT_EQ(map.shard_of("city/east/cam"), 2u);
  EXPECT_EQ(map.shard_of("city"), 0u);
  EXPECT_TRUE(map.pinned("city/east/cam"));
  EXPECT_FALSE(map.pinned("other/topic"));
  // Level-wise matching: "city/eastern" is NOT under prefix "city/east".
  EXPECT_EQ(map.shard_of("city/eastern/cam"), 0u);
  // Unpinned topics spread deterministically across all brokers; the
  // hash keys on the first three levels, so deeper siblings agree.
  EXPECT_LT(map.shard_of("other/topic"), 4u);
  EXPECT_EQ(map.shard_of("other/topic/deep"),
            map.shard_of("other/topic/deep/er"));
}

TEST(FederationMap, ShareFiltersRouteByTheirInnerFilter) {
  FederationMap map(4);
  ASSERT_TRUE(map.assign("city/east", 2).ok());
  EXPECT_EQ(map.shard_of("$share/g/city/east/cam"), 2u);
  EXPECT_EQ(map.shard_of("city/east/cam"),
            map.shard_of("$share/other/city/east/cam"));
}

TEST(FederationMap, RejectsMalformedAssignments) {
  FederationMap map(2);
  EXPECT_FALSE(map.assign("", 0).ok());
  EXPECT_FALSE(map.assign("/lead", 0).ok());
  EXPECT_FALSE(map.assign("trail/", 0).ok());
  EXPECT_FALSE(map.assign("has/+/wild", 0).ok());
  EXPECT_FALSE(map.assign("has/#", 0).ok());
  EXPECT_FALSE(map.assign("fine", 2).ok());  // broker out of range
  ASSERT_TRUE(map.assign("fine", 1).ok());
  ASSERT_TRUE(map.assign("fine", 0).ok());  // replace wins
  EXPECT_EQ(map.shard_of("fine/x"), 0u);
  EXPECT_EQ(map.assignment_count(), 1u);
}

TEST(FederationMap, OwnedFiltersCoverExactlyTheAssignedPrefixes) {
  FederationMap map(3);
  ASSERT_TRUE(map.assign("city/east", 2).ok());
  ASSERT_TRUE(map.assign("city/docks", 2).ok());
  ASSERT_TRUE(map.assign("city/west", 1).ok());
  const auto owned = map.filters_owned_by(2);
  ASSERT_EQ(owned.size(), 2u);
  EXPECT_EQ(owned[0], "city/east/#");
  EXPECT_EQ(owned[1], "city/docks/#");
  EXPECT_TRUE(map.filters_owned_by(0).empty());
}

}  // namespace
}  // namespace ifot::mqtt
