// Wire-template regression tests for the unified egress path: the
// packet-id offset recorded by encode_publish_template must stay correct
// across every remaining-length varint width and around the topic-length
// encode edges, and patching id/DUP in place must be byte-exact against a
// fresh encode. Also pins the client retransmit path: a DUP redelivery
// reuses the original wire buffer, flipping only the DUP bit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mqtt/client.hpp"
#include "mqtt/outbox.hpp"
#include "mqtt/packet.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::SimSched;

std::size_t varint_len(std::size_t body_len) {
  std::size_t n = 1;
  for (std::size_t v = body_len; v >= 128; v /= 128) ++n;
  return n;
}

Publish make_publish(std::string topic, std::size_t payload_len, QoS qos,
                     std::uint16_t packet_id) {
  Publish p;
  p.topic = std::move(topic);
  p.payload = SharedPayload(Bytes(payload_len, 0x42));
  p.qos = qos;
  p.packet_id = packet_id;
  return p;
}

/// The template's frame must equal a fresh encode() of the same message,
/// and its recorded id offset must point at the id actually serialized.
void expect_template_exact(const Publish& p) {
  const EncodedPublish enc = encode_publish_template(p);
  const std::size_t body_len = 2 + p.topic.size() +
                               (p.qos != QoS::kAtMostOnce ? 2 : 0) +
                               p.payload.size();
  ASSERT_EQ(enc.wire, encode(Packet{p}))
      << "topic len " << p.topic.size() << " payload " << p.payload.size();
  if (p.qos == QoS::kAtMostOnce) {
    EXPECT_EQ(enc.packet_id_offset, 0u);
    return;
  }
  const std::size_t expected_offset =
      1 + varint_len(body_len) + 2 + p.topic.size();
  ASSERT_EQ(enc.packet_id_offset, expected_offset);
  EXPECT_EQ(enc.wire[enc.packet_id_offset],
            static_cast<std::uint8_t>(p.packet_id >> 8));
  EXPECT_EQ(enc.wire[enc.packet_id_offset + 1],
            static_cast<std::uint8_t>(p.packet_id & 0xFF));

  // Patching a different id (and DUP) must be byte-exact against a fresh
  // encode of that variant.
  WireTemplate tpl(enc);
  Publish redelivered = p;
  redelivered.packet_id = 0x1234;
  redelivered.dup = true;
  EXPECT_EQ(tpl.patched(0x1234, true), encode(Packet{redelivered}));
  Publish again = p;
  again.packet_id = 7;
  again.dup = false;
  EXPECT_EQ(tpl.patched(7, false), encode(Packet{again}));
  EXPECT_EQ(tpl.current_packet_id(), 7u);
}

TEST(WireTemplate, PacketIdOffsetAcrossVarintWidths) {
  // Remaining-length widths 1, 2, 3 and 4 bytes: bodies up to 127, 16383,
  // 2097151 and beyond.
  expect_template_exact(make_publish("t", 8, QoS::kAtLeastOnce, 21));
  expect_template_exact(make_publish("t", 500, QoS::kAtLeastOnce, 22));
  expect_template_exact(make_publish("t", 20'000, QoS::kExactlyOnce, 23));
  expect_template_exact(
      make_publish("t", 2'200'000, QoS::kAtLeastOnce, 24));
}

TEST(WireTemplate, PacketIdOffsetAtVarintBoundaries) {
  // Pin the exact flip points: body_len 127 -> 1-byte varint, 128 ->
  // 2-byte; 16383 -> 2-byte, 16384 -> 3-byte. body = 2 + topic + 2 + 0.
  for (const std::size_t topic_len : {123u, 124u, 16379u, 16380u}) {
    expect_template_exact(make_publish(std::string(topic_len, 'a'), 0,
                                       QoS::kAtLeastOnce, 31));
  }
}

TEST(WireTemplate, TopicsStraddlingLengthEdges) {
  // Topic lengths around the 127- and 16383-byte marks, where an
  // off-by-one in the offset arithmetic would land the patch inside the
  // topic (or past the id).
  for (const std::size_t topic_len :
       {126u, 127u, 128u, 16382u, 16383u, 16384u}) {
    expect_template_exact(make_publish(std::string(topic_len, 'x'), 5,
                                       QoS::kExactlyOnce, 400));
  }
}

TEST(WireTemplate, Qos0TemplateHasNoIdField) {
  const Publish p = make_publish("sensors/a", 16, QoS::kAtMostOnce, 0);
  const EncodedPublish enc = encode_publish_template(p);
  EXPECT_EQ(enc.packet_id_offset, 0u);
  WireTemplate tpl(enc);
  EXPECT_FALSE(tpl.has_packet_id());
  // Patching with (0, false) is the only legal call; it is a no-op.
  EXPECT_EQ(tpl.patched(0, false), encode(Packet{p}));
}

TEST(WireTemplate, PatchedFrameDecodesBack) {
  const Publish p = make_publish("f/edge", 64, QoS::kAtLeastOnce, 9);
  WireTemplate tpl(encode_publish_template(p));
  auto decoded = decode(BytesView(tpl.patched(0xBEEF, true)));
  ASSERT_TRUE(decoded.ok());
  const auto* out = std::get_if<Publish>(&decoded.value());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->packet_id, 0xBEEF);
  EXPECT_TRUE(out->dup);
  EXPECT_EQ(out->topic.str(), "f/edge");
  EXPECT_EQ(out->payload.size(), 64u);
}

/// Client retransmit regression: the DUP redelivery must be the original
/// wire buffer with only the DUP bit flipped — no re-encode, no drift.
void expect_client_retransmit_byte_exact(QoS qos) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "dup-exact";
  cc.retry_interval = from_millis(50);
  std::vector<Bytes> writes;
  Client client(sched, cc,
                [&](const Bytes& b) { writes.push_back(b); });
  client.on_transport_open();
  client.on_data(
      BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.publish("flow/x", Bytes(48, 0x3C), qos).ok());
  sim.run_until(sim.now() + from_millis(120));  // two retry intervals

  // Collect the raw PUBLISH frames (CONNECT and pings are not PUBLISH).
  std::vector<Bytes> publishes;
  for (const Bytes& w : writes) {
    if (!w.empty() && (w[0] >> 4) ==
                          static_cast<std::uint8_t>(PacketType::kPublish)) {
      publishes.push_back(w);
    }
  }
  ASSERT_GE(publishes.size(), 2u);
  const Bytes& first = publishes[0];
  EXPECT_EQ(first[0] & 0x08, 0);  // first delivery never carries DUP
  for (std::size_t i = 1; i < publishes.size(); ++i) {
    Bytes expected = first;
    expected[0] |= 0x08;
    EXPECT_EQ(publishes[i], expected) << "retransmit " << i;
  }
  // The whole retry storm cost exactly one encode.
  EXPECT_EQ(client.counters().get("egress_wire_templates"), 1u);
}

TEST(WireTemplate, ClientQos1RetransmitIsByteExactDup) {
  expect_client_retransmit_byte_exact(QoS::kAtLeastOnce);
}

TEST(WireTemplate, ClientQos2RetransmitIsByteExactDup) {
  expect_client_retransmit_byte_exact(QoS::kExactlyOnce);
}

}  // namespace
}  // namespace ifot::mqtt
