#include "mqtt/broker.hpp"

#include <gtest/gtest.h>

#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::Harness;
using testing::Peer;

TEST(Broker, ConnectAccepted) {
  Harness h;
  Peer& p = h.add_client("c1");
  bool acked = false;
  p.client().set_on_connack([&](const Connack& ack) {
    acked = true;
    EXPECT_EQ(ack.code, ConnectCode::kAccepted);
    EXPECT_FALSE(ack.session_present);
  });
  h.connect(p);
  EXPECT_TRUE(acked);
  EXPECT_TRUE(p.client().connected());
  EXPECT_EQ(h.broker().session_count(), 1u);
  EXPECT_EQ(h.broker().connected_count(), 1u);
}

TEST(Broker, PublishSubscribeQos0) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"flows/a", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("flows/a", to_bytes("v1"), QoS::kAtMostOnce).ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].topic, "flows/a");
  EXPECT_EQ(to_string(BytesView(sub.messages()[0].payload)), "v1");
  EXPECT_EQ(sub.messages()[0].qos, QoS::kAtMostOnce);
}

TEST(Broker, FanOutToMultipleSubscribers) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& s1 = h.add_client("s1");
  Peer& s2 = h.add_client("s2");
  Peer& s3 = h.add_client("s3");
  for (Peer* p : {&pub, &s1, &s2, &s3}) h.connect(*p);
  for (Peer* p : {&s1, &s2, &s3}) {
    ASSERT_TRUE(p->client().subscribe({{"t", QoS::kAtMostOnce}}).ok());
  }
  h.settle();
  ASSERT_TRUE(pub.client().publish("t", to_bytes("x"), QoS::kAtMostOnce).ok());
  h.settle();
  EXPECT_EQ(s1.messages().size(), 1u);
  EXPECT_EQ(s2.messages().size(), 1u);
  EXPECT_EQ(s3.messages().size(), 1u);
  EXPECT_TRUE(pub.messages().empty());  // publisher is not subscribed
}

TEST(Broker, WildcardSubscriptionReceivesMatching) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(
      sub.client().subscribe({{"ifot/app/+", QoS::kAtMostOnce}}).ok());
  h.settle();
  for (const char* topic : {"ifot/app/a", "ifot/app/b", "ifot/other/c"}) {
    ASSERT_TRUE(
        pub.client().publish(topic, to_bytes("x"), QoS::kAtMostOnce).ok());
  }
  h.settle();
  ASSERT_EQ(sub.messages().size(), 2u);
  EXPECT_EQ(sub.messages()[0].topic, "ifot/app/a");
  EXPECT_EQ(sub.messages()[1].topic, "ifot/app/b");
}

TEST(Broker, OverlappingSubscriptionsDeliverOnceAtMaxQos) {
  BrokerConfig cfg;
  Harness h(cfg);
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client()
                  .subscribe({{"a/#", QoS::kAtMostOnce},
                              {"a/b", QoS::kAtLeastOnce}})
                  .ok());
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("a/b", to_bytes("x"), QoS::kAtLeastOnce).ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].qos, QoS::kAtLeastOnce);
}

TEST(Broker, Qos1EndToEndAck) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"q", QoS::kAtLeastOnce}}).ok());
  h.settle();
  bool done = false;
  ASSERT_TRUE(pub.client()
                  .publish("q", to_bytes("p"), QoS::kAtLeastOnce, false,
                           [&](Status) { done = true; })
                  .ok());
  h.settle();
  EXPECT_TRUE(done);  // PUBACK received
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].qos, QoS::kAtLeastOnce);
  EXPECT_EQ(pub.client().inflight_count(), 0u);
}

TEST(Broker, Qos2ExactlyOnceEndToEnd) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"q2", QoS::kExactlyOnce}}).ok());
  h.settle();
  bool done = false;
  ASSERT_TRUE(pub.client()
                  .publish("q2", to_bytes("p"), QoS::kExactlyOnce, false,
                           [&](Status) { done = true; })
                  .ok());
  h.settle();
  EXPECT_TRUE(done);  // full PUBREC/PUBREL/PUBCOMP handshake
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].qos, QoS::kExactlyOnce);
  EXPECT_EQ(h.broker().counters().get("qos2_duplicates"), 0u);
}

TEST(Broker, RetainedMessageDeliveredOnSubscribe) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("cfg/room", to_bytes("21.5"), QoS::kAtMostOnce,
                           /*retain=*/true)
                  .ok());
  h.settle();
  EXPECT_EQ(h.broker().retained_count(), 1u);

  Peer& late = h.add_client("late");
  h.connect(late);
  ASSERT_TRUE(late.client().subscribe({{"cfg/+", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_EQ(late.messages().size(), 1u);
  EXPECT_TRUE(late.messages()[0].retain);
  EXPECT_EQ(to_string(BytesView(late.messages()[0].payload)), "21.5");
}

TEST(Broker, EmptyRetainedPayloadClears) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client()
                  .publish("cfg/x", to_bytes("v"), QoS::kAtMostOnce, true)
                  .ok());
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("cfg/x", {}, QoS::kAtMostOnce, true).ok());
  h.settle();
  EXPECT_EQ(h.broker().retained_count(), 0u);
}

TEST(Broker, LiveForwardClearsRetainFlag) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"r", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_TRUE(pub.client()
                  .publish("r", to_bytes("v"), QoS::kAtMostOnce, true)
                  .ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_FALSE(sub.messages()[0].retain);  // [MQTT-3.3.1-9]
}

TEST(Broker, WillPublishedOnUngracefulDisconnect) {
  Harness h;
  ClientConfig cc;
  cc.client_id = "fragile";
  cc.will = Will{"status/fragile", to_bytes("dead"), QoS::kAtMostOnce, false};
  Peer& fragile = h.add_client(cc);
  Peer& watcher = h.add_client("watcher");
  h.connect(fragile);
  h.connect(watcher);
  ASSERT_TRUE(
      watcher.client().subscribe({{"status/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  fragile.kill_transport();
  h.settle();
  ASSERT_EQ(watcher.messages().size(), 1u);
  EXPECT_EQ(watcher.messages()[0].topic, "status/fragile");
  EXPECT_EQ(h.broker().counters().get("wills_published"), 1u);
}

TEST(Broker, NoWillOnGracefulDisconnect) {
  Harness h;
  ClientConfig cc;
  cc.client_id = "polite";
  cc.will = Will{"status/polite", to_bytes("dead"), QoS::kAtMostOnce, false};
  Peer& polite = h.add_client(cc);
  Peer& watcher = h.add_client("watcher");
  h.connect(polite);
  h.connect(watcher);
  ASSERT_TRUE(
      watcher.client().subscribe({{"status/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  polite.client().disconnect();
  h.settle();
  EXPECT_TRUE(watcher.messages().empty());
  EXPECT_EQ(h.broker().counters().get("wills_published"), 0u);
}

TEST(Broker, CleanSessionRemovedOnDisconnect) {
  Harness h;
  Peer& p = h.add_client("ephemeral", /*clean=*/true);
  h.connect(p);
  EXPECT_EQ(h.broker().session_count(), 1u);
  p.client().disconnect();
  h.settle();
  EXPECT_EQ(h.broker().session_count(), 0u);
}

TEST(Broker, PersistentSessionSurvivesDisconnect) {
  Harness h;
  Peer& p = h.add_client("durable", /*clean=*/false);
  h.connect(p);
  ASSERT_TRUE(p.client().subscribe({{"d", QoS::kAtLeastOnce}}).ok());
  h.settle();
  p.kill_transport();
  h.settle();
  EXPECT_EQ(h.broker().session_count(), 1u);
  EXPECT_EQ(h.broker().connected_count(), 0u);
}

TEST(Broker, PersistentSessionQueuesQos1WhileOffline) {
  Harness h;
  Peer& durable = h.add_client("durable", /*clean=*/false);
  Peer& pub = h.add_client("pub");
  h.connect(durable);
  h.connect(pub);
  ASSERT_TRUE(durable.client().subscribe({{"d", QoS::kAtLeastOnce}}).ok());
  h.settle();
  durable.kill_transport();
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("d", to_bytes("offline-msg"), QoS::kAtLeastOnce)
          .ok());
  h.settle();
  EXPECT_EQ(h.broker().counters().get("queued"), 1u);

  // Reconnect with a fresh transport; session resumes and the queued
  // message is delivered.
  Peer& durable2 = h.add_client("durable", /*clean=*/false);
  bool session_present = false;
  durable2.client().set_on_connack(
      [&](const Connack& ack) { session_present = ack.session_present; });
  h.connect(durable2);
  h.settle();
  EXPECT_TRUE(session_present);
  ASSERT_EQ(durable2.messages().size(), 1u);
  EXPECT_EQ(to_string(BytesView(durable2.messages()[0].payload)),
            "offline-msg");
}

TEST(Broker, Qos0DroppedForOfflineSessions) {
  Harness h;
  Peer& durable = h.add_client("durable", /*clean=*/false);
  Peer& pub = h.add_client("pub");
  h.connect(durable);
  h.connect(pub);
  ASSERT_TRUE(durable.client().subscribe({{"d", QoS::kAtMostOnce}}).ok());
  h.settle();
  durable.kill_transport();
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("d", to_bytes("gone"), QoS::kAtMostOnce).ok());
  h.settle();
  EXPECT_EQ(h.broker().counters().get("dropped_qos0_offline"), 1u);
}

TEST(Broker, SessionTakeoverDisconnectsOldLink) {
  Harness h;
  Peer& first = h.add_client("same-id");
  h.connect(first);
  EXPECT_TRUE(first.client().connected());
  Peer& second = h.add_client("same-id");
  h.connect(second);
  EXPECT_TRUE(second.client().connected());
  EXPECT_FALSE(first.transport_up());
  EXPECT_EQ(h.broker().counters().get("session_takeovers"), 1u);
  EXPECT_EQ(h.broker().connected_count(), 1u);
}

TEST(Broker, EmptyClientIdWithCleanSessionGetsGeneratedId) {
  Harness h;
  Peer& p = h.add_client("", /*clean=*/true);
  h.connect(p);
  EXPECT_TRUE(p.client().connected());
  EXPECT_EQ(h.broker().session_count(), 1u);
}

TEST(Broker, EmptyClientIdWithoutCleanSessionRejected) {
  Harness h;
  Peer& p = h.add_client("", /*clean=*/false);
  ConnectCode code = ConnectCode::kAccepted;
  p.client().set_on_connack([&](const Connack& ack) { code = ack.code; });
  h.connect(p);
  EXPECT_EQ(code, ConnectCode::kIdentifierRejected);
  EXPECT_FALSE(p.client().connected());
}

TEST(Broker, MaxQosDowngrade) {
  BrokerConfig cfg;
  cfg.max_qos = QoS::kAtMostOnce;
  Harness h(cfg);
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  std::vector<std::uint8_t> granted;
  ASSERT_TRUE(sub.client()
                  .subscribe({{"t", QoS::kExactlyOnce}},
                             [&](const Suback& ack) {
                               granted = ack.return_codes;
                             })
                  .ok());
  h.settle();
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 0);  // downgraded to QoS 0
}

TEST(Broker, InvalidFilterGetsSubackFailure) {
  Harness h;
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  // Client-side validation rejects bad filters, so craft the packet by
  // feeding the broker directly through a second path: use a filter that
  // is client-valid but server-rejected is not possible here, so this
  // exercises the client-side guard instead.
  auto status = sub.client().subscribe({{"bad/#/filter", QoS::kAtMostOnce}});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, Errc::kInvalidArgument);
}

TEST(Broker, Unsubscribe) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"u", QoS::kAtMostOnce}}).ok());
  h.settle();
  bool unsubbed = false;
  ASSERT_TRUE(sub.client().unsubscribe({"u"}, [&] { unsubbed = true; }).ok());
  h.settle();
  EXPECT_TRUE(unsubbed);
  ASSERT_TRUE(pub.client().publish("u", to_bytes("x"), QoS::kAtMostOnce).ok());
  h.settle();
  EXPECT_TRUE(sub.messages().empty());
}

TEST(Broker, KeepAliveTimeoutClosesLinkAndPublishesWill) {
  Harness h;
  ClientConfig cc;
  cc.client_id = "sleepy";
  cc.keep_alive_s = 2;
  cc.will = Will{"status/sleepy", to_bytes("timeout"), QoS::kAtMostOnce, false};
  Peer& sleepy = h.add_client(cc);
  Peer& watcher = h.add_client("watcher");
  h.connect(sleepy);
  h.connect(watcher);
  ASSERT_TRUE(
      watcher.client().subscribe({{"status/#", QoS::kAtMostOnce}}).ok());
  h.settle();
  // Suppress the client's PINGREQs by killing only its outbound path:
  // simulate by stopping the client side silently (transport stays "up"
  // for the broker). We emulate via on_transport_closed on the client
  // only, so it stops pinging while the broker still waits.
  sleepy.client().on_transport_closed();
  h.settle(10 * kSecond);  // > 1.5 * keep_alive
  EXPECT_EQ(h.broker().counters().get("keepalive_timeouts"), 1u);
  ASSERT_EQ(watcher.messages().size(), 1u);
  EXPECT_EQ(watcher.messages()[0].topic, "status/sleepy");
}

TEST(Broker, PublishLocalReachesSubscribers) {
  Harness h;
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"$SYS/stats", QoS::kAtMostOnce}}).ok());
  h.settle();
  h.broker().publish_local("$SYS/stats", to_bytes("42"), QoS::kAtMostOnce);
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].topic, "$SYS/stats");
}

TEST(Broker, FirstPacketMustBeConnect) {
  Harness h;
  bool closed = false;
  h.broker().on_link_open(
      99, [](const Bytes&) {}, [&] { closed = true; });
  const Bytes ping = encode(Packet{Pingreq{}});
  h.broker().on_link_data(99, BytesView(ping));
  h.settle();
  EXPECT_TRUE(closed);
}

TEST(Broker, CorruptStreamDropsLink) {
  Harness h;
  bool closed = false;
  h.broker().on_link_open(
      98, [](const Bytes&) {}, [&] { closed = true; });
  const Bytes garbage = {0x10, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  h.broker().on_link_data(98, BytesView(garbage));
  h.settle();
  EXPECT_TRUE(closed);
  EXPECT_EQ(h.broker().counters().get("protocol_errors"), 1u);
}

}  // namespace
}  // namespace ifot::mqtt
