// Fuzz regression corpus replay (ISSUE PR3 satellite): every file under
// fuzz/corpus/packet_decode/ -- the encode() seeds plus the hand-written
// hostile inputs -- is decoded on every tier-1 run, one-shot and through
// the StreamDecoder, mirroring the libFuzzer harness. Decoding must
// terminate without crashing; success must round-trip through encode();
// failure must come back as a typed error. This keeps the fuzzer's
// malformed neighborhood covered even on toolchains without Clang.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "mqtt/packet.hpp"

#ifndef IFOT_CORPUS_DIR
#error "IFOT_CORPUS_DIR must point at fuzz/corpus/packet_decode"
#endif

namespace ifot::mqtt {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& e :
       std::filesystem::directory_iterator(IFOT_CORPUS_DIR)) {
    if (e.is_regular_file()) files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

Bytes read_file(const std::filesystem::path& p) {
  std::ifstream f(p, std::ios::binary);
  return Bytes(std::istreambuf_iterator<char>(f),
               std::istreambuf_iterator<char>());
}

TEST(CorpusRegression, CorpusIsCheckedIn) {
  // The corpus is part of the tree (fuzzers extend it; this test replays
  // it); an empty directory means the checkout lost it.
  EXPECT_GE(corpus_files().size(), 30u);
}

TEST(CorpusRegression, OneShotDecodeIsTotalAndRoundTrips) {
  for (const auto& path : corpus_files()) {
    const Bytes wire = read_file(path);
    auto r = decode(BytesView(wire));
    if (!r.ok()) continue;  // typed rejection is a valid outcome
    const Bytes re = encode(r.value());
    auto again = decode(BytesView(re));
    ASSERT_TRUE(again.ok()) << path.filename()
                            << ": re-decode of encode() output failed: "
                            << again.error().to_string();
    EXPECT_TRUE(again.value() == r.value())
        << path.filename() << ": decode(encode(p)) != p";
  }
}

TEST(CorpusRegression, BatchedWritesSplitBackIntoWholeFrames) {
  // batch-<N>-* files are whole batched transport writes as the egress
  // Outbox emits them: N complete frames concatenated. The receive side
  // must split every one of them back out, in order, with no error.
  bool saw_batch = false;
  for (const auto& path : corpus_files()) {
    const std::string name = path.filename().string();
    if (name.rfind("batch-", 0) != 0) continue;
    saw_batch = true;
    const auto expected = static_cast<std::size_t>(
        std::stoul(name.substr(std::string("batch-").size())));
    const Bytes wire = read_file(path);
    StreamDecoder dec;
    dec.set_max_packet_size(1 << 20);
    dec.feed(BytesView(wire));
    std::size_t decoded = 0;
    for (;;) {
      auto r = dec.next();
      ASSERT_TRUE(r.ok()) << name << ": " << r.error().to_string();
      if (!r.value()) break;
      ++decoded;
    }
    EXPECT_EQ(decoded, expected) << name;
  }
  EXPECT_TRUE(saw_batch) << "no batch-* files in the corpus";
}

TEST(CorpusRegression, StreamDecoderMatchesOneShotVerdict) {
  for (const auto& path : corpus_files()) {
    const Bytes wire = read_file(path);
    // Byte-at-a-time is the adversarial chunking: every length check in
    // the decoder sees a partial buffer at least once.
    StreamDecoder dec;
    dec.set_max_packet_size(1 << 20);
    bool stream_error = false;
    std::size_t decoded = 0;
    for (std::size_t i = 0; i < wire.size() && !stream_error; ++i) {
      dec.feed(BytesView(wire.data() + i, 1));
      for (;;) {
        auto r = dec.next();
        if (!r.ok()) {
          stream_error = true;
          break;
        }
        if (!r.value()) break;  // needs more bytes
        ++decoded;
      }
    }
    auto one_shot = decode(BytesView(wire));
    if (one_shot.ok()) {
      EXPECT_FALSE(stream_error)
          << path.filename()
          << ": stream decoder rejected a packet one-shot decode accepts";
      EXPECT_GE(decoded, 1u) << path.filename();
    }
  }
}

}  // namespace
}  // namespace ifot::mqtt
