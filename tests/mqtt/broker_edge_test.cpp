// Broker edge cases: inflight windows, redelivery caps, queue overflow,
// QoS 2 broker-side state, and $SYS statistics.
#include <gtest/gtest.h>

#include "mqtt/broker.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::Harness;
using testing::Peer;

TEST(BrokerEdge, InflightWindowQueuesExcessQos1) {
  BrokerConfig cfg;
  cfg.max_inflight_per_session = 2;
  Harness h(cfg);
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"w", QoS::kAtLeastOnce}}).ok());
  h.settle();
  // Burst of 10 messages: the broker may only have 2 unacked at a time,
  // but all 10 must arrive (acks open the window).
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pub.client()
                    .publish("w", Bytes{static_cast<std::uint8_t>(i)},
                             QoS::kAtLeastOnce)
                    .ok());
  }
  h.settle();
  EXPECT_EQ(sub.messages().size(), 10u);
  EXPECT_GT(h.broker().counters().get("queued"), 0u);
}

TEST(BrokerEdge, QueueOverflowDropsForOfflinePersistentSession) {
  BrokerConfig cfg;
  cfg.max_queued_per_session = 5;
  Harness h(cfg);
  Peer& durable = h.add_client("durable", /*clean=*/false);
  Peer& pub = h.add_client("pub");
  h.connect(durable);
  h.connect(pub);
  ASSERT_TRUE(durable.client().subscribe({{"q", QoS::kAtLeastOnce}}).ok());
  h.settle();
  durable.kill_transport();
  h.settle();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pub.client().publish("q", Bytes{1}, QoS::kAtLeastOnce).ok());
  }
  h.settle();
  EXPECT_EQ(h.broker().counters().get("queued"), 5u);
  EXPECT_EQ(h.broker().counters().get("dropped_queue_full"), 15u);
}

TEST(BrokerEdge, RedeliveryStopsAfterMaxRetries) {
  BrokerConfig cfg;
  cfg.retry_interval = from_millis(50);
  cfg.max_retries = 3;
  Harness h(cfg);
  // A subscriber that swallows QoS1 PUBLISHes (never PUBACKs): feed the
  // broker directly so we control the ack behaviour.
  int deliveries = 0;
  StreamDecoder splitter;  // broker writes may batch several frames
  h.broker().on_link_open(
      42, [&](const Bytes& bytes) {
        splitter.feed(BytesView(bytes));
        while (true) {
          auto p = splitter.next();
          ASSERT_TRUE(p.ok());
          if (!p.value().has_value()) break;
          if (std::holds_alternative<Publish>(p.value().value())) {
            ++deliveries;
          }
        }
      },
      [] {});
  Connect c;
  c.client_id = "mute";
  h.broker().on_link_data(42, BytesView(encode(Packet{c})));
  Subscribe s;
  s.packet_id = 1;
  s.topics = {{"r", QoS::kAtLeastOnce}};
  h.broker().on_link_data(42, BytesView(encode(Packet{s})));

  h.broker().publish_local("r", to_bytes("x"), QoS::kAtLeastOnce);
  h.settle(5 * kSecond);
  // Original + at most max_retries redeliveries.
  EXPECT_GE(deliveries, 2);
  EXPECT_LE(deliveries, 1 + cfg.max_retries + 1);
  EXPECT_GT(h.broker().counters().get("redeliveries"), 0u);
}

TEST(BrokerEdge, Qos2DuplicatePublishNotRoutedTwice) {
  Harness h;
  Peer& sub = h.add_client("sub");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"d", QoS::kAtMostOnce}}).ok());
  h.settle();
  // Publisher link driven by hand so we can resend a DUP before PUBREL.
  Bytes outbox;
  h.broker().on_link_open(
      7, [&](const Bytes& bytes) { outbox.insert(outbox.end(), bytes.begin(), bytes.end()); },
      [] {});
  Connect c;
  c.client_id = "manual";
  h.broker().on_link_data(7, BytesView(encode(Packet{c})));
  Publish p;
  p.topic = "d";
  p.payload = to_bytes("once");
  p.qos = QoS::kExactlyOnce;
  p.packet_id = 9;
  h.broker().on_link_data(7, BytesView(encode(Packet{p})));
  p.dup = true;
  h.broker().on_link_data(7, BytesView(encode(Packet{p})));  // retransmit
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(h.broker().counters().get("qos2_duplicates"), 1u);
  // After PUBREL, the id is released and may be reused.
  h.broker().on_link_data(7, BytesView(encode(Packet{Pubrel{9}})));
  p.dup = false;
  h.broker().on_link_data(7, BytesView(encode(Packet{p})));
  h.settle();
  EXPECT_EQ(sub.messages().size(), 2u);
}

TEST(BrokerEdge, SysStatsPublishedOnInterval) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  Harness h(cfg);
  Peer& sub = h.add_client("watcher");
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"$SYS/#", QoS::kAtMostOnce}}).ok());
  h.settle(3500 * kMillisecond);
  // At least three ticks of thirteen topics each.
  EXPECT_GE(sub.messages().size(), 39u);
  bool saw_connected = false;
  for (const auto& m : sub.messages()) {
    if (m.topic == "$SYS/broker/clients/connected") {
      saw_connected = true;
      EXPECT_EQ(to_string(BytesView(m.payload)), "1");
    }
  }
  EXPECT_TRUE(saw_connected);
}

TEST(BrokerEdge, SysStatsRetainedForLateSubscribers) {
  BrokerConfig cfg;
  cfg.sys_interval = kSecond;
  Harness h(cfg);
  Peer& early = h.add_client("early");
  h.connect(early);
  h.settle(2 * kSecond);  // stats published before the watcher exists
  Peer& late = h.add_client("late");
  h.connect(late);
  ASSERT_TRUE(
      late.client().subscribe({{"$SYS/broker/clients/total", QoS::kAtMostOnce}}).ok());
  h.settle(100 * kMillisecond);
  ASSERT_GE(late.messages().size(), 1u);
  EXPECT_TRUE(late.messages()[0].retain);
}

TEST(BrokerEdge, DuplicateConnectSameIdentityReacked) {
  Harness h;
  std::vector<Packet> out;
  h.broker().on_link_open(
      11, [&](const Bytes& b) {
        auto p = decode(BytesView(b));
        ASSERT_TRUE(p.ok());
        out.push_back(std::move(p).value());
      },
      [] {});
  Connect c;
  c.client_id = "retrier";
  h.broker().on_link_data(11, BytesView(encode(Packet{c})));
  h.broker().on_link_data(11, BytesView(encode(Packet{c})));  // retry
  h.settle();
  // Two CONNACKs, link still alive.
  int connacks = 0;
  for (const auto& p : out) {
    if (std::holds_alternative<Connack>(p)) ++connacks;
  }
  EXPECT_EQ(connacks, 2);
  EXPECT_EQ(h.broker().connected_count(), 1u);
}

TEST(BrokerEdge, DuplicateConnectDifferentIdentityDropped) {
  Harness h;
  bool closed = false;
  h.broker().on_link_open(
      12, [](const Bytes&) {}, [&] { closed = true; });
  Connect c;
  c.client_id = "alpha";
  h.broker().on_link_data(12, BytesView(encode(Packet{c})));
  c.client_id = "impostor";
  h.broker().on_link_data(12, BytesView(encode(Packet{c})));
  h.settle();
  EXPECT_TRUE(closed);  // identity change is punished per §3.1.0-2
}

TEST(BrokerEdge, PublishToTopicWithNoSubscribersIsSafe) {
  Harness h;
  Peer& pub = h.add_client("pub");
  h.connect(pub);
  ASSERT_TRUE(pub.client().publish("void", to_bytes("x"), QoS::kAtLeastOnce).ok());
  h.settle();
  EXPECT_EQ(h.broker().counters().get("routed"), 1u);
  EXPECT_EQ(pub.client().inflight_count(), 0u);  // still PUBACKed
}

TEST(BrokerEdge, ResubscribeReplacesQos) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& sub = h.add_client("sub");
  h.connect(pub);
  h.connect(sub);
  ASSERT_TRUE(sub.client().subscribe({{"t", QoS::kAtLeastOnce}}).ok());
  h.settle();
  ASSERT_TRUE(sub.client().subscribe({{"t", QoS::kAtMostOnce}}).ok());
  h.settle();
  ASSERT_TRUE(pub.client().publish("t", to_bytes("x"), QoS::kAtLeastOnce).ok());
  h.settle();
  ASSERT_EQ(sub.messages().size(), 1u);
  EXPECT_EQ(sub.messages()[0].qos, QoS::kAtMostOnce);  // downgraded grant
}

TEST(BrokerEdge, TeardownDrainsPoolsWithStateParkedEverywhere) {
  // Destroy the broker while sessions still hold pooled state in every
  // shape the NodePool serves: subscription entries, an unacked inflight
  // record, and messages queued for an offline persistent session. The
  // session table must drain every node back before the pool dies (the
  // audit build asserts outstanding == 0 in ~NodePool; declaration order
  // in Broker is the only thing making that true).
  {
    Harness h;
    Peer& sub = h.add_client("sub", /*clean=*/false);
    Peer& other = h.add_client("other");
    Peer& pub = h.add_client("pub");
    h.connect(sub);
    h.connect(other);
    h.connect(pub);
    ASSERT_TRUE(sub.client()
                    .subscribe({{"drain/#", QoS::kAtLeastOnce},
                                {"drain2/#", QoS::kExactlyOnce}})
                    .ok());
    ASSERT_TRUE(
        other.client().subscribe({{"drain/#", QoS::kAtLeastOnce}}).ok());
    h.settle();
    sub.kill_transport();  // persistent: queue fills while offline
    h.settle();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(pub.client()
                      .publish("drain/a", to_bytes("x"), QoS::kAtLeastOnce)
                      .ok());
    }
    // Leave "other"'s delivery unacked in flight: run the sim only long
    // enough for the PUBLISH to go out, not for the PUBACK to return.
    h.settle(kMillisecond);
    EXPECT_EQ(h.broker().session_count(), 3u);
  }  // ~Harness -> ~Broker: sessions, links, outbox, pools in order
  SUCCEED();
}

}  // namespace
}  // namespace ifot::mqtt
