// Regression tests for the encode-once / zero-copy PUBLISH fan-out and
// the QoS robustness sweep that rode along with it: bounded publish
// retries, bounded offline QoS 0 buffering, bounded inbound QoS 2 dedup
// sets, and exactly-once delivery under a PUBREC/PUBREL/PUBCOMP loss
// storm.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "tests/mqtt/harness.hpp"

namespace ifot::mqtt {
namespace {

using testing::Harness;
using testing::Peer;
using testing::SimSched;

TEST(FanOut, Qos0GroupEncodesOnceAndSharesPayload) {
  Harness h;
  Peer& pub = h.add_client("pub");
  std::vector<Peer*> subs;
  for (int i = 0; i < 5; ++i) {
    subs.push_back(&h.add_client("s" + std::to_string(i)));
  }
  h.connect(pub);
  for (Peer* s : subs) {
    h.connect(*s);
    ASSERT_TRUE(s->client().subscribe({{"f/#", QoS::kAtMostOnce}}).ok());
  }
  h.settle();
  const Bytes payload(64, 0xAB);
  ASSERT_TRUE(pub.client().publish("f/t", payload, QoS::kAtMostOnce).ok());
  h.settle();
  for (Peer* s : subs) {
    ASSERT_EQ(s->messages().size(), 1u);
    EXPECT_EQ(s->messages()[0].payload.bytes(), payload);
  }
  const Counters& c = h.broker().counters();
  // One encode -- and one payload copy, into the wire buffer -- serves
  // the whole five-subscriber group.
  EXPECT_EQ(c.get("fanout_encodes"), 1u);
  EXPECT_EQ(c.get("payload_bytes_copied"), 64u);
  EXPECT_EQ(c.get("delivered_qos0"), 5u);
  EXPECT_EQ(c.get("payload_bytes_shared"), 5u * 64u);
}

TEST(FanOut, PublishCopiesShareOnePayloadBuffer) {
  SharedPayload payload(Bytes(1024, 0x5A));
  Publish p;
  p.topic = "t";
  p.payload = payload;
  Publish per_subscriber = p;  // what route() clones per QoS 1/2 subscriber
  // Same underlying buffer, not equal copies of it.
  EXPECT_EQ(per_subscriber.payload.share().get(), payload.share().get());
  EXPECT_EQ(payload.use_count(), 3);
}

TEST(FanOut, PublishCopiesShareOneTopicBuffer) {
  Publish p;
  p.topic = "flow/building/floor3/room12/temp";
  p.payload = SharedPayload(Bytes(8, 0x11));
  Publish per_subscriber = p;  // what route() clones per QoS 1/2 subscriber
  // The topic rides the same immutable buffer as the original; cloning a
  // Publish for fan-out no longer allocates per subscriber.
  EXPECT_EQ(per_subscriber.topic.share().get(), p.topic.share().get());
  EXPECT_EQ(p.topic.use_count(), 2);
}

TEST(FanOut, Qos12FanoutSharesTopicAcrossSubscribers) {
  Harness h;
  Peer& pub = h.add_client("pub");
  Peer& s1 = h.add_client("s1");
  Peer& s2 = h.add_client("s2");
  h.connect(pub);
  h.connect(s1);
  h.connect(s2);
  ASSERT_TRUE(s1.client().subscribe({{"f/#", QoS::kAtLeastOnce}}).ok());
  ASSERT_TRUE(s2.client().subscribe({{"f/#", QoS::kAtLeastOnce}}).ok());
  h.settle();
  ASSERT_TRUE(
      pub.client().publish("f/t", Bytes(16, 0x7C), QoS::kAtLeastOnce).ok());
  h.settle();
  ASSERT_EQ(s1.messages().size(), 1u);
  ASSERT_EQ(s2.messages().size(), 1u);
  const Counters& c = h.broker().counters();
  // Each QoS 1 subscriber's queue slot shares the 3-byte topic buffer and
  // the 16-byte payload buffer...
  EXPECT_EQ(c.get("topic_bytes_shared"), 2u * 3u);
  EXPECT_EQ(c.get("payload_bytes_shared"), 2u * 16u);
  // ...and the whole group encodes ONE shared wire template: topic and
  // payload are copied into a wire buffer exactly once, not per
  // subscriber (deliveries patch the packet-id bytes in place).
  EXPECT_EQ(c.get("fanout_encodes"), 1u);
  EXPECT_EQ(c.get("topic_bytes_copied"), 3u);
  EXPECT_EQ(c.get("payload_bytes_copied"), 16u);
  EXPECT_EQ(c.get("egress_wire_templates"), 1u);
}

TEST(FanOut, Qos2ExactlyOnceUnderAckLossStorm) {
  sim::Simulator sim;
  SimSched sched(sim);
  Broker broker(sched);
  constexpr LinkId kPub = 1;
  constexpr LinkId kSub = 2;
  // The storm: the publisher's first PUBRELs vanish, the broker's first
  // PUBRECs and PUBCOMPs vanish. Lost PUBRECs force DUP PUBLISH
  // redeliveries (exercising broker dedup); lost PUBRELs/PUBCOMPs leave
  // the handshake half-open until retries drain it.
  int drop_pubrel = 3;
  int drop_pubrec = 2;
  int drop_pubcomp = 3;

  ClientConfig pc;
  pc.client_id = "pub";
  pc.retry_interval = from_millis(100);
  Client pub(sched, pc, [&](const Bytes& b) {
    auto pkt = decode(BytesView(b));
    ASSERT_TRUE(pkt.ok());
    if (std::holds_alternative<Pubrel>(pkt.value()) && drop_pubrel > 0) {
      --drop_pubrel;
      return;
    }
    sim.schedule_after(kMillisecond,
                       [&broker, b] { broker.on_link_data(kPub, BytesView(b)); });
  });
  broker.on_link_open(
      kPub,
      [&](const Bytes& b) {
        auto pkt = decode(BytesView(b));
        ASSERT_TRUE(pkt.ok());
        if (std::holds_alternative<Pubrec>(pkt.value()) && drop_pubrec > 0) {
          --drop_pubrec;
          return;
        }
        if (std::holds_alternative<Pubcomp>(pkt.value()) && drop_pubcomp > 0) {
          --drop_pubcomp;
          return;
        }
        sim.schedule_after(kMillisecond,
                           [&pub, b] { pub.on_data(BytesView(b)); });
      },
      [] {});

  ClientConfig sc;
  sc.client_id = "sub";
  Client sub(sched, sc, [&](const Bytes& b) {
    sim.schedule_after(kMillisecond,
                       [&broker, b] { broker.on_link_data(kSub, BytesView(b)); });
  });
  broker.on_link_open(
      kSub,
      [&](const Bytes& b) {
        sim.schedule_after(kMillisecond,
                           [&sub, b] { sub.on_data(BytesView(b)); });
      },
      [] {});
  int received = 0;
  sub.set_on_message([&](const Publish& p) {
    ++received;
    EXPECT_EQ(p.qos, QoS::kExactlyOnce);
  });

  pub.on_transport_open();
  sub.on_transport_open();
  sim.run_until(sim.now() + kSecond);
  ASSERT_TRUE(pub.connected());
  ASSERT_TRUE(sub.connected());
  ASSERT_TRUE(sub.subscribe({{"q2", QoS::kExactlyOnce}}).ok());
  sim.run_until(sim.now() + kSecond);

  std::optional<Status> result;
  ASSERT_TRUE(pub.publish("q2", to_bytes("storm"), QoS::kExactlyOnce, false,
                          [&](Status s) { result = std::move(s); })
                  .ok());
  sim.run_until(sim.now() + 30 * kSecond);

  // All drops were consumed, the handshake completed, and the message
  // arrived exactly once despite the DUP redeliveries.
  EXPECT_EQ(drop_pubrel, 0);
  EXPECT_EQ(drop_pubrec, 0);
  EXPECT_EQ(drop_pubcomp, 0);
  EXPECT_EQ(received, 1);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok());
  EXPECT_GE(broker.counters().get("qos2_duplicates"), 1u);
  // No half-open handshake residue anywhere: every dedup entry was
  // released by the (eventually delivered) PUBREL.
  EXPECT_EQ(pub.inflight_count(), 0u);
  EXPECT_EQ(broker.inbound_qos2_backlog(), 0u);
  EXPECT_EQ(pub.inbound_qos2_backlog(), 0u);
  EXPECT_EQ(sub.inbound_qos2_backlog(), 0u);
}

TEST(FanOut, RetryExhaustionFailsThePublishCallback) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "exhausted";
  cc.retry_interval = from_millis(50);
  cc.max_retries = 3;
  Client client(sched, cc, [](const Bytes&) {});  // broker never answers
  client.on_transport_open();
  client.on_data(
      BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  ASSERT_TRUE(client.connected());
  std::optional<Status> result;
  ASSERT_TRUE(client.publish("t", to_bytes("x"), QoS::kAtLeastOnce, false,
                             [&](Status s) { result = std::move(s); })
                  .ok());
  sim.run_until(sim.now() + 10 * kSecond);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok());
  EXPECT_EQ(client.counters().get("retry_exhausted"), 1u);
  EXPECT_EQ(client.inflight_count(), 0u);
}

TEST(FanOut, OfflineQos0BufferShedsOldestAtBound) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "buffered";
  cc.max_pending_qos0 = 4;
  std::vector<Packet> sent;
  StreamDecoder splitter;  // the connect-time flush batches its frames
  Client client(sched, cc, [&](const Bytes& b) {
    splitter.feed(BytesView(b));
    while (true) {
      auto p = splitter.next();
      ASSERT_TRUE(p.ok());
      if (!p.value().has_value()) break;
      sent.push_back(std::move(p).value().value());
    }
  });
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    .publish("t", to_bytes("m" + std::to_string(i)),
                             QoS::kAtMostOnce)
                    .ok());
  }
  EXPECT_EQ(client.pending_qos0_count(), 4u);
  EXPECT_EQ(client.counters().get("qos0_dropped"), 6u);
  // Connecting flushes the newest four; the oldest six were shed.
  client.on_transport_open();
  client.on_data(
      BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  std::vector<std::string> flushed;
  for (const auto& p : sent) {
    if (const auto* pub = std::get_if<Publish>(&p)) {
      flushed.push_back(to_string(BytesView(pub->payload)));
    }
  }
  ASSERT_EQ(flushed.size(), 4u);
  EXPECT_EQ(flushed.front(), "m6");
  EXPECT_EQ(flushed.back(), "m9");
  EXPECT_EQ(client.pending_qos0_count(), 0u);
}

TEST(FanOut, ClientInboundQos2DedupSetIsBounded) {
  sim::Simulator sim;
  SimSched sched(sim);
  ClientConfig cc;
  cc.client_id = "dedup";
  cc.max_inbound_qos2 = 4;
  Client client(sched, cc, [](const Bytes&) {});
  int delivered = 0;
  client.set_on_message([&](const Publish&) { ++delivered; });
  client.on_transport_open();
  client.on_data(
      BytesView(encode(Packet{Connack{false, ConnectCode::kAccepted}})));
  // A broker whose PUBRELs are all lost parks ten ids in the dedup set;
  // the bound keeps only the newest four instead of leaking forever.
  for (std::uint16_t pid = 1; pid <= 10; ++pid) {
    Publish p;
    p.topic = "q2";
    p.payload = to_bytes("x");
    p.qos = QoS::kExactlyOnce;
    p.packet_id = pid;
    client.on_data(BytesView(encode(Packet{std::move(p)})));
  }
  EXPECT_EQ(delivered, 10);
  EXPECT_EQ(client.inbound_qos2_backlog(), 4u);
  EXPECT_EQ(client.counters().get("qos2_dedup_evictions"), 6u);
}

TEST(FanOut, BrokerInboundQos2DedupSetIsBounded) {
  sim::Simulator sim;
  SimSched sched(sim);
  BrokerConfig cfg;
  cfg.max_inbound_qos2_per_session = 4;
  Broker broker(sched, cfg);
  broker.on_link_open(1, [](const Bytes&) {}, [] {});
  Connect c;
  c.client_id = "raw";
  broker.on_link_data(1, BytesView(encode(Packet{c})));
  // A publisher that never completes PUBREL parks ids in the session's
  // dedup set; the per-session bound evicts the oldest.
  for (std::uint16_t pid = 1; pid <= 10; ++pid) {
    Publish p;
    p.topic = "t";
    p.payload = to_bytes("x");
    p.qos = QoS::kExactlyOnce;
    p.packet_id = pid;
    broker.on_link_data(1, BytesView(encode(Packet{std::move(p)})));
  }
  EXPECT_EQ(broker.inbound_qos2_backlog(), 4u);
  EXPECT_EQ(broker.counters().get("qos2_dedup_evictions"), 6u);
}

}  // namespace
}  // namespace ifot::mqtt
