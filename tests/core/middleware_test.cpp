#include "core/middleware.hpp"

#include <gtest/gtest.h>

namespace ifot::core {
namespace {

constexpr const char* kMiniRecipe = R"(
recipe mini
node src : sensor { sensor = "temp", rate_hz = 10, model = "random_walk" }
node flt : filter { field = "value", op = "ge", value = -1e9 }
node act : actuator { actuator = "fan" }
edge src -> flt -> act
)";

Middleware& build_three(Middleware& mw) {
  mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_worker", .actuators = {"fan"}});
  return mw;
}

TEST(Middleware, StartRequiresBroker) {
  Middleware mw;
  mw.add_module({.name = "only"});
  auto s = mw.start();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::kState);
}

TEST(Middleware, DeployBeforeStartFails) {
  Middleware mw;
  build_three(mw);
  auto r = mw.deploy(kMiniRecipe);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kState);
}

TEST(Middleware, DoubleStartFails) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  EXPECT_FALSE(mw.start().ok());
}

TEST(Middleware, DeployParsesSplitsAndPlaces) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  auto id = mw.deploy(kMiniRecipe);
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  ASSERT_EQ(mw.deployments().size(), 1u);
  const auto& d = mw.deployments()[0];
  EXPECT_EQ(d.graph.tasks.size(), 3u);
  // Sensor on the sensor module, actuator on the worker.
  for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
    const auto& node = d.graph.recipe.nodes[d.graph.tasks[ti].recipe_node];
    if (node.type == "sensor") {
      EXPECT_EQ(d.placement.task_module[ti],
                mw.module_by_name("m_sensor")->id());
    }
    if (node.type == "actuator") {
      EXPECT_EQ(d.placement.task_module[ti],
                mw.module_by_name("m_worker")->id());
    }
  }
  // The broker module accepted no tasks.
  EXPECT_EQ(mw.module_by_name("m_broker")->task_count(), 0u);
}

TEST(Middleware, DeployRejectsBadRecipeText) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  EXPECT_FALSE(mw.deploy("this is not a recipe").ok());
}

TEST(Middleware, DeployRejectsUnknownAllocator) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  auto r = mw.deploy(kMiniRecipe, "oracle");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(Middleware, DeployFailsWhenDeviceMissing) {
  Middleware mw;
  mw.add_module({.name = "m1", .broker = true});
  mw.add_module({.name = "m2"});
  ASSERT_TRUE(mw.start().ok());
  auto r = mw.deploy(kMiniRecipe);  // nobody hosts "temp" or "fan"
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, Errc::kNotFound);
}

TEST(Middleware, EndToEndFlowDeliversToActuator) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kMiniRecipe).ok());
  mw.start_flows();
  mw.run_for(3 * kSecond);
  mw.stop_flows();
  auto* fan = mw.module_by_name("m_worker")->actuator("fan");
  ASSERT_NE(fan, nullptr);
  EXPECT_GT(fan->count(), 20u);  // ~10 Hz for 3 s
}

TEST(Middleware, CompletionHookSeesEndToEndLatency) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kMiniRecipe).ok());
  LatencyRecorder lat;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime now) {
    if (t.name == "act") lat.record(now - s.sensed_at);
  });
  mw.start_flows();
  mw.run_for(2 * kSecond);
  ASSERT_GT(lat.count(), 10u);
  EXPECT_GT(lat.avg_ms(), 1.0);    // network + CPU cost is nonzero
  EXPECT_LT(lat.avg_ms(), 100.0);  // and small at 10 Hz (real-time claim)
}

TEST(Middleware, MultipleRecipesShareTheFabric) {
  Middleware mw;
  mw.add_module({.name = "m_sensor", .sensors = {"temp", "light"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_worker", .actuators = {"fan", "lamp"}});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kMiniRecipe).ok());
  auto second = mw.deploy(R"(
recipe second
node src : sensor { sensor = "light", rate_hz = 5, model = "waveform" }
node act : actuator { actuator = "lamp" }
edge src -> act
)");
  ASSERT_TRUE(second.ok()) << second.error().to_string();
  EXPECT_EQ(mw.deployments().size(), 2u);
  mw.start_flows();
  mw.run_for(2 * kSecond);
  EXPECT_GT(mw.module_by_name("m_worker")->actuator("fan")->count(), 10u);
  EXPECT_GT(mw.module_by_name("m_worker")->actuator("lamp")->count(), 5u);
}

TEST(Middleware, RecipeIdsAreDistinct) {
  Middleware mw;
  mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_worker", .actuators = {"fan"}});
  ASSERT_TRUE(mw.start().ok());
  auto a = mw.deploy(kMiniRecipe);
  auto b = mw.deploy(kMiniRecipe);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value(), b.value());
}

TEST(Middleware, DescribeListsPlacements) {
  Middleware mw;
  build_three(mw);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kMiniRecipe).ok());
  const std::string text = mw.describe(mw.deployments()[0]);
  EXPECT_NE(text.find("src"), std::string::npos);
  EXPECT_NE(text.find("m_sensor"), std::string::npos);
  EXPECT_NE(text.find("act"), std::string::npos);
}

TEST(Middleware, RemoteModuleIsReachable) {
  Middleware mw;
  mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
  net::WanConfig wan;
  wan.propagation = from_millis(40);
  mw.add_remote_module(
      {.name = "cloud", .actuators = {"fan"}, .broker = true}, wan);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe remote
node src : sensor { sensor = "temp", rate_hz = 5, model = "constant" }
node act : actuator { actuator = "fan" }
edge src -> act
)").ok());
  LatencyRecorder lat;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime now) {
    if (t.name == "act") lat.record(now - s.sensed_at);
  });
  mw.start_flows();
  mw.run_for(2 * kSecond);
  ASSERT_GT(lat.count(), 5u);
  // One WAN hop (sensor -> cloud broker, actuator local to the cloud):
  // latency must exceed the 40 ms propagation.
  EXPECT_GT(lat.avg_ms(), 40.0);
}

TEST(Middleware, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Middleware mw;
    mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
    mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
    mw.add_module({.name = "m_worker", .actuators = {"fan"}});
    EXPECT_TRUE(mw.start().ok());
    EXPECT_TRUE(mw.deploy(kMiniRecipe).ok());
    LatencyRecorder lat;
    mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                               SimTime now) {
      if (t.name == "act") lat.record(now - s.sensed_at);
    });
    mw.start_flows();
    mw.run_for(2 * kSecond);
    return lat.samples();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace ifot::core
