// End-to-end property tests over the whole middleware stack: delivery
// semantics per QoS level under a lossy wireless LAN, determinism, and
// latency monotonicity with offered load.
#include <gtest/gtest.h>

#include "core/middleware.hpp"

namespace ifot::core {
namespace {

constexpr const char* kPipeline = R"(
recipe lossy
node src : sensor { sensor = "temp", rate_hz = 10, model = "constant" }
node act : actuator { actuator = "fan" }
edge src -> act
)";

struct RunResult {
  std::uint64_t emitted = 0;
  std::uint64_t actuated = 0;
  std::vector<SimDuration> latencies;
};

RunResult run_pipeline(double loss, mqtt::QoS qos, std::uint64_t seed,
                       SimDuration duration = 10 * kSecond) {
  MiddlewareConfig cfg;
  cfg.lan.loss_prob = loss;
  cfg.flow_qos = qos;
  cfg.seed = seed;
  Middleware mw(cfg);
  mw.add_module({.name = "m_src", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_act", .actuators = {"fan"}});
  EXPECT_TRUE(mw.start().ok());
  EXPECT_TRUE(mw.deploy(kPipeline).ok());
  RunResult result;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime now) {
    if (t.name == "act") {
      ++result.actuated;
      result.latencies.push_back(now - s.sensed_at);
    }
  });
  mw.start_flows();
  mw.run_for(duration);
  mw.stop_flows();
  mw.run_for(5 * kSecond);  // drain retransmissions
  result.emitted =
      mw.module_by_name("m_src")->counters().get("samples_emitted");
  return result;
}

class E2eProperty : public ::testing::TestWithParam<int> {};

TEST_P(E2eProperty, LosslessQos0DeliversEverything) {
  const auto r = run_pipeline(0.0, mqtt::QoS::kAtMostOnce,
                              static_cast<std::uint64_t>(GetParam()));
  EXPECT_GT(r.emitted, 90u);
  EXPECT_EQ(r.actuated, r.emitted);
}

TEST_P(E2eProperty, LossyQos0NeverDuplicates) {
  const auto r = run_pipeline(0.25, mqtt::QoS::kAtMostOnce,
                              static_cast<std::uint64_t>(GetParam()));
  EXPECT_LE(r.actuated, r.emitted);
}

TEST_P(E2eProperty, LossyQos1DeliversAtLeastOnce) {
  // The transport retries frames (up to 5 attempts) and MQTT QoS 1
  // redelivers unacknowledged messages, so at 25% frame loss every sample
  // should make it through at least once.
  const auto r = run_pipeline(0.25, mqtt::QoS::kAtLeastOnce,
                              static_cast<std::uint64_t>(GetParam()));
  EXPECT_GE(r.actuated, r.emitted - 2);  // tail may still be inflight
}

TEST_P(E2eProperty, LatencyMonotoneInLoss) {
  // More loss => more retransmissions => higher average latency.
  const auto clean = run_pipeline(0.0, mqtt::QoS::kAtMostOnce,
                                  static_cast<std::uint64_t>(GetParam()));
  const auto lossy = run_pipeline(0.4, mqtt::QoS::kAtMostOnce,
                                  static_cast<std::uint64_t>(GetParam()));
  auto avg = [](const std::vector<SimDuration>& v) {
    double acc = 0;
    for (auto d : v) acc += static_cast<double>(d);
    return v.empty() ? 0.0 : acc / static_cast<double>(v.size());
  };
  EXPECT_GT(avg(lossy.latencies), avg(clean.latencies));
}

TEST_P(E2eProperty, WholeStackDeterministicPerSeed) {
  const auto a = run_pipeline(0.2, mqtt::QoS::kAtLeastOnce,
                              static_cast<std::uint64_t>(GetParam()));
  const auto b = run_pipeline(0.2, mqtt::QoS::kAtLeastOnce,
                              static_cast<std::uint64_t>(GetParam()));
  EXPECT_EQ(a.actuated, b.actuated);
  EXPECT_EQ(a.latencies, b.latencies);
}

INSTANTIATE_TEST_SUITE_P(Seeds, E2eProperty, ::testing::Range(1, 6));

TEST(E2eQos2, ExactlyOnceUnderLoss) {
  const auto r = run_pipeline(0.25, mqtt::QoS::kExactlyOnce, 77,
                              8 * kSecond);
  // Exactly-once: no duplicates even though the link retransmits.
  EXPECT_GE(r.actuated, r.emitted - 2);
  EXPECT_LE(r.actuated, r.emitted);
}

TEST(E2eLatency, GrowsWithOfferedLoadOnSaturatedModule) {
  // Monotonicity: average latency at an over-capacity rate exceeds the
  // flat-region latency (the essence of Tables II/III).
  auto at_rate = [](double rate) {
    MiddlewareConfig cfg;
    Middleware mw(cfg);
    mw.add_module({.name = "m_src", .sensors = {"temp"}});
    mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
    mw.add_module({.name = "m_worker"});
    mw.add_module({.name = "m_act", .actuators = {"fan"}});
    EXPECT_TRUE(mw.start().ok());
    const std::string recipe =
        "recipe load\n"
        "node src : sensor { sensor = \"temp\", rate_hz = " +
        std::to_string(rate) +
        ", model = \"activity\" }\n"
        "node tr : train { algorithm = \"arow\", pin = \"m_worker\" }\n"
        "edge src -> tr\n";
    EXPECT_TRUE(mw.deploy(recipe).ok());
    LatencyRecorder lat;
    mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                               SimTime now) {
      if (t.name == "tr") lat.record(now - s.sensed_at);
    });
    mw.start_flows();
    mw.run_for(8 * kSecond);
    return lat.avg_ms();
  };
  const double low = at_rate(10);
  const double mid = at_rate(40);
  const double high = at_rate(100);
  EXPECT_LT(low, mid + 1.0);
  EXPECT_GT(high, mid);
  EXPECT_GT(high, 3 * low);
}

}  // namespace
}  // namespace ifot::core
