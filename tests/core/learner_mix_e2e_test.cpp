// Learner-side MIX through the full fabric: sharded Learning tasks on
// separate modules exchange models over the broker and adopt the
// average (the paper's Managing class "manages the cooperative operation
// for distributed processing").
#include <gtest/gtest.h>

#include "core/middleware.hpp"
#include "node/tasks.hpp"

namespace ifot::core {
namespace {

std::vector<const node::TrainTask*> train_tasks(Middleware& mw) {
  std::vector<const node::TrainTask*> out;
  for (NodeId id : mw.module_ids()) {
    for (const auto& dt : mw.module(id).tasks()) {
      if (const auto* t = dynamic_cast<const node::TrainTask*>(dt.task.get())) {
        out.push_back(t);
      }
    }
  }
  return out;
}

TEST(LearnerMixE2e, ShardsExchangeAndAdoptModels) {
  Middleware mw;
  mw.add_module({.name = "m_src", .sensors = {"acc"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "w1"});
  mw.add_module({.name = "w2"});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe coop
node src : sensor { sensor = "acc", rate_hz = 20, model = "activity" }
node tr : train { algorithm = "arow", parallelism = 2, mix = true, publish_every = 8 }
edge src -> tr
)").ok());
  mw.start_flows();
  mw.run_for(20 * kSecond);

  const auto trainers = train_tasks(mw);
  ASSERT_EQ(trainers.size(), 2u);
  for (const auto* t : trainers) {
    // Each shard received sibling models and applied MIX.
    EXPECT_GT(t->mixes_applied(), 3u) << t->spec().name;
    // After mixing, every shard knows every activity label even though
    // each saw only half the (sequence-partitioned) stream.
    EXPECT_GE(t->classifier().model().label_count(), 3u) << t->spec().name;
  }
}

TEST(LearnerMixE2e, WithoutMixShardsStayIsolated) {
  Middleware mw;
  mw.add_module({.name = "m_src", .sensors = {"acc"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "w1"});
  mw.add_module({.name = "w2"});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe solo
node src : sensor { sensor = "acc", rate_hz = 20, model = "activity" }
node tr : train { algorithm = "arow", parallelism = 2, publish_every = 8 }
edge src -> tr
)").ok());
  mw.start_flows();
  mw.run_for(10 * kSecond);
  for (const auto* t : train_tasks(mw)) {
    EXPECT_EQ(t->mixes_applied(), 0u) << t->spec().name;
  }
}

}  // namespace
}  // namespace ifot::core
