// Failure injection and failover: the dynamic join/leave support the
// paper names as future work, built on MQTT wills (status topics) and
// re-running task assignment over the surviving modules.
#include <gtest/gtest.h>

#include "core/middleware.hpp"
#include "mgmt/status_board.hpp"

namespace ifot::core {
namespace {

constexpr const char* kRecipe = R"(
recipe monitored
node src : sensor { sensor = "temp", rate_hz = 10, model = "random_walk" }
node flt : filter { field = "value", op = "ge", value = -1e9, pin = "worker_1" }
node act : actuator { actuator = "fan" }
edge src -> flt -> act
)";

MiddlewareConfig fast_failure_config() {
  MiddlewareConfig cfg;
  cfg.keep_alive_s = 2;  // will fires after ~3 s of silence
  return cfg;
}

struct Fabric {
  explicit Fabric(MiddlewareConfig cfg = fast_failure_config()) : mw(cfg) {
    sensor = mw.add_module({.name = "sensor_mod", .sensors = {"temp"}});
    broker = mw.add_module({.name = "broker_mod", .broker = true,
                            .accept_tasks = false});
    w1 = mw.add_module({.name = "worker_1"});
    w2 = mw.add_module({.name = "worker_2", .actuators = {"fan"}});
    EXPECT_TRUE(mw.start().ok());
  }
  Middleware mw;
  NodeId sensor, broker, w1, w2;
};

TEST(Failover, StatusAnnouncedOnline) {
  Fabric f;
  std::vector<std::string> statuses;
  ASSERT_TRUE(f.mw.watch(f.w2, "ifot/status/+",
                         [&](const std::string& topic, const Bytes& p) {
                           statuses.push_back(topic + "=" +
                                              to_string(BytesView(p)));
                         })
                  .ok());
  f.mw.run_for(kSecond);
  // Retained "online" for every module (including the watcher itself).
  ASSERT_GE(statuses.size(), 4u);
  for (const auto& s : statuses) {
    EXPECT_NE(s.find("=online"), std::string::npos) << s;
  }
}

TEST(Failover, WillFiresAfterCrash) {
  Fabric f;
  std::vector<std::string> offline;
  ASSERT_TRUE(f.mw.watch(f.w2, "ifot/status/worker_1",
                         [&](const std::string&, const Bytes& p) {
                           offline.push_back(to_string(BytesView(p)));
                         })
                  .ok());
  f.mw.run_for(kSecond);
  offline.clear();  // drop the retained "online"
  ASSERT_TRUE(f.mw.fail_module(f.w1).ok());
  f.mw.run_for(10 * kSecond);  // > 1.5 * keep-alive
  ASSERT_EQ(offline.size(), 1u);
  EXPECT_EQ(offline[0], "offline");
}

TEST(Failover, CannotFailBroker) {
  Fabric f;
  auto s = f.mw.fail_module(f.broker);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.error().code, Errc::kUnsupported);
}

TEST(Failover, UnknownModuleRejected) {
  Fabric f;
  EXPECT_FALSE(f.mw.fail_module(NodeId{999}).ok());
}

TEST(Failover, FlowStopsOnCrashAndResumesAfterRedeploy) {
  Fabric f;
  ASSERT_TRUE(f.mw.deploy(kRecipe).ok());  // flt pinned on worker_1
  f.mw.start_flows();
  f.mw.run_for(2 * kSecond);
  auto* fan = f.mw.module_by_name("worker_2")->actuator("fan");
  const std::size_t before = fan->count();
  EXPECT_GT(before, 10u);

  // Crash the module running the filter: the pipeline is severed.
  ASSERT_TRUE(f.mw.fail_module(f.w1).ok());
  f.mw.run_for(2 * kSecond);
  const std::size_t during = fan->count();
  EXPECT_LE(during, before + 3);  // only in-flight samples drained

  // Failover: the filter moves to a surviving module and flow resumes.
  ASSERT_TRUE(f.mw.redeploy_failed(f.w1).ok());
  f.mw.run_for(2 * kSecond);
  EXPECT_GT(fan->count(), during + 10);
  // It must not have been re-placed on the dead module.
  const auto& d = f.mw.deployments()[0];
  for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
    EXPECT_NE(d.placement.task_module[ti], f.w1);
  }
}

TEST(Failover, SensorTaskFailsOverToModuleWithSameDevice) {
  MiddlewareConfig cfg = fast_failure_config();
  Middleware mw(cfg);
  const NodeId s1 = mw.add_module({.name = "s1", .sensors = {"temp"}});
  mw.add_module({.name = "s2", .sensors = {"temp"}});  // spare with device
  mw.add_module({.name = "b", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "w", .actuators = {"fan"}});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe spare
node src : sensor { sensor = "temp", rate_hz = 10, model = "constant" }
node act : actuator { actuator = "fan" }
edge src -> act
)").ok());
  mw.start_flows();
  mw.run_for(kSecond);
  auto* fan = mw.module_by_name("w")->actuator("fan");
  const auto before = fan->count();
  ASSERT_GT(before, 0u);

  ASSERT_TRUE(mw.fail_module(s1).ok());
  ASSERT_TRUE(mw.redeploy_failed(s1).ok());
  mw.run_for(2 * kSecond);
  EXPECT_GT(fan->count(), before + 10);
  // The sensor task now runs on s2.
  EXPECT_EQ(mw.module_by_name("s2")->task_count(), 1u);
}

TEST(Failover, SensorFailoverImpossibleWithoutSpareDevice) {
  Fabric f;
  ASSERT_TRUE(f.mw.deploy(kRecipe).ok());
  ASSERT_TRUE(f.mw.fail_module(f.sensor).ok());
  auto s = f.mw.redeploy_failed(f.sensor);
  ASSERT_FALSE(s.ok());  // no other module hosts "temp"
  EXPECT_EQ(s.error().code, Errc::kNotFound);
}

TEST(StatusBoard, RendersModulesAndBroker) {
  Fabric f;
  ASSERT_TRUE(f.mw.deploy(kRecipe).ok());
  f.mw.start_flows();
  f.mw.run_for(kSecond);
  const std::string board = mgmt::fabric_status(f.mw);
  EXPECT_NE(board.find("sensor_mod"), std::string::npos);
  EXPECT_NE(board.find("broker"), std::string::npos);
  EXPECT_NE(board.find("flt"), std::string::npos);
  EXPECT_NE(board.find("up"), std::string::npos);
  ASSERT_TRUE(f.mw.fail_module(f.w1).ok());
  EXPECT_NE(mgmt::fabric_status(f.mw).find("FAILED"), std::string::npos);
  const std::string placements = mgmt::placement_board(f.mw);
  EXPECT_NE(placements.find("monitored"), std::string::npos);
}

TEST(SysStats, BrokerPublishesCounters) {
  MiddlewareConfig cfg = fast_failure_config();
  cfg.broker.sys_interval = kSecond;
  Middleware mw(cfg);
  mw.add_module({.name = "s", .sensors = {"temp"}});
  mw.add_module({.name = "b", .broker = true, .accept_tasks = false});
  const NodeId w = mw.add_module({.name = "w", .actuators = {"fan"}});
  ASSERT_TRUE(mw.start().ok());
  std::map<std::string, std::string> stats;
  ASSERT_TRUE(mw.watch(w, "$SYS/broker/#",
                       [&](const std::string& topic, const Bytes& p) {
                         stats[topic] = to_string(BytesView(p));
                       })
                  .ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe sys
node src : sensor { sensor = "temp", rate_hz = 20, model = "constant" }
node act : actuator { actuator = "fan" }
edge src -> act
)").ok());
  mw.start_flows();
  mw.run_for(5 * kSecond);
  ASSERT_TRUE(stats.count("$SYS/broker/clients/connected"));
  EXPECT_EQ(stats["$SYS/broker/clients/connected"], "3");
  ASSERT_TRUE(stats.count("$SYS/broker/messages/received"));
  EXPECT_GT(std::stoull(stats["$SYS/broker/messages/received"]), 50u);
  ASSERT_TRUE(stats.count("$SYS/broker/retained/count"));
}

}  // namespace
}  // namespace ifot::core
