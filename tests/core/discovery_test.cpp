// Flow discovery and secondary use: the paper's future-work "search
// function for data streams" plus its core goal (b): contents produced by
// one application are distributed for secondary/tertiary use by others.
#include <gtest/gtest.h>

#include "core/middleware.hpp"
#include "mgmt/flow_directory.hpp"

namespace ifot::core {
namespace {

constexpr const char* kProducer = R"(
recipe producer
node src  : sensor { sensor = "temp", rate_hz = 10, model = "random_walk" }
node trend : window { size = 4, aggregate = "mean" }
node fan  : actuator { actuator = "fan" }
edge src -> trend -> fan
)";

struct Fabric {
  Fabric() {
    mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
    mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
    worker = mw.add_module(
        {.name = "m_worker", .actuators = {"fan", "logger"}});
    EXPECT_TRUE(mw.start().ok());
  }
  Middleware mw;
  NodeId worker;
};

TEST(FlowDirectory, ListsDeployedFlows) {
  Fabric f;
  mgmt::FlowDirectory dir;
  ASSERT_TRUE(dir.attach(f.mw, f.worker).ok());
  ASSERT_TRUE(f.mw.deploy(kProducer).ok());
  f.mw.run_for(kSecond);
  // src and trend announce; the actuator (sink) does not.
  EXPECT_EQ(dir.size(), 2u);
  EXPECT_EQ(dir.topic_of("producer/src"), "ifot/producer/src");
  EXPECT_EQ(dir.topic_of("producer/trend"), "ifot/producer/trend");
  EXPECT_EQ(dir.topic_of("producer/fan"), "");
  const auto sensors = dir.by_type("sensor");
  ASSERT_EQ(sensors.size(), 1u);
  EXPECT_EQ(sensors[0].module, "m_sensor");
  EXPECT_NE(dir.to_string().find("producer/trend"), std::string::npos);
}

TEST(FlowDirectory, LateWatcherCatchesUpViaRetained) {
  Fabric f;
  ASSERT_TRUE(f.mw.deploy(kProducer).ok());
  f.mw.run_for(kSecond);
  // Attach the watcher only after deployment: retained announcements
  // bring it up to date.
  mgmt::FlowDirectory dir;
  ASSERT_TRUE(dir.attach(f.mw, f.worker).ok());
  f.mw.run_for(kSecond);
  EXPECT_EQ(dir.size(), 2u);
}

TEST(FlowDirectory, UndeployRetractsEntries) {
  Fabric f;
  mgmt::FlowDirectory dir;
  ASSERT_TRUE(dir.attach(f.mw, f.worker).ok());
  auto id = f.mw.deploy(kProducer);
  ASSERT_TRUE(id.ok());
  f.mw.run_for(kSecond);
  ASSERT_EQ(dir.size(), 2u);
  ASSERT_TRUE(f.mw.undeploy(id.value()).ok());
  f.mw.run_for(kSecond);
  EXPECT_EQ(dir.size(), 0u);
  EXPECT_TRUE(f.mw.deployments().empty());
}

TEST(Undeploy, StopsFlowsAndFreesSubscriptions) {
  Fabric f;
  auto id = f.mw.deploy(kProducer);
  ASSERT_TRUE(id.ok());
  f.mw.start_flows();
  f.mw.run_for(2 * kSecond);
  auto* fan = f.mw.module_by_name("m_worker")->actuator("fan");
  ASSERT_GT(fan->count(), 0u);
  ASSERT_TRUE(f.mw.undeploy(id.value()).ok());
  const auto count = fan->count();
  f.mw.run_for(2 * kSecond);
  EXPECT_LE(fan->count(), count + 2);  // only in-flight drains
  EXPECT_EQ(f.mw.module_by_name("m_sensor")->task_count(), 0u);
}

TEST(Undeploy, UnknownIdRejected) {
  Fabric f;
  EXPECT_FALSE(f.mw.undeploy(RecipeId{777}).ok());
}

TEST(Tap, SecondApplicationConsumesFirstApplicationsFlow) {
  Fabric f;
  ASSERT_TRUE(f.mw.deploy(kProducer).ok());
  // Discover the producer's windowed flow, then tap it from a second,
  // independently deployed application.
  mgmt::FlowDirectory dir;
  ASSERT_TRUE(dir.attach(f.mw, f.worker).ok());
  f.mw.run_for(kSecond);
  const std::string topic = dir.topic_of("producer/trend");
  ASSERT_FALSE(topic.empty());

  const std::string consumer = R"(
recipe consumer
node feed : tap { topic = ")" + topic + R"(" }
node log  : actuator { actuator = "logger" }
edge feed -> log
)";
  ASSERT_TRUE(f.mw.deploy(consumer).ok());
  f.mw.start_flows();
  f.mw.run_for(4 * kSecond);
  auto* fan = f.mw.module_by_name("m_worker")->actuator("fan");
  auto* logger = f.mw.module_by_name("m_worker")->actuator("logger");
  // Both applications see the same (windowed) stream.
  EXPECT_GT(logger->count(), 3u);
  EXPECT_NEAR(static_cast<double>(logger->count()),
              static_cast<double>(fan->count()), 3.0);
  // Samples in the consumer preserve the original sensing timestamps.
  for (const auto& rec : logger->records()) {
    EXPECT_GT(rec.at, rec.sensed_at);
  }
}

TEST(Tap, RecipeRequiresTopicParam) {
  Fabric f;
  auto r = f.mw.deploy(R"(
recipe broken
node feed : tap { }
node log : actuator { actuator = "logger" }
edge feed -> log
)");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("topic"), std::string::npos);
}

}  // namespace
}  // namespace ifot::core
