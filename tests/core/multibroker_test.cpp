// Multi-broker fabrics: flows are assigned to brokers by the recipe's
// `broker = N` parameter or a stable topic hash; management-plane traffic
// stays on the primary broker. This is the broker-decentralization path
// the 80 Hz scalability result motivates.
#include <gtest/gtest.h>

#include "core/middleware.hpp"
#include "mgmt/status_board.hpp"

namespace ifot::core {
namespace {

struct TwoBrokerFabric {
  TwoBrokerFabric() {
    mw.add_module({.name = "m_a", .sensors = {"s_a"}});
    mw.add_module({.name = "m_b", .sensors = {"s_b"}});
    b1 = mw.add_module({.name = "broker_1", .broker = true,
                        .accept_tasks = false});
    b2 = mw.add_module({.name = "broker_2", .broker = true,
                        .accept_tasks = false});
    worker = mw.add_module({.name = "m_w", .actuators = {"out"}});
    EXPECT_TRUE(mw.start().ok());
  }
  Middleware mw;
  NodeId b1, b2, worker;
};

constexpr const char* kTwoFlows = R"(
recipe twoflows
node src_a : sensor { sensor = "s_a", rate_hz = 10, model = "constant", broker = 0 }
node src_b : sensor { sensor = "s_b", rate_hz = 10, model = "constant", broker = 1 }
# Pin the merge away from the sensor modules so both flows must cross
# their assigned brokers (colocated consumers would use the local path).
node m : merge { pin = "m_w" }
node act : actuator { actuator = "out" }
edge src_a -> m
edge src_b -> m
edge m -> act
)";

TEST(MultiBroker, EveryModuleConnectsToAllBrokers) {
  TwoBrokerFabric f;
  EXPECT_EQ(f.mw.broker_modules().size(), 2u);
  for (NodeId id : f.mw.module_ids()) {
    EXPECT_EQ(f.mw.module(id).client_count(), 2u);
  }
  // Each broker sees a session from all 5 modules.
  EXPECT_EQ(f.mw.module(f.b1).broker()->connected_count(), 5u);
  EXPECT_EQ(f.mw.module(f.b2).broker()->connected_count(), 5u);
}

TEST(MultiBroker, ExplicitAssignmentSplitsTraffic) {
  TwoBrokerFabric f;
  ASSERT_TRUE(f.mw.deploy(kTwoFlows).ok());
  f.mw.start_flows();
  f.mw.run_for(5 * kSecond);
  f.mw.stop_flows();
  auto* out = f.mw.module_by_name("m_w")->actuator("out");
  EXPECT_GT(out->count(), 80u);  // both 10 Hz flows arrive
  // Both brokers routed flow samples (src_a on broker_1, src_b on
  // broker_2); each routed ~50, far above the management-only baseline.
  const auto r1 = f.mw.module(f.b1).broker()->counters().get("routed");
  const auto r2 = f.mw.module(f.b2).broker()->counters().get("routed");
  EXPECT_GT(r1, 40u);
  EXPECT_GT(r2, 40u);
}

TEST(MultiBroker, HashAssignmentStillDeliversEverything) {
  TwoBrokerFabric f;
  // No broker params: assignment by topic hash must still wire
  // producers and consumers consistently.
  ASSERT_TRUE(f.mw.deploy(R"(
recipe hashed
node src_a : sensor { sensor = "s_a", rate_hz = 10, model = "constant" }
node src_b : sensor { sensor = "s_b", rate_hz = 10, model = "constant" }
node m : merge
node act : actuator { actuator = "out" }
edge src_a -> m
edge src_b -> m
edge m -> act
)").ok());
  f.mw.start_flows();
  f.mw.run_for(5 * kSecond);
  auto* out = f.mw.module_by_name("m_w")->actuator("out");
  EXPECT_GT(out->count(), 80u);
}

TEST(MultiBroker, ManagementTopicsLiveOnPrimary) {
  TwoBrokerFabric f;
  ASSERT_TRUE(f.mw.deploy(kTwoFlows).ok());
  f.mw.run_for(kSecond);
  // Status + directory retained messages are on the primary broker only.
  EXPECT_GT(f.mw.module(f.b1).broker()->retained_count(), 0u);
  EXPECT_EQ(f.mw.module(f.b2).broker()->retained_count(), 0u);
}

TEST(MultiBroker, SysWatchSeesEveryBroker) {
  MiddlewareConfig cfg;
  cfg.broker.sys_interval = kSecond;
  Middleware mw(cfg);
  mw.add_module({.name = "m_a", .sensors = {"s_a"}});
  mw.add_module({.name = "b1", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "b2", .broker = true, .accept_tasks = false});
  const NodeId w = mw.add_module({.name = "m_w", .actuators = {"out"}});
  ASSERT_TRUE(mw.start().ok());
  int sys_messages = 0;
  ASSERT_TRUE(mw.watch(w, "$SYS/broker/#",
                       [&](const std::string&, const Bytes&) {
                         ++sys_messages;
                       })
                  .ok());
  mw.run_for(4 * kSecond);
  // Both brokers publish stats; the watcher subscribed on both.
  EXPECT_GT(sys_messages, 20);
}

TEST(MultiBroker, CannotFailAnyBroker) {
  TwoBrokerFabric f;
  EXPECT_FALSE(f.mw.fail_module(f.b1).ok());
  EXPECT_FALSE(f.mw.fail_module(f.b2).ok());
}

TEST(MultiBroker, StatusBoardShowsBothBrokers) {
  TwoBrokerFabric f;
  const std::string board = mgmt::fabric_status(f.mw);
  EXPECT_NE(board.find("broker counter (broker_1)"), std::string::npos);
  EXPECT_NE(board.find("broker counter (broker_2)"), std::string::npos);
}

TEST(MultiBroker, FailoverStillWorksAcrossBrokers) {
  MiddlewareConfig cfg;
  cfg.keep_alive_s = 2;
  Middleware mw(cfg);
  mw.add_module({.name = "m_a", .sensors = {"s_a"}});
  mw.add_module({.name = "b1", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "b2", .broker = true, .accept_tasks = false});
  const NodeId w1 = mw.add_module({.name = "w1"});
  mw.add_module({.name = "w2", .actuators = {"out"}});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe ha
node src : sensor { sensor = "s_a", rate_hz = 10, model = "constant", broker = 1 }
node flt : filter { field = "value", op = "ge", value = -1e9, pin = "w1" }
node act : actuator { actuator = "out" }
edge src -> flt -> act
)").ok());
  mw.start_flows();
  mw.run_for(2 * kSecond);
  auto* out = mw.module_by_name("w2")->actuator("out");
  const auto before = out->count();
  ASSERT_GT(before, 10u);
  ASSERT_TRUE(mw.fail_module(w1).ok());
  ASSERT_TRUE(mw.redeploy_failed(w1).ok());
  mw.run_for(2 * kSecond);
  EXPECT_GT(out->count(), before + 10);
}

}  // namespace
}  // namespace ifot::core
