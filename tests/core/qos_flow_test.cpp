// Per-flow QoS (recipe `qos = 0/1/2` per node): reliability control at
// flow granularity — alarm paths ride QoS 1 while bulk telemetry stays
// QoS 0, on the same lossy LAN.
#include <gtest/gtest.h>

#include "core/middleware.hpp"

namespace ifot::core {
namespace {

struct Counts {
  std::uint64_t alarm_emitted = 0;
  std::uint64_t alarm_delivered = 0;
  std::uint64_t bulk_emitted = 0;
  std::uint64_t bulk_delivered = 0;
};

Counts run_lossy(double loss) {
  MiddlewareConfig cfg;
  cfg.lan.loss_prob = loss;
  // Cap transport retries low so QoS 0 actually loses frames while the
  // MQTT layer (publish redelivery + control-packet retries) recovers
  // QoS 1 flows end to end.
  cfg.lan.max_attempts = 2;
  cfg.seed = 99;
  Middleware mw(cfg);
  mw.add_module({.name = "m_src", .sensors = {"alarm_sensor", "bulk_sensor"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_sink", .actuators = {"alarm_out", "bulk_out"}});
  EXPECT_TRUE(mw.start().ok());
  EXPECT_TRUE(mw.deploy(R"(
recipe mixed_qos
node alarm : sensor { sensor = "alarm_sensor", rate_hz = 10, model = "constant", qos = 1 }
node bulk  : sensor { sensor = "bulk_sensor", rate_hz = 10, model = "constant", qos = 0 }
node alarm_act : actuator { actuator = "alarm_out" }
node bulk_act  : actuator { actuator = "bulk_out" }
edge alarm -> alarm_act
edge bulk -> bulk_act
)").ok());
  mw.start_flows();
  mw.run_for(20 * kSecond);
  mw.stop_flows();
  mw.run_for(10 * kSecond);  // drain QoS 1 redeliveries

  Counts c;
  // Both sensors share the source module; attribute emissions by flow.
  c.alarm_delivered = mw.module_by_name("m_sink")->actuator("alarm_out")->count();
  c.bulk_delivered = mw.module_by_name("m_sink")->actuator("bulk_out")->count();
  // ~10 Hz x 20 s each.
  c.alarm_emitted = 200;
  c.bulk_emitted = 200;
  return c;
}

TEST(PerFlowQos, Qos1FlowSurvivesLossQos0FlowDoesNot) {
  const Counts c = run_lossy(0.35);
  // The QoS 1 alarm flow recovers essentially everything...
  EXPECT_GE(c.alarm_delivered + 5, c.alarm_emitted);
  // ...while the QoS 0 bulk flow visibly loses samples on the same LAN.
  EXPECT_LT(c.bulk_delivered, c.bulk_emitted - 20);
}

TEST(PerFlowQos, LosslessLanDeliversBoth) {
  const Counts c = run_lossy(0.0);
  EXPECT_GE(c.alarm_delivered + 3, c.alarm_emitted);
  EXPECT_GE(c.bulk_delivered + 3, c.bulk_emitted);
}

TEST(PerFlowQos, RecipeValidatesQosRange) {
  Middleware mw;
  mw.add_module({.name = "m", .sensors = {"s"}, .broker = true});
  ASSERT_TRUE(mw.start().ok());
  auto bad = mw.deploy(R"(
recipe bad
node src : sensor { sensor = "s", rate_hz = 1, qos = 3 }
)");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message.find("qos"), std::string::npos);
}

}  // namespace
}  // namespace ifot::core
