// Load shedding: bounded per-module backlog trades sample loss for
// bounded latency at overload — the graceful-degradation alternative to
// the paper's unbounded queue growth at 40-80 Hz.
#include <gtest/gtest.h>

#include "core/middleware.hpp"

namespace ifot::core {
namespace {

struct Outcome {
  double avg_ms = 0;
  double max_ms = 0;
  std::uint64_t completions = 0;
  std::uint64_t shed = 0;
};

/// Overload one train module (40 Hz x 3 sensors ~ 2.2x its capacity).
Outcome run(SimDuration max_backlog) {
  MiddlewareConfig cfg;
  cfg.max_backlog = max_backlog;
  Middleware mw(cfg);
  mw.add_module({.name = "m_a", .sensors = {"s_a"}});
  mw.add_module({.name = "m_b", .sensors = {"s_b"}});
  mw.add_module({.name = "m_c", .sensors = {"s_c"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_train"});
  EXPECT_TRUE(mw.start().ok());
  std::string recipe = "recipe overload\n";
  for (const char* s : {"a", "b", "c"}) {
    recipe += std::string("node src_") + s + " : sensor { sensor = \"s_" +
              s + "\", rate_hz = 40, model = \"activity\" }\n";
  }
  recipe += "node tr : train { algorithm = \"arow\", pin = \"m_train\" }\n";
  for (const char* s : {"a", "b", "c"}) {
    recipe += std::string("edge src_") + s + " -> tr\n";
  }
  EXPECT_TRUE(mw.deploy(recipe).ok());
  LatencyRecorder lat;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime now) {
    if (t.name == "tr") lat.record(now - s.sensed_at);
  });
  mw.start_flows();
  mw.run_for(10 * kSecond);
  Outcome o;
  o.avg_ms = lat.avg_ms();
  o.max_ms = lat.max_ms();
  o.completions = lat.count();
  o.shed = mw.module_by_name("m_train")->counters().get("load_shed");
  return o;
}

TEST(LoadShedding, UnboundedQueueBlowsUp) {
  const auto o = run(0);
  EXPECT_EQ(o.shed, 0u);
  EXPECT_GT(o.avg_ms, 1000.0);  // the paper's Table II blow-up
}

TEST(LoadShedding, BoundedBacklogKeepsLatencyBounded) {
  const auto o = run(from_millis(100));
  EXPECT_GT(o.shed, 100u);          // excess load is dropped...
  EXPECT_LT(o.avg_ms, 300.0);       // ...and latency stays bounded
  EXPECT_LT(o.max_ms, 500.0);
  EXPECT_GT(o.completions, 100u);   // while useful work continues
}

TEST(LoadShedding, NoSheddingBelowCapacity) {
  MiddlewareConfig cfg;
  cfg.max_backlog = from_millis(100);
  Middleware mw(cfg);
  mw.add_module({.name = "m_a", .sensors = {"s_a"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_train"});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe light
node src : sensor { sensor = "s_a", rate_hz = 10, model = "activity" }
node tr : train { algorithm = "arow", pin = "m_train" }
edge src -> tr
)").ok());
  mw.start_flows();
  mw.run_for(5 * kSecond);
  EXPECT_EQ(mw.module_by_name("m_train")->counters().get("load_shed"), 0u);
}

}  // namespace
}  // namespace ifot::core
