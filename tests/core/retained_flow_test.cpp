// Retained flows: `retain = true` publishes each sample retained so late
// joiners see the last value immediately; models are always retained so a
// re-deployed Judging task recovers its model without waiting a publish
// interval.
#include <gtest/gtest.h>

#include "core/middleware.hpp"

namespace ifot::core {
namespace {

TEST(RetainedFlow, LateTapSeesLastValueImmediately) {
  Middleware mw;
  mw.add_module({.name = "m_src", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_sink", .actuators = {"out", "late_out"}});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe producer
node src : sensor { sensor = "temp", rate_hz = 2, model = "constant", retain = true }
node act : actuator { actuator = "out" }
edge src -> act
)").ok());
  mw.start_flows();
  mw.run_for(3 * kSecond);
  mw.stop_flows();      // source silent from here on
  mw.run_for(kSecond);  // drain in-flight samples

  // A consumer deployed after the flow stopped still receives the last
  // retained sample on subscribe.
  ASSERT_TRUE(mw.deploy(R"(
recipe late
node feed : tap { topic = "ifot/producer/src" }
node act : actuator { actuator = "late_out" }
edge feed -> act
)").ok());
  mw.run_for(2 * kSecond);
  auto* late_out = mw.module_by_name("m_sink")->actuator("late_out");
  ASSERT_EQ(late_out->count(), 1u);  // exactly the retained last value
}

TEST(RetainedFlow, UnretainedFlowGivesLateTapNothing) {
  Middleware mw;
  mw.add_module({.name = "m_src", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_sink", .actuators = {"out", "late_out"}});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe producer
node src : sensor { sensor = "temp", rate_hz = 2, model = "constant" }
node act : actuator { actuator = "out" }
edge src -> act
)").ok());
  mw.start_flows();
  mw.run_for(3 * kSecond);
  mw.stop_flows();
  mw.run_for(kSecond);  // drain in-flight samples
  ASSERT_TRUE(mw.deploy(R"(
recipe late
node feed : tap { topic = "ifot/producer/src" }
node act : actuator { actuator = "late_out" }
edge feed -> act
)").ok());
  mw.run_for(2 * kSecond);
  EXPECT_EQ(mw.module_by_name("m_sink")->actuator("late_out")->count(), 0u);
}

TEST(RetainedFlow, FailedOverPredictRecoversModelFromRetained) {
  MiddlewareConfig cfg;
  cfg.keep_alive_s = 2;
  Middleware mw(cfg);
  mw.add_module({.name = "m_src", .sensors = {"acc"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  const NodeId w1 = mw.add_module({.name = "w1"});
  mw.add_module({.name = "w2"});
  mw.add_module({.name = "m_train"});
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(R"(
recipe ml
node src : sensor { sensor = "acc", rate_hz = 10, model = "activity" }
node tr : train { algorithm = "arow", publish_every = 16, pin = "m_train" }
node judge : predict { pin = "w1" }
edge src -> tr
edge src -> judge
edge tr -> judge
)").ok());
  mw.start_flows();
  mw.run_for(5 * kSecond);  // several models shipped (retained)

  // Kill the Judging module and fail over; the replacement instance must
  // classify (non-empty labels) without waiting for the next model
  // publish, because the latest model is retained at the broker.
  ASSERT_TRUE(mw.fail_module(w1).ok());
  mw.stop_flows();  // freeze training: no further model publishes
  ASSERT_TRUE(mw.redeploy_failed(w1).ok());
  std::vector<std::string> labels;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime) {
    if (t.name == "judge") labels.push_back(s.label);
  });
  mw.start_flows();
  // Run briefly - fewer samples than publish_every, so any model must
  // have come from the retained store.
  mw.run_for(kSecond);
  ASSERT_GT(labels.size(), 3u);
  std::size_t labelled = 0;
  for (const auto& l : labels) {
    if (!l.empty()) ++labelled;
  }
  EXPECT_GT(labelled, labels.size() / 2);
}

}  // namespace
}  // namespace ifot::core
