// Audit-build invariants of core::Middleware and recipe::split_recipe
// (ISSUE PR3: extend IFOT_AUDIT into core/ and recipe/): placement
// consistency across deploy/undeploy/failover, the failed-module
// exclusion rule, and endpoint conservation through recipe split. Under
// -DIFOT_AUDIT=ON every mutating call below re-runs
// Middleware::audit_invariants() / audit_task_graph(); in normal builds
// the same scenarios still assert their externally visible outcomes.
#include <gtest/gtest.h>

#include <string>

#include "common/audit.hpp"
#include "core/middleware.hpp"
#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace ifot::core {
namespace {

constexpr const char* kSharded = R"(
recipe audit_core
node src : sensor  { sensor = "temp", rate_hz = 20 }
node tr  : train   { parallelism = 2, mix = true, window = 4 }
node pr  : predict { parallelism = 2 }
node act : actuator { actuator = "horn" }
edge src -> tr -> pr -> act
)";

void add_fabric(Middleware& mw) {
  mw.add_module({.name = "m_sensor", .sensors = {"temp"}});
  mw.add_module({.name = "m_broker", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "m_worker1"});
  mw.add_module({.name = "m_worker2"});
  mw.add_module({.name = "m_sink", .actuators = {"horn"}});
}

TEST(AuditCore, DeployUndeployKeepsPlacementConsistent) {
  Middleware mw;
  add_fabric(mw);
  ASSERT_TRUE(mw.start().ok());
  auto id = mw.deploy(kSharded);
  ASSERT_TRUE(id.ok()) << id.error().to_string();
  ASSERT_EQ(mw.deployments().size(), 1u);
  // Placement maps every task to a live module (re-checked internally by
  // audit_invariants on every mutation under -DIFOT_AUDIT=ON).
  const auto& d = mw.deployments().back();
  EXPECT_EQ(d.placement.task_module.size(), d.graph.tasks.size());
  mw.start_flows();
  mw.run_for(2 * kSecond);
  mw.stop_flows();
  ASSERT_TRUE(mw.undeploy(id.value()).ok());
  mw.audit_invariants();
}

TEST(AuditCore, RedeployFailedLeavesNoTaskOnFailedModule) {
  Middleware mw;
  add_fabric(mw);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kSharded).ok());
  mw.start_flows();
  mw.run_for(kSecond);

  const auto* w1 = mw.module_by_name("m_worker1");
  ASSERT_NE(w1, nullptr);
  const NodeId failed = w1->id();
  ASSERT_TRUE(mw.fail_module(failed).ok());
  ASSERT_TRUE(mw.redeploy_failed(failed).ok());
  // The audit post-condition inside redeploy_failed already asserts no
  // task remains on the failed module; re-assert observably here so the
  // non-audit build checks it too.
  for (const auto& d : mw.deployments()) {
    for (NodeId m : d.placement.task_module) {
      EXPECT_NE(m, failed);
    }
  }
  mw.run_for(kSecond);
  mw.stop_flows();
}

TEST(AuditCore, SplitConservesStreamEndpoints) {
  auto parsed = recipe::parse(kSharded);
  ASSERT_TRUE(parsed.ok());
  // split_recipe runs audit_task_graph under -DIFOT_AUDIT=ON: dense ids,
  // stage partition, topological upstreams, and every input filter
  // (including the MIX sibling-model and /p<k>//model side-channel
  // subscriptions) tapping a live upstream stream.
  auto g = recipe::split_recipe(parsed.value());
  ASSERT_TRUE(g.ok());
  // src, 2x train, 2x predict, act
  EXPECT_EQ(g.value().tasks.size(), 6u);
  for (const auto& t : g.value().tasks) {
    EXPECT_EQ(t.input_brokers.size(), t.input_topics.size());
    EXPECT_EQ(t.input_qos.size(), t.input_topics.size());
  }
}

TEST(AuditCoreDeathTest, PlacementOntoMissingModuleTripsAudit) {
  if (!audit::kEnabled) {
    GTEST_SKIP() << "asserts compile out of this build";
  }
  // Corrupt a deployment's placement from the outside and re-run the
  // invariant checker: it must abort rather than let a dangling NodeId
  // propagate into routing.
  Middleware mw;
  add_fabric(mw);
  ASSERT_TRUE(mw.start().ok());
  ASSERT_TRUE(mw.deploy(kSharded).ok());
  auto& placement = const_cast<core::Deployment&>(mw.deployments().back());
  ASSERT_FALSE(placement.placement.task_module.empty());
  placement.placement.task_module[0] = NodeId{9999};
  EXPECT_DEATH(mw.audit_invariants(), "IFOT_AUDIT failure");
}

}  // namespace
}  // namespace ifot::core
