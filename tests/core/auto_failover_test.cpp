// End-to-end self-healing: a module crashes, its MQTT will announces the
// death after the keep-alive grace, and the FailoverManager re-places its
// tasks automatically — no operator in the loop.
#include <gtest/gtest.h>

#include "core/middleware.hpp"
#include "mgmt/failover_manager.hpp"

namespace ifot::core {
namespace {

struct Fabric {
  Fabric() {
    MiddlewareConfig cfg;
    cfg.keep_alive_s = 2;  // will fires ~3 s after the crash
    mw = std::make_unique<Middleware>(cfg);
    mw->add_module({.name = "m_sensor", .sensors = {"temp"}});
    broker = mw->add_module(
        {.name = "m_broker", .broker = true, .accept_tasks = false});
    w1 = mw->add_module({.name = "w1"});
    w2 = mw->add_module({.name = "w2", .actuators = {"fan"}});
    EXPECT_TRUE(mw->start().ok());
  }
  std::unique_ptr<Middleware> mw;
  NodeId broker, w1, w2;
};

constexpr const char* kRecipe = R"(
recipe healing
node src : sensor { sensor = "temp", rate_hz = 10, model = "constant" }
node flt : filter { field = "value", op = "ge", value = -1e9, pin = "w1" }
node act : actuator { actuator = "fan" }
edge src -> flt -> act
)";

TEST(AutoFailover, SelfHealsAfterCrash) {
  Fabric f;
  mgmt::FailoverManager manager;
  ASSERT_TRUE(manager.attach(*f.mw, f.broker).ok());
  ASSERT_TRUE(f.mw->deploy(kRecipe).ok());
  f.mw->start_flows();
  f.mw->run_for(2 * kSecond);
  auto* fan = f.mw->module_by_name("w2")->actuator("fan");
  const auto before = fan->count();
  ASSERT_GT(before, 10u);

  // Crash w1 silently; nobody calls redeploy manually.
  f.mw->module(f.w1).fail();
  f.mw->run_for(10 * kSecond);  // grace (3 s) + failover + recovery

  EXPECT_EQ(manager.failovers(), 1u);
  ASSERT_EQ(manager.offline().size(), 1u);
  EXPECT_EQ(manager.offline()[0], "w1");
  // Flow resumed: substantially more actuations than at crash time.
  EXPECT_GT(fan->count(), before + 30);
  // The filter now lives on a survivor.
  const auto& d = f.mw->deployments()[0];
  for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
    EXPECT_NE(d.placement.task_module[ti], f.w1);
  }
}

TEST(AutoFailover, HookObservesOutcome) {
  Fabric f;
  mgmt::FailoverManager manager;
  ASSERT_TRUE(manager.attach(*f.mw, f.broker).ok());
  std::vector<std::string> events;
  manager.set_hook([&](const std::string& module, Status outcome) {
    events.push_back(module + (outcome.ok() ? ":ok" : ":failed"));
  });
  ASSERT_TRUE(f.mw->deploy(kRecipe).ok());
  f.mw->start_flows();
  f.mw->run_for(kSecond);
  f.mw->module(f.w1).fail();
  f.mw->run_for(10 * kSecond);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "w1:ok");
}

TEST(AutoFailover, ReportsUnplaceableTasks) {
  Fabric f;
  mgmt::FailoverManager manager;
  ASSERT_TRUE(manager.attach(*f.mw, f.broker).ok());
  std::vector<bool> outcomes;
  manager.set_hook([&](const std::string&, Status outcome) {
    outcomes.push_back(outcome.ok());
  });
  ASSERT_TRUE(f.mw->deploy(kRecipe).ok());
  f.mw->start_flows();
  f.mw->run_for(kSecond);
  // Kill the only module hosting the "temp" device: the sensor task has
  // nowhere to go; the manager must report the failure, not crash.
  f.mw->module(f.mw->module_by_name("m_sensor")->id()).fail();
  f.mw->run_for(10 * kSecond);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0]);
  EXPECT_EQ(manager.failovers(), 0u);
}

TEST(AutoFailover, IgnoresCleanOnlineTransitions) {
  Fabric f;
  mgmt::FailoverManager manager;
  ASSERT_TRUE(manager.attach(*f.mw, f.broker).ok());
  f.mw->run_for(5 * kSecond);
  EXPECT_EQ(manager.failovers(), 0u);
  EXPECT_TRUE(manager.offline().empty());
}

}  // namespace
}  // namespace ifot::core
