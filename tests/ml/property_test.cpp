// Property tests for the online-learning substrate, parameterized over
// (algorithm, seed): learnability on separable data, codec round-trips of
// randomly trained models, MIX invariances, and clustering conservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "ml/classifier.hpp"
#include "ml/cluster.hpp"
#include "ml/mix.hpp"
#include "ml/model_io.hpp"

namespace ifot::ml {
namespace {

FeatureVector random_point(Rng& rng, int dims) {
  FeatureVector fv;
  for (int d = 0; d < dims; ++d) {
    fv.set(static_cast<FeatureId>(d), rng.uniform(-1, 1));
  }
  return fv;
}

using AlgoSeed = std::tuple<const char*, int>;

class ClassifierProperty : public ::testing::TestWithParam<AlgoSeed> {};

TEST_P(ClassifierProperty, LearnsRandomLinearConcepts) {
  const auto& [algo, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * std::uint64_t{6364136223846793005} + 1);
  // Random hyperplane in 4 dims with margin.
  double w[4];
  for (auto& v : w) v = rng.uniform(-1, 1);
  auto label_of = [&](const FeatureVector& fv) {
    double s = 0;
    for (int d = 0; d < 4; ++d) s += w[d] * fv.get(static_cast<FeatureId>(d));
    return s > 0 ? std::string("pos") : std::string("neg");
  };
  auto margin_of = [&](const FeatureVector& fv) {
    double s = 0;
    double norm = 0;
    for (int d = 0; d < 4; ++d) {
      s += w[d] * fv.get(static_cast<FeatureId>(d));
      norm += w[d] * w[d];
    }
    return std::abs(s) / std::max(std::sqrt(norm), 1e-9);
  };
  auto clf = make_classifier(algo);
  ASSERT_NE(clf, nullptr);
  for (int i = 0; i < 3000; ++i) {
    const auto fv = random_point(rng, 4);
    if (margin_of(fv) < 0.1) continue;  // keep a margin band
    clf->train(fv, label_of(fv));
  }
  int correct = 0;
  int total = 0;
  while (total < 300) {
    const auto fv = random_point(rng, 4);
    if (margin_of(fv) < 0.15) continue;
    ++total;
    if (clf->classify(fv).label == label_of(fv)) ++correct;
  }
  EXPECT_GT(correct, total * 85 / 100) << algo << " seed " << seed;
}

TEST_P(ClassifierProperty, ModelCodecRoundTripsTrainedState) {
  const auto& [algo, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31 + 7);
  auto clf = make_classifier(algo);
  ASSERT_NE(clf, nullptr);
  const char* labels[] = {"a", "b", "c"};
  for (int i = 0; i < 500; ++i) {
    clf->train(random_point(rng, 6), labels[rng.below(3)]);
  }
  auto decoded =
      ModelCodec::decode_linear(BytesView(ModelCodec::encode(clf->model())));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), clf->model());
}

TEST_P(ClassifierProperty, TrainingIsDeterministic) {
  const auto& [algo, seed] = GetParam();
  auto run = [&, algo = algo, seed = seed] {
    Rng rng(static_cast<std::uint64_t>(seed));
    auto clf = make_classifier(algo);
    for (int i = 0; i < 300; ++i) {
      clf->train(random_point(rng, 3), rng.chance(0.5) ? "x" : "y");
    }
    return ModelCodec::encode(clf->model());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    AlgoSeeds, ClassifierProperty,
    ::testing::Combine(::testing::Values("perceptron", "pa", "pa1", "pa2",
                                         "cw", "arow"),
                       ::testing::Range(0, 4)));

class MixProperty : public ::testing::TestWithParam<int> {};

TEST_P(MixProperty, PermutationInvariant) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 3);
  std::vector<LinearModel> models;
  for (int m = 0; m < 4; ++m) {
    Arow clf;
    for (int i = 0; i < 200; ++i) {
      clf.train(random_point(rng, 4), rng.chance(0.5) ? "p" : "n");
    }
    models.push_back(clf.model());
  }
  const LinearModel forward = mix_models(models);
  std::vector<LinearModel> reversed(models.rbegin(), models.rend());
  const LinearModel backward = mix_models(reversed);
  // Same weights regardless of order (label registration order may
  // differ, so compare per label name).
  ASSERT_EQ(forward.label_count(), backward.label_count());
  for (std::size_t li = 0; li < forward.label_count(); ++li) {
    const std::string& label = forward.label_name(li);
    const std::size_t bi = backward.find_label(label);
    ASSERT_NE(bi, SIZE_MAX);
    for (const auto& [id, v] : forward.weights(li).w) {
      auto it = backward.weights(bi).w.find(id);
      ASSERT_NE(it, backward.weights(bi).w.end());
      EXPECT_NEAR(it->second, v, 1e-12);
    }
  }
  EXPECT_EQ(forward.update_count(), backward.update_count());
}

TEST_P(MixProperty, MixOfCopiesIsIdentityOnWeights) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 5);
  Arow clf;
  for (int i = 0; i < 300; ++i) {
    clf.train(random_point(rng, 4), rng.chance(0.5) ? "p" : "n");
  }
  const LinearModel mixed = mix_models({clf.model(), clf.model()});
  for (std::size_t li = 0; li < clf.model().label_count(); ++li) {
    for (const auto& [id, v] : clf.model().weights(li).w) {
      EXPECT_NEAR(mixed.weights(li).w.at(id), v, 1e-12);
    }
  }
}

TEST_P(MixProperty, MixedScoresAreConvexCombinations) {
  // With equal update counts, the mixed score of any point equals the
  // average of the component scores (linearity of the model).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 23 + 9);
  Perceptron a;
  Perceptron b;
  for (int i = 0; i < 200; ++i) {
    a.train(random_point(rng, 3), rng.chance(0.5) ? "p" : "n");
    b.train(random_point(rng, 3), rng.chance(0.5) ? "p" : "n");
  }
  a.model().set_update_count(100);
  b.model().set_update_count(100);
  const LinearModel mixed = mix_models({a.model(), b.model()});
  for (int t = 0; t < 50; ++t) {
    const auto fv = random_point(rng, 3);
    const auto sa = a.model().scores(fv);
    const auto sb = b.model().scores(fv);
    const auto sm = mixed.scores(fv);
    for (std::size_t li = 0; li < mixed.label_count(); ++li) {
      const std::string& label = mixed.label_name(li);
      const double expect = (sa[a.model().find_label(label)] +
                             sb[b.model().find_label(label)]) /
                            2.0;
      EXPECT_NEAR(sm[li], expect, 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixProperty, ::testing::Range(0, 6));

class KMeansProperty : public ::testing::TestWithParam<int> {};

TEST_P(KMeansProperty, CountsConserveSamples) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 11);
  SequentialKMeans km(1 + rng.below(6));
  const int n = 500;
  for (int i = 0; i < n; ++i) km.add(random_point(rng, 3));
  std::uint64_t total = 0;
  for (std::size_t c = 0; c < km.cluster_count(); ++c) total += km.count(c);
  EXPECT_EQ(total, static_cast<std::uint64_t>(n));
}

TEST_P(KMeansProperty, AssignReturnsNearestCentroid) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 13);
  SequentialKMeans km(4);
  for (int i = 0; i < 300; ++i) km.add(random_point(rng, 3));
  for (int t = 0; t < 100; ++t) {
    const auto fv = random_point(rng, 3);
    const std::size_t c = km.assign(fv);
    const double d2 = km.nearest_distance2(fv);
    for (std::size_t other = 0; other < km.cluster_count(); ++other) {
      double acc = 0;
      const auto& cent = km.centroid(other);
      for (int dim = 0; dim < 3; ++dim) {
        const auto id = static_cast<FeatureId>(dim);
        const double diff = fv.get(id) - cent.get(id);
        acc += diff * diff;
      }
      EXPECT_GE(acc + 1e-12, d2) << "cluster " << other << " vs " << c;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansProperty, ::testing::Range(0, 6));

}  // namespace
}  // namespace ifot::ml
