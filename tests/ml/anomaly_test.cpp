#include "ml/anomaly.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv1(double x) {
  FeatureVector fv;
  fv.set(0, x);
  return fv;
}

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

TEST(ZScore, SilentDuringWarmup) {
  ZScoreDetector det(/*min_samples=*/10);
  Rng rng(1);
  for (int i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(det.add(fv1(rng.normal(0, 1))), 0.0);
  }
}

TEST(ZScore, FlagsObviousOutlier) {
  ZScoreDetector det(10);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) det.add(fv1(rng.normal(10, 1)));
  const double normal_score = det.score(fv1(10.5));
  const double outlier_score = det.score(fv1(25.0));
  EXPECT_LT(normal_score, 3.0);
  EXPECT_GT(outlier_score, 10.0);
}

TEST(ZScore, ScoreIsMaxAcrossFeatures) {
  ZScoreDetector det(5);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    det.add(fv2(rng.normal(0, 1), rng.normal(100, 5)));
  }
  // Outlier only in the second feature.
  const double s = det.score(fv2(0.0, 200.0));
  EXPECT_GT(s, 10.0);
}

TEST(ZScore, AddReturnsPreUpdateScore) {
  ZScoreDetector det(2);
  det.add(fv1(0));
  det.add(fv1(0.1));
  det.add(fv1(-0.1));
  det.add(fv1(0.05));
  const double spike = det.add(fv1(50));
  EXPECT_GT(spike, 5.0);
}

TEST(ZScore, ConstantStreamHasBoundedScores) {
  ZScoreDetector det(5);
  for (int i = 0; i < 100; ++i) det.add(fv1(7.0));
  // Variance ~0 is floored; the same value must not look anomalous in a
  // pathological way: score of the same constant is 0.
  EXPECT_DOUBLE_EQ(det.score(fv1(7.0)), 0.0);
}

TEST(Lof, InlierNearOneOutlierLarge) {
  LofDetector det(/*k=*/5, /*window=*/128);
  Rng rng(5);
  // Tight cluster around origin.
  for (int i = 0; i < 100; ++i) {
    det.add(fv2(rng.normal(0, 0.5), rng.normal(0, 0.5)));
  }
  const double inlier = det.score(fv2(0.1, -0.2));
  const double outlier = det.score(fv2(30, 30));
  EXPECT_LT(inlier, 2.0);
  EXPECT_GT(outlier, 5.0);
  EXPECT_GT(outlier, inlier * 3);
}

TEST(Lof, ReturnsNeutralUntilWindowFills) {
  LofDetector det(10, 64);
  EXPECT_DOUBLE_EQ(det.add(fv1(1)), 1.0);
  for (int i = 0; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(det.add(fv1(static_cast<double>(i))), 1.0);
  }
}

TEST(Lof, WindowEvictsOldPoints) {
  LofDetector det(3, /*window=*/16);
  for (int i = 0; i < 64; ++i) det.add(fv1(static_cast<double>(i)));
  EXPECT_EQ(det.size(), 16u);
}

TEST(Lof, TwoClustersBothInliers) {
  LofDetector det(5, 256);
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    det.add(fv2(rng.normal(0, 0.3), rng.normal(0, 0.3)));
    det.add(fv2(rng.normal(10, 0.3), rng.normal(10, 0.3)));
  }
  EXPECT_LT(det.score(fv2(0, 0)), 2.5);
  EXPECT_LT(det.score(fv2(10, 10)), 2.5);
  EXPECT_GT(det.score(fv2(5, 5)), 3.0);  // between the clusters
}

TEST(Lof, CoincidentPointsAreInliers) {
  LofDetector det(3, 64);
  for (int i = 0; i < 20; ++i) det.add(fv1(1.0));
  EXPECT_LE(det.score(fv1(1.0)), 1.5);
}

}  // namespace
}  // namespace ifot::ml
