#include "ml/classifier.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

/// Linearly separable two-class stream: label by sign of x + y.
struct SeparableStream {
  Rng rng{42};
  std::pair<FeatureVector, std::string> next() {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    return {fv2(x, y), x + y > 0 ? "pos" : "neg"};
  }
};

class ClassifierAlgoTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ClassifierAlgoTest, FactoryProducesNamedAlgorithm) {
  auto clf = make_classifier(GetParam());
  ASSERT_NE(clf, nullptr);
  EXPECT_STREQ(clf->name(), GetParam());
}

TEST_P(ClassifierAlgoTest, LearnsLinearlySeparableData) {
  auto clf = make_classifier(GetParam());
  ASSERT_NE(clf, nullptr);
  SeparableStream stream;
  for (int i = 0; i < 2000; ++i) {
    auto [fv, label] = stream.next();
    clf->train(fv, label);
  }
  int correct = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    auto [fv, label] = stream.next();
    if (clf->classify(fv).label == label) ++correct;
  }
  EXPECT_GT(correct, n * 9 / 10)
      << GetParam() << " accuracy " << (100.0 * correct / n) << "%";
}

TEST_P(ClassifierAlgoTest, MultiClassQuadrants) {
  auto clf = make_classifier(GetParam());
  ASSERT_NE(clf, nullptr);
  Rng rng(7);
  auto quadrant = [](double x, double y) -> std::string {
    if (x >= 0 && y >= 0) return "q1";
    if (x < 0 && y >= 0) return "q2";
    if (x < 0 && y < 0) return "q3";
    return "q4";
  };
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    // Keep a margin around the axes so the problem is cleanly separable.
    if (std::abs(x) < 0.1 || std::abs(y) < 0.1) continue;
    clf->train(fv2(x, y), quadrant(x, y));
  }
  int correct = 0;
  int total = 0;
  while (total < 400) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    if (std::abs(x) < 0.15 || std::abs(y) < 0.15) continue;
    ++total;
    if (clf->classify(fv2(x, y)).label == quadrant(x, y)) ++correct;
  }
  EXPECT_GT(correct, total * 4 / 5) << GetParam();
}

TEST_P(ClassifierAlgoTest, UpdateCountTracksTraining) {
  auto clf = make_classifier(GetParam());
  ASSERT_NE(clf, nullptr);
  EXPECT_EQ(clf->model().update_count(), 0u);
  clf->train(fv2(1, 0), "a");
  clf->train(fv2(0, 1), "b");
  EXPECT_EQ(clf->model().update_count(), 2u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ClassifierAlgoTest,
                         ::testing::Values("perceptron", "pa", "pa1", "pa2",
                                           "cw", "arow"));

TEST(Classifier, EmptyModelClassifiesToEmptyLabel) {
  Perceptron clf;
  const auto result = clf.classify(fv2(1, 1));
  EXPECT_EQ(result.label, "");
  EXPECT_DOUBLE_EQ(result.score, 0);
}

TEST(Classifier, SingleLabelModelPredictsThatLabel) {
  Arow clf;
  clf.train(fv2(1, 1), "only");
  EXPECT_EQ(clf.classify(fv2(0.5, 0.5)).label, "only");
}

TEST(Classifier, MarginIsBestMinusRunnerUp) {
  PassiveAggressive clf;
  SeparableStream stream;
  for (int i = 0; i < 500; ++i) {
    auto [fv, label] = stream.next();
    clf.train(fv, label);
  }
  const auto strong = clf.classify(fv2(1.0, 1.0));
  const auto weak = clf.classify(fv2(0.01, 0.01));
  EXPECT_GT(strong.margin, weak.margin);
}

TEST(Classifier, PerceptronOnlyUpdatesOnMistakes) {
  Perceptron clf;
  clf.train(fv2(1, 0), "a");
  clf.train(fv2(-1, 0), "b");
  // Now (1,0)->a scores positive; a correct margin>0 example must not
  // change the weights.
  const auto before = clf.model().weights(0).w;
  clf.train(fv2(2, 0), "a");
  EXPECT_EQ(clf.model().weights(0).w, before);
}

TEST(Classifier, PaAggressivenessOrdering) {
  // On the same single mistake, PA (unbounded tau) moves at least as far
  // as PA-I with small C.
  PassiveAggressive pa(PassiveAggressive::Variant::kPA);
  PassiveAggressive pa1(PassiveAggressive::Variant::kPA1, 0.01);
  for (auto* clf : {static_cast<Classifier*>(&pa),
                    static_cast<Classifier*>(&pa1)}) {
    clf->train(fv2(1, 0), "a");
    clf->train(fv2(-1, 0), "b");
    clf->train(fv2(1, 0), "a");
  }
  const double wa_pa = pa.model().weights(0).w.at(0);
  const double wa_pa1 = pa1.model().weights(0).w.at(0);
  EXPECT_GE(wa_pa, wa_pa1);
}

TEST(Classifier, ArowShrinksConfidence) {
  Arow clf(0.1);
  clf.train(fv2(1, 0), "a");
  clf.train(fv2(-1, 0), "b");
  clf.train(fv2(1, 0), "a");
  // Sigma for feature 0 must have decreased from the prior 1.0.
  const auto& sigma = clf.model().weights(0).sigma;
  ASSERT_TRUE(sigma.count(0));
  EXPECT_LT(sigma.at(0), 1.0);
  EXPECT_GT(sigma.at(0), 0.0);
}

TEST(Classifier, CwShrinksConfidence) {
  ConfidenceWeighted clf(1.0);
  clf.train(fv2(1, 0), "a");
  clf.train(fv2(-1, 0), "b");
  clf.train(fv2(1, 0), "a");
  const auto& sigma = clf.model().weights(0).sigma;
  ASSERT_TRUE(sigma.count(0));
  EXPECT_LT(sigma.at(0), 1.0);
  EXPECT_GT(sigma.at(0), 0.0);
}

TEST(Classifier, ArowRobustToLabelNoise) {
  // AROW's selling point: with 10% flipped labels it still learns.
  Arow arow(0.1);
  Rng rng(3);
  SeparableStream stream;
  for (int i = 0; i < 3000; ++i) {
    auto [fv, label] = stream.next();
    if (rng.chance(0.10)) label = label == "pos" ? "neg" : "pos";
    arow.train(fv, label);
  }
  int correct = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    auto [fv, label] = stream.next();
    if (arow.classify(fv).label == label) ++correct;
  }
  EXPECT_GT(correct, n * 85 / 100);
}

TEST(Classifier, FactoryRejectsUnknown) {
  EXPECT_EQ(make_classifier("svm"), nullptr);
  EXPECT_EQ(make_classifier(""), nullptr);
}

TEST(Classifier, SetModelReplacesState) {
  Perceptron a;
  a.train(fv2(1, 0), "x");
  a.train(fv2(-1, 0), "y");
  Perceptron b;
  b.set_model(a.model());
  EXPECT_EQ(b.classify(fv2(1, 0)).label, a.classify(fv2(1, 0)).label);
}

TEST(Classifier, ZeroVectorTrainIsSafe) {
  PassiveAggressive clf;
  clf.train(FeatureVector{}, "a");
  clf.train(FeatureVector{}, "b");
  clf.train(FeatureVector{}, "a");  // norm2 == 0 path
  EXPECT_EQ(clf.model().label_count(), 2u);
}

}  // namespace
}  // namespace ifot::ml
