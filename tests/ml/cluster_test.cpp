#include "ml/cluster.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

TEST(SequentialKMeans, SeedsWithFirstDistinctPoints) {
  SequentialKMeans km(3);
  EXPECT_EQ(km.add(fv2(0, 0)), 0u);
  EXPECT_EQ(km.add(fv2(10, 0)), 1u);
  EXPECT_EQ(km.add(fv2(0, 10)), 2u);
  EXPECT_EQ(km.cluster_count(), 3u);
}

TEST(SequentialKMeans, DuplicateSeedPointDoesNotCreateCluster) {
  SequentialKMeans km(3);
  km.add(fv2(1, 1));
  km.add(fv2(1, 1));
  EXPECT_EQ(km.cluster_count(), 1u);
  EXPECT_EQ(km.count(0), 2u);
}

TEST(SequentialKMeans, AssignsToNearestCentroid) {
  SequentialKMeans km(2);
  km.add(fv2(0, 0));
  km.add(fv2(100, 100));
  EXPECT_EQ(km.assign(fv2(1, 2)), 0u);
  EXPECT_EQ(km.assign(fv2(99, 98)), 1u);
}

TEST(SequentialKMeans, AssignOnEmptyIsInvalid) {
  SequentialKMeans km(2);
  EXPECT_EQ(km.assign(fv2(0, 0)), SIZE_MAX);
  EXPECT_TRUE(std::isinf(km.nearest_distance2(fv2(0, 0))));
}

TEST(SequentialKMeans, CentroidsConvergeToClusterMeans) {
  SequentialKMeans km(2);
  Rng rng(8);
  for (int i = 0; i < 4000; ++i) {
    km.add(fv2(rng.normal(0, 0.5), rng.normal(0, 0.5)));
    km.add(fv2(rng.normal(20, 0.5), rng.normal(20, 0.5)));
  }
  // One centroid near (0,0), the other near (20,20) (order unspecified).
  std::set<std::size_t> near_origin;
  std::set<std::size_t> near_far;
  for (std::size_t c = 0; c < 2; ++c) {
    const auto& cent = km.centroid(c);
    const double d0 = cent.get(0) * cent.get(0) + cent.get(1) * cent.get(1);
    const double d20 = (cent.get(0) - 20) * (cent.get(0) - 20) +
                       (cent.get(1) - 20) * (cent.get(1) - 20);
    if (d0 < 1.0) near_origin.insert(c);
    if (d20 < 1.0) near_far.insert(c);
  }
  EXPECT_EQ(near_origin.size(), 1u);
  EXPECT_EQ(near_far.size(), 1u);
}

TEST(SequentialKMeans, CountsAccumulatePerCluster) {
  SequentialKMeans km(2);
  km.add(fv2(0, 0));
  km.add(fv2(10, 10));
  km.add(fv2(0.1, 0.1));
  km.add(fv2(0.2, -0.1));
  EXPECT_EQ(km.count(0), 3u);
  EXPECT_EQ(km.count(1), 1u);
}

TEST(SequentialKMeans, NearestDistanceShrinksWithMoreData) {
  SequentialKMeans km(1);
  km.add(fv2(0, 0));
  km.add(fv2(2, 0));  // centroid moves to (1,0)
  const double d = km.nearest_distance2(fv2(1, 0));
  EXPECT_LT(d, 0.01);
}

TEST(SequentialKMeans, MacQueenUpdateMovesByInverseCount) {
  SequentialKMeans km(1);
  km.add(fv2(0, 0));       // centroid (0,0), count 1
  km.add(fv2(4, 0));       // count 2, eta 1/2 -> centroid (2,0)
  EXPECT_DOUBLE_EQ(km.centroid(0).get(0), 2.0);
  km.add(fv2(5, 0));       // count 3, eta 1/3 -> centroid (3,0)
  EXPECT_DOUBLE_EQ(km.centroid(0).get(0), 3.0);
}

TEST(SequentialKMeans, HandlesSparseDisjointSupports) {
  SequentialKMeans km(1);
  FeatureVector a;
  a.set(0, 2.0);
  FeatureVector b;
  b.set(5, 4.0);
  km.add(a);
  km.add(b);  // centroid should be (1.0 @0, 2.0 @5)
  EXPECT_DOUBLE_EQ(km.centroid(0).get(0), 1.0);
  EXPECT_DOUBLE_EQ(km.centroid(0).get(5), 2.0);
}

}  // namespace
}  // namespace ifot::ml
