#include "ml/feature.hpp"

#include <gtest/gtest.h>

namespace ifot::ml {
namespace {

TEST(FeatureVector, SetAndGet) {
  FeatureVector fv;
  fv.set(3, 1.5);
  fv.set(1, -2.0);
  fv.set(3, 4.0);  // replace
  EXPECT_EQ(fv.size(), 2u);
  EXPECT_DOUBLE_EQ(fv.get(1), -2.0);
  EXPECT_DOUBLE_EQ(fv.get(3), 4.0);
  EXPECT_DOUBLE_EQ(fv.get(99), 0.0);
}

TEST(FeatureVector, ItemsStaySortedById) {
  FeatureVector fv;
  fv.set(9, 1);
  fv.set(2, 1);
  fv.set(5, 1);
  fv.set(0, 1);
  FeatureId prev = 0;
  bool first = true;
  for (const auto& [id, _] : fv.items()) {
    if (!first) {
      EXPECT_GT(id, prev);
    }
    prev = id;
    first = false;
  }
}

TEST(FeatureVector, AddAccumulates) {
  FeatureVector fv;
  fv.add(7, 1.0);
  fv.add(7, 2.5);
  EXPECT_DOUBLE_EQ(fv.get(7), 3.5);
  fv.add(8, -1.0);
  EXPECT_DOUBLE_EQ(fv.get(8), -1.0);
}

TEST(FeatureVector, Norm2) {
  FeatureVector fv;
  fv.set(0, 3.0);
  fv.set(1, 4.0);
  EXPECT_DOUBLE_EQ(fv.norm2(), 25.0);
  EXPECT_DOUBLE_EQ(FeatureVector{}.norm2(), 0.0);
}

TEST(FeatureVector, Scale) {
  FeatureVector fv;
  fv.set(0, 2.0);
  fv.set(1, -1.0);
  fv.scale(3.0);
  EXPECT_DOUBLE_EQ(fv.get(0), 6.0);
  EXPECT_DOUBLE_EQ(fv.get(1), -3.0);
}

TEST(FeatureVector, EqualityAndClear) {
  FeatureVector a;
  FeatureVector b;
  a.set(1, 2);
  b.set(1, 2);
  EXPECT_EQ(a, b);
  b.set(2, 3);
  EXPECT_NE(a, b);
  b.clear();
  EXPECT_TRUE(b.empty());
}

TEST(FeatureNames, InternsStably) {
  FeatureNames names;
  const FeatureId a = names.id_of("temp");
  const FeatureId b = names.id_of("humidity");
  EXPECT_NE(a, b);
  EXPECT_EQ(names.id_of("temp"), a);
  EXPECT_EQ(names.name_of(a), "temp");
  EXPECT_EQ(names.size(), 2u);
}

TEST(FeatureNames, FindWithoutInterning) {
  FeatureNames names;
  EXPECT_EQ(names.find("missing"), FeatureNames::kMissing);
  names.id_of("present");
  EXPECT_NE(names.find("present"), FeatureNames::kMissing);
  EXPECT_EQ(names.size(), 1u);
}

TEST(FeatureBuilder, BuildsThroughSharedNames) {
  FeatureNames names;
  FeatureBuilder builder(names);
  auto fv = builder.set("x", 1.0).set("y", 2.0).build();
  EXPECT_DOUBLE_EQ(fv.get(names.find("x")), 1.0);
  EXPECT_DOUBLE_EQ(fv.get(names.find("y")), 2.0);
}

}  // namespace
}  // namespace ifot::ml
