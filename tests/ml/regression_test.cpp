#include "ml/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

TEST(PaRegression, LearnsLinearFunction) {
  // target = 2x - 3y (+ small noise).
  PaRegression reg(1.0, 0.01);
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    reg.train(fv2(x, y), 2 * x - 3 * y + rng.normal(0, 0.01));
  }
  double mse = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    const double err = reg.estimate(fv2(x, y)) - (2 * x - 3 * y);
    mse += err * err;
  }
  EXPECT_LT(mse / n, 0.05);
  EXPECT_NEAR(reg.weights().at(0), 2.0, 0.3);
  EXPECT_NEAR(reg.weights().at(1), -3.0, 0.3);
}

TEST(PaRegression, EpsilonInsensitiveIgnoresSmallErrors) {
  PaRegression reg(1.0, /*epsilon=*/0.5);
  reg.train(fv2(1, 0), 0.4);  // |err| = 0.4 < epsilon -> no update
  EXPECT_TRUE(reg.weights().empty());
  EXPECT_EQ(reg.update_count(), 1u);
}

TEST(PaRegression, LargeErrorTriggersUpdate) {
  PaRegression reg(1.0, 0.1);
  reg.train(fv2(1, 0), 5.0);
  ASSERT_TRUE(reg.weights().count(0));
  EXPECT_GT(reg.weights().at(0), 0.0);
}

TEST(PaRegression, NegativeTargetsMoveWeightsDown) {
  PaRegression reg(1.0, 0.1);
  reg.train(fv2(1, 0), -5.0);
  ASSERT_TRUE(reg.weights().count(0));
  EXPECT_LT(reg.weights().at(0), 0.0);
}

TEST(PaRegression, AggressivenessCappedByC) {
  PaRegression small_c(0.01, 0.0);
  PaRegression big_c(100.0, 0.0);
  small_c.train(fv2(1, 0), 10.0);
  big_c.train(fv2(1, 0), 10.0);
  EXPECT_LT(small_c.weights().at(0), big_c.weights().at(0));
  // tau <= C: with C=0.01 the step is exactly 0.01 * x.
  EXPECT_DOUBLE_EQ(small_c.weights().at(0), 0.01);
}

TEST(PaRegression, EmptyModelEstimatesZero) {
  PaRegression reg;
  EXPECT_DOUBLE_EQ(reg.estimate(fv2(3, -7)), 0.0);
}

TEST(PaRegression, ZeroVectorTrainIsSafe) {
  PaRegression reg;
  reg.train(FeatureVector{}, 10.0);  // norm2 == 0
  EXPECT_TRUE(reg.weights().empty());
}

TEST(PaRegression, TracksDriftingTarget) {
  // Online learners must follow concept drift: slope changes midway.
  PaRegression reg(1.0, 0.01);
  Rng rng(4);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(-1, 1);
    reg.train(fv2(x, 0), 1.0 * x);
  }
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.uniform(-1, 1);
    reg.train(fv2(x, 0), -4.0 * x);
  }
  EXPECT_NEAR(reg.weights().at(0), -4.0, 0.5);
}

}  // namespace
}  // namespace ifot::ml
