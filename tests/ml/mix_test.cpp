#include "ml/mix.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

LinearModel single_label_model(const std::string& label, double w0,
                               std::uint64_t updates) {
  LinearModel m;
  const std::size_t i = m.label_index(label);
  m.weights(i).w[0] = w0;
  m.set_update_count(updates);
  return m;
}

TEST(Mix, EmptyInputGivesEmptyModel) {
  const LinearModel m = mix_models(std::vector<LinearModel>{});
  EXPECT_EQ(m.label_count(), 0u);
}

TEST(Mix, SingleModelPassesThrough) {
  auto a = single_label_model("x", 2.0, 5);
  const LinearModel m = mix_models({a});
  ASSERT_EQ(m.label_count(), 1u);
  EXPECT_DOUBLE_EQ(m.weights(0).w.at(0), 2.0);
  EXPECT_EQ(m.update_count(), 5u);
}

TEST(Mix, UniformAverageWhenNoUpdates) {
  auto a = single_label_model("x", 2.0, 0);
  auto b = single_label_model("x", 4.0, 0);
  const LinearModel m = mix_models({a, b});
  EXPECT_DOUBLE_EQ(m.weights(0).w.at(0), 3.0);
}

TEST(Mix, WeightedByUpdateCounts) {
  auto a = single_label_model("x", 2.0, 30);
  auto b = single_label_model("x", 4.0, 10);
  const LinearModel m = mix_models({a, b});
  // (30*2 + 10*4) / 40 = 2.5
  EXPECT_DOUBLE_EQ(m.weights(0).w.at(0), 2.5);
  EXPECT_EQ(m.update_count(), 40u);
}

TEST(Mix, UnionsLabels) {
  auto a = single_label_model("x", 2.0, 1);
  auto b = single_label_model("y", -1.0, 1);
  const LinearModel m = mix_models({a, b});
  EXPECT_EQ(m.label_count(), 2u);
  EXPECT_NE(m.find_label("x"), SIZE_MAX);
  EXPECT_NE(m.find_label("y"), SIZE_MAX);
  // Missing label in one model contributes zero weight.
  EXPECT_DOUBLE_EQ(m.weights(m.find_label("x")).w.at(0), 1.0);
}

TEST(Mix, SigmaAveragedWithPriorForMissing) {
  LinearModel a;
  a.weights(a.label_index("x")).sigma[0] = 0.2;
  a.set_update_count(1);
  LinearModel b;
  b.label_index("x");  // sigma entry absent -> prior 1.0
  b.set_update_count(1);
  const LinearModel m = mix_models({a, b});
  EXPECT_DOUBLE_EQ(m.weights(0).sigma.at(0), 0.6);
}

TEST(Mix, MixedModelOutperformsShardsOnPartitionedStreams) {
  // Two learners each see only half the feature space; the MIX should
  // classify the whole space better than either shard alone.
  Arow left;
  Arow right;
  Rng rng(21);
  auto label_of = [](double x, double y) {
    return x + y > 0 ? std::string("pos") : std::string("neg");
  };
  for (int i = 0; i < 4000; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    if (x < 0) {
      left.train(fv2(x, y), label_of(x, y));
    } else {
      right.train(fv2(x, y), label_of(x, y));
    }
  }
  Arow mixed;
  mixed.set_model(mix_models({left.model(), right.model()}));
  int mixed_ok = 0;
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    if (mixed.classify(fv2(x, y)).label == label_of(x, y)) ++mixed_ok;
  }
  EXPECT_GT(mixed_ok, n * 85 / 100);
}

TEST(Mix, DeterministicLabelOrder) {
  auto a = single_label_model("alpha", 1, 1);
  auto b = single_label_model("beta", 1, 1);
  const LinearModel m1 = mix_models({a, b});
  const LinearModel m2 = mix_models({a, b});
  EXPECT_EQ(m1.label_name(0), m2.label_name(0));
  EXPECT_EQ(m1, m2);
}

TEST(Mix, IdempotentOnIdenticalModels) {
  auto a = single_label_model("x", 3.5, 10);
  const LinearModel m = mix_models({a, a, a});
  EXPECT_DOUBLE_EQ(m.weights(0).w.at(0), 3.5);
}

}  // namespace
}  // namespace ifot::ml
