#include "ml/evaluation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ifot::ml {
namespace {

TEST(ConfusionMatrix, EmptyIsZero) {
  ConfusionMatrix m;
  EXPECT_EQ(m.total(), 0u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 0);
  EXPECT_DOUBLE_EQ(m.precision("x"), 0);
  EXPECT_DOUBLE_EQ(m.recall("x"), 0);
  EXPECT_DOUBLE_EQ(m.macro_recall(), 0);
}

TEST(ConfusionMatrix, PerfectPredictions) {
  ConfusionMatrix m;
  for (int i = 0; i < 10; ++i) {
    m.record("a", "a");
    m.record("b", "b");
  }
  EXPECT_EQ(m.total(), 20u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(m.precision("a"), 1.0);
  EXPECT_DOUBLE_EQ(m.recall("b"), 1.0);
  EXPECT_DOUBLE_EQ(m.macro_recall(), 1.0);
}

TEST(ConfusionMatrix, KnownCounts) {
  // truth a: 8 correct, 2 predicted b. truth b: 6 correct, 4 predicted a.
  ConfusionMatrix m;
  for (int i = 0; i < 8; ++i) m.record("a", "a");
  for (int i = 0; i < 2; ++i) m.record("a", "b");
  for (int i = 0; i < 6; ++i) m.record("b", "b");
  for (int i = 0; i < 4; ++i) m.record("b", "a");
  EXPECT_EQ(m.count("a", "a"), 8u);
  EXPECT_EQ(m.count("a", "b"), 2u);
  EXPECT_EQ(m.count("b", "a"), 4u);
  EXPECT_DOUBLE_EQ(m.accuracy(), 14.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.recall("a"), 0.8);
  EXPECT_DOUBLE_EQ(m.recall("b"), 0.6);
  EXPECT_DOUBLE_EQ(m.precision("a"), 8.0 / 12.0);
  EXPECT_DOUBLE_EQ(m.precision("b"), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.macro_recall(), 0.7);
}

TEST(ConfusionMatrix, LabelsGrowDynamically) {
  ConfusionMatrix m;
  m.record("a", "a");
  m.record("b", "c");  // two new labels in one record
  EXPECT_EQ(m.labels().size(), 3u);
  EXPECT_EQ(m.count("b", "c"), 1u);
  EXPECT_EQ(m.count("a", "a"), 1u);  // earlier cells survive growth
  m.record("d", "a");
  EXPECT_EQ(m.count("a", "a"), 1u);
  EXPECT_EQ(m.count("d", "a"), 1u);
}

TEST(ConfusionMatrix, PredictedOnlyLabelExcludedFromMacroRecall) {
  ConfusionMatrix m;
  m.record("a", "a");
  m.record("a", "ghost");  // "ghost" never appears as truth
  EXPECT_DOUBLE_EQ(m.macro_recall(), 0.5);  // only label "a" counts
}

TEST(ConfusionMatrix, RendersTable) {
  ConfusionMatrix m;
  m.record("walk", "walk");
  m.record("fall", "walk");
  const std::string s = m.to_string();
  EXPECT_NE(s.find("walk"), std::string::npos);
  EXPECT_NE(s.find("fall"), std::string::npos);
}

TEST(Evaluate, ScoresTrainedClassifier) {
  Arow clf;
  Rng rng(77);
  std::vector<std::pair<FeatureVector, std::string>> train_set;
  std::vector<std::pair<FeatureVector, std::string>> test_set;
  for (int i = 0; i < 2200; ++i) {
    FeatureVector fv;
    const double x = rng.uniform(-1, 1);
    fv.set(0, x);
    auto& dst = i < 2000 ? train_set : test_set;
    dst.emplace_back(fv, x > 0 ? "pos" : "neg");
  }
  for (const auto& [fv, label] : train_set) clf.train(fv, label);
  const auto result = evaluate(clf, test_set);
  EXPECT_GT(result.accuracy, 0.9);
  EXPECT_EQ(result.matrix.total(), test_set.size());
}

}  // namespace
}  // namespace ifot::ml
