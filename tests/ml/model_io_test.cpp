#include "ml/model_io.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ml/classifier.hpp"

namespace ifot::ml {
namespace {

FeatureVector fv2(double x, double y) {
  FeatureVector fv;
  fv.set(0, x);
  fv.set(1, y);
  return fv;
}

TEST(ModelCodec, LinearRoundTripEmpty) {
  LinearModel m;
  auto decoded = ModelCodec::decode_linear(BytesView(ModelCodec::encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), m);
}

TEST(ModelCodec, LinearRoundTripTrainedModel) {
  Arow clf;
  Rng rng(31);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    clf.train(fv2(x, y), x > y ? "above" : "below");
  }
  const Bytes wire = ModelCodec::encode(clf.model());
  auto decoded = ModelCodec::decode_linear(BytesView(wire));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), clf.model());

  // Decoded model must classify identically.
  Arow clone;
  clone.set_model(std::move(decoded).value());
  for (int i = 0; i < 50; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    EXPECT_EQ(clone.classify(fv2(x, y)).label,
              clf.classify(fv2(x, y)).label);
  }
}

TEST(ModelCodec, EncodingIsDeterministic) {
  Arow clf;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    clf.train(fv2(rng.uniform(-1, 1), rng.uniform(-1, 1)),
              rng.chance(0.5) ? "a" : "b");
  }
  EXPECT_EQ(ModelCodec::encode(clf.model()), ModelCodec::encode(clf.model()));
}

TEST(ModelCodec, RejectsTruncatedLinearModel) {
  LinearModel m;
  m.label_index("x");
  Bytes wire = ModelCodec::encode(m);
  wire.pop_back();
  EXPECT_FALSE(ModelCodec::decode_linear(BytesView(wire)).ok());
}

TEST(ModelCodec, RejectsTrailingBytes) {
  LinearModel m;
  Bytes wire = ModelCodec::encode(m);
  wire.push_back(0xEE);
  EXPECT_FALSE(ModelCodec::decode_linear(BytesView(wire)).ok());
}

TEST(ModelCodec, RejectsUnknownVersion) {
  LinearModel m;
  Bytes wire = ModelCodec::encode(m);
  wire[0] = 0x7F;
  auto decoded = ModelCodec::decode_linear(BytesView(wire));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, Errc::kUnsupported);
}

TEST(ModelCodec, RegressionRoundTrip) {
  PaRegression reg(1.0, 0.05);
  Rng rng(6);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-1, 1);
    reg.train(fv2(x, -x), 3 * x);
  }
  const Bytes wire = ModelCodec::encode(reg);
  auto decoded = ModelCodec::decode_regression(BytesView(wire));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().weights(), reg.weights());
  EXPECT_EQ(decoded.value().update_count(), reg.update_count());
  EXPECT_DOUBLE_EQ(decoded.value().estimate(fv2(0.5, -0.5)),
                   reg.estimate(fv2(0.5, -0.5)));
}

TEST(ModelCodec, RegressionRejectsGarbage) {
  const Bytes garbage = {0x01, 0x02, 0x03};
  EXPECT_FALSE(ModelCodec::decode_regression(BytesView(garbage)).ok());
  EXPECT_FALSE(ModelCodec::decode_linear(BytesView(garbage)).ok());
  EXPECT_FALSE(ModelCodec::decode_linear(BytesView(Bytes{})).ok());
}

TEST(ModelCodec, PreservesUpdateCountForMixWeighting) {
  LinearModel m;
  m.label_index("x");
  m.set_update_count(12345);
  auto decoded = ModelCodec::decode_linear(BytesView(ModelCodec::encode(m)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().update_count(), 12345u);
}

}  // namespace
}  // namespace ifot::ml
