#include "device/sample.hpp"

#include <gtest/gtest.h>

namespace ifot::device {
namespace {

Sample make_sample() {
  Sample s;
  s.source = "accel_a";
  s.seq = 1234;
  s.sensed_at = 5 * kSecond + 250;
  s.fields = {{"ax", 0.12}, {"ay", -3.4}, {"az", 9.81}};
  s.label = "walking";
  return s;
}

TEST(Sample, FieldAccess) {
  const Sample s = make_sample();
  EXPECT_DOUBLE_EQ(s.field("ay", 0), -3.4);
  EXPECT_DOUBLE_EQ(s.field("missing", 7.5), 7.5);
}

TEST(Sample, SetFieldReplacesOrAppends) {
  Sample s = make_sample();
  s.set_field("ax", 1.0);
  EXPECT_DOUBLE_EQ(s.field("ax", 0), 1.0);
  EXPECT_EQ(s.fields.size(), 3u);
  s.set_field("new", 2.0);
  EXPECT_EQ(s.fields.size(), 4u);
  EXPECT_DOUBLE_EQ(s.field("new", 0), 2.0);
}

TEST(SampleCodec, RoundTrip) {
  const Sample s = make_sample();
  auto decoded = decode_sample(BytesView(encode(s)));
  ASSERT_TRUE(decoded.ok()) << decoded.error().to_string();
  EXPECT_EQ(decoded.value(), s);
}

TEST(SampleCodec, RoundTripEmptyFieldsAndLabel) {
  Sample s;
  s.source = "x";
  auto decoded = decode_sample(BytesView(encode(s)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), s);
}

TEST(SampleCodec, RoundTripNegativeTimestamp) {
  Sample s = make_sample();
  s.sensed_at = -1;  // pre-epoch virtual stamps must survive
  auto decoded = decode_sample(BytesView(encode(s)));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sensed_at, -1);
}

TEST(SampleCodec, WireSizeIsCompact) {
  // The paper transmits 32-byte samples; our richer encoding must stay
  // the same order of magnitude for 3-axis data.
  const Bytes wire = encode(make_sample());
  EXPECT_LT(wire.size(), 100u);
}

TEST(SampleCodec, RejectsTruncation) {
  Bytes wire = encode(make_sample());
  for (std::size_t cut = 1; cut < wire.size(); cut += 7) {
    const BytesView prefix(wire.data(), wire.size() - cut);
    EXPECT_FALSE(decode_sample(prefix).ok()) << "cut " << cut;
  }
}

TEST(SampleCodec, RejectsTrailingBytes) {
  Bytes wire = encode(make_sample());
  wire.push_back(0);
  EXPECT_FALSE(decode_sample(BytesView(wire)).ok());
}

TEST(SampleCodec, RejectsAbsurdFieldCount) {
  Bytes wire;
  BinaryWriter w(wire);
  w.str("src");
  w.varint(1);
  w.i64(0);
  w.varint(1u << 20);  // absurd field count
  EXPECT_FALSE(decode_sample(BytesView(wire)).ok());
}

}  // namespace
}  // namespace ifot::device
