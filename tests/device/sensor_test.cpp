#include "device/sensor_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "device/actuator_sim.hpp"

namespace ifot::device {
namespace {

TEST(WaveformSensor, OscillatesAroundOffset) {
  WaveformSensor::Config cfg;
  cfg.offset = 10;
  cfg.amplitude = 2;
  cfg.period = kSecond;
  cfg.noise = 0.0;
  WaveformSensor sensor(cfg, Rng(1));
  double min_v = 1e9;
  double max_v = -1e9;
  for (int i = 0; i < 100; ++i) {
    const auto s = sensor.sample(i * (kSecond / 100));
    const double v = s.field("value", 0);
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_NEAR(min_v, 8.0, 0.2);
  EXPECT_NEAR(max_v, 12.0, 0.2);
}

TEST(WaveformSensor, PeriodRespected) {
  WaveformSensor::Config cfg;
  cfg.amplitude = 1;
  cfg.period = kSecond;
  cfg.noise = 0;
  WaveformSensor sensor(cfg, Rng(1));
  const double v0 = sensor.sample(0).field("value", 0);
  const double v_full = sensor.sample(kSecond).field("value", 0);
  EXPECT_NEAR(v0, v_full, 1e-9);
  const double v_quarter = sensor.sample(kSecond / 4).field("value", 0);
  EXPECT_NEAR(v_quarter, 1.0, 1e-9);
}

TEST(RandomWalkSensor, StaysWithinBounds) {
  RandomWalkSensor::Config cfg;
  cfg.start = 0;
  cfg.step = 5.0;
  cfg.min = -10;
  cfg.max = 10;
  RandomWalkSensor sensor(cfg, Rng(2));
  for (int i = 0; i < 1000; ++i) {
    const double v = sensor.sample(0).field("value", 0);
    EXPECT_GE(v, -10.0);
    EXPECT_LE(v, 10.0);
  }
}

TEST(RandomWalkSensor, IsDeterministicPerSeed) {
  RandomWalkSensor::Config cfg;
  RandomWalkSensor a(cfg, Rng(3));
  RandomWalkSensor b(cfg, Rng(3));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.sample(0), b.sample(0));
  }
}

TEST(ActivitySensor, EmitsLabelsFromStateSet) {
  ActivitySensor sensor(ActivitySensor::default_states(), Rng(4));
  std::set<std::string> labels;
  for (int i = 0; i < 2000; ++i) {
    labels.insert(sensor.sample(0).label);
  }
  // All four states should be visited over 2000 ticks.
  EXPECT_EQ(labels.size(), 4u);
  EXPECT_TRUE(labels.count("walking"));
  EXPECT_TRUE(labels.count("falling"));
}

TEST(ActivitySensor, EmitsThreeAxes) {
  ActivitySensor sensor(ActivitySensor::default_states(), Rng(5));
  const auto s = sensor.sample(0);
  EXPECT_EQ(s.fields.size(), 3u);
  EXPECT_NE(s.field("ax", -999), -999);
  EXPECT_NE(s.field("ay", -999), -999);
  EXPECT_NE(s.field("az", -999), -999);
}

TEST(ActivitySensor, LabelsSeparableByEmissions) {
  // sitting and falling emissions are far apart: averaging many samples
  // per label should recover distinct means.
  ActivitySensor sensor(ActivitySensor::default_states(), Rng(6));
  double sit_az = 0;
  int sit_n = 0;
  double fall_ax = 0;
  int fall_n = 0;
  for (int i = 0; i < 5000; ++i) {
    const auto s = sensor.sample(0);
    if (s.label == "sitting") {
      sit_az += s.field("az", 0);
      ++sit_n;
    } else if (s.label == "falling") {
      fall_ax += s.field("ax", 0);
      ++fall_n;
    }
  }
  ASSERT_GT(sit_n, 10);
  ASSERT_GT(fall_n, 10);
  EXPECT_NEAR(sit_az / sit_n, 9.8, 0.5);
  EXPECT_NEAR(fall_ax / fall_n, 4.0, 1.5);
}

TEST(ConstantSensor, HoldsValueWithNoise) {
  ConstantSensor sensor("lvl", 5.0, 0.01, Rng(7));
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(sensor.sample(0).field("lvl", 0), 5.0, 0.1);
  }
}

TEST(SensorFactory, KnownKinds) {
  for (const char* kind : {"waveform", "random_walk", "activity", "constant"}) {
    auto m = make_sensor_model(kind, Rng(8));
    ASSERT_TRUE(m.ok()) << kind;
    EXPECT_STREQ(m.value()->kind(), kind);
  }
}

TEST(SensorFactory, UnknownKindFails) {
  auto m = make_sensor_model("quantum", Rng(9));
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.error().code, Errc::kNotFound);
}

TEST(ActuatorSink, RecordsCommandsWithLatency) {
  ActuatorSink sink("alarm", from_millis(5));
  Sample s;
  s.source = "detector";
  s.sensed_at = 100 * kMillisecond;
  s.label = "anomaly";
  s.fields = {{"score", 4.2}};
  sink.apply(200 * kMillisecond, s);
  ASSERT_EQ(sink.count(), 1u);
  const auto& rec = sink.records()[0];
  EXPECT_EQ(rec.at, 200 * kMillisecond + from_millis(5));
  EXPECT_EQ(rec.sensed_at, 100 * kMillisecond);
  EXPECT_EQ(rec.source, "detector");
  EXPECT_DOUBLE_EQ(rec.value, 4.2);
  EXPECT_EQ(rec.label, "anomaly");
}

TEST(ActuatorSink, ClearResets) {
  ActuatorSink sink("x");
  sink.apply(0, Sample{});
  sink.clear();
  EXPECT_EQ(sink.count(), 0u);
}

}  // namespace
}  // namespace ifot::device
