// Property tests for the simulated network: conservation, ordering and
// determinism under randomized traffic, jitter and loss.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "net/network.hpp"

namespace ifot::net {
namespace {

struct TrafficResult {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::vector<SimTime> arrivals;
  bool fifo_ok = true;
};

/// Drives random traffic between 4 hosts and checks invariants.
TrafficResult run_traffic(std::uint64_t seed, double loss) {
  sim::Simulator sim;
  LanConfig lan;
  lan.loss_prob = loss;
  Network net(sim, lan, seed);
  constexpr int kHosts = 4;
  std::vector<NodeId> hosts;
  TrafficResult result;
  // Per (src,dst) last sequence seen, to check FIFO.
  std::uint64_t last_seq[kHosts][kHosts] = {};
  for (int i = 0; i < kHosts; ++i) {
    hosts.push_back(net.add_host("h" + std::to_string(i)));
  }
  for (int i = 0; i < kHosts; ++i) {
    net.set_handler(hosts[static_cast<std::size_t>(i)],
                    [&, i](NodeId from, const Bytes& payload) {
                      ++result.delivered;
                      result.arrivals.push_back(sim.now());
                      BinaryReader r{BytesView(payload)};
                      const auto src = from.value();
                      const std::uint64_t seq = r.u64().value();
                      if (seq <= last_seq[src][i] && last_seq[src][i] != 0) {
                        result.fifo_ok = false;
                      }
                      last_seq[src][i] = seq;
                    });
  }
  Rng rng(seed ^ 0xABCDEF);
  std::uint64_t seq = 0;
  for (int burst = 0; burst < 50; ++burst) {
    sim.schedule_at(burst * from_millis(5), [&net, &hosts, &rng, &seq,
                                             &result] {
      for (int m = 0; m < 4; ++m) {
        const auto a = rng.below(4);
        auto b = rng.below(3);
        if (b >= a) ++b;
        Bytes payload;
        BinaryWriter w(payload);
        w.u64(++seq);
        payload.resize(8 + rng.below(200));
        net.send(hosts[a], hosts[b], payload);
        ++result.sent;
      }
    });
  }
  sim.run();
  result.dropped = net.counters().get("drops");
  return result;
}

class NetProperty : public ::testing::TestWithParam<int> {};

TEST_P(NetProperty, ConservationWithoutLoss) {
  const auto r = run_traffic(static_cast<std::uint64_t>(GetParam()), 0.0);
  EXPECT_EQ(r.delivered, r.sent);
  EXPECT_EQ(r.dropped, 0u);
}

TEST_P(NetProperty, ConservationUnderLoss) {
  const auto r = run_traffic(static_cast<std::uint64_t>(GetParam()), 0.3);
  EXPECT_EQ(r.delivered + r.dropped, r.sent);
}

TEST_P(NetProperty, PerPairFifoUnderJitterAndLoss) {
  EXPECT_TRUE(run_traffic(static_cast<std::uint64_t>(GetParam()), 0.0).fifo_ok);
  EXPECT_TRUE(run_traffic(static_cast<std::uint64_t>(GetParam()), 0.2).fifo_ok);
}

TEST_P(NetProperty, DeterministicPerSeed) {
  const auto a = run_traffic(static_cast<std::uint64_t>(GetParam()), 0.1);
  const auto b = run_traffic(static_cast<std::uint64_t>(GetParam()), 0.1);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped, b.dropped);
}

TEST_P(NetProperty, ArrivalsNeverPrecedePhysicalMinimum) {
  const auto r = run_traffic(static_cast<std::uint64_t>(GetParam()), 0.0);
  const LanConfig lan;
  // No frame can arrive before one propagation delay has elapsed.
  for (const SimTime at : r.arrivals) {
    EXPECT_GE(at, lan.propagation);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace ifot::net
