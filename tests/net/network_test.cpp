#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ifot::net {
namespace {

struct Delivery {
  NodeId from;
  Bytes payload;
  SimTime at;
};

class NetworkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

LanConfig quiet_lan() {
  LanConfig lan;
  lan.jitter_max = 0;
  lan.loss_prob = 0;
  return lan;
}

TEST_F(NetworkTest, DeliversToHandler) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  std::vector<Delivery> got;
  net.set_handler(b, [&](NodeId from, const Bytes& p) {
    got.push_back({from, p, sim_.now()});
  });
  net.send(a, b, to_bytes("hello"));
  sim_.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].from, a);
  EXPECT_EQ(to_string(BytesView(got[0].payload)), "hello");
  EXPECT_GT(got[0].at, 0);
}

TEST_F(NetworkTest, DeliveryDelayIncludesPropagationAndAirtime) {
  LanConfig lan = quiet_lan();
  lan.bandwidth_bps = 8e6;  // 1 byte / us
  lan.propagation = from_millis(1);
  lan.per_frame_overhead = from_millis(0.5);
  lan.header_bytes = 0;
  Network net(sim_, lan, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  SimTime arrival = -1;
  net.set_handler(b, [&](NodeId, const Bytes&) { arrival = sim_.now(); });
  net.send(a, b, Bytes(1000, 0));  // 1000 B = 1 ms at 8 Mbit/s
  sim_.run();
  // 0.5 ms overhead + 1 ms airtime + 1 ms propagation = 2.5 ms.
  EXPECT_EQ(arrival, from_millis(2.5));
}

TEST_F(NetworkTest, SharedMediumSerializesConcurrentSenders) {
  LanConfig lan = quiet_lan();
  lan.bandwidth_bps = 8e6;
  lan.propagation = 0;
  lan.per_frame_overhead = 0;
  lan.header_bytes = 0;
  Network net(sim_, lan, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  const NodeId c = net.add_host("c");
  std::vector<SimTime> arrivals;
  net.set_handler(c, [&](NodeId, const Bytes&) {
    arrivals.push_back(sim_.now());
  });
  // Two 1000-byte frames sent at t=0 must occupy the channel back to back.
  net.send(a, c, Bytes(1000, 0));
  net.send(b, c, Bytes(1000, 0));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], from_millis(1));
  EXPECT_EQ(arrivals[1], from_millis(2));
}

TEST_F(NetworkTest, PerPairFifoOrderingHolds) {
  LanConfig lan;
  lan.jitter_max = from_millis(5);  // jitter could reorder without FIFO
  lan.loss_prob = 0;
  Network net(sim_, lan, 7);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  std::vector<std::uint8_t> got;
  net.set_handler(b, [&](NodeId, const Bytes& p) { got.push_back(p[0]); });
  for (std::uint8_t i = 0; i < 50; ++i) net.send(a, b, Bytes{i});
  sim_.run();
  ASSERT_EQ(got.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(got[i], i);
}

TEST_F(NetworkTest, LossConsumesRetransmitsButDelivers) {
  LanConfig lan = quiet_lan();
  lan.loss_prob = 0.5;
  Network net(sim_, lan, 99);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  int delivered = 0;
  net.set_handler(b, [&](NodeId, const Bytes&) { ++delivered; });
  for (int i = 0; i < 200; ++i) net.send(a, b, Bytes{1});
  sim_.run();
  // p(drop) = 0.5^5 per frame; expect ~194+ delivered and retransmits > 0.
  EXPECT_GT(delivered, 150);
  EXPECT_GT(net.counters().get("lan.retransmits"), 50u);
  EXPECT_EQ(net.counters().get("frames"), 200u);
}

TEST_F(NetworkTest, CertainLossDropsFrames) {
  LanConfig lan = quiet_lan();
  lan.loss_prob = 1.0;
  lan.max_attempts = 3;
  Network net(sim_, lan, 3);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  int delivered = 0;
  net.set_handler(b, [&](NodeId, const Bytes&) { ++delivered; });
  net.send(a, b, Bytes{1});
  sim_.run();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.counters().get("drops"), 1u);
  EXPECT_EQ(net.counters().get("lan.retransmits"), 3u);
}

TEST_F(NetworkTest, RemoteHostCrossesWanLatency) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("a");
  WanConfig wan;
  wan.propagation = from_millis(40);
  wan.jitter_max = 0;
  wan.loss_prob = 0;
  const NodeId cloud = net.add_remote_host("cloud", wan);
  SimTime arrival = -1;
  net.set_handler(cloud, [&](NodeId, const Bytes&) { arrival = sim_.now(); });
  net.send(a, cloud, Bytes{1});
  sim_.run();
  EXPECT_GE(arrival, from_millis(40));
  // WAN is far slower than LAN propagation.
  EXPECT_GT(arrival, 10 * quiet_lan().propagation);
}

TEST_F(NetworkTest, WanBandwidthQueuesLargeTransfers) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("a");
  WanConfig wan;
  wan.bandwidth_bps = 8e5;  // 100 B/ms
  wan.propagation = 0;
  wan.jitter_max = 0;
  wan.header_bytes = 0;
  const NodeId cloud = net.add_remote_host("cloud", wan);
  std::vector<SimTime> arrivals;
  net.set_handler(cloud, [&](NodeId, const Bytes&) {
    arrivals.push_back(sim_.now());
  });
  net.send(a, cloud, Bytes(1000, 0));  // 10 ms on the link
  net.send(a, cloud, Bytes(1000, 0));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], from_millis(10));
  EXPECT_EQ(arrivals[1], from_millis(20));
}

TEST_F(NetworkTest, CountersTrackBytes) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  net.set_handler(b, [](NodeId, const Bytes&) {});
  net.send(a, b, Bytes(123, 0));
  net.send(a, b, Bytes(77, 0));
  sim_.run();
  EXPECT_EQ(net.counters().get("bytes"), 200u);
  EXPECT_EQ(net.counters().get("frames"), 2u);
  EXPECT_EQ(net.delivery_latency().count(), 2u);
}

TEST_F(NetworkTest, HostNames) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("alpha");
  const NodeId b = net.add_host("beta");
  EXPECT_EQ(net.host_name(a), "alpha");
  EXPECT_EQ(net.host_name(b), "beta");
  EXPECT_EQ(net.host_count(), 2u);
}

TEST_F(NetworkTest, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulator sim;
    LanConfig lan;  // with jitter
    Network net(sim, lan, seed);
    const NodeId a = net.add_host("a");
    const NodeId b = net.add_host("b");
    std::vector<SimTime> arrivals;
    net.set_handler(b, [&](NodeId, const Bytes&) {
      arrivals.push_back(sim.now());
    });
    for (int i = 0; i < 20; ++i) net.send(a, b, Bytes{1});
    sim.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

TEST_F(NetworkTest, SendFramesDeliversEachFrameInOrder) {
  Network net(sim_, quiet_lan(), 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  std::vector<Delivery> got;
  net.set_handler(b, [&](NodeId from, const Bytes& p) {
    got.push_back({from, p, sim_.now()});
  });
  std::vector<Bytes> frames;
  frames.push_back(to_bytes("one"));
  frames.push_back(to_bytes("two"));
  frames.push_back(to_bytes("three"));
  net.send_frames(a, b, std::move(frames));
  sim_.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(to_string(BytesView(got[0].payload)), "one");
  EXPECT_EQ(to_string(BytesView(got[1].payload)), "two");
  EXPECT_EQ(to_string(BytesView(got[2].payload)), "three");
  // The batch rides one wire frame: all datagrams land at the same
  // instant, split back out in order.
  EXPECT_EQ(got[0].at, got[2].at);
  EXPECT_EQ(net.counters().get("frames"), 3u);
  EXPECT_EQ(net.counters().get("writes"), 1u);
  EXPECT_EQ(net.counters().get("batched_writes"), 1u);
  EXPECT_EQ(net.counters().get("coalesced_frames"), 3u);
}

TEST_F(NetworkTest, SendFramesChargesOneOverheadForTheWholeBatch) {
  LanConfig lan = quiet_lan();
  lan.bandwidth_bps = 8e6;  // 1 byte / us
  lan.propagation = from_millis(1);
  lan.per_frame_overhead = from_millis(0.5);
  lan.header_bytes = 0;
  Network net(sim_, lan, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  std::vector<SimTime> arrivals;
  net.set_handler(b, [&](NodeId, const Bytes&) {
    arrivals.push_back(sim_.now());
  });
  // Two 500-byte datagrams batched = one 1000-byte frame: 0.5 ms overhead
  // (once, not twice) + 1 ms airtime + 1 ms propagation.
  std::vector<Bytes> frames;
  frames.push_back(Bytes(500, 0));
  frames.push_back(Bytes(500, 0));
  net.send_frames(a, b, std::move(frames));
  sim_.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], from_millis(2.5));
  EXPECT_EQ(arrivals[1], from_millis(2.5));
}

TEST_F(NetworkTest, SendFramesKeepsFifoWithSingleSends) {
  LanConfig lan;
  lan.jitter_max = from_millis(5);
  lan.loss_prob = 0;
  Network net(sim_, lan, 11);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  std::vector<std::uint8_t> got;
  net.set_handler(b, [&](NodeId, const Bytes& p) { got.push_back(p[0]); });
  net.send(a, b, Bytes{0});
  std::vector<Bytes> frames;
  frames.push_back(Bytes{1});
  frames.push_back(Bytes{2});
  net.send_frames(a, b, std::move(frames));
  net.send(a, b, Bytes{3});
  sim_.run();
  ASSERT_EQ(got.size(), 4u);
  for (std::uint8_t i = 0; i < 4; ++i) EXPECT_EQ(got[i], i);
}

TEST_F(NetworkTest, SendFramesLossDropsTheWholeBatch) {
  LanConfig lan = quiet_lan();
  lan.loss_prob = 1.0;
  lan.max_attempts = 2;
  Network net(sim_, lan, 3);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  int delivered = 0;
  net.set_handler(b, [&](NodeId, const Bytes&) { ++delivered; });
  std::vector<Bytes> frames;
  frames.push_back(Bytes{1});
  frames.push_back(Bytes{2});
  frames.push_back(Bytes{3});
  net.send_frames(a, b, std::move(frames));
  sim_.run();
  EXPECT_EQ(delivered, 0);
  // Every datagram in the batch is accounted as dropped.
  EXPECT_EQ(net.counters().get("drops"), 3u);
}

TEST_F(NetworkTest, RetransmissionBackoffClampsAtMaxBackoff) {
  // 100% loss with a large attempt budget: the doubled backoff must clamp
  // at max_backoff. Unclamped doubling overflows SimDuration after ~60
  // attempts and corrupts the channel-busy accounting.
  LanConfig lan = quiet_lan();
  lan.loss_prob = 1.0;
  lan.max_attempts = 100;
  lan.rto = from_millis(1);
  lan.max_backoff = from_millis(8);
  Network net(sim_, lan, 1);
  const NodeId a = net.add_host("a");
  const NodeId b = net.add_host("b");
  bool delivered = false;
  net.set_handler(b, [&](NodeId, const Bytes&) { delivered = true; });
  net.send(a, b, Bytes(64, 0));
  sim_.run();
  EXPECT_FALSE(delivered);
  EXPECT_EQ(net.counters().get("drops"), 1u);
  EXPECT_EQ(net.counters().get("lan.retransmits"), 100u);
  // 100 attempts at <= 8 ms backoff each stays well under two seconds of
  // channel-busy time; unclamped doubling left this astronomically large
  // (or negative, once the multiply overflowed).
  EXPECT_GT(net.lan_busy_until(), 0);
  EXPECT_LT(net.lan_busy_until(), from_seconds(2));
}

}  // namespace
}  // namespace ifot::net
