#include "mgmt/paper_experiment.hpp"

#include <gtest/gtest.h>

#include "mgmt/report.hpp"
#include "recipe/parser.hpp"

namespace ifot::mgmt {
namespace {

TEST(PaperRecipe, ParsesAtAllSweptRates) {
  for (double rate : {5.0, 10.0, 20.0, 40.0, 80.0}) {
    auto r = recipe::parse(paper_recipe_text(rate, "arow"));
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r.value().nodes.size(), 6u);  // 3 sensors, train, predict, act
  }
}

TEST(PaperRecipe, ParallelVariantParses) {
  auto r = recipe::parse(paper_recipe_text(40, "arow", 3, 2));
  ASSERT_TRUE(r.ok()) << r.error().to_string();
  auto g = recipe::split_recipe(r.value());
  ASSERT_TRUE(g.ok());
  // 3 sensors + 3 train shards + 2 predict shards + 1 actuator.
  EXPECT_EQ(g.value().tasks.size(), 9u);
}

TEST(PaperReference, TablesMatchPaperText) {
  const auto& t2 = paper_table2_reference();
  ASSERT_EQ(t2.size(), 5u);
  EXPECT_DOUBLE_EQ(t2[0].avg_ms, 58.969);
  EXPECT_DOUBLE_EQ(t2[3].avg_ms, 1123.317);
  const auto& t3 = paper_table3_reference();
  EXPECT_DOUBLE_EQ(t3[4].avg_ms, 1144.580);
  EXPECT_DOUBLE_EQ(t3[4].max_ms, 1249.122);
}

/// One short sweep shared by the shape tests (the experiment is the
/// expensive part; run it once).
class SweepTest : public ::testing::Test {
 protected:
  static const PaperExperimentResult& result() {
    static const PaperExperimentResult kResult = [] {
      PaperExperimentConfig cfg;
      cfg.rates_hz = {5, 10, 40};
      cfg.duration = 10 * kSecond;
      cfg.stall_mean_interval = 0;  // shape tests want a noiseless CPU
      return run_paper_experiment(cfg);
    }();
    return kResult;
  }
};

TEST_F(SweepTest, CompletionsRecordedAtEveryRate) {
  for (const auto& rr : result().rates) {
    EXPECT_GT(rr.train.count(), 10u) << rr.rate_hz;
    EXPECT_GT(rr.predict.count(), 10u) << rr.rate_hz;
    EXPECT_GT(rr.actuations, 10u) << rr.rate_hz;
    EXPECT_GT(rr.samples_emitted, 0u) << rr.rate_hz;
  }
}

TEST_F(SweepTest, LowRateIsRealTime) {
  const auto& low = result().rates[0];
  EXPECT_LT(low.train.avg_ms(), 150.0);
  EXPECT_LT(low.predict.avg_ms(), 150.0);
}

TEST_F(SweepTest, FlatRegionBetween5And10Hz) {
  const auto& r5 = result().rates[0];
  const auto& r10 = result().rates[1];
  // The paper's Tables II/III: 5 and 10 Hz are nearly identical.
  EXPECT_LT(std::abs(r10.train.avg_ms() - r5.train.avg_ms()),
            0.5 * r5.train.avg_ms());
}

TEST_F(SweepTest, TrainingSaturatesAt40Hz) {
  const auto& r5 = result().rates[0];
  const auto& r40 = result().rates[2];
  EXPECT_GT(r40.train.avg_ms(), 5 * r5.train.avg_ms());
  EXPECT_GT(r40.train_module_util, 0.95);  // CPU pinned
}

TEST_F(SweepTest, PredictingCheaperThanTraining) {
  const auto& r40 = result().rates[2];
  EXPECT_LT(r40.predict.avg_ms(), r40.train.avg_ms());
}

TEST_F(SweepTest, UtilizationOrdering) {
  // Broker handles every message but routing is cheap; train is the
  // bottleneck at high rates.
  const auto& r40 = result().rates[2];
  EXPECT_GT(r40.train_module_util, r40.broker_module_util);
}

TEST_F(SweepTest, ReportsRender) {
  const std::string t2 = format_paper_table(result(), /*training=*/true);
  EXPECT_NE(t2.find("Table II"), std::string::npos);
  EXPECT_NE(t2.find("paper avg"), std::string::npos);
  const std::string t3 = format_paper_table(result(), /*training=*/false);
  EXPECT_NE(t3.find("Table III"), std::string::npos);
  const std::string verdict = shape_verdict(result());
  EXPECT_EQ(verdict.find("FAIL"), std::string::npos) << verdict;
}

TEST(TableTest, RendersAlignedAndCsv) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide cell", "x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,long_header,c"), std::string::npos);
  EXPECT_NE(csv.find("1,2,3"), std::string::npos);
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

TEST(Experiment, StallModelRaisesMaxMuchMoreThanAvg) {
  PaperExperimentConfig quiet;
  quiet.rates_hz = {5};
  quiet.duration = 20 * kSecond;
  quiet.stall_mean_interval = 0;
  PaperExperimentConfig stally = quiet;
  stally.stall_mean_interval = 10 * kSecond;
  stally.stall_min = from_millis(150);
  stally.stall_max = from_millis(320);
  const auto base = run_paper_experiment(quiet);
  const auto noisy = run_paper_experiment(stally);
  // Max blows out toward the paper's ~350 ms...
  EXPECT_GT(noisy.rates[0].train.max_ms(), base.rates[0].train.max_ms() + 100);
  // ...while the average moves only a little (the paper's 59 ms avg).
  EXPECT_LT(noisy.rates[0].train.avg_ms(),
            base.rates[0].train.avg_ms() + 30);
}

TEST(Experiment, DeterministicForSeed) {
  PaperExperimentConfig cfg;
  cfg.rates_hz = {10};
  cfg.duration = 5 * kSecond;
  cfg.seed = 123;
  const auto a = run_paper_experiment(cfg);
  const auto b = run_paper_experiment(cfg);
  ASSERT_EQ(a.rates.size(), 1u);
  EXPECT_EQ(a.rates[0].train.samples(), b.rates[0].train.samples());
  EXPECT_EQ(a.rates[0].predict.samples(), b.rates[0].predict.samples());
}

}  // namespace
}  // namespace ifot::mgmt
