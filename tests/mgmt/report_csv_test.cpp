#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "mgmt/report.hpp"

namespace ifot::mgmt {
namespace {

struct EnvGuard {
  explicit EnvGuard(const char* value) {
    if (value == nullptr) {
      ::unsetenv("IFOT_CSV_DIR");
    } else {
      ::setenv("IFOT_CSV_DIR", value, 1);
    }
  }
  ~EnvGuard() { ::unsetenv("IFOT_CSV_DIR"); }
};

Table sample_table() {
  Table t({"a", "b"});
  t.add_row({"1", "x"});
  t.add_row({"2", "y"});
  return t;
}

TEST(CsvExport, NoopWithoutEnv) {
  EnvGuard guard(nullptr);
  EXPECT_EQ(maybe_write_csv("nope", sample_table()), "");
}

TEST(CsvExport, WritesFileUnderDir) {
  EnvGuard guard("/tmp");
  const std::string path = maybe_write_csv("ifot_csv_test", sample_table());
  ASSERT_EQ(path, "/tmp/ifot_csv_test.csv");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,x");
  in.close();
  std::remove(path.c_str());
}

TEST(CsvExport, UnwritableDirFailsGracefully) {
  EnvGuard guard("/nonexistent/dir");
  EXPECT_EQ(maybe_write_csv("x", sample_table()), "");
}

}  // namespace
}  // namespace ifot::mgmt
