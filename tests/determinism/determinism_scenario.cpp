// Determinism gate scenario (scripts/check_determinism.sh runs this
// binary twice and diffs the output byte-for-byte).
//
// A deliberately busy fabric: two brokers, sharded + partitioned ML
// stages with learner-side MIX, an actuator sink, and a mid-run module
// failure with automatic redeploy. After the run it dumps everything
// observable that could diverge between runs: the rolling event-trace
// hash, the executed-event count, and every module's counter ledger plus
// its broker's $SYS counter source, all in sorted order.
#include <cstdio>

#include "core/middleware.hpp"
#include "mqtt/broker.hpp"
#include "node/module.hpp"

namespace {

constexpr const char* kRecipe = R"(
recipe detgate
node src  : sensor  { sensor = "accel", rate_hz = 40, model = "random_walk" }
node tr   : train   { parallelism = 2, mix = true, window = 8 }
node pr   : predict { parallelism = 2 }
node act  : actuator { actuator = "horn" }
edge src -> tr -> pr -> act
)";

}  // namespace

int main() {
  using namespace ifot;

  core::Middleware mw;
  mw.add_module({.name = "edge_a", .sensors = {"accel"}});
  const NodeId hub =
      mw.add_module({.name = "hub", .broker = true, .accept_tasks = false});
  (void)hub;
  mw.add_module({.name = "worker_1"});
  mw.add_module({.name = "worker_2"});
  mw.add_module({.name = "sink", .actuators = {"horn"}});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  auto id = mw.deploy(kRecipe);
  if (!id) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }

  mw.start_flows();
  mw.run_for(4 * kSecond);

  // Mid-run crash + redeploy: failover paths must be as repeatable as the
  // steady state.
  if (auto* w1 = mw.module_by_name("worker_1"); w1 != nullptr) {
    const NodeId failed = w1->id();
    (void)mw.fail_module(failed);
    (void)mw.redeploy_failed(failed);
  }
  mw.run_for(4 * kSecond);
  mw.stop_flows();

  for (const NodeId mid : mw.module_ids()) {
    node::NeuronModule& m = mw.module(mid);
    for (const auto& [key, value] : m.counters().sorted()) {
      std::printf("module %s counter %s=%llu\n", m.name().c_str(),
                  key.c_str(), static_cast<unsigned long long>(value));
    }
    if (const mqtt::Broker* b = m.broker(); b != nullptr) {
      for (const auto& [key, value] : b->counters().sorted()) {
        std::printf("broker %s counter %s=%llu\n", m.name().c_str(),
                    key.c_str(), static_cast<unsigned long long>(value));
      }
    }
  }
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
