// Negative fixture for the determinism gate: prints entropy from
// std::random_device so two runs almost surely differ.
// check_determinism.sh --self-test runs it twice and requires the diff to
// be non-empty, proving the gate can actually detect divergence. Lives
// outside src/, so the ifot_lint nondeterminism ban does not apply.
#include <cstdio>
#include <random>

int main() {
  std::random_device rd;
  std::printf("entropy: %u %u %u %u\n", rd(), rd(), rd(), rd());
  return 0;
}
