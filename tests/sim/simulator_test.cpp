#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ifot::sim {
namespace {

TEST(Simulator, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(30, [&] { fired.push_back(3); });
  sim.schedule_at(10, [&] { fired.push_back(1); });
  sim.schedule_at(20, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, EqualTimestampsFifo) {
  Simulator sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(5, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(100, [&] {
    sim.schedule_after(50, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 150);
}

TEST(Simulator, PastEventsClampToNow) {
  Simulator sim;
  sim.schedule_at(100, [] {});
  sim.run();
  SimTime seen = -1;
  sim.schedule_at(10, [&] { seen = sim.now(); });  // in the past
  sim.run();
  EXPECT_EQ(seen, 100);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool fired = false;
  auto id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelUnknownIsNoop) {
  Simulator sim;
  sim.cancel(EventId{});      // zero id
  sim.cancel(EventId{9999});  // never scheduled
  bool fired = false;
  sim.schedule_at(1, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  std::vector<SimTime> fired;
  for (SimTime t = 10; t <= 100; t += 10) {
    sim.schedule_at(t, [&fired, &sim] { fired.push_back(sim.now()); });
  }
  const std::size_t n = sim.run_until(50);
  EXPECT_EQ(n, 5u);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_EQ(sim.pending(), 5u);
  sim.run_until(200);
  EXPECT_EQ(fired.size(), 10u);
  EXPECT_EQ(sim.now(), 200);  // clock advances to the deadline
}

TEST(Simulator, RunUntilWithEventExactlyAtDeadline) {
  Simulator sim;
  bool fired = false;
  sim.schedule_at(50, [&] { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, RunHonoursMaxEvents) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(i, [&] { ++count; });
  }
  EXPECT_EQ(sim.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.run(), 7u);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(1, recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99);
}

TEST(Simulator, CancelledHeadDoesNotBlockRunUntil) {
  Simulator sim;
  auto id = sim.schedule_at(10, [] {});
  bool fired = false;
  sim.schedule_at(20, [&] { fired = true; });
  sim.cancel(id);
  sim.run_until(20);
  EXPECT_TRUE(fired);
}

TEST(PeriodicTimer, FiresAtFixedPeriod) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, 100, [&] { ticks.push_back(sim.now()); });
  timer.start(100);
  sim.run_until(500);
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 200, 300, 400, 500}));
}

TEST(PeriodicTimer, StartWithZeroDelayFiresImmediately) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 50, [&] { ++ticks; });
  timer.start();
  sim.run_until(100);
  EXPECT_EQ(ticks, 3);  // t=0, 50, 100
}

TEST(PeriodicTimer, StopHaltsTicks) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10, [&] { ++ticks; });
  timer.start(10);
  sim.run_until(30);
  timer.stop();
  sim.run_until(1000);
  EXPECT_EQ(ticks, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, CallbackMayStopTimer) {
  Simulator sim;
  int ticks = 0;
  PeriodicTimer timer(sim, 10, [&] {
    if (++ticks == 2) timer.stop();
  });
  timer.start(10);
  sim.run_until(1000);
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTimer, DestructorCancels) {
  Simulator sim;
  int ticks = 0;
  {
    PeriodicTimer timer(sim, 10, [&] { ++ticks; });
    timer.start(10);
  }
  sim.run_until(100);
  EXPECT_EQ(ticks, 0);
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Simulator sim;
  std::vector<SimTime> ticks;
  PeriodicTimer timer(sim, 100, [&] { ticks.push_back(sim.now()); });
  timer.start(100);
  sim.run_until(150);
  timer.start(100);  // restart at t=150
  sim.run_until(400);
  EXPECT_EQ(ticks, (std::vector<SimTime>{100, 250, 350}));
}

}  // namespace
}  // namespace ifot::sim
