// Nested simulator runs: callbacks that themselves advance the clock
// (the FailoverManager settles the fabric from inside an event). These
// tests pin down the semantics that pattern relies on.
#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace ifot::sim {
namespace {

TEST(NestedRun, InnerRunUntilConsumesEventsOnce) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(10, [&] {
    fired.push_back(1);
    // Nested advance past later events.
    sim.run_until(100);
  });
  sim.schedule_at(50, [&] { fired.push_back(2); });
  sim.schedule_at(200, [&] { fired.push_back(3); });
  sim.run_until(300);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(NestedRun, InnerAdvanceBeyondOuterDeadlineIsMonotonic) {
  Simulator sim;
  SimTime inner_end = 0;
  sim.schedule_at(10, [&] {
    sim.run_until(500);  // beyond the outer deadline
    inner_end = sim.now();
  });
  sim.run_until(100);
  EXPECT_EQ(inner_end, 500);
  EXPECT_GE(sim.now(), 500);  // the clock never goes backwards
}

TEST(NestedRun, EventScheduledDuringNestedRunFires) {
  Simulator sim;
  bool late_fired = false;
  sim.schedule_at(10, [&] {
    sim.schedule_after(5, [&] { late_fired = true; });
    sim.run_until(sim.now() + 20);
    EXPECT_TRUE(late_fired);  // consumed by the nested run
  });
  sim.run_until(100);
  EXPECT_TRUE(late_fired);
}

TEST(NestedRun, CancellationVisibleAcrossNesting) {
  Simulator sim;
  bool cancelled_fired = false;
  EventId victim = sim.schedule_at(50, [&] { cancelled_fired = true; });
  sim.schedule_at(10, [&] {
    sim.cancel(victim);
    sim.run_until(200);
  });
  sim.run_until(300);
  EXPECT_FALSE(cancelled_fired);
}

}  // namespace
}  // namespace ifot::sim
