// Timing-wheel specific edge cases: FIFO order across slot cascades and
// overflow drains, generation-stamped cancel (the old tombstone-set bug),
// rearm semantics, and the scheduler stats ledger.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace ifot::sim {
namespace {

// ---------------------------------------------------------------------------
// Tombstone regression (satellite): the old implementation tracked cancels
// in a set keyed by sequence number; cancelling an event that had already
// fired inserted an entry that was never popped, so pending() — computed
// as heap size minus set size — wrapped around.

TEST(WheelCancel, CancelAfterFireIsInertAndPendingStaysExact) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.pending(), 0u);

  sim.cancel(id);  // stale: the event already fired
  EXPECT_EQ(sim.pending(), 0u);  // the old tombstone bug wrapped this

  // The queue still works: later events schedule and fire normally.
  int later = 0;
  sim.schedule_at(20, [&] { ++later; });
  sim.schedule_at(30, [&] { ++later; });
  EXPECT_EQ(sim.pending(), 2u);
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(later, 2);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(WheelCancel, DoubleCancelCountsOnce) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.schedule_at(10, [&] { fired = true; });
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  sim.cancel(id);  // second cancel of the same handle: no-op
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.stats().cancelled, 1u);
}

TEST(WheelCancel, RecycledNodeIsNotReachableThroughOldHandle) {
  Simulator sim;
  const EventId old_id = sim.schedule_at(10, [] {});
  sim.cancel(old_id);
  // The node recycles into a new arming; the stale handle must not be
  // able to cancel the new event.
  bool fired = false;
  sim.schedule_at(20, [&] { fired = true; });
  sim.cancel(old_id);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
}

// ---------------------------------------------------------------------------
// Equal-timestamp FIFO across wheel-level boundaries: an event parked at a
// coarse level must still fire before a same-timestamp event scheduled
// later (directly into a fine slot), after one or more cascades.

TEST(WheelOrder, EqualTimestampFifoAcrossCascade) {
  Simulator sim;
  std::vector<int> fired;
  // A is scheduled far out (level 2 from t=0), B at the same instant but
  // scheduled when the wheel has advanced next to it (level 0 insert).
  const SimTime target = 10000;
  sim.schedule_at(target, [&] { fired.push_back(1) /* A */; });
  sim.schedule_at(9990, [&] {
    // Base has advanced to 9990: A has cascaded down; B lands in the
    // same level-0 slot and must append *after* A.
    sim.schedule_at(target, [&] { fired.push_back(2) /* B */; });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(WheelOrder, EqualTimestampFifoAtEveryDistance) {
  // Schedule pairs (far-then-near) at one timestamp per level distance;
  // scheduling order must win every time.
  Simulator sim;
  std::vector<std::pair<SimTime, int>> fired;
  const std::array<SimTime, 6> targets = {63,      64,      4095,
                                          4097,    262144,  16777215};
  for (const SimTime t : targets) {
    sim.schedule_at(t, [&fired, t] { fired.emplace_back(t, 1); });
  }
  for (const SimTime t : targets) {
    sim.schedule_at(t, [&fired, t] { fired.emplace_back(t, 2); });
  }
  sim.run();
  ASSERT_EQ(fired.size(), 2 * targets.size());
  std::size_t i = 0;
  for (const SimTime t : targets) {
    EXPECT_EQ(fired[i++], std::make_pair(t, 1));
    EXPECT_EQ(fired[i++], std::make_pair(t, 2));
  }
}

// ---------------------------------------------------------------------------
// Far-future overflow heap: events past the 2^48 ns wheel horizon.

TEST(WheelOverflow, FarFutureEventsFireInOrder) {
  Simulator sim;
  const SimTime far = SimTime{1} << 50;  // beyond the 48-bit horizon
  std::vector<int> fired;
  sim.schedule_at(far + 5, [&] { fired.push_back(3); });
  sim.schedule_at(far, [&] { fired.push_back(2); });
  sim.schedule_at(100, [&] { fired.push_back(1); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), far + 5);
}

TEST(WheelOverflow, EqualTimestampFifoAcrossOverflowDrain) {
  Simulator sim;
  const SimTime far = SimTime{1} << 50;
  std::vector<int> fired;
  // A enters the overflow heap at t=0.
  sim.schedule_at(far, [&] { fired.push_back(2) /* A */; });
  // This event pulls the wheel across the 2^48 window boundary (draining
  // A into the wheel), then schedules B at A's exact timestamp.
  sim.schedule_at(far - 5, [&] {
    fired.push_back(1);
    sim.schedule_at(far, [&] { fired.push_back(3) /* B */; });
  });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(WheelOverflow, CancelledOverflowEntryNeverFires) {
  Simulator sim;
  const SimTime far = SimTime{1} << 52;
  bool fired = false;
  const EventId id = sim.schedule_at(far, [&] { fired = true; });
  EXPECT_EQ(sim.pending(), 1u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(sim.run(), 0u);
  EXPECT_FALSE(fired);
}

// ---------------------------------------------------------------------------
// rearm: O(1) deadline moves that keep the stored callback.

TEST(WheelRearm, MoveEarlierAndLater) {
  Simulator sim;
  SimTime fired_at = -1;
  EventId id = sim.schedule_at(100, [&] { fired_at = sim.now(); });

  id = sim.rearm(id, 200);  // later
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(sim.pending(), 1u);

  id = sim.rearm(id, 50);  // earlier
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired_at, 50);
  EXPECT_EQ(sim.stats().rearmed, 2u);
}

TEST(WheelRearm, PastTimeClampsToNow) {
  Simulator sim;
  sim.schedule_at(40, [] {});
  SimTime fired_at = -1;
  EventId id = sim.schedule_at(100, [&] { fired_at = sim.now(); });
  sim.run_until(40);
  id = sim.rearm(id, 10);  // in the past: clamps to now() == 40
  ASSERT_TRUE(id.valid());
  sim.run();
  EXPECT_EQ(fired_at, 40);
}

TEST(WheelRearm, StaleHandleReturnsInvalid) {
  Simulator sim;
  const EventId fired_id = sim.schedule_at(10, [] {});
  sim.run();
  EXPECT_FALSE(sim.rearm(fired_id, 100).valid());

  const EventId cancelled_id = sim.schedule_at(20, [] {});
  sim.cancel(cancelled_id);
  EXPECT_FALSE(sim.rearm(cancelled_id, 100).valid());
  EXPECT_FALSE(sim.rearm(EventId{}, 100).valid());
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(WheelRearm, OldHandleDiesOnRearm) {
  Simulator sim;
  bool fired = false;
  const EventId old_id = sim.schedule_at(100, [&] { fired = true; });
  const EventId new_id = sim.rearm(old_id, 200);
  ASSERT_TRUE(new_id.valid());
  sim.cancel(old_id);  // stale: must not cancel the re-armed event
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_TRUE(fired);
  // And the new handle is stale after firing.
  EXPECT_FALSE(sim.rearm(new_id, 300).valid());
}

TEST(WheelRearm, FromInsideOwnCallbackRevivesNode) {
  Simulator sim;
  int fires = 0;
  EventId id{};
  id = sim.schedule_at(10, [&] {
    ++fires;
    if (fires < 3) {
      id = sim.rearm_after(id, 10);
      ASSERT_TRUE(id.valid());
    }
  });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 30);
  EXPECT_EQ(sim.pending(), 0u);
  // One node serviced every firing; the callback was built exactly once.
  EXPECT_EQ(sim.stats().nodes_created, 1u);
}

TEST(WheelRearm, RearmOverflowEventIntoWheel) {
  Simulator sim;
  SimTime fired_at = -1;
  EventId id = sim.schedule_at(SimTime{1} << 50, [&] { fired_at = sim.now(); });
  id = sim.rearm(id, 500);
  ASSERT_TRUE(id.valid());
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired_at, 500);
}

// ---------------------------------------------------------------------------
// Nested run_until from inside a handler against wheel state.

TEST(WheelNested, InnerRunAcrossCascadeBoundary) {
  Simulator sim;
  std::vector<int> fired;
  sim.schedule_at(5000, [&] { fired.push_back(2); });
  sim.schedule_at(10, [&] {
    fired.push_back(1);
    sim.run_until(6000);  // inner run consumes the level-1 event
    fired.push_back(3);
  });
  sim.schedule_at(5500, [&] { fired.push_back(4); });  // also inner
  // The inner run_until consumes events 2 and 4; the outer run fires 1.
  EXPECT_EQ(sim.run(), 1u);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 4, 3}));
  EXPECT_EQ(sim.now(), 6000);
}

// ---------------------------------------------------------------------------
// Callback storage: large captures spill to the pool and are destroyed.

TEST(WheelCallback, OversizedCapturesFireAndRecycle) {
  Simulator sim;
  std::array<std::uint64_t, 16> blob{};  // 128 bytes: far past the SBO
  for (std::size_t i = 0; i < blob.size(); ++i) blob[i] = i * 3 + 1;
  std::uint64_t sum = 0;
  sim.schedule_at(10, [blob, &sum] {
    for (const auto v : blob) sum += v;
  });
  sim.run();
  EXPECT_EQ(sum, 376u);  // sum of i*3+1 for i in [0, 16)
  // Steady state: re-scheduling the same shape reuses the pooled spill
  // block and the node.
  const std::size_t retained = sim.stats().pool_retained_bytes;
  for (int round = 0; round < 50; ++round) {
    sim.schedule_after(5, [blob, &sum] { sum += blob[0]; });
    sim.run();
  }
  EXPECT_EQ(sim.stats().pool_retained_bytes, retained);
  EXPECT_EQ(sim.stats().nodes_created, 1u);
}

TEST(WheelCallback, CancelDestroysCapturedState) {
  // A shared_ptr capture must be released on cancel, not at simulator
  // destruction.
  Simulator sim;
  auto token = std::make_shared<int>(42);
  const EventId id = sim.schedule_at(10, [token] { (void)*token; });
  EXPECT_EQ(token.use_count(), 2);
  sim.cancel(id);
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// Stats ledger.

TEST(WheelStats, LedgerTracksChurnAndOccupancy) {
  Simulator sim;
  EventId a = sim.schedule_at(10, [] {});
  sim.schedule_at(20, [] {});
  sim.schedule_at(20, [] {});
  EXPECT_EQ(sim.stats().pending, 3u);
  EXPECT_EQ(sim.stats().occupancy_high_water, 3u);
  sim.cancel(a);
  EXPECT_EQ(sim.stats().pending, 2u);
  sim.run();
  const SchedulerStats s = sim.stats();
  EXPECT_EQ(s.scheduled, 3u);
  EXPECT_EQ(s.cancelled, 1u);
  EXPECT_EQ(s.fired, 2u);
  EXPECT_EQ(s.fired, sim.events_executed());
  EXPECT_EQ(s.pending, 0u);
  EXPECT_EQ(s.occupancy_high_water, 3u);
  EXPECT_GT(s.pool_retained_bytes, 0u);
}

}  // namespace
}  // namespace ifot::sim
