// Differential proof of the timing wheel: replay randomized operation
// scripts — schedules at every wheel distance (same-tick through past the
// 2^48 overflow horizon), cancels (live, stale, double), rearms
// (expressed as cancel+schedule on the reference), and nested runs —
// against both the wheel-based sim::Simulator and a reference heap
// scheduler (the historical priority_queue implementation), and demand
// byte-identical firing order and trace hashes.
//
// The reference computes the exact same FNV-1a fold over (at, seq) with
// the exact same sequence-number assignment rule, so trace_hash()
// equality is a bit-for-bit statement that the wheel fires every event
// at the same virtual time, in the same global order, as a total-order
// heap would.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace ifot::sim {
namespace {

/// The historical scheduler: binary heap ordered by (at, seq), callbacks
/// as std::function, cancel via an alive-map (the tombstone set of the
/// old implementation, minus its cancel-after-fire accounting bug).
class ReferenceScheduler {
 public:
  using Handle = std::uint64_t;  // the raw seq, as the old EventId held

  [[nodiscard]] SimTime now() const { return now_; }

  Handle schedule_at(SimTime at, std::function<void()> fn) {
    if (at < now_) at = now_;
    const Handle h = next_seq_++;
    alive_.emplace(h, std::move(fn));
    heap_.push(Entry{at, h});
    return h;
  }

  void cancel(Handle h) { alive_.erase(h); }

  std::size_t run(std::size_t max_events = SIZE_MAX) {
    std::size_t n = 0;
    while (n < max_events && pop_one()) ++n;
    return n;
  }

  std::size_t run_until(SimTime deadline) {
    std::size_t n = 0;
    while (!heap_.empty()) {
      while (!heap_.empty() && alive_.count(heap_.top().seq) == 0) {
        heap_.pop();
      }
      if (heap_.empty() || heap_.top().at > deadline) break;
      if (pop_one()) ++n;
    }
    if (now_ < deadline) now_ = deadline;
    return n;
  }

  [[nodiscard]] std::size_t pending() const { return alive_.size(); }
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    Handle seq;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool pop_one() {
    while (!heap_.empty()) {
      const Entry e = heap_.top();
      heap_.pop();
      auto it = alive_.find(e.seq);
      if (it == alive_.end()) continue;  // cancelled
      std::function<void()> fn = std::move(it->second);
      alive_.erase(it);
      now_ = e.at;
      trace_event(e.at, e.seq);
      fn();
      return true;
    }
    return false;
  }

  void trace_event(SimTime at, std::uint64_t seq) {
    constexpr std::uint64_t kPrime = 0x100000001B3ULL;
    auto fold = [this](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        trace_hash_ ^= (v >> (8 * i)) & 0xFF;
        trace_hash_ *= kPrime;
      }
    };
    fold(static_cast<std::uint64_t>(at));
    fold(seq);
    ++executed_;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t trace_hash_ = 0xCBF29CE484222325ULL;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::map<Handle, std::function<void()>> alive_;
};

/// Uniform driver facade so one script runs verbatim against both
/// schedulers. Each scheduled event logs (tag, fire-time) and may take a
/// deterministic nested action derived from its tag.
template <typename Adapter>
class Driver {
 public:
  Adapter& sched() { return sched_; }

  void schedule(SimTime at, std::uint32_t tag) {
    handles_.emplace_back(sched_.schedule(at, [this, tag] { on_fire(tag); }),
                          tag);
  }

  // Cancels the k-th remembered handle (possibly already fired/stale).
  void cancel(std::size_t k) {
    if (handles_.empty()) return;
    sched_.cancel(handles_[k % handles_.size()].first);
  }

  // Rearms the k-th remembered handle. The wheel keeps the stored
  // callback; the reference re-schedules a closure with the *same* tag —
  // which is exactly the cancel+schedule pattern rearm replaces. A stale
  // handle falls back to a fresh schedule on both sides.
  void rearm(std::size_t k, SimTime at) {
    if (handles_.empty()) return;
    auto& [h, tag] = handles_[k % handles_.size()];
    h = sched_.rearm(h, at, [this, tag = tag] { on_fire(tag); });
  }

  std::size_t run(std::size_t max_events) { return sched_.run(max_events); }
  std::size_t run_until(SimTime deadline) {
    return sched_.run_until(deadline);
  }

  [[nodiscard]] const std::vector<std::pair<std::uint32_t, SimTime>>& log()
      const {
    return log_;
  }

 private:
  void on_fire(std::uint32_t tag) {
    log_.emplace_back(tag, sched_.now());
    // Deterministic nested behaviour, keyed purely off the tag so both
    // drivers take identical actions (+100003 shifts tag % 8 so spawn
    // chains terminate). Spawns and rearms burn shared fuel: a rearm
    // can revive the firing event's own handle (a periodic timer), and
    // without the budget a far-horizon run_until would fire it without
    // bound. Fires happen in identical order on both drivers (asserted
    // by the script), so the fuel drains identically too.
    switch (tag % 8) {
      case 0:  // schedule a child event nearby
        if (fuel_ == 0) break;
        --fuel_;
        schedule(sched_.now() + 1 + tag % 97, tag + 100003);
        break;
      case 1:  // cancel some remembered handle
        cancel(tag);
        break;
      case 2:  // rearm some remembered handle
        if (fuel_ == 0) break;
        --fuel_;
        rearm(tag, sched_.now() + 3 + tag % 53);
        break;
      case 3:  // nested bounded run from inside a handler
        run_until(sched_.now() + tag % 31);
        break;
      default:
        break;
    }
  }

  Adapter sched_;
  std::uint64_t fuel_ = 20000;  // nested spawn/rearm budget per script
  std::vector<std::pair<typename Adapter::Handle, std::uint32_t>> handles_;
  std::vector<std::pair<std::uint32_t, SimTime>> log_;
};

struct WheelAdapter {
  using Handle = EventId;
  Simulator sim;

  [[nodiscard]] SimTime now() const { return sim.now(); }
  template <typename F>
  Handle schedule(SimTime at, F&& fn) {
    return sim.schedule_at(at, std::forward<F>(fn));
  }
  void cancel(Handle h) { sim.cancel(h); }
  template <typename F>
  Handle rearm(Handle h, SimTime at, F&& fn) {
    const Handle moved = sim.rearm(h, at);
    if (moved.valid()) return moved;
    // Stale handle: fall back to a fresh schedule, the documented
    // equivalence (and what every production call site does).
    return sim.schedule_at(at, std::forward<F>(fn));
  }
  std::size_t run(std::size_t m) { return sim.run(m); }
  std::size_t run_until(SimTime d) { return sim.run_until(d); }
  [[nodiscard]] std::size_t pending() const { return sim.pending(); }
  [[nodiscard]] std::uint64_t trace_hash() const { return sim.trace_hash(); }
  [[nodiscard]] std::uint64_t events_executed() const {
    return sim.events_executed();
  }
};

struct ReferenceAdapter {
  using Handle = ReferenceScheduler::Handle;
  ReferenceScheduler sim;

  [[nodiscard]] SimTime now() const { return sim.now(); }
  template <typename F>
  Handle schedule(SimTime at, F&& fn) {
    return sim.schedule_at(at, std::forward<F>(fn));
  }
  void cancel(Handle h) { sim.cancel(h); }
  template <typename F>
  Handle rearm(Handle h, SimTime at, F&& fn) {
    // rearm == cancel + schedule-with-one-fresh-seq, by definition.
    sim.cancel(h);
    return sim.schedule_at(at, std::forward<F>(fn));
  }
  std::size_t run(std::size_t m) { return sim.run(m); }
  std::size_t run_until(SimTime d) { return sim.run_until(d); }
  [[nodiscard]] std::size_t pending() const { return sim.pending(); }
  [[nodiscard]] std::uint64_t trace_hash() const { return sim.trace_hash(); }
  [[nodiscard]] std::uint64_t events_executed() const {
    return sim.events_executed();
  }
};

/// Mixed-distance delay: exercises every wheel level, the same-tick path,
/// and the far-future overflow heap.
SimDuration random_delay(Rng& rng) {
  switch (rng.below(8)) {
    case 0:
      return 0;  // same tick: FIFO path
    case 1:
      return static_cast<SimDuration>(rng.below(64));  // level 0
    case 2:
      return static_cast<SimDuration>(rng.below(1 << 12));  // level 1
    case 3:
      return static_cast<SimDuration>(rng.below(1 << 18));  // level 2
    case 4:
      return static_cast<SimDuration>(rng.below(1ULL << 30));  // level 4-5
    case 5:
      return static_cast<SimDuration>(rng.below(1ULL << 44));  // level 7
    case 6:  // past the 2^48 horizon: overflow heap
      return static_cast<SimDuration>((1ULL << 48) + rng.below(1ULL << 49));
    default:
      return static_cast<SimDuration>(rng.below(1000));  // clustered
  }
}

void run_script(std::uint64_t seed, int ops) {
  Driver<WheelAdapter> wheel;
  Driver<ReferenceAdapter> ref;
  Rng rng(seed);

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t roll = rng.below(100);
    if (roll < 55) {
      // Schedule: frequently duplicate the timestamp of a recent
      // schedule by reusing the rng stream deterministically.
      const SimDuration d = random_delay(rng);
      const auto tag = static_cast<std::uint32_t>(op);
      wheel.schedule(wheel.sched().now() + d, tag);
      ref.schedule(ref.sched().now() + d, tag);
      if (rng.below(4) == 0) {  // same-timestamp sibling: FIFO tiebreak
        wheel.schedule(wheel.sched().now() + d, tag + 500000);
        ref.schedule(ref.sched().now() + d, tag + 500000);
      }
    } else if (roll < 65) {
      const auto k = static_cast<std::size_t>(rng.next());
      wheel.cancel(k);
      ref.cancel(k);
      if (rng.below(3) == 0) {  // double cancel
        wheel.cancel(k);
        ref.cancel(k);
      }
    } else if (roll < 75) {
      const auto k = static_cast<std::size_t>(rng.next());
      const SimDuration d = random_delay(rng);
      wheel.rearm(k, wheel.sched().now() + d);
      ref.rearm(k, ref.sched().now() + d);
    } else if (roll < 90) {
      const SimDuration d = random_delay(rng);
      const std::size_t nw = wheel.run_until(wheel.sched().now() + d);
      const std::size_t nr = ref.run_until(ref.sched().now() + d);
      ASSERT_EQ(nw, nr) << "run_until diverged at op " << op;
    } else {
      const std::size_t burst = rng.below(32) + 1;
      const std::size_t nw = wheel.run(burst);
      const std::size_t nr = ref.run(burst);
      ASSERT_EQ(nw, nr) << "run diverged at op " << op;
    }
    ASSERT_EQ(wheel.sched().pending(), ref.sched().pending())
        << "pending diverged at op " << op;
    ASSERT_EQ(wheel.sched().now(), ref.sched().now())
        << "clock diverged at op " << op;
  }

  // Drain everything and compare the full history.
  wheel.run(100000);
  ref.run(100000);
  ASSERT_EQ(wheel.log().size(), ref.log().size());
  for (std::size_t i = 0; i < wheel.log().size(); ++i) {
    ASSERT_EQ(wheel.log()[i], ref.log()[i]) << "firing " << i << " diverged";
  }
  EXPECT_EQ(wheel.sched().events_executed(), ref.sched().events_executed());
  EXPECT_EQ(wheel.sched().trace_hash(), ref.sched().trace_hash())
      << "trace hash diverged: the wheel did not reproduce the reference "
         "heap's total (at, seq) order";
}

TEST(WheelDifferential, Seed1) { run_script(1, 1200); }
TEST(WheelDifferential, Seed42) { run_script(42, 1200); }
TEST(WheelDifferential, SeedPaper2016) { run_script(2016, 1200); }
TEST(WheelDifferential, ManyShortScripts) {
  for (std::uint64_t seed = 100; seed < 120; ++seed) run_script(seed, 150);
}

}  // namespace
}  // namespace ifot::sim
