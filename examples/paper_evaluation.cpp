// Reproduces the paper's evaluation (Section V) as a runnable example:
// builds the six-module topology of Fig. 7, deploys the Fig. 9 class
// wiring as a recipe, sweeps the sensing rates of Tables II/III, and
// prints the management node's view (placement, fabric status, flow
// directory) plus the reproduced tables.
//
// The bench binaries (bench/bench_table2_training etc.) are the canonical
// regeneration path; this example shows the same experiment through the
// public API.
#include <cstdio>

#include "mgmt/flow_directory.hpp"
#include "mgmt/paper_experiment.hpp"
#include "mgmt/report.hpp"
#include "mgmt/status_board.hpp"

int main() {
  using namespace ifot;

  // Show the fabric once, at 10 Hz, through the management interfaces.
  {
    core::Middleware mw;
    mw.add_module({.name = "module_a", .sensors = {"sensor_a"}});
    mw.add_module({.name = "module_b", .sensors = {"sensor_b"}});
    mw.add_module({.name = "module_c", .sensors = {"sensor_c"}});
    const NodeId broker =
        mw.add_module({.name = "module_d", .broker = true,
                       .accept_tasks = false});
    mw.add_module({.name = "module_e"});
    mw.add_module({.name = "module_f", .actuators = {"display"}});
    if (auto s = mw.start(); !s) {
      std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
      return 1;
    }
    mgmt::FlowDirectory directory;
    (void)directory.attach(mw, broker);
    (void)mw.deploy(mgmt::paper_recipe_text(10, "arow"));
    mw.start_flows();
    mw.run_for(5 * kSecond);
    mw.stop_flows();
    std::printf("determinism: events=%llu trace_hash=%016llx\n",
                static_cast<unsigned long long>(
                    mw.simulator().events_executed()),
                static_cast<unsigned long long>(
                    mw.simulator().trace_hash()));
    const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
    std::printf(
        "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
        "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
        static_cast<unsigned long long>(sim_stats.scheduled),
        static_cast<unsigned long long>(sim_stats.fired),
        static_cast<unsigned long long>(sim_stats.cancelled),
        static_cast<unsigned long long>(sim_stats.rearmed),
        static_cast<unsigned long long>(sim_stats.occupancy_high_water),
        static_cast<unsigned long long>(sim_stats.overflow_high_water),
        static_cast<unsigned long long>(sim_stats.nodes_created),
        static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
    std::printf("%s\n", mgmt::placement_board(mw).c_str());
    std::printf("%s\n", directory.to_string().c_str());
    std::printf("%s\n", mgmt::fabric_status(mw).c_str());
  }

  // The full rate sweep of Tables II and III.
  mgmt::PaperExperimentConfig cfg;  // paper rates, 6 s window
  const auto result = mgmt::run_paper_experiment(cfg);
  std::printf("%s\n",
              mgmt::format_paper_table(result, /*training=*/true).c_str());
  std::printf("%s\n",
              mgmt::format_paper_table(result, /*training=*/false).c_str());
  std::printf("%s\n", mgmt::shape_verdict(result).c_str());
  return 0;
}
