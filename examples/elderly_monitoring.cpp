// Elderly-monitoring application (paper §III-A.1).
//
// Wearable + ambient sensors stream labelled activity data; the fabric
// trains an online activity classifier (Learning class), classifies live
// samples (Judging class), and raises a bedside alarm when a fall is
// detected — all on local modules, no cloud.
//
// This exercises: multi-sensor fan-in, train/predict model shipping over
// MQTT, anomaly detection on a second path, and actuator integration.
#include <cstdio>

#include "core/middleware.hpp"

namespace {

constexpr const char* kRecipe = R"(
recipe elderly_monitoring
# Wearable accelerometer on the wrist, ambient motion sensor in the room.
node wrist   : sensor { sensor = "wrist_accel", rate_hz = 20, model = "activity" }
node room    : sensor { sensor = "room_motion", rate_hz = 10, model = "activity" }

# Learning class: online AROW classifier over the labelled stream.
node learner : train  { algorithm = "arow", publish_every = 16 }

# Judging class: classify live samples with the latest shipped model.
node judge   : predict { }

# Keep only detected falls, then raise the alarm.
node falls   : filter  { field = "confidence", op = "gt", value = 0.0 }
node alarm   : actuator { actuator = "bedside_alarm" }

# Secondary path: statistical anomaly detection on raw motion.
node detect  : anomaly { algorithm = "zscore", threshold = 4.5, emit = "anomalies" }
node notify  : actuator { actuator = "caregiver_pager" }

edge wrist -> learner
edge room  -> learner
edge wrist -> judge
edge room  -> judge
edge learner -> judge
edge judge -> falls -> alarm
edge wrist -> detect -> notify
)";

}  // namespace

int main() {
  using namespace ifot;

  core::Middleware mw;
  mw.add_module({.name = "wearable_hub", .sensors = {"wrist_accel"}});
  mw.add_module({.name = "room_node", .sensors = {"room_motion"}});
  mw.add_module({.name = "home_gateway", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "compute_node"});
  mw.add_module({.name = "bedside_node",
                 .actuators = {"bedside_alarm", "caregiver_pager"}});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  auto id = mw.deploy(kRecipe, "load_aware");
  if (!id) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", mw.describe(mw.deployments().back()).c_str());

  // Track classification outcomes and fall alarms.
  std::size_t falls_predicted = 0;
  std::size_t judged = 0;
  LatencyRecorder judge_latency;
  mw.set_completion_hook([&](const recipe::Task& task,
                             const device::Sample& sample, SimTime now) {
    if (task.name == "judge") {
      ++judged;
      judge_latency.record(now - sample.sensed_at);
      if (sample.label == "falling") ++falls_predicted;
    }
  });

  mw.start_flows();
  mw.run_for(60 * kSecond);
  mw.stop_flows();

  auto* alarm = mw.module_by_name("bedside_node")->actuator("bedside_alarm");
  auto* pager = mw.module_by_name("bedside_node")->actuator("caregiver_pager");
  std::printf("\n60 s of monitoring (virtual time):\n");
  std::printf("  samples judged:            %zu\n", judged);
  std::printf("  falls predicted:           %zu\n", falls_predicted);
  std::printf("  alarm actuations:          %zu\n", alarm->count());
  std::printf("  anomaly pages:             %zu\n", pager->count());
  std::printf("  sensing->judgement delay:  avg %.2f ms, max %.2f ms\n",
              judge_latency.avg_ms(), judge_latency.max_ms());
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(
                  mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
