// Federated smart city: a K=4 topic-sharded broker mesh.
//
//  * four districts, each with its own broker; the federation map pins
//    every district's flow prefix to its broker, so sensors publish
//    shard-locally and no broker sees more than ~1/K of the ingress;
//  * a "$share/analytics/..." shared-subscription load group splitting
//    one district's telemetry across three workers, round-robin, with
//    no duplicate deliveries;
//  * a roaming publisher that lands its reports on the wrong shard (it
//    publishes via its nearest broker) — the federation bridges forward
//    them to the owning shard's subscribers;
//  * mesh health: every broker's $SYS stats are re-published at its
//    peers under $SYS/federation/peer/<broker>/..., so the management
//    plane reads the whole mesh from any shard.
#include <array>
#include <cstdio>
#include <set>
#include <string>

#include "core/middleware.hpp"
#include "mgmt/flow_directory.hpp"

namespace {

std::string district_recipe(const std::string& name) {
  // The window aggregator is pinned to the gateway so the telemetry flow
  // genuinely crosses the district's broker (an unpinned window would
  // land beside its sensor and take the in-process fast path).
  return "recipe " + name +
         "\n"
         "node traffic : sensor { sensor = \"cam_" +
         name +
         "\", rate_hz = 20, model = \"activity\" }\n"
         "node flow_1s : window { span_ms = 1000, aggregate = \"mean\", "
         "pin = \"gateway\" }\n"
         "edge traffic -> flow_1s\n";
}

}  // namespace

int main() {
  using namespace ifot;

  const std::array<std::string, 4> districts = {"north", "south", "east",
                                                "west"};

  core::MiddlewareConfig cfg;
  cfg.broker.sys_interval = 5 * kSecond;  // mesh health via $SYS
  cfg.federation.enabled = true;
  for (std::size_t i = 0; i < districts.size(); ++i) {
    cfg.federation.prefixes.emplace_back("ifot/" + districts[i], i);
  }
  cfg.federation.prefixes.emplace_back("city/roam", 2);  // roamer's owner

  core::Middleware mw(cfg);
  std::array<NodeId, 4> brokers{};
  for (std::size_t i = 0; i < districts.size(); ++i) {
    brokers[i] = mw.add_module({.name = "broker_" + districts[i],
                                .broker = true,
                                .accept_tasks = false});
    mw.add_module({.name = "hub_" + districts[i],
                   .sensors = {"cam_" + districts[i]}});
  }
  std::array<NodeId, 3> workers{};
  for (std::size_t w = 0; w < workers.size(); ++w) {
    workers[w] = mw.add_module({.name = "worker_" + std::to_string(w)});
  }
  const NodeId gateway = mw.add_module({.name = "gateway"});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  mgmt::FlowDirectory directory;
  (void)directory.attach(mw, gateway);

  // One application per district; the shard map routes each recipe's
  // flows to its district broker.
  for (const auto& d : districts) {
    if (auto r = mw.deploy(district_recipe(d)); !r) {
      std::fprintf(stderr, "deploy %s failed: %s\n", d.c_str(),
                   r.error().to_string().c_str());
      return 1;
    }
  }

  // Analytics load group: three workers share the north district's raw
  // telemetry; the broker deals messages round-robin with no duplicates.
  std::array<std::size_t, 3> shared_seen{};
  for (std::size_t w = 0; w < workers.size(); ++w) {
    if (auto s = mw.watch_shard(
            workers[w], "$share/analytics/ifot/north/traffic",
            [&shared_seen, w](const std::string&, const Bytes&) {
              ++shared_seen[w];
            });
        !s) {
      std::fprintf(stderr, "watch_shard failed: %s\n",
                   s.error().to_string().c_str());
      return 1;
    }
  }
  // A plain subscription to the same flow sees every message exactly
  // once — the reference count for the no-duplicates check.
  std::size_t plain_seen = 0;
  (void)mw.watch(gateway, "ifot/north/traffic",
                 [&plain_seen](const std::string&, const Bytes&) {
                   ++plain_seen;
                 });

  // Cross-shard traffic: the gateway's nearest broker is broker 0, but
  // city/roam/... is pinned to broker 2 — the mesh bridges the gap.
  std::size_t roam_seen = 0;
  (void)mw.watch_shard(workers[0], "city/roam/alert",
                       [&roam_seen](const std::string&, const Bytes&) {
                         ++roam_seen;
                       });
  sim::PeriodicTimer roamer(mw.simulator(), from_millis(500), [&mw] {
    (void)mw.module(mw.module_ids().back())
        .client()
        ->publish("city/roam/alert", to_bytes("congestion"),
                  mqtt::QoS::kAtLeastOnce, /*retain=*/false);
  });
  roamer.start(from_millis(500));

  // Mesh health: peer $SYS subtrees visible from the management plane.
  std::set<std::string> peers_seen;
  (void)mw.watch(gateway, "$SYS/federation/peer/#",
                 [&peers_seen](const std::string& topic, const Bytes&) {
                   constexpr std::string_view kPrefix =
                       "$SYS/federation/peer/";
                   const std::string rest = topic.substr(kPrefix.size());
                   peers_seen.insert(rest.substr(0, rest.find('/')));
                 });

  mw.start_flows();
  mw.run_for(30 * kSecond);
  mw.stop_flows();
  mw.run_for(2 * kSecond);

  std::printf("%s\n", directory.to_string().c_str());

  // Ingress sharding: no broker carries more than ~1/K of the fabric's
  // client publish volume. Bridge-forwarded arrivals (mesh overhead:
  // $SYS health plus the roamer's re-homed alerts) are reported
  // separately — they are the price of the mesh, not client load.
  std::uint64_t total_local = 0;
  std::array<std::uint64_t, 4> per_broker{};
  std::array<std::uint64_t, 4> bridged{};
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    const auto& c = mw.module(brokers[i]).broker()->counters();
    per_broker[i] = c.get("publishes_in");
    bridged[i] = c.get("bridge_in");
    total_local += per_broker[i] - bridged[i];
  }
  bool balanced = true;
  for (std::size_t i = 0; i < brokers.size(); ++i) {
    const std::uint64_t local = per_broker[i] - bridged[i];
    const double share =
        total_local == 0 ? 0.0
                         : 100.0 * static_cast<double>(local) /
                               static_cast<double>(total_local);
    std::printf(
        "broker_%s: client publishes_in=%llu (%.1f%% of fabric), "
        "bridged-in %llu\n",
        districts[i].c_str(), static_cast<unsigned long long>(local), share,
        static_cast<unsigned long long>(bridged[i]));
    // 1/K = 25%, plus slack for the management plane on the primary.
    if (share > 35.0) balanced = false;
  }

  const std::size_t shared_total =
      shared_seen[0] + shared_seen[1] + shared_seen[2];
  std::printf("share group 'analytics': %zu + %zu + %zu = %zu deliveries "
              "(plain subscriber saw %zu)\n",
              shared_seen[0], shared_seen[1], shared_seen[2], shared_total,
              plain_seen);
  std::printf("cross-shard roaming alerts bridged to owner shard: %zu\n",
              roam_seen);
  std::printf("mesh peers visible from the management plane: %zu\n",
              peers_seen.size());

  bool ok = balanced;
  if (shared_total != plain_seen) {
    std::printf("FAIL: share group duplicated or dropped deliveries\n");
    ok = false;
  }
  for (std::size_t w = 0; w < shared_seen.size(); ++w) {
    if (shared_seen[w] == 0) {
      std::printf("FAIL: worker_%zu starved by the share group\n", w);
      ok = false;
    }
  }
  if (roam_seen == 0) {
    std::printf("FAIL: no cross-shard traffic crossed the bridges\n");
    ok = false;
  }
  if (!balanced) std::printf("FAIL: ingress is not shard-balanced\n");

  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return ok ? 0 : 1;
}
