// Smart-factory capstone: one fabric exercising every capability built on
// top of the paper's prototype.
//
//  * two brokers with explicit flow assignment (decentralization);
//  * a sharded, learner-side-MIXed Learning stage over worker modules;
//  * event-time windows and anomaly detection on machine telemetry;
//  * load shedding bounding latency on an undersized module;
//  * flow discovery + a second application tapping the first one's
//    output stream;
//  * a crashed worker self-healing through the FailoverManager.
#include <cstdio>

#include "core/middleware.hpp"
#include "mgmt/failover_manager.hpp"
#include "mgmt/flow_directory.hpp"
#include "mgmt/status_board.hpp"

namespace {

constexpr const char* kProductionLine = R"(
recipe production_line
# Machine telemetry: vibration (fast) and temperature (slow).
node vibration : sensor { sensor = "vibration", rate_hz = 40, model = "activity", broker = 0 }
node temp      : sensor { sensor = "temp", rate_hz = 5, model = "random_walk", broker = 1 }

# Condition monitoring: event-time windows + statistical anomaly flags.
node temp_1s   : window { span_ms = 1000, aggregate = "mean" }
node overheat  : anomaly { algorithm = "zscore", threshold = 4.0, emit = "anomalies" }

# Condition classification: sharded online learner with learner-side MIX.
node condition : train { algorithm = "arow", parallelism = 2, mix = true, publish_every = 8 }
node judge     : predict { }

node siren     : actuator { actuator = "siren" }
node display   : actuator { actuator = "panel" }

edge temp -> temp_1s -> overheat -> siren
edge vibration -> condition
edge vibration -> judge
edge condition -> judge
edge judge -> display
)";

}  // namespace

int main() {
  using namespace ifot;

  core::MiddlewareConfig cfg;
  cfg.keep_alive_s = 2;                    // fast failure detection
  cfg.max_backlog = from_millis(250);      // bounded latency under overload
  core::Middleware mw(cfg);
  mw.add_module({.name = "machine_1", .sensors = {"vibration"}});
  mw.add_module({.name = "machine_2", .sensors = {"temp"}});
  const NodeId broker_a = mw.add_module(
      {.name = "cell_broker_a", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "cell_broker_b", .broker = true,
                 .accept_tasks = false});
  const NodeId worker_1 = mw.add_module({.name = "worker_1"});
  mw.add_module({.name = "worker_2"});
  mw.add_module({.name = "panel_node", .actuators = {"panel", "siren"}});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  // Management plane: discovery + automatic failover.
  mgmt::FlowDirectory directory;
  (void)directory.attach(mw, broker_a);
  mgmt::FailoverManager failover;
  (void)failover.attach(mw, broker_a);

  if (auto d = mw.deploy(kProductionLine, "heft"); !d) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 d.error().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", mgmt::placement_board(mw).c_str());

  mw.start_flows();
  mw.run_for(20 * kSecond);
  std::printf("%s\n", directory.to_string().c_str());

  // A second team discovers the judged condition stream and taps it for
  // their own logging application - no coordination with the first team.
  const std::string judged_topic = directory.topic_of("production_line/judge");
  const std::string audit =
      "recipe audit\n"
      "node feed : tap { topic = \"" + judged_topic + "\" }\n"
      "node anomalies_only : filter { field = \"confidence\", op = \"gt\", value = 0.0 }\n"
      "node log : actuator { actuator = \"panel\" }\n"
      "edge feed -> anomalies_only -> log\n";
  if (auto d = mw.deploy(audit); !d) {
    std::fprintf(stderr, "audit deploy failed: %s\n",
                 d.error().to_string().c_str());
    return 1;
  }
  mw.run_for(10 * kSecond);

  // A worker dies mid-shift; the fabric heals itself.
  std::printf("injecting crash into worker_1...\n");
  mw.module(worker_1).fail();
  mw.run_for(15 * kSecond);
  std::printf("automatic failovers completed: %zu\n\n",
              failover.failovers());

  mw.run_for(15 * kSecond);
  mw.stop_flows();

  std::printf("%s\n", mgmt::fabric_status(mw).c_str());
  auto* siren = mw.module_by_name("panel_node")->actuator("siren");
  auto* panel = mw.module_by_name("panel_node")->actuator("panel");
  std::printf("siren raised %zu times; panel updated %zu times\n",
              siren->count(), panel->count());
  std::printf("load shed on worker modules: %llu samples\n",
              static_cast<unsigned long long>(
                  mw.module_by_name("worker_1")->counters().get("load_shed") +
                  mw.module_by_name("worker_2")->counters().get("load_shed")));
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(
                  mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
