// Context-aware mobility support (paper §III-A.3).
//
// City-scale scenario: car-mounted and environmental sensors estimate the
// crowdedness of points of interest. Person-flow streams are clustered
// (sequential k-means) to discover crowd regimes, and a parallelized
// train stage shows the "further parallelization / decentralization" the
// paper names as the scaling path — shard tasks spread over worker
// modules, with consumer-side MIX fusing their models.
#include <cstdio>

#include "core/middleware.hpp"

namespace {

constexpr const char* kRecipe = R"(
recipe mobility_support
node cam_flow : sensor { sensor = "car_camera", rate_hz = 12, model = "activity" }
node ped_flow : sensor { sensor = "ped_counter", rate_hz = 12, model = "activity" }

# Discover crowd regimes without labels.
node regimes : cluster { k = 4 }

# Learn PoI state from labelled samples, sharded 3 ways across workers.
node crowd_model : train { algorithm = "cw", parallelism = 3, publish_every = 8 }

# Judge live state with the mixed model; navigate users accordingly.
node poi_state : predict { }
node nav : actuator { actuator = "nav_display" }

edge cam_flow -> regimes
edge ped_flow -> regimes
edge cam_flow -> crowd_model
edge ped_flow -> crowd_model
edge cam_flow -> poi_state
edge crowd_model -> poi_state
edge poi_state -> nav
)";

}  // namespace

int main() {
  using namespace ifot;

  core::Middleware mw;
  mw.add_module({.name = "car_unit", .sensors = {"car_camera"}});
  mw.add_module({.name = "street_unit", .sensors = {"ped_counter"}});
  mw.add_module({.name = "kiosk", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "worker_1"});
  mw.add_module({.name = "worker_2"});
  mw.add_module({.name = "worker_3"});
  mw.add_module({.name = "signage", .actuators = {"nav_display"}});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  auto id = mw.deploy(kRecipe, "load_aware");
  if (!id) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", mw.describe(mw.deployments().back()).c_str());

  std::size_t judged = 0;
  LatencyRecorder latency;
  mw.set_completion_hook([&](const recipe::Task& task,
                             const device::Sample& sample, SimTime now) {
    if (task.name == "poi_state") {
      ++judged;
      latency.record(now - sample.sensed_at);
    }
  });

  mw.start_flows();
  mw.run_for(60 * kSecond);
  mw.stop_flows();

  // How many distinct modules did the train shards land on?
  const auto& d = mw.deployments().back();
  std::size_t shard_modules = 0;
  {
    std::vector<NodeId> seen;
    for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
      if (d.graph.tasks[ti].name.rfind("crowd_model#", 0) == 0) {
        const NodeId m = d.placement.task_module[ti];
        bool dup = false;
        for (NodeId s : seen) dup = dup || s == m;
        if (!dup) seen.push_back(m);
      }
    }
    shard_modules = seen.size();
  }

  auto* nav = mw.module_by_name("signage")->actuator("nav_display");
  std::printf("\n60 s of city sensing (virtual time):\n");
  std::printf("  PoI judgements:            %zu\n", judged);
  std::printf("  nav display updates:       %zu\n", nav->count());
  std::printf("  train shards spread over:  %zu modules\n", shard_modules);
  std::printf("  sensing->judgement delay:  avg %.2f ms, max %.2f ms\n",
              latency.avg_ms(), latency.max_ms());
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(
                  mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
