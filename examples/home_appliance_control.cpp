// Context-aware home-appliance control (paper §III-A.2).
//
// Environmental sensors (illuminance, sound, motion) are windowed and
// merged; an online regression estimates a comfort score, and appliances
// (air conditioner, ceiling light) are driven from the estimate. Shows
// windowing, map transforms, merge fan-in and estimate (regression).
#include <cstdio>

#include "core/middleware.hpp"

namespace {

constexpr const char* kRecipe = R"(
recipe home_comfort
node lux    : sensor { sensor = "illuminance", rate_hz = 5, model = "waveform" }
node sound  : sensor { sensor = "sound", rate_hz = 20, model = "waveform" }
node motion : sensor { sensor = "motion", rate_hz = 10, model = "random_walk" }

# Smooth each stream before fusing: event-time windows (1 s buckets) for
# the irregular-rate streams, a count window for the steady one.
node lux_w    : window { span_ms = 1000, aggregate = "mean" }
node sound_w  : window { span_ms = 500, aggregate = "max" }
node motion_w : window { size = 5, aggregate = "mean" }

# Normalize sound level into [roughly] comparable units.
node sound_n  : map { field = "value", out_field = "value", scale = 0.5 }

node fuse   : merge
# Online regression: learn the comfort target from the fused stream.
node comfort : estimate { target = "value", epsilon = 0.05 }

node aircon : actuator { actuator = "aircon" }
node light  : actuator { actuator = "ceiling_light" }

edge lux -> lux_w -> fuse
edge sound -> sound_w -> sound_n -> fuse
edge motion -> motion_w -> fuse
edge fuse -> comfort
edge comfort -> aircon
edge comfort -> light
)";

}  // namespace

int main() {
  using namespace ifot;

  core::Middleware mw;
  mw.add_module({.name = "window_node", .sensors = {"illuminance"}});
  mw.add_module({.name = "ceiling_node",
                 .sensors = {"sound"},
                 .actuators = {"ceiling_light"}});
  mw.add_module({.name = "door_node", .sensors = {"motion"}});
  mw.add_module({.name = "gateway", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "aircon_node", .actuators = {"aircon"}});

  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }
  // Compare allocators on this wider graph before deploying.
  for (const char* name : {"round_robin", "load_aware", "heft"}) {
    auto parsed = recipe::parse(kRecipe);
    auto graph = recipe::split_recipe(parsed.value());
    std::printf("allocator %-11s available\n", name);
    (void)graph;
  }
  auto id = mw.deploy(kRecipe, "heft");
  if (!id) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", mw.describe(mw.deployments().back()).c_str());

  LatencyRecorder control_latency;
  mw.set_completion_hook([&](const recipe::Task& task,
                             const device::Sample& sample, SimTime now) {
    if (task.name == "aircon" || task.name == "light") {
      control_latency.record(now - sample.sensed_at);
    }
  });

  mw.start_flows();
  mw.run_for(120 * kSecond);
  mw.stop_flows();

  auto* aircon = mw.module_by_name("aircon_node")->actuator("aircon");
  auto* light = mw.module_by_name("ceiling_node")->actuator("ceiling_light");
  std::printf("\n120 s of control (virtual time):\n");
  std::printf("  aircon commands:  %zu\n", aircon->count());
  std::printf("  light commands:   %zu\n", light->count());
  std::printf("  sensing->control: avg %.2f ms, max %.2f ms\n",
              control_latency.avg_ms(), control_latency.max_ms());
  std::printf("  (window buffering dominates: oldest-sample stamping makes\n"
              "   the reported delay include aggregation wait)\n");
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(
                  mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
