// Quickstart: the smallest complete IFoT application.
//
// Three neuron modules on one wireless LAN: a sensor module reading a
// temperature sensor, a broker module, and a worker module driving a fan.
// The recipe filters hot readings and actuates the fan; the completion
// hook prints the end-to-end sensing->actuation latency.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "core/middleware.hpp"

namespace {

constexpr const char* kRecipe = R"(
recipe fan_control
node temp : sensor   { sensor = "temp", rate_hz = 10, model = "random_walk" }
node hot  : filter   { field = "value", op = "gt", value = 20.0 }
node fan  : actuator { actuator = "fan" }
edge temp -> hot -> fan
)";

}  // namespace

int main() {
  using namespace ifot;

  // 1. Describe the fabric: which small computers exist and what hardware
  //    hangs off each of them.
  core::Middleware mw;
  mw.add_module({.name = "kitchen_pi", .sensors = {"temp"}});
  mw.add_module({.name = "hallway_pi", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "livingroom_pi", .actuators = {"fan"}});

  // 2. Bring the fabric up (broker starts, clients connect).
  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start failed: %s\n", s.error().to_string().c_str());
    return 1;
  }

  // 3. Submit the recipe: the middleware splits it into tasks, assigns
  //    them to modules, and instantiates the classes (paper Fig. 6).
  auto id = mw.deploy(kRecipe);
  if (!id) {
    std::fprintf(stderr, "deploy failed: %s\n",
                 id.error().to_string().c_str());
    return 1;
  }
  std::printf("%s", mw.describe(mw.deployments().back()).c_str());

  // 4. Observe completions (sensing -> actuation latency).
  LatencyRecorder latency;
  mw.set_completion_hook([&](const recipe::Task& task,
                             const device::Sample& sample, SimTime now) {
    if (task.name == "fan") latency.record(now - sample.sensed_at);
  });

  // 5. Run 30 seconds of virtual time.
  mw.start_flows();
  mw.run_for(30 * kSecond);
  mw.stop_flows();

  auto* fan = mw.module_by_name("livingroom_pi")->actuator("fan");
  std::printf("\nfan actuated %zu times in 30 s\n", fan->count());
  std::printf("sensing -> actuation latency: avg %.2f ms, p99 %.2f ms, max %.2f ms\n",
              latency.avg_ms(), latency.percentile_ms(99), latency.max_ms());
  std::printf("determinism: events=%llu trace_hash=%016llx\n",
              static_cast<unsigned long long>(
                  mw.simulator().events_executed()),
              static_cast<unsigned long long>(
                  mw.simulator().trace_hash()));
  const ifot::sim::SchedulerStats sim_stats = mw.simulator().stats();
  std::printf(
      "scheduler: scheduled=%llu fired=%llu cancelled=%llu rearmed=%llu "
      "occupancy_hw=%llu overflow_hw=%llu nodes=%llu pool_bytes=%llu\n",
      static_cast<unsigned long long>(sim_stats.scheduled),
      static_cast<unsigned long long>(sim_stats.fired),
      static_cast<unsigned long long>(sim_stats.cancelled),
      static_cast<unsigned long long>(sim_stats.rearmed),
      static_cast<unsigned long long>(sim_stats.occupancy_high_water),
      static_cast<unsigned long long>(sim_stats.overflow_high_water),
      static_cast<unsigned long long>(sim_stats.nodes_created),
      static_cast<unsigned long long>(sim_stats.pool_retained_bytes));
  return 0;
}
