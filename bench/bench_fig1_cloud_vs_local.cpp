// Tests the qualitative claim of the paper's Fig. 1: the conventional
// cloud-centric architecture suffers "large delays" for real-time IoT
// feedback, while processing near the source (IFoT / PO3) does not.
//
// Two fabrics run the same sensing->predict->actuate application:
//  * local  — the paper's topology: broker/train/predict on LAN modules;
//  * cloud  — broker, train and predict run on a remote server behind a
//             WAN link (25 ms one-way, uplink-constrained); the actuator
//             stays at home, so the feedback command crosses the WAN
//             back — the "real-time feedback" round trip of Fig. 1.
// The cloud server CPU is 16x a Raspberry Pi (it is a datacenter box) —
// the delay gap is a *network* effect, which is exactly Fig. 1's point.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>
#include <string>

#include "core/middleware.hpp"
#include "mgmt/report.hpp"

namespace {

using namespace ifot;

struct Outcome {
  double avg_ms = 0;
  double max_ms = 0;
  std::size_t n = 0;
};

std::string recipe_text(double rate_hz, const std::string& pin_train,
                        const std::string& pin_predict) {
  std::string r = "recipe fig1\n";
  for (const char* s : {"a", "b", "c"}) {
    r += std::string("node sense_") + s + " : sensor { sensor = \"sensor_" +
         s + "\", model = \"activity\", rate_hz = " + std::to_string(rate_hz) +
         " }\n";
  }
  r += "node train : train { algorithm = \"arow\", publish_every = 16, pin = \"" +
       pin_train + "\" }\n";
  r += "node predictor : predict { pin = \"" + pin_predict + "\" }\n";
  r += "node act : actuator { actuator = \"display\" }\n";
  for (const char* s : {"a", "b", "c"}) {
    r += std::string("edge sense_") + s + " -> train\n";
    r += std::string("edge sense_") + s + " -> predictor\n";
  }
  r += "edge train -> predictor\nedge predictor -> act\n";
  return r;
}

Outcome run(bool cloud, double rate_hz) {
  core::MiddlewareConfig cfg;
  cfg.seed = 11;
  core::Middleware mw(cfg);
  mw.add_module({.name = "module_a", .sensors = {"sensor_a"}});
  mw.add_module({.name = "module_b", .sensors = {"sensor_b"}});
  mw.add_module({.name = "module_c", .sensors = {"sensor_c"}});
  std::string pin;
  if (cloud) {
    net::WanConfig wan;  // defaults: 25 ms propagation, 10 Mbit/s
    mw.add_remote_module(
        {.name = "cloud", .cpu_factor = 16.0, .broker = true}, wan);
    // The display stays in the home: the actuation crosses the WAN back.
    mw.add_module({.name = "module_f", .actuators = {"display"}});
    pin = "cloud";
  } else {
    // The paper's placement: broker on D, Learning on E, Judging on F.
    mw.add_module({.name = "module_d", .broker = true, .accept_tasks = false});
    mw.add_module({.name = "module_e"});
    mw.add_module({.name = "module_f", .actuators = {"display"}});
    pin = "local";
  }
  if (auto s = mw.start(); !s) {
    std::fprintf(stderr, "start: %s\n", s.error().to_string().c_str());
    return {};
  }
  const std::string text =
      pin == "cloud" ? recipe_text(rate_hz, "cloud", "cloud")
                     : recipe_text(rate_hz, "module_e", "module_f");
  auto id = mw.deploy(text, "load_aware");
  if (!id) {
    std::fprintf(stderr, "deploy: %s\n", id.error().to_string().c_str());
    return {};
  }
  LatencyRecorder lat;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime now) {
    if (t.name == "act") lat.record(now - s.sensed_at);
  });
  mw.start_flows();
  mw.run_for(20 * kSecond);
  mw.stop_flows();
  return {lat.avg_ms(), lat.max_ms(), lat.count()};
}

void BM_Fig1(benchmark::State& state) {
  const bool cloud = state.range(0) == 1;
  const double rate = static_cast<double>(state.range(1));
  Outcome o;
  for (auto _ : state) {
    o = run(cloud, rate);
  }
  state.counters["rate_hz"] = rate;
  state.counters["avg_ms"] = o.avg_ms;
  state.counters["max_ms"] = o.max_ms;
  state.SetLabel(cloud ? "cloud-centric" : "local (IFoT)");
}
BENCHMARK(BM_Fig1)
    ->ArgsProduct({{0, 1}, {5, 10, 20}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  mgmt::Table t({"rate (Hz)", "local avg (ms)", "cloud avg (ms)",
                 "cloud/local", "local max (ms)", "cloud max (ms)"});
  for (double rate : {5.0, 10.0, 20.0}) {
    const Outcome local = run(false, rate);
    const Outcome cloud = run(true, rate);
    t.add_row({mgmt::Table::num(rate, 0), mgmt::Table::num(local.avg_ms),
               mgmt::Table::num(cloud.avg_ms),
               mgmt::Table::num(local.avg_ms > 0
                                    ? cloud.avg_ms / local.avg_ms
                                    : 0, 2),
               mgmt::Table::num(local.max_ms),
               mgmt::Table::num(cloud.max_ms)});
  }
  mgmt::maybe_write_csv("fig1_cloud_vs_local", t);
  std::printf(
      "Fig. 1 reproduction: sensing->feedback (actuation) delay, local vs "
      "cloud-centric\n%s\n",
      t.to_string().c_str());
  ifot::benchjson::JsonDumpReporter reporter("BENCH_fig1_cloud_vs_local.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
