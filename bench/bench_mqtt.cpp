// Substrate micro-benchmarks: the MQTT codec, topic matching, the
// subscription tree, and broker routing throughput. These bound how much
// of the end-to-end latency budget the flow-distribution function can
// consume (paper §IV-C.3).
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <string>
#include <vector>

#include "mqtt/broker.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/topic.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

class NullSched final : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration, std::function<void()>) override {
    return ++next_;
  }
  void cancel(std::uint64_t) override {}

 private:
  std::uint64_t next_ = 0;
};

Publish sample_publish(std::size_t payload) {
  Publish p;
  p.topic = "ifot/paper_eval/sense_a";
  p.payload.assign(payload, 0x42);
  return p;
}

void BM_EncodePublish(benchmark::State& state) {
  const Packet p{sample_publish(static_cast<std::size_t>(state.range(0)))};
  for (auto _ : state) {
    Bytes wire = encode(p);
    benchmark::DoNotOptimize(wire);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EncodePublish)->Arg(32)->Arg(256)->Arg(4096);

void BM_DecodePublish(benchmark::State& state) {
  const Bytes wire =
      encode(Packet{sample_publish(static_cast<std::size_t>(state.range(0)))});
  for (auto _ : state) {
    auto p = decode(BytesView(wire));
    benchmark::DoNotOptimize(p);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodePublish)->Arg(32)->Arg(256)->Arg(4096);

void BM_StreamDecoderChunked(benchmark::State& state) {
  const Bytes wire = encode(Packet{sample_publish(256)});
  for (auto _ : state) {
    StreamDecoder dec;
    for (std::size_t i = 0; i < wire.size(); i += 16) {
      dec.feed(BytesView(wire).subspan(i, std::min<std::size_t>(16, wire.size() - i)));
    }
    auto p = dec.next();
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_StreamDecoderChunked);

void BM_TopicMatch(benchmark::State& state) {
  const std::string filter = "ifot/+/train/#";
  const std::string topic = "ifot/paper_eval/train/model/3";
  for (auto _ : state) {
    benchmark::DoNotOptimize(topic_matches(filter, topic));
  }
}
BENCHMARK(BM_TopicMatch);

void BM_TopicTreeMatch(benchmark::State& state) {
  TopicTree<int, int> tree;
  const int subs = static_cast<int>(state.range(0));
  for (int i = 0; i < subs; ++i) {
    tree.insert("ifot/app" + std::to_string(i % 16) + "/node" +
                    std::to_string(i) + "/+",
                i, 0);
  }
  tree.insert("ifot/app3/#", 1 << 20, 0);
  TopicTree<int, int>::MatchList out;
  for (auto _ : state) {
    out.clear();
    tree.match("ifot/app3/node3/7", out);
    benchmark::DoNotOptimize(out);
  }
  state.counters["subscriptions"] = subs;
}
BENCHMARK(BM_TopicTreeMatch)->Arg(16)->Arg(256)->Arg(4096);

/// Broker fan-out throughput: one publisher, N subscribers, QoS 0.
void BM_BrokerFanOut(benchmark::State& state) {
  NullSched sched;
  Broker broker(sched);
  const int subs = static_cast<int>(state.range(0));
  std::uint64_t delivered = 0;
  // Publisher link.
  broker.on_link_open(1, [](const Bytes&) {}, [] {});
  Connect c;
  c.client_id = "pub";
  broker.on_link_data(1, BytesView(encode(Packet{c})));
  // Subscriber links.
  for (int i = 0; i < subs; ++i) {
    const LinkId link = static_cast<LinkId>(100 + i);
    broker.on_link_open(
        link, [&delivered](const Bytes&) { ++delivered; }, [] {});
    Connect sc;
    sc.client_id = "sub" + std::to_string(i);
    broker.on_link_data(link, BytesView(encode(Packet{sc})));
    Subscribe s;
    s.packet_id = 1;
    s.topics = {{"ifot/#", QoS::kAtMostOnce}};
    broker.on_link_data(link, BytesView(encode(Packet{s})));
  }
  const Bytes pub = encode(Packet{sample_publish(64)});
  for (auto _ : state) {
    broker.on_link_data(1, BytesView(pub));
  }
  benchmark::DoNotOptimize(delivered);
  state.counters["fanout"] = subs;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
}
BENCHMARK(BM_BrokerFanOut)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

IFOT_BENCH_MAIN("mqtt")
