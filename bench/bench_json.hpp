// Shared bench entry point: every bench_* binary prints the usual console
// table AND dumps a flat metric-name -> value JSON file
// (BENCH_<name>.json in the working directory) so CI can archive results
// and successive runs can be diffed without scraping stdout.
//
// Use IFOT_BENCH_MAIN("fanout") instead of BENCHMARK_MAIN().
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace ifot::benchjson {

/// Console reporter that additionally accumulates every per-iteration
/// run's timings and user counters into a flat metric map, written as
/// JSON on Finalize().
class JsonDumpReporter final : public benchmark::ConsoleReporter {
 public:
  explicit JsonDumpReporter(std::string path) : path_(std::move(path)) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    benchmark::ConsoleReporter::ReportRuns(reports);
    for (const Run& r : reports) {
      if (r.run_type != Run::RT_Iteration || r.error_occurred) continue;
      const std::string base = r.benchmark_name();
      metrics_[base + "/real_time"] = r.GetAdjustedRealTime();
      metrics_[base + "/cpu_time"] = r.GetAdjustedCPUTime();
      metrics_[base + "/iterations"] = static_cast<double>(r.iterations);
      for (const auto& [name, counter] : r.counters) {
        metrics_[base + "/" + name] = counter.value;
      }
    }
  }

  void Finalize() override {
    benchmark::ConsoleReporter::Finalize();
    std::ofstream out(path_);
    if (!out) return;  // unwritable cwd: keep the console output usable
    out << "{\n";
    bool first = true;
    for (const auto& [name, value] : metrics_) {
      if (!first) out << ",\n";
      first = false;
      out << "  \"" << escaped(name) << "\": " << value;
    }
    out << "\n}\n";
  }

 private:
  static std::string escaped(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string path_;
  std::map<std::string, double> metrics_;
};

inline int run_benchmarks(int argc, char** argv, const std::string& name) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonDumpReporter reporter("BENCH_" + name + ".json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}

}  // namespace ifot::benchjson

#define IFOT_BENCH_MAIN(name)                                     \
  int main(int argc, char** argv) {                               \
    return ifot::benchjson::run_benchmarks(argc, argv, name);     \
  }
