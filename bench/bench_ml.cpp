// Substrate micro-benchmarks: online-learning throughput (the flow-
// analysis function, paper §IV-C.2). Bounds how many samples per second
// one neuron module's Learning/Judging classes could sustain, and costs
// the Jubatus-style MIX operation against the number of shard models —
// the MIX-interval ablation from DESIGN.md.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <vector>

#include <cstdio>

#include "common/rng.hpp"
#include "mgmt/report.hpp"
#include "ml/anomaly.hpp"
#include "ml/evaluation.hpp"
#include "ml/classifier.hpp"
#include "ml/cluster.hpp"
#include "ml/mix.hpp"
#include "ml/model_io.hpp"
#include "ml/regression.hpp"

namespace {

using namespace ifot;
using namespace ifot::ml;

std::vector<std::pair<FeatureVector, std::string>> labelled_stream(int n,
                                                                   int dims) {
  Rng rng(1234);
  std::vector<std::pair<FeatureVector, std::string>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    FeatureVector fv;
    double sum = 0;
    for (int d = 0; d < dims; ++d) {
      const double v = rng.uniform(-1, 1);
      fv.set(static_cast<FeatureId>(d), v);
      sum += v;
    }
    out.emplace_back(std::move(fv), sum > 0 ? "pos" : "neg");
  }
  return out;
}

void BM_ClassifierTrain(benchmark::State& state, const char* algo) {
  const auto stream = labelled_stream(4096, static_cast<int>(state.range(0)));
  auto clf = make_classifier(algo);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& [fv, label] = stream[i++ % stream.size()];
    clf->train(fv, label);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["dims"] = static_cast<double>(state.range(0));
}
BENCHMARK_CAPTURE(BM_ClassifierTrain, perceptron, "perceptron")->Arg(3)->Arg(32);
BENCHMARK_CAPTURE(BM_ClassifierTrain, pa1, "pa1")->Arg(3)->Arg(32);
BENCHMARK_CAPTURE(BM_ClassifierTrain, cw, "cw")->Arg(3)->Arg(32);
BENCHMARK_CAPTURE(BM_ClassifierTrain, arow, "arow")->Arg(3)->Arg(32);

void BM_ClassifierPredict(benchmark::State& state, const char* algo) {
  const auto stream = labelled_stream(4096, static_cast<int>(state.range(0)));
  auto clf = make_classifier(algo);
  for (const auto& [fv, label] : stream) clf->train(fv, label);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(clf->classify(stream[i++ % stream.size()].first));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_CAPTURE(BM_ClassifierPredict, pa1, "pa1")->Arg(3)->Arg(32);
BENCHMARK_CAPTURE(BM_ClassifierPredict, arow, "arow")->Arg(3)->Arg(32);

void BM_RegressionTrain(benchmark::State& state) {
  Rng rng(5);
  PaRegression reg;
  FeatureVector fv;
  for (auto _ : state) {
    fv.clear();
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    fv.set(0, x);
    fv.set(1, y);
    reg.train(fv, 2 * x - y);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RegressionTrain);

void BM_ZScoreAdd(benchmark::State& state) {
  Rng rng(6);
  ZScoreDetector det(10);
  FeatureVector fv;
  for (auto _ : state) {
    fv.clear();
    for (int d = 0; d < 3; ++d) {
      fv.set(static_cast<FeatureId>(d), rng.normal(0, 1));
    }
    benchmark::DoNotOptimize(det.add(fv));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ZScoreAdd);

void BM_LofAdd(benchmark::State& state) {
  Rng rng(7);
  LofDetector det(10, static_cast<std::size_t>(state.range(0)));
  FeatureVector fv;
  for (auto _ : state) {
    fv.clear();
    fv.set(0, rng.normal(0, 1));
    fv.set(1, rng.normal(0, 1));
    benchmark::DoNotOptimize(det.add(fv));
  }
  state.counters["window"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LofAdd)->Arg(64)->Arg(256);

void BM_KMeansAdd(benchmark::State& state) {
  Rng rng(8);
  SequentialKMeans km(static_cast<std::size_t>(state.range(0)));
  FeatureVector fv;
  for (auto _ : state) {
    fv.clear();
    fv.set(0, rng.normal(0, 5));
    fv.set(1, rng.normal(0, 5));
    benchmark::DoNotOptimize(km.add(fv));
  }
  state.counters["k"] = static_cast<double>(state.range(0));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_KMeansAdd)->Arg(4)->Arg(16);

/// MIX cost against the number of shard models (the paper's
/// parallelization path multiplies models that must be fused).
void BM_MixModels(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  std::vector<LinearModel> models;
  const auto stream = labelled_stream(2000, 8);
  for (int s = 0; s < shards; ++s) {
    Arow clf;
    for (std::size_t i = static_cast<std::size_t>(s); i < stream.size();
         i += static_cast<std::size_t>(shards)) {
      clf.train(stream[i].first, stream[i].second);
    }
    models.push_back(clf.model());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix_models(models));
  }
  state.counters["shards"] = shards;
}
BENCHMARK(BM_MixModels)->Arg(2)->Arg(4)->Arg(8);

void BM_ModelCodecRoundTrip(benchmark::State& state) {
  Arow clf;
  const auto stream = labelled_stream(2000, static_cast<int>(state.range(0)));
  for (const auto& [fv, label] : stream) clf.train(fv, label);
  for (auto _ : state) {
    const Bytes wire = ModelCodec::encode(clf.model());
    auto decoded = ModelCodec::decode_linear(BytesView(wire));
    benchmark::DoNotOptimize(decoded);
  }
  state.counters["dims"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ModelCodecRoundTrip)->Arg(8)->Arg(64);

/// Accuracy comparison across the Jubatus algorithm families on a noisy
/// 4-class problem (quadrant of a 2-D point, 5% label noise) - the
/// flow-analysis quality context behind the throughput numbers below.
void print_accuracy_comparison() {
  Rng rng(2024);
  std::vector<std::pair<FeatureVector, std::string>> train_set;
  std::vector<std::pair<FeatureVector, std::string>> test_set;
  auto quadrant = [](double x, double y) -> std::string {
    if (x >= 0) return y >= 0 ? "q1" : "q4";
    return y >= 0 ? "q2" : "q3";
  };
  for (int i = 0; i < 6000; ++i) {
    const double x = rng.uniform(-1, 1);
    const double y = rng.uniform(-1, 1);
    if (std::abs(x) < 0.05 || std::abs(y) < 0.05) continue;
    FeatureVector fv;
    fv.set(0, x);
    fv.set(1, y);
    std::string label = quadrant(x, y);
    auto& dst = train_set.size() < 4000 ? train_set : test_set;
    if (&dst == &train_set && rng.chance(0.05)) {
      label = quadrant(-x, -y);  // 5% label noise in training only
    }
    dst.emplace_back(std::move(fv), std::move(label));
  }
  ifot::mgmt::Table t({"algorithm", "accuracy", "macro recall"});
  for (const char* algo : {"perceptron", "pa", "pa1", "pa2", "cw", "arow"}) {
    auto clf = make_classifier(algo);
    for (const auto& [fv, label] : train_set) clf->train(fv, label);
    const auto result = evaluate(*clf, test_set);
    t.add_row({algo, ifot::mgmt::Table::num(result.accuracy, 3),
               ifot::mgmt::Table::num(result.matrix.macro_recall(), 3)});
  }
  ifot::mgmt::maybe_write_csv("ml_accuracy", t);
  std::printf(
      "Classifier accuracy, 4-class quadrant problem with 5%% training "
      "label noise\n%s\n",
      t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  print_accuracy_comparison();
  ifot::benchjson::JsonDumpReporter reporter("BENCH_ml.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
