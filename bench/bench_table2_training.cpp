// Regenerates the paper's TABLE II (experimental result, sensing ->
// training): end-to-end delay from the sensing instant to completion of
// the training process, for sensor generation rates 5/10/20/40/80 Hz on
// the six-module topology of Fig. 7/9.
//
// Prints the reproduced table next to the paper's numbers, and exposes
// each rate's avg/max as benchmark counters. The claim being reproduced
// is the *shape*: flat tens-of-ms region through 10 Hz, knee between 20
// and 40 Hz, saturation blow-up at 80 Hz.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>

#include "mgmt/paper_experiment.hpp"
#include "mgmt/report.hpp"

namespace {

const ifot::mgmt::PaperExperimentResult& sweep() {
  static const ifot::mgmt::PaperExperimentResult kResult = [] {
    ifot::mgmt::PaperExperimentConfig cfg;  // defaults: paper rates, 6 s window
    return ifot::mgmt::run_paper_experiment(cfg);
  }();
  return kResult;
}

void BM_SensingToTraining(benchmark::State& state) {
  const auto& rr = sweep().rates[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.train.count());
  }
  state.counters["rate_hz"] = rr.rate_hz;
  state.counters["avg_ms"] = rr.train.avg_ms();
  state.counters["max_ms"] = rr.train.max_ms();
  state.counters["p99_ms"] = rr.train.percentile_ms(99);
  state.counters["train_util"] = rr.train_module_util;
  state.SetLabel("sensing->training @" + std::to_string(rr.rate_hz) + "Hz");
}
BENCHMARK(BM_SensingToTraining)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("%s\n",
              ifot::mgmt::format_paper_table(sweep(), /*training=*/true)
                  .c_str());
  std::printf("%s\n\n", ifot::mgmt::shape_verdict(sweep()).c_str());
  ifot::benchjson::JsonDumpReporter reporter("BENCH_table2_training.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
