// PUBLISH fan-out throughput: the broker hot path of the paper's
// evaluation (Tables II/III run 5-80 Hz streams through the Broker
// class; every sample crosses Broker::route once per subscriber).
//
// Measures routed messages/sec with 1/10/50/200 subscribers at QoS 0
// (the paper's configuration) and QoS 1, plus the broker's fan-out
// accounting counters:
//   * fanout_encodes        — encode() calls performed while routing
//   * payload_bytes_copied  — payload bytes deep-copied while routing
// On an encode-once / copy-never broker, one QoS 0 publish to N
// subscribers shows 1 encode and 0 copied payload bytes. The QoS 1 burst
// scenario additionally shows the unified egress path at work: one wire
// template per fan-out group (encodes_per_group = 1) and batched
// transport writes (frames_per_write > 1).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bench/bench_json.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/packet.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

class NullSched final : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration, std::function<void()>) override {
    return ++next_;
  }
  void cancel(std::uint64_t) override {}

 private:
  std::uint64_t next_ = 0;
};

constexpr LinkId kPubLink = 1;
constexpr LinkId kFirstSubLink = 100;

Publish sample_publish(std::size_t payload, QoS qos) {
  Publish p;
  p.topic = "ifot/paper_eval/sense_a";
  p.qos = qos;
  if (qos != QoS::kAtMostOnce) p.packet_id = 7;
  p.payload = Bytes(payload, 0x42);
  return p;
}

/// Connects a publisher and `subs` subscribers (all on "ifot/#") to the
/// broker. `on_sub_rx` observes every byte buffer sent to a subscriber.
void connect_fleet(Broker& broker, int subs, QoS sub_qos,
                   std::function<void(LinkId, const Bytes&)> on_sub_rx) {
  broker.on_link_open(kPubLink, [](const Bytes&) {}, [] {});
  Connect c;
  c.client_id = "pub";
  broker.on_link_data(kPubLink, BytesView(encode(Packet{c})));
  for (int i = 0; i < subs; ++i) {
    const LinkId link = kFirstSubLink + static_cast<LinkId>(i);
    broker.on_link_open(
        link, [link, on_sub_rx](const Bytes& b) { on_sub_rx(link, b); },
        [] {});
    Connect sc;
    sc.client_id = "sub" + std::to_string(i);
    broker.on_link_data(link, BytesView(encode(Packet{sc})));
    Subscribe s;
    s.packet_id = 1;
    s.topics = {{"ifot/#", sub_qos}};
    broker.on_link_data(link, BytesView(encode(Packet{s})));
  }
}

void report_broker_counters(benchmark::State& state, const Broker& broker,
                            int subs) {
  const auto iters = static_cast<double>(state.iterations());
  state.counters["fanout"] = subs;
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * subs,
      benchmark::Counter::kIsRate);
  state.counters["encodes_per_publish"] =
      static_cast<double>(broker.counters().get("fanout_encodes")) / iters;
  state.counters["payload_bytes_copied_per_publish"] =
      static_cast<double>(broker.counters().get("payload_bytes_copied")) /
      iters;
}

/// QoS 0 fan-out: one wire publish in, N deliveries out, no acks.
void BM_FanOutQos0(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  const auto payload = static_cast<std::size_t>(state.range(1));
  NullSched sched;
  Broker broker(sched);
  std::uint64_t delivered = 0;
  std::uint64_t bytes_out = 0;
  connect_fleet(broker, subs, QoS::kAtMostOnce,
                [&](LinkId, const Bytes& b) {
                  ++delivered;
                  bytes_out += b.size();
                });
  const Bytes pub = encode(Packet{sample_publish(payload, QoS::kAtMostOnce)});
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(pub));
  }
  benchmark::DoNotOptimize(delivered);
  benchmark::DoNotOptimize(bytes_out);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
  report_broker_counters(state, broker, subs);
}
BENCHMARK(BM_FanOutQos0)
    ->ArgsProduct({{1, 10, 50, 200}, {64, 1024}});

/// QoS 1 fan-out: subscribers ack every delivery so the inflight window
/// never saturates; exercises packet-id assignment + per-delivery state.
void BM_FanOutQos1(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  NullSched sched;
  Broker broker(sched);
  std::uint64_t delivered = 0;
  std::vector<std::pair<LinkId, Bytes>> acks;
  connect_fleet(broker, subs, QoS::kAtLeastOnce,
                [&](LinkId link, const Bytes& b) {
                  auto pkt = decode(BytesView(b));
                  if (!pkt.ok()) return;
                  if (const auto* p = std::get_if<Publish>(&pkt.value())) {
                    ++delivered;
                    acks.emplace_back(link,
                                      encode(Packet{Puback{p->packet_id}}));
                  }
                });
  const Bytes pub = encode(Packet{sample_publish(64, QoS::kAtLeastOnce)});
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(pub));
    for (auto& [link, ack] : acks) {
      broker.on_link_data(link, BytesView(ack));
    }
    acks.clear();
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
  report_broker_counters(state, broker, subs);
}
BENCHMARK(BM_FanOutQos1)->Arg(1)->Arg(10)->Arg(50);

/// QoS 1 burst fan-out over the unified egress path: B publishes arrive
/// in ONE link buffer (one scheduler turn), so each subscriber link's
/// outbox coalesces its B deliveries into a single transport write, and
/// each fan-out group encodes exactly one shared wire template.
void BM_FanOutQos1Burst(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  constexpr int kBurst = 16;
  NullSched sched;
  Broker broker(sched);
  std::uint64_t delivered = 0;
  std::unordered_map<LinkId, StreamDecoder> decoders;
  std::unordered_map<LinkId, Bytes> ack_bufs;
  connect_fleet(broker, subs, QoS::kAtLeastOnce,
                [&](LinkId link, const Bytes& b) {
                  // Writes are batched: split them back into packets.
                  StreamDecoder& dec = decoders[link];
                  dec.feed(BytesView(b));
                  while (true) {
                    auto pkt = dec.next();
                    if (!pkt.ok() || !pkt.value().has_value()) break;
                    if (const auto* p =
                            std::get_if<Publish>(&pkt.value().value())) {
                      ++delivered;
                      const Bytes ack = encode(Packet{Puback{p->packet_id}});
                      Bytes& buf = ack_bufs[link];
                      buf.insert(buf.end(), ack.begin(), ack.end());
                    }
                  }
                });
  // The burst: B distinct QoS 1 publishes concatenated into one buffer,
  // as a fast sensor stream delivers them within one transport turn.
  Bytes burst;
  for (int i = 0; i < kBurst; ++i) {
    Publish p = sample_publish(64, QoS::kAtLeastOnce);
    p.packet_id = static_cast<std::uint16_t>(100 + i);
    const Bytes one = encode(Packet{p});
    burst.insert(burst.end(), one.begin(), one.end());
  }
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(burst));
    // Acks also arrive batched, one buffer per subscriber link.
    for (auto& [link, buf] : ack_bufs) {
      if (buf.empty()) continue;
      broker.on_link_data(link, BytesView(buf));
      buf.clear();
    }
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBurst * subs);
  const auto iters = static_cast<double>(state.iterations());
  const Counters& c = broker.counters();
  state.counters["fanout"] = subs;
  state.counters["burst"] = kBurst;
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * kBurst * subs,
      benchmark::Counter::kIsRate);
  // Exactly one encode per fan-out group on the template path.
  state.counters["encodes_per_group"] =
      static_cast<double>(c.get("fanout_encodes")) / (iters * kBurst);
  state.counters["batched_writes"] =
      static_cast<double>(c.get("egress_batched_writes"));
  state.counters["frames_per_write"] =
      static_cast<double>(c.get("egress_frames")) /
      static_cast<double>(std::max<std::uint64_t>(1, c.get("egress_writes")));
  state.counters["payload_bytes_copied_per_publish"] =
      static_cast<double>(c.get("payload_bytes_copied")) / (iters * kBurst);
}
BENCHMARK(BM_FanOutQos1Burst)->Arg(1)->Arg(10)->Arg(50);

/// The ingress route path on a hot topic (the paper's workload: fixed
/// sensor topic names at 5-80 Hz forever). Every subscriber holds three
/// overlapping wildcard filters, so the uncached path pays a trie walk
/// plus sort + dedup of 3N matches per publish; the cached path resolves
/// the same plan from the route cache after the first publish.
/// Args: {subscribers, route_cache_entries (0 = disabled)}.
void BM_RouteHotTopic(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  const auto cache_entries = static_cast<std::size_t>(state.range(1));
  NullSched sched;
  BrokerConfig cfg;
  cfg.route_cache_entries = cache_entries;
  Broker broker(sched, cfg);
  std::uint64_t delivered = 0;
  broker.on_link_open(kPubLink, [](const Bytes&) {}, [] {});
  Connect c;
  c.client_id = "pub";
  broker.on_link_data(kPubLink, BytesView(encode(Packet{c})));
  for (int i = 0; i < subs; ++i) {
    const LinkId link = kFirstSubLink + static_cast<LinkId>(i);
    broker.on_link_open(link,
                        [&delivered](const Bytes& b) {
                          ++delivered;
                          benchmark::DoNotOptimize(b.data());
                        },
                        [] {});
    Connect sc;
    sc.client_id = "sub" + std::to_string(i);
    broker.on_link_data(link, BytesView(encode(Packet{sc})));
    Subscribe s;
    s.packet_id = 1;
    // Three filters all matching the hot topic: exact, '+', '#'.
    s.topics = {{"ifot/paper_eval/sense_a", QoS::kAtMostOnce},
                {"ifot/+/sense_a", QoS::kAtMostOnce},
                {"ifot/#", QoS::kAtMostOnce}};
    broker.on_link_data(link, BytesView(encode(Packet{s})));
  }
  const Bytes pub = encode(Packet{sample_publish(64, QoS::kAtMostOnce)});
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(pub));
  }
  benchmark::DoNotOptimize(delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
  const Counters& counters = broker.counters();
  const double hits = static_cast<double>(counters.get("route_cache_hits"));
  const double misses =
      static_cast<double>(counters.get("route_cache_misses"));
  state.counters["fanout"] = subs;
  state.counters["cache_entries"] = static_cast<double>(cache_entries);
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * subs,
      benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      hits + misses > 0 ? hits / (hits + misses) : 0.0;
}
BENCHMARK(BM_RouteHotTopic)->ArgsProduct({{10, 50}, {0, 1024}});

}  // namespace

IFOT_BENCH_MAIN("fanout")
