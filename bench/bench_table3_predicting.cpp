// Regenerates the paper's TABLE III (experimental result, sensing ->
// predicting): end-to-end delay from the sensing instant to completion of
// the predicting process over the same rate sweep as Table II.
//
// The reproduced claims: predicting stays real-time through 20 Hz (the
// paper's 74.7 ms vs training's 232.9 ms), and its saturation at 40/80 Hz
// is milder than training's because classification is cheaper than a
// model update.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>

#include "mgmt/paper_experiment.hpp"
#include "mgmt/report.hpp"

namespace {

const ifot::mgmt::PaperExperimentResult& sweep() {
  static const ifot::mgmt::PaperExperimentResult kResult = [] {
    ifot::mgmt::PaperExperimentConfig cfg;  // defaults: paper rates, 6 s window
    return ifot::mgmt::run_paper_experiment(cfg);
  }();
  return kResult;
}

void BM_SensingToPredicting(benchmark::State& state) {
  const auto& rr = sweep().rates[static_cast<std::size_t>(state.range(0))];
  for (auto _ : state) {
    benchmark::DoNotOptimize(rr.predict.count());
  }
  state.counters["rate_hz"] = rr.rate_hz;
  state.counters["avg_ms"] = rr.predict.avg_ms();
  state.counters["max_ms"] = rr.predict.max_ms();
  state.counters["p99_ms"] = rr.predict.percentile_ms(99);
  state.counters["predict_util"] = rr.predict_module_util;
  state.SetLabel("sensing->predicting @" + std::to_string(rr.rate_hz) +
                 "Hz");
}
BENCHMARK(BM_SensingToPredicting)
    ->DenseRange(0, 4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  std::printf("%s\n",
              ifot::mgmt::format_paper_table(sweep(), /*training=*/false)
                  .c_str());
  // Cross-table claim: at every saturated rate, predicting < training.
  ifot::mgmt::Table cmp({"rate (Hz)", "train avg (ms)", "predict avg (ms)",
                         "predict/train"});
  for (const auto& rr : sweep().rates) {
    const double ratio =
        rr.train.avg_ms() > 0 ? rr.predict.avg_ms() / rr.train.avg_ms() : 0;
    cmp.add_row({ifot::mgmt::Table::num(rr.rate_hz, 0),
                 ifot::mgmt::Table::num(rr.train.avg_ms()),
                 ifot::mgmt::Table::num(rr.predict.avg_ms()),
                 ifot::mgmt::Table::num(ratio, 2)});
  }
  std::printf("Predicting vs training (paper: 744.5 vs 1123.3 ms at 40 Hz)\n%s\n",
              cmp.to_string().c_str());
  ifot::benchjson::JsonDumpReporter reporter("BENCH_table3_predicting.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
