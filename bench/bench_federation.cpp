// Federation throughput: routed messages/sec across a K-broker mesh.
//
// K brokers are meshed with one bidirectional Bridge per pair, wired
// back to back with synchronous in-process links (no simulator — pure
// broker + bridge cost). Topics are sharded by prefix: shard/<i>/... is
// owned by broker i, which carries that shard's subscribers.
//
//  * BM_FederatedLocal — every publisher publishes at its own shard's
//    broker (the federated steady state: shard-local ratio ~100%). The
//    mesh is present but idle; measures that federation costs nothing
//    when placement is right.
//  * BM_FederatedCrossShard — one publisher wired to broker 0 publishes
//    round-robin across all K shards, so (K-1)/K of the volume crosses
//    a bridge: wrap at the origin, relay, unwrap + route at the owner.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "mqtt/bridge.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/federation_map.hpp"
#include "mqtt/packet.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

class NullSched final : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration, std::function<void()>) override {
    return ++next_;
  }
  void cancel(std::uint64_t) override {}

 private:
  std::uint64_t next_ = 0;
};

constexpr LinkId kPubLink = 1;
constexpr LinkId kFirstSubLink = 100;
constexpr LinkId kFirstBridgeLink = 5000;

/// K brokers + the full bridge mesh, links wired synchronously.
struct Mesh {
  NullSched sched;
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Bridge>> bridges;
  std::uint64_t delivered = 0;

  explicit Mesh(std::size_t k) {
    FederationMap map(k);
    for (std::size_t i = 0; i < k; ++i) {
      (void)map.assign("shard/" + std::to_string(i), i);
      brokers.push_back(std::make_unique<Broker>(sched));
    }
    LinkId next_link = kFirstBridgeLink;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        BridgeConfig bc;
        bc.name = "fed-" + std::to_string(i) + "-" + std::to_string(j);
        bc.local_label = "b" + std::to_string(i);
        bc.remote_label = "b" + std::to_string(j);
        for (auto& f : map.filters_owned_by(j)) {
          bc.out_filters.push_back({std::move(f), QoS::kExactlyOnce});
        }
        for (auto& f : map.filters_owned_by(i)) {
          bc.in_filters.push_back({std::move(f), QoS::kExactlyOnce});
        }
        const LinkId llink = next_link++;
        const LinkId rlink = next_link++;
        bridges.push_back(std::make_unique<Bridge>(
            sched, std::move(bc),
            [bi = brokers[i].get(), llink](const Bytes& b) {
              bi->on_link_data(llink, BytesView(b));
            },
            [bj = brokers[j].get(), rlink](const Bytes& b) {
              bj->on_link_data(rlink, BytesView(b));
            }));
        Bridge* bp = bridges.back().get();
        brokers[i]->on_link_open(
            llink, [bp](const Bytes& b) { bp->local_data(BytesView(b)); },
            [] {});
        brokers[j]->on_link_open(
            rlink, [bp](const Bytes& b) { bp->remote_data(BytesView(b)); },
            [] {});
        bp->local_transport_open();
        bp->remote_transport_open();
      }
    }
  }

  /// Publisher session on broker `i`.
  void add_publisher(std::size_t i) {
    brokers[i]->on_link_open(kPubLink, [](const Bytes&) {}, [] {});
    Connect c;
    c.client_id = "pub" + std::to_string(i);
    brokers[i]->on_link_data(kPubLink, BytesView(encode(Packet{c})));
  }

  /// `subs` QoS 0 subscribers on broker `i`, filter shard/<i>/#.
  void add_subscribers(std::size_t i, int subs) {
    for (int s = 0; s < subs; ++s) {
      const LinkId link = kFirstSubLink + static_cast<LinkId>(s);
      brokers[i]->on_link_open(
          link,
          [this](const Bytes& b) {
            ++delivered;
            benchmark::DoNotOptimize(b.data());
          },
          [] {});
      Connect c;
      c.client_id = "sub" + std::to_string(s);
      brokers[i]->on_link_data(link, BytesView(encode(Packet{c})));
      Subscribe sub;
      sub.packet_id = 1;
      sub.topics = {{"shard/" + std::to_string(i) + "/#", QoS::kAtMostOnce}};
      brokers[i]->on_link_data(link, BytesView(encode(Packet{sub})));
    }
  }

  void report(benchmark::State& state, double deliveries_per_iter) {
    std::uint64_t pubs_in = 0;
    std::uint64_t bridged_in = 0;
    std::uint64_t bridge_out = 0;
    for (const auto& b : brokers) {
      pubs_in += b->counters().get("publishes_in");
      bridged_in += b->counters().get("bridge_in");
      bridge_out += b->counters().get("bridge_out");
    }
    state.counters["brokers"] = static_cast<double>(brokers.size());
    state.counters["routed_msgs_per_sec"] = benchmark::Counter(
        static_cast<double>(state.iterations()) * deliveries_per_iter,
        benchmark::Counter::kIsRate);
    state.counters["shard_local_ratio"] =
        pubs_in == 0 ? 1.0
                     : static_cast<double>(pubs_in - bridged_in) /
                           static_cast<double>(pubs_in);
    state.counters["bridge_out_per_iter"] =
        static_cast<double>(bridge_out) /
        static_cast<double>(state.iterations());
  }
};

Bytes shard_publish(std::size_t shard) {
  Publish p;
  p.topic = "shard/" + std::to_string(shard) + "/sense";
  p.qos = QoS::kAtMostOnce;
  p.payload = Bytes(64, 0x42);
  return encode(Packet{p});
}

/// Shard-local placement: one publish at each of the K brokers per
/// iteration, each fanning out to that shard's 10 subscribers. The
/// bridge mesh is connected but carries nothing.
void BM_FederatedLocal(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr int kSubs = 10;
  Mesh mesh(k);
  std::vector<Bytes> pubs;
  for (std::size_t i = 0; i < k; ++i) {
    mesh.add_publisher(i);
    mesh.add_subscribers(i, kSubs);
    pubs.push_back(shard_publish(i));
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i) {
      mesh.brokers[i]->on_link_data(kPubLink, BytesView(pubs[i]));
    }
  }
  benchmark::DoNotOptimize(mesh.delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) * kSubs);
  mesh.report(state, static_cast<double>(k) * kSubs);
}
BENCHMARK(BM_FederatedLocal)->Arg(1)->Arg(2)->Arg(4);

/// Worst-case placement: every publish enters at broker 0 and (K-1)/K of
/// them must cross a bridge to reach their shard's subscribers.
void BM_FederatedCrossShard(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  constexpr int kSubs = 10;
  Mesh mesh(k);
  mesh.add_publisher(0);
  std::vector<Bytes> pubs;
  for (std::size_t i = 0; i < k; ++i) {
    mesh.add_subscribers(i, kSubs);
    pubs.push_back(shard_publish(i));
  }
  for (auto _ : state) {
    for (std::size_t i = 0; i < k; ++i) {
      mesh.brokers[0]->on_link_data(kPubLink, BytesView(pubs[i]));
    }
  }
  benchmark::DoNotOptimize(mesh.delivered);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(k) * kSubs);
  mesh.report(state, static_cast<double>(k) * kSubs);
}
BENCHMARK(BM_FederatedCrossShard)->Arg(2)->Arg(4);

}  // namespace

IFOT_BENCH_MAIN("federation")
