// Route-cache behavior under subscription churn: the acceptance
// benchmark for per-entry fingerprint revalidation.
//
// The paper's workload publishes fixed sensor topics at 5-80 Hz forever
// while management clients come and go. Under whole-cache version
// invalidation, every unrelated SUBSCRIBE/UNSUBSCRIBE cold-started the
// hot topics (a full trie re-derivation per publish). With per-entry
// fingerprints the hot entry revalidates in place: one trie walk, no
// plan rebuild, and the invalidation counter stays flat.
//
// BM_RouteChurnUnrelated is the headline: unrelated churn between every
// publish must show invalidations_per_publish == 0 (revalidations do
// the work instead). BM_RouteChurnOverlapping is the control: churn
// that genuinely changes the hot topic's match set must still
// invalidate. BM_RouteStable is the no-churn floor both compare against.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/packet.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

class NullSched final : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration, std::function<void()>) override {
    return ++next_;
  }
  void cancel(std::uint64_t) override {}

 private:
  std::uint64_t next_ = 0;
};

constexpr LinkId kPubLink = 1;
constexpr LinkId kChurnLink = 2;
constexpr LinkId kFirstSubLink = 100;

/// Publisher + churner + `subs` steady subscribers, each holding three
/// overlapping filters on the hot topic (exact, '+', '#').
void connect_fleet(Broker& broker, int subs) {
  broker.on_link_open(kPubLink, [](const Bytes&) {}, [] {});
  Connect pc;
  pc.client_id = "pub";
  broker.on_link_data(kPubLink, BytesView(encode(Packet{pc})));
  broker.on_link_open(kChurnLink, [](const Bytes&) {}, [] {});
  Connect cc;
  cc.client_id = "churner";
  broker.on_link_data(kChurnLink, BytesView(encode(Packet{cc})));
  for (int i = 0; i < subs; ++i) {
    const LinkId link = kFirstSubLink + static_cast<LinkId>(i);
    broker.on_link_open(
        link, [](const Bytes& b) { benchmark::DoNotOptimize(b.data()); },
        [] {});
    Connect sc;
    sc.client_id = "sub" + std::to_string(i);
    broker.on_link_data(link, BytesView(encode(Packet{sc})));
    Subscribe s;
    s.packet_id = 1;
    s.topics = {{"ifot/paper_eval/sense_a", QoS::kAtMostOnce},
                {"ifot/+/sense_a", QoS::kAtMostOnce},
                {"ifot/#", QoS::kAtMostOnce}};
    broker.on_link_data(link, BytesView(encode(Packet{s})));
  }
}

Bytes hot_publish() {
  Publish p;
  p.topic = "ifot/paper_eval/sense_a";
  p.payload = Bytes(64, 0x42);
  return encode(Packet{p});
}

void report_route_counters(benchmark::State& state, const Broker& broker,
                           int subs, int pubs_per_iter = 1) {
  const double pubs =
      static_cast<double>(state.iterations()) * pubs_per_iter;
  const Counters& c = broker.counters();
  state.counters["fanout"] = subs;
  state.counters["routed_msgs_per_sec"] =
      benchmark::Counter(pubs * subs, benchmark::Counter::kIsRate);
  state.counters["invalidations_per_publish"] =
      static_cast<double>(c.get("route_cache_invalidations")) / pubs;
  state.counters["revalidations_per_publish"] =
      static_cast<double>(c.get("route_cache_revalidations")) / pubs;
  state.counters["misses_per_publish"] =
      static_cast<double>(c.get("route_cache_misses")) / pubs;
}

/// No churn: the steady-state hit floor.
void BM_RouteStable(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  NullSched sched;
  Broker broker(sched);
  connect_fleet(broker, subs);
  const Bytes pub = hot_publish();
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(pub));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
  report_route_counters(state, broker, subs);
}
BENCHMARK(BM_RouteStable)->Arg(10)->Arg(50);

/// The acceptance case: every publish is preceded by an unrelated
/// SUBSCRIBE + UNSUBSCRIBE (a management client polling a cold topic).
/// The hot entry's filter-set fingerprint is unchanged, so the cache
/// revalidates it in place — invalidations_per_publish must stay 0.
void BM_RouteChurnUnrelated(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  NullSched sched;
  Broker broker(sched);
  connect_fleet(broker, subs);
  const Bytes pub = hot_publish();
  Subscribe cs;
  cs.packet_id = 9;
  cs.topics = {{"mgmt/cold/poll", QoS::kAtMostOnce}};
  const Bytes churn_sub = encode(Packet{cs});
  Unsubscribe cu;
  cu.packet_id = 10;
  cu.topics = {"mgmt/cold/poll"};
  const Bytes churn_unsub = encode(Packet{cu});
  for (auto _ : state) {
    broker.on_link_data(kChurnLink, BytesView(churn_sub));
    broker.on_link_data(kChurnLink, BytesView(churn_unsub));
    broker.on_link_data(kPubLink, BytesView(pub));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          subs);
  report_route_counters(state, broker, subs);
}
BENCHMARK(BM_RouteChurnUnrelated)->Arg(10)->Arg(50);

/// The control: the churner's filter overlaps the hot topic, so its
/// match set genuinely changes and the entry must still invalidate
/// (correctness over retention — about one invalidation per publish).
void BM_RouteChurnOverlapping(benchmark::State& state) {
  const int subs = static_cast<int>(state.range(0));
  NullSched sched;
  Broker broker(sched);
  connect_fleet(broker, subs);
  const Bytes pub = hot_publish();
  Subscribe cs;
  cs.packet_id = 9;
  cs.topics = {{"ifot/paper_eval/+", QoS::kAtMostOnce}};
  const Bytes churn_sub = encode(Packet{cs});
  Unsubscribe cu;
  cu.packet_id = 10;
  cu.topics = {"ifot/paper_eval/+"};
  const Bytes churn_unsub = encode(Packet{cu});
  for (auto _ : state) {
    broker.on_link_data(kChurnLink, BytesView(churn_sub));
    broker.on_link_data(kPubLink, BytesView(pub));
    broker.on_link_data(kChurnLink, BytesView(churn_unsub));
    broker.on_link_data(kPubLink, BytesView(pub));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2 * subs);
  report_route_counters(state, broker, subs, /*pubs_per_iter=*/2);
}
BENCHMARK(BM_RouteChurnOverlapping)->Arg(10)->Arg(50);

}  // namespace

IFOT_BENCH_MAIN("route")
