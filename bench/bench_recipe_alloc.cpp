// Reproduces the application-build process of the paper's Fig. 6 as a
// measurable pipeline: Step 1 (recipe submission/parsing), Step 2 (recipe
// split + task assignment). Benchmarks each stage's cost against recipe
// size, and compares the three allocation strategies' placement quality
// on the paper topology (the ablation called out in DESIGN.md).
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>
#include <string>

#include "alloc/allocator.hpp"
#include "mgmt/report.hpp"
#include "recipe/parser.hpp"
#include "recipe/split.hpp"

namespace {

using namespace ifot;

/// Generates a recipe with `sensors` sources feeding a diamond of
/// operators into one actuator (size scales linearly with `sensors`).
std::string synthetic_recipe(int sensors) {
  std::string r = "recipe synth\n";
  for (int i = 0; i < sensors; ++i) {
    r += "node s" + std::to_string(i) +
         " : sensor { sensor = \"dev" + std::to_string(i) +
         "\", rate_hz = 10 }\n";
    r += "node w" + std::to_string(i) + " : window { size = 4 }\n";
    r += "node f" + std::to_string(i) +
         " : filter { field = \"value\", op = \"gt\", value = 0 }\n";
  }
  r += "node m : merge\nnode t : train { algorithm = \"arow\" }\n";
  r += "node a : actuator { actuator = \"out\" }\n";
  for (int i = 0; i < sensors; ++i) {
    const std::string si = std::to_string(i);
    r += "edge s" + si + " -> w" + si + " -> f" + si + " -> m\n";
    r += "edge s" + si + " -> t\n";
  }
  r += "edge m -> a\n";
  return r;
}

std::vector<alloc::ModuleInfo> fabric(int modules, int sensors) {
  std::vector<alloc::ModuleInfo> mods(static_cast<std::size_t>(modules));
  for (int i = 0; i < modules; ++i) {
    auto& m = mods[static_cast<std::size_t>(i)];
    m.id = NodeId{static_cast<NodeId::value_type>(i)};
    m.name = "m" + std::to_string(i);
    m.cpu_factor = i % 3 == 0 ? 2.0 : 1.0;  // heterogeneous
  }
  for (int i = 0; i < sensors; ++i) {
    mods[static_cast<std::size_t>(i % modules)].sensors.insert(
        "dev" + std::to_string(i));
  }
  mods.back().actuators.insert("out");
  return mods;
}

void BM_RecipeParse(benchmark::State& state) {
  const std::string text = synthetic_recipe(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto r = recipe::parse(text);
    benchmark::DoNotOptimize(r);
  }
  state.counters["nodes"] =
      static_cast<double>(recipe::parse(text).value().nodes.size());
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RecipeParse)->RangeMultiplier(4)->Range(1, 64)->Complexity();

void BM_RecipeSplit(benchmark::State& state) {
  const auto parsed =
      recipe::parse(synthetic_recipe(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto g = recipe::split_recipe(parsed.value());
    benchmark::DoNotOptimize(g);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RecipeSplit)->RangeMultiplier(4)->Range(1, 64)->Complexity();

void BM_Allocate(benchmark::State& state, const char* strategy) {
  const int sensors = static_cast<int>(state.range(0));
  const auto parsed = recipe::parse(synthetic_recipe(sensors));
  const auto graph = recipe::split_recipe(parsed.value()).value();
  const auto mods = fabric(6, sensors);
  auto allocator = alloc::make_allocator(strategy);
  for (auto _ : state) {
    auto p = allocator->allocate(graph, mods);
    benchmark::DoNotOptimize(p);
  }
  state.counters["tasks"] = static_cast<double>(graph.tasks.size());
}
BENCHMARK_CAPTURE(BM_Allocate, round_robin, "round_robin")
    ->RangeMultiplier(4)
    ->Range(1, 64);
BENCHMARK_CAPTURE(BM_Allocate, load_aware, "load_aware")
    ->RangeMultiplier(4)
    ->Range(1, 64);
BENCHMARK_CAPTURE(BM_Allocate, heft, "heft")->RangeMultiplier(4)->Range(1, 64);

void print_quality_ablation() {
  mgmt::Table t({"allocator", "max load", "imbalance", "cross edges",
                 "est. makespan"});
  const auto parsed = recipe::parse(synthetic_recipe(12));
  const auto graph = recipe::split_recipe(parsed.value()).value();
  const auto mods = fabric(6, 12);
  for (const char* name : {"round_robin", "load_aware", "heft"}) {
    auto allocator = alloc::make_allocator(name);
    auto p = allocator->allocate(graph, mods);
    if (!p) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   p.error().to_string().c_str());
      continue;
    }
    const auto m = alloc::evaluate_placement(graph, mods, p.value());
    t.add_row({name, mgmt::Table::num(m.max_load, 2),
               mgmt::Table::num(m.imbalance, 2),
               std::to_string(m.cross_edges),
               mgmt::Table::num(m.est_makespan, 2)});
  }
  mgmt::maybe_write_csv("alloc_quality", t);
  std::printf(
      "Task-assignment ablation (12-sensor recipe, 6 heterogeneous "
      "modules)\n%s\n",
      t.to_string().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  print_quality_ablation();
  ifot::benchjson::JsonDumpReporter reporter("BENCH_recipe_alloc.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
