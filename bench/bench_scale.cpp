// Million-sensor macro-benchmark: the RIoTBench-style scale target from
// the ROADMAP, measuring the timing-wheel scheduler under 10^5..10^6
// periodic sensor timers and a city-scale federated mesh driven entirely
// from the wheel.
//
//  * BM_SensorTimerWheel — N staggered self-re-arming sensor timers on
//    the raw simulator. Every virtual second fires N events, each of
//    which rearms its own node in place (the steady-state pattern of
//    PeriodicTimer and the broker/client timers). Measures raw scheduler
//    throughput (events/sec), peak occupancy, and bytes/sensor.
//  * BM_ScaleCityMesh — N sensors ticking on the wheel publish
//    pre-encoded mixed-QoS PUBLISHes (70/20/10 QoS 0/1/2, QoS 2 with its
//    PUBREL batched in the same write) into a K=4 sharded broker mesh
//    with bridge links; a slice of the fleet publishes into a
//    neighbouring shard so bridges carry traffic. Measures end-to-end
//    routed msgs/sec with the scheduler in the loop.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/types.hpp"
#include "mqtt/bridge.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/federation_map.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/scheduler.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

/// mqtt::Scheduler on the timing wheel (rearm included), so broker
/// timers ride the same queue as the sensor fleet.
class WheelSched final : public Scheduler {
 public:
  explicit WheelSched(sim::Simulator& sim) : sim_(sim) {}
  SimTime now() override { return sim_.now(); }
  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override {
    return sim_.schedule_after(delay, std::move(fn)).handle;
  }
  void cancel(std::uint64_t handle) override {
    sim_.cancel(sim::EventId{handle});
  }
  std::uint64_t rearm(std::uint64_t handle, SimDuration delay) override {
    return sim_.rearm_after(sim::EventId{handle}, delay).handle;
  }

 private:
  sim::Simulator& sim_;
};

// ---------------------------------------------------------------------------
// Raw wheel: N periodic sensors, self-re-arming.

void BM_SensorTimerWheel(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const SimDuration period = from_millis(1000);
  sim::Simulator sim;
  std::vector<sim::EventId> ids(n);
  std::uint64_t ticks = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // Staggered phases so ticks spread across the whole wheel window.
    const SimTime first = static_cast<SimTime>(
        (static_cast<std::uint64_t>(period) * i) / n);
    ids[i] = sim.schedule_at(first, [&sim, &ids, &ticks, i] {
      ++ticks;
      ids[i] = sim.rearm_after(ids[i], period);
    });
  }
  SimTime horizon = 0;
  for (auto _ : state) {
    horizon += period;
    sim.run_until(horizon);
  }
  benchmark::DoNotOptimize(ticks);
  const sim::SchedulerStats s = sim.stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(s.fired));
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(s.fired), benchmark::Counter::kIsRate);
  state.counters["sched_occupancy_peak"] =
      static_cast<double>(s.occupancy_high_water);
  state.counters["sched_rearmed"] = static_cast<double>(s.rearmed);
  state.counters["bytes_per_sensor"] =
      static_cast<double>(s.pool_retained_bytes) / static_cast<double>(n);
}
BENCHMARK(BM_SensorTimerWheel)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// City mesh: sensors on the wheel publishing into a federated mesh.

constexpr LinkId kPubLink = 1;
constexpr LinkId kFirstSubLink = 100;
constexpr LinkId kFirstBridgeLink = 5000;
constexpr std::size_t kVariants = 64;  // pre-encoded frames per shard

struct ScaleCity {
  sim::Simulator sim;
  WheelSched sched{sim};
  std::vector<std::unique_ptr<Broker>> brokers;
  std::vector<std::unique_ptr<Bridge>> bridges;
  // frames[shard][variant]: encoded PUBLISH (QoS 2 frames carry their
  // PUBREL in the same buffer, exercising the batched-stream decode).
  std::vector<std::vector<Bytes>> frames;
  std::vector<sim::EventId> ids;
  SimDuration period = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;

  explicit ScaleCity(std::size_t k) {
    FederationMap map(k);
    for (std::size_t i = 0; i < k; ++i) {
      (void)map.assign("shard/" + std::to_string(i), i);
      brokers.push_back(std::make_unique<Broker>(sched));
    }
    LinkId next_link = kFirstBridgeLink;
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = i + 1; j < k; ++j) {
        BridgeConfig bc;
        bc.name = "fed-" + std::to_string(i) + "-" + std::to_string(j);
        bc.local_label = "b" + std::to_string(i);
        bc.remote_label = "b" + std::to_string(j);
        for (auto& f : map.filters_owned_by(j)) {
          bc.out_filters.push_back({std::move(f), QoS::kExactlyOnce});
        }
        for (auto& f : map.filters_owned_by(i)) {
          bc.in_filters.push_back({std::move(f), QoS::kExactlyOnce});
        }
        const LinkId llink = next_link++;
        const LinkId rlink = next_link++;
        bridges.push_back(std::make_unique<Bridge>(
            sched, std::move(bc),
            [bi = brokers[i].get(), llink](const Bytes& b) {
              bi->on_link_data(llink, BytesView(b));
            },
            [bj = brokers[j].get(), rlink](const Bytes& b) {
              bj->on_link_data(rlink, BytesView(b));
            }));
        Bridge* bp = bridges.back().get();
        brokers[i]->on_link_open(
            llink, [bp](const Bytes& b) { bp->local_data(BytesView(b)); },
            [] {});
        brokers[j]->on_link_open(
            rlink, [bp](const Bytes& b) { bp->remote_data(BytesView(b)); },
            [] {});
        bp->local_transport_open();
        bp->remote_transport_open();
      }
    }
    for (std::size_t i = 0; i < k; ++i) {
      add_publisher(i);
      add_subscribers(i, /*subs=*/5);
      frames.push_back(make_frames(i));
    }
  }

  void add_publisher(std::size_t i) {
    brokers[i]->on_link_open(kPubLink, [](const Bytes&) {}, [] {});
    Connect c;
    c.client_id = "pub" + std::to_string(i);
    brokers[i]->on_link_data(kPubLink, BytesView(encode(Packet{c})));
  }

  void add_subscribers(std::size_t i, int subs) {
    for (int s = 0; s < subs; ++s) {
      const LinkId link = kFirstSubLink + static_cast<LinkId>(s);
      brokers[i]->on_link_open(
          link,
          [this](const Bytes& b) {
            ++delivered;
            benchmark::DoNotOptimize(b.data());
          },
          [] {});
      Connect c;
      c.client_id = "sub" + std::to_string(s);
      brokers[i]->on_link_data(link, BytesView(encode(Packet{c})));
      Subscribe sub;
      sub.packet_id = 1;
      sub.topics = {{"shard/" + std::to_string(i) + "/#", QoS::kAtMostOnce}};
      brokers[i]->on_link_data(link, BytesView(encode(Packet{sub})));
    }
  }

  /// Mixed-QoS recipe: per 10 variants, 7 QoS 0, 2 QoS 1, 1 QoS 2.
  [[nodiscard]] std::vector<Bytes> make_frames(std::size_t shard) const {
    std::vector<Bytes> out;
    out.reserve(kVariants);
    for (std::size_t v = 0; v < kVariants; ++v) {
      Publish p;
      p.topic = "shard/" + std::to_string(shard) + "/s" + std::to_string(v);
      p.payload = Bytes(48, static_cast<std::uint8_t>(v));
      const std::size_t r = v % 10;
      p.qos = r == 0   ? QoS::kExactlyOnce
              : r <= 2 ? QoS::kAtLeastOnce
                       : QoS::kAtMostOnce;
      p.packet_id =
          p.qos == QoS::kAtMostOnce ? 0 : static_cast<std::uint16_t>(v + 1);
      Bytes wire = encode(Packet{p});
      if (p.qos == QoS::kExactlyOnce) {
        // Complete the inbound handshake in the same transport write so
        // the dedup slot frees before the variant cycles around.
        const Bytes rel = encode(Packet{Pubrel{p.packet_id}});
        wire.insert(wire.end(), rel.begin(), rel.end());
      }
      out.push_back(std::move(wire));
    }
    return out;
  }

  /// Starts N sensors with staggered phases; sensor i publishes variant
  /// i % kVariants into shard i % K — except every 16th sensor, which
  /// publishes the *next* shard's topic from its local broker, forcing
  /// that message across a bridge (geo-roaming traffic).
  void start_sensors(std::size_t n, SimDuration tick) {
    const std::size_t k = brokers.size();
    period = tick;
    ids.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t home = i % k;
      const std::size_t topic_shard = (i % 16 == 0) ? (home + 1) % k : home;
      // Three captures (24 bytes) keep every sensor closure inside the
      // scheduler's 32-byte inline slot: 96 bytes/sensor, no pool spill.
      const Bytes* frame = &frames[topic_shard][i % kVariants];
      const SimTime first = static_cast<SimTime>(
          (static_cast<std::uint64_t>(tick) * i) / n);
      ids[i] = sim.schedule_at(first, [this, frame, i] {
        brokers[i % brokers.size()]->on_link_data(kPubLink, BytesView(*frame));
        ++published;
        ids[i] = sim.rearm_after(ids[i], period);
      });
    }
  }
};

void BM_ScaleCityMesh(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kShards = 4;
  const SimDuration period = from_millis(1000);
  ScaleCity city(kShards);
  city.start_sensors(n, period);
  SimTime horizon = 0;
  for (auto _ : state) {
    horizon += period;
    city.sim.run_until(horizon);
  }
  benchmark::DoNotOptimize(city.delivered);
  const sim::SchedulerStats s = city.sim.stats();
  std::uint64_t bridged_in = 0;
  for (const auto& b : city.brokers) {
    bridged_in += b->counters().get("bridge_in");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(city.delivered));
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(city.delivered), benchmark::Counter::kIsRate);
  state.counters["events_per_sec"] = benchmark::Counter(
      static_cast<double>(s.fired), benchmark::Counter::kIsRate);
  state.counters["publishes"] = static_cast<double>(city.published);
  state.counters["bridged_in"] = static_cast<double>(bridged_in);
  state.counters["sched_occupancy_peak"] =
      static_cast<double>(s.occupancy_high_water);
  state.counters["bytes_per_sensor"] =
      static_cast<double>(s.pool_retained_bytes) / static_cast<double>(n);
}
BENCHMARK(BM_ScaleCityMesh)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

IFOT_BENCH_MAIN("scale")
