// The paper's closing observation (§V-C): "in order to realize the
// real-time processing in a larger-scale environment, it is necessary to
// add further parallelization / decentralization of processing tasks
// according to available resources."
//
// This bench implements that extension: at the saturating 40 Hz and 80 Hz
// rates, the Learning stage is split into N shard tasks spread over extra
// worker modules (recipe `parallelism`) using partitioned routing (each
// sample crosses the broker to exactly one shard), with consumer-side MIX
// fusing the shard models. Expectation: sensing->training latency
// collapses back to the flat region once per-shard load drops below one
// module's capacity (40 Hz at x4) - until the single Broker class's
// *ingress* rate becomes the next ceiling (80 Hz = 240 msg/s), which is
// the paper's own argument for further decentralization.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>

#include "mgmt/paper_experiment.hpp"
#include "mgmt/report.hpp"

namespace {

using namespace ifot;

mgmt::RateResult run_at(double rate, int parallelism,
                        bool partitioned = true, int brokers = 1) {
  mgmt::PaperExperimentConfig cfg;
  cfg.rates_hz = {rate};
  cfg.duration = 20 * kSecond;
  cfg.train_parallelism = parallelism;
  cfg.extra_workers = parallelism > 1 ? parallelism : 0;
  cfg.partitioned = partitioned;
  cfg.brokers = brokers;
  auto result = mgmt::run_paper_experiment(cfg);
  return std::move(result.rates.front());
}

void BM_ParallelTrain(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0));
  const int par = static_cast<int>(state.range(1));
  mgmt::RateResult rr;
  for (auto _ : state) {
    rr = run_at(rate, par);
  }
  state.counters["rate_hz"] = rate;
  state.counters["parallelism"] = par;
  state.counters["train_avg_ms"] = rr.train.avg_ms();
  state.counters["train_max_ms"] = rr.train.max_ms();
  state.SetLabel("train x" + std::to_string(par) + " @" +
                 std::to_string(static_cast<int>(rate)) + "Hz");
}
BENCHMARK(BM_ParallelTrain)
    ->ArgsProduct({{40, 80}, {1, 2, 4, 8}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  mgmt::Table t({"rate (Hz)", "train parallelism", "avg (ms)", "max (ms)",
                 "completions", "broker util"});
  for (double rate : {40.0, 80.0}) {
    for (int par : {1, 2, 4, 8}) {
      const auto rr = run_at(rate, par);
      t.add_row({mgmt::Table::num(rate, 0), std::to_string(par),
                 mgmt::Table::num(rr.train.avg_ms()),
                 mgmt::Table::num(rr.train.max_ms()),
                 std::to_string(rr.train.count()),
                 mgmt::Table::num(rr.broker_module_util, 2)});
    }
  }
  mgmt::maybe_write_csv("scalability_parallelism", t);
  std::printf(
      "Scalability extension: parallelized Learning stage at saturating "
      "rates\n%s\n"
      "With partitioned routing each sample crosses the broker to exactly\n"
      "one shard, so 40 Hz collapses back to the flat region at x4. At\n"
      "80 Hz the broker-utilization column shows the next ceiling: 240\n"
      "ingress msg/s saturates the single Broker class no matter how many\n"
      "Learning shards exist - the paper's closing call for further\n"
      "decentralization 'according to available resources'.\n\n",
      t.to_string().c_str());

  // Ablation: partitioned routing off (every shard receives every sample
  // and filters client-side) - broker fan-out grows with N.
  mgmt::Table abl({"rate (Hz)", "parallelism", "routing", "avg (ms)",
                   "broker util"});
  for (bool part : {true, false}) {
    const auto rr = run_at(40, 8, part);
    abl.add_row({"40", "8", part ? "partitioned" : "filter-at-consumer",
                 mgmt::Table::num(rr.train.avg_ms()),
                 mgmt::Table::num(rr.broker_module_util, 2)});
  }
  mgmt::maybe_write_csv("scalability_routing_ablation", abl);
  std::printf("Routing ablation at 40 Hz x 8 shards\n%s\n",
              abl.to_string().c_str());

  // Broker decentralization: 80 Hz saturates one broker's ingress; with
  // the three sensor flows assigned to distinct brokers (recipe
  // `broker = N`), the fabric recovers.
  mgmt::Table dec({"rate (Hz)", "parallelism", "brokers", "avg (ms)",
                   "primary broker util"});
  for (int brokers : {1, 2, 3}) {
    const auto rr = run_at(80, 8, true, brokers);
    dec.add_row({"80", "8", std::to_string(brokers),
                 mgmt::Table::num(rr.train.avg_ms()),
                 mgmt::Table::num(rr.broker_module_util, 2)});
  }
  mgmt::maybe_write_csv("scalability_brokers", dec);
  std::printf("Broker decentralization at 80 Hz x 8 shards\n%s\n",
              dec.to_string().c_str());
  ifot::benchjson::JsonDumpReporter reporter("BENCH_scalability.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
