// Egress-path throughput with pooled buffers: Outbox frame recycling
// (take_buffer / recycle on flush), shared wire-template patch-in-place
// fan-out, and the broker-level QoS 1 ack cycle that exercises both
// plus the NodePool-backed inflight map.
//
// The middleware's egress volume is fan-out-shaped: one PUBLISH in, N
// identical frames out, plus a steady stream of 4-byte acks. Before
// pooling, every frame was a fresh heap buffer and every QoS 1/2
// message a fresh encode; now owned control frames cycle through the
// outbox's spare list, PUBLISH frames share one pooled template per
// fan-out group (patched, never re-encoded), and steady-state egress
// performs zero allocations (gated by mqtt_alloc_test).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_json.hpp"
#include "common/stats.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/outbox.hpp"
#include "mqtt/packet.hpp"

namespace {

using namespace ifot;
using namespace ifot::mqtt;

class NullSched final : public Scheduler {
 public:
  SimTime now() override { return 0; }
  std::uint64_t call_after(SimDuration, std::function<void()>) override {
    return ++next_;
  }
  void cancel(std::uint64_t) override {}

 private:
  std::uint64_t next_ = 0;
};

/// Control-packet egress: encode a batch of acks into recycled outbox
/// buffers and flush them as one coalesced write per turn.
void BM_EgressOwnedFrameCycle(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Counters counters;
  std::uint64_t bytes_out = 0;
  Outbox box(
      Outbox::Config{}, [&](const Bytes& b) { bytes_out += b.size(); },
      &counters);
  std::uint16_t pid = 1;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      Bytes frame = box.take_buffer();
      encode_into(Packet{Puback{pid++}}, frame);
      box.enqueue(std::move(frame));
    }
    box.flush();
  }
  benchmark::DoNotOptimize(bytes_out);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          batch);
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * batch,
      benchmark::Counter::kIsRate);
  state.counters["frames_per_write"] =
      static_cast<double>(counters.get("egress_frames")) /
      static_cast<double>(std::max<std::uint64_t>(1,
                                                  counters.get(
                                                      "egress_writes")));
}
BENCHMARK(BM_EgressOwnedFrameCycle)->Arg(1)->Arg(16);

/// Template fan-out: one pooled wire template shared by N outboxes
/// (one per subscriber link); each flush patches the packet id and DUP
/// bit in place — no per-link encode, no per-frame buffer.
void BM_EgressTemplateFanOut(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  Counters counters;
  std::uint64_t bytes_out = 0;
  std::vector<Outbox> boxes;
  boxes.reserve(static_cast<std::size_t>(links));
  for (int i = 0; i < links; ++i) {
    boxes.emplace_back(
        Outbox::Config{}, [&](const Bytes& b) { bytes_out += b.size(); },
        &counters);
  }
  WireTemplatePool pool;
  Publish p;
  p.topic = "ifot/paper_eval/sense_a";
  p.qos = QoS::kAtLeastOnce;
  p.packet_id = 1;
  p.payload = Bytes(64, 0x42);
  std::uint16_t pid = 1;
  for (auto _ : state) {
    WireTemplateRef tpl = pool.acquire();
    tpl->assign(p);
    for (auto& box : boxes) {
      box.enqueue(tpl, pid, false);
      box.flush();
    }
    ++pid;
  }
  benchmark::DoNotOptimize(bytes_out);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          links);
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * links,
      benchmark::Counter::kIsRate);
  state.counters["template_reuses"] = static_cast<double>(pool.reuses());
  state.counters["templates_created"] = static_cast<double>(pool.created());
}
BENCHMARK(BM_EgressTemplateFanOut)->Arg(1)->Arg(10)->Arg(50);

constexpr LinkId kPubLink = 1;
constexpr LinkId kSubLink = 100;

/// The full broker QoS 1 cycle: publish in, templated PUBLISH out, ack
/// back through the ingress decoder. Exercises the pooled inflight map
/// (NodePool node churn), template pool, and recycled ack buffers at
/// once — the end-to-end steady state the allocation gate freezes.
void BM_EgressBrokerQos1Cycle(benchmark::State& state) {
  NullSched sched;
  Broker broker(sched);
  std::uint64_t bytes_out = 0;
  broker.on_link_open(kPubLink, [](const Bytes&) {}, [] {});
  Connect pc;
  pc.client_id = "pub";
  broker.on_link_data(kPubLink, BytesView(encode(Packet{pc})));
  broker.on_link_open(
      kSubLink, [&](const Bytes& b) { bytes_out += b.size(); }, [] {});
  Connect sc;
  sc.client_id = "sub";
  broker.on_link_data(kSubLink, BytesView(encode(Packet{sc})));
  Subscribe s;
  s.packet_id = 1;
  s.topics = {{"ifot/#", QoS::kAtLeastOnce}};
  broker.on_link_data(kSubLink, BytesView(encode(Packet{s})));

  Publish p;
  p.topic = "ifot/paper_eval/sense_a";
  p.qos = QoS::kAtLeastOnce;
  p.packet_id = 7;
  p.payload = Bytes(64, 0x42);
  const Bytes pub = encode(Packet{p});
  Bytes puback = {0x40, 0x02, 0x00, 0x00};
  std::uint16_t next_pid = 1;
  for (auto _ : state) {
    broker.on_link_data(kPubLink, BytesView(pub));
    puback[2] = static_cast<std::uint8_t>(next_pid >> 8);
    puback[3] = static_cast<std::uint8_t>(next_pid & 0xff);
    broker.on_link_data(kSubLink, BytesView(puback));
    next_pid = static_cast<std::uint16_t>(next_pid == 0xffff ? 1
                                                             : next_pid + 1);
  }
  benchmark::DoNotOptimize(bytes_out);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  const auto iters = static_cast<double>(state.iterations());
  const Counters& c = broker.counters();
  state.counters["routed_msgs_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["encodes_per_publish"] =
      static_cast<double>(c.get("fanout_encodes")) / iters;
  state.counters["payload_bytes_copied_per_publish"] =
      static_cast<double>(c.get("payload_bytes_copied")) / iters;
}
BENCHMARK(BM_EgressBrokerQos1Cycle);

}  // namespace

IFOT_BENCH_MAIN("egress")
