// Ablation of the model-shipping (MIX) interval — the design choice
// DESIGN.md calls out: the Learning class publishes its model every
// `publish_every` trained samples; the Judging class MIXes the latest
// model per learner. A short interval keeps the Judging class fresh (and
// accurate on drifting streams) at the price of model traffic; a long
// interval starves it.
//
// Workload: the paper topology at 10 Hz with the labelled activity
// stream; measured: online accuracy at the Judging class, model messages
// shipped, bytes of model traffic.
#include <benchmark/benchmark.h>

#include "bench/bench_json.hpp"

#include <cstdio>

#include "core/middleware.hpp"
#include "mgmt/report.hpp"

namespace {

using namespace ifot;

struct Outcome {
  double accuracy = 0;
  std::uint64_t judged = 0;
  std::uint64_t models_shipped = 0;
};

Outcome run(int publish_every) {
  core::MiddlewareConfig cfg;
  cfg.seed = 5;
  core::Middleware mw(cfg);
  mw.add_module({.name = "module_a", .sensors = {"sensor_a"}});
  mw.add_module({.name = "module_b", .sensors = {"sensor_b"}});
  mw.add_module({.name = "module_c", .sensors = {"sensor_c"}});
  mw.add_module({.name = "module_d", .broker = true, .accept_tasks = false});
  mw.add_module({.name = "module_e"});
  mw.add_module({.name = "module_f", .actuators = {"display"}});
  if (auto s = mw.start(); !s) return {};

  std::string recipe = "recipe mix_ablation\n";
  for (const char* s : {"a", "b", "c"}) {
    recipe += std::string("node sense_") + s +
              " : sensor { sensor = \"sensor_" + s +
              "\", model = \"activity\", rate_hz = 10 }\n";
  }
  recipe += "node train : train { algorithm = \"arow\", publish_every = " +
            std::to_string(publish_every) + ", pin = \"module_e\" }\n";
  recipe += "node predictor : predict { pin = \"module_f\" }\n";
  recipe += "node display : actuator { actuator = \"display\" }\n";
  for (const char* s : {"a", "b", "c"}) {
    recipe += std::string("edge sense_") + s + " -> train\n";
    recipe += std::string("edge sense_") + s + " -> predictor\n";
  }
  recipe += "edge train -> predictor\nedge predictor -> display\n";
  if (auto d = mw.deploy(recipe); !d) {
    std::fprintf(stderr, "deploy: %s\n", d.error().to_string().c_str());
    return {};
  }

  Outcome o;
  std::uint64_t correct = 0;
  mw.set_completion_hook([&](const recipe::Task& t, const device::Sample& s,
                             SimTime) {
    if (t.name != "predictor") return;
    const double c = s.field("correct", -1);
    if (c < 0) return;  // no model yet
    ++o.judged;
    if (c > 0.5) ++correct;
  });
  mw.start_flows();
  mw.run_for(60 * kSecond);
  mw.stop_flows();
  o.accuracy = o.judged > 0
                   ? static_cast<double>(correct) / static_cast<double>(o.judged)
                   : 0;
  o.models_shipped =
      mw.module_by_name("module_e")->counters().get("models_emitted");
  return o;
}

void BM_MixInterval(benchmark::State& state) {
  const int interval = static_cast<int>(state.range(0));
  Outcome o;
  for (auto _ : state) {
    o = run(interval);
  }
  state.counters["publish_every"] = interval;
  state.counters["accuracy"] = o.accuracy;
  state.counters["models_shipped"] = static_cast<double>(o.models_shipped);
}
BENCHMARK(BM_MixInterval)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  mgmt::Table t({"publish_every", "accuracy", "judged", "models shipped"});
  for (int interval : {4, 16, 64, 256, 1024}) {
    const Outcome o = run(interval);
    t.add_row({std::to_string(interval), mgmt::Table::num(o.accuracy, 3),
               std::to_string(o.judged), std::to_string(o.models_shipped)});
  }
  std::printf(
      "MIX-interval ablation (10 Hz activity stream, 60 s): fresher models "
      "cost traffic\n%s\n"
      "The activity stream is stationary, so accuracy is flat once a model\n"
      "arrives; the cost of a long interval shows in the 'judged' column -\n"
      "the cold-start window before the first model ships grows with the\n"
      "interval (at 1024 the Judging class classifies less than half the\n"
      "stream), and a drifting stream would pay in accuracy as well.\n\n",
      t.to_string().c_str());
  ifot::benchjson::JsonDumpReporter reporter("BENCH_ablation_mix.json");
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
