file(REMOVE_RECURSE
  "CMakeFiles/bench_recipe_alloc.dir/bench_recipe_alloc.cpp.o"
  "CMakeFiles/bench_recipe_alloc.dir/bench_recipe_alloc.cpp.o.d"
  "bench_recipe_alloc"
  "bench_recipe_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recipe_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
