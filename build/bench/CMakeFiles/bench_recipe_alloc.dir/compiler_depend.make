# Empty compiler generated dependencies file for bench_recipe_alloc.
# This may be replaced when dependencies are built.
