# Empty compiler generated dependencies file for bench_fig1_cloud_vs_local.
# This may be replaced when dependencies are built.
