# Empty dependencies file for bench_table2_training.
# This may be replaced when dependencies are built.
