file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_predicting.dir/bench_table3_predicting.cpp.o"
  "CMakeFiles/bench_table3_predicting.dir/bench_table3_predicting.cpp.o.d"
  "bench_table3_predicting"
  "bench_table3_predicting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_predicting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
