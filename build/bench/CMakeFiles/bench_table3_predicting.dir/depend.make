# Empty dependencies file for bench_table3_predicting.
# This may be replaced when dependencies are built.
