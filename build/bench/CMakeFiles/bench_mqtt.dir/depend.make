# Empty dependencies file for bench_mqtt.
# This may be replaced when dependencies are built.
