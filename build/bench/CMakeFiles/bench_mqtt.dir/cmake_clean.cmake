file(REMOVE_RECURSE
  "CMakeFiles/bench_mqtt.dir/bench_mqtt.cpp.o"
  "CMakeFiles/bench_mqtt.dir/bench_mqtt.cpp.o.d"
  "bench_mqtt"
  "bench_mqtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mqtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
