file(REMOVE_RECURSE
  "CMakeFiles/bench_ml.dir/bench_ml.cpp.o"
  "CMakeFiles/bench_ml.dir/bench_ml.cpp.o.d"
  "bench_ml"
  "bench_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
