# Empty dependencies file for ifot_alloc.
# This may be replaced when dependencies are built.
