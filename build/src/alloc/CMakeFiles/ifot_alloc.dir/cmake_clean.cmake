file(REMOVE_RECURSE
  "CMakeFiles/ifot_alloc.dir/allocator.cpp.o"
  "CMakeFiles/ifot_alloc.dir/allocator.cpp.o.d"
  "libifot_alloc.a"
  "libifot_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
