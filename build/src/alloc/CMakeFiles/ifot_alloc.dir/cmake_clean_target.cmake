file(REMOVE_RECURSE
  "libifot_alloc.a"
)
