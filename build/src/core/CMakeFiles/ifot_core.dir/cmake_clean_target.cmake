file(REMOVE_RECURSE
  "libifot_core.a"
)
