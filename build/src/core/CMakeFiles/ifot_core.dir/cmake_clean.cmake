file(REMOVE_RECURSE
  "CMakeFiles/ifot_core.dir/middleware.cpp.o"
  "CMakeFiles/ifot_core.dir/middleware.cpp.o.d"
  "libifot_core.a"
  "libifot_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
