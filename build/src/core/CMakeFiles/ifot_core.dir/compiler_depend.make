# Empty compiler generated dependencies file for ifot_core.
# This may be replaced when dependencies are built.
