file(REMOVE_RECURSE
  "libifot_ml.a"
)
