file(REMOVE_RECURSE
  "CMakeFiles/ifot_ml.dir/anomaly.cpp.o"
  "CMakeFiles/ifot_ml.dir/anomaly.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/classifier.cpp.o"
  "CMakeFiles/ifot_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/cluster.cpp.o"
  "CMakeFiles/ifot_ml.dir/cluster.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/evaluation.cpp.o"
  "CMakeFiles/ifot_ml.dir/evaluation.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/feature.cpp.o"
  "CMakeFiles/ifot_ml.dir/feature.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/linear_model.cpp.o"
  "CMakeFiles/ifot_ml.dir/linear_model.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/mix.cpp.o"
  "CMakeFiles/ifot_ml.dir/mix.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/model_io.cpp.o"
  "CMakeFiles/ifot_ml.dir/model_io.cpp.o.d"
  "CMakeFiles/ifot_ml.dir/regression.cpp.o"
  "CMakeFiles/ifot_ml.dir/regression.cpp.o.d"
  "libifot_ml.a"
  "libifot_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
