
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/anomaly.cpp" "src/ml/CMakeFiles/ifot_ml.dir/anomaly.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/anomaly.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/ifot_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cluster.cpp" "src/ml/CMakeFiles/ifot_ml.dir/cluster.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/cluster.cpp.o.d"
  "/root/repo/src/ml/evaluation.cpp" "src/ml/CMakeFiles/ifot_ml.dir/evaluation.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/evaluation.cpp.o.d"
  "/root/repo/src/ml/feature.cpp" "src/ml/CMakeFiles/ifot_ml.dir/feature.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/feature.cpp.o.d"
  "/root/repo/src/ml/linear_model.cpp" "src/ml/CMakeFiles/ifot_ml.dir/linear_model.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/linear_model.cpp.o.d"
  "/root/repo/src/ml/mix.cpp" "src/ml/CMakeFiles/ifot_ml.dir/mix.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/mix.cpp.o.d"
  "/root/repo/src/ml/model_io.cpp" "src/ml/CMakeFiles/ifot_ml.dir/model_io.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/model_io.cpp.o.d"
  "/root/repo/src/ml/regression.cpp" "src/ml/CMakeFiles/ifot_ml.dir/regression.cpp.o" "gcc" "src/ml/CMakeFiles/ifot_ml.dir/regression.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
