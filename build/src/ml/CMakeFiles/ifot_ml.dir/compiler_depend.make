# Empty compiler generated dependencies file for ifot_ml.
# This may be replaced when dependencies are built.
