file(REMOVE_RECURSE
  "CMakeFiles/ifot_mqtt.dir/broker.cpp.o"
  "CMakeFiles/ifot_mqtt.dir/broker.cpp.o.d"
  "CMakeFiles/ifot_mqtt.dir/client.cpp.o"
  "CMakeFiles/ifot_mqtt.dir/client.cpp.o.d"
  "CMakeFiles/ifot_mqtt.dir/packet.cpp.o"
  "CMakeFiles/ifot_mqtt.dir/packet.cpp.o.d"
  "CMakeFiles/ifot_mqtt.dir/topic.cpp.o"
  "CMakeFiles/ifot_mqtt.dir/topic.cpp.o.d"
  "libifot_mqtt.a"
  "libifot_mqtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_mqtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
