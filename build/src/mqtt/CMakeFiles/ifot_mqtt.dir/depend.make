# Empty dependencies file for ifot_mqtt.
# This may be replaced when dependencies are built.
