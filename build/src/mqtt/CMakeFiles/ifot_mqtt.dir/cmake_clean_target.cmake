file(REMOVE_RECURSE
  "libifot_mqtt.a"
)
