# Empty dependencies file for ifot_device.
# This may be replaced when dependencies are built.
