file(REMOVE_RECURSE
  "CMakeFiles/ifot_device.dir/actuator_sim.cpp.o"
  "CMakeFiles/ifot_device.dir/actuator_sim.cpp.o.d"
  "CMakeFiles/ifot_device.dir/sample.cpp.o"
  "CMakeFiles/ifot_device.dir/sample.cpp.o.d"
  "CMakeFiles/ifot_device.dir/sensor_sim.cpp.o"
  "CMakeFiles/ifot_device.dir/sensor_sim.cpp.o.d"
  "libifot_device.a"
  "libifot_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
