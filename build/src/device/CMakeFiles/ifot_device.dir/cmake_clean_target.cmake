file(REMOVE_RECURSE
  "libifot_device.a"
)
