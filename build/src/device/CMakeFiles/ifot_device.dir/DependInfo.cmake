
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/device/actuator_sim.cpp" "src/device/CMakeFiles/ifot_device.dir/actuator_sim.cpp.o" "gcc" "src/device/CMakeFiles/ifot_device.dir/actuator_sim.cpp.o.d"
  "/root/repo/src/device/sample.cpp" "src/device/CMakeFiles/ifot_device.dir/sample.cpp.o" "gcc" "src/device/CMakeFiles/ifot_device.dir/sample.cpp.o.d"
  "/root/repo/src/device/sensor_sim.cpp" "src/device/CMakeFiles/ifot_device.dir/sensor_sim.cpp.o" "gcc" "src/device/CMakeFiles/ifot_device.dir/sensor_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
