file(REMOVE_RECURSE
  "libifot_node.a"
)
