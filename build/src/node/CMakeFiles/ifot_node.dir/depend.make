# Empty dependencies file for ifot_node.
# This may be replaced when dependencies are built.
