
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/cpu_model.cpp" "src/node/CMakeFiles/ifot_node.dir/cpu_model.cpp.o" "gcc" "src/node/CMakeFiles/ifot_node.dir/cpu_model.cpp.o.d"
  "/root/repo/src/node/flow_msg.cpp" "src/node/CMakeFiles/ifot_node.dir/flow_msg.cpp.o" "gcc" "src/node/CMakeFiles/ifot_node.dir/flow_msg.cpp.o.d"
  "/root/repo/src/node/module.cpp" "src/node/CMakeFiles/ifot_node.dir/module.cpp.o" "gcc" "src/node/CMakeFiles/ifot_node.dir/module.cpp.o.d"
  "/root/repo/src/node/tasks.cpp" "src/node/CMakeFiles/ifot_node.dir/tasks.cpp.o" "gcc" "src/node/CMakeFiles/ifot_node.dir/tasks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ifot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ifot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/ifot_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ifot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/recipe/CMakeFiles/ifot_recipe.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ifot_device.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
