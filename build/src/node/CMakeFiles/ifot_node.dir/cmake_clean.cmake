file(REMOVE_RECURSE
  "CMakeFiles/ifot_node.dir/cpu_model.cpp.o"
  "CMakeFiles/ifot_node.dir/cpu_model.cpp.o.d"
  "CMakeFiles/ifot_node.dir/flow_msg.cpp.o"
  "CMakeFiles/ifot_node.dir/flow_msg.cpp.o.d"
  "CMakeFiles/ifot_node.dir/module.cpp.o"
  "CMakeFiles/ifot_node.dir/module.cpp.o.d"
  "CMakeFiles/ifot_node.dir/tasks.cpp.o"
  "CMakeFiles/ifot_node.dir/tasks.cpp.o.d"
  "libifot_node.a"
  "libifot_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
