# Empty compiler generated dependencies file for ifot_mgmt.
# This may be replaced when dependencies are built.
