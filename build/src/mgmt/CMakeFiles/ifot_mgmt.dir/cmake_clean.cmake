file(REMOVE_RECURSE
  "CMakeFiles/ifot_mgmt.dir/failover_manager.cpp.o"
  "CMakeFiles/ifot_mgmt.dir/failover_manager.cpp.o.d"
  "CMakeFiles/ifot_mgmt.dir/flow_directory.cpp.o"
  "CMakeFiles/ifot_mgmt.dir/flow_directory.cpp.o.d"
  "CMakeFiles/ifot_mgmt.dir/paper_experiment.cpp.o"
  "CMakeFiles/ifot_mgmt.dir/paper_experiment.cpp.o.d"
  "CMakeFiles/ifot_mgmt.dir/report.cpp.o"
  "CMakeFiles/ifot_mgmt.dir/report.cpp.o.d"
  "CMakeFiles/ifot_mgmt.dir/status_board.cpp.o"
  "CMakeFiles/ifot_mgmt.dir/status_board.cpp.o.d"
  "libifot_mgmt.a"
  "libifot_mgmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_mgmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
