
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mgmt/failover_manager.cpp" "src/mgmt/CMakeFiles/ifot_mgmt.dir/failover_manager.cpp.o" "gcc" "src/mgmt/CMakeFiles/ifot_mgmt.dir/failover_manager.cpp.o.d"
  "/root/repo/src/mgmt/flow_directory.cpp" "src/mgmt/CMakeFiles/ifot_mgmt.dir/flow_directory.cpp.o" "gcc" "src/mgmt/CMakeFiles/ifot_mgmt.dir/flow_directory.cpp.o.d"
  "/root/repo/src/mgmt/paper_experiment.cpp" "src/mgmt/CMakeFiles/ifot_mgmt.dir/paper_experiment.cpp.o" "gcc" "src/mgmt/CMakeFiles/ifot_mgmt.dir/paper_experiment.cpp.o.d"
  "/root/repo/src/mgmt/report.cpp" "src/mgmt/CMakeFiles/ifot_mgmt.dir/report.cpp.o" "gcc" "src/mgmt/CMakeFiles/ifot_mgmt.dir/report.cpp.o.d"
  "/root/repo/src/mgmt/status_board.cpp" "src/mgmt/CMakeFiles/ifot_mgmt.dir/status_board.cpp.o" "gcc" "src/mgmt/CMakeFiles/ifot_mgmt.dir/status_board.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ifot_core.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/ifot_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/node/CMakeFiles/ifot_node.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ifot_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ifot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/ifot_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ifot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/recipe/CMakeFiles/ifot_recipe.dir/DependInfo.cmake"
  "/root/repo/build/src/device/CMakeFiles/ifot_device.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
