file(REMOVE_RECURSE
  "libifot_mgmt.a"
)
