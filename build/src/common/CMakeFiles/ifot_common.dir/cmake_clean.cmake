file(REMOVE_RECURSE
  "CMakeFiles/ifot_common.dir/bytes.cpp.o"
  "CMakeFiles/ifot_common.dir/bytes.cpp.o.d"
  "CMakeFiles/ifot_common.dir/log.cpp.o"
  "CMakeFiles/ifot_common.dir/log.cpp.o.d"
  "CMakeFiles/ifot_common.dir/stats.cpp.o"
  "CMakeFiles/ifot_common.dir/stats.cpp.o.d"
  "CMakeFiles/ifot_common.dir/strings.cpp.o"
  "CMakeFiles/ifot_common.dir/strings.cpp.o.d"
  "libifot_common.a"
  "libifot_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
