file(REMOVE_RECURSE
  "libifot_common.a"
)
