# Empty dependencies file for ifot_common.
# This may be replaced when dependencies are built.
