file(REMOVE_RECURSE
  "libifot_net.a"
)
