# Empty compiler generated dependencies file for ifot_net.
# This may be replaced when dependencies are built.
