file(REMOVE_RECURSE
  "CMakeFiles/ifot_net.dir/network.cpp.o"
  "CMakeFiles/ifot_net.dir/network.cpp.o.d"
  "libifot_net.a"
  "libifot_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
