# Empty compiler generated dependencies file for ifot_sim.
# This may be replaced when dependencies are built.
