file(REMOVE_RECURSE
  "CMakeFiles/ifot_sim.dir/simulator.cpp.o"
  "CMakeFiles/ifot_sim.dir/simulator.cpp.o.d"
  "libifot_sim.a"
  "libifot_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
