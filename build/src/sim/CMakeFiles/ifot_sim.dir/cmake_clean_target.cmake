file(REMOVE_RECURSE
  "libifot_sim.a"
)
