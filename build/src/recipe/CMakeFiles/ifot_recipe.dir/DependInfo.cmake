
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/recipe/parser.cpp" "src/recipe/CMakeFiles/ifot_recipe.dir/parser.cpp.o" "gcc" "src/recipe/CMakeFiles/ifot_recipe.dir/parser.cpp.o.d"
  "/root/repo/src/recipe/recipe.cpp" "src/recipe/CMakeFiles/ifot_recipe.dir/recipe.cpp.o" "gcc" "src/recipe/CMakeFiles/ifot_recipe.dir/recipe.cpp.o.d"
  "/root/repo/src/recipe/split.cpp" "src/recipe/CMakeFiles/ifot_recipe.dir/split.cpp.o" "gcc" "src/recipe/CMakeFiles/ifot_recipe.dir/split.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
