# Empty compiler generated dependencies file for ifot_recipe.
# This may be replaced when dependencies are built.
