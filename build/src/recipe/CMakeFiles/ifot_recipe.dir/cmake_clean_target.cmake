file(REMOVE_RECURSE
  "libifot_recipe.a"
)
