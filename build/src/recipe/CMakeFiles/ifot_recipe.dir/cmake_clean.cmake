file(REMOVE_RECURSE
  "CMakeFiles/ifot_recipe.dir/parser.cpp.o"
  "CMakeFiles/ifot_recipe.dir/parser.cpp.o.d"
  "CMakeFiles/ifot_recipe.dir/recipe.cpp.o"
  "CMakeFiles/ifot_recipe.dir/recipe.cpp.o.d"
  "CMakeFiles/ifot_recipe.dir/split.cpp.o"
  "CMakeFiles/ifot_recipe.dir/split.cpp.o.d"
  "libifot_recipe.a"
  "libifot_recipe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ifot_recipe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
