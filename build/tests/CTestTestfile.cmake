# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/mqtt_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/recipe_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/node_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mgmt_test[1]_include.cmake")
