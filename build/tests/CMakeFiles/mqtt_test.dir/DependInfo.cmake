
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mqtt/broker_edge_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/broker_edge_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/broker_edge_test.cpp.o.d"
  "/root/repo/tests/mqtt/broker_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/broker_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/broker_test.cpp.o.d"
  "/root/repo/tests/mqtt/client_retry_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/client_retry_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/client_retry_test.cpp.o.d"
  "/root/repo/tests/mqtt/client_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/client_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/client_test.cpp.o.d"
  "/root/repo/tests/mqtt/packet_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/packet_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/packet_test.cpp.o.d"
  "/root/repo/tests/mqtt/property_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/property_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/property_test.cpp.o.d"
  "/root/repo/tests/mqtt/session_resume_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/session_resume_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/session_resume_test.cpp.o.d"
  "/root/repo/tests/mqtt/topic_test.cpp" "tests/CMakeFiles/mqtt_test.dir/mqtt/topic_test.cpp.o" "gcc" "tests/CMakeFiles/mqtt_test.dir/mqtt/topic_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mqtt/CMakeFiles/ifot_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ifot_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
