file(REMOVE_RECURSE
  "CMakeFiles/mqtt_test.dir/mqtt/broker_edge_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/broker_edge_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/broker_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/broker_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/client_retry_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/client_retry_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/client_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/client_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/packet_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/packet_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/property_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/property_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/session_resume_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/session_resume_test.cpp.o.d"
  "CMakeFiles/mqtt_test.dir/mqtt/topic_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt/topic_test.cpp.o.d"
  "mqtt_test"
  "mqtt_test.pdb"
  "mqtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
