file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/auto_failover_test.cpp.o"
  "CMakeFiles/core_test.dir/core/auto_failover_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/discovery_test.cpp.o"
  "CMakeFiles/core_test.dir/core/discovery_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/e2e_property_test.cpp.o"
  "CMakeFiles/core_test.dir/core/e2e_property_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/failover_test.cpp.o"
  "CMakeFiles/core_test.dir/core/failover_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/learner_mix_e2e_test.cpp.o"
  "CMakeFiles/core_test.dir/core/learner_mix_e2e_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/middleware_test.cpp.o"
  "CMakeFiles/core_test.dir/core/middleware_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/multibroker_test.cpp.o"
  "CMakeFiles/core_test.dir/core/multibroker_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/qos_flow_test.cpp.o"
  "CMakeFiles/core_test.dir/core/qos_flow_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/retained_flow_test.cpp.o"
  "CMakeFiles/core_test.dir/core/retained_flow_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/shedding_test.cpp.o"
  "CMakeFiles/core_test.dir/core/shedding_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
