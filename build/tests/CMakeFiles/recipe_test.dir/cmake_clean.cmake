file(REMOVE_RECURSE
  "CMakeFiles/recipe_test.dir/recipe/parser_test.cpp.o"
  "CMakeFiles/recipe_test.dir/recipe/parser_test.cpp.o.d"
  "CMakeFiles/recipe_test.dir/recipe/property_test.cpp.o"
  "CMakeFiles/recipe_test.dir/recipe/property_test.cpp.o.d"
  "CMakeFiles/recipe_test.dir/recipe/split_test.cpp.o"
  "CMakeFiles/recipe_test.dir/recipe/split_test.cpp.o.d"
  "CMakeFiles/recipe_test.dir/recipe/tap_and_params_test.cpp.o"
  "CMakeFiles/recipe_test.dir/recipe/tap_and_params_test.cpp.o.d"
  "CMakeFiles/recipe_test.dir/recipe/validate_test.cpp.o"
  "CMakeFiles/recipe_test.dir/recipe/validate_test.cpp.o.d"
  "recipe_test"
  "recipe_test.pdb"
  "recipe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recipe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
