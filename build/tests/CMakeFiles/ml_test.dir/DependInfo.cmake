
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/anomaly_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/anomaly_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/anomaly_test.cpp.o.d"
  "/root/repo/tests/ml/classifier_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/classifier_test.cpp.o.d"
  "/root/repo/tests/ml/cluster_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/cluster_test.cpp.o.d"
  "/root/repo/tests/ml/evaluation_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/evaluation_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/evaluation_test.cpp.o.d"
  "/root/repo/tests/ml/feature_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/feature_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/feature_test.cpp.o.d"
  "/root/repo/tests/ml/mix_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/mix_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/mix_test.cpp.o.d"
  "/root/repo/tests/ml/model_io_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/model_io_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/model_io_test.cpp.o.d"
  "/root/repo/tests/ml/property_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/property_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/property_test.cpp.o.d"
  "/root/repo/tests/ml/regression_test.cpp" "tests/CMakeFiles/ml_test.dir/ml/regression_test.cpp.o" "gcc" "tests/CMakeFiles/ml_test.dir/ml/regression_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/ifot_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ifot_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
