file(REMOVE_RECURSE
  "CMakeFiles/ml_test.dir/ml/anomaly_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/anomaly_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/classifier_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/classifier_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/cluster_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/cluster_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/evaluation_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/evaluation_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/feature_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/feature_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/mix_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/mix_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/model_io_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/model_io_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/property_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/property_test.cpp.o.d"
  "CMakeFiles/ml_test.dir/ml/regression_test.cpp.o"
  "CMakeFiles/ml_test.dir/ml/regression_test.cpp.o.d"
  "ml_test"
  "ml_test.pdb"
  "ml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
