file(REMOVE_RECURSE
  "CMakeFiles/mgmt_test.dir/mgmt/experiment_test.cpp.o"
  "CMakeFiles/mgmt_test.dir/mgmt/experiment_test.cpp.o.d"
  "CMakeFiles/mgmt_test.dir/mgmt/report_csv_test.cpp.o"
  "CMakeFiles/mgmt_test.dir/mgmt/report_csv_test.cpp.o.d"
  "mgmt_test"
  "mgmt_test.pdb"
  "mgmt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgmt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
