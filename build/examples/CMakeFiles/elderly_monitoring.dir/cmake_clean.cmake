file(REMOVE_RECURSE
  "CMakeFiles/elderly_monitoring.dir/elderly_monitoring.cpp.o"
  "CMakeFiles/elderly_monitoring.dir/elderly_monitoring.cpp.o.d"
  "elderly_monitoring"
  "elderly_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elderly_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
