# Empty dependencies file for elderly_monitoring.
# This may be replaced when dependencies are built.
