file(REMOVE_RECURSE
  "CMakeFiles/home_appliance_control.dir/home_appliance_control.cpp.o"
  "CMakeFiles/home_appliance_control.dir/home_appliance_control.cpp.o.d"
  "home_appliance_control"
  "home_appliance_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_appliance_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
