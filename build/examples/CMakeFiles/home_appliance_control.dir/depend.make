# Empty dependencies file for home_appliance_control.
# This may be replaced when dependencies are built.
