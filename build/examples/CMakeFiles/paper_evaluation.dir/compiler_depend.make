# Empty compiler generated dependencies file for paper_evaluation.
# This may be replaced when dependencies are built.
