# Empty dependencies file for mobility_support.
# This may be replaced when dependencies are built.
