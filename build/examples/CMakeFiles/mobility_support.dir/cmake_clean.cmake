file(REMOVE_RECURSE
  "CMakeFiles/mobility_support.dir/mobility_support.cpp.o"
  "CMakeFiles/mobility_support.dir/mobility_support.cpp.o.d"
  "mobility_support"
  "mobility_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobility_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
