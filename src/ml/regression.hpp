// Online regression: Passive-Aggressive regression with an
// epsilon-insensitive loss (the algorithm Jubatus's `regression` service
// ships as "PA").
#pragma once

#include <unordered_map>

#include "ml/feature.hpp"

namespace ifot::ml {

/// PA-I regression: w <- w + sign(y - w.x) * tau * x with
/// tau = min(C, loss / ||x||^2), loss = max(0, |y - w.x| - epsilon).
class PaRegression {
 public:
  explicit PaRegression(double c = 1.0, double epsilon = 0.1)
      : c_(c), epsilon_(epsilon) {}

  /// Consumes one labelled example (x, target).
  void train(const FeatureVector& x, double target);

  /// Predicts the target for `x`.
  [[nodiscard]] double estimate(const FeatureVector& x) const;

  [[nodiscard]] std::uint64_t update_count() const { return updates_; }
  [[nodiscard]] const std::unordered_map<FeatureId, double>& weights() const {
    return w_;
  }
  std::unordered_map<FeatureId, double>& mutable_weights() { return w_; }
  void set_update_count(std::uint64_t n) { updates_ = n; }

 private:
  std::unordered_map<FeatureId, double> w_;
  double c_;
  double epsilon_;
  std::uint64_t updates_ = 0;
};

}  // namespace ifot::ml
