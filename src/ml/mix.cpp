#include "ml/mix.hpp"

#include <unordered_set>

namespace ifot::ml {

LinearModel mix_models(std::span<const LinearModel* const> models) {
  LinearModel out;
  if (models.empty()) return out;

  // Union of labels, in first-seen order for determinism.
  for (const LinearModel* m : models) {
    for (std::size_t i = 0; i < m->label_count(); ++i) {
      out.label_index(m->label_name(i));
    }
  }

  // Per-model mixing weights: proportional to update counts (a learner
  // that saw more data contributes more), uniform when no one trained.
  double total = 0;
  for (const LinearModel* m : models) {
    total += static_cast<double>(m->update_count());
  }
  std::vector<double> mix_w(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    mix_w[i] = total > 0
                   ? static_cast<double>(models[i]->update_count()) / total
                   : 1.0 / static_cast<double>(models.size());
  }

  std::uint64_t updates = 0;
  for (std::size_t li = 0; li < out.label_count(); ++li) {
    LabelWeights& dst = out.weights(li);
    const std::string& label = out.label_name(li);
    // Union of feature ids for this label across models.
    std::unordered_set<FeatureId> w_ids;
    std::unordered_set<FeatureId> sigma_ids;
    for (const LinearModel* m : models) {
      const std::size_t src_li = m->find_label(label);
      if (src_li == SIZE_MAX) continue;
      for (const auto& [id, _] : m->weights(src_li).w) w_ids.insert(id);
      for (const auto& [id, _] : m->weights(src_li).sigma) sigma_ids.insert(id);
    }
    for (FeatureId id : w_ids) {
      double acc = 0;
      for (std::size_t mi = 0; mi < models.size(); ++mi) {
        const std::size_t src_li = models[mi]->find_label(label);
        if (src_li == SIZE_MAX) continue;  // missing label => weight 0
        const auto& w = models[mi]->weights(src_li).w;
        if (auto it = w.find(id); it != w.end()) acc += mix_w[mi] * it->second;
      }
      dst.w[id] = acc;
    }
    for (FeatureId id : sigma_ids) {
      double acc = 0;
      for (std::size_t mi = 0; mi < models.size(); ++mi) {
        const std::size_t src_li = models[mi]->find_label(label);
        // Missing label/entry contributes the prior sigma of 1.0.
        const double sigma = src_li == SIZE_MAX
                                 ? 1.0
                                 : models[mi]->weights(src_li).sigma_of(id);
        acc += mix_w[mi] * sigma;
      }
      dst.sigma[id] = acc;
    }
  }
  for (const LinearModel* m : models) updates += m->update_count();
  out.set_update_count(updates);
  return out;
}

LinearModel mix_models(const std::vector<LinearModel>& models) {
  std::vector<const LinearModel*> ptrs;
  ptrs.reserve(models.size());
  for (const auto& m : models) ptrs.push_back(&m);
  return mix_models(std::span<const LinearModel* const>(ptrs));
}

}  // namespace ifot::ml
