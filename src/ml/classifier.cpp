#include "ml/classifier.hpp"

#include <algorithm>
#include <cmath>

namespace ifot::ml {
namespace {

/// Adds coeff * x to the label's weights.
void axpy(LabelWeights& lw, double coeff, const FeatureVector& x) {
  for (const auto& [id, v] : x.items()) lw.w[id] += coeff * v;
}

}  // namespace

Classification Classifier::classify(const FeatureVector& x) const {
  Classification out;
  const std::size_t n = model_.label_count();
  if (n == 0) return out;
  const auto scores = model_.scores(x);
  std::size_t best = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (scores[i] > scores[best]) best = i;
  }
  out.label = model_.label_name(best);
  out.score = scores[best];
  if (n >= 2) {
    double runner_up = -HUGE_VAL;
    for (std::size_t i = 0; i < n; ++i) {
      if (i != best) runner_up = std::max(runner_up, scores[i]);
    }
    out.margin = scores[best] - runner_up;
  } else {
    out.margin = scores[best];
  }
  return out;
}

Classifier::TrainContext Classifier::prepare(const FeatureVector& x,
                                             const std::string& label) {
  const std::size_t y = model_.label_index(label);
  const std::size_t n = model_.label_count();
  std::size_t rival = SIZE_MAX;
  double rival_score = -HUGE_VAL;
  const auto scores = model_.scores(x);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == y) continue;
    if (scores[i] > rival_score) {
      rival_score = scores[i];
      rival = i;
    }
  }
  const double margin =
      rival == SIZE_MAX ? HUGE_VAL : scores[y] - rival_score;
  return {y, rival, margin};
}

void Perceptron::train(const FeatureVector& x, const std::string& label) {
  const auto ctx = prepare(x, label);
  model_.count_update();
  if (ctx.rival == SIZE_MAX || ctx.margin > 0) return;
  axpy(model_.weights(ctx.y), 1.0, x);
  axpy(model_.weights(ctx.rival), -1.0, x);
}

void PassiveAggressive::train(const FeatureVector& x,
                              const std::string& label) {
  const auto ctx = prepare(x, label);
  model_.count_update();
  if (ctx.rival == SIZE_MAX) return;
  const double loss = std::max(0.0, 1.0 - ctx.margin);
  if (loss <= 0) return;
  const double norm2 = x.norm2();
  if (norm2 <= 0) return;
  // The update touches two weight vectors, hence the factor 2 in the
  // denominator (||x||^2 per touched vector).
  double tau = 0;
  switch (variant_) {
    case Variant::kPA:
      tau = loss / (2.0 * norm2);
      break;
    case Variant::kPA1:
      tau = std::min(c_, loss / (2.0 * norm2));
      break;
    case Variant::kPA2:
      tau = loss / (2.0 * norm2 + 1.0 / (2.0 * c_));
      break;
  }
  axpy(model_.weights(ctx.y), tau, x);
  axpy(model_.weights(ctx.rival), -tau, x);
}

void ConfidenceWeighted::train(const FeatureVector& x,
                               const std::string& label) {
  const auto ctx = prepare(x, label);
  model_.count_update();
  if (ctx.rival == SIZE_MAX) return;
  LabelWeights& wy = model_.weights(ctx.y);
  LabelWeights& wr = model_.weights(ctx.rival);
  const double m = ctx.margin;
  const double v = wy.variance(x) + wr.variance(x);
  if (v <= 0) return;
  // Closed-form CW-diag step (Dredze et al. 2008, eq. 8):
  // alpha = max(0, (-m*phi^2 + sqrt(m^2 phi^4/4 + v phi^2)) / (v phi^2))
  // simplified via gamma below.
  const double gamma =
      (-(1.0 + 2.0 * phi_ * m) +
       std::sqrt((1.0 + 2.0 * phi_ * m) * (1.0 + 2.0 * phi_ * m) -
                 8.0 * phi_ * (m - phi_ * v))) /
      (4.0 * phi_ * v);
  const double alpha = std::max(0.0, gamma);
  if (alpha <= 0) return;
  for (const auto& [id, xv] : x.items()) {
    const double sy = wy.sigma_of(id);
    const double sr = wr.sigma_of(id);
    wy.w[id] += alpha * sy * xv;
    wr.w[id] -= alpha * sr * xv;
    // Variance shrink: sigma^-1 += 2 alpha phi x^2.
    wy.sigma[id] = 1.0 / (1.0 / sy + 2.0 * alpha * phi_ * xv * xv);
    wr.sigma[id] = 1.0 / (1.0 / sr + 2.0 * alpha * phi_ * xv * xv);
  }
}

void Arow::train(const FeatureVector& x, const std::string& label) {
  const auto ctx = prepare(x, label);
  model_.count_update();
  if (ctx.rival == SIZE_MAX) return;
  const double loss = std::max(0.0, 1.0 - ctx.margin);
  if (loss <= 0) return;
  LabelWeights& wy = model_.weights(ctx.y);
  LabelWeights& wr = model_.weights(ctx.rival);
  const double v = wy.variance(x) + wr.variance(x);
  const double beta = 1.0 / (v + r_);
  const double alpha = loss * beta;
  for (const auto& [id, xv] : x.items()) {
    const double sy = wy.sigma_of(id);
    const double sr = wr.sigma_of(id);
    wy.w[id] += alpha * sy * xv;
    wr.w[id] -= alpha * sr * xv;
    wy.sigma[id] = sy - beta * sy * sy * xv * xv;
    wr.sigma[id] = sr - beta * sr * sr * xv * xv;
  }
}

std::unique_ptr<Classifier> make_classifier(const std::string& algorithm) {
  if (algorithm == "perceptron") return std::make_unique<Perceptron>();
  if (algorithm == "pa") {
    return std::make_unique<PassiveAggressive>(PassiveAggressive::Variant::kPA);
  }
  if (algorithm == "pa1") {
    return std::make_unique<PassiveAggressive>(PassiveAggressive::Variant::kPA1);
  }
  if (algorithm == "pa2") {
    return std::make_unique<PassiveAggressive>(PassiveAggressive::Variant::kPA2);
  }
  if (algorithm == "cw") return std::make_unique<ConfidenceWeighted>();
  if (algorithm == "arow") return std::make_unique<Arow>();
  return nullptr;
}

}  // namespace ifot::ml
