#include "ml/linear_model.hpp"

#include <cassert>
#include <cmath>

namespace ifot::ml {

std::size_t LinearModel::label_index(const std::string& label) {
  auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  const std::size_t idx = labels_.size();
  labels_.push_back(label);
  label_index_.emplace(label, idx);
  weights_.emplace_back();
  return idx;
}

std::size_t LinearModel::find_label(const std::string& label) const {
  auto it = label_index_.find(label);
  return it == label_index_.end() ? SIZE_MAX : it->second;
}

const std::string& LinearModel::label_name(std::size_t index) const {
  assert(index < labels_.size());
  return labels_[index];
}

std::vector<double> LinearModel::scores(const FeatureVector& x) const {
  std::vector<double> out(labels_.size());
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    out[i] = weights_[i].score(x);
  }
  return out;
}

std::size_t LinearModel::argmax(const FeatureVector& x) const {
  if (labels_.empty()) return SIZE_MAX;
  std::size_t best = 0;
  double best_score = weights_[0].score(x);
  for (std::size_t i = 1; i < weights_.size(); ++i) {
    const double s = weights_[i].score(x);
    if (s > best_score) {
      best_score = s;
      best = i;
    }
  }
  return best;
}

bool operator==(const LinearModel& a, const LinearModel& b) {
  if (a.labels_ != b.labels_) return false;
  if (a.update_count_ != b.update_count_) return false;
  if (a.weights_.size() != b.weights_.size()) return false;
  for (std::size_t i = 0; i < a.weights_.size(); ++i) {
    if (a.weights_[i].w != b.weights_[i].w) return false;
    if (a.weights_[i].sigma != b.weights_[i].sigma) return false;
  }
  return true;
}

}  // namespace ifot::ml
