#include "ml/feature.hpp"

#include <algorithm>
#include <cassert>

namespace ifot::ml {

void FeatureVector::set(FeatureId id, double value) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const auto& a, FeatureId b) { return a.first < b; });
  if (it != items_.end() && it->first == id) {
    it->second = value;
  } else {
    items_.insert(it, {id, value});
  }
}

void FeatureVector::add(FeatureId id, double value) {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const auto& a, FeatureId b) { return a.first < b; });
  if (it != items_.end() && it->first == id) {
    it->second += value;
  } else {
    items_.insert(it, {id, value});
  }
}

double FeatureVector::get(FeatureId id) const {
  auto it = std::lower_bound(
      items_.begin(), items_.end(), id,
      [](const auto& a, FeatureId b) { return a.first < b; });
  return (it != items_.end() && it->first == id) ? it->second : 0.0;
}

double FeatureVector::norm2() const {
  double acc = 0;
  for (const auto& [_, v] : items_) acc += v * v;
  return acc;
}

void FeatureVector::scale(double s) {
  for (auto& [_, v] : items_) v *= s;
}

FeatureId FeatureNames::id_of(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  const auto id = static_cast<FeatureId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

FeatureId FeatureNames::find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kMissing : it->second;
}

const std::string& FeatureNames::name_of(FeatureId id) const {
  assert(id < names_.size());
  return names_[id];
}

}  // namespace ifot::ml
