// Binary serialization of models, used by the middleware to ship trained
// models from the Learning class to the Judging class over the flow
// distribution layer (paper Fig. 9: the Train module publishes its model
// to the Predict module).
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "ml/linear_model.hpp"
#include "ml/regression.hpp"

namespace ifot::ml {

/// Versioned codec for model state.
class ModelCodec {
 public:
  /// Encodes a LinearModel (labels, weights, sigmas, update count).
  static Bytes encode(const LinearModel& model);
  /// Decodes; fails on version mismatch or truncation.
  static Result<LinearModel> decode_linear(BytesView data);

  /// Encodes a PA-regression weight vector.
  static Bytes encode(const PaRegression& model);
  static Result<PaRegression> decode_regression(BytesView data);
};

}  // namespace ifot::ml
