#include "ml/evaluation.hpp"

#include <algorithm>
#include <cstdio>

namespace ifot::ml {

std::size_t ConfusionMatrix::index_of(const std::string& label) const {
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) return i;
  }
  return SIZE_MAX;
}

std::size_t ConfusionMatrix::intern(const std::string& label) {
  const std::size_t existing = index_of(label);
  if (existing != SIZE_MAX) return existing;
  const std::size_t n = labels_.size();
  labels_.push_back(label);
  // Grow the row-major matrix from n x n to (n+1) x (n+1) in place.
  std::vector<std::uint64_t> grown((n + 1) * (n + 1), 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      grown[r * (n + 1) + c] = cells_[r * n + c];
    }
  }
  cells_ = std::move(grown);
  return n;
}

void ConfusionMatrix::record(const std::string& truth,
                             const std::string& predicted) {
  const std::size_t t = intern(truth);
  const std::size_t p = intern(predicted);
  cells_[t * labels_.size() + p] += 1;
  ++total_;
  if (t == p) ++correct_;
}

double ConfusionMatrix::accuracy() const {
  return total_ == 0 ? 0.0
                     : static_cast<double>(correct_) /
                           static_cast<double>(total_);
}

std::uint64_t ConfusionMatrix::count(const std::string& truth,
                                     const std::string& predicted) const {
  const std::size_t t = index_of(truth);
  const std::size_t p = index_of(predicted);
  if (t == SIZE_MAX || p == SIZE_MAX) return 0;
  return cells_[t * labels_.size() + p];
}

double ConfusionMatrix::precision(const std::string& label) const {
  const std::size_t p = index_of(label);
  if (p == SIZE_MAX) return 0;
  std::uint64_t predicted = 0;
  for (std::size_t t = 0; t < labels_.size(); ++t) {
    predicted += cells_[t * labels_.size() + p];
  }
  if (predicted == 0) return 0;
  return static_cast<double>(cells_[p * labels_.size() + p]) /
         static_cast<double>(predicted);
}

double ConfusionMatrix::recall(const std::string& label) const {
  const std::size_t t = index_of(label);
  if (t == SIZE_MAX) return 0;
  std::uint64_t observed = 0;
  for (std::size_t p = 0; p < labels_.size(); ++p) {
    observed += cells_[t * labels_.size() + p];
  }
  if (observed == 0) return 0;
  return static_cast<double>(cells_[t * labels_.size() + t]) /
         static_cast<double>(observed);
}

double ConfusionMatrix::macro_recall() const {
  if (labels_.empty()) return 0;
  double acc = 0;
  std::size_t counted = 0;
  for (const auto& label : labels_) {
    // Only labels that were actually observed as truth contribute.
    const std::size_t t = index_of(label);
    std::uint64_t observed = 0;
    for (std::size_t p = 0; p < labels_.size(); ++p) {
      observed += cells_[t * labels_.size() + p];
    }
    if (observed == 0) continue;
    acc += recall(label);
    ++counted;
  }
  return counted == 0 ? 0 : acc / static_cast<double>(counted);
}

std::string ConfusionMatrix::to_string() const {
  std::string out = "truth \\ predicted";
  for (const auto& l : labels_) out += "\t" + l;
  out += "\n";
  for (std::size_t t = 0; t < labels_.size(); ++t) {
    out += labels_[t];
    for (std::size_t p = 0; p < labels_.size(); ++p) {
      char buf[24];
      std::snprintf(buf, sizeof(buf), "\t%llu",
                    static_cast<unsigned long long>(
                        cells_[t * labels_.size() + p]));
      out += buf;
    }
    out += "\n";
  }
  return out;
}

EvaluationResult evaluate(
    const Classifier& clf,
    const std::vector<std::pair<FeatureVector, std::string>>& test_set) {
  EvaluationResult result;
  for (const auto& [fv, truth] : test_set) {
    result.matrix.record(truth, clf.classify(fv).label);
  }
  result.accuracy = result.matrix.accuracy();
  return result;
}

}  // namespace ifot::ml
