// Shared state of multiclass linear models: per-label weight vectors and
// (for confidence-weighted algorithms) per-label diagonal covariances.
// This is the unit that Jubatus-style MIX averages across distributed
// learners.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ml/feature.hpp"

namespace ifot::ml {

/// Sparse weight (and covariance) storage for one label.
struct LabelWeights {
  std::unordered_map<FeatureId, double> w;
  /// Diagonal covariance; entries default to 1.0 when absent. Only used
  /// by confidence-weighted algorithms (CW, AROW).
  std::unordered_map<FeatureId, double> sigma;

  [[nodiscard]] double score(const FeatureVector& x) const {
    double s = 0;
    for (const auto& [id, v] : x.items()) {
      if (auto it = w.find(id); it != w.end()) s += it->second * v;
    }
    return s;
  }

  [[nodiscard]] double variance(const FeatureVector& x) const {
    double s = 0;
    for (const auto& [id, v] : x.items()) {
      auto it = sigma.find(id);
      const double sig = it == sigma.end() ? 1.0 : it->second;
      s += sig * v * v;
    }
    return s;
  }

  [[nodiscard]] double sigma_of(FeatureId id) const {
    auto it = sigma.find(id);
    return it == sigma.end() ? 1.0 : it->second;
  }
};

/// Multiclass linear model: label registry + per-label weights.
class LinearModel {
 public:
  /// Returns the index of `label`, registering it on first use.
  std::size_t label_index(const std::string& label);
  /// Returns the index if known, SIZE_MAX otherwise.
  [[nodiscard]] std::size_t find_label(const std::string& label) const;
  [[nodiscard]] const std::string& label_name(std::size_t index) const;
  [[nodiscard]] std::size_t label_count() const { return labels_.size(); }

  [[nodiscard]] LabelWeights& weights(std::size_t index) {
    return weights_[index];
  }
  [[nodiscard]] const LabelWeights& weights(std::size_t index) const {
    return weights_[index];
  }

  /// Scores every label; result parallel to label indices.
  [[nodiscard]] std::vector<double> scores(const FeatureVector& x) const;

  /// Index of the highest-scoring label, SIZE_MAX when no labels exist.
  [[nodiscard]] std::size_t argmax(const FeatureVector& x) const;

  /// Number of updates applied (used to weight MIX averaging).
  [[nodiscard]] std::uint64_t update_count() const { return update_count_; }
  void count_update() { ++update_count_; }
  void set_update_count(std::uint64_t n) { update_count_ = n; }

  friend bool operator==(const LinearModel& a, const LinearModel& b);

 private:
  friend class ModelCodec;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, std::size_t> label_index_;
  std::vector<LabelWeights> weights_;
  std::uint64_t update_count_ = 0;
};

}  // namespace ifot::ml
