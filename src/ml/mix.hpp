// Jubatus-style MIX: periodic model averaging across distributed online
// learners. Each learner trains on its local shard of the stream; MIX
// gathers the models, computes an update-count-weighted average of the
// weight vectors, and pushes the averaged model back to every learner.
// This is the mechanism that makes the middleware's distributed Learning
// class converge to a shared model (paper §IV-C.2, Managing class).
#pragma once

#include <span>
#include <vector>

#include "ml/linear_model.hpp"

namespace ifot::ml {

/// Computes the weighted average of `models` (weights = per-model update
/// counts since the models were last reset; uniform when all are zero).
/// Labels are unioned across models. sigma (confidence) entries are
/// averaged the same way, missing entries counting as the prior 1.0.
[[nodiscard]] LinearModel mix_models(
    std::span<const LinearModel* const> models);

/// Convenience overload for a vector of models.
[[nodiscard]] LinearModel mix_models(const std::vector<LinearModel>& models);

}  // namespace ifot::ml
