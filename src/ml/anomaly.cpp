#include "ml/anomaly.hpp"

#include <algorithm>
#include <cmath>

namespace ifot::ml {

double ZScoreDetector::add(const FeatureVector& x) {
  const double s = score(x);
  ++count_;
  for (const auto& [id, v] : x.items()) {
    Stat& st = stats_[id];
    ++st.n;
    const double delta = v - st.mean;
    st.mean += delta / static_cast<double>(st.n);
    st.m2 += delta * (v - st.mean);
  }
  return s;
}

double ZScoreDetector::score(const FeatureVector& x) const {
  if (count_ < min_samples_) return 0.0;
  double worst = 0;
  for (const auto& [id, v] : x.items()) {
    auto it = stats_.find(id);
    if (it == stats_.end() || it->second.n < 2) continue;
    const double var =
        it->second.m2 / static_cast<double>(it->second.n - 1);
    const double sd = std::sqrt(std::max(var, 1e-12));
    worst = std::max(worst, std::abs(v - it->second.mean) / sd);
  }
  return worst;
}

double LofDetector::distance(const FeatureVector& a, const FeatureVector& b) {
  // Euclidean distance over the union of sparse supports.
  double acc = 0;
  const auto& ia = a.items();
  const auto& ib = b.items();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ia.size() || j < ib.size()) {
    if (j >= ib.size() || (i < ia.size() && ia[i].first < ib[j].first)) {
      acc += ia[i].second * ia[i].second;
      ++i;
    } else if (i >= ia.size() || ib[j].first < ia[i].first) {
      acc += ib[j].second * ib[j].second;
      ++j;
    } else {
      const double d = ia[i].second - ib[j].second;
      acc += d * d;
      ++i;
      ++j;
    }
  }
  return std::sqrt(acc);
}

std::vector<std::pair<double, std::size_t>> LofDetector::neighbours(
    const FeatureVector& x, std::size_t skip) const {
  std::vector<std::pair<double, std::size_t>> out;
  out.reserve(points_.size());
  for (std::size_t i = 0; i < points_.size(); ++i) {
    if (i == skip) continue;
    out.emplace_back(distance(x, points_[i]), i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double LofDetector::kdist_of(std::size_t i) const {
  const auto nn = neighbours(points_[i], i);
  if (nn.empty()) return 0;
  const std::size_t kth = std::min(k_, nn.size()) - 1;
  return nn[kth].first;
}

double LofDetector::lrd_of(std::size_t i) const {
  const auto nn = neighbours(points_[i], i);
  if (nn.empty()) return 0;
  const std::size_t kk = std::min(k_, nn.size());
  double reach_sum = 0;
  for (std::size_t j = 0; j < kk; ++j) {
    const double reach = std::max(nn[j].first, kdist_of(nn[j].second));
    reach_sum += reach;
  }
  if (reach_sum <= 1e-12) return 1e12;  // coincident points: huge density
  return static_cast<double>(kk) / reach_sum;
}

double LofDetector::score(const FeatureVector& x) const {
  if (points_.size() <= k_) return 1.0;
  const auto nn = neighbours(x, SIZE_MAX);
  const std::size_t kk = std::min(k_, nn.size());
  double reach_sum = 0;
  double lrd_sum = 0;
  for (std::size_t j = 0; j < kk; ++j) {
    reach_sum += std::max(nn[j].first, kdist_of(nn[j].second));
    lrd_sum += lrd_of(nn[j].second);
  }
  if (reach_sum <= 1e-12) return 1.0;  // sits on top of its neighbours
  const double lrd_x = static_cast<double>(kk) / reach_sum;
  const double avg_lrd = lrd_sum / static_cast<double>(kk);
  if (lrd_x <= 1e-12) return 1e12;
  return avg_lrd / lrd_x;
}

double LofDetector::add(const FeatureVector& x) {
  const double s = score(x);
  points_.push_back(x);
  if (points_.size() > window_) points_.pop_front();
  return s;
}

}  // namespace ifot::ml
