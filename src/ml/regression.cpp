#include "ml/regression.hpp"

#include <algorithm>
#include <cmath>

namespace ifot::ml {

void PaRegression::train(const FeatureVector& x, double target) {
  ++updates_;
  const double predicted = estimate(x);
  const double err = target - predicted;
  const double loss = std::abs(err) - epsilon_;
  if (loss <= 0) return;
  const double norm2 = x.norm2();
  if (norm2 <= 0) return;
  const double tau = std::min(c_, loss / norm2);
  const double step = err > 0 ? tau : -tau;
  for (const auto& [id, v] : x.items()) w_[id] += step * v;
}

double PaRegression::estimate(const FeatureVector& x) const {
  double s = 0;
  for (const auto& [id, v] : x.items()) {
    if (auto it = w_.find(id); it != w_.end()) s += it->second * v;
  }
  return s;
}

}  // namespace ifot::ml
