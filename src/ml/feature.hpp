// Sparse feature vectors for online learning (Jubatus-style datum ->
// feature-vector conversion, reduced to the numeric case the middleware
// needs).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ifot::ml {

/// Feature index: interned id of a feature name.
using FeatureId = std::uint32_t;

/// A sparse feature vector: sorted unique (id, value) pairs.
class FeatureVector {
 public:
  FeatureVector() = default;

  /// Sets feature `id` to `value` (replaces existing).
  void set(FeatureId id, double value);
  /// Adds `value` to feature `id` (inserting if absent).
  void add(FeatureId id, double value);
  [[nodiscard]] double get(FeatureId id) const;

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  void clear() { items_.clear(); }

  /// Squared L2 norm.
  [[nodiscard]] double norm2() const;
  /// Scales all values in place.
  void scale(double s);

  [[nodiscard]] const std::vector<std::pair<FeatureId, double>>& items()
      const {
    return items_;
  }

  friend bool operator==(const FeatureVector&, const FeatureVector&) = default;

 private:
  // Kept sorted by id; vectors here are tiny (sensor dimensions).
  std::vector<std::pair<FeatureId, double>> items_;
};

/// Interns feature names to dense FeatureIds; shared by all models of one
/// application so ids agree across distributed learners (required for MIX).
class FeatureNames {
 public:
  /// Returns the id for `name`, interning it on first use.
  FeatureId id_of(std::string_view name);
  /// Returns the id if interned, or kMissing.
  [[nodiscard]] FeatureId find(std::string_view name) const;
  [[nodiscard]] const std::string& name_of(FeatureId id) const;
  [[nodiscard]] std::size_t size() const { return names_.size(); }

  static constexpr FeatureId kMissing = 0xFFFFFFFFu;

 private:
  std::unordered_map<std::string, FeatureId> index_;
  std::vector<std::string> names_;
};

/// Convenience builder: fv.set("temp", 22.5) with a shared name table.
class FeatureBuilder {
 public:
  explicit FeatureBuilder(FeatureNames& names) : names_(names) {}

  FeatureBuilder& set(std::string_view name, double value) {
    fv_.set(names_.id_of(name), value);
    return *this;
  }

  [[nodiscard]] FeatureVector build() { return std::move(fv_); }

 private:
  FeatureNames& names_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  FeatureVector fv_;
};

}  // namespace ifot::ml
