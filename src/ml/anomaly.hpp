// Streaming anomaly detection for sensor flows: the middleware's elderly-
// monitoring scenario (paper §III-A.1) detects anomalies such as falls in
// live sensor streams.
//
// Two detectors:
//  * ZScoreDetector — per-feature running mean/variance (Welford); the
//    anomaly score is the maximum absolute z-score across features.
//  * LofDetector — Local Outlier Factor over a bounded window of recent
//    points (the algorithm behind Jubatus's `anomaly` service, reduced to
//    an exact in-window computation).
#pragma once

#include <cstddef>
#include <deque>
#include <unordered_map>
#include <vector>

#include "ml/feature.hpp"

namespace ifot::ml {

/// Per-feature streaming z-score detector.
class ZScoreDetector {
 public:
  /// `min_samples` observations are required before scores are reported
  /// (score is 0 until then).
  explicit ZScoreDetector(std::size_t min_samples = 10)
      : min_samples_(min_samples) {}

  /// Adds an observation and returns its anomaly score (max |z|).
  double add(const FeatureVector& x);

  /// Scores without updating the statistics.
  [[nodiscard]] double score(const FeatureVector& x) const;

  [[nodiscard]] std::uint64_t count() const { return count_; }

 private:
  struct Stat {
    std::uint64_t n = 0;
    double mean = 0;
    double m2 = 0;
  };
  std::unordered_map<FeatureId, Stat> stats_;
  std::size_t min_samples_;
  std::uint64_t count_ = 0;
};

/// Exact LOF over a sliding window of recent points.
class LofDetector {
 public:
  /// `k`: neighbourhood size; `window`: number of retained points.
  explicit LofDetector(std::size_t k = 10, std::size_t window = 256)
      : k_(k), window_(window) {}

  /// Adds a point to the window and returns its LOF score (1.0 ~ inlier,
  /// >> 1 ~ outlier). Returns 1.0 until the window holds k+1 points.
  double add(const FeatureVector& x);

  /// Scores a query point against the current window without inserting.
  [[nodiscard]] double score(const FeatureVector& x) const;

  [[nodiscard]] std::size_t size() const { return points_.size(); }

 private:
  [[nodiscard]] static double distance(const FeatureVector& a,
                                       const FeatureVector& b);
  /// Distances from `x` to all points except index `skip` (SIZE_MAX =
  /// none), sorted ascending.
  [[nodiscard]] std::vector<std::pair<double, std::size_t>> neighbours(
      const FeatureVector& x, std::size_t skip) const;
  /// k-distance and local reachability density of window point `i`.
  [[nodiscard]] double lrd_of(std::size_t i) const;
  [[nodiscard]] double kdist_of(std::size_t i) const;

  std::size_t k_;
  std::size_t window_;
  std::deque<FeatureVector> points_;
};

}  // namespace ifot::ml
