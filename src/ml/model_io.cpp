#include "ml/model_io.hpp"

#include <algorithm>

#include "common/bytes.hpp"

namespace ifot::ml {
namespace {

constexpr std::uint8_t kLinearVersion = 1;
constexpr std::uint8_t kRegressionVersion = 1;

/// Writes a sparse map sorted by id so encoding is deterministic.
void write_map(BinaryWriter& w,
               const std::unordered_map<FeatureId, double>& m) {
  std::vector<std::pair<FeatureId, double>> sorted(m.begin(), m.end());
  std::sort(sorted.begin(), sorted.end());
  w.varint(sorted.size());
  for (const auto& [id, v] : sorted) {
    w.u32(id);
    w.f64(v);
  }
}

Result<std::unordered_map<FeatureId, double>> read_map(BinaryReader& r) {
  auto n = r.varint();
  if (!n) return n.error();
  std::unordered_map<FeatureId, double> out;
  out.reserve(static_cast<std::size_t>(n.value()));
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto id = r.u32();
    if (!id) return id.error();
    auto v = r.f64();
    if (!v) return v.error();
    out[id.value()] = v.value();
  }
  return out;
}

}  // namespace

Bytes ModelCodec::encode(const LinearModel& model) {
  Bytes out;
  BinaryWriter w(out);
  w.u8(kLinearVersion);
  w.u64(model.update_count());
  w.varint(model.label_count());
  for (std::size_t i = 0; i < model.label_count(); ++i) {
    w.str(model.label_name(i));
    write_map(w, model.weights(i).w);
    write_map(w, model.weights(i).sigma);
  }
  return out;
}

Result<LinearModel> ModelCodec::decode_linear(BytesView data) {
  BinaryReader r(data);
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kLinearVersion) {
    return Err(Errc::kUnsupported, "unknown linear model version");
  }
  auto updates = r.u64();
  if (!updates) return updates.error();
  auto n_labels = r.varint();
  if (!n_labels) return n_labels.error();
  LinearModel model;
  for (std::uint64_t i = 0; i < n_labels.value(); ++i) {
    auto label = r.str();
    if (!label) return label.error();
    const std::size_t idx = model.label_index(label.value());
    auto w_map = read_map(r);
    if (!w_map) return w_map.error();
    auto sigma_map = read_map(r);
    if (!sigma_map) return sigma_map.error();
    model.weights(idx).w = std::move(w_map).value();
    model.weights(idx).sigma = std::move(sigma_map).value();
  }
  if (!r.at_end()) return Err(Errc::kParse, "trailing bytes in model");
  model.set_update_count(updates.value());
  return model;
}

Bytes ModelCodec::encode(const PaRegression& model) {
  Bytes out;
  BinaryWriter w(out);
  w.u8(kRegressionVersion);
  w.u64(model.update_count());
  write_map(w, model.weights());
  return out;
}

Result<PaRegression> ModelCodec::decode_regression(BytesView data) {
  BinaryReader r(data);
  auto version = r.u8();
  if (!version) return version.error();
  if (version.value() != kRegressionVersion) {
    return Err(Errc::kUnsupported, "unknown regression model version");
  }
  auto updates = r.u64();
  if (!updates) return updates.error();
  auto w_map = read_map(r);
  if (!w_map) return w_map.error();
  if (!r.at_end()) return Err(Errc::kParse, "trailing bytes in model");
  PaRegression model;
  model.mutable_weights() = std::move(w_map).value();
  model.set_update_count(updates.value());
  return model;
}

}  // namespace ifot::ml
