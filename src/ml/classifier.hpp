// Online multiclass linear classifiers — the algorithm families shipped by
// Jubatus (the paper's flow-analysis engine): Perceptron, Passive-
// Aggressive (PA, PA-I, PA-II), Confidence-Weighted (CW, diagonal) and
// AROW (diagonal).
//
// All operate on a shared LinearModel so distributed replicas can be MIXed
// (ml/mix.hpp). Updates follow the standard max-score-rival multiclass
// reduction: for a labelled example (x, y), let r = argmax_{c != y} s_c(x);
// the margin is m = s_y(x) - s_r(x) and each algorithm decides its step
// from m (and, for CW/AROW, the per-coordinate confidences).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/linear_model.hpp"

namespace ifot::ml {

/// Result of classifying one example.
struct Classification {
  std::string label;      ///< best label ("" when the model is empty)
  double score = 0;       ///< best score
  double margin = 0;      ///< best minus runner-up score
};

/// Common interface of all online classifiers.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Consumes one labelled example.
  virtual void train(const FeatureVector& x, const std::string& label) = 0;

  /// Predicts the label of `x`.
  [[nodiscard]] Classification classify(const FeatureVector& x) const;

  [[nodiscard]] LinearModel& model() { return model_; }
  [[nodiscard]] const LinearModel& model() const { return model_; }
  /// Replaces the model (MIX pushes averaged weights back this way).
  void set_model(LinearModel m) { model_ = std::move(m); }

  /// Algorithm name (for logs and model files).
  [[nodiscard]] virtual const char* name() const = 0;

 protected:
  /// Returns (y_index, rival_index, margin); registers the label. The
  /// rival is the highest-scoring wrong label, or SIZE_MAX when y is the
  /// only label so far.
  struct TrainContext {
    std::size_t y;
    std::size_t rival;
    double margin;
  };
  TrainContext prepare(const FeatureVector& x, const std::string& label);

  LinearModel model_;
};

/// Multiclass perceptron: on margin <= 0, w_y += x, w_rival -= x.
class Perceptron final : public Classifier {
 public:
  void train(const FeatureVector& x, const std::string& label) override;
  [[nodiscard]] const char* name() const override { return "perceptron"; }
};

/// Passive-Aggressive family. Variant selects the step clipping:
/// PA (unbounded), PA-I (min(C, .)), PA-II (soft regularized).
class PassiveAggressive final : public Classifier {
 public:
  enum class Variant { kPA, kPA1, kPA2 };

  explicit PassiveAggressive(Variant variant = Variant::kPA1, double c = 1.0)
      : variant_(variant), c_(c) {}

  void train(const FeatureVector& x, const std::string& label) override;
  [[nodiscard]] const char* name() const override {
    switch (variant_) {
      case Variant::kPA: return "pa";
      case Variant::kPA1: return "pa1";
      case Variant::kPA2: return "pa2";
    }
    return "pa";
  }

 private:
  Variant variant_;
  double c_;
};

/// Diagonal Confidence-Weighted learning (Dredze et al.), multiclass
/// max-score reduction; phi is the confidence parameter (Phi^-1(eta)).
class ConfidenceWeighted final : public Classifier {
 public:
  explicit ConfidenceWeighted(double phi = 1.0) : phi_(phi) {}

  void train(const FeatureVector& x, const std::string& label) override;
  [[nodiscard]] const char* name() const override { return "cw"; }

 private:
  double phi_;
};

/// AROW (Crammer et al., diagonal): robust to label noise; r is the
/// regularization parameter.
class Arow final : public Classifier {
 public:
  explicit Arow(double r = 0.1) : r_(r) {}

  void train(const FeatureVector& x, const std::string& label) override;
  [[nodiscard]] const char* name() const override { return "arow"; }

 private:
  double r_;
};

/// Factory by algorithm name ("perceptron", "pa", "pa1", "pa2", "cw",
/// "arow"); returns nullptr for unknown names.
std::unique_ptr<Classifier> make_classifier(const std::string& algorithm);

}  // namespace ifot::ml
