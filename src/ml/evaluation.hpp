// Online evaluation utilities for the flow-analysis function: a streaming
// confusion matrix with accuracy / per-class precision / recall, used to
// judge Learning-class output quality in benches and applications.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace ifot::ml {

/// Streaming multiclass confusion matrix. Labels are registered on first
/// sight; O(labels^2) storage, suitable for the small label sets of IoT
/// context recognition.
class ConfusionMatrix {
 public:
  /// Records one (truth, predicted) observation.
  void record(const std::string& truth, const std::string& predicted);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Fraction of observations where predicted == truth; 0 when empty.
  [[nodiscard]] double accuracy() const;
  /// Correct predictions for `label` / all predictions of `label`;
  /// 0 when the label was never predicted.
  [[nodiscard]] double precision(const std::string& label) const;
  /// Correct predictions for `label` / all observations of `label`;
  /// 0 when the label was never observed.
  [[nodiscard]] double recall(const std::string& label) const;
  /// Unweighted mean of per-class recall (balanced accuracy).
  [[nodiscard]] double macro_recall() const;

  [[nodiscard]] std::vector<std::string> labels() const { return labels_; }
  /// Count of observations with the given truth and prediction.
  [[nodiscard]] std::uint64_t count(const std::string& truth,
                                    const std::string& predicted) const;

  /// Renders the matrix (rows = truth, columns = predicted).
  [[nodiscard]] std::string to_string() const;

 private:
  [[nodiscard]] std::size_t index_of(const std::string& label) const;
  std::size_t intern(const std::string& label);

  std::vector<std::string> labels_;
  std::vector<std::uint64_t> cells_;  // labels x labels, row-major (truth)
  std::uint64_t total_ = 0;
  std::uint64_t correct_ = 0;
};

/// Convenience: evaluates a classifier over a labelled test set.
struct EvaluationResult {
  ConfusionMatrix matrix;
  double accuracy = 0;
};
EvaluationResult evaluate(
    const Classifier& clf,
    const std::vector<std::pair<FeatureVector, std::string>>& test_set);

}  // namespace ifot::ml
