#include "ml/cluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ifot::ml {

double SequentialKMeans::distance2(const FeatureVector& a,
                                   const FeatureVector& b) {
  double acc = 0;
  const auto& ia = a.items();
  const auto& ib = b.items();
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < ia.size() || j < ib.size()) {
    if (j >= ib.size() || (i < ia.size() && ia[i].first < ib[j].first)) {
      acc += ia[i].second * ia[i].second;
      ++i;
    } else if (i >= ia.size() || ib[j].first < ia[i].first) {
      acc += ib[j].second * ib[j].second;
      ++j;
    } else {
      const double d = ia[i].second - ib[j].second;
      acc += d * d;
      ++i;
      ++j;
    }
  }
  return acc;
}

std::size_t SequentialKMeans::assign(const FeatureVector& x) const {
  if (centroids_.empty()) return SIZE_MAX;
  std::size_t best = 0;
  double best_d = distance2(x, centroids_[0]);
  for (std::size_t i = 1; i < centroids_.size(); ++i) {
    const double d = distance2(x, centroids_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

double SequentialKMeans::nearest_distance2(const FeatureVector& x) const {
  const std::size_t i = assign(x);
  if (i == SIZE_MAX) return std::numeric_limits<double>::infinity();
  return distance2(x, centroids_[i]);
}

std::size_t SequentialKMeans::add(const FeatureVector& x) {
  if (centroids_.size() < k_) {
    // Seed with the first k distinct points.
    for (std::size_t i = 0; i < centroids_.size(); ++i) {
      if (centroids_[i] == x) {
        ++counts_[i];
        return i;
      }
    }
    centroids_.push_back(x);
    counts_.push_back(1);
    return centroids_.size() - 1;
  }
  const std::size_t c = assign(x);
  ++counts_[c];
  const double eta = 1.0 / static_cast<double>(counts_[c]);
  // centroid += eta * (x - centroid), over the union of supports.
  FeatureVector& cent = centroids_[c];
  // Collect unique ids present in either vector first (cent mutates
  // below, and a duplicate id would apply the update twice).
  std::vector<FeatureId> ids;
  ids.reserve(cent.items().size() + x.items().size());
  for (const auto& [id, _] : cent.items()) ids.push_back(id);
  for (const auto& [id, _] : x.items()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (FeatureId id : ids) {
    const double cv = cent.get(id);
    const double xv = x.get(id);
    cent.set(id, cv + eta * (xv - cv));
  }
  return c;
}

}  // namespace ifot::ml
