// Online clustering: sequential k-means (MacQueen) — the lightweight
// stream-clustering capability the paper lists among supported analyses
// ("complicated tasks such as anomaly detection and clustering").
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "ml/feature.hpp"

namespace ifot::ml {

/// Sequential k-means over a stream of sparse points.
///
/// The first k distinct points seed the centroids; afterwards each point
/// moves its nearest centroid by 1/n_c (per-cluster counts), the MacQueen
/// update. Centroids are kept dense over the feature ids seen so far.
class SequentialKMeans {
 public:
  explicit SequentialKMeans(std::size_t k) : k_(k) {}

  /// Assigns `x` to a cluster, updates that centroid, and returns the
  /// cluster index.
  std::size_t add(const FeatureVector& x);

  /// Nearest-centroid assignment without updating; SIZE_MAX when no
  /// centroids exist yet.
  [[nodiscard]] std::size_t assign(const FeatureVector& x) const;

  /// Squared distance from x to its nearest centroid (inertia sample);
  /// +inf when no centroids exist.
  [[nodiscard]] double nearest_distance2(const FeatureVector& x) const;

  [[nodiscard]] std::size_t cluster_count() const { return centroids_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t cluster) const {
    return counts_[cluster];
  }
  [[nodiscard]] const FeatureVector& centroid(std::size_t cluster) const {
    return centroids_[cluster];
  }

 private:
  [[nodiscard]] static double distance2(const FeatureVector& a,
                                        const FeatureVector& b);

  std::size_t k_;
  std::vector<FeatureVector> centroids_;
  std::vector<std::uint64_t> counts_;
};

}  // namespace ifot::ml
