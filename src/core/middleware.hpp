// The IFoT middleware facade — the paper's primary contribution.
//
// Owns the simulated fabric (event engine, network, neuron modules) and
// implements the application build process of paper Fig. 6:
//   Step 1  submit a Recipe (text or parsed form);
//   Step 2  divide it into parallel tasks (recipe::split_recipe) and
//           assign them to modules (alloc::Allocator);
//   Step 3  instantiate the classes on each module and run the
//           application in cooperation.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::Middleware mw;
//   auto a = mw.add_module({.name = "module_a", .sensors = {"temp"}});
//   auto b = mw.add_module({.name = "module_b", .broker = true});
//   auto c = mw.add_module({.name = "module_c", .actuators = {"fan"}});
//   mw.start();
//   auto id = mw.deploy(recipe_text);
//   mw.start_flows();
//   mw.run_for(60 * kSecond);
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "alloc/allocator.hpp"
#include "net/network.hpp"
#include "node/module.hpp"
#include "recipe/parser.hpp"
#include "recipe/split.hpp"
#include "sim/simulator.hpp"

namespace ifot::core {

/// Description of one neuron module to create.
struct ModuleSpec {
  std::string name;
  /// Relative CPU speed (1.0 = Raspberry Pi 2).
  double cpu_factor = 1.0;
  /// Sensor device names attached to the module.
  std::vector<std::string> sensors;
  /// Actuator device names attached to the module.
  std::vector<std::string> actuators;
  /// Run the Broker class on this module. At least one module of the
  /// fabric must set this; with several, flows are spread across brokers
  /// by the recipe's `broker = N` parameter or a stable topic hash
  /// (broker decentralization, the paper's scaling path).
  bool broker = false;
  /// Whether the allocator may place recipe tasks here (the paper's
  /// broker module D runs only the Broker class).
  bool accept_tasks = true;
};

/// Topic-prefix sharding across the fabric's broker modules. When
/// enabled with K > 1 brokers, start() builds a mqtt::FederationMap from
/// the prefix assignments, installs it on every module (flow publishes
/// and subscribes then route to the owning shard instead of the legacy
/// topic hash), and meshes the brokers with one bidirectional bridge per
/// broker pair. Each bridge forwards the peer's owned prefixes plus
/// "$SYS/#" for mesh health, so a publish landing on the wrong shard
/// (an explicit `broker = N` pin) still reaches its owner's subscribers.
struct FederationConfig {
  bool enabled = false;
  /// prefix -> broker index (position in broker_modules()). Topics not
  /// under any assigned prefix fall back to a stable hash inside
  /// FederationMap::shard_of — but only assigned prefixes are bridged,
  /// so pin every prefix that can be published cross-shard.
  std::vector<std::pair<std::string, std::size_t>> prefixes;
  std::uint16_t bridge_keep_alive_s = 60;
};

/// Fabric-wide configuration.
struct MiddlewareConfig {
  net::LanConfig lan;
  node::CostModel costs;
  mqtt::QoS flow_qos = mqtt::QoS::kAtMostOnce;
  mqtt::BrokerConfig broker;
  FederationConfig federation;
  std::uint64_t seed = 42;
  /// MQTT keep-alive of every module's client. Failure detection latency
  /// is 1.5x this, so deployments wanting fast failover lower it.
  std::uint16_t keep_alive_s = 60;
  /// Publish retained online/offline status per module on
  /// ifot/status/<module> (wills fire on crashes).
  bool announce_status = true;
  /// Per-module load shedding bound (0 = unbounded queues, the paper's
  /// behaviour); see node::NeuronModule::Config::max_backlog.
  SimDuration max_backlog = 0;
  /// CPU stall model applied to every module (see node::CpuProfile);
  /// off by default, enabled by the paper-experiment harness to
  /// reproduce the testbed's rare wall-clock outliers.
  SimDuration cpu_stall_mean_interval = 0;
  SimDuration cpu_stall_min = 0;
  SimDuration cpu_stall_max = 0;
};

/// One deployed application.
struct Deployment {
  RecipeId id;
  recipe::TaskGraph graph;
  alloc::Placement placement;
};

/// The middleware runtime.
class Middleware {
 public:
  explicit Middleware(MiddlewareConfig config = {});
  ~Middleware();
  Middleware(const Middleware&) = delete;
  Middleware& operator=(const Middleware&) = delete;

  /// Creates a neuron module on the shared wireless LAN.
  NodeId add_module(const ModuleSpec& spec);

  /// Creates a module behind a WAN link (models a cloud server; used by
  /// the Fig. 1 cloud-vs-local comparison).
  NodeId add_remote_module(const ModuleSpec& spec, const net::WanConfig& wan);

  /// Brings the fabric up: starts the broker and connects every module's
  /// client. Must be called once, after all modules are added and before
  /// deploy().
  Status start();

  /// Steps 1-3 of the application build process. Returns the recipe id.
  /// Every deployed task's flow is announced in the retained directory
  /// (ifot/directory/...) so other applications can `tap` it.
  Result<RecipeId> deploy(std::string_view recipe_text,
                          const std::string& allocator = "load_aware");
  Result<RecipeId> deploy(const recipe::Recipe& recipe,
                          const std::string& allocator = "load_aware");
  /// Deploys with a caller-supplied placement strategy.
  Result<RecipeId> deploy_with(const recipe::Recipe& recipe,
                               alloc::Allocator& allocator);

  /// Removes a deployed application: its tasks stop, subscriptions no
  /// longer needed are dropped, and its directory entries are retracted.
  Status undeploy(RecipeId id);

  /// Starts all sensor flows (after deployments).
  void start_flows();
  void stop_flows();

  /// Runs the simulation for `d` of virtual time.
  void run_for(SimDuration d);

  /// Installs an observer of task completions across all modules.
  void set_completion_hook(node::CompletionHook hook);

  // ---- failure handling (paper future work: dynamic join/leave) ----
  /// Crashes a module: it goes silent (its will fires after the broker's
  /// keep-alive grace) and is excluded from future placements.
  Status fail_module(NodeId id);

  /// Re-places every task that was running on the failed module onto the
  /// surviving modules and instantiates it there. Learner state restarts
  /// from scratch (models are re-shipped by the Learning tasks' periodic
  /// publish). Fails when a device-constrained task has no surviving
  /// host.
  Status redeploy_failed(NodeId failed);

  /// Subscribes a module's client to a management-plane filter (e.g.
  /// "ifot/status/+" or "$SYS/broker/#").
  Status watch(NodeId module_id, const std::string& filter,
               node::NeuronModule::WatchHandler handler);

  /// Shard-aware watch: subscribes only on the broker owning `filter`
  /// under the federation map. Accepts "$share/<group>/<filter>" strings
  /// for joining a shared-subscription load group.
  Status watch_shard(NodeId module_id, const std::string& filter,
                     node::NeuronModule::WatchHandler handler);

  // ---- accessors ----
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  [[nodiscard]] node::NeuronModule& module(NodeId id);
  [[nodiscard]] node::NeuronModule* module_by_name(const std::string& name);
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }
  [[nodiscard]] std::vector<NodeId> module_ids() const;
  [[nodiscard]] const std::vector<Deployment>& deployments() const {
    return deployments_;
  }
  /// Primary broker module (management-plane traffic lives here).
  [[nodiscard]] NodeId broker_module() const {
    return broker_modules_.empty() ? NodeId{} : broker_modules_.front();
  }
  [[nodiscard]] const std::vector<NodeId>& broker_modules() const {
    return broker_modules_;
  }
  [[nodiscard]] const MiddlewareConfig& config() const { return config_; }
  /// The fabric's shard map (nullptr when federation is off or K == 1).
  [[nodiscard]] const mqtt::FederationMap* federation_map() const {
    return fed_map_.get();
  }

  /// Human-readable placement summary of a deployment (diagnostics).
  [[nodiscard]] std::string describe(const Deployment& d) const;

  /// Runtime invariant sweep (compiled out unless IFOT_AUDIT=ON):
  /// placement consistency — every deployment's placement maps each task
  /// to a module that exists in the fabric, a failed module never
  /// accepts future tasks, the per-module load ledger stays non-negative
  /// and parallel to the module list, and broker modules are real
  /// brokers. Mutating public APIs call this after every fabric change
  /// (enforced by scripts/ifot_lint.py rule audit-coverage).
  void audit_invariants() const;

 private:
  struct ModuleEntry {
    ModuleSpec spec;
    std::unique_ptr<node::NeuronModule> module;
  };

  Result<RecipeId> do_deploy(const recipe::Recipe& recipe,
                             alloc::Allocator& allocator);
  [[nodiscard]] std::vector<alloc::ModuleInfo> allocator_view() const;
  NodeId register_module(const ModuleSpec& spec, NodeId host);

  MiddlewareConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<net::Network> net_;
  std::vector<ModuleEntry> modules_;
  std::vector<NodeId> broker_modules_;
  std::unique_ptr<mqtt::FederationMap> fed_map_;
  bool started_ = false;
  bool flows_running_ = false;
  std::vector<Deployment> deployments_;
  std::vector<double> module_load_;  // accumulated placed cost per module
  RecipeId::value_type next_recipe_ = 1;
};

}  // namespace ifot::core
