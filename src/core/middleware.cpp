#include "core/middleware.hpp"

#include <algorithm>
#include <cassert>

#include "common/audit.hpp"
#include "common/log.hpp"

namespace ifot::core {
namespace {
constexpr const char* kLog = "core.middleware";
constexpr SimDuration kSettleTime = from_millis(300);
}  // namespace

Middleware::Middleware(MiddlewareConfig config) : config_(std::move(config)) {
  net_ = std::make_unique<net::Network>(sim_, config_.lan, config_.seed);
}

Middleware::~Middleware() = default;

NodeId Middleware::register_module(const ModuleSpec& spec, NodeId host) {
  node::NeuronModule::Config mc;
  mc.name = spec.name;
  mc.cpu.factor = spec.cpu_factor;
  mc.cpu.stall_mean_interval = config_.cpu_stall_mean_interval;
  mc.cpu.stall_min = config_.cpu_stall_min;
  mc.cpu.stall_max = config_.cpu_stall_max;
  mc.costs = config_.costs;
  mc.flow_qos = config_.flow_qos;
  mc.broker = config_.broker;
  mc.seed = config_.seed;
  mc.keep_alive_s = config_.keep_alive_s;
  mc.announce_status = config_.announce_status;
  mc.max_backlog = config_.max_backlog;
  auto module = std::make_unique<node::NeuronModule>(sim_, *net_, host, mc);
  for (const auto& s : spec.sensors) module->attach_sensor(s);
  for (const auto& a : spec.actuators) module->attach_actuator(a);
  modules_.push_back(ModuleEntry{spec, std::move(module)});
  module_load_.push_back(0);
  if (spec.broker) broker_modules_.push_back(host);
  return host;
}

NodeId Middleware::add_module(const ModuleSpec& spec) {
  assert(!started_ && "add modules before start()");
  const NodeId id = register_module(spec, net_->add_host(spec.name));
  audit_invariants();
  return id;
}

NodeId Middleware::add_remote_module(const ModuleSpec& spec,
                                     const net::WanConfig& wan) {
  assert(!started_ && "add modules before start()");
  const NodeId id = register_module(spec, net_->add_remote_host(spec.name, wan));
  audit_invariants();
  return id;
}

Status Middleware::start() {
  if (started_) return Err(Errc::kState, "middleware already started");
  if (broker_modules_.empty()) {
    return Err(Errc::kState, "no module is flagged as broker");
  }
  for (NodeId b : broker_modules_) module(b).start_broker();
  if (config_.federation.enabled && broker_modules_.size() > 1) {
    // Build the shard map, hand it to every module, and mesh the brokers
    // with one bidirectional bridge per unordered pair {i, j}: the bridge
    // lives on broker i, forwards j's owned prefixes towards j and i's
    // back, plus $SYS/# both ways for mesh health. Bridge filters grant
    // QoS 2 so forwarded publishes keep their original QoS.
    fed_map_ = std::make_unique<mqtt::FederationMap>(broker_modules_.size());
    for (const auto& [prefix, owner] : config_.federation.prefixes) {
      if (auto s = fed_map_->assign(prefix, owner); !s) return s;
    }
    for (auto& entry : modules_) {
      entry.module->set_federation(fed_map_.get());
    }
    for (std::size_t i = 0; i < broker_modules_.size(); ++i) {
      for (std::size_t j = i + 1; j < broker_modules_.size(); ++j) {
        mqtt::BridgeConfig bc;
        bc.name = "fed-" + std::to_string(i) + "-" + std::to_string(j);
        bc.local_label = net_->host_name(broker_modules_[i]);
        bc.remote_label = net_->host_name(broker_modules_[j]);
        bc.keep_alive_s = config_.federation.bridge_keep_alive_s;
        for (auto& f : fed_map_->filters_owned_by(j)) {
          bc.out_filters.push_back({std::move(f), mqtt::QoS::kExactlyOnce});
        }
        bc.out_filters.push_back({"$SYS/#", mqtt::QoS::kAtMostOnce});
        for (auto& f : fed_map_->filters_owned_by(i)) {
          bc.in_filters.push_back({std::move(f), mqtt::QoS::kExactlyOnce});
        }
        bc.in_filters.push_back({"$SYS/#", mqtt::QoS::kAtMostOnce});
        if (auto s = module(broker_modules_[i])
                         .add_bridge(std::move(bc), broker_modules_[j]);
            !s) {
          return s;
        }
      }
    }
  }
  // Every module gets a client per broker, including the broker modules
  // themselves (loopback links, so they too can host tasks).
  for (auto& entry : modules_) {
    entry.module->connect(broker_modules_);
  }
  started_ = true;
  // Let CONNECT/CONNACK handshakes settle before anything flows.
  sim_.run_until(sim_.now() + kSettleTime);
  audit_invariants();
  return {};
}

// audit: exempt(accessor; hands out a module whose mutators audit
// themselves)
node::NeuronModule& Middleware::module(NodeId id) {
  for (auto& entry : modules_) {
    if (entry.module->id() == id) return *entry.module;
  }
  assert(false && "unknown module id");
  return *modules_.front().module;
}

std::vector<NodeId> Middleware::module_ids() const {
  std::vector<NodeId> out;
  out.reserve(modules_.size());
  for (const auto& entry : modules_) out.push_back(entry.module->id());
  return out;
}

// audit: exempt(accessor; hands out a module whose mutators audit
// themselves)
node::NeuronModule* Middleware::module_by_name(const std::string& name) {
  for (auto& entry : modules_) {
    if (entry.spec.name == name) return entry.module.get();
  }
  return nullptr;
}

std::vector<alloc::ModuleInfo> Middleware::allocator_view() const {
  std::vector<alloc::ModuleInfo> out;
  for (std::size_t i = 0; i < modules_.size(); ++i) {
    const auto& entry = modules_[i];
    if (!entry.spec.accept_tasks) continue;
    alloc::ModuleInfo info;
    info.id = entry.module->id();
    info.name = entry.spec.name;
    info.cpu_factor = entry.spec.cpu_factor;
    info.existing_load = module_load_[i];
    info.sensors = {entry.spec.sensors.begin(), entry.spec.sensors.end()};
    info.actuators = {entry.spec.actuators.begin(),
                      entry.spec.actuators.end()};
    out.push_back(std::move(info));
  }
  return out;
}

// audit: exempt(parses, then delegates to do_deploy, which audits)
Result<RecipeId> Middleware::deploy(std::string_view recipe_text,
                                    const std::string& allocator) {
  auto parsed = recipe::parse(recipe_text);
  if (!parsed) return parsed.error();
  return deploy(parsed.value(), allocator);
}

// audit: exempt(resolves the allocator, then delegates to do_deploy,
// which audits)
Result<RecipeId> Middleware::deploy(const recipe::Recipe& recipe,
                                    const std::string& allocator) {
  auto alloc_impl = alloc::make_allocator(allocator);
  if (alloc_impl == nullptr) {
    return Err(Errc::kNotFound, "unknown allocator: " + allocator);
  }
  return do_deploy(recipe, *alloc_impl);
}

// audit: exempt(delegates to do_deploy, which audits)
Result<RecipeId> Middleware::deploy_with(const recipe::Recipe& recipe,
                                         alloc::Allocator& allocator) {
  return do_deploy(recipe, allocator);
}

Result<RecipeId> Middleware::do_deploy(const recipe::Recipe& recipe,
                                       alloc::Allocator& allocator) {
  if (!started_) return Err(Errc::kState, "start() must be called first");

  // Step 2a: recipe split.
  auto graph = recipe::split_recipe(recipe);
  if (!graph) return graph.error();

  // Step 2b: task assignment.
  const auto view = allocator_view();
  auto placement = allocator.allocate(graph.value(), view);
  if (!placement) return placement.error();

  // Step 3: instantiate classes on the assigned modules.
  Deployment d;
  d.id = RecipeId{next_recipe_++};
  d.graph = std::move(graph).value();
  d.placement = std::move(placement).value();

  // A task whose downstream consumers all landed on its own module gets
  // the local fast path (Fig. 9: Predict -> Actuator inside module F).
  auto local_output = [&](std::size_t ti) {
    const TaskId id = d.graph.tasks[ti].id;
    bool any = false;
    for (std::size_t ui = 0; ui < d.graph.tasks.size(); ++ui) {
      const auto& up = d.graph.tasks[ui].upstream;
      if (std::find(up.begin(), up.end(), id) == up.end()) continue;
      any = true;
      if (d.placement.task_module[ui] != d.placement.task_module[ti]) {
        return false;
      }
    }
    return any;
  };

  for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
    const auto& task = d.graph.tasks[ti];
    const NodeId target = d.placement.task_module[ti];
    auto& mod = module(target);
    if (auto s = mod.deploy_task(task, d.graph.recipe.nodes[task.recipe_node],
                                 local_output(ti));
        !s) {
      return s.error();
    }
    for (std::size_t mi = 0; mi < modules_.size(); ++mi) {
      if (modules_[mi].module->id() == target) {
        module_load_[mi] += task.cost_weight;
        break;
      }
    }
    // Announce the flow for discovery by later applications (taps);
    // sinks produce no flow.
    if (!recipe::is_sink_type(
            d.graph.recipe.nodes[task.recipe_node].type)) {
      mod.announce_flow(task, d.graph.recipe.nodes[task.recipe_node]);
    }
  }
  IFOT_LOG(kInfo, kLog) << "deployed recipe '" << recipe.name << "' ("
                        << d.graph.tasks.size() << " tasks, allocator "
                        << allocator.name() << ")";
  deployments_.push_back(std::move(d));
  // Let SUBSCRIBE/SUBACK handshakes settle before flows start.
  sim_.run_until(sim_.now() + kSettleTime);
  audit_invariants();
  return deployments_.back().id;
}

Status Middleware::undeploy(RecipeId id) {
  auto it = std::find_if(deployments_.begin(), deployments_.end(),
                         [&](const Deployment& d) { return d.id == id; });
  if (it == deployments_.end()) {
    return Err(Errc::kNotFound, "unknown recipe id");
  }
  for (std::size_t ti = 0; ti < it->graph.tasks.size(); ++ti) {
    const auto& task = it->graph.tasks[ti];
    auto& mod = module(it->placement.task_module[ti]);
    if (mod.failed()) continue;  // its state is already gone
    if (auto s = mod.remove_task(task.output_topic); !s) {
      IFOT_LOG(kWarn, kLog) << "undeploy: " << s.error().to_string();
    }
    if (!recipe::is_sink_type(it->graph.recipe.nodes[task.recipe_node].type)) {
      mod.retract_flow(task);
    }
    for (std::size_t mi = 0; mi < modules_.size(); ++mi) {
      if (modules_[mi].module->id() == it->placement.task_module[ti]) {
        module_load_[mi] -= task.cost_weight;
        break;
      }
    }
  }
  IFOT_LOG(kInfo, kLog) << "undeployed recipe '" << it->graph.recipe_name
                        << "'";
  deployments_.erase(it);
  sim_.run_until(sim_.now() + kSettleTime);
  audit_invariants();
  return {};
}

void Middleware::start_flows() {
  flows_running_ = true;
  for (auto& entry : modules_) {
    if (!entry.module->failed()) entry.module->start_sensors();
  }
  audit_invariants();
}

void Middleware::stop_flows() {
  flows_running_ = false;
  for (auto& entry : modules_) entry.module->stop_sensors();
  audit_invariants();
}

// audit: exempt(advances virtual time only; every event handler audits
// the object it mutates)
void Middleware::run_for(SimDuration d) { sim_.run_until(sim_.now() + d); }

Status Middleware::fail_module(NodeId id) {
  for (auto& entry : modules_) {
    if (entry.module->id() != id) continue;
    for (NodeId b : broker_modules_) {
      if (id == b) {
        return Err(Errc::kUnsupported,
                   "cannot fail a broker module (brokers have no failover)");
      }
    }
    entry.module->fail();
    entry.spec.accept_tasks = false;  // exclude from future placements
    IFOT_LOG(kWarn, kLog) << "module '" << entry.spec.name << "' failed";
    audit_invariants();
    return {};
  }
  return Err(Errc::kNotFound, "unknown module id");
}

Status Middleware::redeploy_failed(NodeId failed) {
  for (auto& d : deployments_) {
    // Which tasks were on the failed module?
    std::vector<std::size_t> orphans;
    for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
      if (d.placement.task_module[ti] == failed) orphans.push_back(ti);
    }
    if (orphans.empty()) continue;

    // Re-run placement over the surviving modules; adopt the allocator's
    // choice only for the orphaned tasks. Explicit pins that pointed at
    // the failed module are unsatisfiable and are dropped for failover.
    recipe::TaskGraph relaxed = d.graph;
    const std::string failed_name = net_->host_name(failed);
    for (std::size_t ti : orphans) {
      auto& node = relaxed.recipe.nodes[relaxed.tasks[ti].recipe_node];
      if (node.str("pin", "") == failed_name) node.params.erase("pin");
    }
    alloc::LoadAwareAllocator allocator;
    auto placement = allocator.allocate(relaxed, allocator_view());
    if (!placement) return placement.error();

    for (std::size_t ti : orphans) {
      d.placement.task_module[ti] = placement.value().task_module[ti];
    }
    // Instantiate the orphaned classes at their new homes, recomputing
    // the local fast-path flag against the updated placement.
    auto local_output = [&](std::size_t ti) {
      const TaskId id = d.graph.tasks[ti].id;
      bool any = false;
      for (std::size_t ui = 0; ui < d.graph.tasks.size(); ++ui) {
        const auto& up = d.graph.tasks[ui].upstream;
        if (std::find(up.begin(), up.end(), id) == up.end()) continue;
        any = true;
        if (d.placement.task_module[ui] != d.placement.task_module[ti]) {
          return false;
        }
      }
      return any;
    };
    for (std::size_t ti : orphans) {
      const auto& task = d.graph.tasks[ti];
      const NodeId target = d.placement.task_module[ti];
      auto& mod = module(target);
      if (auto s = mod.deploy_task(task,
                                   d.graph.recipe.nodes[task.recipe_node],
                                   local_output(ti));
          !s) {
        return s.error();
      }
      for (std::size_t mi = 0; mi < modules_.size(); ++mi) {
        if (modules_[mi].module->id() == target) {
          module_load_[mi] += task.cost_weight;
          break;
        }
      }
      IFOT_LOG(kInfo, kLog) << "task '" << task.name << "' failed over to '"
                            << net_->host_name(target) << "'";
      // Arm the new sensor timer if the orphan is a source and flows run.
      if (flows_running_ &&
          d.graph.recipe.nodes[task.recipe_node].type == "sensor") {
        mod.start_sensors();
      }
    }
  }
  // Post-condition: failover left no placement pointing at the failed
  // module (every orphan was re-homed above).
  if constexpr (audit::kEnabled) {
    for (const auto& d : deployments_) {
      for (NodeId m : d.placement.task_module) {
        IFOT_AUDIT_ASSERT(m != failed,
                          "redeploy_failed left a task on the failed module");
      }
    }
  }
  sim_.run_until(sim_.now() + kSettleTime);
  audit_invariants();
  return {};
}

// audit: exempt(delegates to NeuronModule::watch, which audits)
Status Middleware::watch(NodeId module_id, const std::string& filter,
                         node::NeuronModule::WatchHandler handler) {
  return module(module_id).watch(filter, std::move(handler));
}

// audit: exempt(delegates to NeuronModule::watch_shard, which audits)
Status Middleware::watch_shard(NodeId module_id, const std::string& filter,
                               node::NeuronModule::WatchHandler handler) {
  return module(module_id).watch_shard(filter, std::move(handler));
}

// audit: exempt(hook registration only; no fabric state is touched)
void Middleware::set_completion_hook(node::CompletionHook hook) {
  for (auto& entry : modules_) entry.module->set_completion_hook(hook);
}

void Middleware::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;

  auto find_entry = [this](NodeId id) -> const ModuleEntry* {
    for (const auto& e : modules_) {
      if (e.module->id() == id) return &e;
    }
    return nullptr;
  };

  // The load ledger runs parallel to the module list and never goes
  // negative (deploy adds exactly what undeploy later subtracts).
  IFOT_AUDIT_ASSERT(module_load_.size() == modules_.size(),
                    "load ledger has " + std::to_string(module_load_.size()) +
                        " entries for " + std::to_string(modules_.size()) +
                        " modules");
  for (double load : module_load_) {
    IFOT_AUDIT_ASSERT(load >= -1e-9, "negative placed load on a module");
  }

  // Broker bookkeeping: every registered broker id is a fabric module,
  // and actually runs the Broker class once the fabric started.
  for (NodeId b : broker_modules_) {
    const ModuleEntry* e = find_entry(b);
    IFOT_AUDIT_ASSERT(e != nullptr, "broker module id not in the fabric");
    IFOT_AUDIT_ASSERT(!started_ || e->module->is_broker(),
                      "module '" + e->spec.name +
                          "' is registered as broker but runs none");
  }

  // Federation: the shard map exists only for a started multi-broker
  // fabric with federation on, covers exactly the fabric's brokers, and
  // every broker pair is meshed (pair {i, j} hosts its bridge on i).
  IFOT_AUDIT_ASSERT(fed_map_ == nullptr ||
                        (started_ && config_.federation.enabled),
                    "federation map exists on an unfederated fabric");
  if (fed_map_ != nullptr) {
    fed_map_->audit_invariants();
    IFOT_AUDIT_ASSERT(fed_map_->broker_count() == broker_modules_.size(),
                      "federation map covers " +
                          std::to_string(fed_map_->broker_count()) +
                          " brokers, fabric has " +
                          std::to_string(broker_modules_.size()));
    for (std::size_t i = 0; i < broker_modules_.size(); ++i) {
      const ModuleEntry* e = find_entry(broker_modules_[i]);
      IFOT_AUDIT_ASSERT(e != nullptr &&
                            e->module->bridge_count() ==
                                broker_modules_.size() - 1 - i,
                        "broker " + std::to_string(i) +
                            " hosts the wrong number of mesh bridges");
    }
  }

  // A crashed module must be excluded from future placements.
  for (const auto& e : modules_) {
    IFOT_AUDIT_ASSERT(!e.module->failed() || !e.spec.accept_tasks,
                      "failed module '" + e.spec.name +
                          "' still accepts tasks");
  }

  // Placement consistency: every placed sub-task maps to a module that
  // exists in the fabric (failed modules keep their entries until
  // redeploy_failed re-homes them; redeploy audits that post-condition).
  for (const auto& d : deployments_) {
    IFOT_AUDIT_ASSERT(
        d.placement.task_module.size() == d.graph.tasks.size(),
        "placement of '" + d.graph.recipe_name + "' covers " +
            std::to_string(d.placement.task_module.size()) + " of " +
            std::to_string(d.graph.tasks.size()) + " tasks");
    for (NodeId m : d.placement.task_module) {
      IFOT_AUDIT_ASSERT(find_entry(m) != nullptr,
                        "task of '" + d.graph.recipe_name +
                            "' is placed on a module not in the fabric");
    }
  }
}

std::string Middleware::describe(const Deployment& d) const {
  std::string out = "recipe '" + d.graph.recipe_name + "':\n";
  for (std::size_t ti = 0; ti < d.graph.tasks.size(); ++ti) {
    const auto& task = d.graph.tasks[ti];
    const NodeId target = d.placement.task_module[ti];
    out += "  " + task.name + " (" +
           d.graph.recipe.nodes[task.recipe_node].type + ") -> " +
           net_->host_name(target) + "\n";
  }
  return out;
}

}  // namespace ifot::core
