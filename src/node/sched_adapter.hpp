// Adapts the discrete-event simulator to the mqtt::Scheduler interface so
// broker/client keep-alive and redelivery timers run on virtual time.
#pragma once

#include <unordered_map>

#include "mqtt/scheduler.hpp"
#include "sim/simulator.hpp"

namespace ifot::node {

/// mqtt::Scheduler backed by sim::Simulator.
class SimScheduler final : public mqtt::Scheduler {
 public:
  explicit SimScheduler(sim::Simulator& sim) : sim_(sim) {}

  SimTime now() override { return sim_.now(); }

  std::uint64_t call_after(SimDuration delay,
                           std::function<void()> fn) override {
    const auto id = sim_.schedule_after(delay, std::move(fn));
    return id.handle;
  }

  void cancel(std::uint64_t handle) override {
    sim_.cancel(sim::EventId{handle});
  }

  std::uint64_t rearm(std::uint64_t handle, SimDuration delay) override {
    return sim_.rearm_after(sim::EventId{handle}, delay).handle;
  }

 private:
  sim::Simulator& sim_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
};

}  // namespace ifot::node
