// Framing of flow payloads inside MQTT messages.
//
// Two payload kinds ride the fabric: data samples, and serialized models
// (the Train class ships its model to Judging/Predict classes, paper
// Fig. 9). A one-byte tag distinguishes them.
#pragma once

#include <variant>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "device/sample.hpp"

namespace ifot::node {

/// A model payload: opaque encoded model plus the producing task name.
struct ModelMsg {
  std::string producer;
  Bytes model;

  friend bool operator==(const ModelMsg&, const ModelMsg&) = default;
};

using FlowPayload = std::variant<device::Sample, ModelMsg>;

/// Encodes a sample as a flow message.
Bytes encode_flow(const device::Sample& s);
/// Encodes a model as a flow message.
Bytes encode_flow(const ModelMsg& m);
/// Decodes either kind.
Result<FlowPayload> decode_flow(BytesView data);

}  // namespace ifot::node
