// The IFoT neuron module runtime: "a small computer running IFoT
// middleware for processing data streams" (paper §IV-A).
//
// A NeuronModule binds together:
//  * a host on the simulated network (src/net);
//  * a CPU model charging service time for every operation (src/node/cpu_model);
//  * optionally the Broker class (an mqtt::Broker reachable by other
//    modules over a TCP-like link protocol);
//  * one MQTT client shared by the module's tasks (Publish / Subscribe
//    classes);
//  * the FlowTasks deployed on it by the middleware, plus the attached
//    sensors and actuators.
//
// Transport framing on the simulated network: one datagram =
// [kind:u8][dir:u8][link:u32][mqtt bytes], kind in {open, data, close},
// dir in {to-server, to-client}. The direction byte lets a module host
// both the Broker class and its own client (the broker module connects
// to itself over a loopback link). The network layer guarantees per-pair
// FIFO, standing in for TCP.
#pragma once

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "device/actuator_sim.hpp"
#include "mqtt/bridge.hpp"
#include "mqtt/broker.hpp"
#include "mqtt/client.hpp"
#include "mqtt/federation_map.hpp"
#include "net/network.hpp"
#include "node/cpu_model.hpp"
#include "node/sched_adapter.hpp"
#include "node/tasks.hpp"
#include "sim/simulator.hpp"

namespace ifot::node {

/// Observer of end-to-end completions (wired to the management node's
/// latency recorders).
using CompletionHook = std::function<void(
    const recipe::Task& task, const device::Sample& sample, SimTime now)>;

/// One IFoT neuron module.
class NeuronModule final : public TaskContext {
 public:
  struct Config {
    std::string name = "module";
    CpuProfile cpu;
    CostModel costs;
    mqtt::QoS flow_qos = mqtt::QoS::kAtMostOnce;
    std::uint64_t seed = 1;
    mqtt::BrokerConfig broker;
    std::uint16_t keep_alive_s = 60;
    /// Announce liveness on ifot/status/<name>: a retained "online" after
    /// connecting, and an "offline" will the broker publishes when the
    /// module dies (the basis of failure detection for the dynamic
    /// join/leave support the paper lists as future work).
    bool announce_status = false;
    /// Load shedding: when > 0, inbound *samples* are dropped while the
    /// CPU backlog exceeds this bound, trading loss for bounded latency
    /// at overload (models and protocol traffic are never shed).
    SimDuration max_backlog = 0;
  };

  /// `host` must have been obtained from `network.add_host` /
  /// `add_remote_host`; the module installs itself as the host's handler.
  NeuronModule(sim::Simulator& sim, net::Network& network, NodeId host,
               Config config);
  ~NeuronModule() override;

  [[nodiscard]] NodeId id() const { return host_; }
  [[nodiscard]] const std::string& name() const { return config_.name; }

  // ---- devices ----
  /// Declares a sensor device attached to this module.
  void attach_sensor(const std::string& device_name);
  /// Declares (and owns) an actuator attached to this module.
  device::ActuatorSink& attach_actuator(
      const std::string& device_name,
      SimDuration actuation_latency = from_millis(2));
  [[nodiscard]] const std::set<std::string>& sensors() const {
    return sensor_devices_;
  }
  [[nodiscard]] std::vector<std::string> actuators() const;
  [[nodiscard]] device::ActuatorSink* actuator(const std::string& name);

  // ---- roles ----
  /// Starts the Broker class on this module.
  void start_broker();
  [[nodiscard]] bool is_broker() const { return broker_ != nullptr; }
  [[nodiscard]] mqtt::Broker* broker() { return broker_.get(); }

  /// Hosts a federation bridge on this broker module: the local half
  /// rides an in-process loopback link into the hosted Broker class, the
  /// remote half crosses the simulated network to `remote_broker` over
  /// the same framing as an ordinary client. Requires start_broker().
  Status add_bridge(mqtt::BridgeConfig bridge_config, NodeId remote_broker);
  [[nodiscard]] std::size_t bridge_count() const { return bridges_.size(); }
  [[nodiscard]] mqtt::Bridge* bridge(const std::string& bridge_name);

  /// Opens this module's MQTT client(s). Multi-broker fabrics pass every
  /// broker module; flows are assigned to brokers by the recipe's
  /// `broker = N` parameter or a stable hash of the flow's topic base.
  /// Management-plane topics (status, directory, $SYS watches) live on
  /// the primary broker (index 0).
  void connect(NodeId broker_module);
  void connect(const std::vector<NodeId>& broker_modules);
  /// Installs the fabric's shard map: flow topics route to
  /// `map->shard_of(topic)` instead of the legacy topic-base hash.
  /// `map` must outlive the module (the middleware owns it); nullptr
  /// reverts to hashing.
  void set_federation(const mqtt::FederationMap* map) { fed_map_ = map; }
  [[nodiscard]] const mqtt::FederationMap* federation() const {
    return fed_map_;
  }
  /// Primary broker's client (nullptr before connect()).
  [[nodiscard]] mqtt::Client* client() {
    return clients_.empty() ? nullptr : clients_.front().client.get();
  }
  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }

  // ---- deployment (middleware Step 3: instantiate classes) ----
  /// Instantiates the class for one task of a split recipe on this module
  /// and subscribes to its input flows. Sensor tasks need the device
  /// attached; actuator tasks need the actuator attached.
  ///
  /// `local_output` marks tasks whose downstream consumers all live on
  /// this same module (the middleware knows the placement): their output
  /// is dispatched in-process instead of crossing the broker — mirroring
  /// the paper's Fig. 9 where the Actuator class hangs directly off the
  /// Predict module.
  Status deploy_task(const recipe::Task& task, const recipe::RecipeNode& node,
                     bool local_output = false);

  /// Removes a deployed task (identified by its unique output topic):
  /// drops its sensor timer and unsubscribes filters no other task or
  /// watch still needs. Returns kNotFound when no such task is deployed.
  Status remove_task(const std::string& output_topic);

  /// Publishes (retained) or clears this task's entry in the fabric's
  /// flow directory (ifot/directory/<recipe>/<task>) so other
  /// applications can discover and tap the flow.
  void announce_flow(const recipe::Task& task,
                     const recipe::RecipeNode& node);
  void retract_flow(const recipe::Task& task);

  /// Starts all deployed sensor tasks' sampling timers (first tick after
  /// one period).
  void start_sensors();
  /// Stops sensor timers.
  void stop_sensors();

  void set_completion_hook(CompletionHook hook) { hook_ = std::move(hook); }

  // ---- failure injection ----
  /// Simulates a crash: the module stops processing inbound traffic,
  /// stops its sensors and goes silent on the network (no DISCONNECT), so
  /// the broker's keep-alive eventually fires its will. Deployed task
  /// state is lost from the fabric's point of view.
  void fail();
  [[nodiscard]] bool failed() const { return failed_; }

  // ---- management-plane subscriptions ----
  /// Subscribes this module's client to `filter` and delivers matching
  /// messages to `handler` (outside the recipe task path). Used by the
  /// management software to watch status and $SYS flows.
  using WatchHandler =
      std::function<void(const std::string& topic, const Bytes& payload)>;
  Status watch(const std::string& filter, WatchHandler handler);

  /// Shard-aware watch: subscribes `filter` only on the broker owning it
  /// under the federation map (every broker when un-federated would be
  /// wrong here — exactly one shard carries the flow). Accepts
  /// "$share/<group>/<filter>" subscriptions: the share string rides the
  /// SUBSCRIBE while delivery matches against the inner filter.
  Status watch_shard(const std::string& filter, WatchHandler handler);

  // ---- TaskContext ----
  [[nodiscard]] SimTime now() const override { return sim_.now(); }
  void emit_sample(const recipe::Task& spec, device::Sample s) override;
  void emit_model(const recipe::Task& spec, Bytes model) override;
  void report_completion(const recipe::Task& spec,
                         const device::Sample& s) override;

  // ---- introspection ----
  [[nodiscard]] const CpuQueue& cpu() const { return cpu_; }
  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  /// One deployed class instance plus its placement-derived flags.
  /// shared_ptr: queued CPU work and sensor-timer callbacks keep the task
  /// alive across remove_task()/undeploy.
  struct DeployedTask {
    std::shared_ptr<FlowTask> task;
    bool local_output = false;
  };
  [[nodiscard]] const std::vector<DeployedTask>& tasks() const {
    return tasks_;
  }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Fraction of the run the CPU was busy.
  [[nodiscard]] double utilization() const;

  /// Runtime invariant sweep (compiled out unless IFOT_AUDIT=ON): the
  /// deployment ledger balances (tasks_deployed - tasks_removed ==
  /// live tasks), output topics stay unique on this module, sensor
  /// timers never outnumber deployed sensor tasks, client links are
  /// distinct, and a failed module has gone silent. Mutating public
  /// APIs call this after every state change (enforced by
  /// scripts/ifot_lint.py rule audit-coverage).
  void audit_invariants() const;

 private:
  enum class MsgKind : std::uint8_t { kOpen = 0, kData = 1, kClose = 2 };
  enum class Dir : std::uint8_t { kToServer = 0, kToClient = 1 };

  void on_datagram(NodeId from, const Bytes& data);
  /// Registers `link` with the Broker class (no-op when already open).
  /// Also invoked on first data for an unknown link: a lost kOpen
  /// datagram is healed by the peer's CONNECT retry, like a TCP SYN
  /// retransmit.
  void open_broker_link(NodeId from, std::uint32_t link);
  void on_broker_datagram(NodeId from, MsgKind kind, std::uint32_t link,
                          Bytes payload);
  void on_client_datagram(MsgKind kind, std::uint32_t link, Bytes payload);
  void transport_send(NodeId to, MsgKind kind, Dir dir, std::uint32_t link,
                      const Bytes& payload);
  /// Sends every datagram queued for `to` this turn as one batched
  /// network write (net::Network::send_frames).
  void flush_transport(NodeId to);
  void on_flow_message(const mqtt::Publish& p);
  /// In-process delivery of a payload to colocated consumer tasks.
  void dispatch_local(const std::string& topic, const FlowPayload& payload);
  [[nodiscard]] bool task_is_local_output(const recipe::Task& spec) const;

  /// One MQTT client towards one broker module.
  struct ClientBinding {
    NodeId broker;
    std::uint32_t link = 0;
    bool open = false;
    std::unique_ptr<mqtt::Client> client;
    std::vector<std::pair<std::string, mqtt::QoS>> pending_filters;
  };
  /// Broker index for a flow topic/filter: explicit hint when >= 0,
  /// primary for management topics, stable hash of the topic base (first
  /// three levels) otherwise.
  [[nodiscard]] std::size_t broker_index_for(std::string_view topic,
                                             int hint) const;
  ClientBinding& binding(std::size_t index) { return clients_[index]; }
  void subscribe_on(std::size_t index, const std::string& filter,
                    mqtt::QoS qos);
  /// Resolves a per-flow QoS hint (-1 = fabric default).
  [[nodiscard]] mqtt::QoS qos_for(int hint) const;
  void publish_flow(const std::string& topic, int broker_hint, int qos_hint,
                    bool retain, SharedPayload payload, SimDuration cost);
  void flush_pending_subscriptions(ClientBinding& binding);

  sim::Simulator& sim_;   // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  net::Network& net_;     // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  NodeId host_;
  Config config_;
  CpuQueue cpu_;
  SimScheduler sched_;
  Rng rng_;

  std::unique_ptr<mqtt::Broker> broker_;
  std::unordered_map<std::uint32_t, NodeId> broker_links_;  // link -> peer

  /// One hosted federation bridge: local half loops back into broker_,
  /// remote half rides the network to a peer broker module.
  struct BridgeBinding {
    NodeId remote;
    std::uint32_t local_link = 0;
    std::uint32_t remote_link = 0;
    std::unique_ptr<mqtt::Bridge> bridge;
  };
  std::vector<BridgeBinding> bridges_;
  const mqtt::FederationMap* fed_map_ = nullptr;

  /// Datagrams queued towards one peer awaiting the end-of-turn flush.
  /// Same-turn frames to the same peer ride one network write; the
  /// receive side gets them back as individual datagrams, in order.
  struct PendingTx {
    std::vector<Bytes> frames;
    bool scheduled = false;     // a flush event is queued on the simulator
    sim::EventId flush_event{};
  };
  std::unordered_map<NodeId::value_type, PendingTx> pending_tx_;

  std::vector<ClientBinding> clients_;

  std::vector<DeployedTask> tasks_;
  std::vector<std::unique_ptr<sim::PeriodicTimer>> sensor_timers_;
  std::set<std::string> sensor_devices_;
  std::vector<std::unique_ptr<device::ActuatorSink>> actuator_sinks_;

  CompletionHook hook_;
  Counters counters_;
  SimTime created_at_ = 0;
  bool failed_ = false;
  std::vector<std::pair<std::string, WatchHandler>> watches_;

  static std::uint32_t next_link_id_;
};

}  // namespace ifot::node
