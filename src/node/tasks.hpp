// The middleware's processing classes (paper Fig. 4), one per recipe node
// type, executed on neuron modules:
//
//   SensorTask    — Sensor class: drives a SensorModel at the recipe rate
//   WindowTask    — basic stream processing (aggregation)
//   FilterTask    — basic stream processing (predicate)
//   MapTask       — basic stream processing (transform)
//   AnomalyTask   — Judging class with a streaming anomaly detector
//   TrainTask     — Learning class (online classifier + model publishing)
//   PredictTask   — Judging class (classification with the shipped model;
//                   performs consumer-side MIX when several learners feed it)
//   EstimateTask  — Learning+Judging on one stream (online regression)
//   ClusterTask   — sequential k-means assignment
//   MergeTask     — fan-in of several flows
//   ActuatorTask  — Actuator class: applies results to an ActuatorSink
//
// Tasks are transport-agnostic: they receive decoded FlowPayloads after
// the module's CPU model has charged the processing cost, and emit
// through a TaskContext.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/rng.hpp"
#include "device/actuator_sim.hpp"
#include "device/sensor_sim.hpp"
#include "ml/anomaly.hpp"
#include "ml/classifier.hpp"
#include "ml/cluster.hpp"
#include "ml/regression.hpp"
#include "node/cpu_model.hpp"
#include "node/flow_msg.hpp"
#include "recipe/split.hpp"

namespace ifot::node {

/// Services a task needs from its hosting module.
class TaskContext {
 public:
  virtual ~TaskContext() = default;

  /// Current virtual time.
  [[nodiscard]] virtual SimTime now() const = 0;

  /// Publishes a sample on the task's output topic (charges publish CPU
  /// cost on the hosting module).
  virtual void emit_sample(const recipe::Task& spec, device::Sample s) = 0;

  /// Publishes a serialized model on the task's output topic.
  virtual void emit_model(const recipe::Task& spec, Bytes model) = 0;

  /// Reports that `spec` finished processing a sample end to end (used by
  /// the management node's latency recorders; paper Tables II/III measure
  /// sensing->training and sensing->predicting this way).
  virtual void report_completion(const recipe::Task& spec,
                                 const device::Sample& s) = 0;
};

/// Base class of all recipe-node runtimes.
class FlowTask {
 public:
  FlowTask(recipe::Task spec, recipe::RecipeNode node)
      : spec_(std::move(spec)), node_(std::move(node)) {}
  virtual ~FlowTask() = default;
  FlowTask(const FlowTask&) = delete;
  FlowTask& operator=(const FlowTask&) = delete;

  [[nodiscard]] const recipe::Task& spec() const { return spec_; }
  [[nodiscard]] const recipe::RecipeNode& node() const { return node_; }

  /// CPU service cost of processing `payload` (reference units).
  [[nodiscard]] virtual SimDuration cost(const CostModel& costs,
                                         const FlowPayload& payload) const;

  /// Handles one inbound payload (cost already charged by the module).
  virtual void process(TaskContext& ctx, const FlowPayload& payload) = 0;

  /// Shard partitioning: true when this shard owns the sample.
  [[nodiscard]] bool accepts(const device::Sample& s) const {
    return spec_.shard_count <= 1 || s.seq % spec_.shard_count == spec_.shard;
  }

 protected:
  recipe::Task spec_;
  recipe::RecipeNode node_;
};

/// Sensor class: timer-driven source (module drives tick()).
class SensorTask final : public FlowTask {
 public:
  SensorTask(recipe::Task spec, recipe::RecipeNode node,
             std::unique_ptr<device::SensorModel> model);

  /// Called by the module at each sampling instant; `sensed_at` is the
  /// tick time (the sensing moment the paper measures from).
  void tick(TaskContext& ctx, SimTime sensed_at);

  void process(TaskContext& ctx, const FlowPayload& payload) override;
  [[nodiscard]] SimDuration rate_period() const;

 private:
  std::unique_ptr<device::SensorModel> model_;
  std::uint64_t seq_ = 0;
};

/// Tumbling/sliding window aggregation over every numeric field.
/// Two windowing modes:
///  * count-based (param `size`, optional `slide` for overlap);
///  * event-time tumbling (param `span_ms`): samples are bucketed by
///    floor(sensed_at / span); a bucket flushes when the first sample of
///    the next bucket arrives (watermark = stream order).
class WindowTask final : public FlowTask {
 public:
  WindowTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  void flush(TaskContext& ctx);

  std::size_t size_;
  std::size_t slide_;
  SimDuration span_ = 0;        ///< >0: event-time mode
  std::int64_t bucket_ = -1;    ///< current event-time bucket index
  std::string aggregate_;
  std::deque<device::Sample> window_;
  std::uint64_t out_seq_ = 0;
};

/// Predicate on one field.
class FilterTask final : public FlowTask {
 public:
  FilterTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  std::string field_;
  std::string op_;
  double value_;
};

/// Affine transform of one field (optionally renamed).
class MapTask final : public FlowTask {
 public:
  MapTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  std::string field_;
  std::string out_field_;
  double scale_;
  double offset_;
};

/// Streaming anomaly detection (zscore | lof); tags samples and can drop
/// normal ones (param emit = "anomalies" | "all").
class AnomalyTask final : public FlowTask {
 public:
  AnomalyTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  double threshold_;
  bool emit_all_;
  std::optional<ml::ZScoreDetector> zscore_;
  std::optional<ml::LofDetector> lof_;
};

/// Learning class: trains an online classifier on labelled samples and
/// periodically publishes the serialized model. When the recipe enables
/// learner-side MIX (`mix = true` on a sharded train node — the paper's
/// Managing class coordinating distributed learning), the task also
/// consumes sibling shards' models and adopts the Jubatus-style average.
class TrainTask final : public FlowTask {
 public:
  TrainTask(recipe::Task spec, recipe::RecipeNode node);

  [[nodiscard]] SimDuration cost(const CostModel& costs,
                                 const FlowPayload& payload) const override;
  void process(TaskContext& ctx, const FlowPayload& payload) override;

  [[nodiscard]] const ml::Classifier& classifier() const { return *classifier_; }
  [[nodiscard]] std::uint64_t mixes_applied() const { return mixes_applied_; }

 private:
  std::unique_ptr<ml::Classifier> classifier_;
  std::uint64_t trained_ = 0;
  std::uint64_t publish_every_;
  bool mix_ = false;
  std::map<std::string, ml::LinearModel> peer_models_;
  std::uint64_t mixes_applied_ = 0;
};

/// Judging class: classifies samples with the latest model(s) shipped by
/// upstream Learning tasks; several producers are MIXed.
class PredictTask final : public FlowTask {
 public:
  PredictTask(recipe::Task spec, recipe::RecipeNode node);

  [[nodiscard]] SimDuration cost(const CostModel& costs,
                                 const FlowPayload& payload) const override;
  void process(TaskContext& ctx, const FlowPayload& payload) override;

  [[nodiscard]] std::size_t model_sources() const { return models_.size(); }
  [[nodiscard]] std::uint64_t model_updates() const { return model_updates_; }

 private:
  std::map<std::string, ml::LinearModel> models_;  // per producer
  ml::LinearModel current_;
  std::uint64_t model_updates_ = 0;
  std::uint64_t out_seq_ = 0;
};

/// Online regression: trains on samples carrying the target field,
/// always emits an estimate.
class EstimateTask final : public FlowTask {
 public:
  EstimateTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  ml::PaRegression regression_;
  std::string target_;
};

/// Sequential k-means assignment; adds a "cluster" field.
class ClusterTask final : public FlowTask {
 public:
  ClusterTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  ml::SequentialKMeans kmeans_;
};

/// Fan-in: re-emits inbound samples under this task's topic.
class MergeTask final : public FlowTask {
 public:
  MergeTask(recipe::Task spec, recipe::RecipeNode node);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  std::uint64_t out_seq_ = 0;
};

/// Actuator class: applies results to the attached ActuatorSink.
class ActuatorTask final : public FlowTask {
 public:
  /// `sink` is owned by the hosting module and outlives the task.
  ActuatorTask(recipe::Task spec, recipe::RecipeNode node,
               device::ActuatorSink* sink);
  void process(TaskContext& ctx, const FlowPayload& payload) override;

 private:
  device::ActuatorSink* sink_;
};

/// Converts a sample's numeric fields to a feature vector using hashed
/// feature ids (stable across distributed tasks without coordination).
ml::FeatureVector features_of(const device::Sample& s);

/// Stable 32-bit feature id for a field name (FNV-1a).
ml::FeatureId hashed_feature_id(std::string_view name);

}  // namespace ifot::node
