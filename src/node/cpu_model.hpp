// CPU model of an IFoT neuron module.
//
// Substitutes for the paper's Raspberry Pi 2 (ARM Cortex-A7 @ 900 MHz):
// each module's CPU is a single-server FIFO queue; every piece of work
// (packet handling, sample decode, model update, ...) occupies the server
// for its service time divided by the module's speed factor. Queueing in
// this model is what produces the paper's latency knee between 20 and
// 40 Hz (Tables II/III).
//
// Costs in CostModel are calibrated for factor 1.0 == one Raspberry Pi 2
// core running the paper's Python/Jubatus stack; see EXPERIMENTS.md for
// the calibration rationale.
#pragma once

#include <functional>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/simulator.hpp"

namespace ifot::node {

/// Relative speed of a module's CPU (1.0 = Raspberry Pi 2 reference),
/// plus an optional stall model: at exponentially distributed intervals
/// (mean `stall_mean_interval`) the CPU freezes for U[stall_min,
/// stall_max] — the rare GC pauses / Wi-Fi retransmission storms that
/// dominate the paper's low-rate *max* latencies (Table II: 357 ms max at
/// a 59 ms average). Time-based, so the added load is rate-independent.
struct CpuProfile {
  double factor = 1.0;
  SimDuration stall_mean_interval = 0;  ///< 0 = stalls disabled
  SimDuration stall_min = 0;
  SimDuration stall_max = 0;
};

/// Reference-hardware service times for the operations the runtime
/// performs. All values are for a factor-1.0 module.
struct CostModel {
  /// Fixed transport + MQTT packet handling per received datagram.
  SimDuration per_packet = from_millis(0.35);
  /// Per payload byte (encode/decode/copy).
  SimDuration per_byte = 40;  // 40ns/B ~ 25 MB/s on the Pi's stack
  /// Reading one sample off a (short-range-connected) sensor.
  SimDuration sensor_read = from_millis(3.0);
  /// Building + publishing one flow message (client side).
  SimDuration publish = from_millis(7.0);
  /// Broker routing: fixed part per inbound message...
  SimDuration broker_route = from_millis(3.5);
  /// ...plus this per matched subscriber.
  SimDuration broker_per_subscriber = from_millis(0.7);
  /// Subscriber-side delivery of one flow message to one task.
  SimDuration deliver = from_millis(4.0);
  /// Online training on one sample (Jubatus update + bookkeeping).
  SimDuration train = from_millis(14.0);
  /// Classification of one sample.
  SimDuration predict = from_millis(7.0);
  /// Anomaly-score update for one sample.
  SimDuration anomaly = from_millis(9.0);
  /// Cluster assignment/update for one sample.
  SimDuration cluster = from_millis(6.0);
  /// Regression update+estimate for one sample.
  SimDuration estimate = from_millis(8.0);
  /// Lightweight stream ops (window/filter/map/merge) per sample.
  SimDuration stream_op = from_millis(1.5);
  /// Applying one actuator command.
  SimDuration actuate = from_millis(2.0);
  /// Serializing/deserializing + mixing models (per model involved).
  SimDuration model_io = from_millis(5.0);
  /// In-process handoff between colocated tasks (no MQTT encode/decode,
  /// no broker hop) - the local fast path of emit.
  SimDuration local_dispatch = from_millis(1.5);
};

/// Single-server FIFO CPU queue bound to the simulator clock.
class CpuQueue {
 public:
  CpuQueue(sim::Simulator& sim, CpuProfile profile, Rng rng = Rng(1))
      : sim_(sim), profile_(profile), rng_(rng) {
    if (profile_.stall_mean_interval > 0) arm_stall();
  }

  /// Enqueues work costing `cost` reference-time units; `fn` runs when the
  /// work completes (after queueing behind earlier work).
  void execute(SimDuration cost, std::function<void()> fn);

  /// Time the CPU becomes idle given current queue.
  [[nodiscard]] SimTime busy_until() const { return busy_until_; }
  /// Total busy time accumulated (for utilization reporting).
  [[nodiscard]] SimDuration total_busy() const { return total_busy_; }
  /// Current backlog (queue + in-service) in virtual time.
  [[nodiscard]] SimDuration backlog() const;
  [[nodiscard]] double factor() const { return profile_.factor; }

  /// Total stall time injected (reporting).
  [[nodiscard]] SimDuration total_stalled() const { return total_stalled_; }

 private:
  void arm_stall();

  sim::Simulator& sim_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  CpuProfile profile_;
  Rng rng_;
  SimTime busy_until_ = 0;
  SimDuration total_busy_ = 0;
  SimDuration total_stalled_ = 0;
};

}  // namespace ifot::node
