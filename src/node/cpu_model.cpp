#include "node/cpu_model.hpp"

#include <algorithm>
#include <cassert>

namespace ifot::node {

void CpuQueue::arm_stall() {
  const auto wait = static_cast<SimDuration>(rng_.exponential(
      1.0 / static_cast<double>(profile_.stall_mean_interval)));
  sim_.schedule_after(wait, [this] {
    const auto stall = static_cast<SimDuration>(
        rng_.uniform(static_cast<double>(profile_.stall_min),
                     static_cast<double>(profile_.stall_max)));
    // The CPU freezes: everything queued (and anything arriving during
    // the freeze) waits the stall out.
    busy_until_ = std::max(sim_.now(), busy_until_) + stall;
    total_stalled_ += stall;
    arm_stall();
  });
}

void CpuQueue::execute(SimDuration cost, std::function<void()> fn) {
  assert(cost >= 0);
  const auto scaled =
      static_cast<SimDuration>(static_cast<double>(cost) / profile_.factor);
  const SimTime start = std::max(sim_.now(), busy_until_);
  busy_until_ = start + scaled;
  total_busy_ += scaled;
  sim_.schedule_at(busy_until_, std::move(fn));
}

SimDuration CpuQueue::backlog() const {
  return std::max<SimDuration>(0, busy_until_ - sim_.now());
}

}  // namespace ifot::node
