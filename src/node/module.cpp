#include "node/module.hpp"

#include <algorithm>
#include <cassert>

#include "common/audit.hpp"
#include "common/log.hpp"

namespace ifot::node {
namespace {
constexpr const char* kLog = "node.module";
}

std::uint32_t NeuronModule::next_link_id_ = 1;

NeuronModule::NeuronModule(sim::Simulator& sim, net::Network& network,
                           NodeId host, Config config)
    : sim_(sim),
      net_(network),
      host_(host),
      config_(std::move(config)),
      cpu_(sim, config_.cpu,
           Rng(config_.seed ^ (0x9E3779B97F4A7C15ULL * (host.value() + 7)))),
      sched_(sim),
      rng_(config_.seed ^ (0x517CC1B727220A95ULL * (host.value() + 1))),
      created_at_(sim.now()) {
  net_.set_handler(host_, [this](NodeId from, const Bytes& data) {
    on_datagram(from, data);
  });
}

NeuronModule::~NeuronModule() {
  // Pending flush events capture `this`; never let them fire after free.
  for (auto& [peer, tx] : pending_tx_) {
    if (tx.scheduled) sim_.cancel(tx.flush_event);
  }
}

void NeuronModule::attach_sensor(const std::string& device_name) {
  sensor_devices_.insert(device_name);
  audit_invariants();
}

device::ActuatorSink& NeuronModule::attach_actuator(
    const std::string& device_name, SimDuration actuation_latency) {
  actuator_sinks_.push_back(
      std::make_unique<device::ActuatorSink>(device_name, actuation_latency));
  audit_invariants();
  return *actuator_sinks_.back();
}

std::vector<std::string> NeuronModule::actuators() const {
  std::vector<std::string> out;
  out.reserve(actuator_sinks_.size());
  for (const auto& a : actuator_sinks_) out.push_back(a->name());
  return out;
}

// audit: exempt(read-only lookup; the non-const overload only hands out a
// sink owned and audited by this module)
device::ActuatorSink* NeuronModule::actuator(const std::string& name) {
  for (const auto& a : actuator_sinks_) {
    if (a->name() == name) return a.get();
  }
  return nullptr;
}

double NeuronModule::utilization() const {
  const SimDuration elapsed = sim_.now() - created_at_;
  if (elapsed <= 0) return 0;
  return static_cast<double>(cpu_.total_busy()) /
         static_cast<double>(elapsed);
}

void NeuronModule::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;

  // Deployment ledger balances against the live task list.
  IFOT_AUDIT_ASSERT(
      counters_.get("tasks_deployed") ==
          counters_.get("tasks_removed") + tasks_.size(),
      "task ledger diverged on '" + name() + "': deployed " +
          std::to_string(counters_.get("tasks_deployed")) + ", removed " +
          std::to_string(counters_.get("tasks_removed")) + ", live " +
          std::to_string(tasks_.size()));

  // Note: output topics are NOT unique per module — deploying the same
  // recipe twice (distinct deployment ids) legally places identical task
  // sets side by side, and remove_task drops the first match.
  std::size_t sensor_tasks = 0;
  for (const auto& t : tasks_) {
    IFOT_AUDIT_ASSERT(t.task != nullptr, "null task deployed on " + name());
    if (dynamic_cast<const SensorTask*>(t.task.get()) != nullptr) {
      ++sensor_tasks;
    }
  }

  // start_sensors() arms exactly one timer per deployed sensor task;
  // deploying more sensors without re-arming leaves timers behind, never
  // ahead.
  IFOT_AUDIT_ASSERT(sensor_timers_.size() <= sensor_tasks,
                    "module '" + name() + "' has " +
                        std::to_string(sensor_timers_.size()) +
                        " sensor timers for " +
                        std::to_string(sensor_tasks) + " sensor tasks");

  // A crashed module is silent: no sampling, per the failure model
  // (silent crash; the broker's keep-alive fires the will).
  IFOT_AUDIT_ASSERT(!failed_ || sensor_timers_.empty(),
                    "failed module '" + name() + "' still samples sensors");

  // Transport egress: queued frames always have a flush scheduled (or
  // they would sit forever), and a crashed module holds none at all.
  for (const auto& [peer, tx] : pending_tx_) {
    IFOT_AUDIT_ASSERT(tx.frames.empty() || tx.scheduled,
                      "module '" + name() +
                          "' has queued frames with no flush scheduled");
    IFOT_AUDIT_ASSERT(!failed_ || tx.frames.empty(),
                      "failed module '" + name() + "' still queues frames");
  }

  // One client binding per broker, each on its own transport link.
  std::set<std::uint32_t> links;
  for (const auto& b : clients_) {
    IFOT_AUDIT_ASSERT(b.client != nullptr,
                      "null client binding on '" + name() + "'");
    IFOT_AUDIT_ASSERT(links.insert(b.link).second,
                      "duplicate client link id on '" + name() + "'");
  }

  // Bridges: only broker modules host them, each binding carries a live
  // Bridge, and both of its links are distinct from every other link on
  // this module.
  IFOT_AUDIT_ASSERT(bridges_.empty() || broker_ != nullptr,
                    "module '" + name() + "' hosts bridges without a broker");
  for (const auto& bb : bridges_) {
    IFOT_AUDIT_ASSERT(bb.bridge != nullptr,
                      "null bridge binding on '" + name() + "'");
    IFOT_AUDIT_ASSERT(links.insert(bb.local_link).second &&
                          links.insert(bb.remote_link).second,
                      "bridge link id collides on '" + name() + "'");
  }
}

// ---- transport -------------------------------------------------------------

void NeuronModule::transport_send(NodeId to, MsgKind kind, Dir dir,
                                  std::uint32_t link, const Bytes& payload) {
  if (failed_) return;  // silent crash: pings stop, will fires later
  Bytes frame;
  frame.reserve(payload.size() + 6);
  BinaryWriter w(frame);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u8(static_cast<std::uint8_t>(dir));
  w.u32(link);
  w.raw(payload);
  // Queue for the end-of-turn flush: everything this module emits towards
  // the same peer within one simulation instant coalesces into a single
  // network write (one channel occupancy instead of one per datagram).
  PendingTx& tx = pending_tx_[to.value()];
  tx.frames.push_back(std::move(frame));
  if (!tx.scheduled) {
    tx.scheduled = true;
    tx.flush_event =
        sim_.schedule_after(0, [this, to] { flush_transport(to); });
  }
}

void NeuronModule::flush_transport(NodeId to) {
  auto it = pending_tx_.find(to.value());
  if (it == pending_tx_.end()) return;
  std::vector<Bytes> frames;
  frames.swap(it->second.frames);
  it->second.scheduled = false;
  if (failed_ || frames.empty()) return;
  counters_.add("transport_writes");
  if (frames.size() > 1) counters_.add("transport_batched_writes");
  net_.send_frames(host_, to, std::move(frames));
}

void NeuronModule::on_datagram(NodeId from, const Bytes& data) {
  if (failed_) return;  // a crashed module neither receives nor replies
  BinaryReader r{BytesView(data)};
  auto kind_raw = r.u8();
  auto dir_raw = r.u8();
  auto link = r.u32();
  if (!kind_raw || !dir_raw || !link || kind_raw.value() > 2 ||
      dir_raw.value() > 1) {
    IFOT_LOG(kWarn, kLog) << name() << ": malformed transport frame from "
                          << net_.host_name(from);
    return;
  }
  auto payload = r.raw(r.remaining());
  assert(payload);
  const auto kind = static_cast<MsgKind>(kind_raw.value());
  const bool to_server = dir_raw.value() ==
                         static_cast<std::uint8_t>(Dir::kToServer);

  // Charge inbound packet handling on this module's CPU, then dispatch.
  const SimDuration cost =
      config_.costs.per_packet +
      config_.costs.per_byte * static_cast<SimDuration>(data.size()) +
      (to_server && kind == MsgKind::kData ? config_.costs.broker_route : 0);
  cpu_.execute(cost, [this, from, kind, to_server, link = link.value(),
                      p = std::move(payload).value()]() mutable {
    if (to_server) {
      if (broker_ != nullptr) {
        on_broker_datagram(from, kind, link, std::move(p));
      }
    } else {
      on_client_datagram(kind, link, std::move(p));
    }
  });
}

void NeuronModule::open_broker_link(NodeId from, std::uint32_t link) {
  if (broker_links_.count(link) != 0) return;
  broker_links_[link] = from;
  broker_->on_link_open(
      link,
      /*send=*/
      [this, from, link](const Bytes& bytes) {
        // Outgoing broker traffic serializes through the CPU with a
        // per-subscriber routing cost.
        const SimDuration cost =
            config_.costs.broker_per_subscriber +
            config_.costs.per_byte * static_cast<SimDuration>(bytes.size());
        cpu_.execute(cost, [this, from, link, bytes] {
          transport_send(from, MsgKind::kData, Dir::kToClient, link, bytes);
        });
      },
      /*close=*/
      [this, from, link] {
        broker_links_.erase(link);
        transport_send(from, MsgKind::kClose, Dir::kToClient, link, {});
      });
}

void NeuronModule::on_broker_datagram(NodeId from, MsgKind kind,
                                      std::uint32_t link, Bytes payload) {
  switch (kind) {
    case MsgKind::kOpen:
      open_broker_link(from, link);
      break;
    case MsgKind::kData:
      // A lost kOpen must not leave the link half-dead: a real transport
      // retransmits its SYN, ours retransmits CONNECT (kData). Treat
      // first data on an unknown link as the open.
      open_broker_link(from, link);
      broker_->on_link_data(link, BytesView(payload));
      break;
    case MsgKind::kClose:
      broker_->on_link_closed(link);
      broker_links_.erase(link);
      break;
  }
}

void NeuronModule::on_client_datagram(MsgKind kind, std::uint32_t link,
                                      Bytes payload) {
  // Bridge remote halves ride client-direction frames too.
  for (auto& bb : bridges_) {
    if (bb.remote_link != link) continue;
    switch (kind) {
      case MsgKind::kOpen:
        break;  // clients never receive opens
      case MsgKind::kData:
        bb.bridge->remote_data(BytesView(payload));
        break;
      case MsgKind::kClose:
        bb.bridge->remote_transport_closed();
        break;
    }
    return;
  }
  for (auto& b : clients_) {
    if (b.link != link) continue;
    switch (kind) {
      case MsgKind::kOpen:
        break;  // clients never receive opens
      case MsgKind::kData:
        b.client->on_data(BytesView(payload));
        break;
      case MsgKind::kClose:
        b.open = false;
        b.client->on_transport_closed();
        break;
    }
    return;
  }
}

// ---- roles -----------------------------------------------------------------

void NeuronModule::start_broker() {
  assert(broker_ == nullptr);
  broker_ = std::make_unique<mqtt::Broker>(sched_, config_.broker);
  audit_invariants();
}

Status NeuronModule::add_bridge(mqtt::BridgeConfig bridge_config,
                                NodeId remote_broker) {
  if (broker_ == nullptr) {
    return Err(Errc::kState, "module '" + name() +
                                 "' hosts no broker to bridge from");
  }
  if (bridge(bridge_config.name) != nullptr) {
    return Err(Errc::kAlreadyExists,
               "bridge '" + bridge_config.name + "' already hosted on '" +
                   name() + "'");
  }
  bridges_.push_back(BridgeBinding{});
  BridgeBinding& bb = bridges_.back();
  bb.remote = remote_broker;
  bb.local_link = next_link_id_++;
  bb.remote_link = next_link_id_++;
  const std::uint32_t llink = bb.local_link;
  const std::uint32_t rlink = bb.remote_link;
  bb.bridge = std::make_unique<mqtt::Bridge>(
      sched_, std::move(bridge_config),
      /*local_send=*/
      [this, llink](const Bytes& bytes) {
        // Loopback into the hosted broker: charged like any inbound
        // packet, and deferred through the CPU so broker and bridge
        // never re-enter each other within one call stack.
        const SimDuration cost =
            config_.costs.per_packet + config_.costs.broker_route +
            config_.costs.per_byte * static_cast<SimDuration>(bytes.size());
        cpu_.execute(cost, [this, llink, bytes] {
          if (broker_ != nullptr && !failed_) {
            broker_->on_link_data(llink, BytesView(bytes));
          }
        });
      },
      /*remote_send=*/
      [this, remote_broker, rlink](const Bytes& bytes) {
        transport_send(remote_broker, MsgKind::kData, Dir::kToServer, rlink,
                       bytes);
      });
  broker_->on_link_open(
      llink,
      /*send=*/
      [this, llink](const Bytes& bytes) {
        const SimDuration cost =
            config_.costs.broker_per_subscriber +
            config_.costs.per_byte * static_cast<SimDuration>(bytes.size());
        cpu_.execute(cost, [this, llink, bytes] {
          if (failed_) return;
          for (auto& b : bridges_) {
            if (b.local_link == llink) {
              b.bridge->local_data(BytesView(bytes));
              return;
            }
          }
        });
      },
      /*close=*/
      [this, llink] {
        for (auto& b : bridges_) {
          if (b.local_link == llink) {
            b.bridge->local_transport_closed();
            return;
          }
        }
      });
  bb.bridge->local_transport_open();
  transport_send(remote_broker, MsgKind::kOpen, Dir::kToServer, rlink, {});
  bb.bridge->remote_transport_open();
  counters_.add("bridges_hosted");
  audit_invariants();
  return {};
}

// audit: exempt(read-only lookup over the bridge bindings)
mqtt::Bridge* NeuronModule::bridge(const std::string& bridge_name) {
  for (auto& bb : bridges_) {
    if (bb.bridge != nullptr && bb.bridge->config().name == bridge_name) {
      return bb.bridge.get();
    }
  }
  return nullptr;
}

// audit: exempt(delegates to the vector overload, which audits)
void NeuronModule::connect(NodeId broker_module) {
  connect(std::vector<NodeId>{broker_module});
}

void NeuronModule::connect(const std::vector<NodeId>& broker_modules) {
  assert(clients_.empty());
  assert(!broker_modules.empty());
  clients_.reserve(broker_modules.size());
  for (std::size_t bi = 0; bi < broker_modules.size(); ++bi) {
    clients_.push_back(ClientBinding{});
    ClientBinding& b = clients_.back();
    b.broker = broker_modules[bi];
    b.link = next_link_id_++;
    mqtt::ClientConfig cc;
    // One session per broker; suffix non-primary client ids.
    cc.client_id = bi == 0 ? name() : name() + "@" + std::to_string(bi);
    cc.clean_session = true;
    cc.keep_alive_s = config_.keep_alive_s;
    if (config_.announce_status && bi == 0) {
      cc.will = mqtt::Will{"ifot/status/" + name(), to_bytes("offline"),
                           mqtt::QoS::kAtMostOnce, /*retain=*/true};
    }
    const NodeId broker = b.broker;
    const std::uint32_t link = b.link;
    b.client = std::make_unique<mqtt::Client>(
        sched_, cc, [this, broker, link](const Bytes& bytes) {
          // Client-side protocol sends ride on the CPU via the callers
          // (publish/subscribe charge their own costs); acks and pings
          // are sent directly - their cost is folded into per_packet.
          transport_send(broker, MsgKind::kData, Dir::kToServer, link,
                         bytes);
        });
    b.client->set_on_message(
        [this](const mqtt::Publish& p) { on_flow_message(p); });
    b.client->set_on_connack([this, bi](const mqtt::Connack& ack) {
      ClientBinding& bb = clients_[bi];
      if (ack.code == mqtt::ConnectCode::kAccepted) {
        if (config_.announce_status && bi == 0) {
          (void)bb.client->publish("ifot/status/" + name(),
                                   to_bytes("online"),
                                   mqtt::QoS::kAtMostOnce, /*retain=*/true);
        }
        flush_pending_subscriptions(bb);
      } else {
        IFOT_LOG(kError, kLog) << name() << ": broker rejected CONNECT (code "
                               << static_cast<int>(ack.code) << ")";
      }
    });
    transport_send(b.broker, MsgKind::kOpen, Dir::kToServer, b.link, {});
    b.open = true;
    b.client->on_transport_open();
  }
  audit_invariants();
}

std::size_t NeuronModule::broker_index_for(std::string_view topic,
                                           int hint) const {
  if (clients_.size() <= 1) return 0;
  if (hint >= 0) {
    return static_cast<std::size_t>(hint) % clients_.size();
  }
  // Management-plane topics live on the primary broker.
  if (topic.rfind("$SYS", 0) == 0 || topic.rfind("ifot/status/", 0) == 0 ||
      topic.rfind("ifot/directory/", 0) == 0) {
    return 0;
  }
  // Federated fabrics route by the shard map (explicit prefix
  // assignments, hash fallback inside shard_of for unassigned topics).
  if (fed_map_ != nullptr) {
    return fed_map_->shard_of(topic) % clients_.size();
  }
  // Hash the topic base (first three levels) so producers and consumers
  // agree regardless of shard/partition suffixes or '+' wildcards.
  std::size_t levels = 0;
  std::size_t end = topic.size();
  for (std::size_t i = 0; i < topic.size(); ++i) {
    if (topic[i] == '/') {
      if (++levels == 3) {
        end = i;
        break;
      }
    }
  }
  std::uint32_t h = 2166136261u;
  for (std::size_t i = 0; i < end; ++i) {
    h ^= static_cast<std::uint8_t>(topic[i]);
    h *= 16777619u;
  }
  return h % clients_.size();
}

mqtt::QoS NeuronModule::qos_for(int hint) const {
  if (hint >= 0 && hint <= 2) return static_cast<mqtt::QoS>(hint);
  return config_.flow_qos;
}

void NeuronModule::subscribe_on(std::size_t index, const std::string& filter,
                                mqtt::QoS qos) {
  ClientBinding& b = clients_[index];
  b.pending_filters.emplace_back(filter, qos);
  if (b.client->connected()) flush_pending_subscriptions(b);
}

void NeuronModule::flush_pending_subscriptions(ClientBinding& binding) {
  if (binding.pending_filters.empty()) return;
  std::vector<mqtt::TopicRequest> reqs;
  reqs.reserve(binding.pending_filters.size());
  for (const auto& [f, qos] : binding.pending_filters) {
    reqs.push_back({f, qos});
  }
  binding.pending_filters.clear();
  if (auto s = binding.client->subscribe(std::move(reqs)); !s) {
    IFOT_LOG(kError, kLog) << name()
                           << ": subscribe failed: " << s.error().to_string();
  }
}

// ---- deployment ------------------------------------------------------------

Status NeuronModule::deploy_task(const recipe::Task& task,
                                 const recipe::RecipeNode& node,
                                 bool local_output) {
  // State-machine legality: a crashed module lost its runtime; the
  // middleware must never instantiate classes on it (fail_module flips
  // accept_tasks so placement routes around it).
  IFOT_AUDIT_ASSERT(!failed_,
                    "deploy_task on failed module '" + name() + "'");
  std::unique_ptr<FlowTask> t;
  if (node.type == "sensor") {
    const std::string device = node.str("sensor", node.name);
    if (sensor_devices_.count(device) == 0) {
      return Err(Errc::kNotFound, "module '" + name() +
                                      "' has no sensor device '" + device +
                                      "'");
    }
    auto model = device::make_sensor_model(node.str("model", "waveform"),
                                           rng_.fork());
    if (!model) return model.error();
    t = std::make_unique<SensorTask>(task, node, std::move(model).value());
  } else if (node.type == "actuator") {
    const std::string device = node.str("actuator", node.name);
    device::ActuatorSink* sink = actuator(device);
    if (sink == nullptr) {
      return Err(Errc::kNotFound, "module '" + name() +
                                      "' has no actuator device '" + device +
                                      "'");
    }
    t = std::make_unique<ActuatorTask>(task, node, sink);
  } else if (node.type == "window") {
    t = std::make_unique<WindowTask>(task, node);
  } else if (node.type == "filter") {
    t = std::make_unique<FilterTask>(task, node);
  } else if (node.type == "map") {
    t = std::make_unique<MapTask>(task, node);
  } else if (node.type == "anomaly") {
    t = std::make_unique<AnomalyTask>(task, node);
  } else if (node.type == "train") {
    t = std::make_unique<TrainTask>(task, node);
  } else if (node.type == "predict") {
    t = std::make_unique<PredictTask>(task, node);
  } else if (node.type == "estimate") {
    t = std::make_unique<EstimateTask>(task, node);
  } else if (node.type == "cluster") {
    t = std::make_unique<ClusterTask>(task, node);
  } else if (node.type == "merge") {
    t = std::make_unique<MergeTask>(task, node);
  } else if (node.type == "tap") {
    // A tap re-publishes another application's flow under this recipe's
    // namespace (secondary use); the behaviour is merge's re-emit.
    t = std::make_unique<MergeTask>(task, node);
  } else {
    return Err(Errc::kUnsupported, "unknown task type: " + node.type);
  }

  if (!task.input_topics.empty()) {
    if (clients_.empty()) {
      return Err(Errc::kState,
                 "module '" + name() + "' is not connected to a broker");
    }
    for (std::size_t i = 0; i < task.input_topics.size(); ++i) {
      const int hint = i < task.input_brokers.size() ? task.input_brokers[i]
                                                     : -1;
      const int qos_hint = i < task.input_qos.size() ? task.input_qos[i] : -1;
      subscribe_on(broker_index_for(task.input_topics[i], hint),
                   task.input_topics[i], qos_for(qos_hint));
    }
  }
  if (!task.output_topic.empty() && !local_output && clients_.empty()) {
    return Err(Errc::kState,
               "module '" + name() + "' is not connected to a broker");
  }
  counters_.add("tasks_deployed");
  tasks_.push_back(
      DeployedTask{std::shared_ptr<FlowTask>(std::move(t)), local_output});
  audit_invariants();
  return {};
}

Status NeuronModule::remove_task(const std::string& output_topic) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(),
                         [&](const DeployedTask& t) {
                           return t.task->spec().output_topic == output_topic;
                         });
  if (it == tasks_.end()) {
    return Err(Errc::kNotFound,
               "no task with output topic '" + output_topic + "' on '" +
                   name() + "'");
  }
  const bool was_sensor = dynamic_cast<SensorTask*>(it->task.get()) != nullptr;
  const std::vector<std::string> dropped_filters =
      it->task->spec().input_topics;
  const bool timers_running = !sensor_timers_.empty();
  if (was_sensor) stop_sensors();  // timers hold raw task pointers
  tasks_.erase(it);
  // Balance the ledger before re-arming: start_sensors() re-checks the
  // module invariants, which compare this counter against tasks_.size().
  counters_.add("tasks_removed");
  if (was_sensor && timers_running) start_sensors();

  // Unsubscribe filters no surviving task or watch still needs.
  std::vector<std::string> to_unsubscribe;
  for (const auto& filter : dropped_filters) {
    bool still_needed = false;
    for (const auto& t : tasks_) {
      const auto& ins = t.task->spec().input_topics;
      if (std::find(ins.begin(), ins.end(), filter) != ins.end()) {
        still_needed = true;
        break;
      }
    }
    for (const auto& [wf, _] : watches_) {
      if (wf == filter) still_needed = true;
    }
    if (!still_needed) to_unsubscribe.push_back(filter);
  }
  if (!to_unsubscribe.empty()) {
    // Unsubscribe on every broker; brokers without the subscription just
    // acknowledge (UNSUBACK is unconditional in MQTT 3.1.1).
    for (auto& b : clients_) {
      if (!b.client->connected()) continue;
      if (auto s = b.client->unsubscribe(to_unsubscribe); !s) {
        IFOT_LOG(kWarn, kLog) << name() << ": unsubscribe failed: "
                              << s.error().to_string();
      }
    }
  }
  audit_invariants();
  return {};
}

// audit: exempt(publishes a retained discovery record via the MQTT client;
// no module state is touched)
void NeuronModule::announce_flow(const recipe::Task& task,
                                 const recipe::RecipeNode& node) {
  if (client() == nullptr) return;
  const std::string topic =
      "ifot/directory/" + task.output_topic.substr(5);  // strip "ifot/"
  std::string payload = "topic=" + task.output_topic +
                        ";type=" + node.type + ";module=" + name();
  if (task.partition_count > 1) {
    payload += ";partitions=" + std::to_string(task.partition_count);
  }
  if (fed_map_ != nullptr && clients_.size() > 1) {
    // Federated fabrics record which broker carries the flow so tappers
    // subscribe on the owning shard instead of probing all K brokers.
    payload += ";shard=" + std::to_string(broker_index_for(
                               task.output_topic, task.output_broker));
  }
  (void)client()->publish(topic, to_bytes(payload), mqtt::QoS::kAtMostOnce,
                          /*retain=*/true);
}

// audit: exempt(clears the retained discovery record via the MQTT client;
// no module state is touched)
void NeuronModule::retract_flow(const recipe::Task& task) {
  if (client() == nullptr) return;
  const std::string topic =
      "ifot/directory/" + task.output_topic.substr(5);
  (void)client()->publish(topic, {}, mqtt::QoS::kAtMostOnce, /*retain=*/true);
}

void NeuronModule::start_sensors() {
  stop_sensors();  // idempotent: re-arming replaces existing timers
  for (const auto& t : tasks_) {
    if (dynamic_cast<SensorTask*>(t.task.get()) == nullptr) continue;
    // Aliasing shared_ptr keeps the task alive while timer work is queued.
    auto sensor = std::static_pointer_cast<SensorTask>(t.task);
    auto timer = std::make_unique<sim::PeriodicTimer>(
        sim_, sensor->rate_period(), [this, sensor] {
          // The tick instant is the sensing moment; reading the sensor
          // costs CPU before the sample can be published.
          const SimTime sensed_at = sim_.now();
          cpu_.execute(config_.costs.sensor_read, [this, sensor, sensed_at] {
            sensor->tick(*this, sensed_at);
          });
        });
    timer->start(sensor->rate_period());
    sensor_timers_.push_back(std::move(timer));
  }
  audit_invariants();
}

void NeuronModule::stop_sensors() {
  sensor_timers_.clear();
  audit_invariants();
}

// ---- TaskContext -----------------------------------------------------------

bool NeuronModule::task_is_local_output(const recipe::Task& spec) const {
  // Task ids are per-recipe; the output topic embeds recipe, node and
  // shard, so it uniquely identifies the deployed task on this module.
  for (const auto& t : tasks_) {
    if (t.task->spec().output_topic == spec.output_topic) {
      return t.local_output;
    }
  }
  return false;
}

// audit: exempt(hot path; may legally run after remove_task()/fail() via
// queued CPU work keeping the task alive -- transport_send drops traffic
// from failed modules, and the ledger invariants are audited at every
// deploy/remove)
void NeuronModule::emit_sample(const recipe::Task& spec, device::Sample s) {
  counters_.add("samples_emitted");
  // Partitioned routing: each sample rides its own partition topic so the
  // broker fans it out to exactly one consumer shard.
  std::string topic = spec.output_topic;
  if (spec.partition_count > 1) {
    topic += "/p" + std::to_string(s.seq % spec.partition_count);
  }
  if (task_is_local_output(spec)) {
    counters_.add("local_dispatches");
    dispatch_local(topic, FlowPayload{std::move(s)});
    return;
  }
  // Wrap the encoded sample once; every queueing/retry stage downstream
  // shares the same immutable buffer.
  SharedPayload payload(encode_flow(s));
  const SimDuration cost =
      config_.costs.publish +
      config_.costs.per_byte * static_cast<SimDuration>(payload.size());
  publish_flow(topic, spec.output_broker, spec.output_qos,
               spec.retained_output, std::move(payload), cost);
}

// audit: exempt(hot path; same lifetime rules as emit_sample)
void NeuronModule::emit_model(const recipe::Task& spec, Bytes model) {
  counters_.add("models_emitted");
  // A partitioned producer's models ride the /model side-channel so every
  // consumer shard receives them.
  std::string topic = spec.output_topic;
  if (spec.partition_count > 1) topic += "/model";
  if (task_is_local_output(spec)) {
    counters_.add("local_dispatches");
    dispatch_local(topic, FlowPayload{ModelMsg{spec.name, std::move(model)}});
    return;
  }
  const ModelMsg msg{spec.name, std::move(model)};
  SharedPayload payload(encode_flow(msg));
  const SimDuration cost =
      config_.costs.model_io + config_.costs.publish +
      config_.costs.per_byte * static_cast<SimDuration>(payload.size());
  // Models are always retained: a consumer joining late (or failing
  // over) receives the latest model immediately instead of waiting for
  // the next publish interval.
  publish_flow(topic, spec.output_broker, spec.output_qos, /*retain=*/true,
               std::move(payload), cost);
}

void NeuronModule::publish_flow(const std::string& topic, int broker_hint,
                                int qos_hint, bool retain,
                                SharedPayload payload, SimDuration cost) {
  if (clients_.empty()) return;
  const std::size_t index = broker_index_for(topic, broker_hint);
  const mqtt::QoS qos = qos_for(qos_hint);
  cpu_.execute(cost, [this, index, topic, qos, retain,
                      payload = std::move(payload)] {
    auto& b = clients_[index];
    if (auto st = b.client->publish(topic, payload, qos, retain); !st) {
      IFOT_LOG(kWarn, kLog) << name()
                            << ": publish failed: " << st.error().to_string();
      counters_.add("publish_failures");
    }
  });
}

// audit: exempt(observer notification; mutates only a counter)
void NeuronModule::report_completion(const recipe::Task& spec,
                                     const device::Sample& s) {
  counters_.add("completions");
  if (hook_) hook_(spec, s, sim_.now());
}

// ---- flow dispatch ---------------------------------------------------------

void NeuronModule::fail() {
  failed_ = true;
  stop_sensors();
  // Frames queued but not yet flushed die with the crash: a silent
  // failure must not emit one last batch.
  for (auto& [peer, tx] : pending_tx_) {
    tx.frames.clear();
    if (tx.scheduled) {
      sim_.cancel(tx.flush_event);
      tx.scheduled = false;
    }
  }
  counters_.add("failures_injected");
  audit_invariants();
}

Status NeuronModule::watch(const std::string& filter, WatchHandler handler) {
  if (clients_.empty()) {
    return Err(Errc::kState,
               "module '" + name() + "' is not connected to a broker");
  }
  if (!mqtt::valid_topic_filter(filter)) {
    return Err(Errc::kInvalidArgument, "invalid filter: " + filter);
  }
  watches_.emplace_back(filter, std::move(handler));
  // Watch on every broker: management traffic lives on the primary, but
  // wildcard watches (e.g. "$SYS/#") should see all brokers.
  for (std::size_t bi = 0; bi < clients_.size(); ++bi) {
    subscribe_on(bi, filter, config_.flow_qos);
  }
  audit_invariants();
  return {};
}

Status NeuronModule::watch_shard(const std::string& filter,
                                 WatchHandler handler) {
  if (clients_.empty()) {
    return Err(Errc::kState,
               "module '" + name() + "' is not connected to a broker");
  }
  // Share subscriptions ride the full "$share/<group>/<filter>" string on
  // the SUBSCRIBE, but deliveries arrive on the *inner* topic — match the
  // watch against the inner filter.
  std::string match_filter = filter;
  if (mqtt::is_share_filter(filter)) {
    auto parsed = mqtt::parse_share_filter(filter);
    if (!parsed) return parsed.error();
    match_filter = std::string(parsed.value().filter);
  } else if (!mqtt::valid_topic_filter(filter)) {
    return Err(Errc::kInvalidArgument, "invalid filter: " + filter);
  }
  const std::size_t index = broker_index_for(match_filter, -1);
  watches_.emplace_back(match_filter, std::move(handler));
  subscribe_on(index, filter, config_.flow_qos);
  audit_invariants();
  return {};
}

void NeuronModule::on_flow_message(const mqtt::Publish& p) {
  // Management-plane watches see the raw payload (status strings, $SYS
  // counters) - these are not Sample-encoded flows.
  for (const auto& [filter, handler] : watches_) {
    if (mqtt::topic_matches(filter, p.topic)) handler(p.topic, p.payload.bytes());
  }
  // Which deployed tasks subscribe to this topic?
  std::vector<std::shared_ptr<FlowTask>> consumers;
  for (const auto& t : tasks_) {
    for (const auto& filter : t.task->spec().input_topics) {
      if (mqtt::topic_matches(filter, p.topic)) {
        consumers.push_back(t.task);
        break;
      }
    }
  }
  if (consumers.empty()) return;  // watch-only traffic

  auto payload = decode_flow(BytesView(p.payload));
  if (!payload) {
    IFOT_LOG(kWarn, kLog) << name() << ": undecodable flow on '" << p.topic
                          << "': " << payload.error().to_string();
    counters_.add("bad_flow_messages");
    return;
  }
  // Load shedding: drop samples (never models) when the CPU is drowning.
  if (config_.max_backlog > 0 &&
      std::holds_alternative<device::Sample>(payload.value()) &&
      cpu_.backlog() > config_.max_backlog) {
    counters_.add("load_shed");
    return;
  }
  // Backlog bound: with shedding configured, sample processing is only
  // admitted while the CPU backlog is at or under the bound -- the shed
  // branch above is the sole gate keeping latency bounded. (Checked once
  // at admission: the consumers' own enqueues below may legally carry the
  // backlog past the bound until the next message is gated.)
  IFOT_AUDIT_ASSERT(config_.max_backlog <= 0 ||
                        !std::holds_alternative<device::Sample>(
                            payload.value()) ||
                        cpu_.backlog() <= config_.max_backlog,
                    "sample admitted past the shedding bound on '" +
                        name() + "'");
  for (const auto& task : consumers) {
    if (const auto* s = std::get_if<device::Sample>(&payload.value())) {
      if (!task->accepts(*s)) continue;
    }
    counters_.add("flow_dispatched");
    const SimDuration cost =
        config_.costs.deliver + task->cost(config_.costs, payload.value());
    cpu_.execute(cost, [this, task, pl = payload.value()] {
      task->process(*this, pl);
    });
  }
}

void NeuronModule::dispatch_local(const std::string& topic,
                                  const FlowPayload& payload) {
  for (const auto& t : tasks_) {
    bool match = false;
    for (const auto& filter : t.task->spec().input_topics) {
      if (mqtt::topic_matches(filter, topic)) {
        match = true;
        break;
      }
    }
    if (!match) continue;
    if (const auto* s = std::get_if<device::Sample>(&payload)) {
      if (!t.task->accepts(*s)) continue;
    }
    counters_.add("flow_dispatched_local");
    const std::shared_ptr<FlowTask> task = t.task;
    const SimDuration cost = config_.costs.local_dispatch +
                             task->cost(config_.costs, payload);
    cpu_.execute(cost,
                 [this, task, pl = payload] { task->process(*this, pl); });
  }
}

}  // namespace ifot::node
