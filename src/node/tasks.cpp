#include "node/tasks.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/audit.hpp"
#include "common/log.hpp"
#include "ml/mix.hpp"
#include "ml/model_io.hpp"

namespace ifot::node {
namespace {
constexpr const char* kLog = "node.task";
}

ml::FeatureId hashed_feature_id(std::string_view name) {
  // FNV-1a 32-bit.
  std::uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  return h;
}

ml::FeatureVector features_of(const device::Sample& s) {
  ml::FeatureVector fv;
  for (const auto& [name, value] : s.fields) {
    fv.set(hashed_feature_id(name), value);
  }
  return fv;
}

SimDuration FlowTask::cost(const CostModel& costs,
                           const FlowPayload& /*payload*/) const {
  const std::string& type = node_.type;
  if (type == "anomaly") return costs.anomaly;
  if (type == "cluster") return costs.cluster;
  if (type == "estimate") return costs.estimate;
  if (type == "actuator") return costs.actuate;
  return costs.stream_op;  // window / filter / map / merge
}

// ---- SensorTask ------------------------------------------------------------

SensorTask::SensorTask(recipe::Task spec, recipe::RecipeNode node,
                       std::unique_ptr<device::SensorModel> model)
    : FlowTask(std::move(spec), std::move(node)), model_(std::move(model)) {
  assert(model_);
}

SimDuration SensorTask::rate_period() const {
  const double rate = node_.num("rate_hz", 1.0);
  return static_cast<SimDuration>(static_cast<double>(kSecond) / rate);
}

void SensorTask::tick(TaskContext& ctx, SimTime sensed_at) {
  device::Sample s = model_->sample(sensed_at);
  s.source = node_.name;
  s.seq = seq_++;
  s.sensed_at = sensed_at;
  ctx.emit_sample(spec_, std::move(s));
}

void SensorTask::process(TaskContext& /*ctx*/, const FlowPayload& /*p*/) {
  // Sources have no inputs; reaching here is a wiring bug.
  IFOT_LOG(kWarn, kLog) << "sensor task '" << spec_.name
                        << "' received an inbound flow message";
}

// ---- WindowTask ------------------------------------------------------------

WindowTask::WindowTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      size_(static_cast<std::size_t>(node_.num("size", 8))),
      slide_(static_cast<std::size_t>(node_.num("slide", 0))),
      span_(from_millis(node_.num("span_ms", 0))),
      aggregate_(node_.str("aggregate", "mean")) {
  if (slide_ == 0) slide_ = size_;  // tumbling by default
  // A zero-size count window would flush nothing per slide and grow the
  // buffer without bound; event-time mode (span_ > 0) ignores size_.
  IFOT_AUDIT_ASSERT(span_ > 0 || size_ >= 1,
                    "window '" + spec_.name + "' has size 0");
}

void WindowTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  if (span_ > 0) {
    // Event-time tumbling: a sample belonging to a later bucket closes
    // the current one.
    const std::int64_t bucket = s->sensed_at / span_;
    if (bucket_ >= 0 && bucket != bucket_ && !window_.empty()) {
      // Flush the whole bucket (slide == size in event-time mode).
      slide_ = window_.size();
      flush(ctx);
    }
    bucket_ = bucket;
    window_.push_back(*s);
    return;
  }
  window_.push_back(*s);
  if (window_.size() >= size_) flush(ctx);
  // Count-based windows are bounded: flush() drains at least `slide_`
  // samples whenever the buffer reaches `size_`.
  IFOT_AUDIT_ASSERT(window_.size() < size_ + slide_,
                    "window '" + spec_.name + "' buffer exceeded its bound");
}

void WindowTask::flush(TaskContext& ctx) {
  // front()/back() below require a non-empty window; both call sites
  // only flush after buffering at least one sample.
  IFOT_AUDIT_ASSERT(!window_.empty(),
                    "flush of empty window '" + spec_.name + "'");
  device::Sample out;
  out.source = spec_.name;
  out.seq = out_seq_++;
  // Latency accounting uses the *oldest* contributing sample so window
  // buffering shows up in end-to-end delay.
  out.sensed_at = window_.front().sensed_at;
  out.label = window_.back().label;

  // Aggregate per field name over the window.
  std::vector<std::string> names;
  for (const auto& w : window_) {
    for (const auto& [k, _] : w.fields) {
      if (std::find(names.begin(), names.end(), k) == names.end()) {
        names.push_back(k);
      }
    }
  }
  for (const auto& name : names) {
    double acc = aggregate_ == "min" ? HUGE_VAL
                 : aggregate_ == "max" ? -HUGE_VAL
                                       : 0.0;
    std::size_t n = 0;
    for (const auto& w : window_) {
      bool has = false;
      double v = 0;
      for (const auto& [k, fv] : w.fields) {
        if (k == name) {
          has = true;
          v = fv;
          break;
        }
      }
      if (!has) continue;
      ++n;
      if (aggregate_ == "min") {
        acc = std::min(acc, v);
      } else if (aggregate_ == "max") {
        acc = std::max(acc, v);
      } else if (aggregate_ == "last") {
        acc = v;
      } else {  // mean / sum
        acc += v;
      }
    }
    if (n == 0) continue;
    if (aggregate_ == "mean") acc /= static_cast<double>(n);
    out.set_field(name, acc);
  }
  // Slide the window.
  for (std::size_t i = 0; i < slide_ && !window_.empty(); ++i) {
    window_.pop_front();
  }
  ctx.emit_sample(spec_, std::move(out));
}

// ---- FilterTask ------------------------------------------------------------

FilterTask::FilterTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      field_(node_.str("field", "value")),
      op_(node_.str("op", "gt")),
      value_(node_.num("value", 0)) {}

void FilterTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  const double v = s->field(field_, 0);
  bool pass = false;
  if (op_ == "lt") pass = v < value_;
  else if (op_ == "le") pass = v <= value_;
  else if (op_ == "gt") pass = v > value_;
  else if (op_ == "ge") pass = v >= value_;
  else if (op_ == "eq") pass = v == value_;
  else if (op_ == "ne") pass = v != value_;
  if (!pass) return;
  device::Sample out = *s;
  out.source = spec_.name;
  ctx.emit_sample(spec_, std::move(out));
}

// ---- MapTask ---------------------------------------------------------------

MapTask::MapTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      field_(node_.str("field", "value")),
      out_field_(node_.str("out_field", node_.str("field", "value"))),
      scale_(node_.num("scale", 1.0)),
      offset_(node_.num("offset", 0.0)) {}

void MapTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  device::Sample out = *s;
  out.source = spec_.name;
  out.set_field(out_field_, s->field(field_, 0) * scale_ + offset_);
  ctx.emit_sample(spec_, std::move(out));
}

// ---- AnomalyTask -----------------------------------------------------------

AnomalyTask::AnomalyTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      threshold_(node_.num("threshold", 3.0)),
      emit_all_(node_.str("emit", "all") == "all") {
  if (node_.str("algorithm", "zscore") == "lof") {
    lof_.emplace(static_cast<std::size_t>(node_.num("k", 10)),
                 static_cast<std::size_t>(node_.num("window", 256)));
  } else {
    zscore_.emplace(static_cast<std::size_t>(node_.num("min_samples", 10)));
  }
}

void AnomalyTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  const auto fv = features_of(*s);
  const double score = zscore_ ? zscore_->add(fv) : lof_->add(fv);
  const bool anomalous = score > threshold_;
  if (!emit_all_ && !anomalous) {
    ctx.report_completion(spec_, *s);
    return;
  }
  device::Sample out = *s;
  out.source = spec_.name;
  out.set_field("score", score);
  out.label = anomalous ? "anomaly" : "normal";
  ctx.report_completion(spec_, out);
  ctx.emit_sample(spec_, std::move(out));
}

// ---- TrainTask -------------------------------------------------------------

TrainTask::TrainTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      classifier_(ml::make_classifier(node_.str("algorithm", "arow"))),
      publish_every_(
          static_cast<std::uint64_t>(node_.num("publish_every", 16))),
      mix_(node_.flag("mix", false) && spec_.shard_count > 1) {
  assert(classifier_);  // validate() restricts algorithm names
}

SimDuration TrainTask::cost(const CostModel& costs,
                            const FlowPayload& payload) const {
  if (std::holds_alternative<ModelMsg>(payload)) {
    return costs.model_io *
           static_cast<SimDuration>(std::max<std::size_t>(
               peer_models_.size() + 2, 1));  // decode + MIX of all models
  }
  return costs.train;
}

void TrainTask::process(TaskContext& ctx, const FlowPayload& payload) {
  if (const auto* m = std::get_if<ModelMsg>(&payload)) {
    // Managing-class cooperation: adopt the average of our model and the
    // sibling shards' latest models.
    if (!mix_ || m->producer == spec_.name) return;
    auto decoded = ml::ModelCodec::decode_linear(BytesView(m->model));
    if (!decoded) {
      IFOT_LOG(kWarn, kLog) << "train '" << spec_.name
                            << "': bad peer model from " << m->producer;
      return;
    }
    peer_models_[m->producer] = std::move(decoded).value();
    std::vector<const ml::LinearModel*> models;
    models.reserve(peer_models_.size() + 1);
    models.push_back(&classifier_->model());
    for (const auto& [_, peer] : peer_models_) models.push_back(&peer);
    ml::LinearModel mixed =
        ml::mix_models(std::span<const ml::LinearModel* const>(models));
    // Jubatus resets per-worker diffs after a MIX; approximate that by
    // carrying the average count instead of the sum, so one shard's
    // history cannot dominate future mixes.
    mixed.set_update_count(mixed.update_count() / models.size());
    classifier_->set_model(std::move(mixed));
    ++mixes_applied_;
    return;
  }
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  if (s->label.empty()) return;  // unsupervised samples are not trainable
  classifier_->train(features_of(*s), s->label);
  ++trained_;
  // "Sensing to Training" completes here (paper Table II).
  ctx.report_completion(spec_, *s);
  if (publish_every_ > 0 && trained_ % publish_every_ == 0) {
    ctx.emit_model(spec_, ml::ModelCodec::encode(classifier_->model()));
  }
}

// ---- PredictTask -----------------------------------------------------------

PredictTask::PredictTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)) {}

SimDuration PredictTask::cost(const CostModel& costs,
                              const FlowPayload& payload) const {
  if (const auto* m = std::get_if<ModelMsg>(&payload)) {
    // Decode + (when several producers) MIX.
    const auto n = static_cast<SimDuration>(std::max<std::size_t>(
        models_.size() + (models_.count(m->producer) == 0 ? 1 : 0), 1));
    return costs.model_io * n;
  }
  return costs.predict;
}

void PredictTask::process(TaskContext& ctx, const FlowPayload& payload) {
  if (const auto* m = std::get_if<ModelMsg>(&payload)) {
    auto decoded = ml::ModelCodec::decode_linear(BytesView(m->model));
    if (!decoded) {
      IFOT_LOG(kWarn, kLog) << "predict '" << spec_.name
                            << "': bad model from " << m->producer << ": "
                            << decoded.error().to_string();
      return;
    }
    models_[m->producer] = std::move(decoded).value();
    ++model_updates_;
    // Consumer-side MIX: average all producers' latest models (Jubatus
    // MIX semantics; see DESIGN.md §5).
    if (models_.size() == 1) {
      current_ = models_.begin()->second;
    } else {
      std::vector<const ml::LinearModel*> ptrs;
      ptrs.reserve(models_.size());
      for (const auto& [_, model] : models_) ptrs.push_back(&model);
      current_ = ml::mix_models(
          std::span<const ml::LinearModel* const>(ptrs));
    }
    return;
  }
  const auto& s = std::get<device::Sample>(payload);
  const auto fv = features_of(s);
  device::Sample out = s;
  out.source = spec_.name;
  out.seq = out_seq_++;
  const std::size_t best = current_.argmax(fv);
  if (best != SIZE_MAX) {
    out.label = current_.label_name(best);
    out.set_field("confidence", current_.scores(fv)[best]);
    // When the inbound sample carries ground truth (labelled evaluation
    // streams), record correctness so accuracy can be measured online.
    if (!s.label.empty()) {
      out.set_field("correct", out.label == s.label ? 1.0 : 0.0);
    }
  } else {
    out.label.clear();  // no model yet
  }
  // "Sensing to Predicting" completes here (paper Table III).
  ctx.report_completion(spec_, out);
  ctx.emit_sample(spec_, std::move(out));
}

// ---- EstimateTask ----------------------------------------------------------

EstimateTask::EstimateTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      regression_(node_.num("c", 1.0), node_.num("epsilon", 0.1)),
      target_(node_.str("target", "target")) {}

void EstimateTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  // Features exclude the target so the model cannot cheat.
  ml::FeatureVector fv;
  bool has_target = false;
  double target = 0;
  for (const auto& [name, value] : s->fields) {
    if (name == target_) {
      has_target = true;
      target = value;
      continue;
    }
    fv.set(hashed_feature_id(name), value);
  }
  device::Sample out = *s;
  out.source = spec_.name;
  out.set_field("estimate", regression_.estimate(fv));
  if (has_target) regression_.train(fv, target);
  ctx.report_completion(spec_, out);
  ctx.emit_sample(spec_, std::move(out));
}

// ---- ClusterTask -----------------------------------------------------------

ClusterTask::ClusterTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)),
      kmeans_(static_cast<std::size_t>(node_.num("k", 4))) {}

void ClusterTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  device::Sample out = *s;
  out.source = spec_.name;
  out.set_field("cluster",
                static_cast<double>(kmeans_.add(features_of(*s))));
  ctx.report_completion(spec_, out);
  ctx.emit_sample(spec_, std::move(out));
}

// ---- MergeTask -------------------------------------------------------------

MergeTask::MergeTask(recipe::Task spec, recipe::RecipeNode node)
    : FlowTask(std::move(spec), std::move(node)) {}

void MergeTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  device::Sample out = *s;
  out.source = spec_.name;
  out.seq = out_seq_++;
  ctx.emit_sample(spec_, std::move(out));
}

// ---- ActuatorTask ----------------------------------------------------------

ActuatorTask::ActuatorTask(recipe::Task spec, recipe::RecipeNode node,
                           device::ActuatorSink* sink)
    : FlowTask(std::move(spec), std::move(node)), sink_(sink) {
  assert(sink_ != nullptr);
}

void ActuatorTask::process(TaskContext& ctx, const FlowPayload& payload) {
  const auto* s = std::get_if<device::Sample>(&payload);
  if (s == nullptr) return;
  sink_->apply(ctx.now(), *s);
  ctx.report_completion(spec_, *s);
}

}  // namespace ifot::node
