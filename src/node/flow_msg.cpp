#include "node/flow_msg.hpp"

namespace ifot::node {
namespace {
constexpr std::uint8_t kTagSample = 0;
constexpr std::uint8_t kTagModel = 1;
}  // namespace

Bytes encode_flow(const device::Sample& s) {
  Bytes out;
  out.push_back(kTagSample);
  device::encode_into(s, out);  // frame + body in one buffer, no copy
  return out;
}

Bytes encode_flow(const ModelMsg& m) {
  Bytes out;
  BinaryWriter w(out);
  w.u8(kTagModel);
  w.str(m.producer);
  w.varint(m.model.size());
  w.raw(m.model);
  return out;
}

Result<FlowPayload> decode_flow(BytesView data) {
  if (data.empty()) return Err(Errc::kParse, "empty flow message");
  const std::uint8_t tag = data[0];
  if (tag == kTagSample) {
    auto s = device::decode_sample(data.subspan(1));
    if (!s) return s.error();
    return FlowPayload{std::move(s).value()};
  }
  if (tag == kTagModel) {
    BinaryReader r(data.subspan(1));
    ModelMsg m;
    auto producer = r.str();
    if (!producer) return producer.error();
    m.producer = std::move(producer).value();
    auto len = r.varint();
    if (!len) return len.error();
    auto body = r.raw(static_cast<std::size_t>(len.value()));
    if (!body) return body.error();
    m.model = std::move(body).value();
    if (!r.at_end()) return Err(Errc::kParse, "trailing bytes in model msg");
    return FlowPayload{std::move(m)};
  }
  return Err(Errc::kParse, "unknown flow tag");
}

}  // namespace ifot::node
