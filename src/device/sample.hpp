// The unified sample format flowing through the middleware.
//
// The Sensor/Actuator integration function (paper §IV-C.4) "abstracts the
// hardware and the communication interface of the sensor/actuator" and
// converts readings into MQTT packets — Sample is that abstraction: every
// flow in the fabric is a stream of encoded Samples, regardless of which
// sensor produced it or which operator transformed it.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/types.hpp"

namespace ifot::device {

/// One sensor reading / processed record.
struct Sample {
  /// Name of the producing source (sensor name or operator task name).
  std::string source;
  /// Per-source sequence number (used for shard partitioning).
  std::uint64_t seq = 0;
  /// Virtual time the originating *sensing* happened. Preserved across
  /// operators so end-to-end sensing->X delays can be measured (paper
  /// Tables II/III measure from the Sensing step).
  SimTime sensed_at = 0;
  /// Named numeric fields (e.g. {"ax",0.1},{"ay",-0.4},{"az",9.8}).
  std::vector<std::pair<std::string, double>> fields;
  /// Optional ground-truth label for supervised training streams.
  std::string label;

  [[nodiscard]] double field(const std::string& name, double fallback) const;
  void set_field(const std::string& name, double value);

  friend bool operator==(const Sample&, const Sample&) = default;
};

/// Binary codec for samples (what actually rides in MQTT payloads).
Bytes encode(const Sample& s);
/// Appends the encoded sample to `out` (lets callers frame a sample
/// behind a header without an intermediate buffer copy).
void encode_into(const Sample& s, Bytes& out);
Result<Sample> decode_sample(BytesView data);

}  // namespace ifot::device
