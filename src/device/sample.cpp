#include "device/sample.hpp"

namespace ifot::device {

double Sample::field(const std::string& name, double fallback) const {
  for (const auto& [k, v] : fields) {
    if (k == name) return v;
  }
  return fallback;
}

void Sample::set_field(const std::string& name, double value) {
  for (auto& [k, v] : fields) {
    if (k == name) {
      v = value;
      return;
    }
  }
  fields.emplace_back(name, value);
}

Bytes encode(const Sample& s) {
  Bytes out;
  encode_into(s, out);
  return out;
}

void encode_into(const Sample& s, Bytes& out) {
  BinaryWriter w(out);
  w.str(s.source);
  w.varint(s.seq);
  w.i64(s.sensed_at);
  w.varint(s.fields.size());
  for (const auto& [k, v] : s.fields) {
    w.str(k);
    w.f64(v);
  }
  w.str(s.label);
}

Result<Sample> decode_sample(BytesView data) {
  BinaryReader r(data);
  Sample s;
  auto source = r.str();
  if (!source) return source.error();
  s.source = std::move(source).value();
  auto seq = r.varint();
  if (!seq) return seq.error();
  s.seq = seq.value();
  auto at = r.i64();
  if (!at) return at.error();
  s.sensed_at = at.value();
  auto n = r.varint();
  if (!n) return n.error();
  if (n.value() > 4096) return Err(Errc::kParse, "absurd field count");
  s.fields.reserve(static_cast<std::size_t>(n.value()));
  for (std::uint64_t i = 0; i < n.value(); ++i) {
    auto k = r.str();
    if (!k) return k.error();
    auto v = r.f64();
    if (!v) return v.error();
    s.fields.emplace_back(std::move(k).value(), v.value());
  }
  auto label = r.str();
  if (!label) return label.error();
  s.label = std::move(label).value();
  if (!r.at_end()) return Err(Errc::kParse, "trailing bytes in sample");
  return s;
}

}  // namespace ifot::device
