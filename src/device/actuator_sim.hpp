// Simulated actuators — the sinks of the fabric (ceiling lights, air
// conditioners, alarms in the paper's home-appliance scenario, §III-A.2).
// An actuator records every command it receives with its virtual
// timestamp so tests and benches can assert on end-to-end behaviour.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "device/sample.hpp"

namespace ifot::device {

/// One command applied to an actuator.
struct ActuationRecord {
  SimTime at = 0;          ///< when the command was applied
  SimTime sensed_at = 0;   ///< origin sensing time of the triggering sample
  std::string source;      ///< producing task
  double value = 0;        ///< primary command value
  std::string label;       ///< classification result, if any
};

/// Records commands; models a fixed actuation latency (relay/servo).
class ActuatorSink {
 public:
  explicit ActuatorSink(std::string name,
                        SimDuration actuation_latency = from_millis(2))
      : name_(std::move(name)), latency_(actuation_latency) {}

  /// Applies the sample as a command at time `now`; the effective record
  /// timestamp includes the actuation latency.
  void apply(SimTime now, const Sample& s);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<ActuationRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::size_t count() const { return records_.size(); }
  [[nodiscard]] SimDuration latency() const { return latency_; }
  void clear() { records_.clear(); }

 private:
  std::string name_;
  SimDuration latency_;
  std::vector<ActuationRecord> records_;
};

}  // namespace ifot::device
