#include "device/sensor_sim.hpp"

#include <algorithm>
#include <cmath>

namespace ifot::device {

Sample WaveformSensor::sample(SimTime now) {
  constexpr double kTwoPi = 6.283185307179586;
  const double phase =
      kTwoPi * static_cast<double>(now % cfg_.period) /
      static_cast<double>(cfg_.period);
  Sample s;
  s.fields.reserve(1);
  s.set_field(cfg_.field, cfg_.offset + cfg_.amplitude * std::sin(phase) +
                              rng_.normal(0, cfg_.noise));
  return s;
}

Sample RandomWalkSensor::sample(SimTime /*now*/) {
  value_ += rng_.normal(0, cfg_.step);
  value_ = std::clamp(value_, cfg_.min, cfg_.max);
  Sample s;
  s.fields.reserve(1);
  s.set_field(cfg_.field, value_);
  return s;
}

std::vector<ActivitySensor::State> ActivitySensor::default_states() {
  return {
      {"walking", {0.3, 0.2, 9.8}, {1.2, 1.1, 0.8}, 0.95},
      {"sitting", {0.0, 0.0, 9.8}, {0.1, 0.1, 0.1}, 0.97},
      {"lying", {0.0, 9.8, 0.5}, {0.1, 0.2, 0.1}, 0.97},
      {"falling", {4.0, 5.0, 3.0}, {3.0, 3.0, 3.0}, 0.30},
  };
}

Sample ActivitySensor::sample(SimTime /*now*/) {
  const State& st = states_[state_];
  Sample s;
  s.fields.reserve(3);
  static const char* kAxes[3] = {"ax", "ay", "az"};
  for (int i = 0; i < 3; ++i) {
    s.set_field(kAxes[i], rng_.normal(st.mean[i], st.stddev[i]));
  }
  s.label = st.label;
  // Advance the chain after emitting.
  if (!rng_.chance(st.stay_prob) && states_.size() > 1) {
    std::size_t next = rng_.below(states_.size() - 1);
    if (next >= state_) ++next;
    state_ = next;
  }
  return s;
}

Sample ConstantSensor::sample(SimTime /*now*/) {
  Sample s;
  s.fields.reserve(1);
  s.set_field(field_, value_ + rng_.normal(0, noise_));
  return s;
}

Result<std::unique_ptr<SensorModel>> make_sensor_model(
    const std::string& kind, Rng rng) {
  if (kind == "waveform") {
    return std::unique_ptr<SensorModel>(
        std::make_unique<WaveformSensor>(WaveformSensor::Config{}, rng));
  }
  if (kind == "random_walk") {
    return std::unique_ptr<SensorModel>(
        std::make_unique<RandomWalkSensor>(RandomWalkSensor::Config{}, rng));
  }
  if (kind == "activity") {
    return std::unique_ptr<SensorModel>(std::make_unique<ActivitySensor>(
        ActivitySensor::default_states(), rng));
  }
  if (kind == "constant") {
    return std::unique_ptr<SensorModel>(
        std::make_unique<ConstantSensor>("value", 1.0, 0.05, rng));
  }
  return Err(Errc::kNotFound, "unknown sensor model: " + kind);
}

}  // namespace ifot::device
