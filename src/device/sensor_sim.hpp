// Synthetic sensor models — the substitute for physical sensors
// (BLE/ZigBee/EnOcean devices in the paper's assumed environment, §IV-A).
// Each model produces one Sample per sampling tick; the node runtime
// drives it at the recipe-configured rate.
//
// Models:
//  * waveform  — sine + Gaussian noise (illuminance/sound-style signals);
//  * random_walk — bounded random walk (temperature-style signals);
//  * activity  — Markov chain over labelled activity states with per-state
//    Gaussian 3-axis emissions (the elderly-monitoring accelerometer:
//    walking / sitting / lying / falling) — produces labelled samples for
//    supervised training streams;
//  * constant  — fixed value + noise (baseline/control).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "device/sample.hpp"

namespace ifot::device {

/// Interface of a simulated sensor.
class SensorModel {
 public:
  virtual ~SensorModel() = default;

  /// Produces the sample for virtual time `now`. Implementations fill
  /// fields and (when applicable) label; seq/source/sensed_at are set by
  /// the caller.
  virtual Sample sample(SimTime now) = 0;

  /// Model name (diagnostics).
  [[nodiscard]] virtual const char* kind() const = 0;
};

/// sine wave + noise: value = offset + amplitude*sin(2*pi*t/period) + N(0,noise).
class WaveformSensor final : public SensorModel {
 public:
  struct Config {
    std::string field = "value";
    double offset = 0;
    double amplitude = 1.0;
    SimDuration period = 10 * kSecond;
    double noise = 0.05;
  };
  WaveformSensor(Config cfg, Rng rng) : cfg_(cfg), rng_(rng) {}

  Sample sample(SimTime now) override;
  [[nodiscard]] const char* kind() const override { return "waveform"; }

 private:
  Config cfg_;
  Rng rng_;
};

/// Bounded random walk.
class RandomWalkSensor final : public SensorModel {
 public:
  struct Config {
    std::string field = "value";
    double start = 20.0;
    double step = 0.1;
    double min = -1e9;
    double max = 1e9;
  };
  RandomWalkSensor(Config cfg, Rng rng)
      : cfg_(cfg), rng_(rng), value_(cfg.start) {}

  Sample sample(SimTime now) override;
  [[nodiscard]] const char* kind() const override { return "random_walk"; }

 private:
  Config cfg_;
  Rng rng_;
  double value_;
};

/// Markov activity model emitting labelled 3-axis accelerometer samples.
class ActivitySensor final : public SensorModel {
 public:
  struct State {
    std::string label;
    double mean[3];    ///< per-axis acceleration mean
    double stddev[3];  ///< per-axis noise
    double stay_prob;  ///< self-transition probability per tick
  };

  /// `states` must be non-empty; transitions leave to a uniformly chosen
  /// other state.
  ActivitySensor(std::vector<State> states, Rng rng)
      : states_(std::move(states)), rng_(rng) {}

  /// The standard four-state elderly-monitoring chain.
  static std::vector<State> default_states();

  Sample sample(SimTime now) override;
  [[nodiscard]] const char* kind() const override { return "activity"; }
  [[nodiscard]] const std::string& current_label() const {
    return states_[state_].label;
  }

 private:
  std::vector<State> states_;
  Rng rng_;
  std::size_t state_ = 0;
};

/// Constant value + noise.
class ConstantSensor final : public SensorModel {
 public:
  ConstantSensor(std::string field, double value, double noise, Rng rng)
      : field_(std::move(field)), value_(value), noise_(noise), rng_(rng) {}

  Sample sample(SimTime now) override;
  [[nodiscard]] const char* kind() const override { return "constant"; }

 private:
  std::string field_;
  double value_;
  double noise_;
  Rng rng_;
};

/// Builds a model by kind name with default configs ("waveform",
/// "random_walk", "activity", "constant"); unknown names fail.
Result<std::unique_ptr<SensorModel>> make_sensor_model(
    const std::string& kind, Rng rng);

}  // namespace ifot::device
