#include "device/actuator_sim.hpp"

namespace ifot::device {

void ActuatorSink::apply(SimTime now, const Sample& s) {
  ActuationRecord rec;
  rec.at = now + latency_;
  rec.sensed_at = s.sensed_at;
  rec.source = s.source;
  rec.value = s.fields.empty() ? 0.0 : s.fields.front().second;
  rec.label = s.label;
  records_.push_back(std::move(rec));
}

}  // namespace ifot::device
