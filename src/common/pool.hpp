// Reusing object/node pools for the zero-allocation data plane.
//
// The broker's steady state routes the same topics to the same sessions
// forever, yet three pieces of per-message state still hit the heap on
// every QoS 1/2 delivery: the shared WireTemplate control block, the
// inflight map node, and the session queue slot. This module closes
// those gaps with two single-threaded recyclers:
//
//  * ObjectPool<T> + Ref<T>: an intrusive-refcount replacement for
//    shared_ptr<T> whose objects return to a free list instead of being
//    destroyed when the last Ref drops. A recycled object keeps its
//    internal buffers (a WireTemplate keeps its wire vector capacity),
//    so re-acquiring one allocates nothing once the pool is warm.
//
//  * NodePool + NodeAllocator<T>: a size-bucketed free list over
//    ::operator new, plugged into node-based containers (std::map,
//    std::deque) as their allocator. An inflight erase feeds the node
//    the next emplace reuses, so ack/redeliver churn never mallocs.
//
// Neither is thread-safe; both live next to the single-threaded broker
// and client engines. Pools must be declared before (destroyed after)
// every container or Ref that uses them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/audit.hpp"

namespace ifot::pool {

/// Size-bucketed free list over ::operator new for container nodes.
/// allocate() prefers a recycled block of the same (rounded) size;
/// deallocate() parks the block for reuse instead of freeing it. Blocks
/// are only returned to the system when the pool is destroyed.
class NodePool {
 public:
  NodePool() = default;
  ~NodePool() {
    IFOT_AUDIT_ASSERT(outstanding_ == 0,
                      "node pool destroyed with blocks still in use");
    for (auto& [size, blocks] : free_) {
      for (void* p : blocks) ::operator delete(p);
    }
  }
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* allocate(std::size_t bytes) {
    const std::size_t bucket = bucket_of(bytes);
    auto it = free_.find(bucket);
    if (it != free_.end() && !it->second.empty()) {
      void* p = it->second.back();
      it->second.pop_back();
      ++outstanding_;
      ++reuses_;
      return p;
    }
    ++outstanding_;
    ++fresh_;
    retained_bytes_ += bucket;
    // static: alloc(pool warm-up: fresh block for an empty size bucket;
    // every block recycles through the free list thereafter)
    return ::operator new(bucket);
  }

  // static: alloc(free-list first touch of a new size bucket inserts the
  // bucket entry + list growth; steady-state pushes land in capacity)
  void deallocate(void* p, std::size_t bytes) noexcept {
    IFOT_AUDIT_ASSERT(outstanding_ > 0,
                      "node pool released more blocks than it handed out");
    --outstanding_;
    free_[bucket_of(bytes)].push_back(p);
  }

  /// Blocks currently handed out (not yet deallocated).
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }
  /// Allocations served from the free list vs. fresh ::operator new.
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }
  [[nodiscard]] std::uint64_t fresh_allocations() const { return fresh_; }
  [[nodiscard]] std::size_t free_blocks() const {
    std::size_t n = 0;
    for (const auto& [_, blocks] : free_) n += blocks.size();
    return n;
  }
  /// Bytes the pool holds from the system across every bucket (in use +
  /// parked); blocks only return to the system at destruction, so this
  /// is the pool's high-water footprint ($SYS memory observability).
  [[nodiscard]] std::size_t retained_bytes() const { return retained_bytes_; }

  void audit_invariants() const {
    if constexpr (!audit::kEnabled) return;
    IFOT_AUDIT_ASSERT(reuses_ + fresh_ >= outstanding_,
                      "node pool handed out more blocks than it allocated");
  }

 private:
  /// Rounding sizes up to 16 keeps the bucket count tiny without wasting
  /// meaningful memory on the small node types this pool serves.
  static std::size_t bucket_of(std::size_t bytes) {
    return (bytes + 15) & ~static_cast<std::size_t>(15);
  }

  std::unordered_map<std::size_t, std::vector<void*>> free_;
  std::size_t outstanding_ = 0;
  std::size_t retained_bytes_ = 0;
  std::uint64_t reuses_ = 0;
  std::uint64_t fresh_ = 0;
};

/// Standard-allocator adapter over a NodePool, for node-based containers.
/// Copies (and rebinds) share the pool pointer; allocators compare equal
/// exactly when they share a pool. The pool must outlive the container.
template <typename T>
class NodeAllocator {
 public:
  using value_type = T;

  explicit NodeAllocator(NodePool* pool) : pool_(pool) {}
  template <typename U>
  // NOLINTNEXTLINE(google-explicit-constructor): allocator rebinding
  NodeAllocator(const NodeAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    static_assert(alignof(T) <= __STDCPP_DEFAULT_NEW_ALIGNMENT__,
                  "NodePool only serves default-aligned node types");
    return static_cast<T*>(pool_->allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    pool_->deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] NodePool* pool() const { return pool_; }

  template <typename U>
  friend bool operator==(const NodeAllocator& a, const NodeAllocator<U>& b) {
    return a.pool() == b.pool();
  }

 private:
  NodePool* pool_;
};

template <typename T>
class ObjectPool;
template <typename T>
class Ref;

/// CRTP base holding the intrusive refcount and the owning pool. Derive
/// the pooled type from RefCounted<itself>; objects handed out by
/// ObjectPool<T>::acquire start at refcount 1.
template <typename T>
class RefCounted {
 public:
  /// Refs currently sharing this object (diagnostics/audits).
  [[nodiscard]] std::uint32_t pool_use_count() const { return refs_; }

 private:
  friend class ObjectPool<T>;
  friend class Ref<T>;

  std::uint32_t refs_ = 0;
  ObjectPool<T>* home_ = nullptr;
};

/// shared_ptr-like handle over a pooled object. Copying bumps the
/// intrusive count (no control block, no atomics); dropping the last Ref
/// returns the object to its pool's free list *without destroying it*,
/// so its buffers keep their capacity for the next acquire.
template <typename T>
class Ref {
 public:
  Ref() = default;
  Ref(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Ref(const Ref& other) : ptr_(other.ptr_) { retain(); }
  Ref(Ref&& other) noexcept : ptr_(other.ptr_) { other.ptr_ = nullptr; }
  Ref& operator=(const Ref& other) {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      retain();
    }
    return *this;
  }
  Ref& operator=(Ref&& other) noexcept {
    if (this != &other) {
      release();
      ptr_ = other.ptr_;
      other.ptr_ = nullptr;
    }
    return *this;
  }
  ~Ref() { release(); }

  T* operator->() const { return ptr_; }
  T& operator*() const { return *ptr_; }
  [[nodiscard]] T* get() const { return ptr_; }
  explicit operator bool() const { return ptr_ != nullptr; }
  friend bool operator==(const Ref& a, const Ref& b) {
    return a.ptr_ == b.ptr_;
  }
  friend bool operator==(const Ref& a, std::nullptr_t) {
    return a.ptr_ == nullptr;
  }

  void reset() { release(); ptr_ = nullptr; }

  /// Refs sharing the pointee (0 for a null Ref).
  [[nodiscard]] std::uint32_t use_count() const {
    return ptr_ != nullptr ? base().refs_ : 0;
  }

 private:
  friend class ObjectPool<T>;
  explicit Ref(T* p) : ptr_(p) {}  // acquire() pre-sets refs_ to 1

  RefCounted<T>& base() const { return *ptr_; }
  void retain() {
    if (ptr_ != nullptr) ++base().refs_;
  }
  // static: alloc(release-path free-list growth; the list's capacity
  // tops out at the pool's high-water object count and is then retained)
  void release() {
    if (ptr_ == nullptr) return;
    RefCounted<T>& b = base();
    IFOT_AUDIT_ASSERT(b.refs_ > 0, "pooled object over-released");
    if (--b.refs_ == 0) b.home_->recycle(ptr_);
  }

  T* ptr_ = nullptr;
};

/// Owns every T it ever created and recycles them through a free list.
/// acquire() reuses a parked object when one exists (no construction, no
/// allocation — the caller re-initializes contents via the object's own
/// assign/reset API) and default-constructs a new one otherwise.
template <typename T>
class ObjectPool {
 public:
  ObjectPool() = default;
  ~ObjectPool() {
    IFOT_AUDIT_ASSERT(free_.size() == all_.size(),
                      "object pool destroyed with objects still referenced");
  }
  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  [[nodiscard]] Ref<T> acquire() {
    T* obj = nullptr;
    if (!free_.empty()) {
      obj = free_.back();
      free_.pop_back();
      ++reuses_;
    } else {
      all_.push_back(std::make_unique<T>());
      obj = all_.back().get();
      obj->RefCounted<T>::home_ = this;
    }
    obj->RefCounted<T>::refs_ = 1;
    return Ref<T>(obj);
  }

  /// Objects ever created / currently parked / currently referenced.
  [[nodiscard]] std::size_t created() const { return all_.size(); }
  [[nodiscard]] std::size_t free_count() const { return free_.size(); }
  [[nodiscard]] std::size_t live() const { return all_.size() - free_.size(); }
  [[nodiscard]] std::uint64_t reuses() const { return reuses_; }

  void audit_invariants() const {
    if constexpr (!audit::kEnabled) return;
    IFOT_AUDIT_ASSERT(free_.size() <= all_.size(),
                      "object pool free list larger than its object set");
    for (T* obj : free_) {
      IFOT_AUDIT_ASSERT(obj->RefCounted<T>::refs_ == 0,
                        "parked pooled object still referenced");
    }
  }

 private:
  friend class Ref<T>;
  void recycle(T* obj) { free_.push_back(obj); }

  std::vector<std::unique_ptr<T>> all_;
  std::vector<T*> free_;
  std::uint64_t reuses_ = 0;
};

}  // namespace ifot::pool
