// Minimal leveled logger. The simulator injects the virtual timestamp via
// a thread-local clock hook so log lines carry simulated time, not wall
// time.
#pragma once

#include <functional>
#include <sstream>
#include <string>

#include "common/types.hpp"

namespace ifot {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

/// Global logging configuration (process-wide; tests set kOff or capture).
namespace log_config {
/// Minimum level that is emitted. Defaults to kWarn to keep test and
/// benchmark output clean.
void set_level(LogLevel level);
LogLevel level();
/// Sink override; default writes to stderr. Passing nullptr restores it.
void set_sink(std::function<void(LogLevel, const std::string&)> sink);
/// Clock hook: returns current virtual time for log prefixes; nullptr
/// means "no timestamp".
void set_clock(std::function<SimTime()> clock);
}  // namespace log_config

/// Emits one formatted log line (used by the LOG macro below).
void log_emit(LogLevel level, const std::string& component,
              const std::string& message);

/// Stream-style logging helper:
///   IFOT_LOG(kInfo, "broker") << "client " << id << " connected";
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  // static: alloc(log-line formatting and sink dispatch; diagnostics
  // off the data plane — hot paths only log on drop and error branches)
  ~LogLine() { log_emit(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

/// True when `level` would be emitted under the current configuration.
// static: leaf(level check takes the logging-config mutex; diagnostics
// plumbing, not data-plane work, and it allocates nothing)
bool log_enabled(LogLevel level);

}  // namespace ifot

#define IFOT_LOG(level, component)                      \
  if (!::ifot::log_enabled(::ifot::LogLevel::level)) {} \
  else ::ifot::LogLine(::ifot::LogLevel::level, (component))
