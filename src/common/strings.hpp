// Small string utilities used by the recipe parser and topic handling.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ifot {

/// Splits `s` on `sep`, keeping empty segments ("a//b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Joins parts with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// True when `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; rejects trailing garbage.
Result<double> parse_double(std::string_view s);

/// Parses a non-negative integer; rejects trailing garbage.
Result<std::uint64_t> parse_uint(std::string_view s);

}  // namespace ifot
