// Byte-buffer and binary encode/decode primitives.
//
// BinaryWriter/BinaryReader provide network-byte-order (big-endian) fixed
// integers, length-prefixed strings, varints and raw spans; the MQTT codec
// and the middleware's sample serialization are built on top of these.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.hpp"

namespace ifot {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Appends big-endian encoded primitives to a Bytes buffer.
class BinaryWriter {
 public:
  explicit BinaryWriter(Bytes& out) : out_(out) {}

  // static: alloc(byte-buffer growth; encode buffers are pool-recycled)
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Unsigned LEB128-style varint (7 bits per byte, MSB = continuation).
  void varint(std::uint64_t v);
  /// u16 length prefix + UTF-8 bytes (MQTT string encoding).
  // static: alloc(byte-buffer growth; encode buffers are pool-recycled)
  void str16(std::string_view s);
  /// varint length prefix + UTF-8 bytes.
  void str(std::string_view s);
  // static: alloc(byte-buffer growth; encode buffers are pool-recycled)
  void raw(BytesView bytes);

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  Bytes& out_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
};

/// Reads big-endian encoded primitives from a byte span. All methods
/// return an Error instead of reading past the end.
class BinaryReader {
 public:
  explicit BinaryReader(BytesView data) : data_(data) {}

  [[nodiscard]] Result<std::uint8_t> u8();
  [[nodiscard]] Result<std::uint16_t> u16();
  [[nodiscard]] Result<std::uint32_t> u32();
  [[nodiscard]] Result<std::uint64_t> u64();
  [[nodiscard]] Result<std::int64_t> i64();
  [[nodiscard]] Result<double> f64();
  [[nodiscard]] Result<std::uint64_t> varint();
  [[nodiscard]] Result<std::string> str16();
  [[nodiscard]] Result<std::string> str();
  /// Reads exactly n bytes.
  [[nodiscard]] Result<Bytes> raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }
  [[nodiscard]] std::size_t position() const { return pos_; }

 private:
  [[nodiscard]] Status need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
};

/// Converts a string literal payload to Bytes (test/ergonomics helper).
Bytes to_bytes(std::string_view s);
/// Converts bytes to a std::string (for text payloads).
std::string to_string(BytesView b);

}  // namespace ifot
