#include "common/shared_string.hpp"

#include "common/audit.hpp"

namespace ifot {
namespace {

/// Wraps `s` in a shared buffer. Audit builds attach a deleter that
/// balances the live-object ledger, so a leaked or double-freed string
/// buffer shows up as a nonzero audit::live() count at teardown.
std::shared_ptr<const std::string> adopt(std::string s) {
  if (s.empty()) return nullptr;
  if constexpr (audit::kEnabled) {
    const auto n = static_cast<std::int64_t>(s.size());
    audit::live_add("shared_string.buffers", 1);
    audit::live_add("shared_string.bytes", n);
    return std::shared_ptr<const std::string>(
        new std::string(std::move(s)), [n](const std::string* p) {
          audit::live_add("shared_string.buffers", -1);
          audit::live_add("shared_string.bytes", -n);
          delete p;  // NOLINT(cppcoreguidelines-owning-memory)
        });
  }
  return std::make_shared<const std::string>(std::move(s));
}

}  // namespace

SharedString::SharedString(std::string s) : buf_(adopt(std::move(s))) {
  IFOT_AUDIT_ASSERT(!buf_ || !buf_->empty(),
                    "SharedString must not hold an empty buffer");
}

const std::string& SharedString::empty_string() {
  static const std::string kEmpty;
  return kEmpty;
}

}  // namespace ifot
