// Core vocabulary types shared by every IFoT module.
//
// All simulated time is represented as integral nanoseconds (SimTime) so
// that the discrete-event engine is exactly deterministic; helpers convert
// to/from floating-point milliseconds only at reporting boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace ifot {

/// Virtual simulation time in nanoseconds since simulation start.
using SimTime = std::int64_t;

/// Duration in virtual nanoseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

/// Converts a floating-point count of milliseconds to a SimDuration.
constexpr SimDuration from_millis(double ms) {
  return static_cast<SimDuration>(ms * static_cast<double>(kMillisecond));
}

/// Converts a floating-point count of seconds to a SimDuration.
constexpr SimDuration from_seconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

/// Converts a SimDuration to floating-point milliseconds (reporting only).
constexpr double to_millis(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

/// Converts a SimDuration to floating-point seconds (reporting only).
constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

/// Strongly-typed integral identifier. Tag distinguishes id spaces at
/// compile time so a NodeId cannot be passed where a TaskId is expected.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  [[nodiscard]] constexpr value_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr bool operator==(Id, Id) = default;
  friend constexpr auto operator<=>(Id, Id) = default;

  static constexpr value_type kInvalid = 0xFFFFFFFFu;

 private:
  value_type value_ = kInvalid;
};

struct NodeTag {};
struct TaskTag {};
struct FlowTag {};
struct RecipeTag {};
struct SensorTag {};
struct ActuatorTag {};

/// Identifies one IFoT neuron module (or the management node).
using NodeId = Id<NodeTag>;
/// Identifies one task instance produced by recipe splitting.
using TaskId = Id<TaskTag>;
/// Identifies one logical data flow (stream) in the fabric.
using FlowId = Id<FlowTag>;
/// Identifies a submitted recipe (application).
using RecipeId = Id<RecipeTag>;
/// Identifies a physical/virtual sensor attached to a module.
using SensorId = Id<SensorTag>;
/// Identifies a physical/virtual actuator attached to a module.
using ActuatorId = Id<ActuatorTag>;

}  // namespace ifot

template <typename Tag>
struct std::hash<ifot::Id<Tag>> {
  std::size_t operator()(ifot::Id<Tag> id) const noexcept {
    return std::hash<typename ifot::Id<Tag>::value_type>{}(id.value());
  }
};
