// Expected-style error handling used across all IFoT module boundaries.
//
// Expected failures (malformed packet, unknown topic, unsatisfiable
// placement, ...) are returned as Result<T>; exceptions are reserved for
// programming errors.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ifot {

/// Error categories for Result. Coarse on purpose: callers branch on
/// category, humans read the message.
enum class Errc {
  kInvalidArgument,
  kParse,
  kNotFound,
  kAlreadyExists,
  kCapacity,
  kProtocol,
  kUnsupported,
  kState,
  kIo,
  kTimeout,
};

/// Returns a stable human-readable name for an error category.
constexpr const char* errc_name(Errc c) {
  switch (c) {
    case Errc::kInvalidArgument: return "invalid_argument";
    case Errc::kParse: return "parse_error";
    case Errc::kNotFound: return "not_found";
    case Errc::kAlreadyExists: return "already_exists";
    case Errc::kCapacity: return "capacity";
    case Errc::kProtocol: return "protocol_error";
    case Errc::kUnsupported: return "unsupported";
    case Errc::kState: return "bad_state";
    case Errc::kIo: return "io_error";
    case Errc::kTimeout: return "timeout";
  }
  return "unknown";
}

/// An error: category plus human-readable context.
struct Error {
  Errc code = Errc::kInvalidArgument;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return std::string(errc_name(code)) + ": " + message;
  }
};

/// Minimal expected<T, Error>. Holds either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!ok());
    return std::get<Error>(data_);
  }

  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  std::variant<T, Error> data_;
};

/// Result<void> specialization: success or Error.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error error) : error_(std::move(error)), failed_(true) {}  // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] const Error& error() const {
    assert(failed_);
    return error_;
  }

 private:
  Error error_;
  bool failed_ = false;
};

using Status = Result<void>;

/// Convenience factory: Err(Errc::kParse, "bad remaining length").
inline Error Err(Errc code, std::string message) {
  return Error{code, std::move(message)};
}

}  // namespace ifot
