// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every simulation entity derives its own Rng from the run seed so results
// are reproducible regardless of event interleaving.
#pragma once

#include <cstdint>

namespace ifot {

/// xoshiro256** 1.0 (public-domain algorithm by Blackman & Vigna),
/// seeded via splitmix64 so any 64-bit seed yields a good state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to expand the seed into 4 state words.
    auto next_seed = [&seed]() {
      seed += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next_seed();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) { return next() % n; }

  /// Standard normal via Box-Muller (one value per call; simple and
  /// deterministic, throughput is not a concern here).
  double normal() {
    double u1 = uniform();
    while (u1 <= 1e-12) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586;
    return __builtin_sqrt(-2.0 * __builtin_log(u1)) *
           __builtin_cos(kTwoPi * u2);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate) {
    double u = uniform();
    while (u <= 1e-12) u = uniform();
    return -__builtin_log(u) / rate;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

  /// Derives an independent child generator (for per-entity streams).
  Rng fork() { return Rng(next() ^ 0xD1B54A32D192ED03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace ifot
