#include "common/bytes.hpp"

#include <bit>
#include <cstring>

namespace ifot {

void BinaryWriter::u8(std::uint8_t v) { out_.push_back(v); }

void BinaryWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void BinaryWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v & 0xFFFF));
}

void BinaryWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v & 0xFFFFFFFF));
}

void BinaryWriter::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void BinaryWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void BinaryWriter::varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void BinaryWriter::str16(std::string_view s) {
  u16(static_cast<std::uint16_t>(s.size()));
  raw(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void BinaryWriter::str(std::string_view s) {
  varint(s.size());
  raw(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

void BinaryWriter::raw(BytesView bytes) {
  out_.insert(out_.end(), bytes.begin(), bytes.end());
}

Status BinaryReader::need(std::size_t n) {
  if (remaining() < n) {
    return Err(Errc::kParse, "unexpected end of buffer");
  }
  return {};
}

Result<std::uint8_t> BinaryReader::u8() {
  if (auto s = need(1); !s) return s.error();
  return data_[pos_++];
}

Result<std::uint16_t> BinaryReader::u16() {
  if (auto s = need(2); !s) return s.error();
  auto hi = data_[pos_];
  auto lo = data_[pos_ + 1];
  pos_ += 2;
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

Result<std::uint32_t> BinaryReader::u32() {
  auto hi = u16();
  if (!hi) return hi.error();
  auto lo = u16();
  if (!lo) return lo.error();
  return (static_cast<std::uint32_t>(hi.value()) << 16) | lo.value();
}

Result<std::uint64_t> BinaryReader::u64() {
  auto hi = u32();
  if (!hi) return hi.error();
  auto lo = u32();
  if (!lo) return lo.error();
  return (static_cast<std::uint64_t>(hi.value()) << 32) | lo.value();
}

Result<std::int64_t> BinaryReader::i64() {
  auto v = u64();
  if (!v) return v.error();
  return static_cast<std::int64_t>(v.value());
}

Result<double> BinaryReader::f64() {
  auto v = u64();
  if (!v) return v.error();
  return std::bit_cast<double>(v.value());
}

Result<std::uint64_t> BinaryReader::varint() {
  std::uint64_t v = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    auto b = u8();
    if (!b) return b.error();
    v |= static_cast<std::uint64_t>(b.value() & 0x7F) << shift;
    if ((b.value() & 0x80) == 0) return v;
  }
  return Err(Errc::kParse, "varint too long");
}

Result<std::string> BinaryReader::str16() {
  auto len = u16();
  if (!len) return len.error();
  auto bytes = raw(len.value());
  if (!bytes) return bytes.error();
  return std::string(bytes.value().begin(), bytes.value().end());
}

Result<std::string> BinaryReader::str() {
  auto len = varint();
  if (!len) return len.error();
  auto bytes = raw(static_cast<std::size_t>(len.value()));
  if (!bytes) return bytes.error();
  return std::string(bytes.value().begin(), bytes.value().end());
}

Result<Bytes> BinaryReader::raw(std::size_t n) {
  if (auto s = need(n); !s) return s.error();
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace ifot
