// Latency statistics: the quantities reported in the paper's Tables II/III
// (average and maximum delay) plus percentiles for the extension benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace ifot {

/// Accumulates duration samples; computes avg/max/min/percentiles.
/// Keeps all samples (experiments are bounded) so percentiles are exact.
class LatencyRecorder {
 public:
  void record(SimDuration d);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Average in virtual milliseconds; 0 when empty.
  [[nodiscard]] double avg_ms() const;
  /// Maximum in virtual milliseconds; 0 when empty.
  [[nodiscard]] double max_ms() const;
  /// Minimum in virtual milliseconds; 0 when empty.
  [[nodiscard]] double min_ms() const;
  /// Exact percentile (q in [0,100]) in milliseconds; 0 when empty.
  [[nodiscard]] double percentile_ms(double q) const;
  /// Sample standard deviation in milliseconds; 0 when < 2 samples.
  [[nodiscard]] double stddev_ms() const;

  void clear();

  /// Read-only access to raw samples (nanoseconds).
  [[nodiscard]] const std::vector<SimDuration>& samples() const {
    return samples_;
  }

 private:
  std::vector<SimDuration> samples_;
  mutable std::vector<SimDuration> sorted_;  // lazily maintained cache
  mutable bool sorted_valid_ = false;
};

/// Simple named counter set for throughput/drop accounting.
class Counters {
 public:
  void add(const std::string& name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted()
      const;
  void clear();

 private:
  std::vector<std::pair<std::string, std::uint64_t>> entries_;
};

}  // namespace ifot
