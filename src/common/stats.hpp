// Latency statistics: the quantities reported in the paper's Tables II/III
// (average and maximum delay) plus percentiles for the extension benches.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace ifot {

/// Accumulates duration samples; computes avg/max/min/percentiles.
/// Keeps all samples (experiments are bounded) so percentiles are exact.
class LatencyRecorder {
 public:
  // static: alloc(sample-log growth; every sample is kept so percentiles
  // are exact, and experiment runs are bounded by the scenario script)
  void record(SimDuration d);

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Average in virtual milliseconds; 0 when empty.
  [[nodiscard]] double avg_ms() const;
  /// Maximum in virtual milliseconds; 0 when empty.
  [[nodiscard]] double max_ms() const;
  /// Minimum in virtual milliseconds; 0 when empty.
  [[nodiscard]] double min_ms() const;
  /// Exact percentile (q in [0,100]) in milliseconds; 0 when empty.
  [[nodiscard]] double percentile_ms(double q) const;
  /// Sample standard deviation in milliseconds; 0 when < 2 samples.
  [[nodiscard]] double stddev_ms() const;

  void clear();

  /// Read-only access to raw samples (nanoseconds).
  [[nodiscard]] const std::vector<SimDuration>& samples() const {
    return samples_;
  }

 private:
  std::vector<SimDuration> samples_;
  mutable std::vector<SimDuration> sorted_;  // lazily maintained cache
  mutable bool sorted_valid_ = false;
};

/// Simple named counter set for throughput/drop accounting.
///
/// add/get take string_view and look up through a transparent hash so
/// the per-event hot paths (broker routing, egress outboxes, the
/// network layer) never construct a temporary std::string per bump; a
/// name is materialized once, the first time it is ever counted.
class Counters {
 public:
  // static: alloc(first-ever counter name materializes its ledger entry;
  // steady-state bumps take the transparent-hash hit path)
  void add(std::string_view name, std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t get(std::string_view name) const;
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted()
      const;
  void clear();

 private:
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::unordered_map<std::string, std::uint64_t, StringHash, std::equal_to<>>
      entries_;
};

}  // namespace ifot
