#include "common/strings.hpp"

#include <cctype>
#include <charconv>

namespace ifot {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.starts_with(prefix);
}

Result<double> parse_double(std::string_view s) {
  double v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    return Err(Errc::kParse, "not a number: '" + std::string(s) + "'");
  }
  return v;
}

Result<std::uint64_t> parse_uint(std::string_view s) {
  std::uint64_t v = 0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    return Err(Errc::kParse, "not an unsigned integer: '" + std::string(s) + "'");
  }
  return v;
}

}  // namespace ifot
