#include "common/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

namespace ifot::audit {
namespace {

// The ledger is mutex-protected rather than lock-free: audits run only
// in dedicated test builds, where clarity beats throughput.
std::mutex& ledger_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, std::int64_t>& ledger() {
  static std::map<std::string, std::int64_t> counters;
  return counters;
}

}  // namespace

void fail(const char* expr, const char* file, int line,
          const std::string& message) {
  std::fprintf(stderr, "IFOT_AUDIT failure at %s:%d\n  expression: %s\n  %s\n",
               file, line, expr, message.c_str());
  std::fflush(stderr);
  std::abort();
}

void live_add(const char* key, std::int64_t delta) {
  if constexpr (!kEnabled) return;
  std::lock_guard<std::mutex> lock(ledger_mutex());
  std::int64_t& v = ledger()[key];
  v += delta;
  if (v < 0) {
    fail("audit::live_add keeps counters non-negative", __FILE__, __LINE__,
         std::string("counter '") + key + "' went negative");
  }
}

std::int64_t live(const char* key) {
  if constexpr (!kEnabled) return 0;
  std::lock_guard<std::mutex> lock(ledger_mutex());
  auto it = ledger().find(key);
  return it == ledger().end() ? 0 : it->second;
}

}  // namespace ifot::audit
