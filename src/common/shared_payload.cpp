#include "common/shared_payload.hpp"

#include "common/audit.hpp"

namespace ifot {
namespace {

/// Wraps `bytes` in a shared buffer. Audit builds attach a deleter that
/// balances the live-object ledger, so a leaked or double-freed payload
/// buffer shows up as a nonzero audit::live() count at teardown.
std::shared_ptr<const Bytes> adopt(Bytes bytes) {
  if (bytes.empty()) return nullptr;
  if constexpr (audit::kEnabled) {
    const auto n = static_cast<std::int64_t>(bytes.size());
    audit::live_add("shared_payload.buffers", 1);
    audit::live_add("shared_payload.bytes", n);
    return std::shared_ptr<const Bytes>(
        new Bytes(std::move(bytes)), [n](const Bytes* p) {
          audit::live_add("shared_payload.buffers", -1);
          audit::live_add("shared_payload.bytes", -n);
          delete p;  // NOLINT(cppcoreguidelines-owning-memory)
        });
  }
  return std::make_shared<const Bytes>(std::move(bytes));
}

}  // namespace

SharedPayload::SharedPayload(Bytes bytes) : buf_(adopt(std::move(bytes))) {
  IFOT_AUDIT_ASSERT(!buf_ || !buf_->empty(),
                    "SharedPayload must not hold an empty buffer");
}

const Bytes& SharedPayload::empty_bytes() {
  static const Bytes kEmpty;
  return kEmpty;
}

}  // namespace ifot
