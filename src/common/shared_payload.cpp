#include "common/shared_payload.hpp"

namespace ifot {

const Bytes& SharedPayload::empty_bytes() {
  static const Bytes kEmpty;
  return kEmpty;
}

}  // namespace ifot
