#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

namespace ifot {

void LatencyRecorder::record(SimDuration d) {
  samples_.push_back(d);
  sorted_valid_ = false;
}

double LatencyRecorder::avg_ms() const {
  if (samples_.empty()) return 0.0;
  long double sum = 0;
  for (auto s : samples_) sum += static_cast<long double>(s);
  return static_cast<double>(sum / static_cast<long double>(samples_.size())) /
         static_cast<double>(kMillisecond);
}

double LatencyRecorder::max_ms() const {
  if (samples_.empty()) return 0.0;
  return to_millis(*std::max_element(samples_.begin(), samples_.end()));
}

double LatencyRecorder::min_ms() const {
  if (samples_.empty()) return 0.0;
  return to_millis(*std::min_element(samples_.begin(), samples_.end()));
}

double LatencyRecorder::percentile_ms(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const double clamped = std::clamp(q, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      (clamped / 100.0) * static_cast<double>(sorted_.size() - 1) + 0.5);
  return to_millis(sorted_[rank]);
}

double LatencyRecorder::stddev_ms() const {
  if (samples_.size() < 2) return 0.0;
  const double mean = avg_ms();
  double acc = 0;
  for (auto s : samples_) {
    const double d = to_millis(s) - mean;
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void LatencyRecorder::clear() {
  samples_.clear();
  sorted_.clear();
  sorted_valid_ = false;
}

void Counters::add(std::string_view name, std::uint64_t delta) {
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    it->second += delta;
    return;
  }
  entries_.emplace(std::string(name), delta);
}

std::uint64_t Counters::get(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> Counters::sorted() const {
  std::vector<std::pair<std::string, std::uint64_t>> out(entries_.begin(),
                                                         entries_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Counters::clear() { entries_.clear(); }

}  // namespace ifot
