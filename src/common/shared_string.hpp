// Immutable, reference-counted string.
//
// The broker's PUBLISH fan-out hands one inbound message to N
// subscribers; payload bytes are already shared via SharedPayload, but
// Publish::topic used to be a std::string copied per QoS 1/2 subscriber.
// SharedString closes that gap: copies share one immutable buffer, so a
// fan-out group allocates the topic once no matter how many subscribers,
// queues and retry slots hold it. The std::string-like read surface
// (str/view/size/empty/operator==) keeps the type a drop-in replacement
// for a by-value std::string field.
#pragma once

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

namespace ifot {

/// Value-semantics handle to an immutable string. Copying shares the
/// buffer; equality compares contents.
class SharedString {
 public:
  SharedString() = default;

  /// Takes ownership of `s` (one allocation; empty stays null).
  /// Audit builds ledger the buffer in audit::live("shared_string.*")
  /// so tests can assert every allocated string has been released.
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for string fields
  SharedString(std::string s);
  // NOLINTNEXTLINE(google-explicit-constructor): literal ergonomics
  SharedString(const char* s) : SharedString(std::string(s)) {}

  [[nodiscard]] const std::string& str() const {
    return buf_ ? *buf_ : empty_string();
  }
  [[nodiscard]] std::string_view view() const { return str(); }
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors string -> view
  operator std::string_view() const { return view(); }
  // NOLINTNEXTLINE(google-explicit-constructor): map keys, concatenation
  operator const std::string&() const { return str(); }

  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// The underlying shared buffer (null when empty). Exposed so tests
  /// and counters can verify buffer identity across fan-out copies.
  [[nodiscard]] const std::shared_ptr<const std::string>& share() const {
    return buf_;
  }
  /// Number of holders currently sharing this buffer (0 when empty).
  [[nodiscard]] long use_count() const { return buf_.use_count(); }

  friend bool operator==(const SharedString& a, const SharedString& b) {
    return a.buf_ == b.buf_ || a.str() == b.str();
  }
  /// Heterogeneous comparison against anything string-view-like, so
  /// `topic == "a/b"` and `topic == some_std_string` need no SharedString
  /// temporary (and no allocation).
  template <typename T>
    requires(!std::is_same_v<std::decay_t<T>, SharedString> &&
             std::is_convertible_v<const T&, std::string_view>)
  friend bool operator==(const SharedString& a, const T& b) {
    return a.view() == std::string_view(b);
  }

 private:
  static const std::string& empty_string();

  std::shared_ptr<const std::string> buf_;
};

inline std::ostream& operator<<(std::ostream& os, const SharedString& s) {
  return os << s.str();
}

}  // namespace ifot
