// Immutable, reference-counted message payload.
//
// The broker's PUBLISH fan-out hands one inbound payload to N
// subscribers; holding the bytes behind shared_ptr<const Bytes> makes
// every per-subscriber Publish clone O(1) instead of O(payload):
// copies share the same immutable buffer, so the fabric moves a payload
// through route/queue/inflight/redelivery without ever duplicating it.
// The Bytes-like read surface (size/empty/view/operator==) keeps the
// type a drop-in replacement for a by-value Bytes field.
#pragma once

#include <cstdint>
#include <memory>

#include "common/bytes.hpp"

namespace ifot {

/// Value-semantics handle to an immutable byte buffer. Copying shares
/// the buffer; equality compares contents.
class SharedPayload {
 public:
  SharedPayload() = default;

  /// Takes ownership of `bytes` (one allocation; empty stays null).
  /// Audit builds ledger the buffer in audit::live("shared_payload.*")
  /// so tests can assert every allocated payload byte is released.
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for Bytes fields
  SharedPayload(Bytes bytes);

  /// Adopts an already-shared buffer (fan-in from another message).
  explicit SharedPayload(std::shared_ptr<const Bytes> buf)
      : buf_(buf && buf->empty() ? nullptr : std::move(buf)) {}

  [[nodiscard]] const Bytes& bytes() const {
    return buf_ ? *buf_ : empty_bytes();
  }
  [[nodiscard]] BytesView view() const { return BytesView(bytes()); }
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors Bytes -> BytesView
  operator BytesView() const { return view(); }

  [[nodiscard]] std::size_t size() const { return buf_ ? buf_->size() : 0; }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const std::uint8_t* data() const { return bytes().data(); }

  /// Replaces the contents with `n` copies of `v` (test ergonomics,
  /// mirrors Bytes::assign).
  void assign(std::size_t n, std::uint8_t v) {
    *this = SharedPayload(Bytes(n, v));
  }
  void clear() { buf_.reset(); }

  /// The underlying shared buffer (null when empty). Exposed so tests
  /// and counters can verify buffer identity across fan-out copies.
  [[nodiscard]] const std::shared_ptr<const Bytes>& share() const {
    return buf_;
  }
  /// Number of messages currently sharing this buffer (0 when empty).
  [[nodiscard]] long use_count() const { return buf_.use_count(); }

  friend bool operator==(const SharedPayload& a, const SharedPayload& b) {
    return a.buf_ == b.buf_ || a.bytes() == b.bytes();
  }

 private:
  static const Bytes& empty_bytes();

  std::shared_ptr<const Bytes> buf_;
};

}  // namespace ifot
