#include "common/log.hpp"

#include <cstdio>
#include <mutex>

namespace ifot {
namespace {

struct LogState {
  std::mutex mu;
  LogLevel level = LogLevel::kWarn;
  std::function<void(LogLevel, const std::string&)> sink;
  std::function<SimTime()> clock;
};

LogState& state() {
  static LogState s;
  return s;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

namespace log_config {

void set_level(LogLevel level) {
  std::lock_guard lock(state().mu);
  state().level = level;
}

LogLevel level() {
  std::lock_guard lock(state().mu);
  return state().level;
}

void set_sink(std::function<void(LogLevel, const std::string&)> sink) {
  std::lock_guard lock(state().mu);
  state().sink = std::move(sink);
}

void set_clock(std::function<SimTime()> clock) {
  std::lock_guard lock(state().mu);
  state().clock = std::move(clock);
}

}  // namespace log_config

bool log_enabled(LogLevel level) {
  return level >= log_config::level() && level != LogLevel::kOff;
}

void log_emit(LogLevel level, const std::string& component,
              const std::string& message) {
  std::function<void(LogLevel, const std::string&)> sink;
  std::function<SimTime()> clock;
  {
    std::lock_guard lock(state().mu);
    sink = state().sink;
    clock = state().clock;
  }
  std::string line;
  if (clock) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "[%10.3fms] ", to_millis(clock()));
    line += buf;
  }
  line += "[";
  line += level_name(level);
  line += "] [";
  line += component;
  line += "] ";
  line += message;
  if (sink) {
    sink(level, line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace ifot
