// Runtime invariant auditing, compiled out of release builds.
//
// Stateful subsystems (broker session maps, dedup sets, the simulator
// event queue) carry invariants that unit tests exercise only at their
// entry points. IFOT_AUDIT_ASSERT lets the data structures themselves
// re-check those invariants after every mutation, so an audit-enabled
// test run (-DIFOT_AUDIT=ON) turns the whole suite into a state-machine
// checker. In normal builds the checks cost nothing: the condition is
// type-checked but never evaluated.
//
// A small live-object ledger (audit::live_add / audit::live) backs
// byte-accounting invariants such as "every SharedPayload buffer ever
// allocated has been released"; it too compiles to no-ops when audits
// are off.
#pragma once

#include <cstdint>
#include <string>

namespace ifot::audit {

#if defined(IFOT_AUDIT)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Reports a failed audit and aborts. Never returns.
[[noreturn]] void fail(const char* expr, const char* file, int line,
                       const std::string& message);

/// Adjusts a named live-object counter (audit builds only; a no-op
/// otherwise). Aborts if the counter would go negative: releasing more
/// than was acquired is itself an invariant violation.
void live_add(const char* key, std::int64_t delta);

/// Current value of a live-object counter (always 0 when audits are off).
[[nodiscard]] std::int64_t live(const char* key);

}  // namespace ifot::audit

#if defined(IFOT_AUDIT)
#define IFOT_AUDIT_ASSERT(cond, msg)                                 \
  do {                                                               \
    if (!(cond)) ::ifot::audit::fail(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
#else
// Disabled: the condition and message still type-check (so audit code
// cannot bit-rot) but are never evaluated.
#define IFOT_AUDIT_ASSERT(cond, msg) \
  do {                               \
    if (false) {                     \
      (void)(cond);                  \
      (void)(msg);                   \
    }                                \
  } while (0)
#endif
