// The management node's experiment harness reproducing the paper's
// evaluation (Section V, Fig. 7/9, Tables II and III).
//
// Topology (six neuron modules + management):
//   module_a/b/c  sensor + Publish classes (32-byte samples at the swept
//                 rate; activity model so samples are labelled)
//   module_d      Broker class only
//   module_e      Subscribe + Train classes (Learning)
//   module_f      Subscribe + Predict classes (Judging) + Actuator class
//
// Measured quantities, exactly as in the paper:
//   sensing -> completion of training   (Table II)
//   sensing -> completion of predicting (Table III)
// swept over sensor generation rates {5, 10, 20, 40, 80} Hz.
//
// Calibration: the CostModel defaults in src/node/cpu_model.hpp are tuned
// so the *shape* matches the paper — flat tens-of-ms latency through
// 10 Hz, a knee between 20 and 40 Hz on the training path (the Train
// module's CPU saturates near 55 samples/s), heavy queueing growth at
// 80 Hz, and a predicting path that saturates later than training because
// classification is cheaper than model update. Absolute values depend on
// the authors' Python/Jubatus stack and are not claimed.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "core/middleware.hpp"

namespace ifot::mgmt {

/// Parameters of one paper-experiment run.
struct PaperExperimentConfig {
  std::vector<double> rates_hz = {5, 10, 20, 40, 80};
  /// Measurement window per rate (virtual time). At over-saturating rates
  /// the queue grows linearly for the whole window, so the reported
  /// average scales with the window length; 6 s is the window implied by
  /// the paper's own numbers (avg ~1.1 s at 40 Hz with utilization ~2
  /// gives (rho-1)/rho * T/2 ~ 1.1 s => T ~ 6 s).
  SimDuration duration = 6 * kSecond;
  std::uint64_t seed = 7;
  std::string algorithm = "arow";
  /// Shards of the train/predict stages (1 = the paper's prototype; >1 is
  /// the "further parallelization" the paper names as future work).
  int train_parallelism = 1;
  int predict_parallelism = 1;
  /// Extra train/predict worker modules (module_e2, ...) for shards.
  int extra_workers = 0;
  /// Partitioned routing for sharded stages (false = consumer-side
  /// filtering; the X1 ablation).
  bool partitioned = true;
  /// Broker modules (1 = the paper's module D; >1 adds module_d2, ... and
  /// spreads the sensor flows across them - broker decentralization).
  int brokers = 1;
  node::CostModel costs;
  net::LanConfig lan;
  mqtt::QoS flow_qos = mqtt::QoS::kAtMostOnce;
  /// Rare runtime stalls (GC pauses, Wi-Fi retransmission storms), one
  /// per ~stall_mean_interval per module — what makes the paper's
  /// low-rate max ~6x its average. 0 disables.
  SimDuration stall_mean_interval = 15 * kSecond;
  SimDuration stall_min = from_millis(150);
  SimDuration stall_max = from_millis(320);
};

/// Results at one sensing rate.
struct RateResult {
  double rate_hz = 0;
  LatencyRecorder train;    ///< sensing -> training completion
  LatencyRecorder predict;  ///< sensing -> predicting completion
  double train_module_util = 0;
  double predict_module_util = 0;
  double broker_module_util = 0;
  std::uint64_t samples_emitted = 0;
  std::uint64_t actuations = 0;
};

/// Results of the full sweep.
struct PaperExperimentResult {
  std::vector<RateResult> rates;
};

/// Builds the paper recipe text for a given sensing rate.
std::string paper_recipe_text(double rate_hz, const std::string& algorithm,
                              int train_parallelism = 1,
                              int predict_parallelism = 1,
                              bool partitioned = true, int brokers = 1);

/// Runs the sweep (one fresh fabric per rate, deterministic per seed).
PaperExperimentResult run_paper_experiment(const PaperExperimentConfig& cfg);

/// The numbers printed in the paper, for paper-vs-measured reporting.
struct PaperRow {
  double rate_hz;
  double avg_ms;
  double max_ms;
};
const std::vector<PaperRow>& paper_table2_reference();  ///< sensing-training
const std::vector<PaperRow>& paper_table3_reference();  ///< sensing-predicting

}  // namespace ifot::mgmt
