#include "mgmt/flow_directory.hpp"

#include "common/strings.hpp"
#include "mgmt/report.hpp"

namespace ifot::mgmt {

Status FlowDirectory::attach(core::Middleware& mw, NodeId watcher) {
  return mw.watch(watcher, "ifot/directory/#",
                  [this](const std::string& topic, const Bytes& payload) {
                    on_announcement(topic, payload);
                  });
}

void FlowDirectory::on_announcement(const std::string& topic,
                                    const Bytes& payload) {
  constexpr std::string_view kPrefix = "ifot/directory/";
  if (topic.size() <= kPrefix.size()) return;
  const std::string key = topic.substr(kPrefix.size());
  if (payload.empty()) {
    entries_.erase(key);  // retraction (cleared retained message)
    return;
  }
  Entry e;
  e.key = key;
  for (const auto& kv : split(ifot::to_string(BytesView(payload)), ';')) {
    const auto eq = kv.find('=');
    if (eq == std::string::npos) continue;
    const std::string k = kv.substr(0, eq);
    const std::string v = kv.substr(eq + 1);
    if (k == "topic") {
      e.topic = v;
    } else if (k == "type") {
      e.type = v;
    } else if (k == "module") {
      e.module = v;
    } else if (k == "partitions") {
      e.partitions = parse_uint(v).value_or(1);
    } else if (k == "shard") {
      e.shard = static_cast<int>(parse_uint(v).value_or(0));
    }
  }
  entries_[key] = std::move(e);
}

std::vector<FlowDirectory::Entry> FlowDirectory::entries() const {
  std::vector<Entry> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) out.push_back(e);
  return out;
}

std::vector<FlowDirectory::Entry> FlowDirectory::by_type(
    const std::string& type) const {
  std::vector<Entry> out;
  for (const auto& [_, e] : entries_) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::string FlowDirectory::topic_of(const std::string& key) const {
  auto it = entries_.find(key);
  return it == entries_.end() ? std::string{} : it->second.topic;
}

std::string FlowDirectory::to_string() const {
  Table t({"flow", "topic", "type", "module", "partitions", "shard"});
  for (const auto& [_, e] : entries_) {
    t.add_row({e.key, e.topic, e.type, e.module,
               std::to_string(e.partitions),
               e.shard < 0 ? std::string("-") : std::to_string(e.shard)});
  }
  return "flow directory\n" + t.to_string();
}

}  // namespace ifot::mgmt
