// The management software's status view (the headless equivalent of the
// paper's Fig. 8 GUI): which classes run on which modules, per-module CPU
// state, and broker statistics.
#pragma once

#include <string>

#include "core/middleware.hpp"

namespace ifot::mgmt {

/// Renders the per-module status table: name, role, deployed tasks,
/// CPU utilization, backlog, traffic counters, failure state.
std::string fabric_status(core::Middleware& mw);

/// Renders the placement of every deployment (recipe -> task -> module).
std::string placement_board(const core::Middleware& mw);

}  // namespace ifot::mgmt
