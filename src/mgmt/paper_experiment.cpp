#include "mgmt/paper_experiment.hpp"

#include <cassert>

namespace ifot::mgmt {

std::string paper_recipe_text(double rate_hz, const std::string& algorithm,
                              int train_parallelism, int predict_parallelism,
                              bool partitioned, int brokers) {
  std::string r = "recipe paper_eval\n";
  const char* sensors[3] = {"a", "b", "c"};
  int next_broker = 0;
  for (const char* s : sensors) {
    r += std::string("node sense_") + s + " : sensor { sensor = \"sensor_" +
         s + "\", model = \"activity\", rate_hz = " +
         std::to_string(rate_hz);
    if (brokers > 1) {
      r += ", broker = " + std::to_string(next_broker++ % brokers);
    }
    r += " }\n";
  }
  r += "node train : train { algorithm = \"" + algorithm +
       "\", publish_every = 16";
  if (train_parallelism > 1) {
    r += ", parallelism = " + std::to_string(train_parallelism);
    if (!partitioned) r += ", partitioned = false";
  } else {
    r += ", pin = \"module_e\"";
  }
  if (brokers > 1) {
    r += ", broker = " + std::to_string(next_broker++ % brokers);
  }
  r += " }\n";
  r += "node predictor : predict {";
  if (predict_parallelism > 1) {
    r += " parallelism = " + std::to_string(predict_parallelism) + " }\n";
  } else {
    r += " pin = \"module_f\" }\n";
  }
  r += "node display : actuator { actuator = \"display\" }\n";
  for (const char* s : sensors) {
    r += std::string("edge sense_") + s + " -> train\n";
    r += std::string("edge sense_") + s + " -> predictor\n";
  }
  r += "edge train -> predictor\n";
  r += "edge predictor -> display\n";
  return r;
}

PaperExperimentResult run_paper_experiment(const PaperExperimentConfig& cfg) {
  PaperExperimentResult result;
  for (double rate : cfg.rates_hz) {
    core::MiddlewareConfig mw_cfg;
    mw_cfg.lan = cfg.lan;
    mw_cfg.costs = cfg.costs;
    mw_cfg.flow_qos = cfg.flow_qos;
    mw_cfg.seed = cfg.seed;
    mw_cfg.cpu_stall_mean_interval = cfg.stall_mean_interval;
    mw_cfg.cpu_stall_min = cfg.stall_min;
    mw_cfg.cpu_stall_max = cfg.stall_max;

    core::Middleware mw(mw_cfg);
    mw.add_module({.name = "module_a", .sensors = {"sensor_a"}});
    mw.add_module({.name = "module_b", .sensors = {"sensor_b"}});
    mw.add_module({.name = "module_c", .sensors = {"sensor_c"}});
    mw.add_module({.name = "module_d", .broker = true, .accept_tasks = false});
    for (int b = 1; b < cfg.brokers; ++b) {
      mw.add_module({.name = "module_d" + std::to_string(b + 1),
                     .broker = true,
                     .accept_tasks = false});
    }
    mw.add_module({.name = "module_e"});
    mw.add_module(
        {.name = "module_f", .actuators = {"display"}});
    for (int i = 0; i < cfg.extra_workers; ++i) {
      mw.add_module({.name = "worker_" + std::to_string(i)});
    }

    auto started = mw.start();
    assert(started);
    (void)started;

    const std::string recipe =
        paper_recipe_text(rate, cfg.algorithm, cfg.train_parallelism,
                          cfg.predict_parallelism, cfg.partitioned,
                          cfg.brokers);
    auto deployed = mw.deploy(recipe, "load_aware");
    assert(deployed);
    (void)deployed;

    RateResult rr;
    rr.rate_hz = rate;
    mw.set_completion_hook([&rr](const recipe::Task& task,
                                 const device::Sample& s, SimTime now) {
      const SimDuration delay = now - s.sensed_at;
      const std::string& node =
          task.name.substr(0, task.name.find('#'));
      if (node == "train") {
        rr.train.record(delay);
      } else if (node == "predictor") {
        rr.predict.record(delay);
      } else if (node == "display") {
        ++rr.actuations;
      }
    });

    mw.start_flows();
    mw.run_for(cfg.duration);
    mw.stop_flows();

    rr.samples_emitted = mw.module_by_name("module_a")->counters().get(
                             "samples_emitted") +
                         mw.module_by_name("module_b")->counters().get(
                             "samples_emitted") +
                         mw.module_by_name("module_c")->counters().get(
                             "samples_emitted");
    rr.train_module_util = mw.module_by_name("module_e")->utilization();
    rr.predict_module_util = mw.module_by_name("module_f")->utilization();
    rr.broker_module_util = mw.module_by_name("module_d")->utilization();
    result.rates.push_back(std::move(rr));
  }
  return result;
}

const std::vector<PaperRow>& paper_table2_reference() {
  static const std::vector<PaperRow> kRows = {
      {5, 58.969, 357.619},    {10, 60.904, 360.761},
      {20, 232.944, 419.513},  {40, 1123.317, 1482.500},
      {80, 1636.907, 1913.752},
  };
  return kRows;
}

const std::vector<PaperRow>& paper_table3_reference() {
  static const std::vector<PaperRow> kRows = {
      {5, 58.969, 346.142},   {10, 59.020, 334.501},
      {20, 74.747, 373.992},  {40, 744.535, 819.748},
      {80, 1144.580, 1249.122},
  };
  return kRows;
}

}  // namespace ifot::mgmt
