// The flow directory: the "search function for data streams generated
// from IoT devices" the paper lists as future work. Every deployed task
// announces its output flow on a retained ifot/directory/... topic; this
// class watches those announcements from a management module and offers
// lookup by recipe, node type or module — the entry's topic can be fed
// straight into a `tap` recipe node for secondary use.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/middleware.hpp"

namespace ifot::mgmt {

/// Live view of the fabric's announced flows.
class FlowDirectory {
 public:
  struct Entry {
    std::string key;     ///< directory topic suffix (<recipe>/<task>)
    std::string topic;   ///< flow topic (subscribe or tap this)
    std::string type;    ///< producing node type
    std::string module;  ///< hosting module
    std::size_t partitions = 1;
    int shard = -1;      ///< owning broker index when federated, else -1

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  /// Starts watching from `watcher` (any connected module). Entries
  /// appear/disappear as recipes deploy/undeploy (retained messages make
  /// the view catch up even when the watcher starts late).
  Status attach(core::Middleware& mw, NodeId watcher);

  [[nodiscard]] std::vector<Entry> entries() const;
  /// Flows of a given node type ("sensor", "predict", ...).
  [[nodiscard]] std::vector<Entry> by_type(const std::string& type) const;
  /// The flow topic for <recipe>/<task>, or empty when unknown.
  [[nodiscard]] std::string topic_of(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Renders the directory as a table.
  [[nodiscard]] std::string to_string() const;

 private:
  void on_announcement(const std::string& topic, const Bytes& payload);

  std::map<std::string, Entry> entries_;
};

}  // namespace ifot::mgmt
