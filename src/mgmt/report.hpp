// Report formatting for the management node: fixed-width tables in the
// style of the paper's Tables II/III, with paper-vs-measured columns, and
// CSV output for downstream plotting.
#pragma once

#include <string>
#include <vector>

#include "mgmt/paper_experiment.hpp"

namespace ifot::mgmt {

/// Generic fixed-width ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; cells beyond the header count are dropped.
  void add_row(std::vector<std::string> cells);

  /// Renders with aligned columns and a header rule.
  [[nodiscard]] std::string to_string() const;
  /// Renders as CSV.
  [[nodiscard]] std::string to_csv() const;

  /// Formats a double with fixed precision.
  static std::string num(double v, int precision = 3);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders Table II (sensing->training) or Table III (sensing->predicting)
/// from an experiment result, with the paper's reference numbers beside
/// the measured ones.
std::string format_paper_table(const PaperExperimentResult& result,
                               bool training);

/// One-line shape verdict comparing measured results to the paper's
/// qualitative claims (flat -> knee -> saturation; predict cheaper than
/// train). Used by benches and EXPERIMENTS.md.
std::string shape_verdict(const PaperExperimentResult& result);

/// Writes `table` as <name>.csv under the directory named by the
/// IFOT_CSV_DIR environment variable (for downstream plotting); no-op
/// when the variable is unset. Returns the path written, or empty.
std::string maybe_write_csv(const std::string& name, const Table& table);

}  // namespace ifot::mgmt
