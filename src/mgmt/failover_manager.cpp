#include "mgmt/failover_manager.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace ifot::mgmt {
namespace {
constexpr const char* kLog = "mgmt.failover";
}

Status FailoverManager::attach(core::Middleware& mw, NodeId watcher) {
  return mw.watch(watcher, "ifot/status/+",
                  [this, &mw](const std::string& topic, const Bytes& payload) {
                    on_status(mw, topic, payload);
                  });
}

void FailoverManager::on_status(core::Middleware& mw,
                                const std::string& topic,
                                const Bytes& payload) {
  constexpr std::string_view kPrefix = "ifot/status/";
  if (topic.size() <= kPrefix.size()) return;
  const std::string module_name = topic.substr(kPrefix.size());
  const std::string state = to_string(BytesView(payload));

  if (state == "online") {
    offline_.erase(std::remove(offline_.begin(), offline_.end(), module_name),
                   offline_.end());
    return;
  }
  if (state != "offline") return;
  if (std::find(offline_.begin(), offline_.end(), module_name) !=
      offline_.end()) {
    return;  // already handled
  }
  offline_.push_back(module_name);

  auto* failed = mw.module_by_name(module_name);
  if (failed == nullptr) return;
  const NodeId id = failed->id();
  IFOT_LOG(kWarn, kLog) << "module '" << module_name
                        << "' reported offline; scheduling failover";

  // Run the failover from a fresh simulator event rather than inside the
  // MQTT delivery path (redeploy settles the fabric by running the
  // simulator, which must not nest inside this handler's packet
  // processing).
  mw.simulator().schedule_after(0, [this, &mw, id, module_name] {
    // Mark the module failed/excluded (idempotent when the crash was
    // injected via fail_module already).
    (void)mw.fail_module(id);
    const Status outcome = mw.redeploy_failed(id);
    if (outcome.ok()) {
      ++failovers_;
      IFOT_LOG(kWarn, kLog) << "failover for '" << module_name
                            << "' complete";
    } else {
      IFOT_LOG(kError, kLog) << "failover for '" << module_name
                             << "' failed: " << outcome.error().to_string();
    }
    if (hook_) hook_(module_name, outcome);
  });
}

}  // namespace ifot::mgmt
