// Automatic failover: the management-node component that closes the loop
// between failure *detection* (a module's MQTT will publishing "offline"
// on its retained status topic) and failure *handling*
// (Middleware::redeploy_failed re-placing the dead module's tasks on
// survivors). With this attached, the fabric self-heals from module
// crashes after one keep-alive grace period — the paper's dynamic-leave
// future work, end to end.
#pragma once

#include <functional>
#include <string>

#include "core/middleware.hpp"

namespace ifot::mgmt {

/// Watches ifot/status/+ from a management module and triggers failover.
class FailoverManager {
 public:
  /// Begins watching from `watcher` (any connected module).
  Status attach(core::Middleware& mw, NodeId watcher);

  /// Number of completed automatic failovers.
  [[nodiscard]] std::size_t failovers() const { return failovers_; }
  /// Modules currently known offline.
  [[nodiscard]] const std::vector<std::string>& offline() const {
    return offline_;
  }

  /// Optional observer invoked after each failover attempt.
  using Hook = std::function<void(const std::string& module, Status outcome)>;
  void set_hook(Hook hook) { hook_ = std::move(hook); }

 private:
  void on_status(core::Middleware& mw, const std::string& topic,
                 const Bytes& payload);

  std::size_t failovers_ = 0;
  std::vector<std::string> offline_;
  Hook hook_;
};

}  // namespace ifot::mgmt
