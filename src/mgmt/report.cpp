#include "mgmt/report.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

namespace ifot::mgmt {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += " ";
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      line += " |";
    }
    return line + "\n";
  };
  std::string rule = "+";
  for (std::size_t w : widths) {
    rule.append(w + 2, '-');
    rule += "+";
  }
  rule += "\n";
  std::string out = rule + render_row(headers_) + rule;
  for (const auto& row : rows_) out += render_row(row);
  out += rule;
  return out;
}

std::string Table::to_csv() const {
  auto csv_row = [](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) line += ",";
      line += cells[c];
    }
    return line + "\n";
  };
  std::string out = csv_row(headers_);
  for (const auto& row : rows_) out += csv_row(row);
  return out;
}

std::string maybe_write_csv(const std::string& name, const Table& table) {
  const char* dir = std::getenv("IFOT_CSV_DIR");
  if (dir == nullptr || *dir == '\0') return {};
  const std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  if (!out) return {};
  out << table.to_csv();
  return path;
}

std::string format_paper_table(const PaperExperimentResult& result,
                               bool training) {
  const auto& reference =
      training ? paper_table2_reference() : paper_table3_reference();
  Table t({"rate (Hz)", "avg (ms)", "max (ms)", "p99 (ms)", "n",
           "paper avg (ms)", "paper max (ms)"});
  for (const auto& rr : result.rates) {
    const LatencyRecorder& rec = training ? rr.train : rr.predict;
    std::string paper_avg = "-";
    std::string paper_max = "-";
    for (const auto& row : reference) {
      if (row.rate_hz == rr.rate_hz) {
        paper_avg = Table::num(row.avg_ms);
        paper_max = Table::num(row.max_ms);
        break;
      }
    }
    t.add_row({Table::num(rr.rate_hz, 0), Table::num(rec.avg_ms()),
               Table::num(rec.max_ms()), Table::num(rec.percentile_ms(99)),
               std::to_string(rec.count()), paper_avg, paper_max});
  }
  maybe_write_csv(training ? "table2_training" : "table3_predicting", t);
  std::string title = training
                          ? "Table II reproduction: sensing -> training\n"
                          : "Table III reproduction: sensing -> predicting\n";
  return title + t.to_string();
}

std::string shape_verdict(const PaperExperimentResult& result) {
  if (result.rates.size() < 3) return "insufficient rates for a verdict";
  const auto& low = result.rates.front();
  const auto& high = result.rates.back();
  // The paper's qualitative claims:
  //  (1) low rates are processed with low latency;
  //  (2) latency blows up at high rates (saturation);
  //  (3) predicting saturates later / lower than training.
  const bool low_ok = low.train.avg_ms() < 150 && low.predict.avg_ms() < 150;
  const bool blowup = high.train.avg_ms() > 5 * low.train.avg_ms();
  const bool predict_cheaper = high.predict.avg_ms() < high.train.avg_ms();
  std::string out = "shape check: ";
  out += low_ok ? "[ok] real-time at low rate; " : "[FAIL] slow at low rate; ";
  out += blowup ? "[ok] saturation at high rate; "
                : "[FAIL] no saturation at high rate; ";
  out += predict_cheaper ? "[ok] predicting cheaper than training"
                         : "[FAIL] predicting not cheaper than training";
  return out;
}

}  // namespace ifot::mgmt
