#include "mgmt/status_board.hpp"

#include "mgmt/report.hpp"

namespace ifot::mgmt {

std::string fabric_status(core::Middleware& mw) {
  Table t({"module", "role", "tasks", "cpu util", "backlog (ms)",
           "samples out", "flows in", "state"});
  for (NodeId id : mw.module_ids()) {
    auto& m = mw.module(id);
    std::string role = m.is_broker() ? "broker" : "worker";
    if (!m.sensors().empty()) role += "+sensors";
    if (!m.actuators().empty()) role += "+actuators";
    std::string tasks;
    for (const auto& dt : m.tasks()) {
      if (!tasks.empty()) tasks += " ";
      tasks += dt.task->spec().name;
    }
    if (tasks.empty()) tasks = "-";
    t.add_row({m.name(), role, tasks, Table::num(m.utilization(), 2),
               Table::num(to_millis(m.cpu().backlog()), 1),
               std::to_string(m.counters().get("samples_emitted")),
               std::to_string(m.counters().get("flow_dispatched") +
                              m.counters().get("flow_dispatched_local")),
               m.failed() ? "FAILED" : "up"});
  }
  std::string out = "fabric status\n" + t.to_string();

  for (NodeId broker_id : mw.broker_modules()) {
    auto& broker_mod = mw.module(broker_id);
    auto* broker = broker_mod.broker();
    if (broker == nullptr) continue;
    Table b({"broker counter (" + broker_mod.name() + ")", "value"});
    for (const auto& [name, value] : broker->counters().sorted()) {
      b.add_row({name, std::to_string(value)});
    }
    b.add_row({"sessions", std::to_string(broker->session_count())});
    b.add_row({"retained", std::to_string(broker->retained_count())});
    out += "\n" + b.to_string();
  }
  return out;
}

std::string placement_board(const core::Middleware& mw) {
  std::string out;
  for (const auto& d : mw.deployments()) {
    out += mw.describe(d);
  }
  return out.empty() ? "no deployments\n" : out;
}

}  // namespace ifot::mgmt
