// Federation bridge: one bidirectional broker-to-broker link.
//
// A bridge is deliberately *just two MQTT clients* (ROADMAP: "a bridge
// is just a client with filter-scoped subscriptions") — one session on
// the local broker, one on the remote — glued back to back. Each half
// connects with a "$bridge/<name>" client id, which the broker
// recognizes: bridge subscriptions live in a broker-side registry
// instead of the subscription tree, and matched publishes arrive
// wrapped as "$fed/<hops>/<topic>" over the ordinary Outbox/
// WireTemplate egress path. The bridge relays each wrap verbatim to the
// other side, where the peer broker unwraps, routes locally, and — hop
// budget permitting — re-wraps for its own bridges.
//
// The one topic the bridge rewrites is peer health: a forwarded
// "$SYS/broker/..." stat would collide with the destination broker's
// own $SYS namespace, so the relay remaps it under
// "$SYS/federation/peer/<source-label>/..." — every broker then serves
// its peers' vitals beside its own, and the management plane reads mesh
// health from any shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/stats.hpp"
#include "mqtt/client.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/scheduler.hpp"

namespace ifot::mqtt {

/// Identity and filter scope of one bridge.
struct BridgeConfig {
  /// Link name; both halves connect as "$bridge/<name>".
  std::string name;
  /// Labels naming the brokers on each side; forwarded $SYS stats land
  /// under "$SYS/federation/peer/<source label>/..." at the other side.
  std::string local_label = "local";
  std::string remote_label = "remote";
  /// Filters forwarded local -> remote (what the remote shard wants
  /// from this broker; typically the remote's owned prefixes + $SYS/#).
  std::vector<TopicRequest> out_filters;
  /// Filters forwarded remote -> local.
  std::vector<TopicRequest> in_filters;
  std::uint16_t keep_alive_s = 60;
};

/// One bidirectional bridge between a local and a remote broker. The
/// owner wires each half to its broker's transport exactly like an
/// ordinary client (bytes in via *_data, callbacks out via the send
/// functions passed at construction).
class Bridge {
 public:
  using SendFn = Client::SendFn;

  Bridge(Scheduler& sched, BridgeConfig cfg, SendFn local_send,
         SendFn remote_send);

  // Transport events for the half facing the local broker.
  void local_transport_open();
  void local_data(BytesView data);
  void local_transport_closed();
  // ... and the half facing the remote broker.
  void remote_transport_open();
  void remote_data(BytesView data);
  void remote_transport_closed();

  [[nodiscard]] const BridgeConfig& config() const { return cfg_; }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  [[nodiscard]] Client& local() { return local_; }
  [[nodiscard]] Client& remote() { return remote_; }

  /// Invariants: non-empty name/labels, every configured filter valid.
  void audit_invariants() const;

 private:
  /// Relays one wrapped publish to the other half, remapping inner
  /// "$SYS/..." topics under the source broker's peer subtree. Peer
  /// subtree topics themselves are not re-relayed (a full mesh delivers
  /// every broker's stats directly; re-relaying would chain remaps).
  void relay(const Publish& p, Client& to, const std::string& from_label,
             const char* counter);
  void subscribe_half(Client& half, const std::vector<TopicRequest>& filters);

  BridgeConfig cfg_;
  Client local_;
  Client remote_;
  Counters counters_;
  std::string topic_scratch_;  // remap/wrap assembly between relays
};

}  // namespace ifot::mqtt
