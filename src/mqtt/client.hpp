// MQTT v3.1.1 client. The middleware's Publish and Subscribe classes
// (paper §IV-C.3) are thin wrappers over this client.
//
// Features: connect/reconnect with session resume, QoS 0/1/2 publish with
// completion callbacks and DUP redelivery, subscriptions with per-call
// SUBACK callbacks, automatic PINGREQ keep-alive, inbound QoS 2 dedup.
// Transport-agnostic (bytes in / bytes out) like the broker.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "common/bytes.hpp"
#include "common/stats.hpp"
#include "mqtt/id_set.hpp"
#include "mqtt/outbox.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/scheduler.hpp"

namespace ifot::mqtt {

/// Client tuning knobs and identity.
struct ClientConfig {
  std::string client_id;
  bool clean_session = true;
  std::uint16_t keep_alive_s = 60;
  std::optional<Will> will;
  /// Redelivery interval for unacknowledged QoS 1/2 publishes.
  SimDuration retry_interval = from_millis(1000);
  /// Retry interval for unacknowledged control packets (CONNECT,
  /// SUBSCRIBE, UNSUBSCRIBE) - lossy links drop those too.
  SimDuration control_retry_interval = from_millis(2000);
  std::size_t max_inflight = 32;
  /// Give up redelivering a QoS 1/2 publish after this many attempts;
  /// the publish's completion fires with a timeout error and the message
  /// is dropped (counted in counters()["retry_exhausted"]).
  int max_retries = 10;
  /// QoS 0 publishes buffered while offline; past the bound the oldest
  /// buffered message is dropped (counters()["qos0_dropped"]).
  std::size_t max_pending_qos0 = 256;
  /// Bound on the inbound QoS 2 dedup set; a lost broker PUBREL must not
  /// leak packet ids forever (counters()["qos2_dedup_evictions"]).
  std::size_t max_inbound_qos2 = 1024;
  /// Egress bounds: frames sent within one scheduler turn coalesce into
  /// a single transport write up to these limits.
  Outbox::Config egress;
};

/// The client-side protocol engine.
class Client {
 public:
  using SendFn = std::function<void(const Bytes&)>;
  using MessageHandler = std::function<void(const Publish&)>;
  using ConnackHandler = std::function<void(const Connack&)>;
  using SubackHandler = std::function<void(const Suback&)>;
  using Completion = std::function<void()>;
  /// Publish completion: ok on PUBACK/PUBCOMP (or immediate QoS 0 send),
  /// an error when redelivery is exhausted.
  using PublishCallback = std::function<void(Status)>;

  /// `send` transmits raw bytes to the broker.
  Client(Scheduler& sched, ClientConfig cfg, SendFn send);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Transport is up: sends CONNECT (and, on session resume, redelivers
  /// inflight QoS>0 messages after CONNACK).
  void on_transport_open();
  /// Raw bytes arrived from the broker.
  void on_data(BytesView data);
  /// Transport dropped; client goes offline, state kept for reconnect.
  void on_transport_closed();

  void set_on_connack(ConnackHandler h) { on_connack_ = std::move(h); }
  void set_on_message(MessageHandler h) { on_message_ = std::move(h); }
  /// Invoked when the broker violates the protocol; owner should close.
  void set_on_protocol_error(std::function<void(const Error&)> h) {
    on_protocol_error_ = std::move(h);
  }

  /// Publishes a message. QoS 0 sends immediately (offline -> buffered
  /// until connect). QoS 1/2 completion fires ok on PUBACK/PUBCOMP, or
  /// with an error once redelivery is exhausted (cfg.max_retries).
  /// The payload buffer is shared, never copied, across redeliveries.
  Status publish(std::string topic, SharedPayload payload, QoS qos,
                 bool retain = false, PublishCallback done = nullptr);

  /// Subscribes to the given filters; `done` fires on SUBACK.
  Status subscribe(std::vector<TopicRequest> topics,
                   SubackHandler done = nullptr);

  /// Unsubscribes; `done` fires on UNSUBACK.
  Status unsubscribe(std::vector<std::string> topics,
                     Completion done = nullptr);

  /// Graceful disconnect (DISCONNECT packet; will is discarded).
  void disconnect();

  [[nodiscard]] bool connected() const { return connected_; }
  [[nodiscard]] const std::string& client_id() const { return cfg_.client_id; }
  [[nodiscard]] std::size_t inflight_count() const { return inflight_.size(); }
  [[nodiscard]] std::size_t pending_qos0_count() const {
    return pending_qos0_.size();
  }
  /// Packet ids parked in inbound QoS 2 dedup (lost-PUBREL diagnostics).
  [[nodiscard]] std::size_t inbound_qos2_backlog() const {
    return inbound_qos2_.size();
  }
  [[nodiscard]] const Counters& counters() const { return counters_; }

 private:
  struct InflightPub {
    Publish msg;
    // Wire frame encoded once at first send; retransmits patch the DUP
    // bit (and id) in place instead of re-encoding. Pooled: acked
    // publishes return their template (buffer capacity intact) for the
    // next publish to reuse.
    WireTemplateRef wire;
    std::uint64_t retry_timer = 0;
    PublishCallback done;
    std::uint16_t attempts = 0;     // bounded by cfg.max_retries
    bool awaiting_pubcomp = false;
  };

  void handle_packet(Packet packet);
  void send_packet(const Packet& p);
  /// Queues the inflight publish's shared wire frame (encoding it once,
  /// lazily), patching packet id and DUP only.
  void send_publish_frame(InflightPub& inflight);
  /// Flushes everything queued this turn as one transport write.
  void flush_egress();
  std::uint16_t alloc_packet_id();
  void arm_retry(std::uint16_t packet_id);
  void arm_connect_retry();
  void arm_control_retry(std::uint16_t packet_id);
  void arm_ping();
  void fail_protocol(Error e);
  void flush_pending();

  Scheduler& sched_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  ClientConfig cfg_;
  SendFn send_;
  // Pool outlives (declared before) the outbox and inflight map that
  // hold Refs into it.
  WireTemplatePool template_pool_;
  Outbox outbox_;  // batches same-turn frames into one send_() call
  StreamDecoder decoder_;
  bool transport_up_ = false;
  bool connected_ = false;

  ConnackHandler on_connack_;
  MessageHandler on_message_;
  std::function<void(const Error&)> on_protocol_error_;

  std::uint16_t next_packet_id_ = 1;
  std::map<std::uint16_t, InflightPub> inflight_;
  struct PendingControl {
    Packet request;                  // SUBSCRIBE / UNSUBSCRIBE to resend
    SubackHandler on_suback;         // set for subscriptions
    Completion on_unsuback;          // set for unsubscriptions
    std::uint64_t retry_timer = 0;
  };
  std::map<std::uint16_t, PendingControl> pending_control_;
  std::deque<Publish> pending_qos0_;   // buffered while offline (bounded)
  BoundedIdSet inbound_qos2_;
  std::uint64_t ping_timer_ = 0;
  std::uint64_t connect_timer_ = 0;
  Counters counters_;
};

}  // namespace ifot::mqtt
