// MQTT v3.1.1 broker — the middleware's Broker class (paper §IV-C.3).
//
// Feature set (modelled on Mosquitto, which the paper's prototype used):
//  * sessions with clean/persistent semantics, session takeover,
//    session-present flag;
//  * QoS 0/1/2 in both directions, with redelivery (DUP) on timeout and
//    on reconnect; exactly-once inbound dedup for QoS 2;
//  * retained messages (empty retained payload clears);
//  * will messages published on ungraceful disconnect;
//  * keep-alive enforcement (1.5x grace per spec);
//  * wildcard subscriptions via TopicTree; per-subscriber max-QoS dedup
//    when several filters match.
//
// Transport-agnostic: the owner notifies link open/data/close and supplies
// per-link send/close callbacks; bytes in, bytes out.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/pool.hpp"
#include "common/stats.hpp"
#include "mqtt/id_set.hpp"
#include "mqtt/outbox.hpp"
#include "mqtt/packet.hpp"
#include "mqtt/retained_store.hpp"
#include "mqtt/route_cache.hpp"
#include "mqtt/scheduler.hpp"
#include "mqtt/subscription_set.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {

/// Opaque transport-connection identifier chosen by the transport layer.
using LinkId = std::uint64_t;

/// Broker tuning knobs.
struct BrokerConfig {
  /// Highest QoS granted on subscribe and accepted on publish.
  QoS max_qos = QoS::kExactlyOnce;
  /// Messages queued for an offline persistent session before dropping.
  std::size_t max_queued_per_session = 1000;
  /// Unacknowledged outbound messages per session before queueing.
  std::size_t max_inflight_per_session = 64;
  /// Redelivery interval for unacknowledged QoS 1/2 messages.
  SimDuration retry_interval = from_millis(2000);
  /// Give up redelivering after this many attempts (session keeps the
  /// message for reconnect-time redelivery regardless).
  int max_retries = 10;
  /// Bound on the per-session inbound QoS 2 dedup set. A peer whose
  /// PUBREL is lost for good would otherwise leak its packet id forever;
  /// past this bound the oldest parked id is evicted (counted in
  /// counters()["qos2_dedup_evictions"]).
  std::size_t max_inbound_qos2_per_session = 1024;
  /// When > 0, the broker periodically publishes its statistics under
  /// $SYS/broker/... (Mosquitto-style), for the management software.
  SimDuration sys_interval = 0;
  /// Per-link egress bounds: frames queued within one scheduler turn
  /// coalesce into a single transport write up to these limits.
  Outbox::Config egress;
  /// Bound on the ingress route cache (resolved topic -> fan-out plans,
  /// LRU-evicted; see mqtt/route_cache.hpp). 0 disables caching — every
  /// publish then re-derives its plan from the subscription trie.
  std::size_t route_cache_entries = 1024;
  /// Federation loop guard: a publish that has already crossed this many
  /// bridge links is not forwarded again (counted in
  /// counters()["bridge_loops_dropped"]). The hop count rides the
  /// "$fed/<hops>/<topic>" wrap, so the budget holds across brokers.
  std::uint32_t bridge_hop_budget = 4;
};

/// The broker. One instance per broker node.
class Broker {
 public:
  using SendFn = std::function<void(const Bytes&)>;
  using CloseFn = std::function<void()>;

  explicit Broker(Scheduler& sched, BrokerConfig cfg = {});
  ~Broker();
  Broker(const Broker&) = delete;
  Broker& operator=(const Broker&) = delete;

  /// A transport connection was established. The broker keeps `send` to
  /// emit packets and `close` to drop the link.
  void on_link_open(LinkId link, SendFn send, CloseFn close);

  /// Raw bytes arrived on a link (any framing; may contain partial or
  /// multiple packets).
  void on_link_data(LinkId link, BytesView data);

  /// The transport connection closed. If the client had not sent
  /// DISCONNECT, its will (if any) is published.
  void on_link_closed(LinkId link);

  /// Publishes a message as if originated by the broker itself (used for
  /// management/$SYS-style announcements). Takes the topic as a shared
  /// handle (implicitly convertible from std::string / const char*): a
  /// caller publishing the same topic repeatedly (sensor streams, tests
  /// of the hot path) can pre-share it and pay no per-publish topic
  /// allocation.
  void publish_local(SharedString topic, SharedPayload payload, QoS qos,
                     bool retain = false);

  [[nodiscard]] std::size_t session_count() const { return sessions_.size(); }
  [[nodiscard]] std::size_t connected_count() const;
  [[nodiscard]] std::size_t retained_count() const { return retained_.size(); }
  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Packet ids currently parked in inbound QoS 2 dedup across all
  /// sessions (diagnostics; a lost-PUBREL leak shows up here).
  [[nodiscard]] std::size_t inbound_qos2_backlog() const;
  /// Live federation-bridge sessions (client ids under "$bridge/").
  [[nodiscard]] std::size_t bridge_count() const {
    return bridge_links_.size();
  }
  /// Live shared-subscription groups, one per ($share group, filter).
  [[nodiscard]] std::size_t share_count() const { return shares_.size(); }

 private:
  struct Session;

  struct InflightOut {
    Publish msg;                 // packet_id assigned
    // Shared wire frame: the fan-out group's pooled template, or lazily
    // encoded on first send. Retransmits patch the id/DUP bytes, never
    // re-encode.
    WireTemplateRef wire;
    // When this message is next due for redelivery (0 = none scheduled).
    // The session's single retry timer scans these; there is no
    // per-message timer (and so no per-message closure allocation).
    SimTime next_retry_at = 0;
    std::uint16_t attempts = 0;     // bounded by cfg.max_retries
    bool awaiting_pubcomp = false;  // QoS2: PUBREC received, PUBREL sent
  };

  /// A delivery parked behind the inflight window (or an offline link).
  /// Keeps the fan-out group's template alive so draining the queue later
  /// still costs zero encodes.
  struct QueuedOut {
    Publish msg;
    WireTemplateRef wire;
  };

  /// Per-session state, kept on a byte diet: the million-sensor target
  /// multiplies every inline byte here by the session count, so the
  /// layout is budgeted in scripts/memory_budget.json and audited by
  /// scripts/check_layout.sh. Strings are shared handles, the will is
  /// heap-allocated only when present, flags pack into bitfields, and
  /// the subscription table is a pooled flat vector.
  struct Session {
    /// Inflight map and queue draw their nodes from the broker's
    /// NodePool: ack/redeliver churn recycles nodes instead of hitting
    /// the heap. The pool outlives every session (declared first in
    /// Broker).
    using InflightMap =
        std::map<std::uint16_t, InflightOut, std::less<>,
                 pool::NodeAllocator<std::pair<const std::uint16_t,
                                               InflightOut>>>;
    using QueuedDeque = std::deque<QueuedOut, pool::NodeAllocator<QueuedOut>>;

    explicit Session(pool::NodePool& nodes)
        : subscriptions(nodes),
          inflight(InflightMap::allocator_type(&nodes)),
          queued(QueuedDeque::allocator_type(&nodes)) {}

    // Shared handle: timer captures and the owning Link share this one
    // buffer instead of copying the string.
    SharedString client_id;
    // Will message, present only between CONNECT and DISCONNECT/death.
    // A pointer (8 bytes) instead of std::optional<Will> (72 inline
    // bytes): most sessions at scale carry no will.
    std::unique_ptr<Will> will;
    LinkId link = 0;  // 0 = offline
    // One retry timer per session (not per message): armed at the
    // earliest InflightOut::next_retry_at, rescanned on fire.
    std::uint64_t retry_timer = 0;
    SimTime retry_deadline = 0;
    // Subscriptions: filter -> granted QoS (also mirrored in tree_).
    SubscriptionSet subscriptions;
    // Outbound state.
    InflightMap inflight;
    QueuedDeque queued;  // offline / above inflight window
    // Inbound QoS2 exactly-once dedup: ids whose PUBLISH was routed but
    // whose PUBREL has not arrived yet. Bounded: lost PUBRELs must not
    // leak ids forever.
    BoundedIdSet inbound_qos2;
    std::uint16_t keep_alive_s = 0;
    std::uint16_t next_packet_id = 1;
    bool clean : 1 = true;
    bool connected : 1 = false;
    // Federation bridge session (client id under "$bridge/"): its
    // filters live in bridge_links_, not in the subscription tree, so
    // bridge churn never invalidates cached fan-out plans.
    bool is_bridge : 1 = false;
  };

  struct Link {
    LinkId id = 0;
    CloseFn close;
    StreamDecoder decoder;
    // Egress queue wrapping the transport send callback; frames queued
    // while handling one turn coalesce into a single write.
    std::unique_ptr<Outbox> outbox;
    // Shares the session's client-id buffer (empty until CONNECT
    // accepted); binding a link costs no string copy.
    SharedString session;
    SimTime last_rx = 0;
    std::uint64_t keepalive_timer = 0;
    bool egress_dirty : 1 = false;  // queued for the next flush_egress()
    bool got_connect : 1 = false;
    // Keep-alive cadence phase: false = next fire probes last_rx against
    // the grace deadline; true = next fire just rolls a fresh window.
    bool keepalive_wait : 1 = false;
  };

  /// Federation bridge peer: filter-scoped forwarding state for one
  /// connected "$bridge/..." session. Filters are matched linearly at
  /// forward time (a mesh has O(K) bridges, each with a handful of
  /// owned-prefix filters) and deliberately bypass tree_ so cached
  /// fan-out plans stay bridge-free.
  struct BridgeLink {
    SharedString client_id;
    // filter -> granted QoS, in subscribe order.
    std::vector<std::pair<SharedString, QoS>> filters;
    std::uint64_t forwarded = 0;  // publishes sent over this link
  };

  /// One shared-subscription group instance: every subscriber of the
  /// same "$share/<group>/<filter>" string load-balances one stream.
  /// The tree carries a single entry per group (key = the share string),
  /// so a fan-out plan names the group once; member resolution happens
  /// at delivery time via a deterministic round-robin cursor.
  struct Share {
    struct Member {
      SharedString client_id;
      QoS granted = QoS::kAtMostOnce;
    };
    SharedString group;   // "<group>"
    SharedString filter;  // inner filter (the tree position)
    std::vector<Member> members;  // join order; RR scans from `rr`
    std::size_t rr = 0;           // next member index to serve
    std::uint64_t deliveries = 0;
  };

  void handle_packet(Link& link, Packet packet);
  void handle_connect(Link& link, Connect c);
  void handle_publish(Session& session, Publish p);
  void handle_subscribe(Session& session, const Subscribe& s);
  void handle_unsubscribe(Session& session, const Unsubscribe& u);
  /// Registers one "$share/<group>/<filter>" subscription (parse already
  /// validated): joins or updates the group member and keeps the tree's
  /// single group entry at the members' max granted QoS.
  void subscribe_share(Session& session, const std::string& share_key,
                       const ShareFilter& parsed, QoS granted);
  /// Registers one bridge-session filter and replays matching retained
  /// messages over the bridge wrap (hops = 1) so a freshly linked peer
  /// converges on this broker's retained state.
  void subscribe_bridge(Session& session, const std::string& filter,
                        QoS granted);
  /// Removes `client_id` from the group keyed `share_key`, fixing the RR
  /// cursor and the tree's group entry (erased with the last member,
  /// re-inserted when the max granted QoS changed).
  void unsubscribe_share(const std::string& share_key,
                         std::string_view client_id);
  /// Tears down everything a dying session owns outside sessions_:
  /// plain tree entries, share memberships, bridge-link state.
  void purge_session_state(Session& session);

  /// Routes a message to every matching subscriber (and the retained
  /// store when retain is set). Steady-state hot topics resolve their
  /// fan-out plan from the route cache; misses re-derive it from the
  /// subscription trie and cache it at the current tree version.
  /// `bridge_origin`/`ingress_hops` are set when the publish arrived
  /// wrapped over a bridge: the origin link is never forwarded back to
  /// (no-echo) and the hop count rides into further forwards.
  void route(Publish p, const std::string& origin,
             const Session* bridge_origin = nullptr,
             std::uint32_t ingress_hops = 0) noexcept;

  /// Forwards `p` over every bridge link whose filters match, wrapped as
  /// "$fed/<hops+1>/<topic>" with one shared wire template per effective
  /// QoS. Enforces the no-echo rule and the hop budget.
  void forward_to_bridges(const Publish& p, const Session* bridge_origin,
                          std::uint32_t ingress_hops) noexcept;

  /// Resolves a "$share/..." plan entry to one group member: advances the
  /// group's round-robin cursor deterministically (preferring connected
  /// members, falling back to the cursor member so offline persistent
  /// workers still queue), writes the member's granted QoS to `granted`,
  /// and returns its session (nullptr when the group vanished).
  Session* resolve_share_member(std::string_view share_key,
                                QoS& granted) noexcept;

  /// Resolves `topic`'s fan-out plan from the subscription trie into
  /// `out` (both scratch args are cleared first): matches deduped by
  /// subscriber with the highest granted QoS, grouped by granted QoS,
  /// sorted within each group. The single source of truth for what a
  /// cached plan must contain (the cache audit re-derives through it).
  void derive_plan(std::string_view topic,
                   TopicTree<std::string, QoS>::MatchList& matches,
                   RouteCache::Plan& out) const noexcept;

  /// Queues or sends one message to one subscriber session. `wire` is
  /// the fan-out group's shared template (null for singleton deliveries
  /// such as retained replays; those encode lazily on first send).
  void deliver(Session& session, Publish p, WireTemplateRef wire) noexcept;
  /// Sends the next queued messages while the inflight window has room.
  void pump_queue(Session& session) noexcept;
  void send_inflight(Session& session, InflightOut& inflight) noexcept;
  /// Queues the inflight message's shared wire frame (encoding it first
  /// if this delivery never had a group template), patching id/DUP only.
  void send_inflight_frame(Session& session, InflightOut& inflight) noexcept;
  /// Acquires a pooled template and encodes `wire_msg` into it (counted
  /// as a fan-out encode).
  WireTemplateRef make_template(const Publish& wire_msg) noexcept;
  /// Schedules redelivery of one inflight message: stamps its deadline
  /// and arms (or keeps) the session retry timer.
  void arm_retry(Session& session, std::uint16_t packet_id) noexcept;
  /// Arms the session's single retry timer for `deadline` unless it is
  /// already armed at least as early (steady state: a no-op).
  void arm_session_retry(Session& session, SimTime deadline) noexcept;
  /// Session retry timer fired: redeliver every due inflight message and
  /// re-arm for the next deadline, if any.
  void on_retry_timer(const std::string& client_id) noexcept;

  void send_packet(Session& session, const Packet& p) noexcept;
  void send_packet(Link& link, const Packet& p) noexcept;
  /// Queues an owned, fully encoded frame on the link's outbox.
  void send_encoded(Link& link, Bytes wire) noexcept;
  /// Queues a shared PUBLISH template on the link's outbox; the packet
  /// id and DUP bit are patched in at flush time.
  void send_template(Link& link, WireTemplateRef wire,
                     std::uint16_t packet_id, bool dup) noexcept;
  /// Marks a link for the end-of-turn flush.
  void mark_egress_dirty(Link& link);
  /// Flushes every link that queued frames this turn; called once at the
  /// end of each externally triggered entry point and timer callback.
  void flush_egress() noexcept;
  void drop_link(Link& link, bool publish_will);
  void arm_keepalive(Link& link);
  /// Re-arms (or first-arms) the link's keep-alive timer for `delay`.
  void schedule_keepalive(Link& link, SimDuration delay) noexcept;
  /// Keep-alive timer fired: probe for silence or roll the grace window.
  void on_keepalive_timer(LinkId id) noexcept;
  void arm_sys_stats();
  void publish_sys_stats();

  Session& session_of(Link& link);
  std::uint16_t alloc_packet_id(Session& session) noexcept;

  /// Re-checks cross-container invariants (links <-> sessions <->
  /// subscription tree, inflight/queue/dedup bounds, retained-store
  /// shape). Audit builds (-DIFOT_AUDIT=ON) abort on violation; release
  /// builds compile this to a no-op.
  void audit_invariants() const;

  Scheduler& sched_;  // NOLINT(cppcoreguidelines-avoid-const-or-ref-data-members)
  BrokerConfig cfg_;
  // Pools outlive (are declared before) every container and Ref drawing
  // from them: session maps/queues recycle their nodes, fan-out and
  // inflight wire templates recycle their buffers.
  pool::NodePool node_pool_;
  WireTemplatePool template_pool_;
  /// Transparent hash: session lookups probe with the shared client-id
  /// handles (SharedString / string_view) without building temporary
  /// std::string keys.
  struct SessionHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::unordered_map<LinkId, std::unique_ptr<Link>> links_;
  std::unordered_map<std::string, std::unique_ptr<Session>, SessionHash,
                     std::equal_to<>>
      sessions_;
  // Federation state. Ordered maps (not hashed): forward_to_bridges and
  // the $SYS share report iterate them, and egress byte order must be
  // deterministic regardless of insertion history. Keys are the bridge
  // client id / the full "$share/<group>/<filter>" string.
  std::map<std::string, BridgeLink, std::less<>> bridge_links_;
  std::map<std::string, Share, std::less<>> shares_;
  TopicTree<std::string, QoS> tree_;
  RetainedStore retained_;
  Counters counters_;
  RouteCache route_cache_;
  // Re-fingerprints a topic against tree_ (bound once at construction;
  // passed to route_cache_.lookup for in-place revalidation).
  RouteCache::RefingerprintFn refingerprint_;
  // Scratch reused across route() calls (match results; the derived plan
  // for cache misses and uncacheable $-topics), so steady-state routing
  // allocates nothing. route() is never re-entered while a plan is being
  // executed — deliveries cannot drop links or publish.
  TopicTree<std::string, QoS>::MatchList match_scratch_;
  RouteCache::Plan plan_scratch_;
  // Scratch for SUBSCRIBE retained replay: matches collected per filter,
  // then deduped across the packet's filters at max granted QoS.
  std::vector<const Publish*> retained_ptr_scratch_;
  std::vector<std::pair<const Publish*, QoS>> retained_replay_scratch_;
  // Scratch for assembling "$fed/<hops>/<topic>" wraps in
  // forward_to_bridges (capacity retained across publishes).
  std::string fed_topic_scratch_;
  std::vector<LinkId> dirty_links_;  // links with frames queued this turn
  std::uint64_t generation_ = 0;  // guards timers across session resets
  std::uint64_t sys_timer_ = 0;
};

}  // namespace ifot::mqtt
