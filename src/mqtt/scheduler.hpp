// Timer abstraction that keeps the MQTT library independent of the
// discrete-event simulator: the node layer adapts sim::Simulator to this
// interface; a real deployment would adapt an OS event loop.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace ifot::mqtt {

/// Minimal timer service used by Broker and Client for keep-alive and
/// message-redelivery timers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current time (virtual in the simulator, monotonic in a real port).
  virtual SimTime now() = 0;

  /// Runs `fn` after `delay`; returns a cancellation handle (never 0).
  virtual std::uint64_t call_after(SimDuration delay,
                                   std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op for fired/unknown handles.
  virtual void cancel(std::uint64_t handle) = 0;
};

}  // namespace ifot::mqtt
