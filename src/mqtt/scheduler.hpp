// Timer abstraction that keeps the MQTT library independent of the
// discrete-event simulator: the node layer adapts sim::Simulator to this
// interface; a real deployment would adapt an OS event loop.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace ifot::mqtt {

/// Minimal timer service used by Broker and Client for keep-alive and
/// message-redelivery timers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Current time (virtual in the simulator, monotonic in a real port).
  virtual SimTime now() = 0;

  /// Runs `fn` after `delay`; returns a cancellation handle (never 0).
  virtual std::uint64_t call_after(SimDuration delay,
                                   std::function<void()> fn) = 0;

  /// Cancels a pending timer; no-op for fired/unknown handles.
  virtual void cancel(std::uint64_t handle) = 0;

  /// Re-arms the timer named by `handle` to fire `delay` from now, keeping
  /// its stored callback (no fresh closure). Returns the replacement
  /// handle, or 0 when `handle` is stale or the backing scheduler cannot
  /// re-arm — callers fall back to cancel + call_after. Re-arming the
  /// timer that is currently firing (from inside its own callback)
  /// revives it in place. Consumes one timer sequence number, exactly
  /// like call_after, so simulation traces are unaffected by which path
  /// a call site takes.
  virtual std::uint64_t rearm(std::uint64_t handle, SimDuration delay) {
    (void)handle;
    (void)delay;
    return 0;
  }
};

}  // namespace ifot::mqtt
