// Trie-backed retained-message store (§3.3.1-7).
//
// The broker used to keep retained messages in a flat map and scan the
// whole store with topic_matches once per filter per SUBSCRIBE — O(all
// retained topics) even for a subscription matching none of them, and
// the scan replayed a topic once per matching filter (the
// duplicate-delivery bug the broker's replay dedup now guards against).
// This store indexes retained messages by topic level, mirroring the
// TopicTree layout, so collect(filter) walks only the branches the
// filter can reach: an exact level follows one child, '+' expands one
// level, '#' collects a subtree. §4.7.2 applies on the way down —
// wildcard steps at the root never enter '$'-prefixed branches, so a
// "#" subscription cannot replay $SYS retained state
// (differential-tested against topic_matches).
//
// Children are ordered maps with transparent lookup: walks take
// string_view levels without temporary keys, and collect() appends in
// level-wise lexicographic topic order, deterministically.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mqtt/packet.hpp"

namespace ifot::mqtt {

class RetainedStore {
 public:
  /// Stores a copy of `msg` as the retained message for its topic,
  /// replacing any previous one (the copy shares topic/payload buffers;
  /// DUP is cleared — it is per-delivery state, §3.3.1-3). Empty-payload
  /// clears must go through clear() instead (§3.3.1-10).
  // static: alloc(retained-trie mutation — node + message storage,
  // bounded by the retained population; off the steady publish path)
  void set(const Publish& msg) noexcept;

  /// Removes the retained message for `topic`, pruning emptied branches.
  /// Returns true when one existed.
  // static: alloc(prune-path scratch growth; capacity is retained, and
  // clearing only happens on an empty-payload retained publish)
  bool clear(std::string_view topic) noexcept;

  /// Appends a pointer to every retained message whose topic matches
  /// `filter` (§4.7 semantics including the §4.7.2 $-exclusion), in
  /// level-wise lexicographic topic order. Pointers stay valid until the
  /// next set/clear. Steady-state allocation-free once the level scratch
  /// and `out` reach working capacity.
  void collect(std::string_view filter,
               std::vector<const Publish*>& out) const noexcept;

  /// Exact-topic lookup (tests/audits); null when nothing is retained.
  [[nodiscard]] const Publish* find(std::string_view topic) const;

  /// Invokes `fn` for every retained message (topic order).
  void for_each(const std::function<void(const Publish&)>& fn) const;

  [[nodiscard]] std::size_t size() const { return count_; }
  /// Trie nodes below the root; pruning returns this to baseline after
  /// set/clear churn (regression-tested).
  [[nodiscard]] std::size_t node_count() const;

  /// Structural self-checks: message count, key/topic agreement, no
  /// empty leaves left unpruned. Audit builds abort on violation;
  /// release builds compile this to a no-op.
  void audit_invariants() const;

 private:
  struct Node {
    // Ordered + transparent: deterministic collect order, no temporary
    // std::string keys on lookup.
    using ChildMap = std::map<std::string, std::unique_ptr<Node>, std::less<>>;
    ChildMap children;
    std::optional<Publish> msg;
  };

  static void split_levels(std::string_view s,
                           std::vector<std::string_view>& out) noexcept;
  static void collect_rec(const Node& node,
                          const std::vector<std::string_view>& levels,
                          std::size_t depth,
                          std::vector<const Publish*>& out) noexcept;
  static void collect_subtree(const Node& node, bool skip_dollar,
                              std::vector<const Publish*>& out) noexcept;
  static void for_each_rec(const Node& node,
                           const std::function<void(const Publish&)>& fn);
  static std::size_t node_count_rec(const Node& node);
  void audit_rec(const Node& node, std::string& path, bool is_root,
                 std::size_t& found) const;

  Node root_;
  std::size_t count_ = 0;
  // Reused per-call scratch (filter/topic level views); mutable so const
  // lookups reuse it too. Not thread-safe, like the rest of the broker.
  mutable std::vector<std::string_view> levels_scratch_;
  std::vector<std::pair<Node*, Node::ChildMap::iterator>> path_scratch_;
};

}  // namespace ifot::mqtt
