#include "mqtt/client.hpp"

#include <cassert>

#include "common/audit.hpp"
#include "common/log.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {
constexpr const char* kLog = "mqtt.client";
}

Client::Client(Scheduler& sched, ClientConfig cfg, SendFn send)
    : sched_(sched),
      cfg_(std::move(cfg)),
      send_(std::move(send)),
      outbox_(cfg_.egress, [this](const Bytes& wire) { send_(wire); },
              &counters_) {
  assert(send_);
  inbound_qos2_.set_capacity(cfg_.max_inbound_qos2);
}

Client::~Client() {
  if (ping_timer_ != 0) sched_.cancel(ping_timer_);
  if (connect_timer_ != 0) sched_.cancel(connect_timer_);
  for (auto& [_, inflight] : inflight_) {
    if (inflight.retry_timer != 0) sched_.cancel(inflight.retry_timer);
  }
  for (auto& [_, pc] : pending_control_) {
    if (pc.retry_timer != 0) sched_.cancel(pc.retry_timer);
  }
}

void Client::on_transport_open() {
  transport_up_ = true;
  decoder_ = StreamDecoder{};
  Connect c;
  c.client_id = cfg_.client_id;
  c.clean_session = cfg_.clean_session;
  c.keep_alive_s = cfg_.keep_alive_s;
  c.will = cfg_.will;
  send_packet(Packet{c});
  arm_connect_retry();  // lossy links can drop the CONNECT itself
  flush_egress();
}

void Client::arm_connect_retry() {
  // Self-re-arming: a fire that retries revives its own timer node via
  // rearm, so the closure is built once per connect attempt burst.
  std::uint64_t timer = 0;
  if (connect_timer_ != 0) {
    timer = sched_.rearm(connect_timer_, cfg_.control_retry_interval);
  }
  if (timer == 0) {
    if (connect_timer_ != 0) sched_.cancel(connect_timer_);
    timer = sched_.call_after(cfg_.control_retry_interval, [this] {
      if (!transport_up_ || connected_) {
        connect_timer_ = 0;
        return;
      }
      counters_.add("connect_retries");
      Connect c;
      c.client_id = cfg_.client_id;
      c.clean_session = cfg_.clean_session;
      c.keep_alive_s = cfg_.keep_alive_s;
      c.will = cfg_.will;
      send_packet(Packet{c});
      arm_connect_retry();  // rearms the node firing right now
      flush_egress();
    });
  }
  connect_timer_ = timer;
}

void Client::arm_control_retry(std::uint16_t packet_id) {
  auto it = pending_control_.find(packet_id);
  if (it == pending_control_.end()) return;
  std::uint64_t timer = 0;
  if (it->second.retry_timer != 0) {
    timer = sched_.rearm(it->second.retry_timer, cfg_.control_retry_interval);
  }
  if (timer == 0) {
    if (it->second.retry_timer != 0) sched_.cancel(it->second.retry_timer);
    timer = sched_.call_after(cfg_.control_retry_interval, [this, packet_id] {
      auto pit = pending_control_.find(packet_id);
      if (pit == pending_control_.end()) return;
      if (!connected_) {  // resubscribed on next CONNACK path
        pit->second.retry_timer = 0;
        return;
      }
      counters_.add("control_retries");
      send_packet(pit->second.request);
      arm_control_retry(packet_id);  // rearms the node firing right now
      flush_egress();
    });
  }
  it->second.retry_timer = timer;
}

void Client::on_transport_closed() {
  transport_up_ = false;
  connected_ = false;
  outbox_.clear();  // the transport is gone; queued frames with it
  if (ping_timer_ != 0) {
    sched_.cancel(ping_timer_);
    ping_timer_ = 0;
  }
  if (connect_timer_ != 0) {
    sched_.cancel(connect_timer_);
    connect_timer_ = 0;
  }
  for (auto& [_, inflight] : inflight_) {
    if (inflight.retry_timer != 0) {
      sched_.cancel(inflight.retry_timer);
      inflight.retry_timer = 0;
    }
  }
  for (auto& [_, pc] : pending_control_) {
    if (pc.retry_timer != 0) {
      sched_.cancel(pc.retry_timer);
      pc.retry_timer = 0;
    }
  }
}

void Client::on_data(BytesView data) {
  decoder_.feed(data);
  while (true) {
    auto next = decoder_.next();
    if (!next) {
      fail_protocol(next.error());
      flush_egress();
      return;
    }
    if (!next.value()) {
      flush_egress();
      return;
    }
    handle_packet(std::move(*next.value()));
  }
}

void Client::fail_protocol(Error e) {
  IFOT_LOG(kWarn, kLog) << cfg_.client_id
                        << " protocol error: " << e.to_string();
  counters_.add("protocol_errors");
  connected_ = false;
  if (on_protocol_error_) on_protocol_error_(e);
}

void Client::handle_packet(Packet packet) {
  counters_.add("packets_in");
  std::visit(
      [&](auto&& p) {
        using T = std::decay_t<decltype(p)>;
        if constexpr (std::is_same_v<T, Connack>) {
          if (connect_timer_ != 0) {
            sched_.cancel(connect_timer_);
            connect_timer_ = 0;
          }
          if (p.code == ConnectCode::kAccepted) {
            connected_ = true;
            counters_.add("connects");
            arm_ping();
            // Re-issue unacknowledged control requests (lost SUBACKs or
            // a fresh transport).
            for (auto& [pid, pc] : pending_control_) {
              send_packet(pc.request);
              arm_control_retry(pid);
            }
            // Session resume: redeliver unacknowledged publishes (§4.4).
            // Stored wire frames are patched (DUP + id), not re-encoded.
            for (auto& [pid, inflight] : inflight_) {
              if (inflight.awaiting_pubcomp) {
                send_packet(Packet{Pubrel{pid}});
              } else {
                inflight.msg.dup = true;
                send_publish_frame(inflight);
              }
              ++inflight.attempts;
              arm_retry(pid);
            }
            flush_pending();
          }
          if (on_connack_) on_connack_(p);
        } else if constexpr (std::is_same_v<T, Publish>) {
          if (p.qos == QoS::kExactlyOnce) {
            // Exactly-once: deliver on first sight of this packet id.
            const std::uint64_t evictions_before = inbound_qos2_.evictions();
            if (inbound_qos2_.insert(p.packet_id)) {
              if (on_message_) on_message_(p);
            }
            const std::uint64_t evicted =
                inbound_qos2_.evictions() - evictions_before;
            if (evicted > 0) counters_.add("qos2_dedup_evictions", evicted);
            send_packet(Packet{Pubrec{p.packet_id}});
          } else {
            if (on_message_) on_message_(p);
            if (p.qos == QoS::kAtLeastOnce) {
              send_packet(Packet{Puback{p.packet_id}});
            }
          }
        } else if constexpr (std::is_same_v<T, Puback>) {
          auto it = inflight_.find(p.packet_id);
          if (it != inflight_.end() &&
              it->second.msg.qos == QoS::kAtLeastOnce) {
            if (it->second.retry_timer != 0) sched_.cancel(it->second.retry_timer);
            auto done = std::move(it->second.done);
            inflight_.erase(it);
            counters_.add("acked");
            if (done) done({});
          }
        } else if constexpr (std::is_same_v<T, Pubrec>) {
          auto it = inflight_.find(p.packet_id);
          if (it != inflight_.end() &&
              it->second.msg.qos == QoS::kExactlyOnce) {
            it->second.awaiting_pubcomp = true;
            it->second.attempts = 0;
          }
          send_packet(Packet{Pubrel{p.packet_id}});
        } else if constexpr (std::is_same_v<T, Pubrel>) {
          inbound_qos2_.erase(p.packet_id);
          send_packet(Packet{Pubcomp{p.packet_id}});
        } else if constexpr (std::is_same_v<T, Pubcomp>) {
          auto it = inflight_.find(p.packet_id);
          if (it != inflight_.end() && it->second.awaiting_pubcomp) {
            if (it->second.retry_timer != 0) sched_.cancel(it->second.retry_timer);
            auto done = std::move(it->second.done);
            inflight_.erase(it);
            counters_.add("acked");
            if (done) done({});
          }
        } else if constexpr (std::is_same_v<T, Suback>) {
          auto it = pending_control_.find(p.packet_id);
          if (it != pending_control_.end()) {
            if (it->second.retry_timer != 0) {
              sched_.cancel(it->second.retry_timer);
            }
            auto done = std::move(it->second.on_suback);
            pending_control_.erase(it);
            if (done) done(p);
          }
        } else if constexpr (std::is_same_v<T, Unsuback>) {
          auto it = pending_control_.find(p.packet_id);
          if (it != pending_control_.end()) {
            if (it->second.retry_timer != 0) {
              sched_.cancel(it->second.retry_timer);
            }
            auto done = std::move(it->second.on_unsuback);
            pending_control_.erase(it);
            if (done) done();
          }
        } else if constexpr (std::is_same_v<T, Pingresp>) {
          // Liveness confirmed; nothing to do.
        } else {
          fail_protocol(Err(Errc::kProtocol,
                            std::string("unexpected packet from broker: ") +
                                packet_type_name(packet_type(Packet{p}))));
        }
      },
      std::move(packet));
}

Status Client::publish(std::string topic, SharedPayload payload, QoS qos,
                       bool retain, PublishCallback done) {
  if (!valid_topic_name(topic)) {
    return Err(Errc::kInvalidArgument, "invalid topic name: " + topic);
  }
  Publish p;
  p.topic = std::move(topic);
  p.payload = std::move(payload);
  p.qos = qos;
  p.retain = retain;
  counters_.add("publishes");

  if (qos == QoS::kAtMostOnce) {
    if (connected_) {
      send_packet(Packet{p});
      flush_egress();
      if (done) done({});
    } else {
      // Bounded offline buffer: shed the oldest message first (the
      // freshest sensor reading is the valuable one).
      if (pending_qos0_.size() >= cfg_.max_pending_qos0) {
        pending_qos0_.pop_front();
        counters_.add("qos0_dropped");
      }
      pending_qos0_.push_back(std::move(p));
    }
    return {};
  }
  if (inflight_.size() >= cfg_.max_inflight) {
    return Err(Errc::kCapacity, "publish inflight window full");
  }
  const std::uint16_t pid = alloc_packet_id();
  p.packet_id = pid;
  auto [it, inserted] = inflight_.emplace(
      pid, InflightPub{std::move(p), nullptr, 0, std::move(done)});
  assert(inserted);
  // In-flight packet ids must be unique across both the publish window
  // and pending control requests, or acks would resolve the wrong one.
  IFOT_AUDIT_ASSERT(inserted && pid != 0 &&
                        pending_control_.find(pid) == pending_control_.end(),
                    "allocated packet id collides with in-flight state");
  if (connected_) {
    ++it->second.attempts;
    send_publish_frame(it->second);
    arm_retry(pid);
    flush_egress();
  }
  return {};
}

Status Client::subscribe(std::vector<TopicRequest> topics, SubackHandler done) {
  if (topics.empty()) {
    return Err(Errc::kInvalidArgument, "empty subscription list");
  }
  for (const auto& t : topics) {
    if (!valid_topic_filter(t.filter)) {
      return Err(Errc::kInvalidArgument, "invalid topic filter: " + t.filter);
    }
  }
  if (!connected_) return Err(Errc::kState, "not connected");
  Subscribe s;
  s.packet_id = alloc_packet_id();
  s.topics = std::move(topics);
  PendingControl pc;
  pc.request = Packet{s};
  pc.on_suback = std::move(done);
  pending_control_.emplace(s.packet_id, std::move(pc));
  send_packet(Packet{s});
  arm_control_retry(s.packet_id);
  flush_egress();
  return {};
}

Status Client::unsubscribe(std::vector<std::string> topics, Completion done) {
  if (topics.empty()) {
    return Err(Errc::kInvalidArgument, "empty unsubscription list");
  }
  if (!connected_) return Err(Errc::kState, "not connected");
  Unsubscribe u;
  u.packet_id = alloc_packet_id();
  u.topics = std::move(topics);
  PendingControl pc;
  pc.request = Packet{u};
  pc.on_unsuback = std::move(done);
  pending_control_.emplace(u.packet_id, std::move(pc));
  send_packet(Packet{u});
  arm_control_retry(u.packet_id);
  flush_egress();
  return {};
}

void Client::disconnect() {
  if (!connected_) return;
  send_packet(Packet{Disconnect{}});
  flush_egress();
  connected_ = false;
  if (ping_timer_ != 0) {
    sched_.cancel(ping_timer_);
    ping_timer_ = 0;
  }
}

void Client::flush_pending() {
  while (connected_ && !pending_qos0_.empty()) {
    send_packet(Packet{std::move(pending_qos0_.front())});
    pending_qos0_.pop_front();
  }
}

std::uint16_t Client::alloc_packet_id() {
  for (int i = 0; i < 65535; ++i) {
    const std::uint16_t pid = next_packet_id_;
    next_packet_id_ = next_packet_id_ == 65535
                          ? std::uint16_t{1}
                          : static_cast<std::uint16_t>(next_packet_id_ + 1);
    if (inflight_.find(pid) == inflight_.end() &&
        pending_control_.find(pid) == pending_control_.end()) {
      return pid;
    }
  }
  return 0;
}

void Client::arm_retry(std::uint16_t packet_id) {
  auto it = inflight_.find(packet_id);
  if (it == inflight_.end()) return;
  std::uint64_t timer = 0;
  if (it->second.retry_timer != 0) {
    timer = sched_.rearm(it->second.retry_timer, cfg_.retry_interval);
  }
  if (timer == 0) {
    if (it->second.retry_timer != 0) sched_.cancel(it->second.retry_timer);
    timer = sched_.call_after(cfg_.retry_interval, [this, packet_id] {
      auto iit = inflight_.find(packet_id);
      if (iit == inflight_.end()) return;
      InflightPub& f = iit->second;
      if (!connected_) {
        f.retry_timer = 0;
        return;
      }
      // Attempt cap (mirrors the broker's): endless redelivery to a
      // peer that never acks would pin the packet id and the payload
      // buffer forever. Fail the publish instead.
      if (f.attempts > cfg_.max_retries) {
        counters_.add("retry_exhausted");
        auto done = std::move(f.done);
        inflight_.erase(iit);
        if (done) {
          done(Err(Errc::kTimeout, "publish retries exhausted"));
        }
        return;
      }
      counters_.add("redeliveries");
      if (f.awaiting_pubcomp) {
        send_packet(Packet{Pubrel{packet_id}});
      } else {
        // Retransmit = patch the DUP bit into the stored wire frame;
        // the packet is never re-encoded.
        f.msg.dup = true;
        send_publish_frame(f);
      }
      ++f.attempts;
      arm_retry(packet_id);  // rearms the node firing right now
      flush_egress();
    });
  }
  it->second.retry_timer = timer;
}

void Client::arm_ping() {
  if (cfg_.keep_alive_s == 0) {
    if (ping_timer_ != 0) {
      sched_.cancel(ping_timer_);
      ping_timer_ = 0;
    }
    return;
  }
  const SimDuration interval =
      from_seconds(static_cast<double>(cfg_.keep_alive_s));
  std::uint64_t timer = 0;
  if (ping_timer_ != 0) timer = sched_.rearm(ping_timer_, interval);
  if (timer == 0) {
    if (ping_timer_ != 0) sched_.cancel(ping_timer_);
    timer = sched_.call_after(interval, [this] {
      if (!connected_) {
        ping_timer_ = 0;
        return;
      }
      send_packet(Packet{Pingreq{}});
      arm_ping();  // rearms the node firing right now
      flush_egress();
    });
  }
  ping_timer_ = timer;
}

void Client::send_packet(const Packet& p) {
  if (!transport_up_) return;
  counters_.add("packets_out");
  // Encode into a recycled frame buffer from the outbox spare list.
  Bytes wire = outbox_.take_buffer();
  encode_into(p, wire);
  outbox_.enqueue(std::move(wire));
}

void Client::send_publish_frame(InflightPub& inflight) {
  if (!transport_up_) return;
  if (!inflight.wire) {
    Publish wire_msg = inflight.msg;  // shares topic/payload buffers
    wire_msg.dup = false;
    inflight.wire = template_pool_.acquire();
    inflight.wire->assign(wire_msg);
    counters_.add("egress_wire_templates");
  }
  counters_.add("packets_out");
  outbox_.enqueue(inflight.wire, inflight.msg.packet_id, inflight.msg.dup);
}

void Client::flush_egress() {
  if (!transport_up_) return;
  outbox_.flush();
}

}  // namespace ifot::mqtt
