// Topic-prefix shard map for the broker federation (DESIGN.md §4i).
//
// The paper's PO3 vision is many small nodes with no central choke
// point; a FederationMap is the piece that makes a K-broker mesh agree
// on *who owns what* without coordination. Operators pin topic-prefix
// namespaces ("city/north" -> broker 2); everything unpinned falls back
// to a hash of the topic base that is byte-compatible with the legacy
// NeuronModule::broker_index_for assignment, so federated and
// pre-federation fabrics place unpinned flows identically. The map is
// immutable data shared by every module (producers and consumers resolve
// the same shard for a topic), and it is what the bridge mesh is built
// from: broker i's bridge to broker j subscribes to the filters owned by
// j so a publish landing on the wrong shard still reaches its owner.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ifot::mqtt {

/// Consistent prefix -> broker-shard assignment over a K-broker mesh.
class FederationMap {
 public:
  /// A map over `broker_count` shards (indices 0 .. broker_count-1).
  explicit FederationMap(std::size_t broker_count);

  /// Pins every topic at or under `prefix` (level-wise: "city/north"
  /// owns "city/north" and "city/north/...", never "city/northwest") to
  /// `broker`. Re-assigning a prefix replaces its owner. Errors
  /// (Errc::kInvalidArgument): empty prefix, wildcard or NUL characters,
  /// leading/trailing '/', broker index out of range.
  Status assign(std::string_view prefix, std::size_t broker);

  /// The shard owning `topic`. The longest (deepest) assigned prefix
  /// that level-matches wins; unpinned topics hash their first three
  /// levels (FNV-1a, byte-compatible with the legacy module placement).
  /// "$share/<g>/<f>" filters route by the inner filter so a worker
  /// group lands on the same broker as the stream it balances.
  [[nodiscard]] std::size_t shard_of(std::string_view topic) const noexcept;

  /// True when an assigned prefix (not the hash fallback) decided the
  /// shard of `topic`.
  [[nodiscard]] bool pinned(std::string_view topic) const noexcept;

  /// The prefixes assigned to `broker`, rendered as "<prefix>/#" topic
  /// filters — exactly what a bridge *into* that broker's shard
  /// subscribes to on a peer.
  [[nodiscard]] std::vector<std::string> filters_owned_by(
      std::size_t broker) const;

  [[nodiscard]] std::size_t broker_count() const { return broker_count_; }
  [[nodiscard]] std::size_t assignment_count() const {
    return assignments_.size();
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::size_t>>&
  assignments() const {
    return assignments_;
  }

  /// Invariants: at least one shard; every assignment names a valid
  /// in-range owner; prefixes are unique.
  void audit_invariants() const;

 private:
  static bool prefix_matches(std::string_view prefix,
                             std::string_view topic) noexcept;

  std::size_t broker_count_;
  // Insertion-ordered (prefix, owner) pairs; shard_of scans linearly for
  // the longest level-match. Shard maps are operator-sized (a handful of
  // namespaces), so a scan beats a trie until proven otherwise.
  std::vector<std::pair<std::string, std::size_t>> assignments_;
};

}  // namespace ifot::mqtt
