#include "mqtt/route_cache.hpp"

#include <utility>

#include "common/audit.hpp"

namespace ifot::mqtt {

const RouteCache::Plan* RouteCache::lookup(std::string_view topic,
                                           std::uint64_t tree_version) {
  if (capacity_ == 0) return nullptr;
  auto it = index_.find(topic);
  if (it == index_.end()) {
    if (counters_ != nullptr) counters_->add("route_cache_misses");
    return nullptr;
  }
  if (it->second->tree_version != tree_version) {
    // The subscription set changed since this plan was resolved: drop
    // the stale entry and report a (counted) miss so the caller
    // re-derives and re-inserts at the current version.
    if (counters_ != nullptr) {
      counters_->add("route_cache_invalidations");
      counters_->add("route_cache_misses");
    }
    lru_.erase(it->second);
    index_.erase(it);
    audit_invariants();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (counters_ != nullptr) counters_->add("route_cache_hits");
  audit_invariants();
  return &it->second->plan;
}

const RouteCache::Plan* RouteCache::insert(std::string_view topic,
                                           std::uint64_t tree_version,
                                           Plan plan) {
  if (capacity_ == 0) return nullptr;
  auto it = index_.find(topic);
  if (it != index_.end()) {
    // Same-version re-insert (two misses racing is impossible single-
    // threaded, but a caller may legitimately refresh): replace in place.
    it->second->tree_version = tree_version;
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    audit_invariants();
    return &it->second->plan;
  }
  if (lru_.size() >= capacity_) {
    if (counters_ != nullptr) counters_->add("route_cache_evictions");
    index_.erase(lru_.back().topic);
    lru_.pop_back();
  }
  lru_.push_front(Entry{std::string(topic), tree_version, std::move(plan)});
  index_.emplace(lru_.front().topic, lru_.begin());
  audit_invariants();
  return &lru_.front().plan;
}

void RouteCache::clear() {
  lru_.clear();
  index_.clear();
  audit_invariants();
}

void RouteCache::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;
  IFOT_AUDIT_ASSERT(index_.size() == lru_.size(),
                    "route cache index and LRU list diverged: " +
                        std::to_string(index_.size()) + " indexed, " +
                        std::to_string(lru_.size()) + " listed");
  IFOT_AUDIT_ASSERT(capacity_ == 0 || lru_.size() <= capacity_,
                    "route cache exceeded its entry bound");
  for (const auto& [topic, it] : index_) {
    IFOT_AUDIT_ASSERT(it->topic == topic,
                      "route cache index key '" + topic +
                          "' points at entry for '" + it->topic + "'");
  }
}

void RouteCache::audit_invariants(
    std::uint64_t tree_version,
    const std::function<void(std::string_view, Plan&)>& recompute) const {
  if constexpr (!audit::kEnabled) return;
  audit_invariants();
  Plan fresh;
  for (const Entry& e : lru_) {
    // Stale entries are legal residue — they are dropped on their next
    // lookup. Plans stamped with the live version must re-derive
    // exactly from the live trie.
    if (e.tree_version != tree_version) continue;
    recompute(e.topic, fresh);
    IFOT_AUDIT_ASSERT(fresh == e.plan,
                      "cached route plan for '" + e.topic +
                          "' diverged from the live subscription trie");
  }
}

}  // namespace ifot::mqtt
