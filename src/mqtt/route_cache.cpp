#include "mqtt/route_cache.hpp"

#include <utility>

#include "common/audit.hpp"

namespace ifot::mqtt {

const RouteCache::Plan* RouteCache::lookup(
    std::string_view topic, std::uint64_t tree_version,
    const RefingerprintFn& refingerprint) noexcept {
  if (capacity_ == 0) return nullptr;
  auto it = index_.find(topic);
  if (it == index_.end()) {
    if (counters_ != nullptr) counters_->add("route_cache_misses");
    return nullptr;
  }
  Entry& entry = *it->second;
  if (entry.tree_version != tree_version) {
    // The subscription set changed since this plan was resolved — but
    // most churn is on unrelated filters. Re-fingerprint the topic
    // against the live trie: an unchanged match set means the plan is
    // still exact, so restamp it instead of cold-starting the topic.
    if (refingerprint && refingerprint(entry.topic) == entry.plan.fingerprint) {
      entry.tree_version = tree_version;
      if (counters_ != nullptr) {
        counters_->add("route_cache_revalidations");
        counters_->add("route_cache_hits");
      }
      lru_.splice(lru_.begin(), lru_, it->second);
      audit_invariants();
      return &entry.plan;
    }
    if (counters_ != nullptr) {
      counters_->add("route_cache_invalidations");
      counters_->add("route_cache_misses");
    }
    retire(it);
    audit_invariants();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  if (counters_ != nullptr) counters_->add("route_cache_hits");
  audit_invariants();
  return &entry.plan;
}

const RouteCache::Plan* RouteCache::insert(std::string_view topic,
                                           std::uint64_t tree_version,
                                           const Plan& plan) noexcept {
  if (capacity_ == 0) return nullptr;
  auto it = index_.find(topic);
  if (it != index_.end()) {
    // Same-version re-insert (two misses racing is impossible single-
    // threaded, but a caller may legitimately refresh): replace in place.
    it->second->tree_version = tree_version;
    it->second->plan = plan;
    lru_.splice(lru_.begin(), lru_, it->second);
    audit_invariants();
    return &it->second->plan;
  }
  if (lru_.size() >= capacity_) {
    if (counters_ != nullptr) counters_->add("route_cache_evictions");
    retire(index_.find(lru_.back().topic));
  }
  if (!spare_.empty()) {
    // Recycle a retired entry: the splice moves the node (no allocation)
    // and copy-assignment reuses its topic/plan buffer capacity.
    lru_.splice(lru_.begin(), spare_, spare_.begin());
    Entry& entry = lru_.front();
    entry.topic.assign(topic);
    entry.tree_version = tree_version;
    entry.plan = plan;
  } else {
    lru_.push_front(Entry{std::string(topic), tree_version, plan});
  }
  index_.emplace(lru_.front().topic, lru_.begin());
  audit_invariants();
  return &lru_.front().plan;
}

void RouteCache::retire(
    std::unordered_map<std::string, std::list<Entry>::iterator, TopicHash,
                       std::equal_to<>>::iterator it) noexcept {
  IFOT_AUDIT_ASSERT(it != index_.end(), "retiring an unindexed cache entry");
  spare_.splice(spare_.begin(), lru_, it->second);
  index_.erase(it);
}

void RouteCache::clear() {
  while (!index_.empty()) retire(index_.begin());
  audit_invariants();
}

void RouteCache::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;
  IFOT_AUDIT_ASSERT(index_.size() == lru_.size(),
                    "route cache index and LRU list diverged: " +
                        std::to_string(index_.size()) + " indexed, " +
                        std::to_string(lru_.size()) + " listed");
  IFOT_AUDIT_ASSERT(capacity_ == 0 || lru_.size() <= capacity_,
                    "route cache exceeded its entry bound");
  IFOT_AUDIT_ASSERT(spare_.size() <= capacity_,
                    "route cache spare list exceeded the entry bound");
  for (const auto& [topic, it] : index_) {
    IFOT_AUDIT_ASSERT(it->topic == topic,
                      "route cache index key '" + topic +
                          "' points at entry for '" + it->topic + "'");
  }
}

void RouteCache::audit_invariants(
    std::uint64_t tree_version,
    const std::function<void(std::string_view, Plan&)>& recompute) const {
  if constexpr (!audit::kEnabled) return;
  audit_invariants();
  Plan fresh;
  for (const Entry& e : lru_) {
    // Stale entries are legal residue — they are revalidated or dropped
    // on their next lookup. Plans stamped with the live version must
    // re-derive exactly from the live trie (fingerprint included, which
    // also catches a fingerprint collision that revalidated a plan the
    // trie no longer produces).
    if (e.tree_version != tree_version) continue;
    recompute(e.topic, fresh);
    IFOT_AUDIT_ASSERT(fresh == e.plan,
                      "cached route plan for '" + e.topic +
                          "' diverged from the live subscription trie");
  }
}

}  // namespace ifot::mqtt
