// Unified egress layer: wire templates and per-link write batching.
//
// A fan-out group encodes one PUBLISH wire frame; every QoS 1/2 delivery
// of it differs only in the 2 packet-id bytes and the DUP flag bit, so a
// WireTemplate patches those in place at a precomputed offset instead of
// re-encoding per subscriber or per retransmit. The per-link Outbox then
// coalesces every frame queued within one scheduler turn into a single
// transport write (MQTT framing is self-delimiting, so a batch is just
// concatenated frames and the receiving StreamDecoder splits them back
// out). Both Broker and Client egress goes through this layer.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"
#include "common/pool.hpp"
#include "common/stats.hpp"
#include "mqtt/packet.hpp"

namespace ifot::mqtt {

/// One PUBLISH frame encoded once and shared across a whole fan-out
/// group, across the inflight window, and across retransmits. Frozen
/// except for the packet-id bytes and the DUP bit, which patched()
/// rewrites per delivery. Pool-recyclable: a recycled template keeps its
/// wire buffer's capacity, so assign() on the steady state re-encodes
/// without allocating.
class WireTemplate : public pool::RefCounted<WireTemplate> {
 public:
  WireTemplate() = default;
  explicit WireTemplate(EncodedPublish enc) : enc_(std::move(enc)) {}

  /// Re-encodes this template from `p` in place (clears and reuses the
  /// wire buffer's capacity).
  void assign(const Publish& p) {
    encode_publish_template_into(p, enc_);
    last_id_ = 0;
  }

  /// Patches the packet id and DUP bit in place and returns the frame.
  /// QoS 0 templates (no id field) take packet_id 0 / dup false only.
  const Bytes& patched(std::uint16_t packet_id, bool dup) noexcept;

  [[nodiscard]] bool has_packet_id() const {
    return enc_.packet_id_offset != 0;
  }
  [[nodiscard]] std::size_t size() const { return enc_.wire.size(); }
  [[nodiscard]] const Bytes& wire() const { return enc_.wire; }
  /// The id most recently patched in (0 before the first patched()).
  [[nodiscard]] std::uint16_t current_packet_id() const { return last_id_; }

 private:
  EncodedPublish enc_;
  std::uint16_t last_id_ = 0;
};

/// Pooled shared handle to a wire template (replaces shared_ptr on the
/// egress path: no control-block allocation, and dropped templates are
/// recycled with their buffer capacity intact).
using WireTemplateRef = pool::Ref<WireTemplate>;
using WireTemplatePool = pool::ObjectPool<WireTemplate>;

/// Per-link egress queue. Owners queue frames (owned control-packet
/// buffers or shared PUBLISH templates) as they handle a turn and call
/// flush() once at the end of it; everything queued in between goes out
/// as one transport write. Bounded: exceeding the frame/byte bound forces
/// an early flush (never a drop — protocol frames are not sheddable).
class Outbox {
 public:
  struct Config {
    /// Frames coalesced into one write before a forced flush.
    std::size_t max_queued_frames = 64;
    /// Byte bound on one coalesced write (a single larger frame still
    /// goes out whole, as its own write).
    std::size_t max_batch_bytes = 64 * 1024;
  };
  /// Transport write; the buffer is only borrowed for the call.
  using WriteFn = std::function<void(const Bytes&)>;

  Outbox(Config cfg, WriteFn write, Counters* counters)
      : cfg_(cfg), write_(std::move(write)), counters_(counters) {}

  /// Queues a fully encoded frame the outbox takes ownership of. Pair
  /// with take_buffer() to recycle frame buffers across turns.
  // static: alloc(entry-queue growth, bounded by max_queued_bytes)
  void enqueue(Bytes frame) noexcept;
  /// Queues a shared PUBLISH template. The id/DUP patch happens at flush
  /// time, so interleaved deliveries of the same template to other links
  /// cannot clobber a queued-but-unsent frame.
  // static: alloc(entry-queue growth, bounded by max_queued_bytes)
  void enqueue(WireTemplateRef tpl, std::uint16_t packet_id,
               bool dup) noexcept;
  /// Writes all queued frames as one transport write (zero-copy when a
  /// single frame is pending). No-op when nothing is queued.
  // static: alloc(batch hand-off through the registered write sink; batch
  // buffers recycle through the spare list, and the sink installed at
  // link setup is proven under the Network::send_frames root)
  void flush() noexcept;
  /// Drops everything queued (link teardown).
  void clear();

  /// Returns an empty frame buffer for the caller to encode into —
  /// recycled from a previously flushed owned frame when one is parked
  /// (capacity retained), fresh otherwise. Steady-state control-packet
  /// egress (acks, PINGs) cycles a handful of these without allocating.
  [[nodiscard]] Bytes take_buffer() noexcept;

  [[nodiscard]] std::size_t pending_frames() const { return entries_.size(); }
  [[nodiscard]] std::size_t pending_bytes() const { return pending_bytes_; }

  /// Re-checks queue bounds, byte accounting, and template/id pairing.
  /// Audit builds abort on violation; release builds compile to a no-op.
  void audit_invariants() const;

 private:
  struct Entry {
    Bytes owned;            // used when tpl is null
    WireTemplateRef tpl;    // shared PUBLISH frame
    std::uint16_t packet_id = 0;
    bool dup = false;
  };

  [[nodiscard]] std::size_t entry_size(const Entry& e) const {
    return e.tpl ? e.tpl->size() : e.owned.size();
  }
  /// Flushes when appending `incoming_bytes` would burst a bound.
  void make_room(std::size_t incoming_bytes);
  /// Parks a flushed owned buffer for take_buffer() reuse (bounded).
  void recycle_buffer(Bytes&& buf) noexcept;

  Config cfg_;
  WriteFn write_;
  Counters* counters_;  // not owned; may be null
  std::vector<Entry> entries_;
  std::size_t pending_bytes_ = 0;
  // Recycled frame buffers (owned-frame egress) and batch concatenation
  // buffers (multi-frame flushes). Both bounded; both keep capacity.
  std::vector<Bytes> spare_frames_;
  std::vector<Bytes> spare_batches_;
};

}  // namespace ifot::mqtt
