// Flat, pooled subscription table: filter -> granted QoS.
//
// Session::subscriptions used to be a std::map<std::string, QoS>: 48
// inline bytes, a tree node plus a heap string per filter, and every
// probe built from decoded packet fields allocated a temporary key.
// Sessions hold a handful of filters (the control plane churns them far
// less often than the data plane reads them), so a sorted flat vector
// wins on every axis: 32 inline bytes, entries draw their storage from
// the broker's NodePool, filters are SharedStrings (one shared buffer,
// 16 bytes inline), and lookup/erase take string_views — subscribe,
// unsubscribe and teardown never allocate a temporary key.
#pragma once

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/pool.hpp"
#include "common/shared_string.hpp"
#include "mqtt/packet.hpp"

namespace ifot::mqtt {

class SubscriptionSet {
 public:
  struct Entry {
    SharedString filter;
    QoS qos;
  };

  explicit SubscriptionSet(pool::NodePool& nodes)
      : entries_(Vec::allocator_type(&nodes)) {}

  /// Inserts or updates `filter`'s granted QoS. Returns true when the
  /// filter is new. The SharedString key is built only on first insert;
  /// re-grants (client refreshing its subscription) just overwrite QoS.
  bool assign(const std::string& filter, QoS qos) {
    const auto it = lower_bound(filter);
    if (it != entries_.end() && it->filter.view() == filter) {
      it->qos = qos;
      return false;
    }
    entries_.insert(it, Entry{SharedString(filter), qos});
    return true;
  }

  /// Removes `filter`; returns true when it was present. Heterogeneous:
  /// the probe key stays a view, no temporary allocation.
  bool erase(std::string_view filter) {
    const auto it = lower_bound(filter);
    if (it == entries_.end() || it->filter.view() != filter) return false;
    entries_.erase(it);
    return true;
  }

  /// Granted QoS for `filter`, or nullptr when not subscribed.
  [[nodiscard]] const QoS* find(std::string_view filter) const {
    const auto it = lower_bound(filter);
    if (it == entries_.end() || it->filter.view() != filter) return nullptr;
    return &it->qos;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }

 private:
  using Vec = std::vector<Entry, pool::NodeAllocator<Entry>>;

  [[nodiscard]] Vec::const_iterator lower_bound(std::string_view key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, std::string_view k) {
                              return e.filter.view() < k;
                            });
  }
  [[nodiscard]] Vec::iterator lower_bound(std::string_view key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const Entry& e, std::string_view k) {
                              return e.filter.view() < k;
                            });
  }

  Vec entries_;  // sorted by filter contents
};

}  // namespace ifot::mqtt
