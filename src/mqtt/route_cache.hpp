// Versioned ingress route cache: topic name -> resolved fan-out plan.
//
// The paper's workload (three sensor modules publishing fixed topic names
// at 5-80 Hz) routes the same handful of topics forever, so every
// Broker::route used to re-walk the subscription trie, re-sort and
// re-dedup the same match set per publish. RouteCache memoizes the final
// product of that work — the subscriber client ids deduped across
// overlapping filters with the max granted QoS applied, grouped per QoS
// level the way the egress wire templates consume them — keyed by topic
// name and stamped with the TopicTree version that produced it.
//
// Invalidation is surgical. The tree version detects that *some*
// subscription changed, but most churn is on filters unrelated to a
// given hot topic; dropping its plan for every unrelated change would
// cold-start the working set under subscriber churn. Each entry
// therefore also carries a fingerprint of the exact (subscriber, QoS)
// match set it was derived from: on a version mismatch, lookup() asks
// the caller to re-fingerprint the topic against the live trie (one
// match() walk, no sort/dedup/copy) and, when the fingerprint is
// unchanged, revalidates the entry in place (counted as
// route_cache_revalidations) instead of dropping it. Only a genuinely
// changed match set invalidates (route_cache_invalidations). A bounded
// LRU keeps memory flat under topic churn; invalidated and evicted
// entries are recycled through a spare list so steady-state churn
// re-uses their string/vector capacity. Steady-state hits cost one
// transparent-hash lookup and a list splice — no allocation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"

namespace ifot::mqtt {

/// Bounded LRU from topic name to its resolved fan-out plan, validated
/// against the subscription-tree version. One instance per Broker.
class RouteCache {
 public:
  /// A fully resolved fan-out: subscriber client ids deduped across
  /// overlapping filters (highest granted QoS wins, §3.3.5), grouped by
  /// granted QoS level — one group per egress wire template — and
  /// sorted within each group, so executing a plan is deterministic and
  /// byte-identical to routing without the cache.
  // static: alloc(cache-fill copy of the plan's subscriber id lists
  // into the entry on a miss; steady-state hits never copy a plan)
  struct Plan {
    std::array<std::vector<std::string>, 3> by_qos;
    /// Order-independent hash of the raw (subscriber, granted QoS) match
    /// multiset this plan was derived from (Broker::derive_plan stamps
    /// it). Equal match sets produce equal plans, so the fingerprint is
    /// the revalidation token: if the live trie still fingerprints a
    /// topic the same way after a version bump, the cached plan is still
    /// exact.
    std::uint64_t fingerprint = 0;

    [[nodiscard]] std::size_t subscriber_count() const {
      return by_qos[0].size() + by_qos[1].size() + by_qos[2].size();
    }
    friend bool operator==(const Plan&, const Plan&) = default;
  };

  /// Re-fingerprints `topic` against the live subscription trie (one
  /// match() walk). Supplied by the broker to lookup(); may be empty in
  /// tests, in which case any version mismatch invalidates.
  using RefingerprintFn = std::function<std::uint64_t(std::string_view)>;

  /// `capacity` == 0 disables the cache entirely (lookup always misses
  /// without counting, insert is a no-op); `counters` may be null.
  RouteCache(std::size_t capacity, Counters* counters)
      : capacity_(capacity), counters_(counters) {}

  /// Returns the plan cached for `topic`; null on a miss. An entry
  /// stamped with an older tree version is re-fingerprinted via
  /// `refingerprint`: an unchanged fingerprint revalidates it in place
  /// (counted as route_cache_revalidations, reported as a hit), a
  /// changed one drops it (counted as an invalidation and a miss). A hit
  /// refreshes the entry's LRU position.
  // static: leaf(revalidation calls the broker-installed refingerprint
  // functor, whose trie walk is proven under the TopicTree::match root;
  // the lookup itself only splices the intrusive LRU — no allocation)
  const Plan* lookup(std::string_view topic, std::uint64_t tree_version,
                     const RefingerprintFn& refingerprint = {}) noexcept;

  /// Caches a copy of `plan` for `topic` at `tree_version`, evicting the
  /// least recently used entry at capacity (recycled entries reuse their
  /// buffers). Returns the stored plan (null when the cache is
  /// disabled); the pointer stays valid until the entry is invalidated
  /// or evicted.
  // static: alloc(cache fill on a route-cache miss — plan copy + LRU
  // node; the steady state takes the lookup hit path)
  const Plan* insert(std::string_view topic, std::uint64_t tree_version,
                     const Plan& plan) noexcept;

  /// Drops every entry (counters unaffected).
  void clear();

  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  /// Structural self-checks: index and LRU list agree, the entry bound
  /// holds. Audit builds (-DIFOT_AUDIT=ON) abort on violation; release
  /// builds compile this to a no-op.
  void audit_invariants() const;

  /// Deep audit: every cached plan whose version is current must be
  /// re-derivable, byte-for-byte, from the live subscription trie.
  /// `recompute` resolves a topic's plan from the trie (the broker
  /// passes its own derivation). Stale entries are skipped — they are
  /// dropped on their next lookup.
  void audit_invariants(
      std::uint64_t tree_version,
      const std::function<void(std::string_view, Plan&)>& recompute) const;

 private:
  struct Entry {
    std::string topic;
    std::uint64_t tree_version = 0;
    Plan plan;
  };

  struct TopicHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  /// Moves an entry's list node to the spare list for buffer reuse and
  /// drops it from the index.
  void retire(std::unordered_map<std::string, std::list<Entry>::iterator,
                                 TopicHash,
                                 std::equal_to<>>::iterator it) noexcept;

  std::size_t capacity_;
  Counters* counters_;  // not owned; may be null
  std::list<Entry> lru_;  // front = most recently used
  // Retired entries (invalidated/evicted/cleared) parked for reuse:
  // insert() splices one back instead of allocating a node, and the
  // entry's topic string and plan vectors keep their capacity. Bounded
  // by construction — nodes only ever move between lru_ and spare_.
  std::list<Entry> spare_;
  std::unordered_map<std::string, std::list<Entry>::iterator, TopicHash,
                     std::equal_to<>>
      index_;
};

}  // namespace ifot::mqtt
