// Versioned ingress route cache: topic name -> resolved fan-out plan.
//
// The paper's workload (three sensor modules publishing fixed topic names
// at 5-80 Hz) routes the same handful of topics forever, so every
// Broker::route used to re-walk the subscription trie, re-sort and
// re-dedup the same match set per publish. RouteCache memoizes the final
// product of that work — the subscriber client ids deduped across
// overlapping filters with the max granted QoS applied, grouped per QoS
// level the way the egress wire templates consume them — keyed by topic
// name and stamped with the TopicTree version that produced it.
//
// Invalidation is precise because the tree version is: subscribe,
// unsubscribe and session teardown bump it exactly when they change the
// entry set, so a stale plan is detected on its next lookup (counted as
// route_cache_invalidations) and recomputed. A bounded LRU keeps memory
// flat under topic churn. Steady-state hits cost one transparent-hash
// lookup and a list splice — no allocation.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"

namespace ifot::mqtt {

/// Bounded LRU from topic name to its resolved fan-out plan, validated
/// against the subscription-tree version. One instance per Broker.
class RouteCache {
 public:
  /// A fully resolved fan-out: subscriber client ids deduped across
  /// overlapping filters (highest granted QoS wins, §3.3.5), grouped by
  /// granted QoS level — one group per egress wire template — and
  /// sorted within each group, so executing a plan is deterministic and
  /// byte-identical to routing without the cache.
  struct Plan {
    std::array<std::vector<std::string>, 3> by_qos;

    [[nodiscard]] std::size_t subscriber_count() const {
      return by_qos[0].size() + by_qos[1].size() + by_qos[2].size();
    }
    friend bool operator==(const Plan&, const Plan&) = default;
  };

  /// `capacity` == 0 disables the cache entirely (lookup always misses
  /// without counting, insert is a no-op); `counters` may be null.
  RouteCache(std::size_t capacity, Counters* counters)
      : capacity_(capacity), counters_(counters) {}

  /// Returns the plan cached for `topic` if it was resolved at
  /// `tree_version`; null on a miss. A version mismatch drops the stale
  /// entry (counted as an invalidation) and reports a miss. A hit
  /// refreshes the entry's LRU position.
  const Plan* lookup(std::string_view topic, std::uint64_t tree_version);

  /// Caches `plan` for `topic` at `tree_version`, evicting the least
  /// recently used entry at capacity. Returns the stored plan (null when
  /// the cache is disabled); the pointer stays valid until the entry is
  /// invalidated or evicted.
  const Plan* insert(std::string_view topic, std::uint64_t tree_version,
                     Plan plan);

  /// Drops every entry (counters unaffected).
  void clear();

  [[nodiscard]] std::size_t size() const { return lru_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool enabled() const { return capacity_ > 0; }

  /// Structural self-checks: index and LRU list agree, the entry bound
  /// holds. Audit builds (-DIFOT_AUDIT=ON) abort on violation; release
  /// builds compile this to a no-op.
  void audit_invariants() const;

  /// Deep audit: every cached plan whose version is current must be
  /// re-derivable, byte-for-byte, from the live subscription trie.
  /// `recompute` resolves a topic's plan from the trie (the broker
  /// passes its own derivation). Stale entries are skipped — they are
  /// dropped on their next lookup.
  void audit_invariants(
      std::uint64_t tree_version,
      const std::function<void(std::string_view, Plan&)>& recompute) const;

 private:
  struct Entry {
    std::string topic;
    std::uint64_t tree_version = 0;
    Plan plan;
  };

  struct TopicHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::size_t capacity_;
  Counters* counters_;  // not owned; may be null
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator, TopicHash,
                     std::equal_to<>>
      index_;
};

}  // namespace ifot::mqtt
