// MQTT v3.1.1 (OASIS standard) control-packet model and wire codec.
//
// The paper's flow-distribution function is built on Mosquitto, an MQTT
// broker; we implement the protocol itself so the substrate is real. All
// fourteen control packet types encode/decode, including the QoS 2
// handshake packets. The codec is transport-agnostic: StreamDecoder turns
// an arbitrary byte stream into complete packets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "common/shared_payload.hpp"
#include "common/shared_string.hpp"

namespace ifot::mqtt {

/// MQTT control packet type codes (fixed header bits 7-4).
enum class PacketType : std::uint8_t {
  kConnect = 1,
  kConnack = 2,
  kPublish = 3,
  kPuback = 4,
  kPubrec = 5,
  kPubrel = 6,
  kPubcomp = 7,
  kSubscribe = 8,
  kSuback = 9,
  kUnsubscribe = 10,
  kUnsuback = 11,
  kPingreq = 12,
  kPingresp = 13,
  kDisconnect = 14,
};

/// Quality-of-service levels.
enum class QoS : std::uint8_t { kAtMostOnce = 0, kAtLeastOnce = 1, kExactlyOnce = 2 };

/// CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
enum class ConnectCode : std::uint8_t {
  kAccepted = 0,
  kUnacceptableProtocol = 1,
  kIdentifierRejected = 2,
  kServerUnavailable = 3,
  kBadCredentials = 4,
  kNotAuthorized = 5,
};

/// SUBACK failure return code.
inline constexpr std::uint8_t kSubackFailure = 0x80;

/// Largest body a fixed header can declare (4 remaining-length bytes,
/// §2.2.3: 256 MiB - 1).
inline constexpr std::size_t kMaxRemainingLength = 268435455;

/// Will message carried in CONNECT.
struct Will {
  std::string topic;
  Bytes payload;
  QoS qos = QoS::kAtMostOnce;
  bool retain = false;
  friend bool operator==(const Will&, const Will&) = default;
};

struct Connect {
  std::string client_id;
  std::uint16_t keep_alive_s = 60;
  bool clean_session = true;
  std::optional<Will> will;
  std::optional<std::string> username;
  std::optional<std::string> password;
  friend bool operator==(const Connect&, const Connect&) = default;
};

struct Connack {
  bool session_present = false;
  ConnectCode code = ConnectCode::kAccepted;
  friend bool operator==(const Connack&, const Connack&) = default;
};

struct Publish {
  /// Reference-counted like the payload: copying a Publish shares the
  /// topic buffer, so QoS 1/2 fan-out / inflight / retained copies never
  /// duplicate the topic string either.
  SharedString topic;
  /// Reference-counted: copying a Publish shares the payload buffer, so
  /// broker fan-out / inflight / retained copies never duplicate bytes.
  SharedPayload payload;
  QoS qos = QoS::kAtMostOnce;
  bool retain = false;
  bool dup = false;
  std::uint16_t packet_id = 0;  ///< meaningful only for QoS > 0
  friend bool operator==(const Publish&, const Publish&) = default;
};

struct Puback {
  std::uint16_t packet_id = 0;
  friend bool operator==(const Puback&, const Puback&) = default;
};
struct Pubrec {
  std::uint16_t packet_id = 0;
  friend bool operator==(const Pubrec&, const Pubrec&) = default;
};
struct Pubrel {
  std::uint16_t packet_id = 0;
  friend bool operator==(const Pubrel&, const Pubrel&) = default;
};
struct Pubcomp {
  std::uint16_t packet_id = 0;
  friend bool operator==(const Pubcomp&, const Pubcomp&) = default;
};

struct TopicRequest {
  std::string filter;
  QoS qos = QoS::kAtMostOnce;
  friend bool operator==(const TopicRequest&, const TopicRequest&) = default;
};

struct Subscribe {
  std::uint16_t packet_id = 0;
  std::vector<TopicRequest> topics;
  friend bool operator==(const Subscribe&, const Subscribe&) = default;
};

struct Suback {
  std::uint16_t packet_id = 0;
  std::vector<std::uint8_t> return_codes;  ///< granted QoS or kSubackFailure
  friend bool operator==(const Suback&, const Suback&) = default;
};

struct Unsubscribe {
  std::uint16_t packet_id = 0;
  std::vector<std::string> topics;
  friend bool operator==(const Unsubscribe&, const Unsubscribe&) = default;
};

struct Unsuback {
  std::uint16_t packet_id = 0;
  friend bool operator==(const Unsuback&, const Unsuback&) = default;
};

struct Pingreq {
  friend bool operator==(const Pingreq&, const Pingreq&) = default;
};
struct Pingresp {
  friend bool operator==(const Pingresp&, const Pingresp&) = default;
};
struct Disconnect {
  friend bool operator==(const Disconnect&, const Disconnect&) = default;
};

using Packet =
    std::variant<Connect, Connack, Publish, Puback, Pubrec, Pubrel, Pubcomp,
                 Subscribe, Suback, Unsubscribe, Unsuback, Pingreq, Pingresp,
                 Disconnect>;

/// Returns the control-packet type of a Packet variant.
PacketType packet_type(const Packet& p);
/// Human-readable packet-type name (logging).
const char* packet_type_name(PacketType t);

/// Encodes one packet to its full wire form (fixed header + body).
Bytes encode(const Packet& p);

/// Encodes one packet into `out` (cleared first), reusing its capacity.
/// Fixed-size packets (acks, PINGs, CONNACK, DISCONNECT) and PUBLISH
/// write directly into `out` with no intermediate body buffer, so the
/// egress hot path can recycle one buffer per frame without ever
/// re-allocating at steady state.
// static: alloc(byte-buffer growth into a recycled caller buffer; the
// variant dispatch is a closed switch over the Packet alternative set,
// so std::get's bad-access throw path is structurally dead)
void encode_into(const Packet& p, Bytes& out) noexcept;

/// A PUBLISH encoded once for sharing across a fan-out group: the full
/// wire frame plus the byte offset of the 2-byte packet-id field.
/// Deliveries to different subscribers (and retransmits) differ only in
/// the packet id and the DUP flag bit, so egress code patches those in
/// place instead of re-encoding the frame (mqtt/outbox.hpp).
struct EncodedPublish {
  Bytes wire;
  /// Offset of the packet-id high byte within `wire`; 0 when the packet
  /// carries no id (QoS 0 — offset 0 is always inside the fixed header,
  /// so it can never be a real id position).
  std::size_t packet_id_offset = 0;
};

/// Encodes a PUBLISH into a patchable wire template. The id and DUP bit
/// initially written come from `p` itself.
EncodedPublish encode_publish_template(const Publish& p);

/// Same encode, but into a caller-owned EncodedPublish whose wire buffer
/// is cleared and reused. A pooled WireTemplate re-assigned through this
/// keeps its capacity, so steady-state fan-out encodes allocate nothing.
// static: alloc(one reserve grows the wire buffer to the exact frame
// size; template buffers recycle through WireTemplatePool, keeping
// their capacity)
void encode_publish_template_into(const Publish& p,
                                  EncodedPublish& out) noexcept;

/// Decodes exactly one packet from `data`.
///
/// Malformed inputs are rejected with typed errors rather than being
/// truncated or zero-filled:
///  * Errc::kParse     — the buffer ends before the declared packet does
///                       (incomplete fixed header, truncated body);
///  * Errc::kProtocol  — the bytes are complete but violate the spec
///                       (reserved types/flags, bad QoS, trailing bytes,
///                       packet id 0, oversized remaining length).
Result<Packet> decode(BytesView data);

/// Incremental decoder: feed arbitrary byte chunks, poll complete packets.
/// Enforces the 4-byte remaining-length limit (max 256 MiB body) and an
/// optional tighter per-packet cap (set_max_packet_size), so a hostile
/// peer declaring a huge body fails fast instead of tying up buffer
/// memory waiting for bytes that never come.
class StreamDecoder {
 public:
  /// Appends raw bytes received from the transport.
  void feed(BytesView data);

  /// Returns the next complete packet, nothing when more bytes are needed,
  /// or an Error when the stream is corrupt (stream must then be closed).
  /// Returns std::nullopt wrapped in Result: we model it as
  /// Result<std::optional<Packet>>.
  Result<std::optional<Packet>> next();

  /// Caps the total wire size (header + body) this decoder will accept
  /// for one packet; a larger declared packet fails next() with
  /// Errc::kCapacity. Defaults to the protocol limit.
  void set_max_packet_size(std::size_t bytes) { max_packet_ = bytes; }

  [[nodiscard]] std::size_t buffered() const { return buf_.size(); }

 private:
  Bytes buf_;
  std::size_t max_packet_ = kMaxRemainingLength;
};

}  // namespace ifot::mqtt
