#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {

std::vector<std::string_view> split_levels(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '/') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

bool valid_topic_name(std::string_view topic) {
  if (topic.empty() || topic.size() > 65535) return false;
  std::size_t levels = 1;
  for (char c : topic) {
    if (c == '+' || c == '#' || c == '\0') return false;
    if (c == '/' && ++levels > kMaxTopicLevels) return false;
  }
  return true;
}

bool valid_topic_filter(std::string_view filter) {
  if (filter.empty() || filter.size() > 65535) return false;
  const auto levels = split_levels(filter);
  if (levels.size() > kMaxTopicLevels) return false;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& level = levels[i];
    for (std::size_t j = 0; j < level.size(); ++j) {
      const char c = level[j];
      if (c == '\0') return false;
      // Wildcards must occupy an entire level.
      if ((c == '+' || c == '#') && level.size() != 1) return false;
    }
    // '#' must be the last level.
    if (level == "#" && i + 1 != levels.size()) return false;
  }
  return true;
}

bool is_share_filter(std::string_view filter) {
  return filter == "$share" ||
         filter.substr(0, kSharePrefix.size()) == kSharePrefix;
}

Result<ShareFilter> parse_share_filter(std::string_view filter) {
  if (!is_share_filter(filter)) {
    return Err(Errc::kProtocol, "not a $share filter");
  }
  if (filter.size() <= kSharePrefix.size()) {
    return Err(Errc::kProtocol, "bare $share: missing group and filter");
  }
  const std::string_view rest = filter.substr(kSharePrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return Err(Errc::kProtocol, "$share missing inner filter");
  }
  const std::string_view group = rest.substr(0, slash);
  if (group.empty()) {
    return Err(Errc::kProtocol, "$share group is empty");
  }
  for (const char c : group) {
    if (c == '+' || c == '#') {
      return Err(Errc::kProtocol, "$share group contains a wildcard");
    }
    if (c == '\0') return Err(Errc::kProtocol, "$share group contains NUL");
  }
  const std::string_view inner = rest.substr(slash + 1);
  if (!valid_topic_filter(inner)) {
    return Err(Errc::kProtocol, "$share inner filter is invalid");
  }
  return ShareFilter{group, inner};
}

bool is_fed_topic(std::string_view topic) {
  return topic == "$fed" || topic.substr(0, kFedPrefix.size()) == kFedPrefix;
}

Result<FedTopic> parse_fed_topic(std::string_view topic) {
  if (!is_fed_topic(topic)) {
    return Err(Errc::kProtocol, "not a $fed topic");
  }
  if (topic.size() <= kFedPrefix.size()) {
    return Err(Errc::kProtocol, "bare $fed: missing hops and topic");
  }
  const std::string_view rest = topic.substr(kFedPrefix.size());
  const std::size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return Err(Errc::kProtocol, "$fed missing inner topic");
  }
  const std::string_view hops_level = rest.substr(0, slash);
  // Three decimal digits bound the count well above any sane hop budget
  // while keeping a hostile header from smuggling a huge literal.
  if (hops_level.empty() || hops_level.size() > 3) {
    return Err(Errc::kProtocol, "$fed hop count malformed");
  }
  std::uint32_t hops = 0;
  for (const char c : hops_level) {
    if (c < '0' || c > '9') {
      return Err(Errc::kProtocol, "$fed hop count is not decimal");
    }
    hops = hops * 10 + static_cast<std::uint32_t>(c - '0');
  }
  if (hops == 0) return Err(Errc::kProtocol, "$fed hop count is zero");
  const std::string_view inner = rest.substr(slash + 1);
  if (!valid_topic_name(inner)) {
    return Err(Errc::kProtocol, "$fed inner topic is invalid");
  }
  return FedTopic{hops, inner};
}

void write_fed_topic(std::string& out, std::uint32_t hops,
                     std::string_view inner) {
  out.clear();
  out.append(kFedPrefix);
  char digits[4];
  int n = 0;
  do {
    digits[n++] = static_cast<char>('0' + hops % 10);
    hops /= 10;
  } while (hops != 0 && n < 4);
  while (n-- > 0) out.push_back(digits[n]);
  out.push_back('/');
  out.append(inner);
}

bool topic_matches(std::string_view filter, std::string_view topic) {
  if (!valid_topic_filter(filter) || !valid_topic_name(topic)) return false;
  // Wildcard-leading filters never match $-topics (§4.7.2).
  if (!topic.empty() && topic.front() == '$' &&
      (filter.front() == '+' || filter.front() == '#')) {
    return false;
  }
  const auto f = split_levels(filter);
  const auto t = split_levels(topic);
  std::size_t i = 0;
  for (; i < f.size(); ++i) {
    if (f[i] == "#") return true;
    if (i >= t.size()) return false;
    if (f[i] == "+") continue;
    if (f[i] != t[i]) return false;
  }
  return i == t.size();
}

}  // namespace ifot::mqtt
