#include "mqtt/topic.hpp"

namespace ifot::mqtt {
namespace {

std::vector<std::string_view> split_levels(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '/') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

}  // namespace

bool valid_topic_name(std::string_view topic) {
  if (topic.empty() || topic.size() > 65535) return false;
  std::size_t levels = 1;
  for (char c : topic) {
    if (c == '+' || c == '#' || c == '\0') return false;
    if (c == '/' && ++levels > kMaxTopicLevels) return false;
  }
  return true;
}

bool valid_topic_filter(std::string_view filter) {
  if (filter.empty() || filter.size() > 65535) return false;
  const auto levels = split_levels(filter);
  if (levels.size() > kMaxTopicLevels) return false;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& level = levels[i];
    for (std::size_t j = 0; j < level.size(); ++j) {
      const char c = level[j];
      if (c == '\0') return false;
      // Wildcards must occupy an entire level.
      if ((c == '+' || c == '#') && level.size() != 1) return false;
    }
    // '#' must be the last level.
    if (level == "#" && i + 1 != levels.size()) return false;
  }
  return true;
}

bool topic_matches(std::string_view filter, std::string_view topic) {
  if (!valid_topic_filter(filter) || !valid_topic_name(topic)) return false;
  // Wildcard-leading filters never match $-topics (§4.7.2).
  if (!topic.empty() && topic.front() == '$' &&
      (filter.front() == '+' || filter.front() == '#')) {
    return false;
  }
  const auto f = split_levels(filter);
  const auto t = split_levels(topic);
  std::size_t i = 0;
  for (; i < f.size(); ++i) {
    if (f[i] == "#") return true;
    if (i >= t.size()) return false;
    if (f[i] == "+") continue;
    if (f[i] != t[i]) return false;
  }
  return i == t.size();
}

}  // namespace ifot::mqtt
