#include "mqtt/retained_store.hpp"

#include <utility>

#include "common/audit.hpp"
#include "mqtt/topic.hpp"

namespace ifot::mqtt {

// static: alloc(level-scratch growth; capacity retained across calls)
void RetainedStore::split_levels(
    std::string_view s, std::vector<std::string_view>& out) noexcept {
  out.clear();
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == '/') {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
}

void RetainedStore::set(const Publish& msg) noexcept {
  IFOT_AUDIT_ASSERT(valid_topic_name(msg.topic.view()),
                    "retained store given an invalid topic name");
  IFOT_AUDIT_ASSERT(!msg.payload.empty(),
                    "empty retained payload must clear(), not set()");
  split_levels(msg.topic.view(), levels_scratch_);
  Node* node = &root_;
  for (const std::string_view level : levels_scratch_) {
    auto it = node->children.find(level);
    if (it == node->children.end()) {
      it = node->children.emplace(std::string(level), std::make_unique<Node>())
               .first;
    }
    node = it->second.get();
  }
  if (!node->msg.has_value()) ++count_;
  node->msg = msg;
  node->msg->dup = false;
  audit_invariants();
}

bool RetainedStore::clear(std::string_view topic) noexcept {
  split_levels(topic, levels_scratch_);
  path_scratch_.clear();
  Node* node = &root_;
  for (const std::string_view level : levels_scratch_) {
    auto it = node->children.find(level);
    if (it == node->children.end()) return false;
    path_scratch_.emplace_back(node, it);
    node = it->second.get();
  }
  if (!node->msg.has_value()) return false;
  node->msg.reset();
  --count_;
  // Prune deepest-first: nodes left with no message and no children.
  for (std::size_t i = path_scratch_.size(); i-- > 0;) {
    auto& [parent, it] = path_scratch_[i];
    const Node& child = *it->second;
    if (child.msg.has_value() || !child.children.empty()) break;
    parent->children.erase(it);
  }
  audit_invariants();
  return true;
}

void RetainedStore::collect(
    std::string_view filter, std::vector<const Publish*>& out) const noexcept {
  IFOT_AUDIT_ASSERT(valid_topic_filter(filter),
                    "retained collect on an invalid topic filter");
  split_levels(filter, levels_scratch_);
  collect_rec(root_, levels_scratch_, 0, out);
}

// static: recurse(65, one frame per filter level; validation caps
// filters at kMaxTopicLevels = 64 levels)
// static: alloc(result-list growth; the SUBSCRIBE handler reuses
// scratch, so steady-state appends land in retained capacity)
void RetainedStore::collect_rec(
    const Node& node, const std::vector<std::string_view>& levels,
    std::size_t depth, std::vector<const Publish*>& out) noexcept {
  if (depth == levels.size()) {
    if (node.msg.has_value()) out.push_back(&*node.msg);
    return;
  }
  const std::string_view level = levels[depth];
  if (level == "#") {
    // '#' matches the parent level too ("a/#" matches "a", §4.7.1.2) —
    // collect_subtree includes this node's own message. At the root a
    // wildcard never descends into '$' branches (§4.7.2).
    collect_subtree(node, depth == 0, out);
    return;
  }
  if (level == "+") {
    for (const auto& [name, child] : node.children) {
      if (depth == 0 && !name.empty() && name.front() == '$') continue;
      collect_rec(*child, levels, depth + 1, out);
    }
    return;
  }
  auto it = node.children.find(level);
  if (it != node.children.end()) {
    collect_rec(*it->second, levels, depth + 1, out);
  }
}

// static: recurse(65, one frame per trie level; stored topics are
// validated to at most kMaxTopicLevels = 64 levels)
// static: alloc(result-list growth; the SUBSCRIBE handler reuses
// scratch, so steady-state appends land in retained capacity)
void RetainedStore::collect_subtree(
    const Node& node, bool skip_dollar,
    std::vector<const Publish*>& out) noexcept {
  if (node.msg.has_value()) out.push_back(&*node.msg);
  for (const auto& [name, child] : node.children) {
    if (skip_dollar && !name.empty() && name.front() == '$') continue;
    collect_subtree(*child, false, out);
  }
}

const Publish* RetainedStore::find(std::string_view topic) const {
  split_levels(topic, levels_scratch_);
  const Node* node = &root_;
  for (const std::string_view level : levels_scratch_) {
    auto it = node->children.find(level);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node->msg.has_value() ? &*node->msg : nullptr;
}

void RetainedStore::for_each(
    const std::function<void(const Publish&)>& fn) const {
  for_each_rec(root_, fn);
}

void RetainedStore::for_each_rec(
    const Node& node, const std::function<void(const Publish&)>& fn) {
  if (node.msg.has_value()) fn(*node.msg);
  for (const auto& [_, child] : node.children) for_each_rec(*child, fn);
}

std::size_t RetainedStore::node_count() const {
  return node_count_rec(root_);
}

std::size_t RetainedStore::node_count_rec(const Node& node) {
  std::size_t n = node.children.size();
  for (const auto& [_, child] : node.children) n += node_count_rec(*child);
  return n;
}

void RetainedStore::audit_invariants() const {
  if constexpr (!audit::kEnabled) return;
  std::size_t found = 0;
  std::string path;
  audit_rec(root_, path, /*is_root=*/true, found);
  IFOT_AUDIT_ASSERT(found == count_,
                    "retained count diverged from the trie: counted " +
                        std::to_string(count_) + ", found " +
                        std::to_string(found));
}

void RetainedStore::audit_rec(const Node& node, std::string& path,
                              bool is_root, std::size_t& found) const {
  if (node.msg.has_value()) {
    ++found;
    IFOT_AUDIT_ASSERT(node.msg->topic.view() == path,
                      "retained message topic '" + node.msg->topic.str() +
                          "' diverged from its trie path '" + path + "'");
    IFOT_AUDIT_ASSERT(valid_topic_name(node.msg->topic.view()),
                      "retained store holds invalid topic '" + path + "'");
    IFOT_AUDIT_ASSERT(!node.msg->payload.empty(),
                      "empty retained payload should have cleared the slot");
    IFOT_AUDIT_ASSERT(!node.msg->dup, "retained message kept a DUP flag");
  }
  if (!is_root) {
    IFOT_AUDIT_ASSERT(node.msg.has_value() || !node.children.empty(),
                      "empty retained trie node left unpruned at '" + path +
                          "'");
  }
  const std::size_t base = path.size();
  for (const auto& [name, child] : node.children) {
    if (!is_root) path.push_back('/');
    path.append(name);
    audit_rec(*child, path, /*is_root=*/false, found);
    path.resize(base);
  }
}

}  // namespace ifot::mqtt
